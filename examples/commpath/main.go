// Commpath reproduces the paper's evaluation flow on one manufactured
// device: sample a process-varied instance of the communication path,
// measure its parameters through the functional path, run the
// composition boundary checks, and then run the digital filter's
// spectral fault test through the analog front end.
//
//	go run ./examples/commpath [seed]
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"

	"mstx/internal/core"
	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/params"
	"mstx/internal/path"
)

func main() {
	log.SetFlags(0)
	seed := int64(7)
	if len(os.Args) > 1 {
		v, err := strconv.ParseInt(os.Args[1], 10, 64)
		if err != nil {
			log.Fatalf("bad seed %q: %v", os.Args[1], err)
		}
		seed = v
	}

	coeffs, err := digital.DesignLowPassFIR(13, 0.18, dsp.Hamming)
	if err != nil {
		log.Fatal(err)
	}
	spec := path.DefaultSpec(coeffs)
	synth, err := core.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := synth.Synthesize(nil); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	device, err := spec.Sample(rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device #%d: amp %.2f dB, mixer %.2f dB / IIP3 %.2f dBm, lpf fc %.0f Hz\n\n",
		seed, device.Amp.GainDB, device.Mixer.ConvGainDB, device.Mixer.IIP3DBm, device.LPF.CutoffHz)

	cfg := params.Config{N: 4096, Settle: 512}
	// Execute with the device's noise active: sub-LSB measurements
	// (LO isolation) rely on converter dither.
	outcomes, err := synth.Execute(device, cfg, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range outcomes {
		if o.Skipped {
			fmt.Printf("  DFT   %-14s (%s)\n", o.Test.Request.Param, o.Test.Reason)
			continue
		}
		verdict := "pass"
		if !o.Pass {
			verdict = "FAIL"
		}
		fmt.Printf("  %-5s %-14s measured %9.4g %-3s true %9.4g (err %+.3g)\n",
			verdict, o.Test.Request.Param, o.Result.Measured, o.Result.Unit,
			o.Result.True, o.Result.Delta())
	}

	checks, err := synth.CheckBoundaries(device, cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	for i, ok := range checks {
		verdict := "pass"
		if !ok {
			verdict = "FAIL"
		}
		fmt.Printf("  %-5s boundary %v check\n", verdict, synth.Plan.Boundary[i].Kind)
	}

	// Digital side: spectral fault test through the analog front end.
	opts := core.DefaultDigitalTestOptions()
	opts.Patterns = 1024
	opts.Seed = seed
	dt, err := synth.BuildDigitalTest(opts)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := dt.RunSpectral()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndigital filter spectral fault test: %s\n", rep)
	fmt.Printf("uncertainty floor: %.1f dB below the stimulus\n", dt.Detector.FloorDBFS())
}
