// Diagnose walks through dictionary-based fault location: build the
// gate-level channel filter, run the two-tone functional test to build
// a fault dictionary, inject a random stuck-at fault, observe the
// failing response, and rank candidate fault sites by signature match.
//
//	go run ./examples/diagnose [faultIndex]
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"strconv"

	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/fault"
)

func main() {
	log.SetFlags(0)

	coeffs, err := digital.DesignLowPassFIR(13, 0.18, dsp.Hamming)
	if err != nil {
		log.Fatal(err)
	}
	ints, _, err := digital.QuantizeCoeffs(coeffs, 8)
	if err != nil {
		log.Fatal(err)
	}
	fir, err := digital.NewFIR(ints, 10)
	if err != nil {
		log.Fatal(err)
	}
	u := fault.NewUniverse(fir, true)

	n := 512
	xs := make([]int64, n)
	for i := range xs {
		ph := 2 * math.Pi * float64(i) / float64(n)
		xs[i] = int64(math.Round(230*math.Sin(33*ph) + 230*math.Sin(49*ph)))
	}
	fmt.Printf("building dictionary for %d faults over %d patterns...\n", u.Size(), n)
	dict, err := fault.BuildDictionary(u, xs)
	if err != nil {
		log.Fatal(err)
	}

	idx := rand.New(rand.NewSource(99)).Intn(u.Size())
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil || v < 0 || v >= u.Size() {
			log.Fatalf("bad fault index %q (0..%d)", os.Args[1], u.Size()-1)
		}
		idx = v
	}
	f := u.Faults[idx]
	sim := digital.NewFIRSim(fir)
	if err := sim.InjectFault(f, ^uint64(0)); err != nil {
		log.Fatal(err)
	}
	observed, err := sim.RunPeriodic(xs)
	if err != nil {
		log.Fatal(err)
	}
	good := fir.ReferencePeriodic(xs)

	cands, err := dict.Diagnose(good, observed, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninjected fault: %v (tap %d)\n", f, fir.TapOfNet(f.Net))
	if len(cands) == 0 {
		fmt.Println("no candidates — the fault is undetectable on this stimulus")
		return
	}
	fmt.Println("ranked candidates:")
	for i, c := range cands {
		marker := ""
		if c.Fault == f {
			marker = "  <-- injected"
		} else if c.Exact {
			marker = "  (signature-equivalent)"
		}
		fmt.Printf("  %d. %-12s tap %2d  score %.3f%s\n",
			i+1, c.Fault, fir.TapOfNet(c.Fault.Net), c.Score, marker)
	}
}
