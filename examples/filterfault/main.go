// Filterfault demonstrates the gate-level substrate on its own:
// build a 16-tap FIR as a netlist, enumerate and collapse its
// stuck-at universe, fault-simulate a two-tone record with exact
// comparison, and show how one injected fault distorts the output
// spectrum (the Figure 1 story).
//
//	go run ./examples/filterfault
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/fault"
	"mstx/internal/netlist"
)

func main() {
	log.SetFlags(0)

	// A 16-tap low-pass with 8 fractional coefficient bits, 10-bit data.
	coeffs, err := digital.DesignLowPassFIR(16, 0.15, dsp.Hamming)
	if err != nil {
		log.Fatal(err)
	}
	ints, _, err := digital.QuantizeCoeffs(coeffs, 8)
	if err != nil {
		log.Fatal(err)
	}
	fir, err := digital.NewFIR(ints, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netlist: %s\n", fir.Circuit.Stats())

	u := fault.NewUniverse(fir, true)
	full := fault.NewUniverse(fir, false)
	fmt.Printf("stuck-at universe: %d faults (collapsed from %d)\n\n", u.Size(), full.Size())

	// Two-tone stimulus near full scale.
	n := 1024
	xs := make([]int64, n)
	for i := range xs {
		ph := 2 * math.Pi * float64(i) / float64(n)
		xs[i] = int64(math.Round(230*math.Sin(65*ph) + 230*math.Sin(81*ph)))
	}
	rep, err := fault.Simulate(context.Background(), u, xs, fault.ExactDetector{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact-compare campaign:", rep)
	und := rep.UndetectedResults()
	fmt.Printf("undetected confined to 5 LSBs: %.1f%%\n\n", 100*fault.LSBConfinement(und, 5))

	// Inject one mid-significance fault and compare spectra.
	target := fir.OutBus[len(fir.OutBus)/2]
	sim := digital.NewFIRSim(fir)
	if err := sim.InjectFault(netlist.Fault{Net: target, Stuck: netlist.StuckAt1}, ^uint64(0)); err != nil {
		log.Fatal(err)
	}
	faulty, err := sim.RunPeriodic(xs)
	if err != nil {
		log.Fatal(err)
	}
	good := fir.ReferencePeriodic(xs)
	show := func(label string, rec []int64) {
		f := make([]float64, len(rec))
		for i, v := range rec {
			f[i] = float64(v)
		}
		an, err := dsp.Analyze(f, float64(n), []float64{65, 81}, dsp.Rectangular, dsp.AnalyzeOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s SFDR %6.1f dB, SNR %6.1f dB, worst spur at bin %d\n",
			label, an.SFDR, an.SNR, an.WorstSpur.Bin)
	}
	show("fault-free:", good)
	show("faulty:", faulty)
}
