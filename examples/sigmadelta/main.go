// Sigmadelta demonstrates the alternative analog/digital interface
// module from the paper's introduction: a first-order sigma-delta
// modulator with sinc decimation replacing the Nyquist ADC, including
// the SNR-vs-OSR law and the effect of an integrator-leak defect.
//
//	go run ./examples/sigmadelta
package main

import (
	"fmt"
	"log"

	"mstx/internal/adc"
	"mstx/internal/dsp"
	"mstx/internal/msignal"
)

func main() {
	log.SetFlags(0)

	fsRate := 2.56e6
	nOut := 2048

	fmt.Println("OSR    measured SNR    first-order theory")
	for _, osr := range []int{16, 32, 64, 128} {
		sd, err := adc.NewSigmaDelta(1, osr)
		if err != nil {
			log.Fatal(err)
		}
		outRate := fsRate / float64(osr)
		f := dsp.CoherentBin(outRate, nOut, 37)
		x := msignal.NewTone(f, 0.5).Render(nOut*osr, fsRate, nil)
		dec := sd.ConvertOversampled(x, nil)
		an, err := dsp.Analyze(dec, outRate, []float64{f}, dsp.Rectangular,
			dsp.AnalyzeOptions{Harmonics: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d   %8.1f dB     %8.1f dB\n", osr, an.SNR, sd.TheoreticalSNRdB()-6)
	}

	// A leaky integrator (analog defect) degrades the in-band SNR: the
	// kind of parametric fault a system-level SNR test catches.
	fmt.Println("\nintegrator leak   SNR at OSR=64")
	for _, leak := range []float64{0, 0.01, 0.05, 0.2} {
		sd, err := adc.NewSigmaDelta(1, 64)
		if err != nil {
			log.Fatal(err)
		}
		sd.IntegratorLeak = leak
		outRate := fsRate / 64
		f := dsp.CoherentBin(outRate, nOut, 37)
		x := msignal.NewTone(f, 0.5).Render(nOut*64, fsRate, nil)
		dec := sd.ConvertOversampled(x, nil)
		an, err := dsp.Analyze(dec, outRate, []float64{f}, dsp.Rectangular,
			dsp.AnalyzeOptions{Harmonics: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %5.2f          %8.1f dB\n", leak, an.SNR)
	}
}
