// Quickstart: build the default mixed-signal communication path,
// synthesize its system-level test plan, and run the plan against the
// nominal device.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mstx/internal/core"
	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/params"
	"mstx/internal/path"
)

func main() {
	log.SetFlags(0)

	// 1. Design the digital channel-selection filter and bundle the
	//    path specification (Amp → Mixer → LPF → ADC → FIR).
	coeffs, err := digital.DesignLowPassFIR(13, 0.18, dsp.Hamming)
	if err != nil {
		log.Fatal(err)
	}
	spec := path.DefaultSpec(coeffs)

	// 2. Create the synthesizer and derive the test plan for the
	//    standard Table 1 parameter set.
	synth, err := core.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := synth.Synthesize(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test plan: %d tests, %d need DFT\n", len(plan.Tests), len(plan.DFTRequired))
	for _, t := range plan.Tests {
		fmt.Printf("  %-14s via %-12s (%s)\n", t.Request.Param, t.Kind, t.Reason)
	}

	// 3. Execute against the nominal device instance.
	outcomes, err := synth.Execute(synth.Nominal, params.DefaultConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmeasurements on the nominal device:")
	for _, o := range outcomes {
		if o.Skipped {
			continue
		}
		fmt.Printf("  %-14s measured %9.4g %-3s (true %9.4g)\n",
			o.Test.Request.Param, o.Result.Measured, o.Result.Unit, o.Result.True)
	}
}
