// Adaptive demonstrates the paper's Figure 4 on live devices: the
// mixer's IIP3 measured through the path with nominal gains vs. with
// the adaptive path-gain-first strategy, over a small population of
// process-varied devices.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/params"
	"mstx/internal/path"
)

func main() {
	log.SetFlags(0)

	coeffs, err := digital.DesignLowPassFIR(13, 0.18, dsp.Hamming)
	if err != nil {
		log.Fatal(err)
	}
	spec := path.DefaultSpec(coeffs)
	cfg := params.Config{N: 2048, Settle: 256}
	st := params.DefaultIIP3Stimulus()
	rng := rand.New(rand.NewSource(11))

	fmt.Println("device   true IIP3   nominal-gains err   adaptive err")
	var sumN, sumA float64
	n := 8
	for i := 0; i < n; i++ {
		device, err := spec.Sample(rng)
		if err != nil {
			log.Fatal(err)
		}
		nom, err := params.MeasureMixerIIP3(device, params.NominalGains, st, cfg, nil)
		if err != nil {
			log.Fatal(err)
		}
		ada, err := params.MeasureMixerIIP3(device, params.Adaptive, st, cfg, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  #%d     %7.2f dBm   %+13.2f dB   %+10.2f dB\n",
			i, nom.True, nom.Delta(), ada.Delta())
		sumN += nom.Delta() * nom.Delta()
		sumA += ada.Delta() * ada.Delta()
	}
	fmt.Printf("\nRMS error: nominal-gains %.2f dB, adaptive %.2f dB\n",
		rms(sumN, n), rms(sumA, n))
	fmt.Println("the adaptive method replaces the unknown mixer+filter gains with the")
	fmt.Println("accurately measured composite path gain, leaving only the amplifier's")
	fmt.Println("tolerance in the error budget (paper Figure 4).")
}

func rms(sumSq float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return math.Sqrt(sumSq / float64(n))
}
