package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleRun = `goos: linux
goarch: amd64
pkg: mstx/internal/dsp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPowerSpectrumAllocating1024 	      50	    118763 ns/op	   37696 B/op	       5 allocs/op
BenchmarkPowerSpectrumScratch1024-8  	      50	     14874 ns/op	       0 B/op	       0 allocs/op
BenchmarkWelchScratch                	      50	    234807 ns/op	      97 B/op	       0 allocs/op
PASS
ok  	mstx/internal/dsp	0.099s
`

func TestParseBench(t *testing.T) {
	benches, err := parseBench(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(benches))
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	r, ok := benches["BenchmarkPowerSpectrumScratch1024"]
	if !ok {
		t.Fatalf("suffix not stripped: %v", benches)
	}
	if r.Iterations != 50 || r.NsPerOp != 14874 || r.BPerOp != 0 || r.AllocsPerOp != 0 {
		t.Errorf("scratch result = %+v", r)
	}
	if r := benches["BenchmarkPowerSpectrumAllocating1024"]; r.BPerOp != 37696 || r.AllocsPerOp != 5 {
		t.Errorf("allocating result = %+v", r)
	}
}

func TestParseBenchWithoutBenchmem(t *testing.T) {
	benches, err := parseBench(strings.NewReader("BenchmarkX-4   100   500 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if r := benches["BenchmarkX"]; r.NsPerOp != 500 || r.BPerOp != 0 {
		t.Errorf("result = %+v", r)
	}
}

func TestParseBenchRejectsDuplicates(t *testing.T) {
	in := "BenchmarkX-4 100 500 ns/op\nBenchmarkX-4 100 510 ns/op\n"
	if _, err := parseBench(strings.NewReader(in)); err == nil {
		t.Fatal("duplicate benchmark accepted")
	}
}

func TestCompareRuns(t *testing.T) {
	base := map[string]BenchResult{
		"A": {NsPerOp: 1000, AllocsPerOp: 0},
		"B": {NsPerOp: 1000, AllocsPerOp: 2},
		"C": {NsPerOp: 1000},
	}
	cur := map[string]BenchResult{
		"A": {NsPerOp: 1100, AllocsPerOp: 0}, // +10%: within the 15% limit
		"B": {NsPerOp: 900, AllocsPerOp: 3},  // faster but one more alloc
		"C": {NsPerOp: 1000},                 // unchanged
		"D": {NsPerOp: 9999},                 // new benchmark: no baseline
	}
	regs := compareRuns(base, cur, 15, 0)
	if len(regs) != 1 || !strings.Contains(regs[0], "B") || !strings.Contains(regs[0], "allocs") {
		t.Fatalf("regressions = %v, want only B's alloc growth", regs)
	}
	// A 20% slowdown plus B and C missing from the run: three gates.
	if regs := compareRuns(base, map[string]BenchResult{"A": {NsPerOp: 1200}}, 15, 0); len(regs) != 3 {
		t.Fatalf("slowdown+missing not fully flagged: %v", regs)
	}
}

// TestCompareRunsAllocSlack pins -max-allocs-regress: with a percent
// headroom, growth within the limit passes and growth beyond it fails;
// with the default 0 the gate stays exact, even from a 0 baseline.
func TestCompareRunsAllocSlack(t *testing.T) {
	base := map[string]BenchResult{
		"Big":  {NsPerOp: 1000, AllocsPerOp: 1000},
		"Zero": {NsPerOp: 1000, AllocsPerOp: 0},
	}
	within := map[string]BenchResult{
		"Big":  {NsPerOp: 1000, AllocsPerOp: 1009}, // +0.9% < 1%
		"Zero": {NsPerOp: 1000, AllocsPerOp: 0},
	}
	if regs := compareRuns(base, within, 15, 1); len(regs) != 0 {
		t.Fatalf("growth within slack flagged: %v", regs)
	}
	beyond := map[string]BenchResult{
		"Big":  {NsPerOp: 1000, AllocsPerOp: 1011}, // +1.1% > 1%
		"Zero": {NsPerOp: 1000, AllocsPerOp: 0},
	}
	regs := compareRuns(base, beyond, 15, 1)
	if len(regs) != 1 || !strings.Contains(regs[0], "Big") || !strings.Contains(regs[0], "allocs") {
		t.Fatalf("growth beyond slack not flagged: %v", regs)
	}
	// A 0 baseline gets no headroom from a percent slack: any alloc
	// appearing on a previously alloc-free benchmark still fails.
	leaky := map[string]BenchResult{
		"Big":  {NsPerOp: 1000, AllocsPerOp: 1000},
		"Zero": {NsPerOp: 1000, AllocsPerOp: 1},
	}
	if regs := compareRuns(base, leaky, 15, 1); len(regs) != 1 || !strings.Contains(regs[0], "Zero") {
		t.Fatalf("zero-baseline alloc growth not flagged: %v", regs)
	}
	// Default 0 slack: one extra alloc on Big fails exactly as before.
	exact := map[string]BenchResult{
		"Big":  {NsPerOp: 1000, AllocsPerOp: 1001},
		"Zero": {NsPerOp: 1000, AllocsPerOp: 0},
	}
	if regs := compareRuns(base, exact, 15, 0); len(regs) != 1 || !strings.Contains(regs[0], "any growth fails") {
		t.Fatalf("exact gate lost its bite: %v", regs)
	}
}

// TestCompareRunsMissingBenchmark pins the gate on disappearing
// benchmarks: a name in the last entry that is absent from the new run
// must fail the comparison, not silently retire its coverage.
func TestCompareRunsMissingBenchmark(t *testing.T) {
	base := map[string]BenchResult{
		"A": {NsPerOp: 1000},
		"B": {NsPerOp: 2000, AllocsPerOp: 1},
	}
	cur := map[string]BenchResult{
		"A": {NsPerOp: 1000},
	}
	regs := compareRuns(base, cur, 15, 0)
	if len(regs) != 1 || !strings.Contains(regs[0], "B") || !strings.Contains(regs[0], "missing") {
		t.Fatalf("missing benchmark not flagged: %v", regs)
	}
	// Everything missing: every baseline name is reported.
	if regs := compareRuns(base, map[string]BenchResult{}, 15, 0); len(regs) != 2 {
		t.Fatalf("want 2 missing regressions, got %v", regs)
	}
}

// TestGateFailsOnMissingBenchmark drives the full record pipeline: a
// -compare run whose input dropped a previously recorded benchmark
// must exit 1 and record nothing.
func TestGateFailsOnMissingBenchmark(t *testing.T) {
	file := filepath.Join(t.TempDir(), "BENCH_test.json")
	if code, _, stderr := record(t, file, sampleRun, "-sha", "abc1234", "-date", "2026-08-07T00:00:00Z"); code != 0 {
		t.Fatalf("baseline record exited %d: %s", code, stderr)
	}
	// Same run minus WelchScratch.
	dropped := strings.ReplaceAll(sampleRun,
		"BenchmarkWelchScratch                	      50	    234807 ns/op	      97 B/op	       0 allocs/op\n", "")
	code, _, stderr := record(t, file, dropped, "-sha", "def5678", "-date", "2026-08-07T01:00:00Z", "-compare")
	if code != 1 {
		t.Fatalf("missing benchmark passed the gate (exit %d): %s", code, stderr)
	}
	if !strings.Contains(stderr, "BenchmarkWelchScratch") || !strings.Contains(stderr, "missing") {
		t.Fatalf("gate message does not name the missing benchmark: %s", stderr)
	}
	var entries []Entry
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("failed gate still recorded an entry (%d total)", len(entries))
	}
}

func record(t *testing.T, file, input string, extra ...string) (int, string, string) {
	t.Helper()
	args := append([]string{"-out", file}, extra...)
	var stdout, stderr bytes.Buffer
	code := run(args, strings.NewReader(input), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRecordAppendsTrajectory(t *testing.T) {
	file := filepath.Join(t.TempDir(), "BENCH_test.json")
	if code, _, stderr := record(t, file, sampleRun, "-sha", "abc1234", "-date", "2026-08-07T00:00:00Z"); code != 0 {
		t.Fatalf("first record exited %d: %s", code, stderr)
	}
	if code, _, stderr := record(t, file, sampleRun, "-sha", "def5678", "-date", "2026-08-07T01:00:00Z", "-compare"); code != 0 {
		t.Fatalf("identical re-record exited %d: %s", code, stderr)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var trajectory []Entry
	if err := json.Unmarshal(data, &trajectory); err != nil {
		t.Fatal(err)
	}
	if len(trajectory) != 2 {
		t.Fatalf("%d entries, want 2", len(trajectory))
	}
	if trajectory[0].SHA != "abc1234" || trajectory[1].SHA != "def5678" {
		t.Errorf("SHAs = %s, %s", trajectory[0].SHA, trajectory[1].SHA)
	}
	if trajectory[1].Benchmarks["BenchmarkWelchScratch"].NsPerOp != 234807 {
		t.Error("benchmark data not preserved")
	}
}

// TestGateFailsOnInjectedSlowdown demonstrates the acceptance
// criterion: a run whose ns/op is inflated past the limit (or whose
// allocs/op grew at all) must fail the -compare gate and must NOT be
// appended to the trajectory.
func TestGateFailsOnInjectedSlowdown(t *testing.T) {
	file := filepath.Join(t.TempDir(), "BENCH_test.json")
	if code, _, stderr := record(t, file, sampleRun, "-sha", "base", "-compare"); code != 0 {
		t.Fatalf("baseline record exited %d: %s", code, stderr)
	}

	// Inject a 2x slowdown into the scratch benchmark.
	slow := strings.Replace(sampleRun, "50\t     14874 ns/op", "50\t     29748 ns/op", 1)
	if slow == sampleRun {
		t.Fatal("slowdown injection did not change the input")
	}
	code, _, stderr := record(t, file, slow, "-sha", "slow", "-compare")
	if code != 1 {
		t.Fatalf("2x slowdown exited %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "BenchmarkPowerSpectrumScratch1024") || !strings.Contains(stderr, "ns/op") {
		t.Errorf("regression report missing the slow benchmark: %s", stderr)
	}

	// Inject an alloc regression: 0 -> 1 allocs/op on the scratch path.
	leaky := strings.Replace(sampleRun, "0 B/op\t       0 allocs/op", "16 B/op\t       1 allocs/op", 1)
	code, _, stderr = record(t, file, leaky, "-sha", "leaky", "-compare")
	if code != 1 {
		t.Fatalf("alloc growth exited %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "allocs/op") {
		t.Errorf("regression report missing alloc growth: %s", stderr)
	}

	// Neither failing run may have been recorded.
	var trajectory []Entry
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &trajectory); err != nil {
		t.Fatal(err)
	}
	if len(trajectory) != 1 || trajectory[0].SHA != "base" {
		t.Fatalf("failed runs were recorded: %d entries", len(trajectory))
	}

	// A 10% drift stays within the default 15% limit and records.
	mild := strings.Replace(sampleRun, "50\t     14874 ns/op", "50\t     16361 ns/op", 1)
	if code, _, stderr := record(t, file, mild, "-sha", "mild", "-compare"); code != 0 {
		t.Fatalf("10%% drift exited %d: %s", code, stderr)
	}
}

func TestRunValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, strings.NewReader(sampleRun), &stdout, &stderr); code != 2 {
		t.Errorf("missing -out exited %d, want 2", code)
	}
	file := filepath.Join(t.TempDir(), "b.json")
	if code, _, _ := record(t, file, "no benchmarks here\n"); code != 2 {
		t.Error("benchless input accepted")
	}
	if err := os.WriteFile(file, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := record(t, file, sampleRun); code != 2 {
		t.Error("corrupt trajectory file accepted")
	}
}

func TestEchoOnlyDoesNotWrite(t *testing.T) {
	file := filepath.Join(t.TempDir(), "b.json")
	code, stdout, stderr := record(t, file, sampleRun, "-n")
	if code != 0 {
		t.Fatalf("exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "BenchmarkWelchScratch") {
		t.Error("parsed benchmarks not echoed")
	}
	if _, err := os.Stat(file); !os.IsNotExist(err) {
		t.Error("-n wrote the trajectory file")
	}
}
