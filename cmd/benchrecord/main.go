// Command benchrecord parses `go test -bench -benchmem` output from
// stdin and appends one entry to a JSON performance-trajectory file
// (BENCH_dsp.json, BENCH_campaign.json at the repo root). With
// -compare it first checks the run against the last recorded entry and
// exits non-zero on a regression — >15% ns/op growth (tunable with
// -max-ns-regress) or allocs/op growth beyond -max-allocs-regress
// percent (default 0: exact) on a benchmark present in both — without
// appending, which makes it the perf gate in scripts/check.sh.
//
// Usage:
//
//	go test -bench X -benchmem ./pkg | benchrecord -out BENCH_x.json \
//	    -sha "$(git rev-parse --short HEAD)" -date "$(date -u +%FT%TZ)" -compare
//
// The commit SHA and timestamp are passed in by the caller rather than
// read here, so the tool itself stays deterministic for a given input.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// BenchResult is one benchmark's measurements from a single run.
type BenchResult struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Entry is one recorded run of a benchmark suite.
type Entry struct {
	SHA        string                 `json:"sha"`
	Date       string                 `json:"date"`
	Benchmarks map[string]BenchResult `json:"benchmarks"`
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchrecord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("out", "", "trajectory JSON file to append to (required)")
		sha      = fs.String("sha", "", "commit SHA to record")
		date     = fs.String("date", "", "UTC timestamp to record (RFC 3339)")
		compare  = fs.Bool("compare", false, "gate against the last recorded entry before appending")
		maxNs    = fs.Float64("max-ns-regress", 15, "allowed ns/op growth vs baseline, percent")
		maxAlloc = fs.Float64("max-allocs-regress", 0, "allowed allocs/op growth vs baseline, percent (0 = exact)")
		echoOnly = fs.Bool("n", false, "parse and print, do not write the trajectory file")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: go test -bench X -benchmem ./pkg | benchrecord -out FILE [-sha S] [-date D] [-compare]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" && !*echoOnly {
		fmt.Fprintln(stderr, "benchrecord: -out is required")
		return 2
	}

	benches, err := parseBench(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchrecord: %v\n", err)
		return 2
	}
	if len(benches) == 0 {
		fmt.Fprintln(stderr, "benchrecord: no benchmark lines in input")
		return 2
	}
	for name, r := range benches {
		fmt.Fprintf(stdout, "%-40s %10d iter %14.1f ns/op %8d B/op %6d allocs/op\n",
			name, r.Iterations, r.NsPerOp, r.BPerOp, r.AllocsPerOp)
	}
	if *echoOnly {
		return 0
	}

	trajectory, err := loadTrajectory(*out)
	if err != nil {
		fmt.Fprintf(stderr, "benchrecord: %v\n", err)
		return 2
	}
	if *compare && len(trajectory) > 0 {
		baseline := trajectory[len(trajectory)-1]
		regressions := compareRuns(baseline.Benchmarks, benches, *maxNs, *maxAlloc)
		if len(regressions) > 0 {
			fmt.Fprintf(stderr, "benchrecord: %d regression(s) vs %s (%s):\n",
				len(regressions), baseline.SHA, baseline.Date)
			for _, r := range regressions {
				fmt.Fprintf(stderr, "  %s\n", r)
			}
			fmt.Fprintf(stderr, "benchrecord: not recording; fix or re-baseline %s\n", *out)
			return 1
		}
	}

	trajectory = append(trajectory, Entry{SHA: *sha, Date: *date, Benchmarks: benches})
	if err := writeTrajectory(*out, trajectory); err != nil {
		fmt.Fprintf(stderr, "benchrecord: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "recorded %d benchmarks to %s (%d entries)\n", len(benches), *out, len(trajectory))
	return 0
}

// parseBench extracts benchmark result lines from go test output.
// Lines look like
//
//	BenchmarkWelchScratch-8   50   234807 ns/op   97 B/op   0 allocs/op
//
// with the B/op and allocs/op columns present only under -benchmem.
// The -N GOMAXPROCS suffix is stripped so recorded names are stable
// across machines.
func parseBench(r io.Reader) (map[string]BenchResult, error) {
	benches := make(map[string]BenchResult)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := BenchResult{Iterations: iters}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				if res.NsPerOp, err = strconv.ParseFloat(val, 64); err == nil {
					ok = true
				}
			case "B/op":
				res.BPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				res.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			}
		}
		if !ok {
			continue
		}
		if _, dup := benches[name]; dup {
			return nil, fmt.Errorf("duplicate benchmark %q in input (mixed runs?)", name)
		}
		benches[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return benches, nil
}

// compareRuns returns one human-readable line per regression of cur
// against base. New benchmarks (in cur only) baseline themselves, but
// a benchmark that was in the last entry and is missing from cur is a
// gate failure: a silently dropped benchmark would retire its
// regression coverage without anyone deciding to (a rename must
// re-baseline deliberately, by recording without -compare).
func compareRuns(base, cur map[string]BenchResult, maxNsPct, maxAllocPct float64) []string {
	var regressions []string
	for _, name := range sortedKeys(base) {
		if _, inCur := cur[name]; !inCur {
			regressions = append(regressions, fmt.Sprintf(
				"%s: present in baseline but missing from this run (deleted or renamed? re-baseline without -compare)",
				name))
		}
	}
	for _, name := range sortedKeys(cur) {
		b, inBase := base[name]
		if !inBase {
			continue
		}
		c := cur[name]
		if b.NsPerOp > 0 {
			growth := (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
			if growth > maxNsPct {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %.0f ns/op, %.1f%% over baseline %.0f (limit %.0f%%)",
					name, c.NsPerOp, growth, b.NsPerOp, maxNsPct))
			}
		}
		// The default allocs gate is exact; a benchmark whose alloc
		// count is inherently jittery (e.g. one dominated by go/types
		// internals) opts into a small percentage headroom instead.
		allowed := b.AllocsPerOp + int64(float64(b.AllocsPerOp)*maxAllocPct/100)
		if c.AllocsPerOp > allowed {
			if maxAllocPct == 0 {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %d allocs/op, baseline %d (any growth fails)",
					name, c.AllocsPerOp, b.AllocsPerOp))
			} else {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %d allocs/op, baseline %d (limit %.1f%%)",
					name, c.AllocsPerOp, b.AllocsPerOp, maxAllocPct))
			}
		}
	}
	return regressions
}

func sortedKeys(m map[string]BenchResult) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func loadTrajectory(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var trajectory []Entry
	if err := json.Unmarshal(data, &trajectory); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return trajectory, nil
}

func writeTrajectory(path string, trajectory []Entry) error {
	data, err := json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
