package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mstx/internal/resilient"
)

// small returns CLI args for a fast 4-tap run plus any extras.
func small(extra ...string) []string {
	return append([]string{"-taps", "4", "-patterns", "64"}, extra...)
}

func TestRunBadFlagIsUsageError(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errw); code != 2 {
		t.Fatalf("unknown flag exited %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "Usage") {
		t.Errorf("usage text missing from stderr:\n%s", errw.String())
	}
}

func TestRunResumeRequiresCheckpoint(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-resume"}, &out, &errw); code != 2 {
		t.Fatalf("-resume without -checkpoint exited %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "-resume requires -checkpoint") {
		t.Errorf("missing diagnostic on stderr:\n%s", errw.String())
	}
}

func TestRunBadToneCount(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(small("-tones", "99"), &out, &errw); code != 1 {
		t.Fatalf("bad -tones exited %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "tones must be in") {
		t.Errorf("missing diagnostic on stderr:\n%s", errw.String())
	}
}

func TestRunExactCampaign(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(small(), &out, &errw); code != 0 {
		t.Fatalf("exact run exited %d, want 0; stderr:\n%s", code, errw.String())
	}
	for _, want := range []string{"filter: 4 taps", "faults detected", "undetected confined to"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSpectralCampaign(t *testing.T) {
	var out, errw bytes.Buffer
	// 64 patterns leaves the detector no free bins; 256 is still fast.
	if code := run([]string{"-taps", "4", "-patterns", "256", "-spectral"}, &out, &errw); code != 0 {
		t.Fatalf("-spectral run exited %d, want 0; stderr:\n%s", code, errw.String())
	}
	for _, want := range []string{"spectral campaign (floor", "spectra computed"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunCheckpointResumeRoundTrip is the CLI-level kill-and-resume
// golden: a failpoint crashes the exact campaign mid-run, then a
// -resume invocation finishes it and its stdout must be byte-identical
// to an uninterrupted run.
func TestRunCheckpointResumeRoundTrip(t *testing.T) {
	var base, errw bytes.Buffer
	if code := run(small(), &base, &errw); code != 0 {
		t.Fatalf("baseline run exited %d; stderr:\n%s", code, errw.String())
	}

	dir := t.TempDir()
	fp := resilient.NewFailpoints()
	fp.Set("fault.batch", resilient.Action{Err: errors.New("injected crash"), After: 2})
	resilient.Install(fp)
	var crashOut, crashErr bytes.Buffer
	code := run(small("-checkpoint", dir, "-checkpoint-every", "1"), &crashOut, &crashErr)
	resilient.Install(nil)
	if code != 1 {
		t.Fatalf("crashed run exited %d, want 1; stderr:\n%s", code, crashErr.String())
	}
	if !strings.Contains(crashErr.String(), "injected crash") {
		t.Errorf("injected crash not surfaced on stderr:\n%s", crashErr.String())
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no checkpoint written before the crash (entries %v, err %v)", ents, err)
	}

	var res, resErr bytes.Buffer
	if code := run(small("-checkpoint", dir, "-resume"), &res, &resErr); code != 0 {
		t.Fatalf("resume exited %d, want 0; stderr:\n%s", code, resErr.String())
	}
	if res.String() != base.String() {
		t.Errorf("resumed stdout drifted from baseline.\n--- resumed ---\n%s--- baseline ---\n%s",
			res.String(), base.String())
	}

	// A mismatched campaign (different record length) must refuse the
	// stale checkpoint rather than silently blend runs.
	var bad, badErr bytes.Buffer
	if code := run([]string{"-taps", "4", "-patterns", "128", "-checkpoint", dir, "-resume"}, &bad, &badErr); code != 1 {
		t.Fatalf("stale checkpoint accepted (exit %d, want 1); stderr:\n%s", code, badErr.String())
	}
	if !strings.Contains(badErr.String(), "different campaign") {
		t.Errorf("missing stale-checkpoint diagnostic:\n%s", badErr.String())
	}
}

func TestRunDumpNetlist(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fir.netlist")
	var out, errw bytes.Buffer
	if code := run(small("-dump", path), &out, &errw); code != 0 {
		t.Fatalf("-dump run exited %d; stderr:\n%s", code, errw.String())
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("netlist not written (err %v)", err)
	}
	if !strings.Contains(out.String(), "netlist written to") {
		t.Errorf("stdout missing dump confirmation:\n%s", out.String())
	}
}
