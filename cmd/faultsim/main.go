// Command faultsim runs a stand-alone gate-level stuck-at fault
// simulation of a low-pass FIR filter with a multi-tone stimulus and
// exact output comparison — the ideal-input digital-test baseline of
// the paper.
//
// Usage:
//
//	faultsim [-taps 16] [-width 10] [-patterns 1024] [-tones 2]
//	         [-amp 460] [-collapse] [-undetected] [-spectral]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	"mstx/internal/atpg"
	"mstx/internal/campaign"
	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/fault"
	"mstx/internal/netlist"
	"mstx/internal/spectest"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faultsim: ")
	var (
		taps       = flag.Int("taps", 16, "filter length")
		width      = flag.Int("width", 10, "input word width (bits)")
		patterns   = flag.Int("patterns", 1024, "record length")
		tones      = flag.Int("tones", 2, "stimulus tone count")
		amp        = flag.Float64("amp", 460, "composite stimulus amplitude (codes)")
		collapse   = flag.Bool("collapse", true, "apply structural fault collapsing")
		undetected = flag.Bool("undetected", false, "list undetected faults")
		topoff     = flag.Bool("atpg", false, "run PODEM on the undetected faults (DFT top-off)")
		diagnose   = flag.Int("diagnose", -1, "inject the i-th fault, observe, and locate it via the fault dictionary")
		cutoff     = flag.Float64("cutoff", 0.15, "filter normalized cutoff")
		dump       = flag.String("dump", "", "write the gate-level netlist to this file and exit")
		fracBits   = flag.Int("frac", 8, "coefficient fractional bits")
		spectral   = flag.Bool("spectral", false, "also run the pooled spectral-signature campaign")
		noise      = flag.Float64("noise", 1.5, "input noise sigma (codes) for the spectral floor calibration")
		seed       = flag.Int64("seed", 1, "seed for the spectral calibration capture")
	)
	flag.Parse()

	coeffs, err := digital.DesignLowPassFIR(*taps, *cutoff, dsp.Hamming)
	if err != nil {
		log.Fatal(err)
	}
	ints, scale, err := digital.QuantizeCoeffs(coeffs, *fracBits)
	if err != nil {
		log.Fatal(err)
	}
	fir, err := digital.NewFIR(ints, *width)
	if err != nil {
		log.Fatal(err)
	}
	st := fir.Circuit.Stats()
	fmt.Printf("filter: %d taps, %d-bit input, coefficients x%g\n", *taps, *width, scale)
	fmt.Printf("netlist: %s\n", st)
	if *dump != "" {
		fh, err := os.Create(*dump)
		if err != nil {
			log.Fatal(err)
		}
		if err := netlist.Write(fh, fir.Circuit); err != nil {
			log.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("netlist written to %s\n", *dump)
		return
	}

	u := fault.NewUniverse(fir, *collapse)
	full := fault.NewUniverse(fir, false)
	fmt.Printf("faults: %d (collapsed from %d)\n\n", u.Size(), full.Size())

	n := *patterns
	xs := make([]int64, n)
	bins := []int{n/16 + 1, n/16 + 17, n/16 - 13, n/16 + 29, n/16 + 5}
	if *tones < 1 || *tones > len(bins) {
		log.Fatalf("tones must be in [1, %d]", len(bins))
	}
	per := *amp / float64(*tones)
	for i := range xs {
		var v float64
		for t := 0; t < *tones; t++ {
			v += per * math.Sin(2*math.Pi*float64(bins[t])*float64(i)/float64(n)+float64(t))
		}
		xs[i] = int64(math.Round(v))
	}
	rep, err := fault.Simulate(u, xs, fault.ExactDetector{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	und := rep.UndetectedResults()
	for _, lsbs := range []int{3, 5, 8} {
		fmt.Printf("undetected confined to %d LSBs: %.1f%%\n",
			lsbs, 100*fault.LSBConfinement(und, lsbs))
	}
	if *undetected {
		fmt.Println("\nundetected faults:")
		for _, r := range und {
			fmt.Printf("  %-12s tap %2d  max|diff| %d\n", r.Fault, r.Tap, r.MaxAbsDiff)
		}
	}
	if *spectral {
		if err := runSpectral(fir, u, xs, bins[:*tones], *noise, *seed); err != nil {
			log.Fatal(err)
		}
	}
	if *diagnose >= 0 {
		if *diagnose >= u.Size() {
			log.Fatalf("-diagnose index %d out of range [0,%d)", *diagnose, u.Size())
		}
		dict, err := fault.BuildDictionary(u, xs)
		if err != nil {
			log.Fatal(err)
		}
		f := u.Faults[*diagnose]
		sim := digital.NewFIRSim(fir)
		if err := sim.InjectFault(f, ^uint64(0)); err != nil {
			log.Fatal(err)
		}
		observed, err := sim.RunPeriodic(xs)
		if err != nil {
			log.Fatal(err)
		}
		good := fir.ReferencePeriodic(xs)
		cands, err := dict.Diagnose(good, observed, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ninjected %v (tap %d); dictionary candidates:\n", f, fir.TapOfNet(f.Net))
		for i, c := range cands {
			exact := ""
			if c.Exact {
				exact = " (exact)"
			}
			fmt.Printf("  %d. %-12s tap %2d  score %.3f%s\n",
				i+1, c.Fault, fir.TapOfNet(c.Fault.Net), c.Score, exact)
		}
	}
	if *topoff {
		runTopoff(fir, rep)
	}
}

// runSpectral runs the spectral-signature campaign on the pooled
// engine: the reference spectrum comes from the good machine on the
// clean stimulus, the uncertainty floor is calibrated from the good
// machine on a noise-dithered copy, and every fault's record is then
// screened and transformed by the campaign workers.
func runSpectral(fir *digital.FIR, u *fault.Universe, xs []int64, toneBins []int, sigma float64, seed int64) error {
	n := len(xs)
	const fs = 1e6 // label only: bins carry the comparison
	sim := digital.NewFIRSim(fir)
	good, err := sim.RunPeriodic(xs)
	if err != nil {
		return err
	}
	tones := make([]float64, len(toneBins))
	for i, b := range toneBins {
		tones[i] = float64(b) * fs / float64(n)
	}
	det, err := spectest.NewDetector(good, fs, tones, 4, 0, 3)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	noisy := make([]int64, n)
	for i, x := range xs {
		noisy[i] = x + int64(math.Round(rng.NormFloat64()*sigma))
	}
	sim2 := digital.NewFIRSim(fir)
	goodNoisy, err := sim2.RunPeriodic(noisy)
	if err != nil {
		return err
	}
	if err := det.CalibrateFloor(goodNoisy, 1.5); err != nil {
		return err
	}
	eng, err := campaign.New(u, det, campaign.Options{})
	if err != nil {
		return err
	}
	rep, stats, err := eng.Run(noisy)
	if err != nil {
		return err
	}
	fmt.Printf("\nspectral campaign (floor %.1f dBFS, noise sigma %g): %s\n",
		det.FloorDBFS(), sigma, rep)
	mode := "full per-batch simulation"
	if stats.Differential {
		mode = "differential cone replay"
	}
	fmt.Printf("engine: %d batches (%s), %d lanes zero-diff screened, %d memoized, %d spectra computed\n",
		stats.Batches, mode, stats.Screened, stats.Memoized, stats.Spectra)
	return nil
}

// runTopoff classifies the functional residue with PODEM and verifies
// the generated sample bursts.
func runTopoff(fir *digital.FIR, rep *fault.Report) {
	sum, err := atpg.Classify(fir.Circuit, rep.Undetected(), 5000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nATPG top-off on the functional residue: %s\n", sum)
	verified := 0
	for _, r := range sum.Testable {
		burst, err := atpg.PatternToSamples(fir, r.Pattern)
		if err != nil {
			log.Fatal(err)
		}
		ok, err := atpg.VerifyPattern(fir, r.Fault, burst)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			verified++
		}
	}
	fmt.Printf("sample bursts verified: %d/%d\n", verified, len(sum.Testable))
	total := len(rep.Results)
	redundant := len(sum.Untestable)
	fmt.Printf("effective coverage (excluding redundant faults): %.1f%%\n",
		100*float64(rep.Detected())/float64(total-redundant))
}
