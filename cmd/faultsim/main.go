// Command faultsim runs a stand-alone gate-level stuck-at fault
// simulation of a low-pass FIR filter with a multi-tone stimulus and
// exact output comparison — the ideal-input digital-test baseline of
// the paper.
//
// Usage:
//
//	faultsim [-taps 16] [-width 10] [-patterns 1024] [-tones 2]
//	         [-amp 460] [-collapse] [-undetected]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"mstx/internal/atpg"
	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/fault"
	"mstx/internal/netlist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faultsim: ")
	var (
		taps       = flag.Int("taps", 16, "filter length")
		width      = flag.Int("width", 10, "input word width (bits)")
		patterns   = flag.Int("patterns", 1024, "record length")
		tones      = flag.Int("tones", 2, "stimulus tone count")
		amp        = flag.Float64("amp", 460, "composite stimulus amplitude (codes)")
		collapse   = flag.Bool("collapse", true, "apply structural fault collapsing")
		undetected = flag.Bool("undetected", false, "list undetected faults")
		topoff     = flag.Bool("atpg", false, "run PODEM on the undetected faults (DFT top-off)")
		diagnose   = flag.Int("diagnose", -1, "inject the i-th fault, observe, and locate it via the fault dictionary")
		cutoff     = flag.Float64("cutoff", 0.15, "filter normalized cutoff")
		dump       = flag.String("dump", "", "write the gate-level netlist to this file and exit")
		fracBits   = flag.Int("frac", 8, "coefficient fractional bits")
	)
	flag.Parse()

	coeffs, err := digital.DesignLowPassFIR(*taps, *cutoff, dsp.Hamming)
	if err != nil {
		log.Fatal(err)
	}
	ints, scale, err := digital.QuantizeCoeffs(coeffs, *fracBits)
	if err != nil {
		log.Fatal(err)
	}
	fir, err := digital.NewFIR(ints, *width)
	if err != nil {
		log.Fatal(err)
	}
	st := fir.Circuit.Stats()
	fmt.Printf("filter: %d taps, %d-bit input, coefficients x%g\n", *taps, *width, scale)
	fmt.Printf("netlist: %s\n", st)
	if *dump != "" {
		fh, err := os.Create(*dump)
		if err != nil {
			log.Fatal(err)
		}
		if err := netlist.Write(fh, fir.Circuit); err != nil {
			log.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("netlist written to %s\n", *dump)
		return
	}

	u := fault.NewUniverse(fir, *collapse)
	full := fault.NewUniverse(fir, false)
	fmt.Printf("faults: %d (collapsed from %d)\n\n", u.Size(), full.Size())

	n := *patterns
	xs := make([]int64, n)
	bins := []int{n/16 + 1, n/16 + 17, n/16 - 13, n/16 + 29, n/16 + 5}
	if *tones < 1 || *tones > len(bins) {
		log.Fatalf("tones must be in [1, %d]", len(bins))
	}
	per := *amp / float64(*tones)
	for i := range xs {
		var v float64
		for t := 0; t < *tones; t++ {
			v += per * math.Sin(2*math.Pi*float64(bins[t])*float64(i)/float64(n)+float64(t))
		}
		xs[i] = int64(math.Round(v))
	}
	rep, err := fault.Simulate(u, xs, fault.ExactDetector{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	und := rep.UndetectedResults()
	for _, lsbs := range []int{3, 5, 8} {
		fmt.Printf("undetected confined to %d LSBs: %.1f%%\n",
			lsbs, 100*fault.LSBConfinement(und, lsbs))
	}
	if *undetected {
		fmt.Println("\nundetected faults:")
		for _, r := range und {
			fmt.Printf("  %-12s tap %2d  max|diff| %d\n", r.Fault, r.Tap, r.MaxAbsDiff)
		}
	}
	if *diagnose >= 0 {
		if *diagnose >= u.Size() {
			log.Fatalf("-diagnose index %d out of range [0,%d)", *diagnose, u.Size())
		}
		dict, err := fault.BuildDictionary(u, xs)
		if err != nil {
			log.Fatal(err)
		}
		f := u.Faults[*diagnose]
		sim := digital.NewFIRSim(fir)
		if err := sim.InjectFault(f, ^uint64(0)); err != nil {
			log.Fatal(err)
		}
		observed, err := sim.RunPeriodic(xs)
		if err != nil {
			log.Fatal(err)
		}
		good := fir.ReferencePeriodic(xs)
		cands, err := dict.Diagnose(good, observed, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ninjected %v (tap %d); dictionary candidates:\n", f, fir.TapOfNet(f.Net))
		for i, c := range cands {
			exact := ""
			if c.Exact {
				exact = " (exact)"
			}
			fmt.Printf("  %d. %-12s tap %2d  score %.3f%s\n",
				i+1, c.Fault, fir.TapOfNet(c.Fault.Net), c.Score, exact)
		}
	}
	if *topoff {
		sum, err := atpg.Classify(fir.Circuit, rep.Undetected(), 5000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nATPG top-off on the functional residue: %s\n", sum)
		verified := 0
		for _, r := range sum.Testable {
			burst, err := atpg.PatternToSamples(fir, r.Pattern)
			if err != nil {
				log.Fatal(err)
			}
			ok, err := atpg.VerifyPattern(fir, r.Fault, burst)
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				verified++
			}
		}
		fmt.Printf("sample bursts verified: %d/%d\n", verified, len(sum.Testable))
		total := len(rep.Results)
		redundant := len(sum.Untestable)
		fmt.Printf("effective coverage (excluding redundant faults): %.1f%%\n",
			100*float64(rep.Detected())/float64(total-redundant))
	}
}
