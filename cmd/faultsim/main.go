// Command faultsim runs a stand-alone gate-level stuck-at fault
// simulation of a low-pass FIR filter with a multi-tone stimulus and
// exact output comparison — the ideal-input digital-test baseline of
// the paper.
//
// Usage:
//
//	faultsim [-taps 16] [-width 10] [-patterns 1024] [-tones 2]
//	         [-amp 460] [-collapse] [-undetected] [-spectral]
//	         [-checkpoint dir] [-checkpoint-every n] [-resume]
//	         [-timeout d]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	"mstx/internal/atpg"
	"mstx/internal/campaign"
	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/fault"
	"mstx/internal/netlist"
	"mstx/internal/resilient"
	"mstx/internal/spectest"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges (args, stdout, stderr, exit
// code) injected, so the CLI surface is testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		taps       = fs.Int("taps", 16, "filter length")
		width      = fs.Int("width", 10, "input word width (bits)")
		patterns   = fs.Int("patterns", 1024, "record length")
		tones      = fs.Int("tones", 2, "stimulus tone count")
		amp        = fs.Float64("amp", 460, "composite stimulus amplitude (codes)")
		collapse   = fs.Bool("collapse", true, "apply structural fault collapsing")
		undetected = fs.Bool("undetected", false, "list undetected faults")
		topoff     = fs.Bool("atpg", false, "run PODEM on the undetected faults (DFT top-off)")
		diagnose   = fs.Int("diagnose", -1, "inject the i-th fault, observe, and locate it via the fault dictionary")
		cutoff     = fs.Float64("cutoff", 0.15, "filter normalized cutoff")
		dump       = fs.String("dump", "", "write the gate-level netlist to this file and exit")
		fracBits   = fs.Int("frac", 8, "coefficient fractional bits")
		spectral   = fs.Bool("spectral", false, "also run the pooled spectral-signature campaign")
		noise      = fs.Float64("noise", 1.5, "input noise sigma (codes) for the spectral floor calibration")
		seed       = fs.Int64("seed", 1, "seed for the spectral calibration capture")
		ckptDir    = fs.String("checkpoint", "", "checkpoint directory: snapshot campaign progress for -resume")
		ckptEvery  = fs.Int("checkpoint-every", 1, "snapshot every n completed batches")
		resume     = fs.Bool("resume", false, "resume from the -checkpoint directory instead of restarting")
		timeout    = fs.Duration("timeout", 0, "abort the run after this long (0 = no limit); partial results are reported")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(stderr, "faultsim: -resume requires -checkpoint")
		fs.Usage()
		return 2
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var ckpt *resilient.Checkpointer
	if *ckptDir != "" {
		ckpt = &resilient.Checkpointer{Dir: *ckptDir, Every: *ckptEvery, Resume: *resume}
	}
	cfg := simConfig{
		taps: *taps, width: *width, patterns: *patterns, tones: *tones,
		amp: *amp, collapse: *collapse, undetected: *undetected,
		topoff: *topoff, diagnose: *diagnose, cutoff: *cutoff,
		dump: *dump, fracBits: *fracBits, spectral: *spectral,
		noise: *noise, seed: *seed, ckpt: ckpt,
	}
	if err := simulate(ctx, cfg, stdout); err != nil {
		fmt.Fprintf(stderr, "faultsim: %v\n", err)
		return 1
	}
	return 0
}

// simConfig is the parsed CLI surface.
type simConfig struct {
	taps, width, patterns, tones int
	amp                          float64
	collapse, undetected, topoff bool
	diagnose                     int
	cutoff                       float64
	dump                         string
	fracBits                     int
	spectral                     bool
	noise                        float64
	seed                         int64
	ckpt                         *resilient.Checkpointer
}

func simulate(ctx context.Context, cfg simConfig, w io.Writer) error {
	coeffs, err := digital.DesignLowPassFIR(cfg.taps, cfg.cutoff, dsp.Hamming)
	if err != nil {
		return err
	}
	ints, scale, err := digital.QuantizeCoeffs(coeffs, cfg.fracBits)
	if err != nil {
		return err
	}
	fir, err := digital.NewFIR(ints, cfg.width)
	if err != nil {
		return err
	}
	st := fir.Circuit.Stats()
	fmt.Fprintf(w, "filter: %d taps, %d-bit input, coefficients x%g\n", cfg.taps, cfg.width, scale)
	fmt.Fprintf(w, "netlist: %s\n", st)
	if cfg.dump != "" {
		fh, err := os.Create(cfg.dump)
		if err != nil {
			return err
		}
		if err := netlist.Write(fh, fir.Circuit); err != nil {
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "netlist written to %s\n", cfg.dump)
		return nil
	}

	u := fault.NewUniverse(fir, cfg.collapse)
	full := fault.NewUniverse(fir, false)
	fmt.Fprintf(w, "faults: %d (collapsed from %d)\n\n", u.Size(), full.Size())

	n := cfg.patterns
	xs := make([]int64, n)
	bins := []int{n/16 + 1, n/16 + 17, n/16 - 13, n/16 + 29, n/16 + 5}
	if cfg.tones < 1 || cfg.tones > len(bins) {
		return fmt.Errorf("tones must be in [1, %d]", len(bins))
	}
	per := cfg.amp / float64(cfg.tones)
	for i := range xs {
		var v float64
		for t := 0; t < cfg.tones; t++ {
			v += per * math.Sin(2*math.Pi*float64(bins[t])*float64(i)/float64(n)+float64(t))
		}
		xs[i] = int64(math.Round(v))
	}
	rep, err := fault.SimulateOpts(ctx, u, xs, fault.ExactDetector{},
		fault.SimOptions{Checkpoint: cfg.ckpt, CheckpointName: "exact"})
	if err != nil {
		if resilient.Interrupted(err) && rep != nil {
			fmt.Fprintf(w, "interrupted (%v); partial results:\n%s\n", err, rep)
		}
		return err
	}
	fmt.Fprintln(w, rep)
	und := rep.UndetectedResults()
	for _, lsbs := range []int{3, 5, 8} {
		fmt.Fprintf(w, "undetected confined to %d LSBs: %.1f%%\n",
			lsbs, 100*fault.LSBConfinement(und, lsbs))
	}
	if cfg.undetected {
		fmt.Fprintln(w, "\nundetected faults:")
		for _, r := range und {
			fmt.Fprintf(w, "  %-12s tap %2d  max|diff| %d\n", r.Fault, r.Tap, r.MaxAbsDiff)
		}
	}
	if cfg.spectral {
		if err := runSpectral(ctx, w, fir, u, xs, bins[:cfg.tones], cfg.noise, cfg.seed, cfg.ckpt); err != nil {
			return err
		}
	}
	if cfg.diagnose >= 0 {
		if cfg.diagnose >= u.Size() {
			return fmt.Errorf("-diagnose index %d out of range [0,%d)", cfg.diagnose, u.Size())
		}
		dict, err := fault.BuildDictionary(u, xs)
		if err != nil {
			return err
		}
		f := u.Faults[cfg.diagnose]
		sim := digital.NewFIRSim(fir)
		if err := sim.InjectFault(f, ^uint64(0)); err != nil {
			return err
		}
		observed, err := sim.RunPeriodic(xs)
		if err != nil {
			return err
		}
		good := fir.ReferencePeriodic(xs)
		cands, err := dict.Diagnose(good, observed, 5)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\ninjected %v (tap %d); dictionary candidates:\n", f, fir.TapOfNet(f.Net))
		for i, c := range cands {
			exact := ""
			if c.Exact {
				exact = " (exact)"
			}
			fmt.Fprintf(w, "  %d. %-12s tap %2d  score %.3f%s\n",
				i+1, c.Fault, fir.TapOfNet(c.Fault.Net), c.Score, exact)
		}
	}
	if cfg.topoff {
		return runTopoff(w, fir, rep)
	}
	return nil
}

// runSpectral runs the spectral-signature campaign on the pooled
// engine: the reference spectrum comes from the good machine on the
// clean stimulus, the uncertainty floor is calibrated from the good
// machine on a noise-dithered copy, and every fault's record is then
// screened and transformed by the campaign workers.
func runSpectral(ctx context.Context, w io.Writer, fir *digital.FIR, u *fault.Universe, xs []int64, toneBins []int, sigma float64, seed int64, ckpt *resilient.Checkpointer) error {
	n := len(xs)
	const fs = 1e6 // label only: bins carry the comparison
	sim := digital.NewFIRSim(fir)
	good, err := sim.RunPeriodic(xs)
	if err != nil {
		return err
	}
	tones := make([]float64, len(toneBins))
	for i, b := range toneBins {
		tones[i] = float64(b) * fs / float64(n)
	}
	det, err := spectest.NewDetector(good, fs, tones, 4, 0, 3)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	noisy := make([]int64, n)
	for i, x := range xs {
		noisy[i] = x + int64(math.Round(rng.NormFloat64()*sigma))
	}
	sim2 := digital.NewFIRSim(fir)
	goodNoisy, err := sim2.RunPeriodic(noisy)
	if err != nil {
		return err
	}
	if err := det.CalibrateFloor(goodNoisy, 1.5); err != nil {
		return err
	}
	eng, err := campaign.New(u, det, campaign.Options{
		Checkpoint: ckpt, CheckpointName: "spectral",
	})
	if err != nil {
		return err
	}
	rep, stats, err := eng.Run(ctx, noisy)
	if err != nil {
		if resilient.Interrupted(err) && rep != nil {
			fmt.Fprintf(w, "\nspectral campaign interrupted (%v); partial results:\n%s\n", err, rep)
		}
		return err
	}
	fmt.Fprintf(w, "\nspectral campaign (floor %.1f dBFS, noise sigma %g): %s\n",
		det.FloorDBFS(), sigma, rep)
	mode := "full per-batch simulation"
	if stats.Differential {
		mode = "differential cone replay"
	}
	fmt.Fprintf(w, "engine: %d batches (%s), %d lanes zero-diff screened, %d memoized, %d spectra computed\n",
		stats.Batches, mode, stats.Screened, stats.Memoized, stats.Spectra)
	return nil
}

// runTopoff classifies the functional residue with PODEM and verifies
// the generated sample bursts.
func runTopoff(w io.Writer, fir *digital.FIR, rep *fault.Report) error {
	sum, err := atpg.Classify(fir.Circuit, rep.Undetected(), 5000)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nATPG top-off on the functional residue: %s\n", sum)
	verified := 0
	for _, r := range sum.Testable {
		burst, err := atpg.PatternToSamples(fir, r.Pattern)
		if err != nil {
			return err
		}
		ok, err := atpg.VerifyPattern(fir, r.Fault, burst)
		if err != nil {
			return err
		}
		if ok {
			verified++
		}
	}
	fmt.Fprintf(w, "sample bursts verified: %d/%d\n", verified, len(sum.Testable))
	total := len(rep.Results)
	redundant := len(sum.Untestable)
	fmt.Fprintf(w, "effective coverage (excluding redundant faults): %.1f%%\n",
		100*float64(rep.Detected())/float64(total-redundant))
	return nil
}
