// Command mstx synthesizes the system-level test program for the
// default mixed-signal communication path and executes it against a
// device instance: the nominal device (-seed 0), a process-varied
// sample (-seed N), or a device with an injected parametric fault.
//
// Usage:
//
//	mstx [-seed N] [-fault name=delta] [-n 4096] [-plan]
//	     [-mc-refine] [-mc-losses] [-mc-samples N] [-mc-ci W] [-workers K]
//	     [-checkpoint dir] [-checkpoint-every N] [-resume] [-timeout D]
//	     [-metrics] [-trace] [-obs-out file] [-debug-addr host:port]
//
// Faults: amp-gain, mixer-gain, mixer-iip3, lpf-fc, lpf-gain,
// lo-freq (value is added to the parameter; lpf-fc is relative).
//
// The -mc-* flags drive the sharded Monte-Carlo engine: -mc-refine
// replaces the analytic propagation error budgets with MC-estimated
// sigmas before executing, -mc-losses prints an engine-backed FCL/YL
// estimate (with 95% CI half-widths) for every translated test.
//
// The observability flags turn the internal/obs layer on: -metrics
// prints a Prometheus-format metrics report and -trace an indented
// span report after the run, both to stderr (or to a file with
// -obs-out, so the reports never mix into piped stdout). -debug-addr
// additionally serves /metrics, /trace and /debug/pprof over HTTP for
// the life of the process. With none of these flags the engines run
// with observability disabled — the nil-registry fast path.
//
// The resilience flags bound and snapshot the Monte-Carlo work:
// -timeout cancels the run's engines at lane granularity after the
// given duration, -checkpoint makes them snapshot their merged state
// at round barriers into the given directory, and -resume restores
// those snapshots so a killed run continues where it stopped with a
// bit-identical final result.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"mstx/internal/core"
	"mstx/internal/experiments"
	"mstx/internal/obs"
	"mstx/internal/params"
	"mstx/internal/path"
	"mstx/internal/resilient"
	"mstx/internal/tolerance"
	"mstx/internal/translate"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, runs the program
// against the given writers and returns the process exit code (0 ok,
// 1 runtime failure, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mstx", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed      = fs.Int64("seed", 0, "0 = nominal device, otherwise a process-varied sample")
		faultArg  = fs.String("fault", "", "inject a parametric fault, e.g. mixer-iip3=-4")
		n         = fs.Int("n", 4096, "capture length (power of two)")
		planOnly  = fs.Bool("plan", false, "print the synthesized plan and exit without executing")
		mcRefine  = fs.Bool("mc-refine", false, "Monte-Carlo-refine the propagation error budgets before use")
		mcLosses  = fs.Bool("mc-losses", false, "print engine-backed FCL/YL estimates per translated test")
		mcSamples = fs.Int("mc-samples", 200000, "Monte-Carlo sample budget per estimate")
		mcCI      = fs.Float64("mc-ci", 0.005, "95% CI half-width early-stop target for -mc-losses (0 = spend the full budget)")
		workers   = fs.Int("workers", 0, "Monte-Carlo worker fan-out (0 = GOMAXPROCS; results identical for any value)")
		ckptDir   = fs.String("checkpoint", "", "snapshot the Monte-Carlo engines' merged state into this directory at round barriers")
		ckptEvery = fs.Int("checkpoint-every", 1, "save a snapshot every N engine rounds")
		resume    = fs.Bool("resume", false, "resume from snapshots in the -checkpoint directory")
		timeout   = fs.Duration("timeout", 0, "cancel the run after this duration (0 = no deadline)")
		metrics   = fs.Bool("metrics", false, "print a Prometheus-format metrics report after the run")
		trace     = fs.Bool("trace", false, "print a span trace report after the run")
		obsOut    = fs.String("obs-out", "", "write the -metrics/-trace reports to this file instead of stderr")
		debugAddr = fs.String("debug-addr", "", "serve /metrics, /trace and /debug/pprof on this address")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "mstx: unexpected arguments: %q\n", fs.Args())
		fs.Usage()
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "mstx:", err)
		return 1
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(stderr, "mstx: -resume requires -checkpoint")
		fs.Usage()
		return 2
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var ckpt *resilient.Checkpointer
	if *ckptDir != "" {
		ckpt = &resilient.Checkpointer{Dir: *ckptDir, Every: *ckptEvery, Resume: *resume}
	}

	// Observability: install a registry only when a flag asks for it,
	// so the default run keeps the engines on their nil-registry fast
	// path. The report is emitted on every exit path (including
	// failures — a failing run is exactly when the trace matters).
	var reg *obs.Registry
	if *metrics || *trace || *obsOut != "" || *debugAddr != "" {
		reg = obs.New()
		obs.SetDefault(reg)
		defer obs.SetDefault(nil)
		if *debugAddr != "" {
			addr, _, err := obs.ServeDebug(*debugAddr, reg)
			if err != nil {
				return fail(err)
			}
			fmt.Fprintf(stderr, "mstx: debug server on http://%s (metrics, trace, debug/pprof)\n", addr)
		}
		defer func() {
			if err := writeObsReport(reg, stderr, *metrics || *obsOut != "", *trace, *obsOut); err != nil {
				fmt.Fprintln(stderr, "mstx:", err)
			}
		}()
	}
	runCtx, runSp := obs.Span(nil, "mstx.run")
	defer runSp.End()

	_, synthSp := obs.Span(runCtx, "mstx.synthesize")
	spec, err := experiments.BuildDefaultSpec()
	if err != nil {
		return fail(err)
	}
	synth, err := core.New(spec)
	if err != nil {
		return fail(err)
	}
	plan, err := synth.Synthesize(nil)
	synthSp.End()
	if err != nil {
		return fail(err)
	}

	var device *path.Path
	if *seed == 0 {
		device, err = spec.Build()
	} else {
		device, err = spec.Sample(rand.New(rand.NewSource(*seed)))
	}
	if err != nil {
		return fail(err)
	}
	if *faultArg != "" {
		if err := injectFault(device, *faultArg); err != nil {
			fmt.Fprintln(stderr, "mstx:", err)
			fs.Usage()
			return 2
		}
	}

	mcCfg := translate.MCConfig{Samples: *mcSamples, Seed: *seed, Workers: *workers, Checkpoint: ckpt}
	if *mcRefine {
		_, refineSp := obs.Span(runCtx, "mstx.mc_refine")
		err := translate.RefineErrSigmaMC(ctx, device, plan, mcCfg)
		refineSp.End()
		if err != nil {
			return fail(err)
		}
	}

	fmt.Fprintf(stdout, "synthesized %d tests (%d need DFT), %d boundary checks\n\n",
		len(plan.Tests), len(plan.DFTRequired), len(plan.Boundary))
	if *planOnly {
		printPlan(stdout, plan)
		return 0
	}
	if *faultArg != "" {
		fmt.Fprintf(stdout, "injected parametric fault: %s\n\n", *faultArg)
	}
	if *mcLosses {
		_, lossSp := obs.Span(runCtx, "mstx.mc_losses")
		err := printMCLosses(ctx, stdout, plan, *mcSamples, *mcCI, *workers, *seed, ckpt)
		lossSp.End()
		if err != nil {
			return fail(err)
		}
	}

	cfg := params.Config{N: *n, Settle: 512}
	// Measurements run with the device's own noise active (a seeded
	// RNG): sub-LSB spurs such as the LO leak rely on converter dither
	// to be measured linearly.
	_, execSp := obs.Span(runCtx, "mstx.execute")
	outcomes, err := synth.Execute(device, cfg, rand.New(rand.NewSource(*seed+1)))
	execSp.End()
	if err != nil {
		return fail(err)
	}
	fails := 0
	for _, o := range outcomes {
		if o.Skipped {
			fmt.Fprintf(stdout, "SKIP  %-14s %-10s (%s)\n", o.Test.Request.Param, "", o.Test.Reason)
			continue
		}
		verdict := "pass"
		if !o.Pass {
			verdict = "FAIL"
			fails++
		}
		fmt.Fprintf(stdout, "%-5s %-14s [%s] measured %.4g %s (true %.4g, err %+.3g)\n",
			verdict, o.Test.Request.Param, o.Test.Method,
			o.Result.Measured, o.Result.Unit, o.Result.True, o.Result.Delta())
	}
	rng := rand.New(rand.NewSource(*seed + 99))
	_, boundSp := obs.Span(runCtx, "mstx.boundaries")
	checks, err := synth.CheckBoundaries(device, cfg, rng)
	boundSp.End()
	if err != nil {
		return fail(err)
	}
	for i, ok := range checks {
		verdict := "pass"
		if !ok {
			verdict = "FAIL"
			fails++
		}
		fmt.Fprintf(stdout, "%-5s boundary check %d (%v at %.3g V)\n",
			verdict, i, plan.Boundary[i].Kind, plan.Boundary[i].PIAmplitude)
	}
	if fails > 0 {
		fmt.Fprintf(stdout, "\ndevice REJECTED: %d failing tests\n", fails)
	} else {
		fmt.Fprintf(stdout, "\ndevice ACCEPTED\n")
	}
	return 0
}

// printPlan renders the synthesized plan without executing it.
func printPlan(w io.Writer, plan *translate.Plan) {
	for _, t := range plan.Tests {
		fmt.Fprintf(w, "%2d  %-14s %-12s %-14s σ=%-8.3g captures=%d  %s\n",
			t.Order, t.Request.Param, t.Kind, t.Method, t.ErrSigma, t.Captures, t.Reason)
	}
}

// printMCLosses runs the engine-backed loss estimate for every
// translated test with an error budget.
func printMCLosses(ctx context.Context, w io.Writer, plan *translate.Plan, samples int, ci float64, workers int, seed int64, ckpt *resilient.Checkpointer) error {
	fmt.Fprintf(w, "Monte-Carlo loss estimates (budget %d, CI target %g):\n", samples, ci)
	for i, t := range plan.Tests {
		if t.Kind == translate.Direct || t.ErrSigma <= 0 {
			continue
		}
		est, err := tolerance.MonteCarloLosses(ctx,
			t.Request.Dist, tolerance.Normal{Sigma: t.ErrSigma},
			t.Request.Limit, t.Request.Limit,
			samples, seed+1000+int64(i),
			tolerance.MCOptions{
				Workers: workers, CheckEvery: 2, TargetHalfWidth: ci,
				Checkpoint:     ckpt,
				CheckpointName: fmt.Sprintf("losses_%d_%s", i, t.Request.Param),
			})
		if err != nil {
			return fmt.Errorf("%s: %w", t.Request.Param, err)
		}
		fmt.Fprintf(w, "  %-14s FCL %6.2f%% ±%.2f  YL %6.2f%% ±%.2f  (n=%d",
			t.Request.Param, 100*est.FCL, 100*est.FCLHalfWidth,
			100*est.YL, 100*est.YLHalfWidth, est.Samples)
		if est.Converged {
			fmt.Fprintf(w, ", converged")
		}
		fmt.Fprintf(w, ")\n")
	}
	fmt.Fprintln(w)
	return nil
}

// writeObsReport emits the -metrics and/or -trace run report to
// stderr, or to the -obs-out file when given (metrics implied then).
func writeObsReport(reg *obs.Registry, stderr io.Writer, metrics, trace bool, outPath string) error {
	w := stderr
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if metrics {
		if err := reg.WriteText(w); err != nil {
			return err
		}
	}
	if trace {
		if err := reg.WriteTrace(w); err != nil {
			return err
		}
	}
	return nil
}

// injectFault applies "name=delta" to the device's actual parameters.
func injectFault(d *path.Path, arg string) error {
	parts := strings.SplitN(arg, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("bad -fault %q, want name=delta", arg)
	}
	delta, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return fmt.Errorf("bad delta in -fault: %v", err)
	}
	switch parts[0] {
	case "amp-gain":
		d.Amp.GainDB += delta
	case "mixer-gain":
		d.Mixer.ConvGainDB += delta
	case "mixer-iip3":
		d.Mixer.IIP3DBm += delta
	case "lpf-fc":
		d.LPF.CutoffHz *= 1 + delta
	case "lpf-gain":
		d.LPF.GainDB += delta
	case "lo-freq":
		d.LO.FreqHz += delta
	default:
		return fmt.Errorf("unknown fault target %q", parts[0])
	}
	return nil
}
