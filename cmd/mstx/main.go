// Command mstx synthesizes the system-level test program for the
// default mixed-signal communication path and executes it against a
// device instance: the nominal device (-seed 0), a process-varied
// sample (-seed N), or a device with an injected parametric fault.
//
// Usage:
//
//	mstx [-seed N] [-fault name=delta] [-n 4096]
//
// Faults: amp-gain, mixer-gain, mixer-iip3, lpf-fc, lpf-gain,
// lo-freq (value is added to the parameter; lpf-fc is relative).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"strings"

	"mstx/internal/core"
	"mstx/internal/experiments"
	"mstx/internal/params"
	"mstx/internal/path"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mstx: ")
	var (
		seed     = flag.Int64("seed", 0, "0 = nominal device, otherwise a process-varied sample")
		faultArg = flag.String("fault", "", "inject a parametric fault, e.g. mixer-iip3=-4")
		n        = flag.Int("n", 4096, "capture length (power of two)")
	)
	flag.Parse()

	spec, err := experiments.BuildDefaultSpec()
	if err != nil {
		log.Fatal(err)
	}
	synth, err := core.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := synth.Synthesize(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %d tests (%d need DFT), %d boundary checks\n\n",
		len(plan.Tests), len(plan.DFTRequired), len(plan.Boundary))

	var device *path.Path
	if *seed == 0 {
		device, err = spec.Build()
	} else {
		device, err = spec.Sample(rand.New(rand.NewSource(*seed)))
	}
	if err != nil {
		log.Fatal(err)
	}
	if *faultArg != "" {
		if err := injectFault(device, *faultArg); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("injected parametric fault: %s\n\n", *faultArg)
	}

	cfg := params.Config{N: *n, Settle: 512}
	// Measurements run with the device's own noise active (a seeded
	// RNG): sub-LSB spurs such as the LO leak rely on converter dither
	// to be measured linearly.
	outcomes, err := synth.Execute(device, cfg, rand.New(rand.NewSource(*seed+1)))
	if err != nil {
		log.Fatal(err)
	}
	fails := 0
	for _, o := range outcomes {
		if o.Skipped {
			fmt.Printf("SKIP  %-14s %-10s (%s)\n", o.Test.Request.Param, "", o.Test.Reason)
			continue
		}
		verdict := "pass"
		if !o.Pass {
			verdict = "FAIL"
			fails++
		}
		fmt.Printf("%-5s %-14s [%s] measured %.4g %s (true %.4g, err %+.3g)\n",
			verdict, o.Test.Request.Param, o.Test.Method,
			o.Result.Measured, o.Result.Unit, o.Result.True, o.Result.Delta())
	}
	rng := rand.New(rand.NewSource(*seed + 99))
	checks, err := synth.CheckBoundaries(device, cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	for i, ok := range checks {
		verdict := "pass"
		if !ok {
			verdict = "FAIL"
			fails++
		}
		fmt.Printf("%-5s boundary check %d (%v at %.3g V)\n",
			verdict, i, plan.Boundary[i].Kind, plan.Boundary[i].PIAmplitude)
	}
	if fails > 0 {
		fmt.Printf("\ndevice REJECTED: %d failing tests\n", fails)
	} else {
		fmt.Printf("\ndevice ACCEPTED\n")
	}
}

// injectFault applies "name=delta" to the device's actual parameters.
func injectFault(d *path.Path, arg string) error {
	parts := strings.SplitN(arg, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("bad -fault %q, want name=delta", arg)
	}
	delta, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return fmt.Errorf("bad delta in -fault: %v", err)
	}
	switch parts[0] {
	case "amp-gain":
		d.Amp.GainDB += delta
	case "mixer-gain":
		d.Mixer.ConvGainDB += delta
	case "mixer-iip3":
		d.Mixer.IIP3DBm += delta
	case "lpf-fc":
		d.LPF.CutoffHz *= 1 + delta
	case "lpf-gain":
		d.LPF.GainDB += delta
	case "lo-freq":
		d.LO.FreqHz += delta
	default:
		return fmt.Errorf("unknown fault target %q", parts[0])
	}
	return nil
}
