package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestBadFlagExitsWithUsage(t *testing.T) {
	code, _, stderr := runCapture(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "-seed") {
		t.Errorf("stderr carries no usage text:\n%s", stderr)
	}
}

func TestPositionalArgsRejected(t *testing.T) {
	code, _, stderr := runCapture(t, "stray")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unexpected arguments") {
		t.Errorf("stderr = %q", stderr)
	}
}

func TestBadFaultSyntaxIsUsageError(t *testing.T) {
	for _, arg := range []string{"mixer-iip3", "mixer-iip3=xyz", "no-such-block=1"} {
		code, _, stderr := runCapture(t, "-plan", "-fault", arg)
		if code != 2 {
			t.Errorf("-fault %q: exit code = %d, want 2 (stderr %q)", arg, code, stderr)
		}
	}
}

func TestPlanOnlyPrintsPlanWithoutExecuting(t *testing.T) {
	code, stdout, stderr := runCapture(t, "-plan")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "synthesized") {
		t.Errorf("no synthesis summary:\n%s", stdout)
	}
	for _, want := range []string{"path-gain", "mixer-iip3", "lpf-cutoff"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("plan listing lacks %q:\n%s", want, stdout)
		}
	}
	if strings.Contains(stdout, "ACCEPTED") || strings.Contains(stdout, "REJECTED") {
		t.Errorf("-plan must not execute the program:\n%s", stdout)
	}
}

func TestPlanMCRefineAnnotates(t *testing.T) {
	code, stdout, stderr := runCapture(t, "-plan", "-mc-refine", "-mc-samples", "20000")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "MC-refined") {
		t.Errorf("refined plan not annotated:\n%s", stdout)
	}
}

func TestNominalDeviceAccepted(t *testing.T) {
	if testing.Short() {
		t.Skip("full execution in -short mode")
	}
	code, stdout, stderr := runCapture(t, "-n", "1024", "-mc-losses", "-mc-samples", "40000", "-mc-ci", "0.01")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "device ACCEPTED") {
		t.Errorf("nominal device not accepted:\n%s", stdout)
	}
	if !strings.Contains(stdout, "Monte-Carlo loss estimates") || !strings.Contains(stdout, "FCL") {
		t.Errorf("-mc-losses output missing:\n%s", stdout)
	}
}

// checkPromParseable asserts every non-comment, non-blank line of a
// Prometheus text exposition is "name[{labels}] value" with a numeric
// value.
func checkPromParseable(t *testing.T, text string) {
	t.Helper()
	n := 0
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("unparseable metrics line %q", line)
			continue
		}
		if v := fields[1]; v != "+Inf" && v != "-Inf" && v != "NaN" {
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				t.Errorf("non-numeric value in %q: %v", line, err)
			}
		}
		n++
	}
	if n == 0 {
		t.Error("metrics report has no sample lines")
	}
}

func TestObsReportsGoToStderrNotStdout(t *testing.T) {
	code, stdout, stderr := runCapture(t,
		"-plan", "-mc-refine", "-mc-samples", "2000", "-metrics", "-trace")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "# TYPE") || !strings.Contains(stderr, "translate_mc_draws_total") {
		t.Errorf("-metrics report missing from stderr:\n%s", stderr)
	}
	if !strings.Contains(stderr, "TRACE") || !strings.Contains(stderr, "mstx.run") {
		t.Errorf("-trace report missing from stderr:\n%s", stderr)
	}
	if strings.Contains(stdout, "# TYPE") || strings.Contains(stdout, "TRACE") {
		t.Errorf("obs reports leaked into stdout:\n%s", stdout)
	}
}

func TestObsOutFileIsParseable(t *testing.T) {
	out := filepath.Join(t.TempDir(), "metrics.prom")
	code, _, stderr := runCapture(t,
		"-plan", "-mc-refine", "-mc-samples", "2000", "-obs-out", out)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading -obs-out file: %v", err)
	}
	text := string(b)
	if !strings.Contains(text, "translate_mc_draws_total") {
		t.Errorf("-obs-out report lacks the refine counter:\n%s", text)
	}
	checkPromParseable(t, text)
}

func TestFaultyDeviceRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("full execution in -short mode")
	}
	code, stdout, stderr := runCapture(t, "-n", "1024", "-fault", "mixer-iip3=-6")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "device REJECTED") {
		t.Errorf("grossly faulty device accepted:\n%s", stdout)
	}
}
