package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServerClientRoundTrip boots the real binary entry point (run)
// on a free port, drives it with the client mode, and shuts it down
// with SIGTERM — the same lifecycle scripts/check.sh smokes.
func TestServerClientRoundTrip(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	ready := make(chan string, 1)
	var srvErr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-workers", "1",
		}, &bytes.Buffer{}, &srvErr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("server never came up: %s", srvErr.String())
	}
	if raw, err := os.ReadFile(addrFile); err != nil || strings.TrimSpace(string(raw)) != addr {
		t.Fatalf("addr-file %q err %v, want %q", raw, err, addr)
	}

	var out, errb bytes.Buffer
	code := run([]string{
		"-connect", addr,
		"-submit", `{"kind":"translate","param":"IIP3","samples":4096,"batch_size":512}`,
		"-tenant", "smoke", "-wait",
	}, &out, &errb, nil)
	if code != 0 {
		t.Fatalf("client exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "referral error mixer-iip3") {
		t.Fatalf("client output %q", out.String())
	}

	// Identical resubmission must be reported as a cache hit.
	out.Reset()
	errb.Reset()
	code = run([]string{
		"-connect", addr,
		"-submit", `{"kind":"translate","param":"mixer-iip3","samples":4096,"batch_size":512}`,
		"-wait",
	}, &out, &errb, nil)
	if code != 0 {
		t.Fatalf("client resubmit exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "served from cache") {
		t.Fatalf("resubmission not served from cache: %s", errb.String())
	}

	// Bad spec: usage-level client failure, typed body relayed.
	code = run([]string{
		"-connect", addr, "-submit", `{"kind":"nope"}`, "-wait",
	}, &out, &errb, nil)
	if code != 1 || !strings.Contains(errb.String(), "bad_request") {
		t.Fatalf("bad spec: exit %d, stderr %s", code, errb.String())
	}

	// SIGTERM stops the server cleanly.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("server exit %d: %s", code, srvErr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server never stopped: %s", srvErr.String())
	}
}

func TestParseWeights(t *testing.T) {
	w, err := parseWeights("prod=3, batch=1")
	if err != nil || w["prod"] != 3 || w["batch"] != 1 {
		t.Fatalf("parseWeights: %v %v", w, err)
	}
	if _, err := parseWeights("prod"); err == nil {
		t.Fatal("missing = accepted")
	}
	if _, err := parseWeights("prod=0"); err == nil {
		t.Fatal("zero weight accepted")
	}
	if w, err := parseWeights(""); err != nil || w != nil {
		t.Fatalf("empty weights: %v %v", w, err)
	}
}

func TestClientUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-connect", "127.0.0.1:1"}, &out, &errb, nil); code != 2 {
		t.Fatalf("-connect without -submit: exit %d", code)
	}
	if code := run([]string{"stray"}, &out, &errb, nil); code != 2 {
		t.Fatalf("stray args: exit %d", code)
	}
	if code := run([]string{"-weights", "x"}, &out, &errb, nil); code != 2 {
		t.Fatalf("bad weights: exit %d", code)
	}
}

// TestRelaySSE: the client-side SSE relay forwards event and data
// lines verbatim but swallows blank separators and ": ping" heartbeat
// comments — heartbeats keep proxies alive, they are not payload.
func TestRelaySSE(t *testing.T) {
	in := strings.NewReader(": ping\n\nevent: span\ndata: {\"n\":1}\n\n: ping\n\nevent: done\ndata: {}\n\n")
	var out bytes.Buffer
	if err := relaySSE(in, &out); err != nil {
		t.Fatal(err)
	}
	want := "event: span\ndata: {\"n\":1}\nevent: done\ndata: {}\n"
	if out.String() != want {
		t.Fatalf("relay output %q, want %q", out.String(), want)
	}
}

// TestClientTimeout: a client -timeout that expires while the job is
// still running exits with the dedicated code 4, distinct from job
// failure (1) and usage errors (2), and says so on stderr.
func TestClientTimeout(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	ready := make(chan string, 1)
	var srvErr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-workers", "1",
		}, &bytes.Buffer{}, &srvErr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("server never came up: %s", srvErr.String())
	}

	// A campaign big enough to outlive a 50ms client budget.
	var out, errb bytes.Buffer
	code := run([]string{
		"-connect", addr,
		"-submit", `{"kind":"campaign","patterns":256}`,
		"-wait", "-timeout", "50ms",
	}, &out, &errb, nil)
	if code != 4 {
		t.Fatalf("client timeout exit %d, want 4; stderr %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "client timeout") {
		t.Fatalf("timeout not reported on stderr: %q", errb.String())
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("server exit %d: %s", code, srvErr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server never stopped: %s", srvErr.String())
	}
}
