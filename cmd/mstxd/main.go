// Command mstxd serves the mstx engines as a multi-tenant job
// service: campaign, Monte-Carlo, translation and SOC test-planning
// jobs over HTTP/JSON with per-tenant fair queueing, a
// content-addressed result cache and checkpointed restart-resume. The
// same binary doubles as a minimal client for scripts and smokes.
//
// Server:
//
//	mstxd [-addr host:port] [-addr-file path]
//	      [-workers N] [-engine-workers K]
//	      [-max-queued N] [-max-queued-tenant N] [-weights t=w,...]
//	      [-checkpoint dir] [-checkpoint-every n] [-resume]
//	      [-retry-max N] [-retry-base d] [-default-deadline d] [-max-deadline d]
//	      [-breaker-window N] [-breaker-threshold f] [-breaker-open-for d]
//
// Client:
//
//	mstxd -connect host:port -submit '{"kind":"mc","devices":6}'
//	      [-tenant name] [-wait] [-events] [-timeout d]
//
// Job kinds: "campaign" (spectral fault campaign), "mc" (E6 Table 2
// study), "translate" (referral-error MC) and "soc" (E9 multi-core
// SOC TAM schedule sweep).
//
// The server installs the full API under /v1 plus /healthz, /readyz
// and the obs debug surface (/metrics, /trace, /debug/pprof) on one
// listener; SIGINT or SIGTERM stops it gracefully, leaving in-flight
// jobs resumable when -checkpoint is set. The client submits one job;
// with -wait it polls to a terminal state, prints the result text to
// stdout (so output is diffable against the equivalent CLI run) and
// exits 0 for done, 3 for partial (including a deadline-expired job
// with a salvaged partial result), 4 when -timeout expires client-side
// and 1 otherwise.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mstx/internal/obs"
	"mstx/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable entry point. ready, when non-nil, receives the
// bound listen address once the server is accepting (tests use it
// instead of -addr-file). Exit codes: 0 ok, 1 failure, 2 usage, 3
// partial result (client -wait), 4 client-side -timeout expiry.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("mstxd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8321", "listen address (host:port, port 0 picks a free port)")
		addrFile  = fs.String("addr-file", "", "write the bound address to this file once listening")
		workers   = fs.Int("workers", 2, "concurrent jobs (scheduler slots)")
		engineW   = fs.Int("engine-workers", 0, "per-job engine fan-out (0 = engine default)")
		maxTotal  = fs.Int("max-queued", 64, "global queued-job bound (admission control)")
		maxTenant = fs.Int("max-queued-tenant", 16, "per-tenant queued-job bound")
		weights   = fs.String("weights", "", "per-tenant scheduling weights, e.g. prod=3,batch=1")
		ckptDir   = fs.String("checkpoint", "", "durability directory for the job ledger and engine snapshots")
		ckptEvery = fs.Int("checkpoint-every", 0, "engine snapshot cadence in engine units (<=1 every unit)")
		resume    = fs.Bool("resume", false, "replay the ledger in -checkpoint on startup")

		retryMax   = fs.Int("retry-max", 2, "automatic retries per job for retryable engine failures (0 disables)")
		retryBase  = fs.Duration("retry-base", 100*time.Millisecond, "retry backoff base (exponential, capped, jittered)")
		defDeadl   = fs.Duration("default-deadline", 0, "default per-job wall budget when the spec has no deadline_ms (0 = unlimited)")
		maxDeadl   = fs.Duration("max-deadline", 0, "cap on every job's wall budget (0 = no cap)")
		brkWindow  = fs.Int("breaker-window", 16, "circuit-breaker outcome window per job kind")
		brkThresh  = fs.Float64("breaker-threshold", 0.5, "windowed failure rate that opens a kind's breaker")
		brkOpenFor = fs.Duration("breaker-open-for", 5*time.Second, "how long an open breaker sheds before probing")
		heartbeat  = fs.Duration("heartbeat", 15*time.Second, "SSE comment-ping interval keeping idle event streams alive")

		connect = fs.String("connect", "", "client mode: server address to talk to")
		submit  = fs.String("submit", "", "client mode: job spec JSON to submit")
		tenant  = fs.String("tenant", "", "client mode: tenant name (X-Mstx-Tenant)")
		wait    = fs.Bool("wait", false, "client mode: poll the job to a terminal state and print its result text")
		events  = fs.Bool("events", false, "client mode: stream the job's SSE events to stderr while waiting")
		timeout = fs.Duration("timeout", 0, "client mode: overall wall budget for -wait/-events (0 = none; exit 4 on expiry)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "mstxd: unexpected arguments %q\n", fs.Args())
		return 2
	}

	if *connect != "" {
		return runClient(*connect, *submit, *tenant, *wait, *events, *timeout, stdout, stderr)
	}

	w, err := parseWeights(*weights)
	if err != nil {
		fmt.Fprintf(stderr, "mstxd: %v\n", err)
		return 2
	}
	srv, err := server.New(server.Config{
		Workers:            *workers,
		EngineWorkers:      *engineW,
		MaxQueuedTotal:     *maxTotal,
		MaxQueuedPerTenant: *maxTenant,
		Weights:            w,
		CheckpointDir:      *ckptDir,
		CheckpointEvery:    *ckptEvery,
		Resume:             *resume,
		RetryMax:           *retryMax,
		RetryBase:          *retryBase,
		DefaultDeadline:    *defDeadl,
		MaxDeadline:        *maxDeadl,
		BreakerWindow:      *brkWindow,
		BreakerThreshold:   *brkThresh,
		BreakerOpenFor:     *brkOpenFor,
		Heartbeat:          *heartbeat,
		Registry:           obs.New(),
	})
	if err != nil {
		fmt.Fprintf(stderr, "mstxd: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "mstxd: listen %s: %v\n", *addr, err)
		srv.Close()
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "mstxd: write -addr-file: %v\n", err)
			srv.Close()
			return 1
		}
	}
	if ready != nil {
		ready <- bound
	}
	fmt.Fprintf(stderr, "mstxd: listening on %s\n", bound)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case got := <-sig:
		fmt.Fprintf(stderr, "mstxd: %v; shutting down\n", got)
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "mstxd: serve: %v\n", err)
			srv.Close()
			return 1
		}
	}
	hs.Close()
	srv.Close()
	fmt.Fprintln(stderr, "mstxd: stopped")
	return 0
}

// parseWeights parses "tenant=weight,..." into the scheduler map.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	w := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("weights: want tenant=weight, got %q", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("weights: %q: weight must be a positive integer", part)
		}
		w[name] = n
	}
	return w, nil
}

// runClient submits one job and optionally waits for its result.
// timeout, when positive, bounds the whole client interaction (submit,
// polling, event streaming) so a wedged server can't hang the client;
// expiry exits 4.
func runClient(addr, spec, tenant string, wait, events bool, timeout time.Duration, stdout, stderr io.Writer) int {
	if spec == "" {
		fmt.Fprintln(stderr, "mstxd: -connect requires -submit JSON")
		return 2
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	timedOut := func(err error) bool {
		return ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded)
	}
	base := "http://" + addr
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", strings.NewReader(spec))
	if err != nil {
		fmt.Fprintf(stderr, "mstxd: %v\n", err)
		return 1
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Mstx-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		if timedOut(err) {
			fmt.Fprintf(stderr, "mstxd: submit: client timeout after %s\n", timeout)
			return 4
		}
		fmt.Fprintf(stderr, "mstxd: submit: %v\n", err)
		return 1
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		fmt.Fprintf(stderr, "mstxd: submit: %s: %s\n", resp.Status, strings.TrimSpace(string(body)))
		return 1
	}
	var snap server.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		fmt.Fprintf(stderr, "mstxd: decode submit response: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "mstxd: job %s %s\n", snap.ID, snap.State)
	if !wait {
		fmt.Fprintln(stdout, snap.ID)
		return 0
	}

	if events {
		go streamEvents(ctx, base, snap.ID, stderr)
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+snap.ID, nil)
		if err != nil {
			fmt.Fprintf(stderr, "mstxd: poll: %v\n", err)
			return 1
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			if timedOut(err) {
				fmt.Fprintf(stderr, "mstxd: job %s: client timeout after %s\n", snap.ID, timeout)
				return 4
			}
			fmt.Fprintf(stderr, "mstxd: poll: %v\n", err)
			return 1
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(body, &snap); err != nil {
			fmt.Fprintf(stderr, "mstxd: decode job: %v\n", err)
			return 1
		}
		switch snap.State {
		case server.StateDone, server.StatePartial:
			if snap.Result != nil {
				fmt.Fprint(stdout, snap.Result.Text)
			}
			if snap.CacheHit {
				fmt.Fprintf(stderr, "mstxd: job %s served from cache (%s)\n", snap.ID, snap.Identity)
			}
			if snap.State == server.StatePartial {
				return 3
			}
			return 0
		case server.StateDeadline:
			// The job's own wall budget expired server-side. A salvaged
			// partial result is still a (partial) result.
			msg := snap.State
			if snap.Error != nil {
				msg = fmt.Sprintf("%s (%s: %s)", snap.State, snap.Error.Type, snap.Error.Message)
			}
			fmt.Fprintf(stderr, "mstxd: job %s %s\n", snap.ID, msg)
			if snap.Result != nil {
				fmt.Fprint(stdout, snap.Result.Text)
				return 3
			}
			return 1
		case server.StateFailed, server.StateCanceled:
			msg := snap.State
			if snap.Error != nil {
				msg = fmt.Sprintf("%s (%s: %s)", snap.State, snap.Error.Type, snap.Error.Message)
			}
			fmt.Fprintf(stderr, "mstxd: job %s %s\n", snap.ID, msg)
			return 1
		}
		select {
		case <-ctx.Done():
			fmt.Fprintf(stderr, "mstxd: job %s: client timeout after %s\n", snap.ID, timeout)
			return 4
		case <-time.After(150 * time.Millisecond):
		}
	}
}

// streamEvents relays the job's SSE stream to w until it closes or ctx
// expires.
func streamEvents(ctx context.Context, base, id string, w io.Writer) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	_ = relaySSE(resp.Body, w)
}

// relaySSE copies SSE field lines from r to w, dropping the protocol
// noise a human tail doesn't want: blank event separators and
// `:`-prefixed comment lines (the server's heartbeat pings).
func relaySSE(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, ":") {
			continue
		}
		fmt.Fprintln(w, line)
	}
	return sc.Err()
}
