// Command mstxvet runs the project-invariant analyzers of
// internal/analysis over the repository and prints vet-style
// file:line:col diagnostics. It exits non-zero when any finding
// survives suppression, which makes it a pre-merge gate (scripts/
// check.sh runs it over ./...).
//
// Usage:
//
//	mstxvet [-root dir] [-list] [-json] [-workers n] [patterns ...]
//
// Patterns follow the go tool convention: a directory path, or a
// path ending in /... for a recursive walk. The default is ./...
// relative to -root (default: current directory). -json emits the
// findings as a JSON array of {file,line,col,analyzer,message}
// objects ("[]" on a clean run) for toolchain consumption; -workers
// bounds the parallel analysis pool (0 = all CPUs) without changing
// the findings or their order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mstx/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mstxvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "print the analyzer catalog and exit")
		root    = fs.String("root", ".", "module root to analyze (directory containing go.mod)")
		jsonOut = fs.Bool("json", false, "emit findings as a JSON array of {file,line,col,analyzer,message}")
		workers = fs.Int("workers", 0, "parallel analysis workers (0 = all CPUs); findings are identical for any value")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mstxvet [-root dir] [-list] [-json] [-workers n] [patterns ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := analysis.Catalog()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := analysis.ExpandDirs(*root, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "mstxvet: %v\n", err)
		return 2
	}
	diags, err := analysis.Vet(analysis.Config{
		Root:         *root,
		Dirs:         dirs,
		WholeProgram: true,
		Workers:      *workers,
	}, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "mstxvet: %v\n", err)
		return 2
	}
	if *jsonOut {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
		}
		enc := json.NewEncoder(stdout)
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "mstxvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
