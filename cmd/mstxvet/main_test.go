package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestListFlag: -list prints the whole catalog and exits 0.
func TestListFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	for _, name := range []string{"nakedgo", "ctxflow", "determinism", "failpointreg", "obsnil", "retryckpt",
		"lockorder", "leakjoin", "errclass"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestFindingsExitNonzero: a module with an engine-tagged bare go
// statement makes the driver print the finding and exit 1.
func TestFindingsExitNonzero(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module tmpmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "eng", "eng.go"), `// Package eng is a scratch engine package.
//
//mstxvet:engine
package eng

import "sync"

// Spawn uses a bare go statement.
func Spawn(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}
`)
	var out, errOut strings.Builder
	code := run([]string{"-root", dir, "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stdout %q stderr %q", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "[nakedgo]") || !strings.Contains(out.String(), "bare go statement") {
		t.Errorf("missing nakedgo finding in output:\n%s", out.String())
	}
}

// TestCleanPackagesExitZero runs the driver over real foundational
// packages of this repo, which must be clean.
func TestCleanPackagesExitZero(t *testing.T) {
	root := repoRoot(t)
	var out, errOut strings.Builder
	code := run([]string{"-root", root, "internal/resilient", "internal/obs"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, want 0; stdout %q stderr %q", code, out.String(), errOut.String())
	}
}

// TestJSONOutput: -json renders the findings as a machine-readable
// array; a clean run is exactly the empty array.
func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module tmpmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "eng", "eng.go"), `// Package eng is a scratch engine package.
//
//mstxvet:engine
package eng

import "sync"

// Spawn uses a bare go statement.
func Spawn(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}
`)
	var out, errOut strings.Builder
	code := run([]string{"-root", dir, "-json", "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr %q", code, errOut.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("expected findings in JSON output")
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Col == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}

	out.Reset()
	errOut.Reset()
	root := repoRoot(t)
	if code := run([]string{"-root", root, "-json", "internal/resilient"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on clean package; stderr %q", code, errOut.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean -json run = %q, want []", out.String())
	}
}

// TestWorkersDeterminism: the findings and their order are identical
// for any worker count, byte for byte.
func TestWorkersDeterminism(t *testing.T) {
	root := repoRoot(t)
	args := []string{"-root", root, "internal/server", "internal/campaign", "internal/mcengine"}
	outputs := make([]string, 0, 3)
	for _, w := range []string{"1", "4", "8"} {
		var out, errOut strings.Builder
		run(append([]string{"-workers", w}, args...), &out, &errOut)
		if errOut.Len() > 0 {
			t.Fatalf("-workers %s: stderr %q", w, errOut.String())
		}
		outputs = append(outputs, out.String())
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Errorf("output differs between worker counts:\n-- workers 1 --\n%s\n-- variant %d --\n%s",
				outputs[0], i, outputs[i])
		}
	}
}

// TestBadFlagExitTwo: usage errors are distinct from findings.
func TestBadFlagExitTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
