package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestBadFlagExitsWithUsage(t *testing.T) {
	code, _, stderr := runCapture(t, "-bogus")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "-fig1") {
		t.Errorf("stderr carries no usage text:\n%s", stderr)
	}
}

func TestPositionalArgsRejected(t *testing.T) {
	if code, _, _ := runCapture(t, "fig1"); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestListAllWithoutRunning(t *testing.T) {
	code, stdout, stderr := runCapture(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	// All ten experiments, no results.
	for _, id := range []string{"E1/", "E2/", "E3/", "E4/", "E5/", "E6/", "E7/", "E8/", "E9/", "E10/"} {
		if !strings.Contains(stdout, id) {
			t.Errorf("-list lacks %s:\n%s", id, stdout)
		}
	}
	if strings.Contains(stdout, "====") {
		t.Errorf("-list must not run experiments:\n%s", stdout)
	}
}

// TestListMatchesExperimentsDoc pins `-list` against the experiment
// index documented in EXPERIMENTS.md: the fenced block under
// "## Experiment index" must match the command output byte-for-byte,
// so neither the CLI nor the doc can drift on its own (the PR 7
// regression this guards against).
func TestListMatchesExperimentsDoc(t *testing.T) {
	code, stdout, stderr := runCapture(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	doc, err := os.ReadFile(filepath.Join("..", "..", "EXPERIMENTS.md"))
	if err != nil {
		t.Fatal(err)
	}
	_, rest, ok := strings.Cut(string(doc), "## Experiment index")
	if !ok {
		t.Fatal("EXPERIMENTS.md lacks the \"## Experiment index\" section")
	}
	_, rest, ok = strings.Cut(rest, "```text\n")
	if !ok {
		t.Fatal("experiment index lacks its ```text block")
	}
	want, _, ok := strings.Cut(rest, "```")
	if !ok {
		t.Fatal("experiment index block is unterminated")
	}
	if stdout != want {
		t.Errorf("-list drifted from the EXPERIMENTS.md index.\n--- -list ---\n%s--- EXPERIMENTS.md ---\n%s", stdout, want)
	}
}

func TestListRespectsSelection(t *testing.T) {
	code, stdout, _ := runCapture(t, "-list", "-fig4", "-table2")
	if code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	if !strings.Contains(stdout, "E5/") || !strings.Contains(stdout, "E6/") {
		t.Errorf("selection missing:\n%s", stdout)
	}
	if strings.Contains(stdout, "E1/") || strings.Contains(stdout, "E8/") {
		t.Errorf("unselected experiments listed:\n%s", stdout)
	}
}

func TestRunSelectedExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment execution in -short mode")
	}
	code, stdout, stderr := runCapture(t, "-table2", "-quick", "-workers", "4")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "MC FCL") {
		t.Errorf("Table 2 output missing:\n%s", stdout)
	}
	if !strings.Contains(stderr, "==== E6/Table2") {
		t.Errorf("progress header missing from stderr:\n%s", stderr)
	}
}

// TestStdoutCarriesOnlyResultTables is the regression test for the
// golden-file contract: redirected stdout must be exactly the result
// tables — progress headers and every diagnostic stay on stderr.
func TestStdoutCarriesOnlyResultTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment execution in -short mode")
	}
	code, stdout, stderr := runCapture(t, "-table2", "-quick", "-workers", "4", "-metrics", "-trace")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	for _, banned := range []string{"====", "# TYPE", "TRACE"} {
		if strings.Contains(stdout, banned) {
			t.Errorf("stdout polluted with %q:\n%s", banned, stdout)
		}
	}
	if !strings.Contains(stderr, "# TYPE mc_runs_total counter") {
		t.Errorf("-metrics report missing the MC engine counters:\n%s", stderr)
	}
	if !strings.Contains(stderr, "TRACE") || !strings.Contains(stderr, "E6/Table2") {
		t.Errorf("-trace report missing the experiment span:\n%s", stderr)
	}
}
