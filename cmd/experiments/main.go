// Command experiments regenerates every table and figure of the
// paper's evaluation from the mstx reproduction. With no flags it
// runs the full set (E1–E10); individual experiments can be selected.
//
// Usage:
//
//	experiments [-fig1] [-tones] [-fig2] [-fig3] [-fig4] [-table1]
//	            [-table2] [-path] [-fig6] [-topoff] [-quick]
//	            [-workers K] [-list]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mstx/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parse args, run the selected
// experiments, return the exit code (0 ok, 1 failure, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig1    = fs.Bool("fig1", false, "E1: output spectra of the faulty 16-tap filter (Figure 1)")
		tones   = fs.Bool("tones", false, "E2: fault coverage vs. number of stimulus tones (§3)")
		fig2    = fs.Bool("fig2", false, "E3: parameter distribution and loss regions (Figure 2)")
		fig3    = fs.Bool("fig3", false, "E4: composition boundary checks (Figure 3)")
		fig4    = fs.Bool("fig4", false, "E5: IIP3 accuracy by translation method (Figure 4)")
		table1  = fs.Bool("table1", false, "E7: synthesized test plan (Table 1)")
		table2  = fs.Bool("table2", false, "E6: FCL/YL threshold sweep (Table 2)")
		pathE   = fs.Bool("path", false, "E8: digital filter tested through the analog path (§5)")
		fig6    = fs.Bool("fig6", false, "E9: experimental set-up attribute walk (Figure 6)")
		topoff  = fs.Bool("topoff", false, "E10: ATPG top-off of the functional residue (DFT reduction)")
		quick   = fs.Bool("quick", false, "reduced sizes for a fast smoke run")
		workers = fs.Int("workers", 0, "Monte-Carlo worker fan-out for E5/E6 (0 = GOMAXPROCS; results identical for any value)")
		list    = fs.Bool("list", false, "print the selected experiment IDs without running them")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "experiments: unexpected arguments: %q\n", fs.Args())
		fs.Usage()
		return 2
	}

	all := !(*fig1 || *tones || *fig2 || *fig3 || *fig4 || *table1 || *table2 || *pathE || *fig6 || *topoff)
	failed := false
	run := func(enabled bool, id, title string, f func() (interface{ Format() string }, error)) {
		if (!enabled && !all) || failed {
			return
		}
		if *list {
			fmt.Fprintf(stdout, "%s — %s\n", id, title)
			return
		}
		fmt.Fprintf(stdout, "==== %s — %s ====\n", id, title)
		res, err := f()
		if err != nil {
			fmt.Fprintf(stderr, "experiments: %s failed: %v\n", id, err)
			failed = true
			return
		}
		fmt.Fprintln(stdout, res.Format())
	}

	patterns := 0 // experiment defaults
	devices := 0
	tonesP := 0
	base, long := 0, 0
	if *quick {
		patterns = 512
		devices = 6
		tonesP = 256
		base, long = 256, 512
	}

	run(*fig1, "E1/Fig1", "output spectra, fault-free and faulty 16-tap FIR",
		func() (interface{ Format() string }, error) {
			return experiments.Fig1(experiments.Fig1Options{Patterns: patterns})
		})
	run(*tones, "E2/§3", "fault coverage vs. stimulus tones",
		func() (interface{ Format() string }, error) {
			return experiments.CoverageVsTones(experiments.TonesOptions{Patterns: tonesP})
		})
	run(*fig2, "E3/Fig2", "parameter pdf, FC-loss and yield-loss",
		func() (interface{ Format() string }, error) {
			return experiments.Fig2(experiments.DefaultFig2Options())
		})
	run(*fig3, "E4/Fig3", "composition boundary checks",
		func() (interface{ Format() string }, error) { return experiments.Fig3() })
	run(*fig4, "E5/Fig4", "IIP3 accuracy: full access vs nominal vs adaptive",
		func() (interface{ Format() string }, error) {
			return experiments.Fig4(experiments.Fig4Options{Devices: devices, Workers: *workers})
		})
	run(*table2, "E6/Table2", "FCL and YL vs threshold (P1dB, IIP3, fc)",
		func() (interface{ Format() string }, error) {
			return experiments.Table2(experiments.Table2Options{Devices: devices, Workers: *workers})
		})
	run(*table1, "E7/Table1", "synthesized system-level test plan",
		func() (interface{ Format() string }, error) { return experiments.Table1() })
	run(*pathE, "E8/§5", "digital filter through the analog path",
		func() (interface{ Format() string }, error) {
			return experiments.PathFaultSim(experiments.PathFaultOptions{
				BasePatterns: base, LongPatterns: long,
			})
		})
	run(*fig6, "E9/Fig6", "experimental set-up attribute walk",
		func() (interface{ Format() string }, error) { return experiments.Fig6() })
	run(*topoff, "E10/top-off", "ATPG classification of the functional residue",
		func() (interface{ Format() string }, error) {
			return experiments.TopOff(experiments.TopOffOptions{Patterns: tonesP})
		})
	if failed {
		return 1
	}
	return 0
}
