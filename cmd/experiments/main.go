// Command experiments regenerates every table and figure of the
// paper's evaluation from the mstx reproduction. With no flags it
// runs the full set (E1–E10); individual experiments can be selected.
//
// Usage:
//
//	experiments [-fig1] [-tones] [-fig2] [-fig3] [-fig4] [-table1]
//	            [-table2] [-path] [-fig6] [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mstx/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		fig1   = flag.Bool("fig1", false, "E1: output spectra of the faulty 16-tap filter (Figure 1)")
		tones  = flag.Bool("tones", false, "E2: fault coverage vs. number of stimulus tones (§3)")
		fig2   = flag.Bool("fig2", false, "E3: parameter distribution and loss regions (Figure 2)")
		fig3   = flag.Bool("fig3", false, "E4: composition boundary checks (Figure 3)")
		fig4   = flag.Bool("fig4", false, "E5: IIP3 accuracy by translation method (Figure 4)")
		table1 = flag.Bool("table1", false, "E7: synthesized test plan (Table 1)")
		table2 = flag.Bool("table2", false, "E6: FCL/YL threshold sweep (Table 2)")
		pathE  = flag.Bool("path", false, "E8: digital filter tested through the analog path (§5)")
		fig6   = flag.Bool("fig6", false, "E9: experimental set-up attribute walk (Figure 6)")
		topoff = flag.Bool("topoff", false, "E10: ATPG top-off of the functional residue (DFT reduction)")
		quick  = flag.Bool("quick", false, "reduced sizes for a fast smoke run")
	)
	flag.Parse()

	all := !(*fig1 || *tones || *fig2 || *fig3 || *fig4 || *table1 || *table2 || *pathE || *fig6 || *topoff)
	run := func(enabled bool, id, title string, f func() (interface{ Format() string }, error)) {
		if !enabled && !all {
			return
		}
		fmt.Printf("==== %s — %s ====\n", id, title)
		res, err := f()
		if err != nil {
			log.Printf("%s failed: %v", id, err)
			os.Exit(1)
		}
		fmt.Println(res.Format())
	}

	patterns := 0 // experiment defaults
	devices := 0
	tonesP := 0
	base, long := 0, 0
	if *quick {
		patterns = 512
		devices = 6
		tonesP = 256
		base, long = 256, 512
	}

	run(*fig1, "E1/Fig1", "output spectra, fault-free and faulty 16-tap FIR",
		func() (interface{ Format() string }, error) {
			return experiments.Fig1(experiments.Fig1Options{Patterns: patterns})
		})
	run(*tones, "E2/§3", "fault coverage vs. stimulus tones",
		func() (interface{ Format() string }, error) {
			return experiments.CoverageVsTones(experiments.TonesOptions{Patterns: tonesP})
		})
	run(*fig2, "E3/Fig2", "parameter pdf, FC-loss and yield-loss",
		func() (interface{ Format() string }, error) {
			return experiments.Fig2(experiments.DefaultFig2Options())
		})
	run(*fig3, "E4/Fig3", "composition boundary checks",
		func() (interface{ Format() string }, error) { return experiments.Fig3() })
	run(*fig4, "E5/Fig4", "IIP3 accuracy: full access vs nominal vs adaptive",
		func() (interface{ Format() string }, error) {
			return experiments.Fig4(experiments.Fig4Options{Devices: devices})
		})
	run(*table2, "E6/Table2", "FCL and YL vs threshold (P1dB, IIP3, fc)",
		func() (interface{ Format() string }, error) {
			return experiments.Table2(experiments.Table2Options{Devices: devices})
		})
	run(*table1, "E7/Table1", "synthesized system-level test plan",
		func() (interface{ Format() string }, error) { return experiments.Table1() })
	run(*pathE, "E8/§5", "digital filter through the analog path",
		func() (interface{ Format() string }, error) {
			return experiments.PathFaultSim(experiments.PathFaultOptions{
				BasePatterns: base, LongPatterns: long,
			})
		})
	run(*fig6, "E9/Fig6", "experimental set-up attribute walk",
		func() (interface{ Format() string }, error) { return experiments.Fig6() })
	run(*topoff, "E10/top-off", "ATPG classification of the functional residue",
		func() (interface{ Format() string }, error) {
			return experiments.TopOff(experiments.TopOffOptions{Patterns: tonesP})
		})
}
