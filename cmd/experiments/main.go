// Command experiments regenerates every table and figure of the
// paper's evaluation from the mstx reproduction. With no flags it
// runs the full set (E1–E10); individual experiments can be selected.
//
// Usage:
//
//	experiments [-fig1] [-tones] [-fig2] [-fig3] [-fig4] [-table1]
//	            [-table2] [-path] [-fig6] [-e9] [-topoff] [-quick]
//	            [-workers K] [-list]
//	            [-metrics] [-trace] [-obs-out file] [-debug-addr host:port]
//	            [-checkpoint dir] [-checkpoint-every n] [-resume]
//	            [-timeout d]
//
// Result tables go to stdout; progress headers and all diagnostics go
// to stderr, so `experiments -table2 > table2.txt` captures exactly
// the table (the golden files under internal/experiments/testdata are
// compared against stdout alone). -metrics and -trace print the
// internal/obs report after the run, to stderr or to -obs-out;
// -debug-addr serves /metrics, /trace and /debug/pprof over HTTP.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"mstx/internal/experiments"
	"mstx/internal/obs"
	"mstx/internal/resilient"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parse args, run the selected
// experiments, return the exit code (0 ok, 1 failure, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig1      = fs.Bool("fig1", false, "E1: output spectra of the faulty 16-tap filter (Figure 1)")
		tones     = fs.Bool("tones", false, "E2: fault coverage vs. number of stimulus tones (§3)")
		fig2      = fs.Bool("fig2", false, "E3: parameter distribution and loss regions (Figure 2)")
		fig3      = fs.Bool("fig3", false, "E4: composition boundary checks (Figure 3)")
		fig4      = fs.Bool("fig4", false, "E5: IIP3 accuracy by translation method (Figure 4)")
		table1    = fs.Bool("table1", false, "E7: synthesized test plan (Table 1)")
		table2    = fs.Bool("table2", false, "E6: FCL/YL threshold sweep (Table 2)")
		pathE     = fs.Bool("path", false, "E8: digital filter tested through the analog path (§5)")
		fig6      = fs.Bool("fig6", false, "E9: experimental set-up attribute walk (Figure 6)")
		e9soc     = fs.Bool("e9", false, "E9: multi-core SOC test planning — TAM schedule sweep (Sehgal et al.)")
		topoff    = fs.Bool("topoff", false, "E10: ATPG top-off of the functional residue (DFT reduction)")
		quick     = fs.Bool("quick", false, "reduced sizes for a fast smoke run")
		workers   = fs.Int("workers", 0, "Monte-Carlo worker fan-out for E5/E6 (0 = GOMAXPROCS; results identical for any value)")
		list      = fs.Bool("list", false, "print the selected experiment IDs without running them")
		metrics   = fs.Bool("metrics", false, "print a Prometheus-format metrics report after the run")
		trace     = fs.Bool("trace", false, "print a span trace report after the run")
		obsOut    = fs.String("obs-out", "", "write the -metrics/-trace reports to this file instead of stderr")
		debugAddr = fs.String("debug-addr", "", "serve /metrics, /trace and /debug/pprof on this address")
		ckptDir   = fs.String("checkpoint", "", "checkpoint directory: snapshot E5/E6/E8 engine progress for -resume")
		ckptEvery = fs.Int("checkpoint-every", 1, "snapshot every n engine rounds/batches")
		resume    = fs.Bool("resume", false, "resume from the -checkpoint directory instead of restarting")
		timeout   = fs.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "experiments: unexpected arguments: %q\n", fs.Args())
		fs.Usage()
		return 2
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(stderr, "experiments: -resume requires -checkpoint")
		fs.Usage()
		return 2
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var ckpt *resilient.Checkpointer
	if *ckptDir != "" {
		ckpt = &resilient.Checkpointer{Dir: *ckptDir, Every: *ckptEvery, Resume: *resume}
	}

	// Observability: a registry only when asked for, so the default run
	// keeps the engines on their nil-registry fast path.
	var reg *obs.Registry
	if *metrics || *trace || *obsOut != "" || *debugAddr != "" {
		reg = obs.New()
		obs.SetDefault(reg)
		defer obs.SetDefault(nil)
		if *debugAddr != "" {
			addr, _, err := obs.ServeDebug(*debugAddr, reg)
			if err != nil {
				fmt.Fprintln(stderr, "experiments:", err)
				return 1
			}
			fmt.Fprintf(stderr, "experiments: debug server on http://%s (metrics, trace, debug/pprof)\n", addr)
		}
		defer func() {
			if err := writeObsReport(reg, stderr, *metrics || *obsOut != "", *trace, *obsOut); err != nil {
				fmt.Fprintln(stderr, "experiments:", err)
			}
		}()
	}
	runCtx, runSp := obs.Span(nil, "experiments.run")
	defer runSp.End()

	all := !(*fig1 || *tones || *fig2 || *fig3 || *fig4 || *table1 || *table2 || *pathE || *fig6 || *e9soc || *topoff)
	failed := false
	// Result tables go to stdout; the progress header goes to stderr so
	// redirected stdout is byte-comparable against the golden tables.
	run := func(enabled bool, id, title string, f func() (interface{ Format() string }, error)) {
		if (!enabled && !all) || failed {
			return
		}
		if *list {
			fmt.Fprintf(stdout, "%s — %s\n", id, title)
			return
		}
		fmt.Fprintf(stderr, "==== %s — %s ====\n", id, title)
		_, sp := obs.Span(runCtx, id)
		res, err := f()
		sp.End()
		if err != nil {
			fmt.Fprintf(stderr, "experiments: %s failed: %v\n", id, err)
			failed = true
			return
		}
		fmt.Fprintln(stdout, res.Format())
	}

	patterns := 0 // experiment defaults
	devices := 0
	tonesP := 0
	base, long := 0, 0
	var socWidths []int
	socIters := 0
	if *quick {
		patterns = 512
		devices = 6
		tonesP = 256
		base, long = 256, 512
		socWidths = []int{4, 8, 16}
		socIters = 16
	}

	run(*fig1, "E1/Fig1", "output spectra, fault-free and faulty 16-tap FIR",
		func() (interface{ Format() string }, error) {
			return experiments.Fig1(experiments.Fig1Options{Patterns: patterns})
		})
	run(*tones, "E2/§3", "fault coverage vs. stimulus tones",
		func() (interface{ Format() string }, error) {
			return experiments.CoverageVsTones(experiments.TonesOptions{Patterns: tonesP})
		})
	run(*fig2, "E3/Fig2", "parameter pdf, FC-loss and yield-loss",
		func() (interface{ Format() string }, error) {
			return experiments.Fig2(experiments.DefaultFig2Options())
		})
	run(*fig3, "E4/Fig3", "composition boundary checks",
		func() (interface{ Format() string }, error) { return experiments.Fig3() })
	run(*fig4, "E5/Fig4", "IIP3 accuracy: full access vs nominal vs adaptive",
		func() (interface{ Format() string }, error) {
			return experiments.Fig4(experiments.Fig4Options{
				Devices: devices, Workers: *workers, Ctx: ctx, Checkpoint: ckpt,
			})
		})
	run(*table2, "E6/Table2", "FCL and YL vs threshold (P1dB, IIP3, fc)",
		func() (interface{ Format() string }, error) {
			return experiments.Table2(experiments.Table2Options{
				Devices: devices, Workers: *workers, Ctx: ctx, Checkpoint: ckpt,
			})
		})
	run(*table1, "E7/Table1", "synthesized system-level test plan",
		func() (interface{ Format() string }, error) { return experiments.Table1() })
	run(*pathE, "E8/§5", "digital filter through the analog path",
		func() (interface{ Format() string }, error) {
			return experiments.PathFaultSim(experiments.PathFaultOptions{
				BasePatterns: base, LongPatterns: long, Ctx: ctx, Checkpoint: ckpt,
			})
		})
	run(*fig6, "E9/Fig6", "experimental set-up attribute walk",
		func() (interface{ Format() string }, error) { return experiments.Fig6() })
	run(*e9soc, "E9/SOC", "multi-core SOC test planning: TAM schedule sweep",
		func() (interface{ Format() string }, error) {
			return experiments.SOCPlan(experiments.SOCOptions{
				Widths: socWidths, Iterations: socIters,
				Workers: *workers, Ctx: ctx, Checkpoint: ckpt,
			})
		})
	run(*topoff, "E10/top-off", "ATPG classification of the functional residue",
		func() (interface{ Format() string }, error) {
			return experiments.TopOff(experiments.TopOffOptions{Patterns: tonesP})
		})
	if failed {
		return 1
	}
	return 0
}

// writeObsReport emits the -metrics and/or -trace run report to
// stderr, or to the -obs-out file when given (metrics implied then).
func writeObsReport(reg *obs.Registry, stderr io.Writer, metrics, trace bool, outPath string) error {
	w := stderr
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if metrics {
		if err := reg.WriteText(w); err != nil {
			return err
		}
	}
	if trace {
		if err := reg.WriteTrace(w); err != nil {
			return err
		}
	}
	return nil
}
