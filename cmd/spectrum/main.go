// Command spectrum captures the default communication path's response
// to a tone or two-tone stimulus and prints the tester-style spectral
// analysis of the digital filter output (tone powers, SNR, SFDR, THD,
// SINAD, ENOB, noise floor).
//
// Usage:
//
//	spectrum [-if 0.9e6] [-if2 0] [-amp 0.004] [-n 4096] [-seed 1]
//	         [-node filter|adc]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"mstx/internal/dsp"
	"mstx/internal/experiments"
	"mstx/internal/msignal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spectrum: ")
	var (
		fIF  = flag.Float64("if", 0.9e6, "IF tone frequency (Hz); the RF stimulus is LO + IF")
		fIF2 = flag.Float64("if2", 0, "second IF tone (0 = single tone)")
		amp  = flag.Float64("amp", 0.004, "per-tone amplitude at the primary input (V)")
		n    = flag.Int("n", 4096, "capture length (power of two)")
		seed = flag.Int64("seed", 1, "noise seed (0 = deterministic, noise-free)")
		node = flag.String("node", "filter", "observation node: filter | adc")
	)
	flag.Parse()

	spec, err := experiments.BuildDefaultSpec()
	if err != nil {
		log.Fatal(err)
	}
	p, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	snap := func(f float64) float64 {
		bin := int(f * float64(*n) / spec.ADCRate)
		if bin < 1 {
			bin = 1
		}
		return float64(bin) * spec.ADCRate / float64(*n)
	}
	f1 := snap(*fIF)
	tones := []float64{f1}
	stim := msignal.NewTone(spec.LO.FreqHz.Nominal+f1, *amp)
	if *fIF2 > 0 {
		f2 := snap(*fIF2)
		tones = append(tones, f2)
		stim = msignal.NewTwoTone(spec.LO.FreqHz.Nominal+f1, spec.LO.FreqHz.Nominal+f2, *amp)
	}
	var rng *rand.Rand
	if *seed != 0 {
		rng = rand.New(rand.NewSource(*seed))
	}
	const settle = 512
	cap, err := p.Run(stim, *n+settle, rng)
	if err != nil {
		log.Fatal(err)
	}
	var rec []float64
	switch *node {
	case "filter":
		rec = cap.FilterOut[settle:]
	case "adc":
		rec = make([]float64, *n)
		for i := range rec {
			rec[i] = float64(cap.Codes[settle+i])
		}
	default:
		log.Fatalf("unknown node %q", *node)
	}
	an, err := dsp.Analyze(rec, spec.ADCRate, tones, dsp.Rectangular, dsp.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node: %s, %d samples at %.3g Hz\n", *node, *n, spec.ADCRate)
	for i, m := range an.Fundamentals {
		fmt.Printf("tone %d: %.6g Hz, amplitude %.4g, power %.4g\n",
			i+1, m.Frequency, m.Amplitude, m.Power)
	}
	fmt.Printf("SNR    %7.2f dB\n", an.SNR)
	fmt.Printf("SINAD  %7.2f dB\n", an.SINAD)
	fmt.Printf("THD    %7.2f dB\n", an.THD)
	fmt.Printf("SFDR   %7.2f dB (worst spur at %.4g Hz)\n", an.SFDR, an.WorstSpur.Frequency)
	fmt.Printf("ENOB   %7.2f bits\n", an.ENOB)
	fmt.Printf("floor  %7.2f dBc/bin\n", an.NoiseFloorDB)
}
