#!/bin/sh
# Pre-merge gate: vet, build, race-enabled tests, bench smokes, and
# the recorded perf trajectory — the dsp scratch pairs and the
# spectral-campaign pair are benchmarked, gated against the last entry
# of BENCH_dsp.json / BENCH_campaign.json (cmd/benchrecord), and
# appended on success.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== gofmt =="
# Everything outside testdata must be gofmt-clean (fixtures include a
# deliberately unparseable file gofmt would choke on).
unformatted=$(find . -name '*.go' -not -path '*/testdata/*' -not -path './.git/*' | xargs gofmt -l)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== mstxvet (project invariants) =="
# The internal/analysis catalog: panic quarantine, context threading,
# determinism, failpoint registry coverage, obs nil-safety, retry
# checkpointing, plus the dataflow analyzers (lock ordering, goroutine
# joins, error classification) built on the CFG/call-graph layer. Must
# be self-clean over the whole repo (suppressions need an audited
# //mstxvet:ignore <analyzer> <reason>).
go run ./cmd/mstxvet ./...

echo "== mstxvet -json (machine-readable contract) =="
# The JSON surface CI consumers parse: a clean tree is exactly the
# empty array, byte for byte.
json_out=$(go run ./cmd/mstxvet -json ./...)
if [ "$json_out" != "[]" ]; then
    echo "mstxvet -json on a clean tree printed: $json_out" >&2
    exit 1
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== concurrency suites (race, unshared cache) =="
# The memo table, the MC engine merge path and the obs registry's
# striped histograms / span ring are the places a scheduling-dependent
# bug could hide; run them race-enabled with -count=2 so a cached
# ./... result never masks them.
go test -race -count=2 ./internal/campaign ./internal/mcengine ./internal/obs

echo "== chaos suite (failpoints, race) =="
# Deterministic fault injection at the registered engine sites
# (mcengine.lane, fault.batch, campaign.sim_batch/detect_batch,
# soc.schedule, resilient.checkpoint.save): injected errors, panics
# and slow batches must never leak goroutines, lose samples, or
# corrupt the partial accounting. -count=2 so a cached result never
# masks a race.
go test -race -count=2 ./internal/resilient ./internal/fault

echo "== SOC scheduler property wall (race) =="
# The internal/soc quick.Check suite: every published schedule
# feasible and bounded (LB <= makespan <= serial), worker-count
# invariant, monotone in TAM width, and every placement justified at
# its packing width. -count=2: the width lanes run on the shared
# mcengine pool.
go test -race -count=2 ./internal/soc

echo "== service suite (mstxd scheduler/cache/SSE/supervision, race) =="
# The job service end to end: submit/stream/cancel/cache-hit round
# trips over httptest, failpoint-driven failed/partial classification,
# the single-flight cache under concurrent identical submissions, the
# in-process kill-and-resume crash test, and the supervision layer
# (deadlines, retry-with-backoff, circuit breakers, cancel racing the
# checkpointer). -count=2: the WRR scheduler and SSE pollers are
# scheduling-sensitive. The chaos soak is excluded here — it has its
# own gate below with a replayable seed.
go test -race -count=2 -skip TestChaosSoak ./internal/server
go test -race -count=2 ./cmd/mstxd

echo "== chaos soak (multi-tenant, every failpoint site, race) =="
# The self-healing wall: four tenants drive all four job kinds while
# failpoints fire at every site analysis.FailpointSites enumerates,
# then a directed breaker open/recover pass. Asserted: no hung jobs,
# correct terminal classification, retried jobs bit-identical to clean
# runs (the E6/E9 goldens for the mc/soc specs), per-kind /readyz
# degradation, and zero goroutine leaks. The fault schedule is seeded;
# a failure replays locally with the printed MSTX_SOAK_SEED.
soak_seed=${MSTX_SOAK_SEED:-1}
if MSTX_SOAK_SEED=$soak_seed go test -race -count=1 -run TestChaosSoak ./internal/server; then
    soak_status=PASS
else
    soak_status=FAIL
    echo "chaos soak FAILED — replay with MSTX_SOAK_SEED=$soak_seed scripts/check.sh" >&2
    exit 1
fi

echo "== kill-and-resume smoke (E6 -checkpoint, SIGKILL, -resume, diff) =="
# A checkpointed quick E6 run is SIGKILLed mid-flight, resumed from its
# snapshot directory, and the resumed table must be byte-identical to
# an uninterrupted baseline. Whatever instant the kill lands (before
# the first snapshot, mid-run, or after completion), bit-identity must
# hold — that is the checkpoint/resume contract.
go build -o "$tmp/experiments" ./cmd/experiments
"$tmp/experiments" -table2 -quick -workers 1 >"$tmp/base.txt" 2>/dev/null
"$tmp/experiments" -table2 -quick -workers 1 \
    -checkpoint "$tmp/ckpt" -checkpoint-every 1 >"$tmp/killed.txt" 2>/dev/null &
smoke_pid=$!
sleep 0.2
kill -KILL "$smoke_pid" 2>/dev/null || true
wait "$smoke_pid" 2>/dev/null || true
"$tmp/experiments" -table2 -quick -workers 1 \
    -checkpoint "$tmp/ckpt" -resume >"$tmp/resumed.txt" 2>/dev/null
diff "$tmp/base.txt" "$tmp/resumed.txt"

echo "== golden diff (E6 Table 2, E9 SOC schedule) =="
# Byte-for-byte against the checked-in goldens; regenerate
# deliberately with:
#   go test ./internal/experiments -run Table2Golden -update
#   go test ./internal/experiments -run E9ScheduleGolden -update
go test -count=1 ./internal/experiments -run 'Table2Golden|E9ScheduleGolden'

echo "== mstxd smoke (serve, submit E6 job, diff against CLI) =="
# Boot the real service binary, submit the quick E6 study as an "mc"
# job through the client mode, and the result text the service streams
# back must be byte-identical to what the experiments CLI prints for
# the same configuration — the service is a scheduler around the same
# engines, never a different code path. The resubmission must then be
# served from the content-addressed cache (client reports it on
# stderr) with the identical bytes.
go build -o "$tmp/mstxd" ./cmd/mstxd
"$tmp/mstxd" -addr 127.0.0.1:0 -addr-file "$tmp/mstxd.addr" -workers 1 \
    2>"$tmp/mstxd.log" &
mstxd_pid=$!
for _ in 1 2 3 4 5 6 7 8 9 10; do
    [ -s "$tmp/mstxd.addr" ] && break
    sleep 0.2
done
[ -s "$tmp/mstxd.addr" ] || { cat "$tmp/mstxd.log" >&2; exit 1; }
addr=$(cat "$tmp/mstxd.addr")
"$tmp/mstxd" -connect "$addr" -tenant smoke -wait \
    -submit '{"kind":"mc","devices":6}' >"$tmp/mstxd_table2.txt"
"$tmp/experiments" -table2 -quick >"$tmp/cli_table2.txt" 2>/dev/null
diff "$tmp/mstxd_table2.txt" "$tmp/cli_table2.txt"
"$tmp/mstxd" -connect "$addr" -tenant smoke -wait \
    -submit '{"kind":"mc","devices":6}' >"$tmp/mstxd_cached.txt" 2>"$tmp/resub.log"
grep -q 'served from cache' "$tmp/resub.log"
diff "$tmp/mstxd_table2.txt" "$tmp/mstxd_cached.txt"

echo "== mstxd smoke (submit E9 soc job, diff against CLI) =="
# Same contract for the soc kind: the schedule sweep the service
# returns must be byte-identical to `experiments -e9` at the same
# configuration (-quick sweeps widths 4/8/16 at 16 iterations), and
# the resubmission must be a cache hit with identical bytes.
"$tmp/mstxd" -connect "$addr" -tenant smoke -wait \
    -submit '{"kind":"soc","tam_widths":[4,8,16],"iterations":16}' >"$tmp/mstxd_e9.txt"
"$tmp/experiments" -e9 -quick >"$tmp/cli_e9.txt" 2>/dev/null
diff "$tmp/mstxd_e9.txt" "$tmp/cli_e9.txt"
"$tmp/mstxd" -connect "$addr" -tenant smoke -wait \
    -submit '{"kind":"soc","tam_widths":[4,8,16],"iterations":16}' \
    >"$tmp/mstxd_e9_cached.txt" 2>"$tmp/resub_e9.log"
grep -q 'served from cache' "$tmp/resub_e9.log"
diff "$tmp/mstxd_e9.txt" "$tmp/mstxd_e9_cached.txt"
kill -TERM "$mstxd_pid" 2>/dev/null || true
wait "$mstxd_pid" 2>/dev/null || true

echo "== bench smoke (MC losses pair) =="
go test -run '^$' -bench 'BenchmarkMCLosses' -benchtime 3x .

echo "== bench smoke (obs off/on pairs) =="
# The Off legs must track the uninstrumented baselines above within
# noise — the nil-registry fast path is a hard contract (DESIGN.md §8).
go test -run '^$' -bench 'BenchmarkCampaignObs|BenchmarkMCObs' -benchtime 3x .

echo "== bench record + regression gate (dsp scratch pairs) =="
# Run the allocating/scratch benchmark pairs and append the numbers to
# the BENCH_*.json perf trajectories. -compare first gates the run
# against the last recorded entry: any allocs/op growth fails, and so
# does ns/op drift beyond -max-ns-regress (25% here — the tool default
# is 15%, but shared CI machines need the extra noise headroom; the
# allocs/op gate is exact either way). The commit SHA and timestamp are
# passed in so the recorder itself reads no clock. On a regression the
# gate prints the offending benchmarks and leaves the trajectory
# untouched; fix the code or deliberately re-baseline by deleting the
# last entry.
sha=$(git rev-parse --short HEAD)
now=$(date -u +%Y-%m-%dT%H:%M:%SZ)
go test -run '^$' -bench 'Allocating|Scratch' -benchmem -benchtime 500ms \
    ./internal/dsp >"$tmp/bench_dsp.txt"
go run ./cmd/benchrecord -out BENCH_dsp.json -sha "$sha" -date "$now" \
    -compare -max-ns-regress 25 <"$tmp/bench_dsp.txt"

echo "== bench record + regression gate (spectral campaign pair) =="
go test -run '^$' -bench 'BenchmarkSpectralCampaign' -benchmem -benchtime 3x \
    . >"$tmp/bench_campaign.txt"
go run ./cmd/benchrecord -out BENCH_campaign.json -sha "$sha" -date "$now" \
    -compare -max-ns-regress 25 <"$tmp/bench_campaign.txt"

echo "== bench record + regression gate (SOC scheduler pair) =="
# The E9 rectangle packer at W=32, parallel lanes vs -workers 1; the
# trajectory keeps the scheduler's cost visible as the SOC model and
# the local search grow.
go test -run '^$' -bench 'BenchmarkSOCSchedule' -benchmem -benchtime 3x \
    . >"$tmp/bench_soc.txt"
go run ./cmd/benchrecord -out BENCH_soc.json -sha "$sha" -date "$now" \
    -compare -max-ns-regress 25 <"$tmp/bench_soc.txt"

echo "== bench record + regression gate (mstxvet catalog) =="
# The vet-runtime budget: the full analyzer catalog (CFG + call graph
# + dataflow) over two real packages. check.sh runs the catalog on
# every merge, so its cost must stay visible in a trajectory like the
# engine benchmarks. 50% ns headroom: a whole-program load + type
# check dominates and is noisier than the compute-bound pairs. The
# allocs/op count jitters by a handful in millions (go/types interns
# as it goes), so this gate alone takes 1% alloc slack instead of the
# exact default.
go test -run '^$' -bench 'BenchmarkMstxvet' -benchmem -benchtime 3x \
    ./internal/analysis >"$tmp/bench_mstxvet.txt"
go run ./cmd/benchrecord -out BENCH_mstxvet.json -sha "$sha" -date "$now" \
    -compare -max-ns-regress 50 -max-allocs-regress 1 <"$tmp/bench_mstxvet.txt"

echo "== fuzz smoke (netlist parser) =="
# Ten seconds of coverage-guided fuzzing on top of the checked-in seed
# corpus; any panic or round-trip violation fails the gate.
go test -fuzz=FuzzParseNetlist -fuzztime=10s ./internal/netlist

echo "== check OK (chaos soak: $soak_status, seed $soak_seed) =="
