#!/bin/sh
# Pre-merge gate: vet, build, race-enabled tests, and a short smoke of
# the spectral-campaign benchmark pair (3 iterations each — enough to
# catch a broken pipeline or a report mismatch, not a perf measurement;
# run the pair with a larger -benchtime for real numbers).
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== concurrency suites (race, unshared cache) =="
# The memo table, the MC engine merge path and the obs registry's
# striped histograms / span ring are the places a scheduling-dependent
# bug could hide; run them race-enabled with -count=2 so a cached
# ./... result never masks them.
go test -race -count=2 ./internal/campaign ./internal/mcengine ./internal/obs

echo "== golden diff (E6 Table 2) =="
# Byte-for-byte against the checked-in golden; regenerate deliberately
# with: go test ./internal/experiments -run Table2Golden -update
go test -count=1 ./internal/experiments -run 'Table2Golden'

echo "== bench smoke (spectral campaign pair) =="
go test -run '^$' -bench 'BenchmarkSpectralCampaign' -benchtime 3x .

echo "== bench smoke (MC losses pair) =="
go test -run '^$' -bench 'BenchmarkMCLosses' -benchtime 3x .

echo "== bench smoke (obs off/on pairs) =="
# The Off legs must track the uninstrumented baselines above within
# noise — the nil-registry fast path is a hard contract (DESIGN.md §8).
go test -run '^$' -bench 'BenchmarkCampaignObs|BenchmarkMCObs' -benchtime 3x .

echo "== fuzz smoke (netlist parser) =="
# Ten seconds of coverage-guided fuzzing on top of the checked-in seed
# corpus; any panic or round-trip violation fails the gate.
go test -fuzz=FuzzParseNetlist -fuzztime=10s ./internal/netlist

echo "== check OK =="
