#!/bin/sh
# Pre-merge gate: vet, build, race-enabled tests, and a short smoke of
# the spectral-campaign benchmark pair (3 iterations each — enough to
# catch a broken pipeline or a report mismatch, not a perf measurement;
# run the pair with a larger -benchtime for real numbers).
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
# Everything outside testdata must be gofmt-clean (fixtures include a
# deliberately unparseable file gofmt would choke on).
unformatted=$(find . -name '*.go' -not -path '*/testdata/*' -not -path './.git/*' | xargs gofmt -l)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== mstxvet (project invariants) =="
# The internal/analysis catalog: panic quarantine, context threading,
# determinism, failpoint registry coverage, obs nil-safety. Must be
# self-clean over the whole repo (suppressions need an audited
# //mstxvet:ignore <analyzer> <reason>).
go run ./cmd/mstxvet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== concurrency suites (race, unshared cache) =="
# The memo table, the MC engine merge path and the obs registry's
# striped histograms / span ring are the places a scheduling-dependent
# bug could hide; run them race-enabled with -count=2 so a cached
# ./... result never masks them.
go test -race -count=2 ./internal/campaign ./internal/mcengine ./internal/obs

echo "== chaos suite (failpoints, race) =="
# Deterministic fault injection at the registered engine sites
# (mcengine.lane, fault.batch, campaign.sim_batch/detect_batch,
# resilient.checkpoint.save): injected errors, panics and slow batches
# must never leak goroutines, lose samples, or corrupt the partial
# accounting. -count=2 so a cached result never masks a race.
go test -race -count=2 ./internal/resilient ./internal/fault

echo "== kill-and-resume smoke (E6 -checkpoint, SIGKILL, -resume, diff) =="
# A checkpointed quick E6 run is SIGKILLed mid-flight, resumed from its
# snapshot directory, and the resumed table must be byte-identical to
# an uninterrupted baseline. Whatever instant the kill lands (before
# the first snapshot, mid-run, or after completion), bit-identity must
# hold — that is the checkpoint/resume contract.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/experiments" ./cmd/experiments
"$tmp/experiments" -table2 -quick -workers 1 >"$tmp/base.txt" 2>/dev/null
"$tmp/experiments" -table2 -quick -workers 1 \
    -checkpoint "$tmp/ckpt" -checkpoint-every 1 >"$tmp/killed.txt" 2>/dev/null &
smoke_pid=$!
sleep 0.2
kill -KILL "$smoke_pid" 2>/dev/null || true
wait "$smoke_pid" 2>/dev/null || true
"$tmp/experiments" -table2 -quick -workers 1 \
    -checkpoint "$tmp/ckpt" -resume >"$tmp/resumed.txt" 2>/dev/null
diff "$tmp/base.txt" "$tmp/resumed.txt"

echo "== golden diff (E6 Table 2) =="
# Byte-for-byte against the checked-in golden; regenerate deliberately
# with: go test ./internal/experiments -run Table2Golden -update
go test -count=1 ./internal/experiments -run 'Table2Golden'

echo "== bench smoke (spectral campaign pair) =="
go test -run '^$' -bench 'BenchmarkSpectralCampaign' -benchtime 3x .

echo "== bench smoke (MC losses pair) =="
go test -run '^$' -bench 'BenchmarkMCLosses' -benchtime 3x .

echo "== bench smoke (obs off/on pairs) =="
# The Off legs must track the uninstrumented baselines above within
# noise — the nil-registry fast path is a hard contract (DESIGN.md §8).
go test -run '^$' -bench 'BenchmarkCampaignObs|BenchmarkMCObs' -benchtime 3x .

echo "== fuzz smoke (netlist parser) =="
# Ten seconds of coverage-guided fuzzing on top of the checked-in seed
# corpus; any panic or round-trip violation fails the gate.
go test -fuzz=FuzzParseNetlist -fuzztime=10s ./internal/netlist

echo "== check OK =="
