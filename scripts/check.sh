#!/bin/sh
# Pre-merge gate: vet, build, race-enabled tests, and a short smoke of
# the spectral-campaign benchmark pair (3 iterations each — enough to
# catch a broken pipeline or a report mismatch, not a perf measurement;
# run the pair with a larger -benchtime for real numbers).
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== concurrency suites (race, unshared cache) =="
# The memo table and the MC engine merge path are the two places a
# scheduling-dependent bug could hide; run them race-enabled with
# -count=2 so a cached ./... result never masks them.
go test -race -count=2 ./internal/campaign ./internal/mcengine

echo "== golden diff (E6 Table 2) =="
# Byte-for-byte against the checked-in golden; regenerate deliberately
# with: go test ./internal/experiments -run Table2Golden -update
go test -count=1 ./internal/experiments -run 'Table2Golden'

echo "== bench smoke (spectral campaign pair) =="
go test -run '^$' -bench 'BenchmarkSpectralCampaign' -benchtime 3x .

echo "== bench smoke (MC losses pair) =="
go test -run '^$' -bench 'BenchmarkMCLosses' -benchtime 3x .

echo "== check OK =="
