#!/bin/sh
# Pre-merge gate: vet, build, race-enabled tests, and a short smoke of
# the spectral-campaign benchmark pair (3 iterations each — enough to
# catch a broken pipeline or a report mismatch, not a perf measurement;
# run the pair with a larger -benchtime for real numbers).
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke (spectral campaign pair) =="
go test -run '^$' -bench 'BenchmarkSpectralCampaign' -benchtime 3x .

echo "== check OK =="
