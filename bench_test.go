// Benchmarks regenerating every table and figure of the paper, plus
// the ablation studies called out in DESIGN.md. Each benchmark runs
// the corresponding experiment at a laptop-friendly size and reports
// its headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction harness. cmd/experiments prints the
// full tables at the default sizes.
package mstx_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"mstx/internal/core"
	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/experiments"
	"mstx/internal/fault"
	"mstx/internal/obs"
	"mstx/internal/params"
	"mstx/internal/soc"
	"mstx/internal/tolerance"
)

// BenchmarkFig1Spectra regenerates Figure 1: output spectra of the
// 16-tap filter, fault-free and with three injected stuck-at faults.
// Reported metric: spurs above -60 dBc created by the tap-2 fault.
func BenchmarkFig1Spectra(b *testing.B) {
	var spurs int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(experiments.Fig1Options{Patterns: 1024})
		if err != nil {
			b.Fatal(err)
		}
		spurs = res.Series[1].SpurCount(res.ToneBin, -60)
	}
	b.ReportMetric(float64(spurs), "spurs>-60dBc")
}

// BenchmarkTonesVsCoverage regenerates the §3 in-text result: fault
// coverage of the 16-tap filter vs. the number of stimulus tones
// (paper: 89.6% one tone, 95.5% two tones). Reported metrics: the
// single- and two-tone coverages.
func BenchmarkTonesVsCoverage(b *testing.B) {
	var c1, c2 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.CoverageVsTones(experiments.TonesOptions{Patterns: 512, MaxTones: 2})
		if err != nil {
			b.Fatal(err)
		}
		c1, c2 = res.Rows[0].Coverage, res.Rows[1].Coverage
	}
	b.ReportMetric(c1, "%cov-1tone")
	b.ReportMetric(c2, "%cov-2tone")
}

// BenchmarkFig2Distribution regenerates Figure 2: the parameter pdf
// with its FC-loss and yield-loss masses. Reported metrics: FCL and
// YL percent at the nominal threshold.
func BenchmarkFig2Distribution(b *testing.B) {
	var fcl, yl float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(experiments.DefaultFig2Options())
		if err != nil {
			b.Fatal(err)
		}
		fcl, yl = res.Losses.FCL, res.Losses.YL
	}
	b.ReportMetric(100*fcl, "%FCL")
	b.ReportMetric(100*yl, "%YL")
}

// BenchmarkFig3Boundary regenerates Figure 3: the masked-gain-error
// scenarios against the composition boundary checks. Reported metric:
// how many of the two fault scenarios the checks caught.
func BenchmarkFig3Boundary(b *testing.B) {
	var caught int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		caught = 0
		if !res.Scenarios[1].SaturationPass {
			caught++
		}
		if !res.Scenarios[2].NoisePass {
			caught++
		}
	}
	b.ReportMetric(float64(caught), "caught/2")
}

// BenchmarkFig4Adaptive regenerates Figure 4: IIP3 measurement error
// by translation method over a Monte-Carlo device population.
// Reported metrics: RMS error (dB) for nominal-gains and adaptive.
func BenchmarkFig4Adaptive(b *testing.B) {
	var nom, ada float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(experiments.Fig4Options{Devices: 10, N: 1024})
		if err != nil {
			b.Fatal(err)
		}
		nom = res.RMSByMethod(params.NominalGains)
		ada = res.RMSByMethod(params.Adaptive)
	}
	b.ReportMetric(nom, "dB-rms-nominal")
	b.ReportMetric(ada, "dB-rms-adaptive")
}

// BenchmarkTable2 regenerates Table 2: FCL/YL at the Tol / Tol−Err /
// Tol+Err thresholds for P1dB, IIP3 and fc, with the measurement
// error taken from live Monte-Carlo runs of the procedures.
// Reported metrics: IIP3 FCL percent at Tol and at Tol+Err.
func BenchmarkTable2(b *testing.B) {
	var atTol, atLoose float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(experiments.Table2Options{Devices: 6, N: 1024})
		if err != nil {
			b.Fatal(err)
		}
		atTol = res.Rows[1].Sweep[0].Losses.FCL
		atLoose = res.Rows[1].Sweep[2].Losses.FCL
	}
	b.ReportMetric(100*atTol, "%FCL-IIP3-Tol")
	b.ReportMetric(100*atLoose, "%FCL-IIP3-Tol+Err")
}

// BenchmarkTable1Plan regenerates Table 1: the synthesized test plan.
// Reported metric: how many of the requested parameters translate
// (do not need DFT).
func BenchmarkTable1Plan(b *testing.B) {
	var translated int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		translated = len(res.Plan.Tests) - len(res.Plan.DFTRequired)
	}
	b.ReportMetric(float64(translated), "translated")
}

// BenchmarkFig6PathFaultSim regenerates the §5 digital-filter
// experiment: exact coverage with ideal inputs vs. spectral coverage
// through the noisy analog path at two pattern counts. Reported
// metrics: the three coverages.
func BenchmarkFig6PathFaultSim(b *testing.B) {
	var exact, short, long float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.PathFaultSim(experiments.PathFaultOptions{
			BasePatterns: 512, LongPatterns: 2048,
		})
		if err != nil {
			b.Fatal(err)
		}
		exact = res.Rows[0].Coverage
		short = res.Rows[1].Coverage
		long = res.Rows[2].Coverage
	}
	b.ReportMetric(exact, "%cov-exact")
	b.ReportMetric(short, "%cov-spectral")
	b.ReportMetric(long, "%cov-spectral-4x")
}

// BenchmarkFig6AttributeWalk regenerates Figure 6: the attribute
// propagation along the experimental set-up. Reported metric: the
// amplitude accuracy (percent) accumulated at the converter input.
func BenchmarkFig6AttributeWalk(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Stages[3].Signal.AmpAccuracy
	}
	b.ReportMetric(100*acc, "%amp-accuracy")
}

// --- Ablations (DESIGN.md §5) ---

// benchFIR builds the standard small ablation filter.
func benchFIR(b *testing.B) *digital.FIR {
	b.Helper()
	coeffs, err := digital.DesignLowPassFIR(13, 0.18, dsp.Hamming)
	if err != nil {
		b.Fatal(err)
	}
	ints, _, err := digital.QuantizeCoeffs(coeffs, 8)
	if err != nil {
		b.Fatal(err)
	}
	fir, err := digital.NewFIR(ints, 10)
	if err != nil {
		b.Fatal(err)
	}
	return fir
}

func benchRecord(n int) []int64 {
	xs := make([]int64, n)
	for i := range xs {
		ph := 2 * math.Pi * float64(i) / float64(n)
		xs[i] = int64(math.Round(230*math.Sin(33*ph) + 230*math.Sin(47*ph)))
	}
	return xs
}

// BenchmarkFaultSimParallel measures the 63-fault-per-pass parallel
// engine (compare with BenchmarkFaultSimSerial).
func BenchmarkFaultSimParallel(b *testing.B) {
	fir := benchFIR(b)
	u := fault.NewUniverse(fir, true)
	// Limit to one batch worth of faults so serial/parallel compare
	// the same work.
	u.Faults = u.Faults[:63]
	xs := benchRecord(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fault.Simulate(context.Background(), u, xs, fault.ExactDetector{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultSimSerial is the one-fault-at-a-time baseline.
func BenchmarkFaultSimSerial(b *testing.B) {
	fir := benchFIR(b)
	u := fault.NewUniverse(fir, true)
	u.Faults = u.Faults[:63]
	xs := benchRecord(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fault.SerialSimulate(u, xs, fault.ExactDetector{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultCollapse measures structural equivalence collapsing
// and reports the reduction ratio.
func BenchmarkFaultCollapse(b *testing.B) {
	fir := benchFIR(b)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full := fault.NewUniverse(fir, false)
		coll := fault.NewUniverse(fir, true)
		ratio = float64(coll.Size()) / float64(full.Size())
	}
	b.ReportMetric(ratio, "collapsed/full")
}

// BenchmarkFFTvsGoertzelFFT measures full-spectrum FFT tone
// measurement (compare with BenchmarkFFTvsGoertzelGoertzel for the
// sparse two-bin case).
func BenchmarkFFTvsGoertzelFFT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := dsp.PowerSpectrum(x, 1e6, dsp.Rectangular)
		if err != nil {
			b.Fatal(err)
		}
		_ = s.Power[100] + s.Power[200]
	}
}

// BenchmarkFFTvsGoertzelGoertzel measures two Goertzel bins directly.
func BenchmarkFFTvsGoertzelGoertzel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dsp.GoertzelPower(x, 100) + dsp.GoertzelPower(x, 200)
	}
}

// BenchmarkLossAnalyticVsMC compares the closed-form loss integration
// against Monte Carlo at matched accuracy (the analytic path is what
// the planner uses). Reported metric: |analytic − MC| on FCL.
func BenchmarkLossAnalyticVsMC(b *testing.B) {
	p := tolerance.Normal{Mean: 10, Sigma: 1}
	e := tolerance.Normal{Sigma: 0.4}
	spec := tolerance.LowerLimit(8.5)
	var gap float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an := tolerance.AnalyticLosses(p, e, spec, spec)
		mc, err := tolerance.MonteCarloLosses(context.Background(), p, e, spec, spec, 50000, 2, tolerance.MCOptions{})
		if err != nil {
			b.Fatal(err)
		}
		gap = math.Abs(an.FCL - mc.FCL)
	}
	b.ReportMetric(gap, "FCL-gap")
}

// mcLossesCase is the shared 400k-sample workload of the MCLosses
// benchmark pair: an IIP3-like lower-bound spec with measurement
// error, the configuration the translate layer estimates all day.
func mcLossesCase() (p, e tolerance.Normal, spec tolerance.SpecLimit, n int) {
	return tolerance.Normal{Mean: 10, Sigma: 1},
		tolerance.Normal{Sigma: 0.3},
		tolerance.LowerLimit(8.5),
		400000
}

// BenchmarkMCLossesEngine measures the sharded Monte-Carlo engine on
// the 400k-sample loss estimation with confidence-interval early
// stopping at an explicit ±0.01 absolute 95% half-width on both FCL
// and YL (threshold decisions in the planner are made at percent
// scale). Reported metrics: samples/s — requested samples over wall
// time, the planner-visible effective throughput: the engine resolves
// the estimate to the CI target after a fraction of the requested
// draws, and the worker pool multiplies the rate further on multi-core
// hosts — and the draws actually spent, so the early-stop fraction is
// visible. Compare BenchmarkMCLossesSerial, which draws all 400k;
// bit-identity between the two paths at equal options is pinned by
// TestParallelBitIdenticalToSerial.
func BenchmarkMCLossesEngine(b *testing.B) {
	p, e, spec, n := mcLossesCase()
	opts := tolerance.MCOptions{CheckEvery: 2, TargetHalfWidth: 0.01}
	var drawn int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := tolerance.MonteCarloLosses(context.Background(), p, e, spec, spec, n, 41, opts)
		if err != nil {
			b.Fatal(err)
		}
		drawn = est.Samples
	}
	b.StopTimer()
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
	b.ReportMetric(float64(drawn), "drawn")
}

// BenchmarkMCLossesSerial is the serial reference path over the same
// 400k-sample case, every sample drawn. Reported metric: samples/s.
func BenchmarkMCLossesSerial(b *testing.B) {
	p, e, spec, n := mcLossesCase()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tolerance.SerialMonteCarloLosses(p, e, spec, spec, n, 41, tolerance.MCOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkFIRBuildBinary builds the 13-tap gate-level filter with
// plain binary shift-add multipliers and reports its gate count
// (compare with BenchmarkFIRBuildCSD).
func BenchmarkFIRBuildBinary(b *testing.B) {
	coeffs, err := digital.DesignLowPassFIR(13, 0.18, dsp.Hamming)
	if err != nil {
		b.Fatal(err)
	}
	ints, _, err := digital.QuantizeCoeffs(coeffs, 8)
	if err != nil {
		b.Fatal(err)
	}
	var gates int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fir, err := digital.NewFIR(ints, 12)
		if err != nil {
			b.Fatal(err)
		}
		gates = fir.Circuit.NumGates()
	}
	b.ReportMetric(float64(gates), "gates")
}

// BenchmarkFIRBuildCSD is the canonical-signed-digit variant of the
// same filter. Note the honest ablation outcome: windowed-sinc
// coefficients are already sparse, so CSD's subtractor overhead can
// cost more gates than it saves (it wins on dense constants — see
// TestMulConstCSDFewerGatesForDenseConstants).
func BenchmarkFIRBuildCSD(b *testing.B) {
	coeffs, err := digital.DesignLowPassFIR(13, 0.18, dsp.Hamming)
	if err != nil {
		b.Fatal(err)
	}
	ints, _, err := digital.QuantizeCoeffs(coeffs, 8)
	if err != nil {
		b.Fatal(err)
	}
	var gates int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fir, err := digital.NewFIRWithOptions(ints, 12, digital.FIROptions{UseCSD: true})
		if err != nil {
			b.Fatal(err)
		}
		gates = fir.Circuit.NumGates()
	}
	b.ReportMetric(float64(gates), "gates")
}

// BenchmarkTopOff runs the E10 ATPG classification at reduced size
// and reports the effective coverage after excluding provably
// redundant faults.
func BenchmarkTopOff(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.TopOff(experiments.TopOffOptions{Patterns: 128, Taps: 5, MaxBacktracks: 800})
		if err != nil {
			b.Fatal(err)
		}
		eff = res.EffectiveCoverage
	}
	b.ReportMetric(eff, "%cov-effective")
}

// BenchmarkSeqFIRStep measures the fully-sequential (in-netlist delay
// registers) FIR realization per clocked sample (compare with
// BenchmarkCombFIRStep).
func BenchmarkSeqFIRStep(b *testing.B) {
	coeffs, err := digital.DesignLowPassFIR(13, 0.18, dsp.Hamming)
	if err != nil {
		b.Fatal(err)
	}
	ints, _, err := digital.QuantizeCoeffs(coeffs, 8)
	if err != nil {
		b.Fatal(err)
	}
	fir, err := digital.NewSeqFIR(ints, 10, 0)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := digital.NewSeqFIRSim(fir)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Step(int64(i % 512)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCombFIRStep is the combinational wrapper baseline.
func BenchmarkCombFIRStep(b *testing.B) {
	fir := benchFIR(b)
	sim := digital.NewFIRSim(fir)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Step(int64(i % 512)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSineFit4 measures the IEEE-1057 four-parameter fit on a
// 4096-point record and reports the recovered frequency error.
func BenchmarkSineFit4(b *testing.B) {
	fs := 8e6
	n := 4096
	trueF := 1.0001e6
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.5 * math.Cos(2*math.Pi*trueF*float64(i)/fs)
	}
	var ferr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dsp.SineFit4(x, fs, 1.0e6, 12)
		if err != nil {
			b.Fatal(err)
		}
		ferr = math.Abs(res.Frequency - trueF)
	}
	b.ReportMetric(ferr, "Hz-err")
}

// BenchmarkDetectOnly measures the early-abort exact campaign
// (compare with BenchmarkSimulateFull over the same universe).
func BenchmarkDetectOnly(b *testing.B) {
	fir := benchFIR(b)
	u := fault.NewUniverse(fir, true)
	xs := benchRecord(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fault.DetectOnly(u, xs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateFull is the diagnostic-complete campaign baseline
// for BenchmarkDetectOnly.
func BenchmarkSimulateFull(b *testing.B) {
	fir := benchFIR(b)
	u := fault.NewUniverse(fir, true)
	xs := benchRecord(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fault.Simulate(context.Background(), u, xs, fault.ExactDetector{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDigitalTest builds the default E8 digital test (13-tap filter
// behind the analog front end, calibrated spectral detector) once for
// the spectral-campaign benchmark pair.
func benchDigitalTest(b *testing.B, patterns int) *core.DigitalTest {
	b.Helper()
	spec, err := experiments.BuildDefaultSpec()
	if err != nil {
		b.Fatal(err)
	}
	synth, err := core.New(spec)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultDigitalTestOptions()
	opts.Patterns = patterns
	dt, err := synth.BuildDigitalTest(opts)
	if err != nil {
		b.Fatal(err)
	}
	return dt
}

// BenchmarkSpectralCampaign measures the pooled campaign engine on the
// default E8 universe: pipelined 63-lane record generation feeding
// spectral-detection workers with reusable FFT scratch and the
// zero-diff screen (compare with BenchmarkSpectralCampaignSeed).
// Reported metrics: faults simulated per second and the fraction of
// lanes the screen resolved without a transform.
func BenchmarkSpectralCampaign(b *testing.B) {
	dt := benchDigitalTest(b, 1024)
	var screened float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := dt.RunSpectralStats()
		if err != nil {
			b.Fatal(err)
		}
		screened = float64(stats.Screened) / float64(stats.Faults)
	}
	b.StopTimer()
	faults := float64(dt.Universe.Size()) * float64(b.N)
	b.ReportMetric(faults/b.Elapsed().Seconds(), "faults/s")
	b.ReportMetric(100*screened, "%screened")
}

// benchSOC builds the default four-core SOC once for the scheduling
// benchmark pair.
func benchSOC(b *testing.B) *soc.SOC {
	b.Helper()
	s, err := soc.Default()
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkSOCSchedule measures the E9 TAM sweep — width lanes 1..32
// optimized concurrently on the engine worker pool (compare with
// BenchmarkSOCScheduleSerial). Reported metric: the makespan found at
// the widest bus, in kilocycles.
func BenchmarkSOCSchedule(b *testing.B) {
	s := benchSOC(b)
	var makespan int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sch, err := soc.Plan(context.Background(), s, 32, soc.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		makespan = sch.Makespan
	}
	b.ReportMetric(float64(makespan)/1e3, "kcycles")
}

// BenchmarkSOCScheduleSerial runs the same sweep on one worker.
func BenchmarkSOCScheduleSerial(b *testing.B) {
	s := benchSOC(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := soc.Plan(context.Background(), s, 32, soc.Options{Seed: 1, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Observability overhead (DESIGN.md §8) ---
//
// The obs layer's contract is zero overhead when disabled: every
// instrumented engine resolves its handles once per run and a nil
// registry turns all of them into no-ops. The Off/On pairs below pin
// that — Off must match the uninstrumented baselines above within
// noise (<3%), On shows the full-instrumentation price.

// BenchmarkCampaignObsOff runs the pooled spectral campaign with
// observability disabled (the default state).
func BenchmarkCampaignObsOff(b *testing.B) {
	obs.SetDefault(nil)
	dt := benchDigitalTest(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dt.RunSpectralStats(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignObsOn is the same campaign with a live registry:
// spans, counters, verdict-latency histogram and worker-utilization
// accounting all active.
func BenchmarkCampaignObsOn(b *testing.B) {
	obs.SetDefault(obs.New())
	defer obs.SetDefault(nil)
	dt := benchDigitalTest(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dt.RunSpectralStats(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCObsOff runs the sharded Monte-Carlo loss estimate with
// observability disabled, spending the full 400k-draw budget (no early
// stop) so the workload is identical across runs.
func BenchmarkMCObsOff(b *testing.B) {
	obs.SetDefault(nil)
	p, e, spec, n := mcLossesCase()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tolerance.MonteCarloLosses(context.Background(), p, e, spec, spec, n, 41, tolerance.MCOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkMCObsOn is the same estimate with a live registry: run
// span, per-round barrier/merge histograms and the engine counters.
func BenchmarkMCObsOn(b *testing.B) {
	obs.SetDefault(obs.New())
	defer obs.SetDefault(nil)
	p, e, spec, n := mcLossesCase()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tolerance.MonteCarloLosses(context.Background(), p, e, spec, spec, n, 41, tolerance.MCOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkSpectralCampaignSeed is the seed path of the same campaign:
// fault.SimulateRecords with the detector invoked inline, paying a
// window-table and FFT-buffer allocation per fault and transforming
// every lane.
func BenchmarkSpectralCampaignSeed(b *testing.B) {
	dt := benchDigitalTest(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dt.RunSpectralSeed(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	faults := float64(dt.Universe.Size()) * float64(b.N)
	b.ReportMetric(faults/b.Elapsed().Seconds(), "faults/s")
}
