// Package mstx is a reproduction of "Test Synthesis for Mixed-Signal
// SOC Paths" (Ozev, Bayraktaroglu, Orailoglu — DATE 2000): a test
// synthesis and test-translation framework for mixed-signal signal
// paths, built entirely on the Go standard library.
//
// The public entry points live in internal/core (test-plan synthesis
// and execution), internal/experiments (the paper's tables and
// figures as callable experiments), and the cmd/ binaries. See
// README.md for the architecture overview and DESIGN.md for the
// per-experiment index.
package mstx
