// Package adc models the analog/digital interface modules of the
// paper's signal path: a Nyquist-rate quantizer with the static
// non-idealities Table 1 tests for (offset error, INL, DNL, plus gain
// error and input noise), and a first-order sigma-delta modulator
// with sinc decimation as the alternative interface module the paper's
// introduction mentions.
package adc

import (
	"fmt"
	"math"
	"math/rand"

	"mstx/internal/msignal"
	"mstx/internal/tolerance"
)

// Spec is the designer-facing ADC specification.
type Spec struct {
	// Name identifies the block.
	Name string
	// Bits is the resolution (2..30).
	Bits int
	// FullScaleV is the input full-scale amplitude: the converter
	// spans [-FullScaleV, +FullScaleV).
	FullScaleV float64
	// OffsetLSB is the offset error in LSB with process spread.
	OffsetLSB tolerance.Value
	// GainErrRel is the relative gain error with process spread
	// (0.01 = +1% steeper transfer).
	GainErrRel tolerance.Value
	// INLPeakLSB is the peak of the parabolic INL bow in LSB with
	// process spread (sign gives the bow direction).
	INLPeakLSB tolerance.Value
	// DNLSigmaLSB is the per-code DNL standard deviation in LSB; each
	// sampled device freezes its own code-level perturbation table.
	DNLSigmaLSB float64
	// NoiseRMSLSB is input-referred thermal noise in LSB.
	NoiseRMSLSB float64
}

// Validate checks the specification.
func (s Spec) Validate() error {
	if s.Bits < 2 || s.Bits > 30 {
		return fmt.Errorf("adc: bits %d out of range [2,30]", s.Bits)
	}
	if s.FullScaleV <= 0 {
		return fmt.Errorf("adc: full scale %g must be positive", s.FullScaleV)
	}
	return nil
}

// Build returns the nominal device (zero offset/gain/INL deviations
// beyond nominal, no DNL table).
func (s Spec) Build() (*ADC, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &ADC{
		Spec:       s,
		OffsetLSB:  s.OffsetLSB.Nominal,
		GainErrRel: s.GainErrRel.Nominal,
		INLPeakLSB: s.INLPeakLSB.Nominal,
	}, nil
}

// Sample returns a process-varied device, including a frozen DNL
// perturbation table drawn from DNLSigmaLSB.
func (s Spec) Sample(rng *rand.Rand) (*ADC, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	a := &ADC{
		Spec:       s,
		OffsetLSB:  s.OffsetLSB.Sample(rng),
		GainErrRel: s.GainErrRel.Sample(rng),
		INLPeakLSB: s.INLPeakLSB.Sample(rng),
	}
	if s.DNLSigmaLSB > 0 {
		n := 1 << uint(s.Bits)
		a.dnl = make([]float64, n)
		for i := range a.dnl {
			a.dnl[i] = rng.NormFloat64() * s.DNLSigmaLSB
		}
	}
	return a, nil
}

// ADC is a quantizer device instance.
type ADC struct {
	// Spec is the specification the device was built from.
	Spec Spec
	// OffsetLSB is the actual offset error, LSB.
	OffsetLSB float64
	// GainErrRel is the actual relative gain error.
	GainErrRel float64
	// INLPeakLSB is the actual INL bow peak, LSB.
	INLPeakLSB float64

	dnl []float64
}

// Name identifies the instance.
func (a *ADC) Name() string { return a.Spec.Name }

// LSB returns the voltage of one code step.
func (a *ADC) LSB() float64 {
	return 2 * a.Spec.FullScaleV / float64(int64(1)<<uint(a.Spec.Bits))
}

// CodeRange returns the inclusive [min, max] output codes.
func (a *ADC) CodeRange() (int64, int64) {
	half := int64(1) << uint(a.Spec.Bits-1)
	return -half, half - 1
}

// inlLSB evaluates the parabolic INL bow at normalized position
// u ∈ [-1, 1]: peak·(1 − u²).
func (a *ADC) inlLSB(u float64) float64 {
	return a.INLPeakLSB * (1 - u*u)
}

// Convert quantizes a voltage record into signed output codes,
// applying gain error, offset, INL bow, frozen DNL perturbations,
// input noise (when rng non-nil), and saturation.
func (a *ADC) Convert(x []float64, rng *rand.Rand) []int64 {
	lsb := a.LSB()
	minC, maxC := a.CodeRange()
	out := make([]int64, len(x))
	for i, v := range x {
		val := v * (1 + a.GainErrRel) / lsb // in LSB units
		if rng != nil && a.Spec.NoiseRMSLSB > 0 {
			val += rng.NormFloat64() * a.Spec.NoiseRMSLSB
		}
		val += a.OffsetLSB
		u := v / a.Spec.FullScaleV
		if u > 1 {
			u = 1
		} else if u < -1 {
			u = -1
		}
		val += a.inlLSB(u)
		c := int64(math.Round(val))
		if a.dnl != nil {
			idx := c - minC
			if idx >= 0 && idx < int64(len(a.dnl)) {
				c = int64(math.Round(val + a.dnl[idx]))
			}
		}
		if c < minC {
			c = minC
		} else if c > maxC {
			c = maxC
		}
		out[i] = c
	}
	return out
}

// Process implements the analog Block shape: it converts and then
// reconstructs to volts (code·LSB), so an ADC can sit inside a
// float-domain block chain. The digital side of a path uses Convert
// directly.
func (a *ADC) Process(x []float64, fs float64, rng *rand.Rand) []float64 {
	codes := a.Convert(x, rng)
	lsb := a.LSB()
	out := make([]float64, len(codes))
	for i, c := range codes {
		out[i] = float64(c) * lsb
	}
	return out
}

// Propagate implements attribute propagation across the interface:
// amplitudes are preserved (unit nominal conversion gain in volts),
// quantization noise LSB/√12 plus the spec'd input noise accumulate,
// and the offset uncertainty grows by the offset spread.
func (a *ADC) Propagate(in msignal.Signal) msignal.Signal {
	lsb := a.LSB()
	out := in.ScaleWithTolerance(1, math.Abs(a.Spec.GainErrRel.Sigma))
	q := lsb / math.Sqrt(12)
	n := a.Spec.NoiseRMSLSB * lsb
	out = out.AddNoise(math.Sqrt(q*q + n*n))
	out = out.AddDC(a.Spec.OffsetLSB.Nominal*lsb, a.Spec.OffsetLSB.Sigma*lsb)
	return out
}

// IdealSNRdB returns the textbook quantization-limited SNR for a
// full-scale sine: 6.02·bits + 1.76 dB.
func (a *ADC) IdealSNRdB() float64 {
	return 6.02*float64(a.Spec.Bits) + 1.76
}

// MeasureINLDNL runs a code-density (histogram) test on the converter
// using a full-scale linear ramp of n samples and returns the INL and
// DNL profiles in LSB, indexed by code-minC. This is the standard
// ATE static-linearity measurement.
func (a *ADC) MeasureINLDNL(n int) (inl, dnl []float64) {
	minC, maxC := a.CodeRange()
	codes := int(maxC - minC + 1)
	hist := make([]int, codes)
	for i := 0; i < n; i++ {
		v := -a.Spec.FullScaleV + 2*a.Spec.FullScaleV*float64(i)/float64(n-1)
		c := a.Convert([]float64{v}, nil)[0]
		hist[c-minC]++
	}
	// Ideal count per code for a ramp is n/codes; exclude the end
	// codes (saturation buckets).
	ideal := float64(n) / float64(codes)
	dnl = make([]float64, codes)
	inl = make([]float64, codes)
	acc := 0.0
	for c := 1; c < codes-1; c++ {
		dnl[c] = float64(hist[c])/ideal - 1
		acc += dnl[c]
		inl[c] = acc
	}
	return inl, dnl
}

// MeasureINLDNLSine runs the sine-wave code-density test: a slightly
// over-ranged coherent sine exercises every code; the histogram is
// corrected by the arcsine probability density of a sine's residence
// time per code. This is the linearity measurement a functional path
// *can* deliver (a pure ramp cannot pass an AC-coupled front end).
// n is the record length; the stimulus over-drives full scale by 5%.
func (a *ADC) MeasureINLDNLSine(n int) (inl, dnl []float64) {
	minC, maxC := a.CodeRange()
	codes := int(maxC - minC + 1)
	hist := make([]int, codes)
	amp := 1.05 * a.Spec.FullScaleV
	// A frequency mutually prime with n covers phases uniformly.
	for i := 0; i < n; i++ {
		v := amp * math.Sin(2*math.Pi*float64(i)*179.0/float64(n))
		c := a.Convert([]float64{v}, nil)[0]
		hist[c-minC]++
	}
	// Ideal residence probability of code c for a sine of amplitude
	// amp: p(c) = (asin(v2/amp) − asin(v1/amp))/π over the code's
	// voltage span [v1, v2].
	lsb := a.LSB()
	ideal := make([]float64, codes)
	for c := 0; c < codes; c++ {
		v1 := (float64(c+int(minC)) - 0.5) * lsb
		v2 := v1 + lsb
		ideal[c] = (clampAsin(v2/amp) - clampAsin(v1/amp)) / math.Pi
	}
	dnl = make([]float64, codes)
	inl = make([]float64, codes)
	acc := 0.0
	total := float64(n)
	for c := 1; c < codes-1; c++ {
		if ideal[c] <= 0 {
			continue
		}
		dnl[c] = float64(hist[c])/(total*ideal[c]) - 1
		acc += dnl[c]
		inl[c] = acc
	}
	return inl, dnl
}

func clampAsin(x float64) float64 {
	if x > 1 {
		x = 1
	} else if x < -1 {
		x = -1
	}
	return math.Asin(x)
}

// PeakAbs returns the largest magnitude in a profile.
func PeakAbs(profile []float64) float64 {
	var p float64
	for _, v := range profile {
		if a := math.Abs(v); a > p {
			p = a
		}
	}
	return p
}
