package adc

import (
	"fmt"
	"math"
	"math/rand"
)

// SigmaDelta is a first-order single-bit sigma-delta modulator with a
// sinc¹ (boxcar) decimator — the alternative analog/digital interface
// module mentioned in the paper's introduction. The modulator runs at
// the oversampled rate; Decimate produces multi-bit words at the
// output rate.
type SigmaDelta struct {
	// FullScaleV is the feedback DAC level: the 1-bit output toggles
	// between ±FullScaleV.
	FullScaleV float64
	// OSR is the oversampling ratio used by Decimate.
	OSR int
	// IntegratorLeak models a lossy integrator (0 = ideal, small
	// positive values leak); leak shifts quantization noise back into
	// the band, degrading SNR — a realistic analog defect knob.
	IntegratorLeak float64
	// InputNoiseRMS is thermal noise at the modulator input, volts.
	InputNoiseRMS float64
}

// NewSigmaDelta returns a modulator with the given full scale and OSR.
func NewSigmaDelta(fullScale float64, osr int) (*SigmaDelta, error) {
	if fullScale <= 0 {
		return nil, fmt.Errorf("adc: sigma-delta full scale %g must be positive", fullScale)
	}
	if osr < 2 {
		return nil, fmt.Errorf("adc: OSR %d must be >= 2", osr)
	}
	return &SigmaDelta{FullScaleV: fullScale, OSR: osr}, nil
}

// Modulate produces the ±FullScaleV bitstream for input x (sampled at
// the oversampled rate). Inputs should stay within ~±0.8·FullScaleV
// for stable operation of the first-order loop.
func (s *SigmaDelta) Modulate(x []float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(x))
	var integ float64
	for i, v := range x {
		if rng != nil && s.InputNoiseRMS > 0 {
			v += rng.NormFloat64() * s.InputNoiseRMS
		}
		var fb float64
		if integ >= 0 {
			fb = s.FullScaleV
		} else {
			fb = -s.FullScaleV
		}
		out[i] = fb
		integ = integ*(1-s.IntegratorLeak) + (v - fb)
	}
	return out
}

// Decimate boxcar-averages the bitstream by OSR, producing one output
// word per OSR input bits (a sinc¹ decimator). The result is a
// float record at rate fs/OSR.
func (s *SigmaDelta) Decimate(bits []float64) []float64 {
	n := len(bits) / s.OSR
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < s.OSR; j++ {
			sum += bits[i*s.OSR+j]
		}
		out[i] = sum / float64(s.OSR)
	}
	return out
}

// ConvertOversampled modulates and decimates in one step.
func (s *SigmaDelta) ConvertOversampled(x []float64, rng *rand.Rand) []float64 {
	return s.Decimate(s.Modulate(x, rng))
}

// TheoreticalSNRdB returns the first-order sigma-delta in-band SNR
// bound for a full-scale sine: SNR ≈ 6.02·0 + 1.76 − 5.17 + 30·log10(OSR).
func (s *SigmaDelta) TheoreticalSNRdB() float64 {
	return 1.76 - 5.17 + 30*math.Log10(float64(s.OSR))
}

// SigmaDelta2 is a second-order single-bit modulator (two cascaded
// integrators with the classic ½, ½ feedback scaling for stability)
// with the same sinc decimation. Noise shaping improves from
// 30 dB/decade of OSR to 50 dB/decade.
type SigmaDelta2 struct {
	// FullScaleV is the feedback DAC level.
	FullScaleV float64
	// OSR is the oversampling ratio used by Decimate.
	OSR int
	// Leak1, Leak2 are the two integrators' leak factors (defect
	// knobs; 0 = ideal).
	Leak1, Leak2 float64
	// InputNoiseRMS is thermal noise at the modulator input, volts.
	InputNoiseRMS float64
}

// NewSigmaDelta2 returns a second-order modulator.
func NewSigmaDelta2(fullScale float64, osr int) (*SigmaDelta2, error) {
	if fullScale <= 0 {
		return nil, fmt.Errorf("adc: sigma-delta full scale %g must be positive", fullScale)
	}
	if osr < 2 {
		return nil, fmt.Errorf("adc: OSR %d must be >= 2", osr)
	}
	return &SigmaDelta2{FullScaleV: fullScale, OSR: osr}, nil
}

// Modulate produces the ±FullScaleV bitstream. Inputs should stay
// within ~±0.6·FullScaleV for loop stability.
func (s *SigmaDelta2) Modulate(x []float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(x))
	var i1, i2 float64
	for i, v := range x {
		if rng != nil && s.InputNoiseRMS > 0 {
			v += rng.NormFloat64() * s.InputNoiseRMS
		}
		var fb float64
		if i2 >= 0 {
			fb = s.FullScaleV
		} else {
			fb = -s.FullScaleV
		}
		out[i] = fb
		i1 = i1*(1-s.Leak1) + 0.5*(v-fb)
		i2 = i2*(1-s.Leak2) + 0.5*(i1-fb)
	}
	return out
}

// Decimate applies a sinc³ filter (three cascaded length-OSR boxcars,
// the textbook match for 2nd-order shaping: a sinc^(L+1) decimator for
// an order-L loop) and downsamples by OSR. The record is treated as
// circular, which is exact for the coherent (record-periodic) stimuli
// the test methodology uses.
func (s *SigmaDelta2) Decimate(bits []float64) []float64 {
	work := bits
	for pass := 0; pass < 3; pass++ {
		work = circularBoxcar(work, s.OSR)
	}
	n := len(bits) / s.OSR
	out := make([]float64, n)
	// Compensate the cascaded filters' group delay of 3(OSR−1)/2
	// samples so decimated samples align with the boxcar centers.
	shift := 3 * (s.OSR - 1) / 2
	for i := 0; i < n; i++ {
		out[i] = work[(i*s.OSR+shift)%len(work)]
	}
	return out
}

// circularBoxcar is a normalized length-k moving average with
// wrap-around boundary conditions.
func circularBoxcar(x []float64, k int) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n == 0 || k <= 0 {
		return out
	}
	var sum float64
	for j := 0; j < k; j++ {
		sum += x[j%n]
	}
	inv := 1 / float64(k)
	for i := 0; i < n; i++ {
		out[i] = sum * inv
		sum -= x[i]
		sum += x[(i+k)%n]
	}
	return out
}

// ConvertOversampled modulates and decimates in one step. The
// second-order loop's ½·½ forward gains halve the signal transfer at
// baseband relative to the feedback path — the decimated output
// tracks the input directly (unity STF), as the tests verify.
func (s *SigmaDelta2) ConvertOversampled(x []float64, rng *rand.Rand) []float64 {
	return s.Decimate(s.Modulate(x, rng))
}
