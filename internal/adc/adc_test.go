package adc

import (
	"math"
	"math/rand"
	"testing"

	"mstx/internal/dsp"
	"mstx/internal/msignal"
	"mstx/internal/tolerance"
)

func spec10() Spec {
	return Spec{
		Name:       "adc",
		Bits:       10,
		FullScaleV: 1.0,
	}
}

func TestSpecValidation(t *testing.T) {
	s := spec10()
	s.Bits = 1
	if _, err := s.Build(); err == nil {
		t.Error("bits=1 accepted")
	}
	s = spec10()
	s.FullScaleV = 0
	if _, err := s.Build(); err == nil {
		t.Error("FS=0 accepted")
	}
	s = spec10()
	s.Bits = 31
	if _, err := s.Sample(rand.New(rand.NewSource(1))); err == nil {
		t.Error("bits=31 accepted by Sample")
	}
}

func TestLSBAndRange(t *testing.T) {
	a, err := spec10().Build()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.LSB()-2.0/1024) > 1e-15 {
		t.Errorf("LSB = %g", a.LSB())
	}
	lo, hi := a.CodeRange()
	if lo != -512 || hi != 511 {
		t.Errorf("range = [%d, %d]", lo, hi)
	}
	if a.Name() != "adc" {
		t.Errorf("Name = %q", a.Name())
	}
}

func TestIdealConversion(t *testing.T) {
	a, err := spec10().Build()
	if err != nil {
		t.Fatal(err)
	}
	lsb := a.LSB()
	codes := a.Convert([]float64{0, lsb, -lsb, 0.5, -0.5, 10, -10}, nil)
	want := []int64{0, 1, -1, 256, -256, 511, -512}
	for i := range want {
		if codes[i] != want[i] {
			t.Errorf("code[%d] = %d, want %d", i, codes[i], want[i])
		}
	}
}

func TestOffsetAndGainError(t *testing.T) {
	s := spec10()
	s.OffsetLSB = tolerance.Abs(3, 0)
	s.GainErrRel = tolerance.Abs(0.01, 0)
	a, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := a.Convert([]float64{0}, nil)
	if c[0] != 3 {
		t.Errorf("offset code = %d, want 3", c[0])
	}
	// Gain error: input 0.5 V is 256 LSB ideal; +1% -> ~258.56+3 -> 262.
	c = a.Convert([]float64{0.5}, nil)
	want := int64(math.Round(0.5*1.01/a.LSB() + 3))
	if c[0] != want {
		t.Errorf("gain-err code = %d, want %d", c[0], want)
	}
}

func TestQuantizationSNR(t *testing.T) {
	a, err := spec10().Build()
	if err != nil {
		t.Fatal(err)
	}
	fs := 1e6
	n := 8192
	f := dsp.CoherentBin(fs, n, 1021)
	x := msignal.NewTone(f, 0.99).Render(n, fs, nil)
	rec := a.Process(x, fs, nil)
	an, err := dsp.Analyze(rec, fs, []float64{f}, dsp.Rectangular, dsp.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// SINAD of a near-full-scale sine should be within ~2 dB of ideal.
	if math.Abs(an.SINAD-a.IdealSNRdB()) > 2.5 {
		t.Errorf("SINAD = %g dB, ideal %g", an.SINAD, a.IdealSNRdB())
	}
	if math.Abs(an.ENOB-10) > 0.5 {
		t.Errorf("ENOB = %g, want ~10", an.ENOB)
	}
}

func TestINLBowMeasured(t *testing.T) {
	s := spec10()
	s.INLPeakLSB = tolerance.Abs(2, 0)
	a, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	inl, dnl := a.MeasureINLDNL(300000)
	peak := PeakAbs(inl[5 : len(inl)-5])
	if peak < 1.0 || peak > 3.0 {
		t.Errorf("measured INL peak = %g LSB, want ~2", peak)
	}
	// An ideal converter has near-zero measured DNL.
	ideal, err := spec10().Build()
	if err != nil {
		t.Fatal(err)
	}
	_, dnl0 := ideal.MeasureINLDNL(300000)
	if PeakAbs(dnl0[5:len(dnl0)-5]) > 0.3 {
		t.Errorf("ideal DNL peak = %g", PeakAbs(dnl0[5:len(dnl0)-5]))
	}
	_ = dnl
}

func TestDNLTableFrozen(t *testing.T) {
	s := spec10()
	s.DNLSigmaLSB = 0.3
	rng := rand.New(rand.NewSource(60))
	a, err := s.Sample(rng)
	if err != nil {
		t.Fatal(err)
	}
	// Conversions must be deterministic given the frozen table.
	x := []float64{0.123, -0.456, 0.789}
	c1 := a.Convert(x, nil)
	c2 := a.Convert(x, nil)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("frozen DNL not deterministic")
		}
	}
	// And a sampled device differs from ideal somewhere on a ramp.
	ideal, err := spec10().Build()
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := 0; i < 2000; i++ {
		v := -0.99 + 1.98*float64(i)/1999
		if a.Convert([]float64{v}, nil)[0] != ideal.Convert([]float64{v}, nil)[0] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("sampled DNL device identical to ideal")
	}
}

func TestSaturation(t *testing.T) {
	a, err := spec10().Build()
	if err != nil {
		t.Fatal(err)
	}
	c := a.Convert([]float64{5, -5}, nil)
	if c[0] != 511 || c[1] != -512 {
		t.Errorf("saturation codes: %v", c)
	}
}

func TestInputNoise(t *testing.T) {
	s := spec10()
	s.NoiseRMSLSB = 1.5
	a, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	x := make([]float64, 20000)
	codes := a.Convert(x, rng)
	var mean, ms float64
	for _, c := range codes {
		mean += float64(c)
	}
	mean /= float64(len(codes))
	for _, c := range codes {
		ms += (float64(c) - mean) * (float64(c) - mean)
	}
	rms := math.Sqrt(ms / float64(len(codes)))
	// Quantized noise RMS should be near 1.5 LSB (plus quantization).
	if rms < 1.2 || rms > 1.9 {
		t.Errorf("code noise RMS = %g, want ~1.5", rms)
	}
}

func TestPropagate(t *testing.T) {
	s := spec10()
	s.OffsetLSB = tolerance.Abs(2, 1)
	s.GainErrRel = tolerance.Abs(0, 0.005)
	a, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := msignal.NewTone(100e3, 0.5)
	out := a.Propagate(in)
	if math.Abs(out.Tones[0].Amp-0.5) > 1e-12 {
		t.Errorf("amplitude changed: %g", out.Tones[0].Amp)
	}
	if out.NoiseRMS < a.LSB()/math.Sqrt(12)*0.99 {
		t.Errorf("quantization noise missing: %g", out.NoiseRMS)
	}
	if out.DC != 2*a.LSB() {
		t.Errorf("offset DC = %g", out.DC)
	}
	if out.AmpAccuracy != 0.005 {
		t.Errorf("gain-error accuracy = %g", out.AmpAccuracy)
	}
}

func TestSigmaDeltaValidation(t *testing.T) {
	if _, err := NewSigmaDelta(0, 32); err == nil {
		t.Error("FS=0 accepted")
	}
	if _, err := NewSigmaDelta(1, 1); err == nil {
		t.Error("OSR=1 accepted")
	}
}

func TestSigmaDeltaSNRScalesWithOSR(t *testing.T) {
	fsRate := 2.56e6
	nOut := 2048
	measure := func(osr int) float64 {
		sd, err := NewSigmaDelta(1, osr)
		if err != nil {
			t.Fatal(err)
		}
		n := nOut * osr
		outRate := fsRate / float64(osr)
		f := dsp.CoherentBin(outRate, nOut, 37)
		x := msignal.NewTone(f, 0.5).Render(n, fsRate, nil)
		dec := sd.ConvertOversampled(x, nil)
		an, err := dsp.Analyze(dec, outRate, []float64{f}, dsp.Rectangular,
			dsp.AnalyzeOptions{Harmonics: 2})
		if err != nil {
			t.Fatal(err)
		}
		return an.SNR
	}
	snr32 := measure(32)
	snr128 := measure(128)
	// First-order loop: +30 dB/decade of OSR -> 128/32 = 4× ≈ 18 dB.
	gain := snr128 - snr32
	if gain < 10 || gain > 26 {
		t.Errorf("SNR gain for 4× OSR = %g dB, want ~18", gain)
	}
	// A sinc¹ decimator aliases some shaped noise back into band, so
	// the absolute SNR sits below the ideal-brick-wall bound.
	if snr32 < 18 {
		t.Errorf("OSR=32 SNR = %g dB, implausibly low", snr32)
	}
}

func TestSigmaDeltaBitstreamLevels(t *testing.T) {
	sd, err := NewSigmaDelta(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	bits := sd.Modulate(make([]float64, 100), nil)
	for _, b := range bits {
		if b != 1 && b != -1 {
			t.Fatalf("bitstream level %g", b)
		}
	}
	// DC input tracks in the decimated mean.
	x := make([]float64, 16*400)
	for i := range x {
		x[i] = 0.25
	}
	dec := sd.Decimate(sd.Modulate(x, nil))
	if math.Abs(dsp.Mean(dec[2:])-0.25) > 0.02 {
		t.Errorf("decimated DC = %g, want 0.25", dsp.Mean(dec[2:]))
	}
}

func TestSigmaDeltaLeakDegradesSNR(t *testing.T) {
	osr := 64
	fsRate := 2.56e6
	nOut := 1024
	outRate := fsRate / float64(osr)
	f := dsp.CoherentBin(outRate, nOut, 21)
	x := msignal.NewTone(f, 0.5).Render(nOut*osr, fsRate, nil)
	run := func(leak float64) float64 {
		sd, err := NewSigmaDelta(1, osr)
		if err != nil {
			t.Fatal(err)
		}
		sd.IntegratorLeak = leak
		dec := sd.ConvertOversampled(x, nil)
		an, err := dsp.Analyze(dec, outRate, []float64{f}, dsp.Rectangular,
			dsp.AnalyzeOptions{Harmonics: 2})
		if err != nil {
			t.Fatal(err)
		}
		return an.SNR
	}
	if healthy, leaky := run(0), run(0.05); leaky >= healthy {
		t.Errorf("leak should degrade SNR: %g vs %g", leaky, healthy)
	}
}

func TestTheoreticalSNR(t *testing.T) {
	sd, err := NewSigmaDelta(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sd.TheoreticalSNRdB()-(1.76-5.17+60)) > 1e-9 {
		t.Errorf("theoretical SNR = %g", sd.TheoreticalSNRdB())
	}
}

func TestPeakAbs(t *testing.T) {
	if PeakAbs([]float64{-3, 2, 1}) != 3 {
		t.Error("PeakAbs wrong")
	}
	if PeakAbs(nil) != 0 {
		t.Error("PeakAbs(nil) != 0")
	}
}

func TestSineHistogramINL(t *testing.T) {
	s := spec10()
	s.INLPeakLSB = tolerance.Abs(2, 0)
	a, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	inl, dnl := a.MeasureINLDNLSine(400000)
	peak := PeakAbs(inl[10 : len(inl)-10])
	if peak < 1.0 || peak > 3.2 {
		t.Errorf("sine-histogram INL peak = %g LSB, want ~2", peak)
	}
	// Ideal converter: near-zero INL and DNL by the same method.
	ideal, err := spec10().Build()
	if err != nil {
		t.Fatal(err)
	}
	inl0, dnl0 := ideal.MeasureINLDNLSine(400000)
	if PeakAbs(inl0[10:len(inl0)-10]) > 0.5 {
		t.Errorf("ideal sine-histogram INL peak = %g", PeakAbs(inl0[10:len(inl0)-10]))
	}
	if PeakAbs(dnl0[10:len(dnl0)-10]) > 0.5 {
		t.Errorf("ideal sine-histogram DNL peak = %g", PeakAbs(dnl0[10:len(dnl0)-10]))
	}
	_ = dnl
}

func TestSineHistogramDNLSeesFrozenTable(t *testing.T) {
	s := spec10()
	s.DNLSigmaLSB = 0.4
	rng := rand.New(rand.NewSource(62))
	a, err := s.Sample(rng)
	if err != nil {
		t.Fatal(err)
	}
	_, dnl := a.MeasureINLDNLSine(400000)
	if PeakAbs(dnl[10:len(dnl)-10]) < 0.3 {
		t.Errorf("DNL table invisible to the sine histogram: peak %g",
			PeakAbs(dnl[10:len(dnl)-10]))
	}
}

func TestSigmaDelta2Validation(t *testing.T) {
	if _, err := NewSigmaDelta2(0, 32); err == nil {
		t.Error("FS=0 accepted")
	}
	if _, err := NewSigmaDelta2(1, 1); err == nil {
		t.Error("OSR=1 accepted")
	}
}

func TestSigmaDelta2BeatsFirstOrder(t *testing.T) {
	fsRate := 2.56e6
	nOut := 2048
	osr := 64
	outRate := fsRate / float64(osr)
	f := dsp.CoherentBin(outRate, nOut, 37)
	x := msignal.NewTone(f, 0.4).Render(nOut*osr, fsRate, nil)

	sd1, err := NewSigmaDelta(1, osr)
	if err != nil {
		t.Fatal(err)
	}
	sd2, err := NewSigmaDelta2(1, osr)
	if err != nil {
		t.Fatal(err)
	}
	snr := func(dec []float64) float64 {
		an, err := dsp.Analyze(dec, outRate, []float64{f}, dsp.Rectangular,
			dsp.AnalyzeOptions{Harmonics: 2})
		if err != nil {
			t.Fatal(err)
		}
		return an.SNR
	}
	s1 := snr(sd1.ConvertOversampled(x, nil))
	s2 := snr(sd2.ConvertOversampled(x, nil))
	if s2 <= s1+6 {
		t.Errorf("2nd order SNR %g dB should beat 1st order %g dB by >6 dB", s2, s1)
	}
	// The decimated output must still track the tone amplitude.
	dec := sd2.ConvertOversampled(x, nil)
	s, err := dsp.PowerSpectrum(dec, outRate, dsp.Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	m := dsp.MeasureTone(s, f)
	if math.Abs(m.Amplitude-0.4)/0.4 > 0.1 {
		t.Errorf("2nd-order tone amplitude = %g, want ~0.4", m.Amplitude)
	}
}

func TestSigmaDelta2LeakDegrades(t *testing.T) {
	fsRate := 2.56e6
	nOut := 1024
	osr := 64
	outRate := fsRate / float64(osr)
	f := dsp.CoherentBin(outRate, nOut, 21)
	x := msignal.NewTone(f, 0.4).Render(nOut*osr, fsRate, nil)
	run := func(leak float64) float64 {
		sd, err := NewSigmaDelta2(1, osr)
		if err != nil {
			t.Fatal(err)
		}
		sd.Leak1 = leak
		dec := sd.ConvertOversampled(x, nil)
		an, err := dsp.Analyze(dec, outRate, []float64{f}, dsp.Rectangular,
			dsp.AnalyzeOptions{Harmonics: 2})
		if err != nil {
			t.Fatal(err)
		}
		return an.SNR
	}
	if healthy, leaky := run(0), run(0.1); leaky >= healthy {
		t.Errorf("leak should degrade SNR: %g vs %g", leaky, healthy)
	}
}
