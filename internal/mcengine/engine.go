// Package mcengine is the sharded Monte-Carlo estimation engine: it
// fans fixed-size sample batches ("lanes") across a bounded worker
// pool, gives every lane its own deterministic RNG substream derived
// from (seed, lane index), and merges the per-lane partial results at
// round barriers in ascending lane order.
//
// Because the sample stream of lane l depends only on SubstreamSeed
// (seed, l) — never on which worker ran it or when — and because
// partials are folded strictly in lane order, the merged result is
// bit-identical for ANY worker count, including a plain serial loop
// over the same lanes. That is the engine's contract: parallelism is
// purely a scheduling concern and can never change a published number.
//
// Early stopping is confidence-interval-driven and equally
// deterministic: lanes are grouped into rounds of CheckEvery lanes,
// and the caller's stop predicate is consulted only at round barriers,
// on the merged prefix of lanes. The stopping decision therefore
// depends only on (seed, BatchSize, CheckEvery) — not on workers or
// timing — so an early-stopped run is reproducible too.
package mcengine

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mstx/internal/obs"
)

// DefaultBatchSize is the per-lane sample count when Options.BatchSize
// is zero: large enough that RNG setup and scheduling are noise,
// small enough that early stopping has useful granularity.
const DefaultBatchSize = 8192

// Options configures a Run.
type Options struct {
	// Workers bounds the worker pool. Defaults to GOMAXPROCS.
	Workers int
	// BatchSize is the number of samples per lane (the substream
	// granularity). It is part of the reproducibility contract: the
	// same seed with a different BatchSize is a different experiment.
	// Defaults to DefaultBatchSize.
	BatchSize int
	// CheckEvery groups lanes into early-stop rounds: the stop
	// predicate runs after every CheckEvery lanes have been merged.
	// Zero (or a nil stop predicate) disables early stopping and runs
	// all lanes in a single round.
	CheckEvery int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	return o
}

// SubstreamSeed derives the RNG seed of one lane from the run seed by
// a splitmix64 mix (Steele et al.), so neighbouring lanes get
// decorrelated streams and lane 0 never equals the raw run seed.
func SubstreamSeed(seed int64, lane int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(lane+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Lanes returns the number of lanes an n-sample run occupies at the
// given batch size.
func Lanes(n, batchSize int) int {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return (n + batchSize - 1) / batchSize
}

// Kernel computes one lane's partial result: count samples drawn from
// the lane's private substream rng. It must not touch shared mutable
// state; everything it needs beyond the rng should be captured
// read-only in the closure.
type Kernel[P any] func(lane, count int, rng *rand.Rand) (P, error)

// Merge folds one lane's partial into the running total. The engine
// guarantees calls in strictly ascending lane order, so even
// non-commutative (e.g. floating-point) merges are deterministic.
type Merge[T, P any] func(total T, lane int, part P) T

// Stop is consulted at round barriers with the merged prefix total and
// the number of samples it covers; returning true ends the run early.
type Stop[T any] func(total T, samples int) bool

// Run executes an n-sample Monte-Carlo estimation and returns the
// merged total together with the number of samples actually processed
// (less than n only when the stop predicate fired). The zero total is
// the caller's initial accumulator value.
func Run[T, P any](n int, seed int64, opts Options, total T, kernel Kernel[P], merge Merge[T, P], stop Stop[T]) (T, int, error) {
	if n <= 0 {
		return total, 0, fmt.Errorf("mcengine: sample count %d must be positive", n)
	}
	if kernel == nil || merge == nil {
		return total, 0, fmt.Errorf("mcengine: nil kernel or merge")
	}
	o := opts.withDefaults()
	lanes := Lanes(n, o.BatchSize)
	round := o.CheckEvery
	if round <= 0 || stop == nil {
		round = lanes
	}
	laneCount := func(l int) int {
		if l == lanes-1 {
			return n - l*o.BatchSize
		}
		return o.BatchSize
	}

	done := 0

	// Observability: handles resolved once per run, all nil (and every
	// use a no-op) when no registry is installed. Instrumentation is
	// read-only — it can never change the merged result, which stays
	// bit-identical for any worker count.
	reg := obs.Default()
	var (
		runSp       *obs.SpanHandle
		barrierHist *obs.Histogram
		mergeHist   *obs.Histogram
		runStart    time.Time
		rounds      int
		stopped     bool
	)
	if reg != nil {
		_, runSp = reg.Span(context.Background(), "mcengine.run")
		defer runSp.End()
		barrierHist = reg.Histogram("mc_barrier_wait_seconds", 0, 10, 64)
		mergeHist = reg.Histogram("mc_merge_seconds", 0, 1, 64)
		runStart = time.Now()
		defer func() {
			reg.Counter("mc_runs_total").Inc()
			reg.Counter("mc_rounds_total").Add(int64(rounds))
			reg.Counter("mc_samples_total").Add(int64(done))
			if stopped {
				reg.Counter("mc_early_stops_total").Inc()
				reg.Gauge("mc_early_stop_round").Set(float64(rounds))
			}
			if wall := time.Since(runStart).Seconds(); wall > 0 {
				reg.Gauge("mc_samples_per_sec").Set(float64(done) / wall)
			}
		}()
	}

	for lo := 0; lo < lanes; lo += round {
		hi := lo + round
		if hi > lanes {
			hi = lanes
		}
		parts := make([]P, hi-lo)
		errs := make([]error, hi-lo)
		workers := o.Workers
		if workers > hi-lo {
			workers = hi - lo
		}
		var (
			next   = int64(lo) - 1
			failed int32
			wg     sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					l := int(atomic.AddInt64(&next, 1))
					if l >= hi {
						return
					}
					if atomic.LoadInt32(&failed) != 0 {
						continue
					}
					rng := rand.New(rand.NewSource(SubstreamSeed(seed, l)))
					p, err := kernel(l, laneCount(l), rng)
					if err != nil {
						errs[l-lo] = err
						atomic.StoreInt32(&failed, 1)
						continue
					}
					parts[l-lo] = p
				}
			}()
		}
		var barrierStart time.Time
		if reg != nil {
			barrierStart = time.Now()
		}
		wg.Wait()
		if reg != nil {
			barrierHist.Observe(time.Since(barrierStart).Seconds())
		}
		for i, e := range errs {
			if e != nil {
				var zero T
				return zero, done, fmt.Errorf("mcengine: lane %d: %w", lo+i, e)
			}
		}
		var mergeStart time.Time
		if reg != nil {
			mergeStart = time.Now()
		}
		for i := range parts {
			l := lo + i
			total = merge(total, l, parts[i])
			done += laneCount(l)
		}
		if reg != nil {
			mergeHist.Observe(time.Since(mergeStart).Seconds())
			reg.Counter("mc_lanes_total").Add(int64(hi - lo))
		}
		rounds++
		if hi < lanes && stop != nil && stop(total, done) {
			stopped = true
			return total, done, nil
		}
	}
	return total, done, nil
}
