// Package mcengine is the sharded Monte-Carlo estimation engine: it
// fans fixed-size sample batches ("lanes") across a bounded worker
// pool, gives every lane its own deterministic RNG substream derived
// from (seed, lane index), and merges the per-lane partial results at
// round barriers in ascending lane order.
//
// Because the sample stream of lane l depends only on SubstreamSeed
// (seed, l) — never on which worker ran it or when — and because
// partials are folded strictly in lane order, the merged result is
// bit-identical for ANY worker count, including a plain serial loop
// over the same lanes. That is the engine's contract: parallelism is
// purely a scheduling concern and can never change a published number.
//
// Early stopping is confidence-interval-driven and equally
// deterministic: lanes are grouped into rounds of CheckEvery lanes,
// and the caller's stop predicate is consulted only at round barriers,
// on the merged prefix of lanes. The stopping decision therefore
// depends only on (seed, BatchSize, CheckEvery) — not on workers or
// timing — so an early-stopped run is reproducible too.
//
// The engine is resilience-aware (internal/resilient): cancellation
// and deadlines are honored at lane granularity and surface as typed
// resilient.ErrCanceled/ErrDeadline with the merged prefix returned as
// a partial result; a panicking kernel is recovered and either
// quarantined (Options.OnQuarantine) or returned as an error, never
// allowed to crash the process; and round-barrier checkpoints
// (Options.Checkpoint) let a killed run resume bit-identically.
package mcengine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mstx/internal/obs"
	"mstx/internal/resilient"
)

// fpLane is the failpoint evaluated before every lane's kernel call;
// tests arm it to inject lane errors, panics and delays.
var fpLane = resilient.Site("mcengine.lane")

// DefaultBatchSize is the per-lane sample count when Options.BatchSize
// is zero: large enough that RNG setup and scheduling are noise,
// small enough that early stopping has useful granularity.
const DefaultBatchSize = 8192

// Options configures a Run.
type Options struct {
	// Workers bounds the worker pool. Defaults to GOMAXPROCS.
	Workers int
	// BatchSize is the number of samples per lane (the substream
	// granularity). It is part of the reproducibility contract: the
	// same seed with a different BatchSize is a different experiment.
	// Defaults to DefaultBatchSize.
	BatchSize int
	// CheckEvery groups lanes into early-stop rounds: the stop
	// predicate runs after every CheckEvery lanes have been merged.
	// Zero (or a nil stop predicate) disables early stopping and runs
	// all lanes in a single round.
	CheckEvery int
	// Checkpoint, when enabled, snapshots the merged prefix (total,
	// sample count, next lane) at round barriers — every
	// Checkpoint.Every rounds and at completion — and, with Resume set,
	// restores it at the next Run so a killed run continues from the
	// last barrier and produces a bit-identical final result.
	Checkpoint *resilient.Checkpointer
	// CheckpointName names this run's snapshot inside Checkpoint.Dir
	// (several engine runs can share one directory). Default "mc".
	CheckpointName string
	// OnQuarantine, when non-nil, turns a panicking kernel lane into a
	// quarantined lane: the panic is recovered, OnQuarantine receives
	// the lane, its sample count and the *resilient.PanicError, the
	// lane contributes nothing to the merge, and the run continues.
	// When nil, the recovered panic is returned as an ordinary run
	// error — the process never crashes either way.
	OnQuarantine func(lane, samples int, err error)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	return o
}

// SubstreamSeed derives the RNG seed of one lane from the run seed by
// a splitmix64 mix (Steele et al.), so neighbouring lanes get
// decorrelated streams and lane 0 never equals the raw run seed.
func SubstreamSeed(seed int64, lane int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(lane+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Lanes returns the number of lanes an n-sample run occupies at the
// given batch size.
func Lanes(n, batchSize int) int {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return (n + batchSize - 1) / batchSize
}

// Kernel computes one lane's partial result: count samples drawn from
// the lane's private substream rng. It must not touch shared mutable
// state; everything it needs beyond the rng should be captured
// read-only in the closure.
type Kernel[P any] func(lane, count int, rng *rand.Rand) (P, error)

// Merge folds one lane's partial into the running total. The engine
// guarantees calls in strictly ascending lane order, so even
// non-commutative (e.g. floating-point) merges are deterministic.
type Merge[T, P any] func(total T, lane int, part P) T

// Stop is consulted at round barriers with the merged prefix total and
// the number of samples it covers; returning true ends the run early.
type Stop[T any] func(total T, samples int) bool

// ckptVersion guards the ckptState layout; bump it when the state
// shape changes so stale snapshots are rejected on load.
const ckptVersion = 1

// ckptState is the round-barrier snapshot of a Run: the merged prefix
// plus the run parameters it is only valid for. Resuming replays the
// loop from NextLane with Total/Done restored, so the remaining merges
// happen in the same lane order with the same floating-point state —
// the final result is bit-identical to an uninterrupted run.
type ckptState[T any] struct {
	N          int
	Seed       int64
	BatchSize  int
	CheckEvery int
	NextLane   int
	Done       int
	Total      T
	Stopped    bool
}

// Run executes an n-sample Monte-Carlo estimation and returns the
// merged total together with the number of samples actually processed
// (less than n only when the stop predicate fired). The zero total is
// the caller's initial accumulator value.
//
// Cancellation is honored at lane granularity: when ctx is canceled
// (or its deadline expires) the engine stops claiming lanes, folds the
// contiguous completed prefix of the in-flight round, and returns the
// partial total and sample count together with a typed error
// satisfying errors.Is(err, resilient.ErrCanceled) or
// resilient.ErrDeadline. Kernel errors keep the original contract: a
// zero total and the first failing lane's error, in lane order.
func Run[T, P any](ctx context.Context, n int, seed int64, opts Options, total T, kernel Kernel[P], merge Merge[T, P], stop Stop[T]) (T, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return total, 0, fmt.Errorf("mcengine: sample count %d must be positive", n)
	}
	if kernel == nil || merge == nil {
		return total, 0, fmt.Errorf("mcengine: nil kernel or merge")
	}
	o := opts.withDefaults()
	lanes := Lanes(n, o.BatchSize)
	round := o.CheckEvery
	if round <= 0 || stop == nil {
		round = lanes
	}
	if o.Checkpoint.Enabled() && round >= lanes && lanes > 1 {
		// Round barriers are also the checkpoint grain: a run without
		// early-stop rounds would otherwise never snapshot before
		// completion. One worker-stripe per round keeps the barriers
		// cheap; the round size cannot change any merged value (merges
		// stay in lane order regardless).
		if round = o.Workers; round < 1 {
			round = 1
		}
	}
	laneCount := func(l int) int {
		if l == lanes-1 {
			return n - l*o.BatchSize
		}
		return o.BatchSize
	}

	done := 0

	// Checkpoint/resume: the snapshot is only valid for the exact run
	// parameters that shaped the lane decomposition and the barriers.
	ckName := o.CheckpointName
	if ckName == "" {
		ckName = "mc"
	}
	startLane := 0
	saveState := func(nextLane int, stopped bool) error {
		return o.Checkpoint.Save(ckName, ckptVersion, ckptState[T]{
			N: n, Seed: seed, BatchSize: o.BatchSize, CheckEvery: o.CheckEvery,
			NextLane: nextLane, Done: done, Total: total, Stopped: stopped,
		})
	}
	if o.Checkpoint.Enabled() {
		var st ckptState[T]
		loaded, err := o.Checkpoint.Load(ckName, ckptVersion, &st)
		if err != nil {
			return total, 0, err
		}
		if loaded {
			if st.N != n || st.Seed != seed || st.BatchSize != o.BatchSize || st.CheckEvery != o.CheckEvery {
				return total, 0, fmt.Errorf(
					"mcengine: checkpoint %q is from a different run (n=%d seed=%d batch=%d check=%d, want n=%d seed=%d batch=%d check=%d)",
					ckName, st.N, st.Seed, st.BatchSize, st.CheckEvery, n, seed, o.BatchSize, o.CheckEvery)
			}
			total, done, startLane = st.Total, st.Done, st.NextLane
			if st.Stopped || startLane >= lanes {
				return total, done, nil
			}
		}
	}

	// Observability: handles resolved once per run — the registry
	// carried by ctx when there is one (per-job rings in the job
	// server), otherwise the process default — and all nil (every use
	// a no-op) when neither is installed. Instrumentation is
	// read-only — it can never change the merged result, which stays
	// bit-identical for any worker count.
	reg := obs.For(ctx)
	var (
		runSp       *obs.SpanHandle
		barrierHist *obs.Histogram
		mergeHist   *obs.Histogram
		runStart    time.Time
		rounds      int
		stopped     bool
	)
	if reg != nil {
		_, runSp = reg.Span(ctx, "mcengine.run")
		defer runSp.End()
		barrierHist = reg.Histogram("mc_barrier_wait_seconds", 0, 10, 64)
		mergeHist = reg.Histogram("mc_merge_seconds", 0, 1, 64)
		runStart = time.Now()
		defer func() {
			reg.Counter("mc_runs_total").Inc()
			reg.Counter("mc_rounds_total").Add(int64(rounds))
			reg.Counter("mc_samples_total").Add(int64(done))
			if stopped {
				reg.Counter("mc_early_stops_total").Inc()
				reg.Gauge("mc_early_stop_round").Set(float64(rounds))
			}
			if wall := time.Since(runStart).Seconds(); wall > 0 {
				reg.Gauge("mc_samples_per_sec").Set(float64(done) / wall)
			}
		}()
	}

	for lo := startLane; lo < lanes; lo += round {
		hi := lo + round
		if hi > lanes {
			hi = lanes
		}
		parts := make([]P, hi-lo)
		errs := make([]error, hi-lo)
		completed := make([]bool, hi-lo)
		quar := make([]bool, hi-lo)
		workers := o.Workers
		if workers > hi-lo {
			workers = hi - lo
		}
		var (
			next     = int64(lo) - 1
			failed   int32
			wg       sync.WaitGroup
			poolOnce sync.Once
			poolErr  error
		)
		// A panic escaping the per-lane guard (pool bookkeeping itself)
		// still degrades to a run error instead of crashing the process.
		onPool := func(err error) {
			poolOnce.Do(func() { poolErr = err })
			atomic.StoreInt32(&failed, 1)
		}
		for w := 0; w < workers; w++ {
			resilient.Go(&wg, "mcengine.worker", func() error {
				for {
					l := int(atomic.AddInt64(&next, 1))
					if l >= hi {
						return nil
					}
					if atomic.LoadInt32(&failed) != 0 {
						continue
					}
					if ctx.Err() != nil {
						// Stop claiming; lanes already claimed by other
						// workers finish, and the barrier merges the
						// contiguous completed prefix below.
						return nil
					}
					err := resilient.Call(fpLane, func() error {
						if err := resilient.Fire(fpLane); err != nil {
							return err
						}
						rng := rand.New(rand.NewSource(SubstreamSeed(seed, l)))
						p, err := kernel(l, laneCount(l), rng)
						if err != nil {
							return err
						}
						parts[l-lo] = p
						completed[l-lo] = true
						return nil
					})
					if err != nil {
						var pe *resilient.PanicError
						if errors.As(err, &pe) && o.OnQuarantine != nil {
							// Quarantine: the lane contributes nothing
							// and the run continues. OnQuarantine runs on
							// the worker goroutine, possibly concurrently
							// with other lanes' callbacks.
							quar[l-lo] = true
							o.OnQuarantine(l, laneCount(l), err)
							continue
						}
						errs[l-lo] = err
						atomic.StoreInt32(&failed, 1)
					}
				}
			}, onPool)
		}
		var barrierStart time.Time
		if reg != nil {
			barrierStart = time.Now()
		}
		wg.Wait()
		if reg != nil {
			barrierHist.Observe(time.Since(barrierStart).Seconds())
		}
		for i, e := range errs {
			if e != nil {
				var zero T
				return zero, done, fmt.Errorf("mcengine: lane %d: %w", lo+i, e)
			}
		}
		if poolErr != nil {
			var zero T
			return zero, done, fmt.Errorf("mcengine: worker pool: %w", poolErr)
		}
		// When the context was interrupted mid-round, merge only the
		// contiguous completed prefix of this round's lanes: lane-order
		// folding keeps even a partial total deterministic for the
		// samples it covers.
		canceled := ctx.Err() != nil
		var mergeStart time.Time
		if reg != nil {
			mergeStart = time.Now()
		}
		merged, prefix := 0, 0
		for i := range parts {
			if !completed[i] && !quar[i] {
				break
			}
			prefix++
			if quar[i] {
				continue
			}
			l := lo + i
			total = merge(total, l, parts[i])
			done += laneCount(l)
			merged++
		}
		if reg != nil {
			mergeHist.Observe(time.Since(mergeStart).Seconds())
			reg.Counter("mc_lanes_total").Add(int64(merged))
		}
		if canceled {
			// Persist the merged prefix so a later resume continues
			// from the interruption point instead of lane zero.
			if o.Checkpoint.Enabled() {
				if err := saveState(lo+prefix, false); err != nil {
					return total, done, err
				}
			}
			return total, done, resilient.CtxErr(ctx)
		}
		rounds++
		if hi < lanes && stop != nil && stop(total, done) {
			stopped = true
			if err := saveState(hi, true); err != nil {
				return total, done, err
			}
			return total, done, nil
		}
		if o.Checkpoint.Enabled() && hi < lanes && rounds%o.Checkpoint.Interval() == 0 {
			if err := saveState(hi, false); err != nil {
				return total, done, err
			}
		}
	}
	if err := saveState(lanes, false); err != nil {
		return total, done, err
	}
	return total, done, nil
}
