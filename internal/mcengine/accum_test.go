package mcengine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 4001)
	var mv MeanVar
	var sum float64
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		mv.Observe(xs[i])
		sum += xs[i]
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	if math.Abs(mv.Mean-mean) > 1e-12 {
		t.Errorf("mean %g vs direct %g", mv.Mean, mean)
	}
	if math.Abs(mv.Var()-ss/float64(len(xs)-1)) > 1e-9 {
		t.Errorf("var %g vs direct %g", mv.Var(), ss/float64(len(xs)-1))
	}
}

func TestMeanVarMergeEquivalentToStreaming(t *testing.T) {
	f := func(seed int64, split uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + int(split)
		cut := n * int(split%97) / 97
		var whole, a, b MeanVar
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()
			whole.Observe(x)
			if i < cut {
				a.Observe(x)
			} else {
				b.Observe(x)
			}
		}
		a.Merge(b)
		return a.N == whole.N &&
			math.Abs(a.Mean-whole.Mean) < 1e-12 &&
			math.Abs(a.M2-whole.M2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanVarMergeEmpty(t *testing.T) {
	var a, b MeanVar
	a.Observe(2)
	a.Observe(4)
	want := a
	a.Merge(MeanVar{})
	if a != want {
		t.Error("merging empty changed the accumulator")
	}
	b.Merge(want)
	if b != want {
		t.Error("merging into empty should copy")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h, err := NewHistogram(-5, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200000; i++ {
		h.Observe(rng.NormFloat64())
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 0, 0.02},
		{0.841, 1, 0.03},
		{0.977, 2, 0.05},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%.3f = %g, want %g±%g", tc.q, got, tc.want, tc.tol)
		}
	}
	if h.Quantile(0) != h.Min || h.Quantile(1) != h.Max {
		t.Error("extreme quantiles should be exact min/max")
	}
}

func TestHistogramMergeExact(t *testing.T) {
	mk := func() *Histogram {
		h, err := NewHistogram(0, 1, 64)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	whole, a, b := mk(), mk(), mk()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		x := rng.Float64()*1.4 - 0.2 // spill both overflow counters
		whole.Observe(x)
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	if err := a.MergeHist(b); err != nil {
		t.Fatal(err)
	}
	if a.N != whole.N || a.Under != whole.Under || a.Over != whole.Over ||
		a.Min != whole.Min || a.Max != whole.Max {
		t.Errorf("merged totals differ: %+v vs %+v", a, whole)
	}
	for i := range a.Counts {
		if a.Counts[i] != whole.Counts[i] {
			t.Fatalf("bin %d: %d vs %d", i, a.Counts[i], whole.Counts[i])
		}
	}
	bad := mk()
	bad.Lo = 0.5
	if err := a.MergeHist(bad); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(1, 1, 10); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
	h, _ := NewHistogram(0, 1, 4)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty sketch should return NaN")
	}
}

func TestZForConfidence(t *testing.T) {
	for _, tc := range []struct{ conf, want float64 }{
		{0.6827, 1.0},
		{0.95, 1.95996},
		{0.9973, 3.0},
	} {
		if got := ZForConfidence(tc.conf); math.Abs(got-tc.want) > 2e-3 {
			t.Errorf("z(%g) = %g, want %g", tc.conf, got, tc.want)
		}
	}
	if ZForConfidence(0) != 0 || !math.IsInf(ZForConfidence(1), 1) {
		t.Error("boundary confidences wrong")
	}
}

func TestProportionHalfWidth(t *testing.T) {
	if !math.IsInf(ProportionHalfWidth(0, 0, 1.96), 1) {
		t.Error("zero trials should be unconstrained")
	}
	hw := ProportionHalfWidth(500, 1000, 1.96)
	want := 1.96 * math.Sqrt(0.25/1000)
	if math.Abs(hw-want) > 1e-12 {
		t.Errorf("hw = %g, want %g", hw, want)
	}
	// Degenerate streaks must keep a finite-sample floor, not claim
	// zero width.
	if ProportionHalfWidth(0, 1000, 1.96) <= 0 {
		t.Error("degenerate proportion claimed zero width")
	}
	if ProportionHalfWidth(100, 100, 1.96) <= 0 {
		t.Error("all-success proportion claimed zero width")
	}
}
