package mcengine

import (
	"fmt"
	"math"
)

// MeanVar is a streaming mean/variance accumulator (Welford) with an
// exact pairwise merge (Chan, Golub & LeVeque), so lane partials can
// be folded at the barrier without keeping samples. Merging in a fixed
// lane order makes the floating-point result deterministic.
type MeanVar struct {
	// N is the observation count.
	N int64
	// Mean is the running mean.
	Mean float64
	// M2 is the running sum of squared deviations from the mean.
	M2 float64
}

// Observe folds one sample into the accumulator.
func (a *MeanVar) Observe(x float64) {
	a.N++
	d := x - a.Mean
	a.Mean += d / float64(a.N)
	a.M2 += d * (x - a.Mean)
}

// Merge folds another accumulator into the receiver.
func (a *MeanVar) Merge(b MeanVar) {
	if b.N == 0 {
		return
	}
	if a.N == 0 {
		*a = b
		return
	}
	n := a.N + b.N
	d := b.Mean - a.Mean
	a.M2 += b.M2 + d*d*float64(a.N)*float64(b.N)/float64(n)
	a.Mean += d * float64(b.N) / float64(n)
	a.N = n
}

// Var returns the sample variance (n−1 denominator), 0 for N < 2.
func (a MeanVar) Var() float64 {
	if a.N < 2 {
		return 0
	}
	return a.M2 / float64(a.N-1)
}

// Std returns the sample standard deviation.
func (a MeanVar) Std() float64 { return math.Sqrt(a.Var()) }

// StdErr returns the standard error of the mean, 0 for N == 0.
func (a MeanVar) StdErr() float64 {
	if a.N == 0 {
		return 0
	}
	return a.Std() / math.Sqrt(float64(a.N))
}

// Histogram is a fixed-geometry quantile sketch: integer bin counts
// over [Lo, Hi) plus exact min/max. Integer counts make the merge
// order-independent and exact, so quantile queries are bit-identical
// at any worker count. Resolution is bounded by the bin width; pick
// the range from the problem's scale (e.g. ±6σ of the target).
type Histogram struct {
	// Lo, Hi bound the binned range; samples outside land in the
	// Under/Over overflow counters.
	Lo, Hi float64
	// Counts are the per-bin tallies.
	Counts []int64
	// Under and Over count samples below Lo and at/above Hi.
	Under, Over int64
	// N is the total observation count.
	N int64
	// Min and Max track the exact extremes.
	Min, Max float64
}

// NewHistogram builds a sketch with the given range and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if !(hi > lo) || bins <= 0 {
		return nil, fmt.Errorf("mcengine: bad histogram geometry [%g,%g)/%d", lo, hi, bins)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins),
		Min: math.Inf(1), Max: math.Inf(-1)}, nil
}

// Observe folds one sample into the sketch.
func (h *Histogram) Observe(x float64) {
	h.N++
	if x < h.Min {
		h.Min = x
	}
	if x > h.Max {
		h.Max = x
	}
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.Counts) { // x just below Hi with rounding up
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// MergeHist folds another sketch of identical geometry into the
// receiver.
func (h *Histogram) MergeHist(o *Histogram) error {
	if o == nil {
		return nil
	}
	if o.Lo != h.Lo || o.Hi != h.Hi || len(o.Counts) != len(h.Counts) {
		return fmt.Errorf("mcengine: merging histograms of different geometry")
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Under += o.Under
	h.Over += o.Over
	h.N += o.N
	if o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	return nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the covering bin; overflow mass resolves to the exact
// min/max. NaN for an empty sketch.
func (h *Histogram) Quantile(q float64) float64 {
	if h.N == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := q * float64(h.N)
	cum := float64(h.Under)
	if rank <= cum {
		return h.Min
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		next := cum + float64(c)
		if rank <= next && c > 0 {
			frac := (rank - cum) / float64(c)
			return h.Lo + w*(float64(i)+frac)
		}
		cum = next
	}
	return h.Max
}

// ZForConfidence returns the two-sided standard-normal quantile for a
// confidence level (0.95 → ≈1.96) by bisection on the Gaussian CDF.
func ZForConfidence(conf float64) float64 {
	if conf <= 0 {
		return 0
	}
	if conf >= 1 {
		return math.Inf(1)
	}
	p := 0.5 + conf/2 // upper-tail quantile of the two-sided interval
	lo, hi := 0.0, 12.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if 0.5*math.Erfc(-mid/math.Sqrt2) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ProportionHalfWidth is the normal-approximation confidence half-width
// of a binomial proportion: z·√(p̂(1−p̂)/n). It returns +Inf when the
// trial count is zero (the proportion is unconstrained), and the
// finite-sample floor z·√(1/4n) when p̂ is degenerate (0 or 1) so a
// lucky streak cannot fake convergence.
func ProportionHalfWidth(successes, trials int64, z float64) float64 {
	if trials <= 0 {
		return math.Inf(1)
	}
	n := float64(trials)
	p := float64(successes) / n
	v := p * (1 - p)
	if v < 0.25/n { // degenerate or near-degenerate proportion
		v = 0.25 / n
	}
	return z * math.Sqrt(v/n)
}
