package mcengine

import (
	"sync"
	"sync/atomic"
	"time"

	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"mstx/internal/resilient"
	"testing"
)

// serialReference runs the same lane decomposition as Run with a plain
// loop — the reproducibility oracle for the engine's scheduling.
func serialReference[T, P any](n int, seed int64, opts Options, total T, kernel Kernel[P], merge Merge[T, P], stop Stop[T]) (T, int) {
	o := opts.withDefaults()
	lanes := Lanes(n, o.BatchSize)
	round := o.CheckEvery
	if round <= 0 || stop == nil {
		round = lanes
	}
	done := 0
	for lo := 0; lo < lanes; lo += round {
		hi := lo + round
		if hi > lanes {
			hi = lanes
		}
		for l := lo; l < hi; l++ {
			cnt := o.BatchSize
			if l == lanes-1 {
				cnt = n - l*o.BatchSize
			}
			rng := rand.New(rand.NewSource(SubstreamSeed(seed, l)))
			p, err := kernel(l, cnt, rng)
			if err != nil {
				panic(err)
			}
			total = merge(total, l, p)
			done += cnt
		}
		if hi < lanes && stop != nil && stop(total, done) {
			return total, done
		}
	}
	return total, done
}

// sumKernel accumulates a MeanVar over N(3, 2) draws — a kernel whose
// merged result is floating-point and therefore order-sensitive, so it
// detects any deviation from lane-order merging.
func sumKernel(_, count int, rng *rand.Rand) (MeanVar, error) {
	var mv MeanVar
	for i := 0; i < count; i++ {
		mv.Observe(3 + 2*rng.NormFloat64())
	}
	return mv, nil
}

func mergeMV(total MeanVar, _ int, part MeanVar) MeanVar {
	total.Merge(part)
	return total
}

func TestRunBitIdenticalAcrossWorkerCounts(t *testing.T) {
	const n = 50000
	opts := Options{BatchSize: 1024}
	want, wantDone := serialReference(n, 7, opts, MeanVar{}, sumKernel, mergeMV, nil)
	for _, workers := range []int{1, 2, 4, 16} {
		o := opts
		o.Workers = workers
		got, done, err := Run(context.Background(), n, 7, o, MeanVar{}, sumKernel, mergeMV, nil)
		if err != nil {
			t.Fatal(err)
		}
		if done != wantDone {
			t.Fatalf("workers=%d: %d samples, want %d", workers, done, wantDone)
		}
		if got != want { // exact float equality is the contract
			t.Errorf("workers=%d: %+v != serial %+v", workers, got, want)
		}
	}
	if math.Abs(want.Mean-3) > 0.05 || math.Abs(want.Std()-2) > 0.05 {
		t.Errorf("statistics off: mean %g std %g", want.Mean, want.Std())
	}
}

func TestRunEarlyStopDeterministic(t *testing.T) {
	const n = 100000
	stop := func(mv MeanVar, samples int) bool {
		return mv.StdErr() < 0.02 // hit after a few rounds, before n
	}
	opts := Options{BatchSize: 2048, CheckEvery: 3}
	want, wantDone := serialReference(n, 11, opts, MeanVar{}, sumKernel, mergeMV, stop)
	if wantDone >= n {
		t.Fatalf("reference did not stop early (done=%d); test mis-tuned", wantDone)
	}
	for _, workers := range []int{1, 4, 16} {
		o := opts
		o.Workers = workers
		got, done, err := Run(context.Background(), n, 11, o, MeanVar{}, sumKernel, mergeMV, stop)
		if err != nil {
			t.Fatal(err)
		}
		if done != wantDone || got != want {
			t.Errorf("workers=%d: (done=%d, %+v) != serial (done=%d, %+v)",
				workers, done, got, wantDone, want)
		}
	}
}

func TestRunPartialLastLane(t *testing.T) {
	// n not a multiple of BatchSize: the last lane must carry the
	// remainder and the totals must still match the serial reference.
	const n = 10*512 + 137
	counts := map[int]int{}
	kernel := func(lane, count int, rng *rand.Rand) (int, error) { return count, nil }
	merge := func(total, lane, part int) int {
		counts[lane] = part
		return total + part
	}
	total, done, err := Run(context.Background(), n, 3, Options{BatchSize: 512, Workers: 1}, 0, kernel, merge, nil)
	if err != nil {
		t.Fatal(err)
	}
	if total != n || done != n {
		t.Fatalf("total=%d done=%d want %d", total, done, n)
	}
	if counts[10] != 137 {
		t.Errorf("last lane count = %d, want 137", counts[10])
	}
}

func TestRunKernelErrorSurfaces(t *testing.T) {
	sentinel := errors.New("boom")
	kernel := func(lane, count int, rng *rand.Rand) (int, error) {
		if lane == 5 {
			return 0, sentinel
		}
		return count, nil
	}
	merge := func(total, lane, part int) int { return total + part }
	_, _, err := Run(context.Background(), 100000, 1, Options{BatchSize: 1024, Workers: 4}, 0, kernel, merge, nil)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestRunValidation(t *testing.T) {
	merge := func(total, lane, part int) int { return total }
	if _, _, err := Run(context.Background(), 0, 1, Options{}, 0, func(_, _ int, _ *rand.Rand) (int, error) { return 0, nil }, merge, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, _, err := Run[int, int](context.Background(), 10, 1, Options{}, 0, nil, merge, nil); err == nil {
		t.Error("nil kernel accepted")
	}
}

func TestSubstreamSeedsDecorrelated(t *testing.T) {
	seen := map[int64]int{}
	for lane := 0; lane < 1000; lane++ {
		s := SubstreamSeed(42, lane)
		if prev, dup := seen[s]; dup {
			t.Fatalf("lanes %d and %d share a substream seed", prev, lane)
		}
		seen[s] = lane
	}
	if SubstreamSeed(42, 0) == 42 {
		t.Error("lane 0 must not reuse the raw run seed")
	}
	if SubstreamSeed(42, 0) == SubstreamSeed(43, 0) {
		t.Error("different run seeds collide on lane 0")
	}
}

// TestRunMergeRace drives the engine at high worker counts so `go test
// -race` exercises the parts/merge hand-off; correctness is re-checked
// against the serial reference.
func TestRunMergeRace(t *testing.T) {
	const n = 200000
	opts := Options{BatchSize: 512, Workers: 16, CheckEvery: 8}
	stop := func(mv MeanVar, samples int) bool { return false }
	want, _ := serialReference(n, 5, opts, MeanVar{}, sumKernel, mergeMV, stop)
	for rep := 0; rep < 3; rep++ {
		got, _, err := Run(context.Background(), n, 5, opts, MeanVar{}, sumKernel, mergeMV, stop)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("rep %d: %+v != %+v", rep, got, want)
		}
	}
}

func ExampleRun() {
	// Estimate E[X²] of a standard normal with 4 workers; the result
	// is bit-identical at any worker count.
	kernel := func(_, count int, rng *rand.Rand) (MeanVar, error) {
		var mv MeanVar
		for i := 0; i < count; i++ {
			x := rng.NormFloat64()
			mv.Observe(x * x)
		}
		return mv, nil
	}
	mv, _, _ := Run(context.Background(), 400000, 1, Options{Workers: 4}, MeanVar{},
		kernel, func(t MeanVar, _ int, p MeanVar) MeanVar { t.Merge(p); return t }, nil)
	fmt.Printf("E[X^2] ~ %.2f\n", mv.Mean)
	// Output: E[X^2] ~ 1.00
}

// TestRunCancelMidRoundPartialConsistency cancels the context from
// inside a lane kernel and asserts the three-way contract of an
// interrupted run: the typed ErrCanceled taxonomy, a sample count that
// is a whole number of lanes, and a partial total that is bit-identical
// to the serial lane-order merge over exactly those lanes.
func TestRunCancelMidRoundPartialConsistency(t *testing.T) {
	const batch = 1024
	const n = 16 * batch
	stop := func(MeanVar, int) bool { return false }
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var fired int32
		kernel := func(lane, count int, rng *rand.Rand) (MeanVar, error) {
			if lane == 5 && atomic.CompareAndSwapInt32(&fired, 0, 1) {
				cancel()
			}
			return sumKernel(lane, count, rng)
		}
		got, done, err := Run(ctx, n, 7,
			Options{BatchSize: batch, CheckEvery: 4, Workers: workers},
			MeanVar{}, kernel, mergeMV, stop)
		cancel()
		if !errors.Is(err, resilient.ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, err)
		}
		if errors.Is(err, resilient.ErrDeadline) {
			t.Errorf("workers=%d: cancel classified as deadline", workers)
		}
		if done%batch != 0 || done >= n {
			t.Fatalf("workers=%d: done = %d, want a partial whole number of lanes", workers, done)
		}
		if workers == 1 {
			// Serial claims are in lane order: lanes 0..5 complete (the
			// canceling lane included), the rest of the round is skipped.
			if done != 6*batch {
				t.Errorf("workers=1: done = %d lanes, want 6", done/batch)
			}
		}
		want, wantDone := serialReference(done, 7, Options{BatchSize: batch}, MeanVar{}, sumKernel, mergeMV, nil)
		if done != wantDone || got != want {
			t.Errorf("workers=%d: partial (done=%d, %+v) != serial prefix (done=%d, %+v)",
				workers, done, got, wantDone, want)
		}
	}

	// An already-expired deadline stops the run before any lane.
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, done, err := Run(expired, n, 7, Options{BatchSize: batch}, MeanVar{}, sumKernel, mergeMV, nil)
	if !errors.Is(err, resilient.ErrDeadline) {
		t.Fatalf("expired deadline: err = %v, want ErrDeadline", err)
	}
	if done != 0 {
		t.Errorf("expired deadline processed %d samples", done)
	}
}

// TestRunQuarantineAccounting pins the panic-isolation contract: with
// OnQuarantine set a panicking lane is excluded from the merge and
// reported, done + quarantined samples == n, and the run succeeds;
// without it the recovered panic surfaces as an ordinary error.
func TestRunQuarantineAccounting(t *testing.T) {
	const batch = 512
	const n = 10 * batch
	kernel := func(lane, count int, rng *rand.Rand) (int, error) {
		if lane == 3 {
			panic("lane 3 corrupted")
		}
		return count, nil
	}
	merge := func(total, lane, part int) int { return total + part }

	var mu sync.Mutex
	var qLanes []int
	qSamples := 0
	opts := Options{BatchSize: batch, Workers: 4, OnQuarantine: func(lane, samples int, err error) {
		mu.Lock()
		defer mu.Unlock()
		qLanes = append(qLanes, lane)
		qSamples += samples
		var pe *resilient.PanicError
		if !errors.As(err, &pe) {
			t.Errorf("OnQuarantine err = %v, want *resilient.PanicError", err)
		}
	}}
	total, done, err := Run(context.Background(), n, 1, opts, 0, kernel, merge, nil)
	if err != nil {
		t.Fatalf("quarantined run failed: %v", err)
	}
	if len(qLanes) != 1 || qLanes[0] != 3 {
		t.Fatalf("quarantined lanes = %v, want [3]", qLanes)
	}
	if total != n-batch || done != n-batch {
		t.Errorf("total=%d done=%d, want %d (lane 3 excluded)", total, done, n-batch)
	}
	if done+qSamples != n {
		t.Errorf("done %d + quarantined %d != n %d", done, qSamples, n)
	}

	// Nil OnQuarantine: the panic degrades to a run error, never a crash.
	_, _, err = Run(context.Background(), n, 1, Options{BatchSize: batch}, 0, kernel, merge, nil)
	var pe *resilient.PanicError
	if !errors.As(err, &pe) || pe.Value != "lane 3 corrupted" {
		t.Fatalf("err = %v, want wrapped PanicError", err)
	}
}

// TestRunCheckpointResumeBitIdentical kills a checkpointed run mid-way
// with an injected lane failure, resumes it, and asserts the final
// result is bit-identical to an uninterrupted run — without re-running
// the lanes already covered by the snapshot.
func TestRunCheckpointResumeBitIdentical(t *testing.T) {
	const batch = 1024
	const n = 20 * batch
	opts := Options{BatchSize: batch, CheckEvery: 2, Workers: 4}
	stop := func(MeanVar, int) bool { return false }
	want, wantDone, err := Run(context.Background(), n, 13, opts, MeanVar{}, sumKernel, mergeMV, stop)
	if err != nil {
		t.Fatal(err)
	}

	o := opts
	o.Checkpoint = &resilient.Checkpointer{Dir: t.TempDir(), Every: 1, Resume: true}
	boom := errors.New("injected crash")
	fp := resilient.NewFailpoints()
	fp.Set("mcengine.lane", resilient.Action{Err: boom, After: 9})
	resilient.Install(fp)
	_, _, err = Run(context.Background(), n, 13, o, MeanVar{}, sumKernel, mergeMV, stop)
	resilient.Install(nil)
	if !errors.Is(err, boom) {
		t.Fatalf("injected crash not surfaced: %v", err)
	}

	var lanesRun int64
	counting := func(lane, count int, rng *rand.Rand) (MeanVar, error) {
		atomic.AddInt64(&lanesRun, 1)
		return sumKernel(lane, count, rng)
	}
	got, done, err := Run(context.Background(), n, 13, o, MeanVar{}, counting, mergeMV, stop)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if got != want || done != wantDone {
		t.Errorf("resumed (done=%d, %+v) != uninterrupted (done=%d, %+v)", done, got, wantDone, want)
	}
	if int(lanesRun) >= Lanes(n, batch) {
		t.Errorf("resume re-ran all %d lanes", lanesRun)
	}

	// A second resume finds the completion snapshot and short-circuits.
	atomic.StoreInt64(&lanesRun, 0)
	got, done, err = Run(context.Background(), n, 13, o, MeanVar{}, counting, mergeMV, stop)
	if err != nil || got != want || done != wantDone {
		t.Errorf("completed-snapshot resume = (%+v, %d, %v)", got, done, err)
	}
	if lanesRun != 0 {
		t.Errorf("completed-snapshot resume ran %d lanes", lanesRun)
	}

	// Resuming under different run parameters must fail loudly.
	if _, _, err := Run(context.Background(), n, 14, o, MeanVar{}, sumKernel, mergeMV, stop); err == nil {
		t.Error("checkpoint from a different seed accepted")
	}
}
