package mcengine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// serialReference runs the same lane decomposition as Run with a plain
// loop — the reproducibility oracle for the engine's scheduling.
func serialReference[T, P any](n int, seed int64, opts Options, total T, kernel Kernel[P], merge Merge[T, P], stop Stop[T]) (T, int) {
	o := opts.withDefaults()
	lanes := Lanes(n, o.BatchSize)
	round := o.CheckEvery
	if round <= 0 || stop == nil {
		round = lanes
	}
	done := 0
	for lo := 0; lo < lanes; lo += round {
		hi := lo + round
		if hi > lanes {
			hi = lanes
		}
		for l := lo; l < hi; l++ {
			cnt := o.BatchSize
			if l == lanes-1 {
				cnt = n - l*o.BatchSize
			}
			rng := rand.New(rand.NewSource(SubstreamSeed(seed, l)))
			p, err := kernel(l, cnt, rng)
			if err != nil {
				panic(err)
			}
			total = merge(total, l, p)
			done += cnt
		}
		if hi < lanes && stop != nil && stop(total, done) {
			return total, done
		}
	}
	return total, done
}

// sumKernel accumulates a MeanVar over N(3, 2) draws — a kernel whose
// merged result is floating-point and therefore order-sensitive, so it
// detects any deviation from lane-order merging.
func sumKernel(_, count int, rng *rand.Rand) (MeanVar, error) {
	var mv MeanVar
	for i := 0; i < count; i++ {
		mv.Observe(3 + 2*rng.NormFloat64())
	}
	return mv, nil
}

func mergeMV(total MeanVar, _ int, part MeanVar) MeanVar {
	total.Merge(part)
	return total
}

func TestRunBitIdenticalAcrossWorkerCounts(t *testing.T) {
	const n = 50000
	opts := Options{BatchSize: 1024}
	want, wantDone := serialReference(n, 7, opts, MeanVar{}, sumKernel, mergeMV, nil)
	for _, workers := range []int{1, 2, 4, 16} {
		o := opts
		o.Workers = workers
		got, done, err := Run(n, 7, o, MeanVar{}, sumKernel, mergeMV, nil)
		if err != nil {
			t.Fatal(err)
		}
		if done != wantDone {
			t.Fatalf("workers=%d: %d samples, want %d", workers, done, wantDone)
		}
		if got != want { // exact float equality is the contract
			t.Errorf("workers=%d: %+v != serial %+v", workers, got, want)
		}
	}
	if math.Abs(want.Mean-3) > 0.05 || math.Abs(want.Std()-2) > 0.05 {
		t.Errorf("statistics off: mean %g std %g", want.Mean, want.Std())
	}
}

func TestRunEarlyStopDeterministic(t *testing.T) {
	const n = 100000
	stop := func(mv MeanVar, samples int) bool {
		return mv.StdErr() < 0.02 // hit after a few rounds, before n
	}
	opts := Options{BatchSize: 2048, CheckEvery: 3}
	want, wantDone := serialReference(n, 11, opts, MeanVar{}, sumKernel, mergeMV, stop)
	if wantDone >= n {
		t.Fatalf("reference did not stop early (done=%d); test mis-tuned", wantDone)
	}
	for _, workers := range []int{1, 4, 16} {
		o := opts
		o.Workers = workers
		got, done, err := Run(n, 11, o, MeanVar{}, sumKernel, mergeMV, stop)
		if err != nil {
			t.Fatal(err)
		}
		if done != wantDone || got != want {
			t.Errorf("workers=%d: (done=%d, %+v) != serial (done=%d, %+v)",
				workers, done, got, wantDone, want)
		}
	}
}

func TestRunPartialLastLane(t *testing.T) {
	// n not a multiple of BatchSize: the last lane must carry the
	// remainder and the totals must still match the serial reference.
	const n = 10*512 + 137
	counts := map[int]int{}
	kernel := func(lane, count int, rng *rand.Rand) (int, error) { return count, nil }
	merge := func(total, lane, part int) int {
		counts[lane] = part
		return total + part
	}
	total, done, err := Run(n, 3, Options{BatchSize: 512, Workers: 1}, 0, kernel, merge, nil)
	if err != nil {
		t.Fatal(err)
	}
	if total != n || done != n {
		t.Fatalf("total=%d done=%d want %d", total, done, n)
	}
	if counts[10] != 137 {
		t.Errorf("last lane count = %d, want 137", counts[10])
	}
}

func TestRunKernelErrorSurfaces(t *testing.T) {
	sentinel := errors.New("boom")
	kernel := func(lane, count int, rng *rand.Rand) (int, error) {
		if lane == 5 {
			return 0, sentinel
		}
		return count, nil
	}
	merge := func(total, lane, part int) int { return total + part }
	_, _, err := Run(100000, 1, Options{BatchSize: 1024, Workers: 4}, 0, kernel, merge, nil)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestRunValidation(t *testing.T) {
	merge := func(total, lane, part int) int { return total }
	if _, _, err := Run(0, 1, Options{}, 0, func(_, _ int, _ *rand.Rand) (int, error) { return 0, nil }, merge, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, _, err := Run[int, int](10, 1, Options{}, 0, nil, merge, nil); err == nil {
		t.Error("nil kernel accepted")
	}
}

func TestSubstreamSeedsDecorrelated(t *testing.T) {
	seen := map[int64]int{}
	for lane := 0; lane < 1000; lane++ {
		s := SubstreamSeed(42, lane)
		if prev, dup := seen[s]; dup {
			t.Fatalf("lanes %d and %d share a substream seed", prev, lane)
		}
		seen[s] = lane
	}
	if SubstreamSeed(42, 0) == 42 {
		t.Error("lane 0 must not reuse the raw run seed")
	}
	if SubstreamSeed(42, 0) == SubstreamSeed(43, 0) {
		t.Error("different run seeds collide on lane 0")
	}
}

// TestRunMergeRace drives the engine at high worker counts so `go test
// -race` exercises the parts/merge hand-off; correctness is re-checked
// against the serial reference.
func TestRunMergeRace(t *testing.T) {
	const n = 200000
	opts := Options{BatchSize: 512, Workers: 16, CheckEvery: 8}
	stop := func(mv MeanVar, samples int) bool { return false }
	want, _ := serialReference(n, 5, opts, MeanVar{}, sumKernel, mergeMV, stop)
	for rep := 0; rep < 3; rep++ {
		got, _, err := Run(n, 5, opts, MeanVar{}, sumKernel, mergeMV, stop)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("rep %d: %+v != %+v", rep, got, want)
		}
	}
}

func ExampleRun() {
	// Estimate E[X²] of a standard normal with 4 workers; the result
	// is bit-identical at any worker count.
	kernel := func(_, count int, rng *rand.Rand) (MeanVar, error) {
		var mv MeanVar
		for i := 0; i < count; i++ {
			x := rng.NormFloat64()
			mv.Observe(x * x)
		}
		return mv, nil
	}
	mv, _, _ := Run(400000, 1, Options{Workers: 4}, MeanVar{},
		kernel, func(t MeanVar, _ int, p MeanVar) MeanVar { t.Merge(p); return t }, nil)
	fmt.Printf("E[X^2] ~ %.2f\n", mv.Mean)
	// Output: E[X^2] ~ 1.00
}
