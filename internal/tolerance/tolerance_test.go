package tolerance

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestValueConstructors(t *testing.T) {
	v := Abs(10, -0.5)
	if v.Nominal != 10 || v.Sigma != 0.5 {
		t.Fatalf("Abs: %+v", v)
	}
	r := Rel(20, 0.05)
	if r.Sigma != 1 {
		t.Fatalf("Rel sigma = %g", r.Sigma)
	}
	if got := r.RelSigma(); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("RelSigma = %g", got)
	}
	if got := Abs(0, 1).RelSigma(); got != 0 {
		t.Errorf("RelSigma at zero nominal = %g", got)
	}
	if !strings.Contains(v.String(), "±") {
		t.Errorf("String = %q", v.String())
	}
}

func TestValueSampleStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	v := Abs(5, 0.2)
	n := 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := v.Sample(rng)
		sum += x
		sum2 += x * x
	}
	mean := sum / float64(n)
	std := math.Sqrt(sum2/float64(n) - mean*mean)
	if math.Abs(mean-5) > 0.01 {
		t.Errorf("sample mean = %g", mean)
	}
	if math.Abs(std-0.2) > 0.01 {
		t.Errorf("sample std = %g", std)
	}
}

func TestNormalPDFCDF(t *testing.T) {
	n := Normal{Mean: 0, Sigma: 1}
	if math.Abs(n.CDF(0)-0.5) > 1e-12 {
		t.Errorf("CDF(0) = %g", n.CDF(0))
	}
	if math.Abs(n.CDF(1.959964)-0.975) > 1e-4 {
		t.Errorf("CDF(1.96) = %g", n.CDF(1.959964))
	}
	if math.Abs(n.PDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Errorf("PDF(0) = %g", n.PDF(0))
	}
	// Degenerate sigma.
	d := Normal{Mean: 3, Sigma: 0}
	if d.CDF(2.9) != 0 || d.CDF(3.1) != 1 {
		t.Error("degenerate CDF wrong")
	}
	if d.PDF(3) != 0 {
		t.Error("degenerate PDF should be 0 by convention")
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	n := Normal{Mean: 2, Sigma: 0.5}
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		x := n.Quantile(p)
		if math.Abs(n.CDF(x)-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%g)) = %g", p, n.CDF(x))
		}
	}
	if !math.IsInf(n.Quantile(0), -1) || !math.IsInf(n.Quantile(1), 1) {
		t.Error("extreme quantiles should be infinite")
	}
}

func TestRSS(t *testing.T) {
	if got := RSS(3, 4); math.Abs(got-5) > 1e-12 {
		t.Errorf("RSS(3,4) = %g", got)
	}
	if got := RSS(); got != 0 {
		t.Errorf("RSS() = %g", got)
	}
}

func TestSpecLimitAcceptable(t *testing.T) {
	lo := LowerLimit(10)
	if !lo.Acceptable(10) || !lo.Acceptable(11) || lo.Acceptable(9.99) {
		t.Error("LowerLimit wrong")
	}
	hi := UpperLimit(3)
	if !hi.Acceptable(3) || !hi.Acceptable(-5) || hi.Acceptable(3.01) {
		t.Error("UpperLimit wrong")
	}
	band := BandLimit(1, 2)
	if !band.Acceptable(1.5) || band.Acceptable(0.9) || band.Acceptable(2.1) {
		t.Error("BandLimit wrong")
	}
}

func TestSpecLimitShifted(t *testing.T) {
	lo := LowerLimit(10).Shifted(1) // loosened: accepts more
	if !lo.Acceptable(9.5) {
		t.Error("loosened lower bound should accept 9.5")
	}
	lo = LowerLimit(10).Shifted(-1) // tightened
	if lo.Acceptable(10.5) {
		t.Error("tightened lower bound should reject 10.5")
	}
	hi := UpperLimit(3).Shifted(1)
	if !hi.Acceptable(3.5) {
		t.Error("loosened upper bound should accept 3.5")
	}
	band := BandLimit(1, 2).Shifted(0.5)
	if !band.Acceptable(0.6) || !band.Acceptable(2.4) {
		t.Error("loosened band wrong")
	}
}

func TestBoundKindString(t *testing.T) {
	if LowerBound.String() != "lower-bound" || UpperBound.String() != "upper-bound" ||
		TwoSided.String() != "two-sided" || BoundKind(9).String() != "BoundKind(9)" {
		t.Error("BoundKind.String wrong")
	}
}

func TestMonteCarloValidation(t *testing.T) {
	if _, err := MonteCarloLosses(context.Background(), Normal{}, Normal{}, LowerLimit(0), LowerLimit(0), 0, 1, MCOptions{}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := SerialMonteCarloLosses(Normal{}, Normal{}, LowerLimit(0), LowerLimit(0), 0, 1, MCOptions{}); err == nil {
		t.Error("serial n=0 accepted")
	}
}

func TestLossesZeroErrorMeansZeroLoss(t *testing.T) {
	p := Normal{Mean: 10, Sigma: 1}
	spec := LowerLimit(8)
	est := AnalyticLosses(p, Normal{Sigma: 0}, spec, spec)
	if est.FCL > 1e-9 || est.YL > 1e-9 {
		t.Errorf("perfect measurement should have zero losses: %+v", est)
	}
}

func TestLossesTradeOffDirections(t *testing.T) {
	// IIP3-like lower-bound spec with measurement error.
	p := Normal{Mean: 10, Sigma: 1}
	spec := LowerLimit(8.5)
	errSigma := 0.4
	at := AnalyticLosses(p, Normal{Sigma: errSigma}, spec, spec)
	tight := AnalyticLosses(p, Normal{Sigma: errSigma}, spec, spec.Shifted(-WorstCaseErr(errSigma)))
	loose := AnalyticLosses(p, Normal{Sigma: errSigma}, spec, spec.Shifted(+WorstCaseErr(errSigma)))
	if at.FCL <= 0 || at.YL <= 0 {
		t.Fatalf("nominal threshold should lose both ways: %+v", at)
	}
	if tight.FCL > 0.005 {
		t.Errorf("tightened FCL = %g, want ~0", tight.FCL)
	}
	if tight.YL <= at.YL {
		t.Errorf("tightening should raise YL: %g vs %g", tight.YL, at.YL)
	}
	if loose.YL > 0.005 {
		t.Errorf("loosened YL = %g, want ~0", loose.YL)
	}
	if loose.FCL <= at.FCL {
		t.Errorf("loosening should raise FCL: %g vs %g", loose.FCL, at.FCL)
	}
}

func TestMonteCarloMatchesAnalytic(t *testing.T) {
	p := Normal{Mean: 10, Sigma: 1}
	errD := Normal{Sigma: 0.3}
	spec := LowerLimit(8.5)
	mc, err := MonteCarloLosses(context.Background(), p, errD, spec, spec, 400000, 41, MCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	an := AnalyticLosses(p, errD, spec, spec)
	if math.Abs(mc.FCL-an.FCL) > 0.02 {
		t.Errorf("FCL: MC %g vs analytic %g", mc.FCL, an.FCL)
	}
	if math.Abs(mc.YL-an.YL) > 0.005 {
		t.Errorf("YL: MC %g vs analytic %g", mc.YL, an.YL)
	}
	if math.Abs(mc.GoodFraction-an.GoodFraction) > 0.005 {
		t.Errorf("good fraction: MC %g vs analytic %g", mc.GoodFraction, an.GoodFraction)
	}
}

func TestMonteCarloMatchesAnalyticProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Normal{Mean: 10 + rng.Float64()*5, Sigma: 0.5 + rng.Float64()}
		errD := Normal{Sigma: 0.1 + rng.Float64()*0.5}
		spec := LowerLimit(p.Mean - 1.5*p.Sigma)
		mc, err := MonteCarloLosses(context.Background(), p, errD, spec, spec, 60000, rng.Int63(), MCOptions{})
		if err != nil {
			return false
		}
		an := AnalyticLosses(p, errD, spec, spec)
		return math.Abs(mc.FCL-an.FCL) < 0.05 && math.Abs(mc.YL-an.YL) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoSidedLosses(t *testing.T) {
	// Cut-off-frequency-like two-sided spec.
	p := Normal{Mean: 100, Sigma: 3}
	spec := BandLimit(95, 105)
	errD := Normal{Sigma: 1}
	at := AnalyticLosses(p, errD, spec, spec)
	if at.FCL <= 0 || at.YL <= 0 {
		t.Fatalf("two-sided nominal threshold should lose both ways: %+v", at)
	}
	tight := AnalyticLosses(p, errD, spec, spec.Shifted(-3))
	if tight.FCL > 0.005 {
		t.Errorf("two-sided tightened FCL = %g", tight.FCL)
	}
}

func TestThresholdSweepShape(t *testing.T) {
	p := Normal{Mean: 10, Sigma: 1}
	rows := ThresholdSweep(p, 0.3, WorstCaseErr(0.3), LowerLimit(8.5))
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Label != "Tol" || rows[1].Label != "Tol-Err" || rows[2].Label != "Tol+Err" {
		t.Errorf("labels: %q %q %q", rows[0].Label, rows[1].Label, rows[2].Label)
	}
	// Table 2 shape: Tol-Err column has ~zero FCL, Tol+Err ~zero YL.
	if rows[1].Losses.FCL > 0.005 {
		t.Errorf("Tol-Err FCL = %g", rows[1].Losses.FCL)
	}
	if rows[2].Losses.YL > 0.005 {
		t.Errorf("Tol+Err YL = %g", rows[2].Losses.YL)
	}
	if rows[0].Losses.FCL <= 0 || rows[0].Losses.YL <= 0 {
		t.Errorf("Tol column should lose both ways: %+v", rows[0].Losses)
	}
}

func TestDistributionCurve(t *testing.T) {
	p := Normal{Mean: 5, Sigma: 1}
	xs, ys := DistributionCurve(p, 101, 4)
	if len(xs) != 101 || len(ys) != 101 {
		t.Fatal("wrong lengths")
	}
	if xs[0] != 1 || xs[100] != 9 {
		t.Errorf("range [%g, %g]", xs[0], xs[100])
	}
	// Peak at the mean.
	maxI := 0
	for i := range ys {
		if ys[i] > ys[maxI] {
			maxI = i
		}
	}
	if math.Abs(xs[maxI]-5) > 0.1 {
		t.Errorf("pdf peak at %g", xs[maxI])
	}
	// Degenerate point count.
	xs, _ = DistributionCurve(p, 1, 4)
	if len(xs) != 2 {
		t.Errorf("clamped points = %d", len(xs))
	}
}

func TestLossEstimateString(t *testing.T) {
	s := LossEstimate{FCL: 0.085, YL: 0.006}.String()
	if !strings.Contains(s, "8.50%") || !strings.Contains(s, "0.60%") {
		t.Errorf("String = %q", s)
	}
}
