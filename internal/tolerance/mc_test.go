package tolerance

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestParallelBitIdenticalToSerial is the engine's headline property:
// for random distributions and spec limits, the parallel engine output
// is byte-identical to the serial reference given the same seed, at 1,
// 4 and 16 workers.
func TestParallelBitIdenticalToSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Normal{Mean: 5 + rng.Float64()*10, Sigma: 0.3 + rng.Float64()*2}
		errD := Normal{Mean: rng.NormFloat64() * 0.05, Sigma: 0.05 + rng.Float64()*0.5}
		var spec SpecLimit
		switch rng.Intn(3) {
		case 0:
			spec = LowerLimit(p.Mean - (0.5+rng.Float64())*p.Sigma)
		case 1:
			spec = UpperLimit(p.Mean + (0.5+rng.Float64())*p.Sigma)
		default:
			spec = BandLimit(p.Mean-1.5*p.Sigma, p.Mean+1.5*p.Sigma)
		}
		testLimit := spec.Shifted(rng.NormFloat64() * errD.Sigma)
		n := 20000 + rng.Intn(30000) // exercises a partial last lane
		opts := MCOptions{BatchSize: 2048}
		want, err := SerialMonteCarloLosses(p, errD, spec, testLimit, n, seed, opts)
		if err != nil {
			return false
		}
		for _, workers := range []int{1, 4, 16} {
			o := opts
			o.Workers = workers
			got, err := MonteCarloLosses(context.Background(), p, errD, spec, testLimit, n, seed, o)
			if err != nil || got != want {
				t.Logf("workers=%d seed=%d: %+v != %+v (err=%v)", workers, seed, got, want, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestEarlyStopBitIdenticalToSerial pins the same property when
// confidence-interval early stopping is active: the stopping round —
// and therefore the sample count and every estimate bit — must not
// depend on the worker count.
func TestEarlyStopBitIdenticalToSerial(t *testing.T) {
	p := Normal{Mean: 10, Sigma: 1}
	errD := Normal{Sigma: 0.3}
	spec := LowerLimit(8.5)
	opts := MCOptions{BatchSize: 1024, CheckEvery: 2, TargetHalfWidth: 0.02}
	want, err := SerialMonteCarloLosses(p, errD, spec, spec, 400000, 9, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want.Samples >= 400000 {
		t.Fatalf("early stop never fired (samples=%d); test mis-tuned", want.Samples)
	}
	if !want.Converged {
		t.Fatalf("stopped run not marked converged: %+v", want)
	}
	for _, workers := range []int{1, 4, 16} {
		o := opts
		o.Workers = workers
		got, err := MonteCarloLosses(context.Background(), p, errD, spec, spec, 400000, 9, o)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("workers=%d: %+v != serial %+v", workers, got, want)
		}
	}
}

func TestEarlyStopRespectsTarget(t *testing.T) {
	p := Normal{Mean: 10, Sigma: 1}
	errD := Normal{Sigma: 0.3}
	spec := LowerLimit(8.5)
	est, err := MonteCarloLosses(context.Background(), p, errD, spec, spec, 800000, 3,
		MCOptions{BatchSize: 4096, CheckEvery: 2, TargetHalfWidth: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if est.FCLHalfWidth > 0.03 || est.YLHalfWidth > 0.03 {
		t.Errorf("half-widths above target: %+v", est)
	}
	if est.Samples >= 800000 {
		t.Errorf("no early stop at a loose target (samples=%d)", est.Samples)
	}
	// Against the analytic oracle: the CI must actually cover.
	an := AnalyticLosses(p, errD, spec, spec)
	if math.Abs(est.FCL-an.FCL) > 3*est.FCLHalfWidth {
		t.Errorf("FCL %g outside 3 half-widths of analytic %g", est.FCL, an.FCL)
	}
	if math.Abs(est.YL-an.YL) > 3*est.YLHalfWidth {
		t.Errorf("YL %g outside 3 half-widths of analytic %g", est.YL, an.YL)
	}
}

func TestMonteCarloSampleAccounting(t *testing.T) {
	p := Normal{Mean: 10, Sigma: 1}
	spec := LowerLimit(8.5)
	// No early stop: every requested sample must be spent, n not a
	// lane multiple.
	est, err := MonteCarloLosses(context.Background(), p, Normal{Sigma: 0.3}, spec, spec, 10007, 5, MCOptions{BatchSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples != 10007 {
		t.Errorf("samples = %d, want 10007", est.Samples)
	}
	if est.Converged {
		t.Error("untargeted run must not claim convergence")
	}
}

// TestHalfWidthUnconstrainedPopulations: when a population is empty
// the proportion is unconstrained and must report an infinite width,
// never a confident zero.
func TestHalfWidthUnconstrainedPopulations(t *testing.T) {
	// Spec far below the distribution: no bad parts in any plausible
	// draw, so FCL is unconstrained.
	p := Normal{Mean: 10, Sigma: 0.1}
	est, err := MonteCarloLosses(context.Background(), p, Normal{Sigma: 0.01}, LowerLimit(0), LowerLimit(0), 5000, 1, MCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(est.FCLHalfWidth, 1) {
		t.Errorf("FCL half-width = %g with no bad population, want +Inf", est.FCLHalfWidth)
	}
	if est.YLHalfWidth <= 0 {
		t.Errorf("YL half-width = %g, want positive floor", est.YLHalfWidth)
	}
}
