// Package tolerance models toleranced analog parameters and the
// statistics the paper builds on them: process distributions of
// module parameters, measurement/computation error distributions, and
// the resulting fault-coverage loss (FCL) and yield loss (YL) as a
// function of the pass/fail threshold (Figures 2 and 5, Table 2).
package tolerance

import (
	"fmt"
	"math"
	"math/rand"
)

// Value is a toleranced parameter: a nominal value and an absolute 1σ
// process spread. A defect-free device's parameter is a draw from
// Normal(Nominal, Sigma).
type Value struct {
	// Nominal is the design-nominal parameter value.
	Nominal float64
	// Sigma is the absolute 1σ process spread.
	Sigma float64
}

// Abs constructs a Value from nominal and absolute 1σ spread.
func Abs(nominal, sigma float64) Value {
	return Value{Nominal: nominal, Sigma: math.Abs(sigma)}
}

// Rel constructs a Value from nominal and relative 1σ spread
// (e.g. Rel(10, 0.05) is 10 ± 5%).
func Rel(nominal, relSigma float64) Value {
	return Value{Nominal: nominal, Sigma: math.Abs(nominal * relSigma)}
}

// Sample draws one device instance of the parameter.
func (v Value) Sample(rng *rand.Rand) float64 {
	return v.Nominal + rng.NormFloat64()*v.Sigma
}

// RelSigma returns the relative 1σ spread (0 when Nominal is 0).
func (v Value) RelSigma() float64 {
	if v.Nominal == 0 {
		return 0
	}
	return math.Abs(v.Sigma / v.Nominal)
}

// String formats the value as "nominal ± sigma".
func (v Value) String() string {
	return fmt.Sprintf("%g ± %g", v.Nominal, v.Sigma)
}

// Normal is a Gaussian distribution.
type Normal struct {
	Mean  float64
	Sigma float64
}

// Sample draws from the distribution.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mean + rng.NormFloat64()*n.Sigma
}

// PDF evaluates the density at x.
func (n Normal) PDF(x float64) float64 {
	if n.Sigma <= 0 {
		return 0
	}
	z := (x - n.Mean) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF evaluates P(X ≤ x).
func (n Normal) CDF(x float64) float64 {
	if n.Sigma <= 0 {
		if x < n.Mean {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-n.Mean)/(n.Sigma*math.Sqrt2))
}

// Quantile returns the p-quantile (0<p<1) by bisection on the CDF —
// robust and dependency-free; accuracy ~1e-12 relative to Sigma.
func (n Normal) Quantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	lo, hi := n.Mean-12*n.Sigma, n.Mean+12*n.Sigma
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if n.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// RSS combines independent 1σ errors by root-sum-square.
func RSS(sigmas ...float64) float64 {
	var s float64
	for _, v := range sigmas {
		s += v * v
	}
	return math.Sqrt(s)
}
