package tolerance

import (
	"context"
	"fmt"
	"math/rand"

	"mstx/internal/mcengine"
	"mstx/internal/resilient"
)

// MCOptions configures the Monte-Carlo loss estimation engine.
type MCOptions struct {
	// Workers bounds the worker pool. Defaults to GOMAXPROCS.
	Workers int
	// BatchSize is the per-lane sample count — part of the
	// reproducibility contract (same seed, different BatchSize is a
	// different experiment). Defaults to mcengine.DefaultBatchSize.
	BatchSize int
	// CheckEvery is the early-stop round size in lanes; used only when
	// TargetHalfWidth > 0. Defaults to 4.
	CheckEvery int
	// TargetHalfWidth, when positive, stops the run at the first round
	// barrier where the confidence half-widths of BOTH the FCL and YL
	// proportions are at or below it. The stopping decision is taken
	// only at deterministic round barriers, so early-stopped results
	// remain bit-identical at any worker count.
	TargetHalfWidth float64
	// Confidence is the CI level for TargetHalfWidth and the reported
	// half-widths. Defaults to 0.95.
	Confidence float64
	// Checkpoint, when enabled, snapshots the merged tally at round
	// barriers so a killed run resumes bit-identically (see
	// resilient.Checkpointer).
	Checkpoint *resilient.Checkpointer
	// CheckpointName names this run's snapshot inside Checkpoint.Dir.
	// Defaults to the engine default ("mc"); set it when one command
	// runs several loss estimations against the same directory.
	CheckpointName string
}

func (o MCOptions) normalized() MCOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = mcengine.DefaultBatchSize
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = 4
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.95
	}
	return o
}

// lossTally is the engine accumulator for loss estimation: pure
// integer counts, so the merge is exact and order-independent. Fields
// are exported because the tally rides inside gob-encoded checkpoint
// snapshots (gob only serializes exported fields); the type itself
// stays package-private.
type lossTally struct {
	Good, Bad, Overkill, Escapes int64
}

func (t lossTally) add(o lossTally) lossTally {
	t.Good += o.Good
	t.Bad += o.Bad
	t.Overkill += o.Overkill
	t.Escapes += o.Escapes
	return t
}

// lossKernel samples count devices on one lane: the true parameter
// from pDist, the measured value adds an errDist draw, classification
// per spec and testLimit. The draw order (p first, then error) is the
// substream contract shared by the serial and parallel paths.
func lossKernel(pDist, errDist Normal, spec, testLimit SpecLimit) func(lane, count int, rng *rand.Rand) (lossTally, error) {
	return func(_, count int, rng *rand.Rand) (lossTally, error) {
		var t lossTally
		for i := 0; i < count; i++ {
			p := pDist.Mean + rng.NormFloat64()*pDist.Sigma
			m := p + errDist.Mean + rng.NormFloat64()*errDist.Sigma
			if spec.Acceptable(p) {
				t.Good++
				if !testLimit.Acceptable(m) {
					t.Overkill++
				}
			} else {
				t.Bad++
				if testLimit.Acceptable(m) {
					t.Escapes++
				}
			}
		}
		return t, nil
	}
}

// estimateFrom turns the merged tally into a LossEstimate with CI
// half-widths at the given z.
func estimateFrom(t lossTally, samples int, z, target float64) LossEstimate {
	est := LossEstimate{Samples: samples}
	if samples > 0 {
		est.GoodFraction = float64(t.Good) / float64(samples)
	}
	if t.Good > 0 {
		est.YL = float64(t.Overkill) / float64(t.Good)
	}
	if t.Bad > 0 {
		est.FCL = float64(t.Escapes) / float64(t.Bad)
	}
	est.FCLHalfWidth = mcengine.ProportionHalfWidth(t.Escapes, t.Bad, z)
	est.YLHalfWidth = mcengine.ProportionHalfWidth(t.Overkill, t.Good, z)
	est.Converged = target > 0 &&
		est.FCLHalfWidth <= target && est.YLHalfWidth <= target
	return est
}

// MonteCarloLosses estimates FCL and YL on the sharded Monte-Carlo
// engine: n samples are split into deterministic lane substreams
// (seed + lane index) and fanned across a bounded worker pool, so the
// result is bit-identical to SerialMonteCarloLosses for any worker
// count. With opts.TargetHalfWidth > 0 the run stops at the first
// round barrier where both loss CIs reach the target, and
// LossEstimate.Samples reports the draws actually spent.
//
// Cancellation and deadlines on ctx are honored at lane granularity
// (see mcengine.Run); an interrupted run returns the zero estimate and
// a typed error satisfying resilient.Interrupted.
func MonteCarloLosses(ctx context.Context, pDist, errDist Normal, spec, testLimit SpecLimit, n int, seed int64, opts MCOptions) (LossEstimate, error) {
	if n <= 0 {
		return LossEstimate{}, fmt.Errorf("tolerance: sample count %d must be positive", n)
	}
	o := opts.normalized()
	z := mcengine.ZForConfidence(o.Confidence)
	var stop mcengine.Stop[lossTally]
	if o.TargetHalfWidth > 0 {
		stop = func(t lossTally, samples int) bool {
			return mcengine.ProportionHalfWidth(t.Escapes, t.Bad, z) <= o.TargetHalfWidth &&
				mcengine.ProportionHalfWidth(t.Overkill, t.Good, z) <= o.TargetHalfWidth
		}
	}
	total, done, err := mcengine.Run(ctx, n, seed, mcengine.Options{
		Workers:        o.Workers,
		BatchSize:      o.BatchSize,
		CheckEvery:     o.CheckEvery,
		Checkpoint:     o.Checkpoint,
		CheckpointName: o.CheckpointName,
	}, lossTally{}, lossKernel(pDist, errDist, spec, testLimit),
		func(t lossTally, _ int, p lossTally) lossTally { return t.add(p) }, stop)
	if err != nil {
		return LossEstimate{}, err
	}
	return estimateFrom(total, done, z, o.TargetHalfWidth), nil
}

// SerialMonteCarloLosses is the single-goroutine reference
// implementation of the same substream contract: a plain loop over the
// lane decomposition, with the early-stop check at the same round
// barriers. MonteCarloLosses must be byte-identical to it for any
// worker count — the property the engine's tests pin.
func SerialMonteCarloLosses(pDist, errDist Normal, spec, testLimit SpecLimit, n int, seed int64, opts MCOptions) (LossEstimate, error) {
	if n <= 0 {
		return LossEstimate{}, fmt.Errorf("tolerance: sample count %d must be positive", n)
	}
	o := opts.normalized()
	z := mcengine.ZForConfidence(o.Confidence)
	kernel := lossKernel(pDist, errDist, spec, testLimit)
	lanes := mcengine.Lanes(n, o.BatchSize)
	round := lanes
	if o.TargetHalfWidth > 0 {
		round = o.CheckEvery
	}
	var total lossTally
	done := 0
	for lo := 0; lo < lanes; lo += round {
		hi := lo + round
		if hi > lanes {
			hi = lanes
		}
		for l := lo; l < hi; l++ {
			cnt := o.BatchSize
			if l == lanes-1 {
				cnt = n - l*o.BatchSize
			}
			rng := rand.New(rand.NewSource(mcengine.SubstreamSeed(seed, l)))
			part, err := kernel(l, cnt, rng)
			if err != nil {
				return LossEstimate{}, err
			}
			total = total.add(part)
			done += cnt
		}
		if hi < lanes && o.TargetHalfWidth > 0 &&
			mcengine.ProportionHalfWidth(total.Escapes, total.Bad, z) <= o.TargetHalfWidth &&
			mcengine.ProportionHalfWidth(total.Overkill, total.Good, z) <= o.TargetHalfWidth {
			break
		}
	}
	return estimateFrom(total, done, z, o.TargetHalfWidth), nil
}
