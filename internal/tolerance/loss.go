package tolerance

import (
	"fmt"
)

// BoundKind says which side(s) of the spec limit a parameter must stay
// on to be acceptable.
type BoundKind int

const (
	// LowerBound: the part is good iff p >= Lo (e.g. IIP3, P1dB —
	// bigger is better).
	LowerBound BoundKind = iota
	// UpperBound: the part is good iff p <= Hi (e.g. noise figure,
	// offset magnitude — smaller is better).
	UpperBound
	// TwoSided: the part is good iff Lo <= p <= Hi (e.g. cut-off
	// frequency, gain — must sit in a band).
	TwoSided
)

// String names the bound kind.
func (k BoundKind) String() string {
	switch k {
	case LowerBound:
		return "lower-bound"
	case UpperBound:
		return "upper-bound"
	case TwoSided:
		return "two-sided"
	default:
		return fmt.Sprintf("BoundKind(%d)", int(k))
	}
}

// SpecLimit is the acceptance region for a parameter's true value.
type SpecLimit struct {
	Kind   BoundKind
	Lo, Hi float64
}

// LowerLimit returns a lower-bound spec p >= lo.
func LowerLimit(lo float64) SpecLimit { return SpecLimit{Kind: LowerBound, Lo: lo} }

// UpperLimit returns an upper-bound spec p <= hi.
func UpperLimit(hi float64) SpecLimit { return SpecLimit{Kind: UpperBound, Hi: hi} }

// BandLimit returns a two-sided spec lo <= p <= hi.
func BandLimit(lo, hi float64) SpecLimit { return SpecLimit{Kind: TwoSided, Lo: lo, Hi: hi} }

// Acceptable reports whether true value p meets the spec.
func (s SpecLimit) Acceptable(p float64) bool {
	switch s.Kind {
	case LowerBound:
		return p >= s.Lo
	case UpperBound:
		return p <= s.Hi
	default:
		return p >= s.Lo && p <= s.Hi
	}
}

// Shifted returns the acceptance region with its limits moved by
// delta in the *loosening* direction when delta > 0 (more parts
// accepted) and the tightening direction when delta < 0 (fewer parts
// accepted). This is the paper's "Thr = Tol ± Err" knob: tightening by
// the worst-case computation error drives FCL to zero at the cost of
// yield; loosening drives YL to zero at the cost of coverage.
func (s SpecLimit) Shifted(delta float64) SpecLimit {
	out := s
	switch s.Kind {
	case LowerBound:
		out.Lo -= delta
	case UpperBound:
		out.Hi += delta
	default:
		out.Lo -= delta
		out.Hi += delta
	}
	return out
}

// LossEstimate is the outcome of a loss computation.
type LossEstimate struct {
	// FCL is the fault-coverage loss: the fraction of out-of-spec
	// parts the test accepts (escapes / faulty population).
	FCL float64
	// YL is the yield loss: the fraction of in-spec parts the test
	// rejects (overkill / good population).
	YL float64
	// GoodFraction is the fraction of the population that is in spec.
	GoodFraction float64
	// Samples is the Monte-Carlo sample count (0 for analytic results).
	Samples int
	// FCLHalfWidth and YLHalfWidth are the confidence half-widths of
	// the FCL and YL proportions for Monte-Carlo estimates (+Inf when
	// the backing population is empty, 0 for analytic results).
	FCLHalfWidth, YLHalfWidth float64
	// Converged reports that a confidence-targeted Monte-Carlo run
	// reached its half-width target (possibly before exhausting its
	// sample budget).
	Converged bool
}

// String formats the estimate as percentages.
func (l LossEstimate) String() string {
	return fmt.Sprintf("FCL=%.2f%% YL=%.2f%%", l.FCL*100, l.YL*100)
}

// AnalyticLosses computes the same quantities by numeric integration
// over the true-parameter density (Simpson's rule over ±10σ):
//
//	FCL = ∫_{p bad} f(p)·P(accept | p) dp / ∫_{p bad} f(p) dp
//	YL  = ∫_{p good} f(p)·P(reject | p) dp / ∫_{p good} f(p) dp
//
// where P(accept | p) follows from the Gaussian error CDF.
func AnalyticLosses(pDist, errDist Normal, spec, testLimit SpecLimit) LossEstimate {
	acceptProb := func(p float64) float64 {
		// m = p + e must fall in the test-accept region.
		if errDist.Sigma == 0 {
			// Error-free measurement: the decision is deterministic,
			// with the spec's closed (>=, <=) boundary semantics.
			if testLimit.Acceptable(p + errDist.Mean) {
				return 1
			}
			return 0
		}
		e := Normal{Mean: p, Sigma: errDist.Sigma}
		// Shift by the error's mean (usually zero).
		e.Mean += errDist.Mean
		switch testLimit.Kind {
		case LowerBound:
			return 1 - e.CDF(testLimit.Lo)
		case UpperBound:
			return e.CDF(testLimit.Hi)
		default:
			return e.CDF(testLimit.Hi) - e.CDF(testLimit.Lo)
		}
	}
	const steps = 4000
	lo := pDist.Mean - 10*pDist.Sigma
	hi := pDist.Mean + 10*pDist.Sigma
	h := (hi - lo) / steps
	var goodMass, badMass, overkillMass, escapeMass float64
	for i := 0; i <= steps; i++ {
		p := lo + float64(i)*h
		wgt := simpsonWeight(i, steps) * h / 3
		f := pDist.PDF(p) * wgt
		acc := acceptProb(p)
		if spec.Acceptable(p) {
			goodMass += f
			overkillMass += f * (1 - acc)
		} else {
			badMass += f
			escapeMass += f * acc
		}
	}
	est := LossEstimate{GoodFraction: goodMass}
	if goodMass > 0 {
		est.YL = overkillMass / goodMass
	}
	if badMass > 0 {
		est.FCL = escapeMass / badMass
	}
	return est
}

func simpsonWeight(i, n int) float64 {
	switch {
	case i == 0 || i == n:
		return 1
	case i%2 == 1:
		return 4
	default:
		return 2
	}
}

// ThresholdRow is one column set of the paper's Table 2: the losses at
// a particular threshold choice.
type ThresholdRow struct {
	// Label identifies the threshold ("Tol", "Tol-Err", "Tol+Err").
	Label string
	// Losses holds the estimate at this threshold.
	Losses LossEstimate
}

// ThresholdSweep reproduces the Table 2 structure for one parameter:
// losses with the test threshold at the spec limit, tightened by the
// worst-case error (FCL → 0), and loosened by it (YL → 0). err is the
// worst-case computation error (the paper's "Err"); errSigma is the
// 1σ of the actual error distribution (err is typically ~3σ).
func ThresholdSweep(pDist Normal, errSigma, err float64, spec SpecLimit) []ThresholdRow {
	errDist := Normal{Sigma: errSigma}
	return []ThresholdRow{
		{Label: "Tol", Losses: AnalyticLosses(pDist, errDist, spec, spec)},
		{Label: "Tol-Err", Losses: AnalyticLosses(pDist, errDist, spec, spec.Shifted(-err))},
		{Label: "Tol+Err", Losses: AnalyticLosses(pDist, errDist, spec, spec.Shifted(+err))},
	}
}

// DistributionCurve samples the parameter pdf for plotting Figure 2:
// it returns (x, pdf(x)) pairs over ±span·σ around the mean.
func DistributionCurve(pDist Normal, points int, span float64) (xs, ys []float64) {
	if points < 2 {
		points = 2
	}
	xs = make([]float64, points)
	ys = make([]float64, points)
	lo := pDist.Mean - span*pDist.Sigma
	hi := pDist.Mean + span*pDist.Sigma
	for i := range xs {
		x := lo + (hi-lo)*float64(i)/float64(points-1)
		xs[i] = x
		ys[i] = pDist.PDF(x)
	}
	return xs, ys
}

// ErrRoundingNote: the worst-case error used to shift thresholds is
// conventionally 3σ of the measurement error; WorstCaseErr packages
// that convention.
func WorstCaseErr(errSigma float64) float64 { return 3 * errSigma }
