package atpg

import (
	"fmt"

	"mstx/internal/digital"
	"mstx/internal/netlist"
)

// Summary classifies a fault list after deterministic test generation.
type Summary struct {
	// Testable holds faults with a generated pattern.
	Testable []Result
	// Untestable holds provably redundant faults.
	Untestable []Result
	// Aborted holds faults the search gave up on.
	Aborted []Result
}

// Counts returns the three class sizes.
func (s *Summary) Counts() (testable, untestable, aborted int) {
	return len(s.Testable), len(s.Untestable), len(s.Aborted)
}

// String summarizes the classification.
func (s *Summary) String() string {
	return fmt.Sprintf("%d testable, %d untestable (redundant), %d aborted",
		len(s.Testable), len(s.Untestable), len(s.Aborted))
}

// Classify runs PODEM on every fault in the list. maxBacktracks <= 0
// uses the generator default.
func Classify(c *netlist.Circuit, faults []netlist.Fault, maxBacktracks int) (*Summary, error) {
	g := NewGenerator(c)
	if maxBacktracks > 0 {
		g.MaxBacktracks = maxBacktracks
	}
	sum := &Summary{}
	for _, f := range faults {
		r, err := g.Generate(f)
		if err != nil {
			return nil, err
		}
		switch r.Status {
		case Testable:
			sum.Testable = append(sum.Testable, r)
		case Untestable:
			sum.Untestable = append(sum.Untestable, r)
		default:
			sum.Aborted = append(sum.Aborted, r)
		}
	}
	return sum, nil
}

// PatternToSamples converts a PODEM pattern for a gate-level FIR into
// the shortest input-sample burst realizing it: the pattern assigns
// the delay-line words x[n], x[n−1], …, and the burst feeds them
// oldest-first so that after Taps steps the delay line holds exactly
// the pattern. The fault's output effect appears on the final step.
func PatternToSamples(fir *digital.FIR, pattern []bool) ([]int64, error) {
	w := fir.InWidth
	if len(pattern) != fir.Taps()*w {
		return nil, fmt.Errorf("atpg: pattern length %d != %d inputs", len(pattern), fir.Taps()*w)
	}
	words := make([]int64, fir.Taps())
	for tap := 0; tap < fir.Taps(); tap++ {
		var v uint64
		for bit := 0; bit < w; bit++ {
			if pattern[tap*w+bit] {
				v |= 1 << uint(bit)
			}
		}
		// Sign extend.
		if w < 64 && v>>(uint(w)-1)&1 == 1 {
			v |= ^uint64(0) << uint(w)
		}
		words[tap] = int64(v)
	}
	// delay[i] = x[n-i]: feed x[n-T+1] … x[n], i.e. words reversed.
	burst := make([]int64, fir.Taps())
	for i := range burst {
		burst[i] = words[fir.Taps()-1-i]
	}
	return burst, nil
}

// VerifyPattern applies the burst to good and faulty gate-level
// machines and reports whether the final output differs — the sanity
// check that a generated pattern really detects its fault.
func VerifyPattern(fir *digital.FIR, f netlist.Fault, burst []int64) (bool, error) {
	good := digital.NewFIRSim(fir)
	bad := digital.NewFIRSim(fir)
	if err := bad.InjectFault(f, ^uint64(0)); err != nil {
		return false, err
	}
	var gy, by int64
	for _, x := range burst {
		var err error
		gy, err = good.StepValue(x)
		if err != nil {
			return false, err
		}
		by, err = bad.StepValue(x)
		if err != nil {
			return false, err
		}
	}
	return gy != by, nil
}
