// Package atpg implements a PODEM-style deterministic test-pattern
// generator for single stuck-at faults on the combinational netlist
// substrate. In the paper's flow it closes the loop on DFT reduction:
// the functional (translated) test catches most faults; ATPG then
// classifies the residue into deterministically-testable faults (which
// could be applied through scan or, for the FIR, as a short sample
// burst on the delay line) and provably untestable (redundant) faults
// that no DFT can or needs to catch.
package atpg

import (
	"fmt"

	"mstx/internal/netlist"
)

// Value is the composite five-valued D-algebra element, encoded as a
// pair of three-valued (0, 1, X) machines: good and faulty.
type Value struct {
	// Good and Faulty are the two machines' ternary values.
	Good, Faulty Ternary
}

// Ternary is a three-valued logic level.
type Ternary uint8

// Ternary levels.
const (
	X Ternary = iota
	Zero
	One
)

// String renders the ternary level.
func (t Ternary) String() string {
	switch t {
	case Zero:
		return "0"
	case One:
		return "1"
	default:
		return "X"
	}
}

// not inverts a ternary value (X stays X).
func (t Ternary) not() Ternary {
	switch t {
	case Zero:
		return One
	case One:
		return Zero
	default:
		return X
	}
}

// IsD reports whether the value is D (good 1 / faulty 0) or D̄
// (good 0 / faulty 1) — a propagated fault effect.
func (v Value) IsD() bool {
	return v.Good != X && v.Faulty != X && v.Good != v.Faulty
}

// known reports whether both machines are assigned.
func (v Value) known() bool { return v.Good != X && v.Faulty != X }

// Status classifies the outcome of test generation for one fault.
type Status int

const (
	// Testable: a pattern was found and verified.
	Testable Status = iota
	// Untestable: the search space was exhausted — the fault is
	// redundant and needs no test.
	Untestable
	// Aborted: the backtrack limit was hit before a conclusion.
	Aborted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Testable:
		return "testable"
	case Untestable:
		return "untestable"
	default:
		return "aborted"
	}
}

// Result is the outcome of Generate for one fault.
type Result struct {
	// Fault is the targeted fault.
	Fault netlist.Fault
	// Status classifies the outcome.
	Status Status
	// Pattern holds one primary-input assignment detecting the fault
	// (indexed like Circuit.Inputs); unassigned (don't-care) inputs
	// are filled with false. Valid only when Status == Testable.
	Pattern []bool
	// Backtracks counts decisions undone during the search.
	Backtracks int
}

// Generator runs PODEM over one circuit. It is not safe for
// concurrent use; create one per goroutine.
type Generator struct {
	c *netlist.Circuit
	// MaxBacktracks bounds the search per fault (default 1000).
	MaxBacktracks int

	values  []Value // per net
	fanout  [][]int // net -> gate indices it feeds
	gateOf  []int   // net -> driving gate index, -1 for PI
	isPO    []bool  // net -> primary output?
	piIndex map[netlist.NetID]int
	fault   netlist.Fault
}

// NewGenerator builds a generator for the circuit.
func NewGenerator(c *netlist.Circuit) *Generator {
	g := &Generator{
		c:             c,
		MaxBacktracks: 1000,
		values:        make([]Value, c.NumNets()),
		fanout:        make([][]int, c.NumNets()),
		gateOf:        make([]int, c.NumNets()),
		isPO:          make([]bool, c.NumNets()),
		piIndex:       make(map[netlist.NetID]int, len(c.Inputs)),
	}
	for i := range g.gateOf {
		g.gateOf[i] = -1
	}
	for gi, gate := range c.Gates {
		g.gateOf[gate.Out] = gi
		for _, in := range gate.In {
			g.fanout[in] = append(g.fanout[in], gi)
		}
	}
	for _, n := range c.Outputs {
		g.isPO[n] = true
	}
	for i, n := range c.Inputs {
		g.piIndex[n] = i
	}
	return g
}

// decision is one PI assignment on the PODEM decision stack.
type decision struct {
	pi      netlist.NetID
	value   Ternary
	flipped bool
}

// Generate runs PODEM for fault f.
func (g *Generator) Generate(f netlist.Fault) (Result, error) {
	if int(f.Net) < 0 || int(f.Net) >= g.c.NumNets() {
		return Result{}, fmt.Errorf("atpg: fault on unknown net %d", int(f.Net))
	}
	g.fault = f
	res := Result{Fault: f}
	var stack []decision
	// backtrack undoes the most recent unflipped decision; it returns
	// false when the space is exhausted.
	backtrack := func() bool {
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if !top.flipped {
				top.value = top.value.not()
				top.flipped = true
				res.Backtracks++
				return true
			}
			stack = stack[:len(stack)-1]
		}
		return false
	}
	assigned := func(pi netlist.NetID) bool {
		for _, d := range stack {
			if d.pi == pi {
				return true
			}
		}
		return false
	}
	for {
		// Imply current assignments.
		for i := range g.values {
			g.values[i] = Value{}
		}
		for _, d := range stack {
			g.values[d.pi] = g.piValue(d.pi, d.value)
		}
		g.simulate()

		conflict := false
		switch g.state() {
		case stateDetected:
			pat := make([]bool, len(g.c.Inputs))
			for _, d := range stack {
				pat[g.piIndex[d.pi]] = d.value == One
			}
			res.Status = Testable
			res.Pattern = pat
			return res, nil
		case stateImpossible:
			conflict = true
		default: // stateOpen: next objective, backtraced to a PI
			objNet, objVal, ok := g.objective()
			if ok {
				pi, v := g.backtrace(objNet, objVal)
				if !assigned(pi) {
					stack = append(stack, decision{pi: pi, value: v})
					continue
				}
			}
			// No progress possible under the current assignments.
			conflict = true
		}
		if conflict {
			if !backtrack() {
				res.Status = Untestable
				return res, nil
			}
			if res.Backtracks > g.MaxBacktracks {
				res.Status = Aborted
				return res, nil
			}
		}
	}
}

// piValue builds the PI's composite value honouring the fault site.
func (g *Generator) piValue(n netlist.NetID, t Ternary) Value {
	v := Value{Good: t, Faulty: t}
	if n == g.fault.Net {
		v.Faulty = stuckTernary(g.fault.Stuck)
	}
	return v
}

func stuckTernary(s netlist.StuckValue) Ternary {
	if s == netlist.StuckAt1 {
		return One
	}
	return Zero
}

// simulate runs three-valued forward simulation of both machines,
// applying the fault override on the faulty machine.
func (g *Generator) simulate() {
	for gi := range g.c.Gates {
		gate := &g.c.Gates[gi]
		good := evalTernary(gate.Type, g.values, gate.In, func(v Value) Ternary { return v.Good })
		faulty := evalTernary(gate.Type, g.values, gate.In, func(v Value) Ternary { return v.Faulty })
		out := Value{Good: good, Faulty: faulty}
		if gate.Out == g.fault.Net {
			out.Faulty = stuckTernary(g.fault.Stuck)
		}
		g.values[gate.Out] = out
	}
}

// evalTernary evaluates one gate in three-valued logic.
func evalTernary(t netlist.GateType, vals []Value, in []netlist.NetID, sel func(Value) Ternary) Ternary {
	get := func(i int) Ternary { return sel(vals[in[i]]) }
	switch t {
	case netlist.And, netlist.Nand:
		out := One
		for i := range in {
			switch get(i) {
			case Zero:
				out = Zero
			case X:
				if out == One {
					out = X
				}
			}
		}
		if out == Zero {
			out = Zero
		}
		if t == netlist.Nand {
			out = out.not()
		}
		return out
	case netlist.Or, netlist.Nor:
		out := Zero
		for i := range in {
			switch get(i) {
			case One:
				out = One
			case X:
				if out == Zero {
					out = X
				}
			}
		}
		if t == netlist.Nor {
			out = out.not()
		}
		return out
	case netlist.Xor, netlist.Xnor:
		out := Zero
		for i := range in {
			v := get(i)
			if v == X {
				return X
			}
			if v == One {
				out = out.not()
			}
		}
		if t == netlist.Xnor {
			out = out.not()
		}
		return out
	case netlist.Not:
		return get(0).not()
	case netlist.Buf:
		return get(0)
	case netlist.Const0:
		return Zero
	case netlist.Const1:
		return One
	default:
		return X
	}
}

// search state classification
type searchState int

const (
	stateOpen searchState = iota
	stateDetected
	stateImpossible
)

// state inspects the simulated values.
func (g *Generator) state() searchState {
	// Detected: a PO carries a D.
	for _, po := range g.c.Outputs {
		if g.values[po].IsD() {
			return stateDetected
		}
	}
	fv := g.values[g.fault.Net]
	// Activation impossible: the good value is fixed equal to the
	// stuck value.
	if fv.Good != X && fv.Good == stuckTernary(g.fault.Stuck) {
		return stateImpossible
	}
	// If activated, a D must still be able to reach a PO: the
	// X-path check over the D-frontier.
	if fv.Good != X && fv.IsD() {
		if !g.xPathExists() {
			return stateImpossible
		}
	}
	return stateOpen
}

// xPathExists checks whether some net carrying D has a path to a PO
// through gates whose outputs are still X.
func (g *Generator) xPathExists() bool {
	seen := make([]bool, g.c.NumNets())
	var stack []netlist.NetID
	for n := 0; n < g.c.NumNets(); n++ {
		if g.values[n].IsD() {
			stack = append(stack, netlist.NetID(n))
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		if g.isPO[n] {
			return true
		}
		for _, gi := range g.fanout[n] {
			out := g.c.Gates[gi].Out
			v := g.values[out]
			if v.IsD() || v.Good == X || v.Faulty == X {
				if !seen[out] {
					stack = append(stack, out)
				}
			}
		}
	}
	return false
}

// objective returns the next (net, value) goal: activate the fault if
// its good value is still X, otherwise advance the D-frontier.
func (g *Generator) objective() (netlist.NetID, Ternary, bool) {
	fv := g.values[g.fault.Net]
	if fv.Good == X {
		return g.fault.Net, stuckTernary(g.fault.Stuck).not(), true
	}
	// D-frontier: a gate with a D input and an X output; objective is
	// a non-controlling value on one of its X inputs.
	for gi := range g.c.Gates {
		gate := &g.c.Gates[gi]
		out := g.values[gate.Out]
		if out.Good != X && out.Faulty != X {
			continue
		}
		hasD := false
		for _, in := range gate.In {
			if g.values[in].IsD() {
				hasD = true
				break
			}
		}
		if !hasD {
			continue
		}
		nc, ok := nonControlling(gate.Type)
		if !ok {
			// XOR-like gates: any X input needs a definite value;
			// choose 0.
			nc = Zero
		}
		for _, in := range gate.In {
			v := g.values[in]
			if v.Good == X {
				return in, nc, true
			}
		}
	}
	return 0, X, false
}

// nonControlling returns the gate's non-controlling input value.
func nonControlling(t netlist.GateType) (Ternary, bool) {
	switch t {
	case netlist.And, netlist.Nand:
		return One, true
	case netlist.Or, netlist.Nor:
		return Zero, true
	default:
		return X, false
	}
}

// backtrace maps an objective to a PI assignment by walking X inputs
// toward the inputs, flipping parity through inverting gates.
func (g *Generator) backtrace(n netlist.NetID, v Ternary) (netlist.NetID, Ternary) {
	for {
		gi := g.gateOf[n]
		if gi < 0 {
			return n, v
		}
		gate := &g.c.Gates[gi]
		switch gate.Type {
		case netlist.Not, netlist.Nand, netlist.Nor, netlist.Xnor:
			v = v.not()
		case netlist.Const0, netlist.Const1:
			// Cannot justify through a constant; return an arbitrary
			// PI (the conflict surfaces at the next implication).
			return g.c.Inputs[0], v
		}
		// Choose the first X-valued input to continue through.
		next := gate.In[0]
		for _, in := range gate.In {
			if g.values[in].Good == X {
				next = in
				break
			}
		}
		n = next
	}
}
