package atpg

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"mstx/internal/digital"
	"mstx/internal/fault"
	"mstx/internal/netlist"
)

// simulateFaultDetects checks by exhaustive/direct simulation that the
// pattern distinguishes good from faulty machines on some PO.
func simulateFaultDetects(t *testing.T, c *netlist.Circuit, f netlist.Fault, pattern []bool) bool {
	t.Helper()
	sim := netlist.NewSimulator(c)
	words := make([]uint64, len(pattern))
	for i, b := range pattern {
		if b {
			words[i] = 1 // lane 0 good
		}
	}
	goodOut, err := sim.Run(words)
	if err != nil {
		t.Fatal(err)
	}
	fsim := netlist.NewSimulator(c)
	if err := fsim.InjectFault(f, 1); err != nil {
		t.Fatal(err)
	}
	badOut, err := fsim.Run(words)
	if err != nil {
		t.Fatal(err)
	}
	for i := range goodOut {
		if goodOut[i]&1 != badOut[i]&1 {
			return true
		}
	}
	return false
}

func TestTernaryNot(t *testing.T) {
	if Zero.not() != One || One.not() != Zero || X.not() != X {
		t.Fatal("ternary not wrong")
	}
	if Zero.String() != "0" || One.String() != "1" || X.String() != "X" {
		t.Fatal("ternary strings wrong")
	}
}

func TestStatusString(t *testing.T) {
	if Testable.String() != "testable" || Untestable.String() != "untestable" ||
		Aborted.String() != "aborted" {
		t.Fatal("status strings wrong")
	}
}

func TestGenerateOnANDGate(t *testing.T) {
	c := netlist.New()
	a := c.Input("a")
	b := c.Input("b")
	y := c.And(a, b)
	c.MarkOutput(y, "y")
	g := NewGenerator(c)

	// Output SA0 needs a=b=1.
	r, err := g.Generate(netlist.Fault{Net: y, Stuck: netlist.StuckAt0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Testable {
		t.Fatalf("SA0 on AND output: %v", r.Status)
	}
	if !r.Pattern[0] || !r.Pattern[1] {
		t.Fatalf("pattern %v, want 11", r.Pattern)
	}
	// Input a SA1 needs a=0, b=1.
	r, err = g.Generate(netlist.Fault{Net: a, Stuck: netlist.StuckAt1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Testable || r.Pattern[0] || !r.Pattern[1] {
		t.Fatalf("a SA1: %v pattern %v", r.Status, r.Pattern)
	}
}

func TestGenerateUntestableRedundantFault(t *testing.T) {
	// y = a AND NOT(a): constant 0, so SA0 on y is redundant.
	c := netlist.New()
	a := c.Input("a")
	na := c.Not(a)
	y := c.And(a, na)
	c.MarkOutput(y, "y")
	g := NewGenerator(c)
	r, err := g.Generate(netlist.Fault{Net: y, Stuck: netlist.StuckAt0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Untestable {
		t.Fatalf("redundant fault classified %v", r.Status)
	}
	// SA1 on y IS testable (any a works: good 0, faulty 1).
	r, err = g.Generate(netlist.Fault{Net: y, Stuck: netlist.StuckAt1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Testable {
		t.Fatalf("SA1 on constant-0 net: %v", r.Status)
	}
	if !simulateFaultDetects(t, c, netlist.Fault{Net: y, Stuck: netlist.StuckAt1}, r.Pattern) {
		t.Fatal("generated pattern does not detect")
	}
}

func TestGenerateUnknownNet(t *testing.T) {
	c := netlist.New()
	c.MarkOutput(c.Input("a"), "y")
	g := NewGenerator(c)
	if _, err := g.Generate(netlist.Fault{Net: 99}); err == nil {
		t.Fatal("unknown net accepted")
	}
}

func TestGenerateXorChain(t *testing.T) {
	// XOR trees exercise the non-controlling fallback path.
	c := netlist.New()
	ins := []netlist.NetID{c.Input("a"), c.Input("b"), c.Input("c"), c.Input("d")}
	x1 := c.Xor(ins[0], ins[1])
	x2 := c.Xor(ins[2], ins[3])
	y := c.Xor(x1, x2)
	c.MarkOutput(y, "y")
	g := NewGenerator(c)
	for _, f := range netlist.AllFaults(c) {
		r, err := g.Generate(f)
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != Testable {
			t.Fatalf("fault %v on XOR tree: %v", f, r.Status)
		}
		if !simulateFaultDetects(t, c, f, r.Pattern) {
			t.Fatalf("pattern for %v does not detect", f)
		}
	}
}

// exhaustivelyTestable brute-forces whether any input pattern detects
// the fault (for small circuits).
func exhaustivelyTestable(t *testing.T, c *netlist.Circuit, f netlist.Fault) bool {
	t.Helper()
	nIn := len(c.Inputs)
	for v := 0; v < 1<<uint(nIn); v++ {
		pat := make([]bool, nIn)
		for i := range pat {
			pat[i] = v>>uint(i)&1 == 1
		}
		if simulateFaultDetects(t, c, f, pat) {
			return true
		}
	}
	return false
}

func TestGenerateMatchesExhaustiveOnRandomCircuits(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := netlist.New()
		nets := []netlist.NetID{c.Input("a"), c.Input("b"), c.Input("c"), c.Input("d")}
		for i := 0; i < 12; i++ {
			x := nets[rng.Intn(len(nets))]
			y := nets[rng.Intn(len(nets))]
			var n netlist.NetID
			switch rng.Intn(7) {
			case 0:
				n = c.And(x, y)
			case 1:
				n = c.Or(x, y)
			case 2:
				n = c.Nand(x, y)
			case 3:
				n = c.Nor(x, y)
			case 4:
				n = c.Xor(x, y)
			case 5:
				n = c.Not(x)
			default:
				n = c.Buf(x)
			}
			nets = append(nets, n)
		}
		c.MarkOutput(nets[len(nets)-1], "y")
		g := NewGenerator(c)
		faults := netlist.AllFaults(c)
		// Check a sample of faults against the brute-force oracle.
		for i := 0; i < len(faults); i += 1 + len(faults)/10 {
			fl := faults[i]
			r, err := g.Generate(fl)
			if err != nil {
				return false
			}
			want := exhaustivelyTestable(t, c, fl)
			switch r.Status {
			case Testable:
				if !want || !simulateFaultDetects(t, c, fl, r.Pattern) {
					t.Logf("seed %d: fault %v claimed testable incorrectly", seed, fl)
					return false
				}
			case Untestable:
				if want {
					t.Logf("seed %d: fault %v claimed untestable but a pattern exists", seed, fl)
					return false
				}
			case Aborted:
				// Acceptable (rare at this size).
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyAndTopOffOnFIR(t *testing.T) {
	if testing.Short() {
		t.Skip("ATPG top-off skipped in -short")
	}
	fir, err := digital.NewFIR([]int64{5, -9, 13}, 6)
	if err != nil {
		t.Fatal(err)
	}
	u := fault.NewUniverse(fir, true)
	// Functional campaign first.
	xs := make([]int64, 64)
	for i := range xs {
		xs[i] = int64((i%13)*4 - 24)
	}
	rep, err := fault.Simulate(context.Background(), u, xs, fault.ExactDetector{})
	if err != nil {
		t.Fatal(err)
	}
	missed := rep.Undetected()
	sum, err := Classify(fir.Circuit, missed, 2000)
	if err != nil {
		t.Fatal(err)
	}
	tb, ut, ab := sum.Counts()
	if tb+ut+ab != len(missed) {
		t.Fatalf("classification lost faults: %d+%d+%d != %d", tb, ut, ab, len(missed))
	}
	if ab > len(missed)/4 {
		t.Errorf("too many aborts: %d of %d", ab, len(missed))
	}
	// Every testable pattern must actually detect via the sample burst.
	for _, r := range sum.Testable {
		burst, err := PatternToSamples(fir, r.Pattern)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := VerifyPattern(fir, r.Fault, burst)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("burst for %v does not detect", r.Fault)
		}
	}
	if len(sum.Testable) == 0 {
		t.Error("functional residue contained no ATPG-testable faults (unexpected)")
	}
	if !containsAll(sum.String(), "testable", "redundant") {
		t.Errorf("Summary.String = %q", sum.String())
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestPatternToSamplesValidation(t *testing.T) {
	fir, err := digital.NewFIR([]int64{1, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PatternToSamples(fir, make([]bool, 3)); err == nil {
		t.Fatal("wrong pattern length accepted")
	}
	// Negative word reconstruction: pattern for x0 = -1 (all ones).
	pat := make([]bool, 8)
	for i := 0; i < 4; i++ {
		pat[i] = true // tap 0 bits
	}
	burst, err := PatternToSamples(fir, pat)
	if err != nil {
		t.Fatal(err)
	}
	// delay[0] must end up -1: burst feeds oldest first, so the last
	// sample is x[n] = tap 0 = -1.
	if burst[len(burst)-1] != -1 {
		t.Fatalf("burst = %v, want last sample -1", burst)
	}
	if burst[0] != 0 {
		t.Fatalf("burst = %v, want first sample 0 (tap 1)", burst)
	}
}
