package experiments

import (
	"fmt"

	"mstx/internal/tolerance"
)

// Fig2Result reproduces Figure 2: the probability distribution of a
// module parameter with its tolerance band, and the fault-coverage /
// yield-loss masses created by a given measurement error.
type Fig2Result struct {
	// X and PDF are the distribution curve samples.
	X, PDF []float64
	// Spec is the tolerance band on the true value.
	Spec tolerance.SpecLimit
	// Err is the measurement error sigma.
	ErrSigma float64
	// Losses holds the loss masses at the nominal threshold.
	Losses tolerance.LossEstimate
	// Sweep holds the Table 2-style threshold sweep for the same
	// parameter (Figure 5's trade-off).
	Sweep []tolerance.ThresholdRow
}

// Fig2Options configures the demonstration parameter.
type Fig2Options struct {
	// Mean, Sigma describe the parameter's process distribution.
	Mean, Sigma float64
	// TolLo, TolHi is the acceptance band.
	TolLo, TolHi float64
	// ErrSigma is the 1σ measurement error.
	ErrSigma float64
	// Points is the curve resolution. Default 201.
	Points int
}

// DefaultFig2Options returns the canonical demonstration: a parameter
// at 10 ± 1 with a ±2 acceptance band and a 0.4σ measurement error.
func DefaultFig2Options() Fig2Options {
	return Fig2Options{Mean: 10, Sigma: 1, TolLo: 8, TolHi: 12, ErrSigma: 0.4, Points: 201}
}

// Fig2 generates the distribution curve and loss computation.
func Fig2(opts Fig2Options) (*Fig2Result, error) {
	if opts.Sigma <= 0 {
		return nil, fmt.Errorf("experiments: sigma must be positive")
	}
	if opts.Points == 0 {
		opts.Points = 201
	}
	dist := tolerance.Normal{Mean: opts.Mean, Sigma: opts.Sigma}
	spec := tolerance.BandLimit(opts.TolLo, opts.TolHi)
	x, pdf := tolerance.DistributionCurve(dist, opts.Points, 4)
	errD := tolerance.Normal{Sigma: opts.ErrSigma}
	losses := tolerance.AnalyticLosses(dist, errD, spec, spec)
	sweep := tolerance.ThresholdSweep(dist, opts.ErrSigma, tolerance.WorstCaseErr(opts.ErrSigma), spec)
	return &Fig2Result{
		X: x, PDF: pdf, Spec: spec, ErrSigma: opts.ErrSigma,
		Losses: losses, Sweep: sweep,
	}, nil
}

// Format renders the loss summary and threshold sweep.
func (r *Fig2Result) Format() string {
	rows := [][]string{{"threshold", "FCL", "YL"}}
	for _, row := range r.Sweep {
		rows = append(rows, []string{row.Label, fpct(row.Losses.FCL), fpct(row.Losses.YL)})
	}
	head := fmt.Sprintf("parameter pdf over [%g, %g], tolerance [%g, %g], err σ=%g\n"+
		"at nominal threshold: FCL=%s YL=%s (good fraction %s)\n",
		r.X[0], r.X[len(r.X)-1], r.Spec.Lo, r.Spec.Hi, r.ErrSigma,
		fpct(r.Losses.FCL), fpct(r.Losses.YL), fpct(r.Losses.GoodFraction))
	return head + table(rows)
}
