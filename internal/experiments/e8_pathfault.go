package experiments

import (
	"context"
	"fmt"

	"mstx/internal/campaign"
	"mstx/internal/core"
	"mstx/internal/dsp"
	"mstx/internal/fault"
	"mstx/internal/obs"
	"mstx/internal/resilient"
)

// PathFaultRow is one campaign of the E8 study.
type PathFaultRow struct {
	// Label names the campaign.
	Label string
	// Patterns is the record length.
	Patterns int
	// Coverage is the stuck-at coverage, percent.
	Coverage float64
	// Detected and Total count faults.
	Detected, Total int
}

// PathFaultResult reproduces the paper's §5 digital-filter experiment:
// the 13-tap filter is tested through the analog front end with a
// two-tone stimulus; exact-compare coverage with ideal inputs is the
// baseline, spectral-signature coverage through the noisy analog path
// drops, and repeating with more patterns recovers part of the loss.
// The input-signal SFDR/SNR and the LSB confinement of the surviving
// faults are reported alongside, matching the in-text numbers'
// structure (paper: two-tone 95.5% ideal; 62 dB SFDR / 72 dB SNR at
// the filter input; spectral coverage rising to 81.4% with 8192
// patterns; residual faults within the 5 LSBs).
type PathFaultResult struct {
	Rows []PathFaultRow
	// InputSFDRdB and InputSNRdB characterize the realistic stimulus
	// at the filter input.
	InputSFDRdB, InputSNRdB float64
	// LSBConfined is the fraction of spectrally-undetected faults
	// whose output perturbation stays within the 5 LSBs.
	LSBConfined float64
	// UniverseSize is the collapsed fault count.
	UniverseSize int
	// ScreenedLanes, MemoizedLanes and SpectraComputed report the
	// long-record campaign engine's transform reuse: lanes resolved by
	// the zero-diff screen, lanes resolved by record-verdict
	// memoization, and spectral evaluations actually performed.
	ScreenedLanes, MemoizedLanes, SpectraComputed int
}

// PathFaultOptions configures the campaign sizes.
type PathFaultOptions struct {
	// BasePatterns is the short-record length. Default 1024.
	BasePatterns int
	// LongPatterns is the long-record length. Default 4096.
	LongPatterns int
	// Seed drives the noisy capture.
	Seed int64
	// Ctx, when non-nil, bounds the study: cancellation/deadline is
	// honored at campaign-batch granularity and surfaces as a typed
	// resilient.ErrCanceled/ErrDeadline.
	Ctx context.Context
	// Checkpoint, when enabled, snapshots each campaign's batch ledger
	// (names "e8_exact", "e8_short", "e8_long") so a killed study
	// resumes with a bit-identical report.
	Checkpoint *resilient.Checkpointer
}

// PathFaultSim runs the three campaigns.
func PathFaultSim(opts PathFaultOptions) (*PathFaultResult, error) {
	if opts.BasePatterns == 0 {
		opts.BasePatterns = 1024
	}
	if opts.LongPatterns == 0 {
		opts.LongPatterns = 4096
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	spec, err := BuildDefaultSpec()
	if err != nil {
		return nil, err
	}
	synth, err := core.New(spec)
	if err != nil {
		return nil, err
	}
	res := &PathFaultResult{}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// Observability: one child span per campaign of the study, so the
	// trace shows where an E8 run spends its time (the long-record
	// spectral campaign dominates).
	e8Ctx, e8Sp := obs.Span(ctx, "e8.pathfault")
	defer e8Sp.End()

	build := func(patterns int) (*core.DigitalTest, error) {
		o := core.DefaultDigitalTestOptions()
		o.Patterns = patterns
		o.Seed = opts.Seed
		return synth.BuildDigitalTest(o)
	}

	// Baseline: exact compare with ideal inputs, long record.
	dtLong, err := build(opts.LongPatterns)
	if err != nil {
		return nil, err
	}
	res.UniverseSize = dtLong.Universe.Size()
	_, exactSp := obs.Span(e8Ctx, "e8.exact")
	exact, err := dtLong.RunExactOpts(ctx,
		fault.SimOptions{Checkpoint: opts.Checkpoint, CheckpointName: "e8_exact"})
	exactSp.End()
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, PathFaultRow{
		Label: "exact compare, ideal input", Patterns: opts.LongPatterns,
		Coverage: exact.Coverage(), Detected: exact.Detected(), Total: len(exact.Results),
	})

	// Spectral with the short record.
	dtShort, err := build(opts.BasePatterns)
	if err != nil {
		return nil, err
	}
	_, shortSp := obs.Span(e8Ctx, "e8.spectral_short")
	short, _, err := dtShort.RunSpectralOpts(ctx,
		campaign.Options{Checkpoint: opts.Checkpoint, CheckpointName: "e8_short"})
	shortSp.End()
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, PathFaultRow{
		Label: "spectral, through analog path", Patterns: opts.BasePatterns,
		Coverage: short.Coverage(), Detected: short.Detected(), Total: len(short.Results),
	})

	// Spectral with the long record, through the pooled campaign
	// engine (its report is identical to the serial path; the stats
	// show how much transform work the zero-diff screen removed).
	_, longSp := obs.Span(e8Ctx, "e8.spectral_long")
	long, stats, err := dtLong.RunSpectralOpts(ctx,
		campaign.Options{Checkpoint: opts.Checkpoint, CheckpointName: "e8_long"})
	longSp.End()
	if err != nil {
		return nil, err
	}
	res.ScreenedLanes = stats.Screened
	res.MemoizedLanes = stats.Memoized
	res.SpectraComputed = stats.Spectra
	res.Rows = append(res.Rows, PathFaultRow{
		Label: "spectral, 4x patterns", Patterns: opts.LongPatterns,
		Coverage: long.Coverage(), Detected: long.Detected(), Total: len(long.Results),
	})

	// Input-signal quality at the filter input (the realistic codes).
	rec := make([]float64, len(dtLong.RealisticCodes))
	for i, c := range dtLong.RealisticCodes {
		rec[i] = float64(c)
	}
	an, err := dsp.Analyze(rec, spec.ADCRate, dtLong.ToneFreqs, dsp.Rectangular,
		dsp.AnalyzeOptions{})
	if err != nil {
		return nil, err
	}
	res.InputSFDRdB = an.SFDR
	res.InputSNRdB = an.SNR

	// LSB confinement of the spectrally-undetected faults, measured on
	// the exact records (paper: undetected faults scattered within the
	// 5 least-significant bits).
	und := undetectedOf(long, exact)
	res.LSBConfined = fault.LSBConfinement(und, 5)
	return res, nil
}

// undetectedOf returns the exact-campaign results (which carry
// MaxAbsDiff on the ideal input) for the faults the spectral campaign
// missed.
func undetectedOf(spectral, exact *fault.Report) []fault.Result {
	missed := make(map[string]bool)
	for _, r := range spectral.Results {
		if !r.Detected {
			missed[r.Fault.String()] = true
		}
	}
	var out []fault.Result
	for _, r := range exact.Results {
		if missed[r.Fault.String()] {
			out = append(out, r)
		}
	}
	return out
}

// Format renders the campaign table plus the input-quality summary.
func (r *PathFaultResult) Format() string {
	rows := [][]string{{"campaign", "patterns", "coverage", "detected", "faults"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Label, fmt.Sprintf("%d", row.Patterns),
			fmt.Sprintf("%.1f%%", row.Coverage),
			fmt.Sprintf("%d", row.Detected), fmt.Sprintf("%d", row.Total),
		})
	}
	out := table(rows)
	out += fmt.Sprintf("\nfilter-input signal: SFDR %.1f dB, SNR %.1f dB\n", r.InputSFDRdB, r.InputSNRdB)
	out += fmt.Sprintf("%s of spectrally-undetected faults confined to the 5 LSBs\n", fpct(r.LSBConfined))
	out += fmt.Sprintf("collapsed stuck-at universe: %d faults\n", r.UniverseSize)
	out += fmt.Sprintf("campaign engine (long record): %d lanes zero-diff screened, %d memoized, %d spectra computed\n",
		r.ScreenedLanes, r.MemoizedLanes, r.SpectraComputed)
	return out
}
