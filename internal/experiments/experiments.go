// Package experiments reproduces every table and figure of the
// paper's evaluation (plus the in-text results) as callable
// experiment functions returning structured data. cmd/experiments
// prints them; the repository-root benchmarks time them and report
// their headline metrics. The experiment IDs follow DESIGN.md:
//
//	E1  Figure 1  — output spectra, fault-free and faulty 16-tap FIR
//	E2  §3 text   — fault coverage vs. number of stimulus tones
//	E3  Figure 2  — parameter pdf with FC-loss / yield-loss regions
//	E4  Figure 3  — composition boundary checks vs. masked gain errors
//	E5  Figure 4  — IIP3 accuracy: full access / nominal / adaptive
//	E6  Table 2   — FCL/YL vs. threshold for P1dB, IIP3, fc
//	E7  Table 1   — the synthesized test plan for the comm path
//	E8  §5 text   — digital filter tested through the analog path
//	E9  Figure 6  — experimental set-up: attribute walk along the path
package experiments

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/path"
)

// DefaultFilterTaps is the channel-selection filter length of the
// experimental set-up (the paper's 13-tap low-pass).
const DefaultFilterTaps = 13

// DefaultFilterCutoff is the digital filter's normalized cutoff.
const DefaultFilterCutoff = 0.18

// BuildDefaultSpec returns the standard communication-path spec used
// by all experiments.
func BuildDefaultSpec() (path.Spec, error) {
	coeffs, err := digital.DesignLowPassFIR(DefaultFilterTaps, DefaultFilterCutoff, dsp.Hamming)
	if err != nil {
		return path.Spec{}, err
	}
	return path.DefaultSpec(coeffs), nil
}

// table renders rows with a tabwriter; the first row is the header.
func table(rows [][]string) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	for i, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
		if i == 0 {
			sep := make([]string, len(r))
			for j, h := range r {
				sep[j] = strings.Repeat("-", len(h))
			}
			fmt.Fprintln(w, strings.Join(sep, "\t"))
		}
	}
	w.Flush()
	return b.String()
}

// fdb formats a dB value.
func fdb(v float64) string {
	if math.IsInf(v, 0) {
		return "inf"
	}
	return fmt.Sprintf("%.2f", v)
}

// fpct formats a fraction as a percentage.
func fpct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
