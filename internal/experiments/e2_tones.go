package experiments

import (
	"fmt"
	"math"

	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/fault"
)

// ToneCoverageRow is one row of the E2 study: stuck-at coverage of the
// 16-tap filter for a stimulus with a given number of tones.
type ToneCoverageRow struct {
	// Tones is the number of stimulus tones.
	Tones int
	// Coverage is the stuck-at fault coverage, percent.
	Coverage float64
	// Detected and Total count faults.
	Detected, Total int
}

// TonesResult holds the coverage-vs-tones sweep. The paper reports
// 89.6% for one tone and 95.5% for two, with more tones only slightly
// better — the shape this experiment reproduces.
type TonesResult struct {
	Rows []ToneCoverageRow
	// Patterns is the record length used.
	Patterns int
}

// TonesOptions configures the sweep.
type TonesOptions struct {
	// Patterns is the record length. Default 1024.
	Patterns int
	// MaxTones is the largest stimulus tone count. Default 3.
	MaxTones int
	// Taps is the filter length. Default 16.
	Taps int
}

// CoverageVsTones runs the E2 sweep: ideal multi-tone records with a
// fixed composite amplitude, exact output comparison (the inputs are
// known exactly in this in-text experiment), full collapsed stuck-at
// universe.
func CoverageVsTones(opts TonesOptions) (*TonesResult, error) {
	if opts.Patterns == 0 {
		opts.Patterns = 1024
	}
	if opts.MaxTones == 0 {
		opts.MaxTones = 3
	}
	if opts.Taps == 0 {
		opts.Taps = 16
	}
	coeffs, err := digital.DesignLowPassFIR(opts.Taps, 0.15, dsp.Hamming)
	if err != nil {
		return nil, err
	}
	ints, _, err := digital.QuantizeCoeffs(coeffs, 8)
	if err != nil {
		return nil, err
	}
	fir, err := digital.NewFIR(ints, 10)
	if err != nil {
		return nil, err
	}
	u := fault.NewUniverse(fir, true)
	n := opts.Patterns
	res := &TonesResult{Patterns: n}
	// Pass-band bins, mutually prime-ish against n for code coverage.
	bins := []int{n/16 + 1, n/16 + 17, n/16 - 13, n/16 + 29}
	const composite = 460.0 // near full scale of the 10-bit input
	for tones := 1; tones <= opts.MaxTones; tones++ {
		xs := make([]int64, n)
		per := composite / float64(tones)
		for i := range xs {
			var v float64
			for t := 0; t < tones; t++ {
				v += per * math.Sin(2*math.Pi*float64(bins[t])*float64(i)/float64(n)+float64(t))
			}
			xs[i] = int64(math.Round(v))
		}
		det, err := fault.DetectOnly(u, xs)
		if err != nil {
			return nil, err
		}
		count := 0
		for _, d := range det {
			if d {
				count++
			}
		}
		res.Rows = append(res.Rows, ToneCoverageRow{
			Tones:    tones,
			Coverage: 100 * float64(count) / float64(len(det)),
			Detected: count,
			Total:    len(det),
		})
	}
	return res, nil
}

// Format renders the sweep table.
func (r *TonesResult) Format() string {
	rows := [][]string{{"tones", "coverage", "detected", "faults"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Tones),
			fmt.Sprintf("%.1f%%", row.Coverage),
			fmt.Sprintf("%d", row.Detected),
			fmt.Sprintf("%d", row.Total),
		})
	}
	return table(rows)
}
