package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"mstx/internal/mcengine"
	"mstx/internal/obs"
	"mstx/internal/params"
	"mstx/internal/resilient"
)

// MethodAccuracy summarizes the IIP3 measurement error of one
// translation method over a Monte-Carlo population of devices.
type MethodAccuracy struct {
	// Method is the translation method.
	Method params.Method
	// MeanErr, RMSErr, WorstAbs are the error statistics in dB.
	MeanErr, RMSErr, WorstAbs float64
	// Devices is the population size.
	Devices int
}

// Fig4Result holds the adaptive-accuracy study.
type Fig4Result struct {
	Rows []MethodAccuracy
}

// Fig4Options configures the Monte-Carlo population.
type Fig4Options struct {
	// Devices is the number of sampled devices. Default 25.
	Devices int
	// Seed drives the device sampling.
	Seed int64
	// N is the capture length. Default 2048.
	N int
	// Workers bounds the measurement fan-out (0 = engine default).
	// The result is bit-identical for any value: each device is one
	// engine lane with its own RNG substream.
	Workers int
	// Ctx, when non-nil, bounds the study: cancellation/deadline is
	// honored at device-lane granularity and surfaces as a typed
	// resilient.ErrCanceled/ErrDeadline.
	Ctx context.Context
	// Checkpoint, when enabled, snapshots the device population at
	// engine round barriers (name "e5_devices") so a killed study
	// resumes bit-identically.
	Checkpoint *resilient.Checkpointer
}

// Fig4 reproduces Figure 4: the mixer IIP3 is measured on a
// population of process-varied devices with full access, with nominal
// gains, and with the adaptive path-gain-first strategy. The adaptive
// error spread must be markedly tighter than nominal (only the
// amplifier tolerance remains), with full access as the floor.
func Fig4(opts Fig4Options) (*Fig4Result, error) {
	if opts.Devices == 0 {
		opts.Devices = 25
	}
	if opts.N == 0 {
		opts.N = 2048
	}
	spec, err := BuildDefaultSpec()
	if err != nil {
		return nil, err
	}
	cfg := params.Config{N: opts.N, Settle: 256}
	st := params.DefaultIIP3Stimulus()
	methods := []params.Method{params.FullAccess, params.NominalGains, params.Adaptive}
	// Device population on the sharded engine: one lane per device
	// (BatchSize 1), so each device draw comes from its own substream
	// and the study fans out across workers without losing
	// reproducibility. Measurements run noiseless (nil rng), so each
	// lane's [methods]error vector depends only on its device.
	kernel := func(_, count int, rng *rand.Rand) ([][3]float64, error) {
		out := make([][3]float64, 0, count)
		for i := 0; i < count; i++ {
			device, err := spec.Sample(rng)
			if err != nil {
				return nil, err
			}
			var e [3]float64
			for j, m := range methods {
				res, err := params.MeasureMixerIIP3(device, m, st, cfg, nil)
				if err != nil {
					return nil, err
				}
				e[j] = res.Delta()
			}
			out = append(out, e)
		}
		return out, nil
	}
	merge := func(total [][3]float64, _ int, part [][3]float64) [][3]float64 {
		return append(total, part...)
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	_, devSp := obs.Span(ctx, "e5.devices")
	all, _, err := mcengine.Run(ctx, opts.Devices, opts.Seed+400,
		mcengine.Options{
			Workers: opts.Workers, BatchSize: 1,
			Checkpoint: opts.Checkpoint, CheckpointName: "e5_devices",
		}, nil, kernel, merge, nil)
	devSp.End()
	if err != nil {
		return nil, err
	}
	out := &Fig4Result{}
	for j, m := range methods {
		es := make([]float64, len(all))
		for i, e := range all {
			es[i] = e[j]
		}
		var sum, sum2, worst float64
		for _, e := range es {
			sum += e
			sum2 += e * e
			if a := math.Abs(e); a > worst {
				worst = a
			}
		}
		out.Rows = append(out.Rows, MethodAccuracy{
			Method:   m,
			MeanErr:  sum / float64(len(es)),
			RMSErr:   math.Sqrt(sum2 / float64(len(es))),
			WorstAbs: worst,
			Devices:  len(es),
		})
	}
	return out, nil
}

// RMSByMethod returns the RMS error of the given method, or NaN.
func (r *Fig4Result) RMSByMethod(m params.Method) float64 {
	for _, row := range r.Rows {
		if row.Method == m {
			return row.RMSErr
		}
	}
	return math.NaN()
}

// Format renders the accuracy table.
func (r *Fig4Result) Format() string {
	rows := [][]string{{"method", "mean err (dB)", "rms err (dB)", "worst |err| (dB)", "devices"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Method.String(), fdb(row.MeanErr), fdb(row.RMSErr), fdb(row.WorstAbs),
			fmt.Sprintf("%d", row.Devices),
		})
	}
	return table(rows)
}
