package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"mstx/internal/params"
)

// MethodAccuracy summarizes the IIP3 measurement error of one
// translation method over a Monte-Carlo population of devices.
type MethodAccuracy struct {
	// Method is the translation method.
	Method params.Method
	// MeanErr, RMSErr, WorstAbs are the error statistics in dB.
	MeanErr, RMSErr, WorstAbs float64
	// Devices is the population size.
	Devices int
}

// Fig4Result holds the adaptive-accuracy study.
type Fig4Result struct {
	Rows []MethodAccuracy
}

// Fig4Options configures the Monte-Carlo population.
type Fig4Options struct {
	// Devices is the number of sampled devices. Default 25.
	Devices int
	// Seed drives the device sampling.
	Seed int64
	// N is the capture length. Default 2048.
	N int
}

// Fig4 reproduces Figure 4: the mixer IIP3 is measured on a
// population of process-varied devices with full access, with nominal
// gains, and with the adaptive path-gain-first strategy. The adaptive
// error spread must be markedly tighter than nominal (only the
// amplifier tolerance remains), with full access as the floor.
func Fig4(opts Fig4Options) (*Fig4Result, error) {
	if opts.Devices == 0 {
		opts.Devices = 25
	}
	if opts.N == 0 {
		opts.N = 2048
	}
	spec, err := BuildDefaultSpec()
	if err != nil {
		return nil, err
	}
	cfg := params.Config{N: opts.N, Settle: 256}
	st := params.DefaultIIP3Stimulus()
	rng := rand.New(rand.NewSource(opts.Seed + 400))
	methods := []params.Method{params.FullAccess, params.NominalGains, params.Adaptive}
	errs := make(map[params.Method][]float64)
	for i := 0; i < opts.Devices; i++ {
		device, err := spec.Sample(rng)
		if err != nil {
			return nil, err
		}
		for _, m := range methods {
			res, err := params.MeasureMixerIIP3(device, m, st, cfg, nil)
			if err != nil {
				return nil, err
			}
			errs[m] = append(errs[m], res.Delta())
		}
	}
	out := &Fig4Result{}
	for _, m := range methods {
		es := errs[m]
		var sum, sum2, worst float64
		for _, e := range es {
			sum += e
			sum2 += e * e
			if a := math.Abs(e); a > worst {
				worst = a
			}
		}
		out.Rows = append(out.Rows, MethodAccuracy{
			Method:   m,
			MeanErr:  sum / float64(len(es)),
			RMSErr:   math.Sqrt(sum2 / float64(len(es))),
			WorstAbs: worst,
			Devices:  len(es),
		})
	}
	return out, nil
}

// RMSByMethod returns the RMS error of the given method, or NaN.
func (r *Fig4Result) RMSByMethod(m params.Method) float64 {
	for _, row := range r.Rows {
		if row.Method == m {
			return row.RMSErr
		}
	}
	return math.NaN()
}

// Format renders the accuracy table.
func (r *Fig4Result) Format() string {
	rows := [][]string{{"method", "mean err (dB)", "rms err (dB)", "worst |err| (dB)", "devices"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Method.String(), fdb(row.MeanErr), fdb(row.RMSErr), fdb(row.WorstAbs),
			fmt.Sprintf("%d", row.Devices),
		})
	}
	return table(rows)
}
