package experiments

import (
	"context"
	"fmt"
	"math"

	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/fault"
	"mstx/internal/netlist"
)

// SpectrumSeries is one curve of Figure 1: the output spectrum of the
// 16-tap filter for a given machine (fault-free or one stuck-at
// fault).
type SpectrumSeries struct {
	// Label identifies the machine ("fault-free", "fault in tap 2
	// multiplier", ...).
	Label string
	// Fault is the injected fault (zero value for the good machine).
	Fault netlist.Fault
	// BinDB is the per-bin output power in dB relative to the
	// fundamental.
	BinDB []float64
}

// Fig1Result holds the Figure 1 reproduction.
type Fig1Result struct {
	// Series are the four spectra (fault-free + three fault sites).
	Series []SpectrumSeries
	// NFFT is the record length.
	NFFT int
	// ToneBin is the stimulus bin.
	ToneBin int
}

// Fig1Options configures the experiment.
type Fig1Options struct {
	// Patterns is the record length (power of two). Default 1024.
	Patterns int
	// Taps is the filter length. Default 16 (as in the paper's §3).
	Taps int
}

// Fig1 reproduces Figure 1: the output response spectrum of a 16-tap
// low-pass FIR driven by a pure on-bin sine, fault-free and with
// stuck-at faults injected in the multiplier of tap 2, an adder of
// tap 5, and the output cone of tap 7. Faults create harmonics and
// intermodulation-like spurs in the output spectrum.
func Fig1(opts Fig1Options) (*Fig1Result, error) {
	if opts.Patterns == 0 {
		opts.Patterns = 1024
	}
	if opts.Taps == 0 {
		opts.Taps = 16
	}
	coeffs, err := digital.DesignLowPassFIR(opts.Taps, 0.15, dsp.Hamming)
	if err != nil {
		return nil, err
	}
	ints, _, err := digital.QuantizeCoeffs(coeffs, 8)
	if err != nil {
		return nil, err
	}
	fir, err := digital.NewFIR(ints, 10)
	if err != nil {
		return nil, err
	}
	n := opts.Patterns
	toneBin := n / 16 // deep in the pass band
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(math.Round(420 * math.Sin(2*math.Pi*float64(toneBin)*float64(i)/float64(n))))
	}
	u := fault.NewUniverse(fir, false)

	// Pick representative fault sites inside specific tap cones, as in
	// the paper's sub-figures: gather the candidates of a tap, run one
	// exact batch over them, and keep the most active fault. If a tap
	// is dead (zero quantized coefficient), fall back to a neighbor.
	pick := func(tap int) (netlist.Fault, error) {
		for delta := 0; delta < fir.Taps(); delta++ {
			for _, t := range []int{tap - delta, tap + delta} {
				if t < 0 || t >= fir.Taps() {
					continue
				}
				f, ok, err := mostActiveFault(fir, u, t, xs)
				if err != nil {
					return netlist.Fault{}, err
				}
				if ok {
					return f, nil
				}
			}
		}
		return netlist.Fault{}, fmt.Errorf("experiments: no detectable fault near tap %d", tap)
	}
	sites := []struct {
		label string
		tap   int
	}{
		{"fault in tap 2 multiplier", 2},
		{"fault in tap 5 adder", 5},
		{"fault in tap 7 output", 7},
	}
	res := &Fig1Result{NFFT: n, ToneBin: toneBin}

	// Fault-free spectrum (steady-state periodic response).
	sim := digital.NewFIRSim(fir)
	good, err := sim.RunPeriodic(xs)
	if err != nil {
		return nil, err
	}
	goodDB, err := relativeSpectrum(good, toneBin)
	if err != nil {
		return nil, err
	}
	res.Series = append(res.Series, SpectrumSeries{Label: "fault-free", BinDB: goodDB})

	for _, site := range sites {
		f, err := pick(site.tap)
		if err != nil {
			return nil, err
		}
		fsim := digital.NewFIRSim(fir)
		if err := fsim.InjectFault(f, ^uint64(0)); err != nil {
			return nil, err
		}
		rec, err := fsim.RunPeriodic(xs)
		if err != nil {
			return nil, err
		}
		db, err := relativeSpectrum(rec, toneBin)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, SpectrumSeries{Label: site.label, Fault: f, BinDB: db})
	}
	return res, nil
}

// mostActiveFault simulates up to 62 candidate faults in the tap's
// cone in one pass and returns the one with the largest output
// perturbation, requiring a clearly visible effect (≥ 4 LSB).
func mostActiveFault(fir *digital.FIR, u *fault.Universe, tap int, xs []int64) (netlist.Fault, bool, error) {
	var cands []netlist.Fault
	for _, f := range u.Faults {
		if fir.TapOfNet(f.Net) == tap {
			cands = append(cands, f)
			if len(cands) == 62 {
				break
			}
		}
	}
	if len(cands) == 0 {
		return netlist.Fault{}, false, nil
	}
	sub := &fault.Universe{FIR: fir, Faults: cands}
	rep, err := fault.Simulate(context.Background(), sub, xs, fault.ExactDetector{})
	if err != nil {
		return netlist.Fault{}, false, err
	}
	best := -1
	for i, r := range rep.Results {
		if r.MaxAbsDiff >= 4 && (best < 0 || r.MaxAbsDiff > rep.Results[best].MaxAbsDiff) {
			best = i
		}
	}
	if best < 0 {
		return netlist.Fault{}, false, nil
	}
	return rep.Results[best].Fault, true, nil
}

// relativeSpectrum returns per-bin power in dB relative to the bin at
// toneBin.
func relativeSpectrum(rec []int64, toneBin int) ([]float64, error) {
	f := make([]float64, len(rec))
	for i, v := range rec {
		f[i] = float64(v)
	}
	s, err := dsp.PowerSpectrum(f, float64(len(rec)), dsp.Rectangular)
	if err != nil {
		return nil, err
	}
	ref := s.Power[toneBin]
	out := make([]float64, len(s.Power))
	for k, p := range s.Power {
		out[k] = dsp.DB(p / ref)
	}
	return out, nil
}

// SpurCount returns how many bins of the series rise above threshDB
// (relative to the fundamental), excluding the stimulus bin itself —
// a scalar summary of how "dirty" a faulty spectrum is.
func (s SpectrumSeries) SpurCount(toneBin int, threshDB float64) int {
	n := 0
	for k, db := range s.BinDB {
		if k != toneBin && k != 0 && db > threshDB {
			n++
		}
	}
	return n
}

// Format renders the Figure 1 summary: for each series, the level of
// the worst non-fundamental bin and the count of spurs above −60 dBc.
func (r *Fig1Result) Format() string {
	rows := [][]string{{"machine", "worst spur (dBc)", "spurs > -60 dBc"}}
	for _, s := range r.Series {
		worst := math.Inf(-1)
		for k, db := range s.BinDB {
			if k != r.ToneBin && k != 0 && db > worst {
				worst = db
			}
		}
		rows = append(rows, []string{s.Label, fdb(worst), fmt.Sprintf("%d", s.SpurCount(r.ToneBin, -60))})
	}
	return table(rows)
}
