package experiments

import (
	"math"
	"strings"
	"testing"

	"mstx/internal/params"
)

func TestBuildDefaultSpec(t *testing.T) {
	spec, err := BuildDefaultSpec()
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(spec.FilterCoeffs) != DefaultFilterTaps {
		t.Errorf("filter taps = %d", len(spec.FilterCoeffs))
	}
}

func TestFig1SpectraShape(t *testing.T) {
	res, err := Fig1(Fig1Options{Patterns: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series = %d", len(res.Series))
	}
	// The fault-free spectrum must be clean; every faulty one dirty.
	goodSpurs := res.Series[0].SpurCount(res.ToneBin, -60)
	for i := 1; i < 4; i++ {
		faultSpurs := res.Series[i].SpurCount(res.ToneBin, -60)
		if faultSpurs <= goodSpurs {
			t.Errorf("%s: %d spurs, good machine has %d", res.Series[i].Label, faultSpurs, goodSpurs)
		}
	}
	if !strings.Contains(res.Format(), "fault-free") {
		t.Error("Format missing series labels")
	}
}

func TestFig1DefaultOptions(t *testing.T) {
	res, err := Fig1(Fig1Options{Patterns: 256, Taps: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.NFFT != 256 {
		t.Errorf("NFFT = %d", res.NFFT)
	}
}

func TestCoverageVsTonesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("gate-level sweep skipped in -short")
	}
	res, err := CoverageVsTones(TonesOptions{Patterns: 256, MaxTones: 2, Taps: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's shape: two-tone >= single tone (within noise), both
	// high.
	if res.Rows[0].Coverage < 60 {
		t.Errorf("single-tone coverage %.1f%% too low", res.Rows[0].Coverage)
	}
	if res.Rows[1].Coverage < res.Rows[0].Coverage-3 {
		t.Errorf("two-tone %.1f%% below single-tone %.1f%%",
			res.Rows[1].Coverage, res.Rows[0].Coverage)
	}
	if !strings.Contains(res.Format(), "coverage") {
		t.Error("Format missing header")
	}
}

func TestFig2Losses(t *testing.T) {
	res, err := Fig2(DefaultFig2Options())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.X) != 201 || len(res.PDF) != 201 {
		t.Fatal("curve length wrong")
	}
	if res.Losses.FCL <= 0 || res.Losses.YL <= 0 {
		t.Errorf("losses should be positive at the nominal threshold: %+v", res.Losses)
	}
	if res.Sweep[1].Losses.FCL > 0.005 {
		t.Errorf("Tol-Err FCL = %g", res.Sweep[1].Losses.FCL)
	}
	if res.Sweep[2].Losses.YL > 0.005 {
		t.Errorf("Tol+Err YL = %g", res.Sweep[2].Losses.YL)
	}
	if _, err := Fig2(Fig2Options{Sigma: 0}); err == nil {
		t.Error("zero sigma accepted")
	}
	if !strings.Contains(res.Format(), "FCL") {
		t.Error("Format missing losses")
	}
}

func TestFig3BoundaryScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("path-level scenario sweep skipped in -short")
	}
	res, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 3 {
		t.Fatalf("scenarios = %d", len(res.Scenarios))
	}
	nom, masked, noisy := res.Scenarios[0], res.Scenarios[1], res.Scenarios[2]
	if !nom.CompositeGainPass || !nom.SaturationPass || !nom.NoisePass {
		t.Errorf("nominal device failed something: %+v", nom)
	}
	if !masked.CompositeGainPass {
		t.Errorf("masked device should pass the composite gain test: %+v", masked)
	}
	if masked.SaturationPass {
		t.Errorf("masked device escaped the saturation check: %+v", masked)
	}
	if !noisy.CompositeGainPass {
		t.Errorf("noisy device should pass the composite gain test: %+v", noisy)
	}
	if noisy.NoisePass {
		t.Errorf("noisy device escaped the noise check: %+v", noisy)
	}
	if !strings.Contains(res.Format(), "FAIL") {
		t.Error("Format should show failures")
	}
}

func TestFig4AdaptiveBeatsNominal(t *testing.T) {
	if testing.Short() {
		t.Skip("monte carlo skipped in -short")
	}
	res, err := Fig4(Fig4Options{Devices: 16, N: 1024})
	if err != nil {
		t.Fatal(err)
	}
	full := res.RMSByMethod(params.FullAccess)
	nom := res.RMSByMethod(params.NominalGains)
	ada := res.RMSByMethod(params.Adaptive)
	if !(ada < nom) {
		t.Errorf("adaptive RMS %g should beat nominal %g", ada, nom)
	}
	if !(full < ada) {
		t.Errorf("full access RMS %g should be the floor (adaptive %g)", full, ada)
	}
	if math.IsNaN(res.RMSByMethod(params.Method(9))) == false {
		t.Error("unknown method should return NaN")
	}
	if !strings.Contains(res.Format(), "adaptive") {
		t.Error("Format missing methods")
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("monte carlo skipped in -short")
	}
	res, err := Table2(Table2Options{Devices: 6, N: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.ErrSigma <= 0 {
			t.Errorf("%s: sigma = %g", row.Parameter, row.ErrSigma)
		}
		// Table 2's structural signature.
		if row.Sweep[1].Losses.FCL > 0.01 {
			t.Errorf("%s: Tol-Err FCL = %g", row.Parameter, row.Sweep[1].Losses.FCL)
		}
		if row.Sweep[2].Losses.YL > 0.01 {
			t.Errorf("%s: Tol+Err YL = %g", row.Parameter, row.Sweep[2].Losses.YL)
		}
		if row.Sweep[2].Losses.FCL < row.Sweep[0].Losses.FCL {
			t.Errorf("%s: loosening lowered FCL", row.Parameter)
		}
	}
	if !strings.Contains(res.Format(), "Tol+Err FCL") {
		t.Error("Format missing columns")
	}
}

func TestTable1PlanPrints(t *testing.T) {
	res, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	for _, want := range []string{"path-gain", "mixer-iip3", "lpf-cutoff", "DFT fallback", "boundary checks"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan output missing %q", want)
		}
	}
}

func TestPathFaultSimShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full gate-level campaign skipped in -short")
	}
	res, err := PathFaultSim(PathFaultOptions{BasePatterns: 256, LongPatterns: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	exact, short, long := res.Rows[0], res.Rows[1], res.Rows[2]
	if exact.Coverage < 70 {
		t.Errorf("exact coverage %.1f%% too low", exact.Coverage)
	}
	if short.Coverage > exact.Coverage {
		t.Errorf("spectral %.1f%% above exact %.1f%%", short.Coverage, exact.Coverage)
	}
	// At miniature record sizes the floor placement is noisy; require
	// only that 4× patterns does not lose coverage materially.
	if long.Coverage < short.Coverage-3 {
		t.Errorf("more patterns lowered coverage: %.1f%% -> %.1f%%", short.Coverage, long.Coverage)
	}
	if res.InputSNRdB < 20 || res.InputSNRdB > 100 {
		t.Errorf("input SNR %.1f dB implausible", res.InputSNRdB)
	}
	if res.LSBConfined < 0.3 {
		t.Errorf("only %.0f%% of escapes confined to 5 LSBs", 100*res.LSBConfined)
	}
	if !strings.Contains(res.Format(), "SFDR") {
		t.Error("Format missing input quality")
	}
}

func TestFig6AttributeWalk(t *testing.T) {
	res, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 5 {
		t.Fatalf("stages = %d", len(res.Stages))
	}
	// Noise must be non-decreasing along the analog chain (up to the
	// filter-out stage where the digital filter only scales tones).
	for i := 1; i < 4; i++ {
		if res.Stages[i].Signal.NoiseRMS+1e-15 < res.Stages[i-1].Signal.NoiseRMS {
			t.Errorf("noise decreased at %v", res.Stages[i].Stage)
		}
	}
	// Amplitude accuracy accumulates monotonically.
	for i := 1; i < len(res.Stages); i++ {
		if res.Stages[i].Signal.AmpAccuracy+1e-15 < res.Stages[i-1].Signal.AmpAccuracy {
			t.Errorf("accuracy shrank at %v", res.Stages[i].Stage)
		}
	}
	if !strings.Contains(res.Format(), "mixer-in") {
		t.Error("Format missing stages")
	}
}

func TestTopOffShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ATPG top-off skipped in -short")
	}
	res, err := TopOff(TopOffOptions{Patterns: 256, Taps: 7, MaxBacktracks: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Testable+res.Untestable+res.Aborted+res.Detected != res.Total {
		t.Fatalf("classification does not partition the universe: %+v", res)
	}
	if res.EffectiveCoverage < res.FunctionalCoverage {
		t.Errorf("effective coverage %.1f%% below functional %.1f%%",
			res.EffectiveCoverage, res.FunctionalCoverage)
	}
	if res.BurstsVerified != res.Testable {
		t.Errorf("only %d of %d ATPG bursts verified", res.BurstsVerified, res.Testable)
	}
	if !strings.Contains(res.Format(), "redundant") {
		t.Error("Format missing redundancy row")
	}
}
