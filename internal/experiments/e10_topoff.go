package experiments

import (
	"context"
	"fmt"
	"math"

	"mstx/internal/atpg"
	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/fault"
)

// TopOffResult quantifies the paper's DFT-reduction claim: after the
// functional (translated) test, the residue of undetected stuck-at
// faults is classified by deterministic test generation into
// redundant faults (needing no test at all), deterministically
// testable faults (a handful of scan/burst patterns), and aborted
// searches. "Effective coverage" excludes the provably redundant
// faults from the denominator.
type TopOffResult struct {
	// Functional is the translated-test campaign result.
	FunctionalCoverage float64
	// Detected/Total count the functional campaign.
	Detected, Total int
	// Testable, Untestable, Aborted classify the residue.
	Testable, Untestable, Aborted int
	// BurstsVerified counts ATPG patterns confirmed by gate-level
	// replay of the derived sample bursts.
	BurstsVerified int
	// EffectiveCoverage is detected / (total − redundant), percent.
	EffectiveCoverage float64
}

// TopOffOptions configures E10.
type TopOffOptions struct {
	// Patterns is the functional record length. Default 512.
	Patterns int
	// Taps is the filter length. Default 13.
	Taps int
	// MaxBacktracks bounds each PODEM search. Default 5000.
	MaxBacktracks int
}

// TopOff runs the E10 flow on the gate-level channel filter.
func TopOff(opts TopOffOptions) (*TopOffResult, error) {
	if opts.Patterns == 0 {
		opts.Patterns = 512
	}
	if opts.Taps == 0 {
		opts.Taps = DefaultFilterTaps
	}
	if opts.MaxBacktracks == 0 {
		opts.MaxBacktracks = 5000
	}
	coeffs, err := digital.DesignLowPassFIR(opts.Taps, DefaultFilterCutoff, dsp.Hamming)
	if err != nil {
		return nil, err
	}
	ints, _, err := digital.QuantizeCoeffs(coeffs, 8)
	if err != nil {
		return nil, err
	}
	fir, err := digital.NewFIR(ints, 10)
	if err != nil {
		return nil, err
	}
	u := fault.NewUniverse(fir, true)
	n := opts.Patterns
	xs := make([]int64, n)
	for i := range xs {
		ph := 2 * math.Pi * float64(i) / float64(n)
		xs[i] = int64(math.Round(230*math.Sin(float64(n/16+1)*ph) + 230*math.Sin(float64(n/16+17)*ph)))
	}
	rep, err := fault.Simulate(context.Background(), u, xs, fault.ExactDetector{})
	if err != nil {
		return nil, err
	}
	sum, err := atpg.Classify(fir.Circuit, rep.Undetected(), opts.MaxBacktracks)
	if err != nil {
		return nil, err
	}
	res := &TopOffResult{
		FunctionalCoverage: rep.Coverage(),
		Detected:           rep.Detected(),
		Total:              len(rep.Results),
		Testable:           len(sum.Testable),
		Untestable:         len(sum.Untestable),
		Aborted:            len(sum.Aborted),
	}
	for _, r := range sum.Testable {
		burst, err := atpg.PatternToSamples(fir, r.Pattern)
		if err != nil {
			return nil, err
		}
		ok, err := atpg.VerifyPattern(fir, r.Fault, burst)
		if err != nil {
			return nil, err
		}
		if ok {
			res.BurstsVerified++
		}
	}
	denom := res.Total - res.Untestable
	if denom > 0 {
		res.EffectiveCoverage = 100 * float64(res.Detected) / float64(denom)
	}
	return res, nil
}

// Format renders the top-off summary.
func (r *TopOffResult) Format() string {
	rows := [][]string{
		{"stage", "value"},
		{"functional (translated) coverage", fmt.Sprintf("%.1f%% (%d/%d)", r.FunctionalCoverage, r.Detected, r.Total)},
		{"residue: deterministically testable", fmt.Sprintf("%d (bursts verified %d)", r.Testable, r.BurstsVerified)},
		{"residue: provably redundant", fmt.Sprintf("%d", r.Untestable)},
		{"residue: aborted searches", fmt.Sprintf("%d", r.Aborted)},
		{"effective coverage (excl. redundant)", fmt.Sprintf("%.1f%%", r.EffectiveCoverage)},
	}
	return table(rows)
}
