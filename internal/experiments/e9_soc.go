package experiments

import (
	"context"
	"fmt"
	"strings"

	"mstx/internal/obs"
	"mstx/internal/resilient"
	"mstx/internal/soc"
)

// DefaultTAMWidths is the E9 sweep: the test-access bus widths the
// schedule/test-time table is reported at (Sehgal-style).
var DefaultTAMWidths = []int{8, 16, 24, 32, 48}

// DefaultSOCSeed drives the scheduler's local search when the caller
// leaves Seed zero, so the published E9 table is one fixed experiment.
const DefaultSOCSeed = 1

// SOCOptions configure the E9 multi-core SOC test-planning study.
type SOCOptions struct {
	// Widths are the TAM bus widths to sweep (default
	// DefaultTAMWidths).
	Widths []int
	// Cores restricts the SOC to these core IDs (default: all).
	Cores []string
	// Iterations is the local-search budget per width lane
	// (default soc.DefaultIterations).
	Iterations int
	// Seed drives the scheduler's RNG substreams (default
	// DefaultSOCSeed).
	Seed int64
	// Workers bounds the width-lane worker pool (0 = GOMAXPROCS;
	// the result is identical for any value).
	Workers int
	// Ctx cancels the run early when done.
	Ctx context.Context
	// Checkpoint, when set, snapshots completed width lanes.
	Checkpoint *resilient.Checkpointer
}

// SOCResult is the E9 outcome: the SOC under test and one optimized
// schedule per swept TAM width.
type SOCResult struct {
	// SOC is the (possibly core-restricted) system under test.
	SOC *soc.SOC
	// Widths are the swept TAM widths, ascending as requested.
	Widths []int
	// Schedules hold one schedule per width, same order.
	Schedules []*soc.Schedule
	// Seed and Iterations echo the scheduler configuration.
	Seed       int64
	Iterations int
}

// SOCPlan runs E9: build the default heterogeneous SOC (receive path
// with Nyquist and sigma-delta interfaces, two digital FIR cores),
// then schedule it at every requested TAM width with the
// resource-constrained rectangle packer. Deterministic for a fixed
// seed, any worker count, and across checkpoint/resume.
func SOCPlan(opts SOCOptions) (*SOCResult, error) {
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	widths := opts.Widths
	if len(widths) == 0 {
		widths = DefaultTAMWidths
	}
	seed := opts.Seed
	if seed == 0 {
		seed = DefaultSOCSeed
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = soc.DefaultIterations
	}

	e9Ctx, e9Sp := obs.Span(ctx, "e9.soc")
	defer e9Sp.End()

	s, err := soc.Default()
	if err != nil {
		return nil, err
	}
	s, err = soc.Select(s, opts.Cores)
	if err != nil {
		return nil, err
	}
	scheds, err := soc.PlanSweep(e9Ctx, s, widths, soc.Options{
		Iterations:     iters,
		Seed:           seed,
		Workers:        opts.Workers,
		Checkpoint:     opts.Checkpoint,
		CheckpointName: "e9_soc",
	})
	if err != nil {
		return nil, err
	}
	return &SOCResult{
		SOC: s, Widths: widths, Schedules: scheds,
		Seed: seed, Iterations: iters,
	}, nil
}

// kc renders cycles as kilocycles.
func kc(c int64) string { return fmt.Sprintf("%.1f", float64(c)/1e3) }

// Format renders the E9 tables: the SOC inventory, the Sehgal-style
// TAM-width sweep (makespan vs certified lower bound), and the full
// rectangle schedule at the widest bus.
func (r *SOCResult) Format() string {
	var b strings.Builder
	s := r.SOC
	fmt.Fprintf(&b, "SOC %s: %d cores, %d tests, %.2f Mcycle TAM payload\n",
		s.Name, len(s.Cores), s.NumTests(), float64(s.Volume())/1e6)
	rows := [][]string{{"core", "kind", "wrapper", "tests", "payload (kc)"}}
	for _, c := range s.Cores {
		var v int64
		for _, t := range c.Tests {
			v += t.Cycles
		}
		rows = append(rows, []string{
			c.ID, c.Kind,
			fmt.Sprintf("%d", c.WrapperWidth),
			fmt.Sprintf("%d", len(c.Tests)),
			kc(v),
		})
	}
	b.WriteString(table(rows))

	fmt.Fprintf(&b, "\nTAM sweep (seed %d, %d local-search iterations per width lane):\n",
		r.Seed, r.Iterations)
	rows = [][]string{{"W", "makespan (kc)", "bound (kc)", "gap", "pack", "eff", "util", "speedup"}}
	base := r.Schedules[0].Makespan
	for i, sch := range r.Schedules {
		gap := 100 * float64(sch.Makespan-sch.LowerBound) / float64(sch.LowerBound)
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Widths[i]),
			kc(sch.Makespan),
			kc(sch.LowerBound),
			fmt.Sprintf("%.1f%%", gap),
			fmt.Sprintf("%d", sch.PackWidth),
			fmt.Sprintf("%d", sch.EffectiveWidth),
			fmt.Sprintf("%.0f%%", 100*sch.Utilization()),
			fmt.Sprintf("%.2fx", float64(base)/float64(sch.Makespan)),
		})
	}
	b.WriteString(table(rows))

	last := r.Schedules[len(r.Schedules)-1]
	fmt.Fprintf(&b, "\nschedule at W=%d (makespan %s kc, packed at %d wires):\n",
		last.TAMWidth, kc(last.Makespan), last.PackWidth)
	rows = [][]string{{"start (kc)", "dur (kc)", "wires", "test", "holds"}}
	for _, a := range last.Assignments {
		holds := strings.Join(a.Resources, "+")
		if holds == "" {
			holds = "-"
		}
		rows = append(rows, []string{
			kc(a.Start),
			kc(a.Duration),
			fmt.Sprintf("%d-%d", a.Wire, a.Wire+a.Width-1),
			a.Core + "/" + a.Test,
			holds,
		})
	}
	b.WriteString(table(rows))
	return b.String()
}
