package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden files")

// TestTable2Golden pins the formatted E6 Table 2 output byte-for-byte.
// Every input is deterministic — device draws come from per-lane
// engine substreams, measurements run noiseless, and the loss
// cross-check stops at a seed-determined round — so any diff is a real
// behavior change. Regenerate intentionally with:
//
//	go test ./internal/experiments -run Table2Golden -update
func TestTable2Golden(t *testing.T) {
	res, err := Table2(Table2Options{Devices: 6, N: 1024, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Format()
	golden := filepath.Join("testdata", "e6_table2.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("Table 2 output drifted from golden.\n--- got ---\n%s--- want ---\n%s(run with -update if the change is intentional)", got, want)
	}
}

// TestE9ScheduleGolden pins the formatted E9 SOC schedule sweep
// byte-for-byte at the default configuration — the same table
// `cmd/experiments -e9` prints and the `soc` job kind serves. The
// scheduler is deterministic under its fixed seed (lane RNG
// substreams, lane-order merge), so any diff is a real behavior
// change. Regenerate intentionally with:
//
//	go test ./internal/experiments -run E9ScheduleGolden -update
func TestE9ScheduleGolden(t *testing.T) {
	res, err := SOCPlan(SOCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Format()
	golden := filepath.Join("testdata", "e9_schedule.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("E9 schedule output drifted from golden.\n--- got ---\n%s--- want ---\n%s(run with -update if the change is intentional)", got, want)
	}
}

// TestE9ScheduleGoldenWorkerInvariant re-runs the golden
// configuration at a high worker count: the formatted output must not
// move by a byte.
func TestE9ScheduleGoldenWorkerInvariant(t *testing.T) {
	base, err := SOCPlan(SOCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := SOCPlan(SOCOptions{Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if base.Format() != wide.Format() {
		t.Errorf("worker count changed output:\n%s\nvs\n%s", base.Format(), wide.Format())
	}
}

// TestTable2GoldenWorkerInvariant re-runs the golden configuration at
// a high worker count: the formatted output must not move by a byte.
func TestTable2GoldenWorkerInvariant(t *testing.T) {
	base, err := Table2(Table2Options{Devices: 6, N: 1024, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Table2(Table2Options{Devices: 6, N: 1024, Seed: 0, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if base.Format() != wide.Format() {
		t.Errorf("worker count changed output:\n%s\nvs\n%s", base.Format(), wide.Format())
	}
}
