package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mstx/internal/resilient"
)

// deadlineExpiredCtx returns a context whose deadline has already
// passed.
func deadlineExpiredCtx() (context.Context, context.CancelFunc) {
	return context.WithDeadline(context.Background(), time.Unix(0, 0))
}

// TestTable2KillAndResumeMatchesGolden is the end-to-end resilience
// golden: the E6 study is killed mid-run by an injected engine-lane
// crash, then resumed from its checkpoints — and the resumed run's
// formatted table must match testdata/e6_table2.golden byte-for-byte.
func TestTable2KillAndResumeMatchesGolden(t *testing.T) {
	golden := filepath.Join("testdata", "e6_table2.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run TestTable2Golden with -update first)", err)
	}
	dir := t.TempDir()

	// Phase 1: crash partway through the device population.
	fp := resilient.NewFailpoints()
	boom := errors.New("injected crash")
	fp.Set("mcengine.lane", resilient.Action{Err: boom, After: 3})
	resilient.Install(fp)
	_, err = Table2(Table2Options{
		Devices: 6, N: 1024, Seed: 0, Workers: 1,
		Checkpoint: &resilient.Checkpointer{Dir: dir, Every: 1},
	})
	resilient.Install(nil)
	if !errors.Is(err, boom) {
		t.Fatalf("injected crash surfaced as %v", err)
	}
	if ents, err := os.ReadDir(dir); err != nil || len(ents) == 0 {
		t.Fatalf("no checkpoint written before the crash (entries %v, err %v)", ents, err)
	}

	// Phase 2: resume. The checkpointed lanes are restored, the rest
	// run fresh, and the final table must be bit-identical.
	res, err := Table2(Table2Options{
		Devices: 6, N: 1024, Seed: 0,
		Checkpoint: &resilient.Checkpointer{Dir: dir, Every: 1, Resume: true},
	})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if got := res.Format(); got != string(want) {
		t.Errorf("resumed Table 2 drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFig4CancelSurfacesTyped covers the experiments-level ctx
// plumbing: an expired deadline aborts E5 with the typed taxonomy.
func TestFig4CancelSurfacesTyped(t *testing.T) {
	ctx, cancel := deadlineExpiredCtx()
	defer cancel()
	if _, err := Fig4(Fig4Options{Devices: 4, N: 512, Ctx: ctx}); !errors.Is(err, resilient.ErrDeadline) {
		t.Fatalf("expired deadline returned %v, want ErrDeadline", err)
	}
}
