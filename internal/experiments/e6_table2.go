package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"mstx/internal/mcengine"
	"mstx/internal/obs"
	"mstx/internal/params"
	"mstx/internal/path"
	"mstx/internal/resilient"
	"mstx/internal/tolerance"
)

// Table2Row is one parameter's line of Table 2: fault-coverage loss
// and yield loss at the three threshold choices.
type Table2Row struct {
	// Parameter names the measured parameter.
	Parameter string
	// Method is the translation method that was used.
	Method params.Method
	// ErrSigma is the empirically determined 1σ measurement error.
	ErrSigma float64
	// Unit is the parameter unit.
	Unit string
	// Sweep holds the Tol / Tol−Err / Tol+Err loss rows.
	Sweep []tolerance.ThresholdRow
	// MC is the engine-backed Monte-Carlo cross-check of the nominal
	// (Tol) threshold losses: same error model, independent of the
	// closed form, with confidence-interval early stopping.
	MC tolerance.LossEstimate
}

// Table2Result reproduces Table 2 for P1dB, IIP3 and fc.
type Table2Result struct {
	Rows []Table2Row
	// Devices is the Monte-Carlo population used to estimate the
	// measurement error of each procedure.
	Devices int
}

// Table2Options configures the study.
type Table2Options struct {
	// Devices is the Monte-Carlo population. Default 15.
	Devices int
	// Seed drives device sampling.
	Seed int64
	// N is the capture length. Default 2048.
	N int
	// Workers bounds the engine fan-out for device measurement and
	// the loss cross-check (0 = engine default). Results are
	// bit-identical for any value.
	Workers int
	// MCSamples is the per-row loss cross-check budget. Default
	// 200000; early stopping usually resolves it in far fewer draws.
	MCSamples int
	// MCTargetHalfWidth is the 95% CI half-width at which the loss
	// cross-check stops early. Default 0.005 (half a percentage
	// point).
	MCTargetHalfWidth float64
	// Ctx, when non-nil, bounds the study: cancellation/deadline is
	// honored at engine-lane granularity and surfaces as a typed
	// resilient.ErrCanceled/ErrDeadline.
	Ctx context.Context
	// Checkpoint, when enabled, snapshots the device population (name
	// "e6_devices") and each loss cross-check ("e6_loss_<param>") at
	// engine round barriers so a killed study resumes bit-identically.
	Checkpoint *resilient.Checkpointer
}

// Table2 runs the full Table 2 reproduction: for each of the three
// propagation-translated parameters the measurement procedure runs on
// a population of process-varied devices, the empirical error spread
// is extracted (bias removed — the tester calibrates out systematic
// bias), and the FCL/YL threshold sweep is computed against the
// parameter's process distribution.
func Table2(opts Table2Options) (*Table2Result, error) {
	if opts.Devices == 0 {
		opts.Devices = 15
	}
	if opts.N == 0 {
		opts.N = 2048
	}
	if opts.MCSamples == 0 {
		opts.MCSamples = 200000
	}
	if opts.MCTargetHalfWidth == 0 {
		opts.MCTargetHalfWidth = 0.005
	}
	spec, err := BuildDefaultSpec()
	if err != nil {
		return nil, err
	}
	cfg := params.Config{N: opts.N, Settle: 256}
	st := params.DefaultIIP3Stimulus()

	type study struct {
		name    string
		unit    string
		method  params.Method
		measure func(p *path.Path) (params.Result, error)
		dist    tolerance.Normal
		spec    tolerance.SpecLimit
	}
	studies := []study{
		{
			name: "P1dB", unit: "dBm", method: params.NominalGains,
			measure: func(p *path.Path) (params.Result, error) {
				return params.MeasureMixerP1dB(p, params.NominalGains, cfg, nil)
			},
			dist: tolerance.Normal{Mean: spec.Mixer.P1dBDBm.Nominal, Sigma: spec.Mixer.P1dBDBm.Sigma},
			spec: tolerance.LowerLimit(spec.Mixer.P1dBDBm.Nominal - 2),
		},
		{
			name: "IIP3", unit: "dBm", method: params.Adaptive,
			measure: func(p *path.Path) (params.Result, error) {
				return params.MeasureMixerIIP3(p, params.Adaptive, st, cfg, nil)
			},
			dist: tolerance.Normal{Mean: spec.Mixer.IIP3DBm.Nominal, Sigma: spec.Mixer.IIP3DBm.Sigma},
			spec: tolerance.LowerLimit(spec.Mixer.IIP3DBm.Nominal - 2),
		},
		{
			name: "fc", unit: "Hz", method: params.Adaptive,
			measure: func(p *path.Path) (params.Result, error) {
				return params.MeasureLPFCutoff(p, cfg, nil)
			},
			dist: tolerance.Normal{Mean: spec.LPF.CutoffHz.Nominal, Sigma: spec.LPF.CutoffHz.Sigma},
			spec: tolerance.BandLimit(spec.LPF.CutoffHz.Nominal*0.92, spec.LPF.CutoffHz.Nominal*1.08),
		},
	}

	res := &Table2Result{Devices: opts.Devices}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// Observability: the device-population measurement and the loss
	// cross-check are E6's two expensive phases; give each a child
	// span so a slow Table 2 run is attributable.
	e6Ctx, e6Sp := obs.Span(ctx, "e6.table2")
	defer e6Sp.End()
	_, devSp := obs.Span(e6Ctx, "e6.devices")
	// One engine lane per device: the device draw and every study's
	// measurement of it happen in the lane, so the fan-out across
	// workers never reorders a device's RNG consumption.
	kernel := func(_, count int, rng *rand.Rand) ([][3]float64, error) {
		out := make([][3]float64, 0, count)
		for i := 0; i < count; i++ {
			d, err := spec.Sample(rng)
			if err != nil {
				return nil, err
			}
			var v [3]float64
			for j, s := range studies {
				r, err := s.measure(d)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s on device: %w", s.name, err)
				}
				v[j] = r.Delta()
			}
			out = append(out, v)
		}
		return out, nil
	}
	merge := func(total [][3]float64, _ int, part [][3]float64) [][3]float64 {
		return append(total, part...)
	}
	all, _, err := mcengine.Run(ctx, opts.Devices, opts.Seed+600,
		mcengine.Options{
			Workers: opts.Workers, BatchSize: 1,
			Checkpoint: opts.Checkpoint, CheckpointName: "e6_devices",
		}, nil, kernel, merge, nil)
	devSp.End()
	if err != nil {
		return nil, err
	}
	_, lossSp := obs.Span(e6Ctx, "e6.losscheck")
	defer lossSp.End()
	for j, s := range studies {
		deltas := make([]float64, len(all))
		for i, v := range all {
			deltas[i] = v[j]
		}
		sigma := sigmaAboutMean(deltas)
		if sigma <= 0 {
			sigma = 1e-9
		}
		sweep := tolerance.ThresholdSweep(s.dist, sigma, tolerance.WorstCaseErr(sigma), s.spec)
		// Cross-check the nominal-threshold losses with the sharded
		// Monte Carlo: same P/error model as the closed form, stopping
		// as soon as the 95% CI is inside the target half-width.
		mc, err := tolerance.MonteCarloLosses(ctx, s.dist, tolerance.Normal{Sigma: sigma},
			s.spec, s.spec, opts.MCSamples, opts.Seed+601+int64(j),
			tolerance.MCOptions{
				Workers:         opts.Workers,
				CheckEvery:      2,
				TargetHalfWidth: opts.MCTargetHalfWidth,
				Checkpoint:      opts.Checkpoint,
				CheckpointName:  "e6_loss_" + s.name,
			})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s loss cross-check: %w", s.name, err)
		}
		res.Rows = append(res.Rows, Table2Row{
			Parameter: s.name, Method: s.method, ErrSigma: sigma, Unit: s.unit,
			Sweep: sweep, MC: mc,
		})
	}
	return res, nil
}

// sigmaAboutMean returns the standard deviation of xs about their
// mean (the tester calibrates out the systematic bias).
func sigmaAboutMean(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var mean float64
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	var ss float64
	for _, v := range xs {
		ss += (v - mean) * (v - mean)
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Format renders the Table 2 reproduction in the paper's layout.
func (r *Table2Result) Format() string {
	rows := [][]string{{
		"param", "method", "err σ",
		"Tol FCL", "Tol YL",
		"Tol-Err FCL", "Tol-Err YL",
		"Tol+Err FCL", "Tol+Err YL",
		"MC FCL", "MC YL", "MC n",
	}}
	for _, row := range r.Rows {
		cells := []string{row.Parameter, row.Method.String(),
			fmt.Sprintf("%.3g %s", row.ErrSigma, row.Unit)}
		for _, sw := range row.Sweep {
			cells = append(cells, fpct(sw.Losses.FCL), fpct(sw.Losses.YL))
		}
		cells = append(cells, fpct(row.MC.FCL), fpct(row.MC.YL),
			fmt.Sprintf("%d", row.MC.Samples))
		rows = append(rows, cells)
	}
	return table(rows)
}
