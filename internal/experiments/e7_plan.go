package experiments

import (
	"fmt"

	"mstx/internal/core"
	"mstx/internal/translate"
)

// Table1Result holds the synthesized test plan — the reproduction of
// Table 1 ("set of parameters to be tested") enriched with the
// engine's translation decisions.
type Table1Result struct {
	// Plan is the synthesized plan.
	Plan *translate.Plan
}

// Table1 synthesizes the default test plan for the communication
// path.
func Table1() (*Table1Result, error) {
	spec, err := BuildDefaultSpec()
	if err != nil {
		return nil, err
	}
	synth, err := core.New(spec)
	if err != nil {
		return nil, err
	}
	plan, err := synth.Synthesize(nil)
	if err != nil {
		return nil, err
	}
	return &Table1Result{Plan: plan}, nil
}

// Format renders the plan as the Table 1 reproduction.
func (r *Table1Result) Format() string {
	rows := [][]string{{"#", "target", "parameter", "translation", "method", "pred. err σ", "notes"}}
	for _, t := range r.Plan.Tests {
		errStr := "-"
		if t.ErrSigma > 0 {
			errStr = fmt.Sprintf("%.3g", t.ErrSigma)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", t.Order),
			t.Request.Target,
			string(t.Request.Param),
			t.Kind.String(),
			t.Method.String(),
			errStr,
			t.Reason,
		})
	}
	out := table(rows)
	out += fmt.Sprintf("\nboundary checks (Fig. 3):\n")
	for _, b := range r.Plan.Boundary {
		out += fmt.Sprintf("  %-10s at PI amplitude %.3g V — %s\n", b.Kind, b.PIAmplitude, b.Why)
	}
	out += fmt.Sprintf("\nDFT fallback required for %d of %d parameters\n",
		len(r.Plan.DFTRequired), len(r.Plan.Tests))
	out += fmt.Sprintf("translated program: %d captures ≈ %.1f ms of tester time (4096-pt captures, 100 µs setup)\n",
		r.Plan.TotalCaptures(), 1e3*r.Plan.TestTime(4096, 512, 8e6, 100e-6))
	return out
}
