package experiments

import (
	"fmt"
	"math/rand"

	"mstx/internal/core"
	"mstx/internal/params"
	"mstx/internal/path"
)

// BoundaryScenario is one device scenario of the Figure 3
// demonstration.
type BoundaryScenario struct {
	// Label names the scenario.
	Label string
	// CompositeGainPass reports whether the mid-scale composite path
	// gain test passed.
	CompositeGainPass bool
	// SaturationPass / NoisePass report the two boundary checks.
	SaturationPass bool
	NoisePass      bool
	// GainDB is the measured composite gain.
	GainDB float64
}

// Fig3Result holds the boundary-check demonstration.
type Fig3Result struct {
	Scenarios []BoundaryScenario
}

// Fig3 reproduces the Figure 3 argument on live devices:
//
//   - a nominal device passes the composite gain test and both
//     boundary checks;
//   - a device with +4 dB amp gain masked by −2 dB mixer and −2 dB
//     filter deviations still passes the composite test but fails the
//     high-amplitude saturation check;
//   - a device with a noise fault (10× filter output noise) passes the
//     composite test but fails the low-amplitude noise check.
func Fig3() (*Fig3Result, error) {
	spec, err := BuildDefaultSpec()
	if err != nil {
		return nil, err
	}
	synth, err := core.New(spec)
	if err != nil {
		return nil, err
	}
	if _, err := synth.Synthesize(nil); err != nil {
		return nil, err
	}
	cfg := params.Config{N: 2048, Settle: 256}
	gainLimit := synth.Plan.Tests[0].Request.Limit

	build := func(mutate func(*path.Path)) (*path.Path, error) {
		d, err := spec.Build()
		if err != nil {
			return nil, err
		}
		if mutate != nil {
			mutate(d)
		}
		return d, nil
	}
	scenarios := []struct {
		label  string
		mutate func(*path.Path)
	}{
		{"nominal", nil},
		{"+4dB amp, -2dB mixer, -2dB lpf (masked)", func(d *path.Path) {
			d.Amp.GainDB += 4
			d.Mixer.ConvGainDB -= 2
			d.LPF.GainDB -= 2
		}},
		{"40x filter noise (composite-blind)", func(d *path.Path) {
			d.LPF.Spec.OutputNoiseRMS *= 40
		}},
	}
	res := &Fig3Result{}
	for i, sc := range scenarios {
		d, err := build(sc.mutate)
		if err != nil {
			return nil, err
		}
		g, err := params.MeasurePathGain(d, cfg, nil)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(int64(300 + i)))
		checks, err := synth.CheckBoundaries(d, cfg, rng)
		if err != nil {
			return nil, err
		}
		res.Scenarios = append(res.Scenarios, BoundaryScenario{
			Label:             sc.label,
			CompositeGainPass: gainLimit.Acceptable(g.Measured),
			SaturationPass:    checks[0],
			NoisePass:         checks[1],
			GainDB:            g.Measured,
		})
	}
	return res, nil
}

// Format renders the scenario table.
func (r *Fig3Result) Format() string {
	rows := [][]string{{"device", "composite gain", "gain test", "saturation check", "noise check"}}
	pf := func(b bool) string {
		if b {
			return "pass"
		}
		return "FAIL"
	}
	for _, s := range r.Scenarios {
		rows = append(rows, []string{
			s.Label, fmt.Sprintf("%.2f dB", s.GainDB),
			pf(s.CompositeGainPass), pf(s.SaturationPass), pf(s.NoisePass),
		})
	}
	return table(rows)
}
