package experiments

import (
	"fmt"

	"mstx/internal/msignal"
	"mstx/internal/path"
)

// StageAttributes is the attribute model at one node of the path.
type StageAttributes struct {
	// Stage names the node.
	Stage path.Stage
	// Signal is the propagated attribute model there.
	Signal msignal.Signal
}

// Fig6Result reproduces Figure 6 as a live artifact: the experimental
// set-up with a standard two-tone stimulus walked through the path,
// reporting the signal attributes at every node.
type Fig6Result struct {
	// Stimulus is the primary-input signal.
	Stimulus msignal.Signal
	// Stages are the attribute snapshots in flow order.
	Stages []StageAttributes
	// PathGainDB is the nominal PI→ADC gain.
	PathGainDB float64
}

// Fig6 builds the path and walks the attributes.
func Fig6() (*Fig6Result, error) {
	spec, err := BuildDefaultSpec()
	if err != nil {
		return nil, err
	}
	p, err := spec.Build()
	if err != nil {
		return nil, err
	}
	fIF := 1.0e6
	stim := msignal.NewTwoTone(spec.LO.FreqHz.Nominal+fIF, spec.LO.FreqHz.Nominal+fIF+100e3, 0.004)
	res := &Fig6Result{Stimulus: stim, PathGainDB: p.NominalPathGainDB()}
	for _, st := range []path.Stage{
		path.StageInput, path.StageMixerIn, path.StageLPFIn, path.StageADCIn, path.StageFilterOut,
	} {
		res.Stages = append(res.Stages, StageAttributes{
			Stage:  st,
			Signal: p.Propagate(stim, st),
		})
	}
	return res, nil
}

// Format renders the attribute walk.
func (r *Fig6Result) Format() string {
	rows := [][]string{{"node", "tone1 (Hz @ V)", "noise (Vrms)", "spurs", "amp acc", "SNR (dB)"}}
	for _, s := range r.Stages {
		t := "-"
		if len(s.Signal.Tones) > 0 {
			t = fmt.Sprintf("%.4g @ %.4g", s.Signal.Tones[0].Freq, s.Signal.Tones[0].Amp)
		}
		rows = append(rows, []string{
			s.Stage.String(), t,
			fmt.Sprintf("%.3g", s.Signal.NoiseRMS),
			fmt.Sprintf("%d", len(s.Signal.Spurs)),
			fmt.Sprintf("±%.2g%%", 100*s.Signal.AmpAccuracy),
			fdb(s.Signal.SNR()),
		})
	}
	head := fmt.Sprintf("Amp -> Mixer(LO) -> LPF -> ADC -> FIR; nominal path gain %.1f dB\nstimulus: %s\n",
		r.PathGainDB, r.Stimulus)
	return head + table(rows)
}
