package netlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	c, _, _, _ := buildXor2()
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := Equivalent(c, got, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("round-tripped circuit not equivalent")
	}
}

func TestRoundTripRandomCircuitsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New()
		nets := []NetID{c.Input("a"), c.Input("b"), c.Input("c")}
		for i := 0; i < 15; i++ {
			x := nets[rng.Intn(len(nets))]
			y := nets[rng.Intn(len(nets))]
			var n NetID
			switch rng.Intn(9) {
			case 0:
				n = c.And(x, y)
			case 1:
				n = c.Or(x, y)
			case 2:
				n = c.Nand(x, y)
			case 3:
				n = c.Nor(x, y)
			case 4:
				n = c.Xor(x, y)
			case 5:
				n = c.Xnor(x, y)
			case 6:
				n = c.Not(x)
			case 7:
				n = c.Buf(x)
			default:
				n = c.Const(rng.Intn(2) == 1)
			}
			nets = append(nets, n)
		}
		c.MarkOutput(nets[len(nets)-1], "y")
		c.MarkOutput(nets[len(nets)-2], "z")
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		eq, err := Equivalent(c, got, 16)
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"unknown gate":   "input a\nFROB x a\n",
		"unknown net":    "input a\nAND x a missing\n",
		"dup input":      "input a\ninput a\n",
		"dup driver":     "input a\nNOT a a\n",
		"bad arity":      "input a\nAND x a\n",
		"input arity":    "input\n",
		"output arity":   "output\n",
		"output unknown": "output nowhere\n",
		"gate no out":    "input a\nAND\n",
	}
	for name, text := range cases {
		if _, err := Read(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}

func TestReadOverlongLineIsTaggedError(t *testing.T) {
	// Beyond the scanner's 1 MiB line budget: must surface as a
	// package-tagged error, not a bare bufio failure (and never a
	// panic).
	text := "input " + strings.Repeat("a", 1<<21) + "\n"
	if _, err := Read(strings.NewReader(text)); err == nil || !strings.Contains(err.Error(), "netlist:") {
		t.Fatalf("overlong line: err = %v, want a netlist-tagged error", err)
	}
}

func TestReadCommentsAndBlank(t *testing.T) {
	text := `
# a comment

input a
BUF y a

output y
`
	c, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 1 || len(c.Inputs) != 1 || len(c.Outputs) != 1 {
		t.Fatalf("parsed %v", c.Stats())
	}
}

func TestReadConstGates(t *testing.T) {
	text := "CONST1 one\nCONST0 zero\nXOR y one zero\noutput y\n"
	c, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(c)
	out, err := sim.RunBool(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0] {
		t.Fatal("CONST1 XOR CONST0 should be 1")
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	a := New()
	x := a.Input("x")
	y := a.Input("y")
	a.MarkOutput(a.And(x, y), "o")

	b := New()
	x2 := b.Input("x")
	y2 := b.Input("y")
	b.MarkOutput(b.Or(x2, y2), "o")

	eq, err := Equivalent(a, b, 16)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("AND equivalent to OR?")
	}
	// Interface mismatch short-circuits.
	c := New()
	c.MarkOutput(c.Input("only"), "o")
	eq, err = Equivalent(a, c, 16)
	if err != nil || eq {
		t.Fatal("interface mismatch should be inequivalent")
	}
}

func TestEquivalentRefusesHugeInputCount(t *testing.T) {
	a := New()
	var ins []NetID
	for i := 0; i < 20; i++ {
		ins = append(ins, a.Input(""))
	}
	a.MarkOutput(a.And(ins[0], ins[1]), "o")
	if _, err := Equivalent(a, a, 16); err == nil {
		t.Fatal("20 inputs accepted for exhaustive check")
	}
}

func TestEquivalentManyLanes(t *testing.T) {
	// 8 inputs = 256 patterns = multiple 64-lane passes.
	build := func() *Circuit {
		c := New()
		var ins []NetID
		for i := 0; i < 8; i++ {
			ins = append(ins, c.Input(""))
		}
		acc := ins[0]
		for _, in := range ins[1:] {
			acc = c.Xor(acc, in)
		}
		c.MarkOutput(acc, "p")
		return c
	}
	eq, err := Equivalent(build(), build(), 16)
	if err != nil || !eq {
		t.Fatalf("identical builds should be equivalent: %v %v", eq, err)
	}
}

func TestSortedNetNames(t *testing.T) {
	c := New()
	c.Input("beta")
	c.Input("alpha")
	names := c.SortedNetNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("names = %v", names)
	}
}

func TestMulConstCSDEquivalentToBinaryGateLevel(t *testing.T) {
	// Cross-package sanity at the netlist level is covered in the
	// digital package; here verify Write output is parseable for a
	// larger arithmetic circuit.
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	cin := c.Input("cin")
	s, carry := c.FullAdder(a, b, cin)
	c.MarkOutput(s, "sum")
	c.MarkOutput(carry, "carry")
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	eq, err := Equivalent(c, got, 16)
	if err != nil || !eq {
		t.Fatalf("full adder round trip: %v %v", eq, err)
	}
}

func TestSequentialRoundTrip(t *testing.T) {
	// Toggle FF with an XOR against an enable input.
	c := New()
	en := c.Input("en")
	q := c.DFF()
	c.SetName(q, "q")
	d := c.Xor(q, en)
	if err := c.SetD(q, d); err != nil {
		t.Fatal(err)
	}
	c.MarkOutput(q, "q")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFFs() != 1 {
		t.Fatalf("FFs = %d", got.NumFFs())
	}
	// Behavioural equivalence over a clocked sequence.
	s1, err := NewSequentialSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSequentialSimulator(got)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range []uint64{1, 1, 0, 1, 0, 0, 1, 1} {
		o1, err := s1.Step([]uint64{in})
		if err != nil {
			t.Fatal(err)
		}
		o2, err := s2.Step([]uint64{in})
		if err != nil {
			t.Fatal(err)
		}
		if o1[0]&1 != o2[0]&1 {
			t.Fatalf("cycle %d: %d vs %d", i, o1[0]&1, o2[0]&1)
		}
	}
}

func TestReadSequentialErrors(t *testing.T) {
	cases := map[string]string{
		"dff arity":    "dff\n",
		"dff dup":      "input a\ndff a\n",
		"bind arity":   "dff q\nbind q\n",
		"bind unknown": "dff q\nbind q nowhere\n",
		"bind non-ff":  "input a\ninput b\nbind a b\n",
		"unbound":      "dff q\noutput q\n",
	}
	for name, text := range cases {
		c, err := Read(strings.NewReader(text))
		if err == nil {
			// "unbound" parses but must fail sequential validation.
			if _, serr := NewSequentialSimulator(c); serr == nil {
				t.Errorf("%s: accepted %q", name, text)
			}
		}
	}
}
