package netlist

import (
	"math/rand"
	"testing"
)

// randomCircuit builds a random multi-level circuit exercising every
// gate type, including wide (3+ input) forms.
func randomCircuit(rng *rand.Rand, inputs, gates int) *Circuit {
	c := New()
	nets := make([]NetID, 0, inputs+gates)
	for i := 0; i < inputs; i++ {
		nets = append(nets, c.Input(""))
	}
	pick := func() NetID { return nets[rng.Intn(len(nets))] }
	for g := 0; g < gates; g++ {
		var n NetID
		switch rng.Intn(11) {
		case 0:
			n = c.And(pick(), pick())
		case 1:
			n = c.Or(pick(), pick())
		case 2:
			n = c.Nand(pick(), pick())
		case 3:
			n = c.Nor(pick(), pick())
		case 4:
			n = c.Xor(pick(), pick())
		case 5:
			n = c.Xnor(pick(), pick())
		case 6:
			n = c.Not(pick())
		case 7:
			n = c.Buf(pick())
		case 8:
			n = c.And(pick(), pick(), pick(), pick())
		case 9:
			n = c.Const(rng.Intn(2) == 0)
		default:
			n = c.Xor(pick(), pick(), pick())
		}
		nets = append(nets, n)
	}
	for i := 0; i < 8; i++ {
		c.MarkOutput(nets[len(nets)-1-i], "")
	}
	return c
}

// TestCompiledMatchesInterpreter drives random circuits with random
// fault sets through the compiled instruction stream and the Gate-
// slice interpreter and requires identical outputs word for word.
func TestCompiledMatchesInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		c := randomCircuit(rng, 6+rng.Intn(6), 40+rng.Intn(120))
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		compiled := NewSimulator(c)
		if !compiled.Compiled() {
			t.Fatal("builder circuit did not compile")
		}
		interp := NewSimulator(c)
		interp.prog = nil // force the Gate-slice fallback
		var faults []Fault
		for i := 0; i < rng.Intn(6); i++ {
			f := Fault{Net: NetID(rng.Intn(c.NumNets())), Stuck: StuckValue(rng.Intn(2))}
			faults = append(faults, f)
		}
		for _, f := range faults {
			mask := rng.Uint64()
			if err := compiled.InjectFault(f, mask); err != nil {
				t.Fatal(err)
			}
			if err := interp.InjectFault(f, mask); err != nil {
				t.Fatal(err)
			}
		}
		ins := make([]uint64, len(c.Inputs))
		for step := 0; step < 5; step++ {
			for i := range ins {
				ins[i] = rng.Uint64()
			}
			a, err := compiled.Run(ins)
			if err != nil {
				t.Fatal(err)
			}
			b, err := interp.Run(ins)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d step %d: output %d differs: compiled %x interp %x",
						trial, step, i, a[i], b[i])
				}
			}
		}
		// Clearing faults must restore agreement with a fresh machine.
		compiled.ClearFaults()
		fresh := NewSimulator(c)
		for i := range ins {
			ins[i] = rng.Uint64()
		}
		a, err := compiled.Run(ins)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.Run(ins)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: ClearFaults left state behind on output %d", trial, i)
			}
		}
	}
}

// TestConeReplayMatchesFullRun checks the differential path at the
// netlist level: a fault batch replayed against packed fault-free
// baseline snapshots must reproduce the full faulty run on every net
// the cone claims, and the cone must claim every net that differs.
// Baseline inputs are broadcast words (the SnapshotBits precondition,
// and how campaign baselines are actually driven); the faulty machine
// sees the same broadcast stimulus with per-lane fault masks.
func TestConeReplayMatchesFullRun(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		c := randomCircuit(rng, 6+rng.Intn(6), 40+rng.Intn(120))
		good := NewSimulator(c)
		full := NewSimulator(c)
		diff := NewSimulator(c)
		var faults []Fault
		for i := 0; i < 1+rng.Intn(8); i++ {
			faults = append(faults, Fault{
				Net: NetID(rng.Intn(c.NumNets())), Stuck: StuckValue(rng.Intn(2)),
			})
		}
		for i, f := range faults {
			mask := uint64(1) << uint(1+i%63)
			if err := full.InjectFault(f, mask); err != nil {
				t.Fatal(err)
			}
			if err := diff.InjectFault(f, mask); err != nil {
				t.Fatal(err)
			}
		}
		cone := diff.BuildCone()
		if cone == nil {
			t.Fatal("no cone on a compiled circuit")
		}
		base := make([]uint64, BitWords(c.NumNets()))
		ins := make([]uint64, len(c.Inputs))
		for step := 0; step < 5; step++ {
			for i := range ins {
				ins[i] = -(rng.Uint64() & 1) // broadcast: all lanes agree
			}
			if _, err := good.Run(ins); err != nil {
				t.Fatal(err)
			}
			good.SnapshotBits(base)
			want, err := full.Run(ins)
			if err != nil {
				t.Fatal(err)
			}
			diff.RunCone(cone, base)
			inCone := make(map[int]bool)
			for _, i := range cone.OutputIndices() {
				inCone[i] = true
			}
			for i, n := range c.Outputs {
				got := baseWord(base, int32(n))
				if inCone[i] {
					got = diff.Value(n)
				}
				if got != want[i] {
					t.Fatalf("trial %d step %d output %d: cone %x full %x (inCone %v)",
						trial, step, i, got, want[i], inCone[i])
				}
			}
		}
	}
}
