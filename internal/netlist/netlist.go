// Package netlist provides the gate-level hardware substrate used by
// mstx's digital-filter fault simulation: a combinational netlist of
// boolean gates with named nets, a builder API, structural validation,
// and a 64-way bit-parallel simulator with single-stuck-at fault
// injection (the classic PPSFP scheme — one word lane per pattern, or
// one lane per fault).
//
// Sequential circuits are supported through D flip-flops (DFF/SetD)
// and the SequentialSimulator; the digital package builds the FIR both
// ways — combinationally, presenting each delayed sample on its own
// primary-input bus, and sequentially with the delay line in-netlist —
// and proves them equivalent.
package netlist

import (
	"fmt"
)

// NetID identifies a net (a wire) in a circuit. Net 0 is valid.
type NetID int

// GateType enumerates the supported boolean gate functions.
type GateType int

// Gate functions. And/Or/Nand/Nor/Xor/Xnor take two or more inputs;
// Not and Buf take exactly one; Const0/Const1 take none.
const (
	And GateType = iota
	Or
	Nand
	Nor
	Xor
	Xnor
	Not
	Buf
	Const0
	Const1
)

// String returns the conventional gate name.
func (g GateType) String() string {
	switch g {
	case And:
		return "AND"
	case Or:
		return "OR"
	case Nand:
		return "NAND"
	case Nor:
		return "NOR"
	case Xor:
		return "XOR"
	case Xnor:
		return "XNOR"
	case Not:
		return "NOT"
	case Buf:
		return "BUF"
	case Const0:
		return "CONST0"
	case Const1:
		return "CONST1"
	default:
		return fmt.Sprintf("GateType(%d)", int(g))
	}
}

// arity returns (min, max) input counts for the gate type; max<0 means
// unbounded.
func (g GateType) arity() (int, int) {
	switch g {
	case Not, Buf:
		return 1, 1
	case Const0, Const1:
		return 0, 0
	case Xor, Xnor:
		return 2, -1
	default:
		return 2, -1
	}
}

// Gate is one logic gate: a function, its input nets, and the single
// net it drives.
type Gate struct {
	Type GateType
	In   []NetID
	Out  NetID
}

// Circuit is a combinational gate-level netlist. Gates are stored in
// the order they were created, which the builder guarantees to be a
// valid topological order (a gate's inputs are always created before
// the gate). Primary inputs are nets driven by no gate.
type Circuit struct {
	// Inputs lists the primary-input nets in declaration order.
	Inputs []NetID
	// Outputs lists the primary-output nets in declaration order.
	Outputs []NetID
	// Gates lists all gates in topological order.
	Gates []Gate
	// FFs lists the flip-flops (see sequential.go); empty for purely
	// combinational circuits.
	FFs []FF

	numNets int
	names   map[NetID]string
	driver  map[NetID]int // net -> index into Gates; absent for PIs
	ffOfQ   map[NetID]int // Q net -> index into FFs
}

// New returns an empty circuit ready for building.
func New() *Circuit {
	return &Circuit{
		names:  make(map[NetID]string),
		driver: make(map[NetID]int),
		ffOfQ:  make(map[NetID]int),
	}
}

// NumNets returns the total number of nets allocated.
func (c *Circuit) NumNets() int { return c.numNets }

// NumGates returns the number of gates in the circuit.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// newNet allocates a fresh net.
func (c *Circuit) newNet() NetID {
	id := NetID(c.numNets)
	c.numNets++
	return id
}

// Input declares a primary input net with the given name.
func (c *Circuit) Input(name string) NetID {
	n := c.newNet()
	c.Inputs = append(c.Inputs, n)
	if name != "" {
		c.names[n] = name
	}
	return n
}

// MarkOutput declares net n to be a primary output, optionally naming
// it. A net may be both an internal net and an output.
func (c *Circuit) MarkOutput(n NetID, name string) {
	c.Outputs = append(c.Outputs, n)
	if name != "" {
		c.names[n] = name
	}
}

// Name returns the declared name of net n, or "n<ID>" when unnamed.
func (c *Circuit) Name(n NetID) string {
	if s, ok := c.names[n]; ok {
		return s
	}
	return fmt.Sprintf("n%d", int(n))
}

// SetName assigns a diagnostic name to net n.
func (c *Circuit) SetName(n NetID, name string) {
	c.names[n] = name
}

// addGate validates and appends a gate, returning its output net.
func (c *Circuit) addGate(t GateType, in ...NetID) NetID {
	lo, hi := t.arity()
	if len(in) < lo || (hi >= 0 && len(in) > hi) {
		panic(fmt.Sprintf("netlist: %v gate with %d inputs", t, len(in)))
	}
	for _, n := range in {
		if int(n) < 0 || int(n) >= c.numNets {
			panic(fmt.Sprintf("netlist: %v gate input references unknown net %d", t, int(n)))
		}
	}
	out := c.newNet()
	c.Gates = append(c.Gates, Gate{Type: t, In: append([]NetID(nil), in...), Out: out})
	c.driver[out] = len(c.Gates) - 1
	return out
}

// And adds an AND gate over the given nets.
func (c *Circuit) And(in ...NetID) NetID { return c.addGate(And, in...) }

// Or adds an OR gate over the given nets.
func (c *Circuit) Or(in ...NetID) NetID { return c.addGate(Or, in...) }

// Nand adds a NAND gate over the given nets.
func (c *Circuit) Nand(in ...NetID) NetID { return c.addGate(Nand, in...) }

// Nor adds a NOR gate over the given nets.
func (c *Circuit) Nor(in ...NetID) NetID { return c.addGate(Nor, in...) }

// Xor adds an XOR (odd parity) gate over the given nets.
func (c *Circuit) Xor(in ...NetID) NetID { return c.addGate(Xor, in...) }

// Xnor adds an XNOR (even parity) gate over the given nets.
func (c *Circuit) Xnor(in ...NetID) NetID { return c.addGate(Xnor, in...) }

// Not adds an inverter.
func (c *Circuit) Not(in NetID) NetID { return c.addGate(Not, in) }

// Buf adds a buffer (identity). Buffers give fanout stems distinct
// fault sites when a builder wants them.
func (c *Circuit) Buf(in NetID) NetID { return c.addGate(Buf, in) }

// Const adds a constant-0 or constant-1 driver.
func (c *Circuit) Const(v bool) NetID {
	if v {
		return c.addGate(Const1)
	}
	return c.addGate(Const0)
}

// Mux adds a 2:1 multiplexer: out = sel ? a : b, built from basic
// gates (3 gates + inverter).
func (c *Circuit) Mux(sel, a, b NetID) NetID {
	ns := c.Not(sel)
	t1 := c.And(sel, a)
	t2 := c.And(ns, b)
	return c.Or(t1, t2)
}

// HalfAdder adds a half adder; returns (sum, carry).
func (c *Circuit) HalfAdder(a, b NetID) (sum, carry NetID) {
	return c.Xor(a, b), c.And(a, b)
}

// FullAdder adds a full adder; returns (sum, carry).
func (c *Circuit) FullAdder(a, b, cin NetID) (sum, carry NetID) {
	s1 := c.Xor(a, b)
	sum = c.Xor(s1, cin)
	c1 := c.And(a, b)
	c2 := c.And(s1, cin)
	carry = c.Or(c1, c2)
	return sum, carry
}

// Driver returns the index of the gate driving net n and true, or
// (0, false) when n is a primary input or constant-less net.
func (c *Circuit) Driver(n NetID) (int, bool) {
	g, ok := c.driver[n]
	return g, ok
}

// Validate checks structural sanity: every gate input is driven by an
// earlier gate or is a primary input, every output net exists, and no
// net has two drivers. The builder maintains these invariants; this
// re-checks circuits that were assembled or mutated by hand.
func (c *Circuit) Validate() error {
	isPI := make(map[NetID]bool, len(c.Inputs))
	for _, n := range c.Inputs {
		if isPI[n] {
			return fmt.Errorf("netlist: duplicate primary input %d", int(n))
		}
		isPI[n] = true
	}
	// Flip-flop outputs behave like primary inputs within a cycle.
	for _, ff := range c.FFs {
		if isPI[ff.Q] {
			return fmt.Errorf("netlist: flip-flop Q %d collides with an input", int(ff.Q))
		}
		isPI[ff.Q] = true
	}
	driven := make(map[NetID]bool, len(c.Gates))
	for gi, g := range c.Gates {
		lo, hi := g.Type.arity()
		if len(g.In) < lo || (hi >= 0 && len(g.In) > hi) {
			return fmt.Errorf("netlist: gate %d (%v) has %d inputs", gi, g.Type, len(g.In))
		}
		for _, in := range g.In {
			if int(in) < 0 || int(in) >= c.numNets {
				return fmt.Errorf("netlist: gate %d input net %d out of range", gi, int(in))
			}
			if !isPI[in] && !driven[in] {
				return fmt.Errorf("netlist: gate %d input net %d used before it is driven (not topological)", gi, int(in))
			}
		}
		if int(g.Out) < 0 || int(g.Out) >= c.numNets {
			return fmt.Errorf("netlist: gate %d output net %d out of range", gi, int(g.Out))
		}
		if driven[g.Out] || isPI[g.Out] {
			return fmt.Errorf("netlist: net %d has multiple drivers", int(g.Out))
		}
		driven[g.Out] = true
	}
	for _, n := range c.Outputs {
		if int(n) < 0 || int(n) >= c.numNets {
			return fmt.Errorf("netlist: output net %d out of range", int(n))
		}
		if !isPI[n] && !driven[n] {
			return fmt.Errorf("netlist: output net %d is undriven", int(n))
		}
	}
	return nil
}

// Levels returns, for each gate, its logic depth (primary inputs are
// depth 0; a gate's level is 1 + max level of its input drivers).
func (c *Circuit) Levels() []int {
	netLevel := make([]int, c.numNets)
	levels := make([]int, len(c.Gates))
	for gi, g := range c.Gates {
		lvl := 0
		for _, in := range g.In {
			if netLevel[in] > lvl {
				lvl = netLevel[in]
			}
		}
		levels[gi] = lvl + 1
		netLevel[g.Out] = lvl + 1
	}
	return levels
}

// Depth returns the maximum logic depth of the circuit.
func (c *Circuit) Depth() int {
	max := 0
	for _, l := range c.Levels() {
		if l > max {
			max = l
		}
	}
	return max
}

// FanoutCounts returns how many gate inputs each net feeds (primary
// outputs are not counted).
func (c *Circuit) FanoutCounts() []int {
	fo := make([]int, c.numNets)
	for _, g := range c.Gates {
		for _, in := range g.In {
			fo[in]++
		}
	}
	return fo
}

// Stats summarizes the circuit for reports.
type Stats struct {
	Inputs  int
	Outputs int
	Gates   int
	Nets    int
	Depth   int
}

// Stats returns circuit size statistics.
func (c *Circuit) Stats() Stats {
	return Stats{
		Inputs:  len(c.Inputs),
		Outputs: len(c.Outputs),
		Gates:   len(c.Gates),
		Nets:    c.numNets,
		Depth:   c.Depth(),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("%d PIs, %d POs, %d gates, %d nets, depth %d",
		s.Inputs, s.Outputs, s.Gates, s.Nets, s.Depth)
}
