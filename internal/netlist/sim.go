package netlist

import (
	"fmt"
)

// StuckValue is the value a stuck-at fault forces on its net.
type StuckValue uint8

// Stuck-at polarities.
const (
	StuckAt0 StuckValue = 0
	StuckAt1 StuckValue = 1
)

// String returns "SA0" or "SA1".
func (v StuckValue) String() string {
	if v == StuckAt1 {
		return "SA1"
	}
	return "SA0"
}

// Fault is a single stuck-at fault on a net (a stem fault: it affects
// every fanout of the net).
type Fault struct {
	Net   NetID
	Stuck StuckValue
}

// String formats the fault as "net:SA0".
func (f Fault) String() string {
	return fmt.Sprintf("n%d:%s", int(f.Net), f.Stuck)
}

// Simulator evaluates a circuit 64 patterns (or fault lanes) at a
// time. Each net carries a uint64 whose bit b is the net's value in
// lane b. The zero lane is conventionally the fault-free machine when
// fault-parallel simulation is used.
type Simulator struct {
	c      *Circuit
	values []uint64
	// Per-net fault masks for the active fault set. forced0/forced1
	// give the lanes in which the net is forced low/high.
	forced0 []uint64
	forced1 []uint64
	// dirtyNets tracks nets with nonzero masks so Clear is O(active).
	dirtyNets []NetID
	// prog is the compiled instruction stream (see compiled.go); nil
	// when the circuit holds a gate type the compiler does not know,
	// which routes runGates through the interpreting fallback.
	prog *program
}

// NewSimulator returns a simulator for c. The circuit must be valid
// (builder-produced circuits always are).
func NewSimulator(c *Circuit) *Simulator {
	return &Simulator{
		c:       c,
		values:  make([]uint64, c.NumNets()),
		forced0: make([]uint64, c.NumNets()),
		forced1: make([]uint64, c.NumNets()),
		prog:    compileProgram(c),
	}
}

// Circuit returns the simulated circuit.
func (s *Simulator) Circuit() *Circuit { return s.c }

// Compiled reports whether the circuit was lowered to the compiled
// instruction stream (required for cone-differential replay).
func (s *Simulator) Compiled() bool { return s.prog != nil }

// ClearFaults removes all injected faults.
func (s *Simulator) ClearFaults() {
	for _, n := range s.dirtyNets {
		s.forced0[n] = 0
		s.forced1[n] = 0
		if s.prog != nil {
			s.prog.setForced(n, false)
		}
	}
	s.dirtyNets = s.dirtyNets[:0]
}

// InjectFault forces fault f in the lanes given by laneMask. Multiple
// faults may share lanes (multiple stuck-at modeling) or use disjoint
// lanes (parallel single-fault simulation).
func (s *Simulator) InjectFault(f Fault, laneMask uint64) error {
	if int(f.Net) < 0 || int(f.Net) >= s.c.NumNets() {
		return fmt.Errorf("netlist: fault on unknown net %d", int(f.Net))
	}
	if s.forced0[f.Net] == 0 && s.forced1[f.Net] == 0 {
		s.dirtyNets = append(s.dirtyNets, f.Net)
	}
	if s.prog != nil {
		s.prog.setForced(f.Net, true)
	}
	if f.Stuck == StuckAt0 {
		s.forced0[f.Net] |= laneMask
	} else {
		s.forced1[f.Net] |= laneMask
	}
	return nil
}

// apply imposes the active fault masks of net n on value v.
func (s *Simulator) apply(n NetID, v uint64) uint64 {
	return (v &^ s.forced0[n]) | s.forced1[n]
}

// Run evaluates the circuit for the given primary-input words, one
// word per declared input, and returns one word per declared output.
// Bit b of every word belongs to lane b.
func (s *Simulator) Run(inputs []uint64) ([]uint64, error) {
	if len(inputs) != len(s.c.Inputs) {
		return nil, fmt.Errorf("netlist: got %d input words, circuit has %d inputs",
			len(inputs), len(s.c.Inputs))
	}
	for i, n := range s.c.Inputs {
		s.values[n] = s.apply(n, inputs[i])
	}
	if err := s.runGates(); err != nil {
		return nil, err
	}
	out := make([]uint64, len(s.c.Outputs))
	for i, n := range s.c.Outputs {
		out[i] = s.values[n]
	}
	return out, nil
}

// runGates evaluates the combinational gates in topological order,
// applying fault overrides. The compiled stream is the hot path; the
// Gate-slice interpreter below remains as the fallback for circuits
// the compiler refused (and is the reference the compiled path is
// tested against).
func (s *Simulator) runGates() error {
	if s.prog != nil {
		s.runCompiled()
		return nil
	}
	for _, g := range s.c.Gates {
		var v uint64
		switch g.Type {
		case And, Nand:
			v = ^uint64(0)
			for _, in := range g.In {
				v &= s.values[in]
			}
			if g.Type == Nand {
				v = ^v
			}
		case Or, Nor:
			for _, in := range g.In {
				v |= s.values[in]
			}
			if g.Type == Nor {
				v = ^v
			}
		case Xor, Xnor:
			for _, in := range g.In {
				v ^= s.values[in]
			}
			if g.Type == Xnor {
				v = ^v
			}
		case Not:
			v = ^s.values[g.In[0]]
		case Buf:
			v = s.values[g.In[0]]
		case Const0:
			v = 0
		case Const1:
			v = ^uint64(0)
		default:
			return fmt.Errorf("netlist: unknown gate type %v", g.Type)
		}
		s.values[g.Out] = s.apply(g.Out, v)
	}
	return nil
}

// Value returns the current word on net n after the last Run.
func (s *Simulator) Value(n NetID) uint64 { return s.values[n] }

// RunBool evaluates a single boolean pattern and returns boolean
// outputs. It is a convenience wrapper (lane 0 of a parallel run) used
// as an oracle in tests and by callers that need one pattern.
func (s *Simulator) RunBool(inputs []bool) ([]bool, error) {
	words := make([]uint64, len(inputs))
	for i, b := range inputs {
		if b {
			words[i] = 1
		}
	}
	out, err := s.Run(words)
	if err != nil {
		return nil, err
	}
	res := make([]bool, len(out))
	for i, w := range out {
		res[i] = w&1 != 0
	}
	return res, nil
}

// AllFaults enumerates the full single-stuck-at universe of the
// circuit: SA0 and SA1 on every net (primary inputs and every gate
// output). This is the uncollapsed fault list.
func AllFaults(c *Circuit) []Fault {
	faults := make([]Fault, 0, 2*c.NumNets())
	seen := make(map[NetID]bool, c.NumNets())
	add := func(n NetID) {
		if seen[n] {
			return
		}
		seen[n] = true
		faults = append(faults, Fault{Net: n, Stuck: StuckAt0}, Fault{Net: n, Stuck: StuckAt1})
	}
	for _, n := range c.Inputs {
		add(n)
	}
	for _, ff := range c.FFs {
		add(ff.Q)
	}
	for _, g := range c.Gates {
		add(g.Out)
	}
	return faults
}

// CollapseFaults performs classic structural equivalence collapsing on
// a stem-fault universe:
//
//   - a BUF output fault is equivalent to the same fault on its input;
//   - a NOT output fault is equivalent to the opposite fault on its
//     input;
//   - an AND/NAND output SA0/SA1 (respectively) is equivalent to SA0 on
//     any single input when that input has no other fanout — we keep
//     the input-side representative when the input net feeds only this
//     gate; dually for OR/NOR with SA1.
//
// The returned list is a subset of faults whose detection implies
// detection of every removed fault.
func CollapseFaults(c *Circuit, faults []Fault) []Fault {
	fanout := c.FanoutCounts()
	// Map each net fault to its representative via union-find-ish
	// chaining along equivalence edges.
	type key struct {
		n NetID
		v StuckValue
	}
	parent := make(map[key]key)
	var find func(k key) key
	find = func(k key) key {
		p, ok := parent[k]
		if !ok {
			return k
		}
		r := find(p)
		parent[k] = r
		return r
	}
	union := func(child, root key) {
		cr, rr := find(child), find(root)
		if cr != rr {
			parent[cr] = rr
		}
	}
	for _, g := range c.Gates {
		switch g.Type {
		case Buf:
			union(key{g.Out, StuckAt0}, key{g.In[0], StuckAt0})
			union(key{g.Out, StuckAt1}, key{g.In[0], StuckAt1})
		case Not:
			union(key{g.Out, StuckAt0}, key{g.In[0], StuckAt1})
			union(key{g.Out, StuckAt1}, key{g.In[0], StuckAt0})
		case And, Nand:
			outV := StuckAt0
			if g.Type == Nand {
				outV = StuckAt1
			}
			// Controlling-value faults on single-fanout inputs are
			// equivalent to the output fault.
			for _, in := range g.In {
				if fanout[in] == 1 {
					union(key{in, StuckAt0}, key{g.Out, outV})
				}
			}
		case Or, Nor:
			outV := StuckAt1
			if g.Type == Nor {
				outV = StuckAt0
			}
			for _, in := range g.In {
				if fanout[in] == 1 {
					union(key{in, StuckAt1}, key{g.Out, outV})
				}
			}
		}
	}
	kept := make([]Fault, 0, len(faults))
	seen := make(map[key]bool)
	for _, f := range faults {
		r := find(key{f.Net, f.Stuck})
		if seen[r] {
			continue
		}
		seen[r] = true
		kept = append(kept, Fault{Net: r.n, Stuck: r.v})
	}
	return kept
}
