package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Write serializes the circuit in the textual netlist format:
//
//	# comment
//	input <name>
//	dff <q>
//	<GATE> <out> <in> [<in> ...]
//	bind <q> <d>
//	output <net> [<label>]
//
// Net names are the circuit's declared names (Name). Flip-flops are
// declared up front (their Q nets may feed gates) and bound to their
// D nets at the end, allowing feedback. The format round-trips
// through Read.
func Write(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# netlist: %s\n", c.Stats())
	for _, n := range c.Inputs {
		fmt.Fprintf(bw, "input %s\n", c.Name(n))
	}
	for _, ff := range c.FFs {
		fmt.Fprintf(bw, "dff %s\n", c.Name(ff.Q))
	}
	for _, g := range c.Gates {
		fmt.Fprintf(bw, "%s %s", g.Type, c.Name(g.Out))
		for _, in := range g.In {
			fmt.Fprintf(bw, " %s", c.Name(in))
		}
		fmt.Fprintln(bw)
	}
	for _, ff := range c.FFs {
		if ff.bound {
			fmt.Fprintf(bw, "bind %s %s\n", c.Name(ff.Q), c.Name(ff.D))
		}
	}
	for _, n := range c.Outputs {
		fmt.Fprintf(bw, "output %s\n", c.Name(n))
	}
	return bw.Flush()
}

// gateTypeByName maps the serialized names back to gate types.
var gateTypeByName = map[string]GateType{
	"AND": And, "OR": Or, "NAND": Nand, "NOR": Nor,
	"XOR": Xor, "XNOR": Xnor, "NOT": Not, "BUF": Buf,
	"CONST0": Const0, "CONST1": Const1,
}

// Read parses the textual netlist format produced by Write and
// returns the reconstructed circuit. The result is validated.
func Read(r io.Reader) (*Circuit, error) {
	c := New()
	nets := make(map[string]NetID)
	resolve := func(name string, line int) (NetID, error) {
		n, ok := nets[name]
		if !ok {
			return 0, fmt.Errorf("netlist: line %d: unknown net %q", line, name)
		}
		return n, nil
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToLower(fields[0]) {
		case "input":
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist: line %d: input wants one name", lineNo)
			}
			if _, dup := nets[fields[1]]; dup {
				return nil, fmt.Errorf("netlist: line %d: duplicate net %q", lineNo, fields[1])
			}
			nets[fields[1]] = c.Input(fields[1])
		case "dff":
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist: line %d: dff wants one name", lineNo)
			}
			if _, dup := nets[fields[1]]; dup {
				return nil, fmt.Errorf("netlist: line %d: duplicate net %q", lineNo, fields[1])
			}
			q := c.DFF()
			c.SetName(q, fields[1])
			nets[fields[1]] = q
		case "bind":
			if len(fields) != 3 {
				return nil, fmt.Errorf("netlist: line %d: bind wants <q> <d>", lineNo)
			}
			q, err := resolve(fields[1], lineNo)
			if err != nil {
				return nil, err
			}
			d, err := resolve(fields[2], lineNo)
			if err != nil {
				return nil, err
			}
			if err := c.SetD(q, d); err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
			}
		case "output":
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist: line %d: output wants one net", lineNo)
			}
			n, err := resolve(fields[1], lineNo)
			if err != nil {
				return nil, err
			}
			c.MarkOutput(n, fields[1])
		default:
			gt, ok := gateTypeByName[strings.ToUpper(fields[0])]
			if !ok {
				return nil, fmt.Errorf("netlist: line %d: unknown gate %q", lineNo, fields[0])
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("netlist: line %d: gate wants an output net", lineNo)
			}
			outName := fields[1]
			if _, dup := nets[outName]; dup {
				return nil, fmt.Errorf("netlist: line %d: net %q driven twice", lineNo, outName)
			}
			ins := make([]NetID, 0, len(fields)-2)
			for _, name := range fields[2:] {
				n, err := resolve(name, lineNo)
				if err != nil {
					return nil, err
				}
				ins = append(ins, n)
			}
			lo, hi := gt.arity()
			if len(ins) < lo || (hi >= 0 && len(ins) > hi) {
				return nil, fmt.Errorf("netlist: line %d: %s with %d inputs", lineNo, fields[0], len(ins))
			}
			var out NetID
			if gt == Const0 {
				out = c.Const(false)
			} else if gt == Const1 {
				out = c.Const(true)
			} else {
				out = c.addGate(gt, ins...)
			}
			nets[outName] = out
			c.SetName(out, outName)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: reading line %d: %w", lineNo+1, err)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("netlist: parsed circuit invalid: %w", err)
	}
	return c, nil
}

// Equivalent checks functional equivalence of two circuits by
// exhaustive simulation up to maxInputs primary inputs (beyond that it
// refuses rather than silently sampling). Inputs and outputs are
// matched positionally.
func Equivalent(a, b *Circuit, maxInputs int) (bool, error) {
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		return false, nil
	}
	n := len(a.Inputs)
	if n > maxInputs {
		return false, fmt.Errorf("netlist: %d inputs exceeds exhaustive limit %d", n, maxInputs)
	}
	sa := NewSimulator(a)
	sb := NewSimulator(b)
	// 64 patterns per pass.
	total := 1 << uint(n)
	for base := 0; base < total; base += 64 {
		wordsA := make([]uint64, n)
		for lane := 0; lane < 64 && base+lane < total; lane++ {
			v := base + lane
			for i := 0; i < n; i++ {
				if v>>uint(i)&1 == 1 {
					wordsA[i] |= 1 << uint(lane)
				}
			}
		}
		outA, err := sa.Run(wordsA)
		if err != nil {
			return false, err
		}
		outB, err := sb.Run(wordsA)
		if err != nil {
			return false, err
		}
		lanes := total - base
		if lanes > 64 {
			lanes = 64
		}
		mask := ^uint64(0)
		if lanes < 64 {
			mask = 1<<uint(lanes) - 1
		}
		for i := range outA {
			if (outA[i]^outB[i])&mask != 0 {
				return false, nil
			}
		}
	}
	return true, nil
}

// SortedNetNames returns all declared net names in order — a helper
// for diffing two netlists textually.
func (c *Circuit) SortedNetNames() []string {
	names := make([]string, 0, len(c.names))
	for _, s := range c.names {
		names = append(names, s)
	}
	sort.Strings(names)
	return names
}
