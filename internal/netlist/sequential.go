package netlist

import (
	"fmt"
)

// FF is one D flip-flop: on every clock tick the value on D is loaded
// onto Q. Q nets behave like primary inputs to the combinational
// logic within a cycle; D nets are ordinary combinational nets.
type FF struct {
	// D is the data input net (bound with SetD).
	D NetID
	// Q is the state output net.
	Q NetID
	// bound records whether SetD has run.
	bound bool
}

// DFF allocates a flip-flop and returns its Q net. The Q net may be
// used immediately (enabling feedback); bind the data input later
// with SetD. Unbound flip-flops fail Validate.
func (c *Circuit) DFF() NetID {
	q := c.newNet()
	c.FFs = append(c.FFs, FF{Q: q})
	c.ffOfQ[q] = len(c.FFs) - 1
	return q
}

// SetD binds the data input of the flip-flop owning Q.
func (c *Circuit) SetD(q, d NetID) error {
	idx, ok := c.ffOfQ[q]
	if !ok {
		return fmt.Errorf("netlist: net %d is not a flip-flop output", int(q))
	}
	if c.FFs[idx].bound {
		return fmt.Errorf("netlist: flip-flop %d already bound", idx)
	}
	if int(d) < 0 || int(d) >= c.numNets {
		return fmt.Errorf("netlist: SetD with unknown net %d", int(d))
	}
	c.FFs[idx].D = d
	c.FFs[idx].bound = true
	return nil
}

// NumFFs returns the flip-flop count.
func (c *Circuit) NumFFs() int { return len(c.FFs) }

// validateSequential extends Validate for circuits with state.
func (c *Circuit) validateSequential() error {
	for i, ff := range c.FFs {
		if !ff.bound {
			return fmt.Errorf("netlist: flip-flop %d (Q=n%d) has no D binding", i, int(ff.Q))
		}
	}
	return nil
}

// SequentialSimulator clocks a netlist with flip-flops, with the same
// 64-lane parallel semantics and fault injection as Simulator. Q nets
// carry state across Step calls; a stuck-at fault on a Q net models a
// defective register output.
type SequentialSimulator struct {
	sim   *Simulator
	state []uint64 // per FF
}

// NewSequentialSimulator returns a simulator with all state cleared.
// The circuit must pass Validate plus have every flip-flop bound.
func NewSequentialSimulator(c *Circuit) (*SequentialSimulator, error) {
	if err := c.validateSequential(); err != nil {
		return nil, err
	}
	return &SequentialSimulator{
		sim:   NewSimulator(c),
		state: make([]uint64, len(c.FFs)),
	}, nil
}

// Reset clears all flip-flops (fault injections persist).
func (s *SequentialSimulator) Reset() {
	for i := range s.state {
		s.state[i] = 0
	}
}

// ClearFaults removes injected faults.
func (s *SequentialSimulator) ClearFaults() { s.sim.ClearFaults() }

// InjectFault injects a stuck-at fault in the given lanes; faults on
// Q nets are applied when state is presented each cycle.
func (s *SequentialSimulator) InjectFault(f Fault, laneMask uint64) error {
	return s.sim.InjectFault(f, laneMask)
}

// Step evaluates one clock cycle: present state and inputs, settle
// the combinational logic, return the primary outputs, then load
// every flip-flop from its D.
func (s *SequentialSimulator) Step(inputs []uint64) ([]uint64, error) {
	c := s.sim.c
	if len(inputs) != len(c.Inputs) {
		return nil, fmt.Errorf("netlist: got %d input words, circuit has %d inputs",
			len(inputs), len(c.Inputs))
	}
	// Present PIs and state (with fault overrides).
	for i, n := range c.Inputs {
		s.sim.values[n] = s.sim.apply(n, inputs[i])
	}
	for i, ff := range c.FFs {
		s.sim.values[ff.Q] = s.sim.apply(ff.Q, s.state[i])
	}
	if err := s.sim.runGates(); err != nil {
		return nil, err
	}
	out := make([]uint64, len(c.Outputs))
	for i, n := range c.Outputs {
		out[i] = s.sim.values[n]
	}
	// Clock edge: capture D into state.
	for i, ff := range c.FFs {
		s.state[i] = s.sim.values[ff.D]
	}
	return out, nil
}

// Value exposes the current word on a net after the last Step.
func (s *SequentialSimulator) Value(n NetID) uint64 { return s.sim.values[n] }
