package netlist

import (
	"testing"
)

// buildShiftRegister builds a 3-stage shift register: in -> q0 -> q1
// -> q2, outputting q2.
func buildShiftRegister(t *testing.T) (*Circuit, NetID) {
	t.Helper()
	c := New()
	in := c.Input("in")
	q0 := c.DFF()
	q1 := c.DFF()
	q2 := c.DFF()
	if err := c.SetD(q0, in); err != nil {
		t.Fatal(err)
	}
	if err := c.SetD(q1, q0); err != nil {
		t.Fatal(err)
	}
	if err := c.SetD(q2, q1); err != nil {
		t.Fatal(err)
	}
	c.MarkOutput(q2, "out")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c, q1
}

func TestShiftRegister(t *testing.T) {
	c, _ := buildShiftRegister(t)
	sim, err := NewSequentialSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	seq := []uint64{1, 0, 1, 1, 0, 0, 1}
	var got []uint64
	for _, v := range seq {
		out, err := sim.Step([]uint64{v})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, out[0]&1)
	}
	// Output is the input delayed by 3 cycles (state presented before
	// the clock edge).
	want := []uint64{0, 0, 0, 1, 0, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle %d: out %d, want %d (full %v)", i, got[i], want[i], got)
		}
	}
}

func TestSequentialReset(t *testing.T) {
	c, _ := buildShiftRegister(t)
	sim, err := NewSequentialSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := sim.Step([]uint64{^uint64(0)}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Reset()
	out, err := sim.Step([]uint64{0})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 {
		t.Fatal("state survived Reset")
	}
}

func TestSequentialFaultOnQ(t *testing.T) {
	c, q1 := buildShiftRegister(t)
	sim, err := NewSequentialSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	// SA1 on the middle register's output in lane 1.
	if err := sim.InjectFault(Fault{Net: q1, Stuck: StuckAt1}, 1<<1); err != nil {
		t.Fatal(err)
	}
	// Feed zeros: good lane stays 0, faulty lane leaks 1s after two
	// cycles (q1 forced high -> q2 loads it).
	var lane0, lane1 uint64
	for i := 0; i < 4; i++ {
		out, err := sim.Step([]uint64{0})
		if err != nil {
			t.Fatal(err)
		}
		lane0 |= out[0] & 1
		lane1 = out[0] >> 1 & 1
	}
	if lane0 != 0 {
		t.Fatal("good lane perturbed")
	}
	if lane1 != 1 {
		t.Fatal("Q fault not observed")
	}
}

func TestSequentialFeedback(t *testing.T) {
	// Toggle flip-flop: q -> NOT -> d. Output alternates.
	c := New()
	q := c.DFF()
	d := c.Not(q)
	if err := c.SetD(q, d); err != nil {
		t.Fatal(err)
	}
	c.MarkOutput(q, "q")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	sim, err := NewSequentialSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 1, 0, 1, 0}
	for i, w := range want {
		out, err := sim.Step(nil)
		if err != nil {
			t.Fatal(err)
		}
		if out[0]&1 != w {
			t.Fatalf("cycle %d: %d, want %d", i, out[0]&1, w)
		}
	}
}

func TestSequentialValidation(t *testing.T) {
	// Unbound FF fails.
	c := New()
	c.DFF()
	if _, err := NewSequentialSimulator(c); err == nil {
		t.Fatal("unbound FF accepted")
	}
	// SetD on a non-FF net fails.
	c2 := New()
	in := c2.Input("in")
	if err := c2.SetD(in, in); err == nil {
		t.Fatal("SetD on non-FF accepted")
	}
	// Double bind fails.
	c3 := New()
	q := c3.DFF()
	in3 := c3.Input("in")
	if err := c3.SetD(q, in3); err != nil {
		t.Fatal(err)
	}
	if err := c3.SetD(q, in3); err == nil {
		t.Fatal("double SetD accepted")
	}
	// Unknown D net fails.
	c4 := New()
	q4 := c4.DFF()
	if err := c4.SetD(q4, NetID(99)); err == nil {
		t.Fatal("unknown D accepted")
	}
	// Step input count mismatch.
	c5, _ := buildShiftRegister(t)
	sim, err := NewSequentialSimulator(c5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Step(nil); err == nil {
		t.Fatal("missing inputs accepted")
	}
}

func TestAllFaultsIncludesFFOutputs(t *testing.T) {
	c, _ := buildShiftRegister(t)
	faults := AllFaults(c)
	// 1 PI + 3 Q nets = 4 nets, 8 faults (no gates).
	if len(faults) != 8 {
		t.Fatalf("faults = %d, want 8", len(faults))
	}
	if c.NumFFs() != 3 {
		t.Fatalf("NumFFs = %d", c.NumFFs())
	}
}

func TestSequentialValueInspection(t *testing.T) {
	c, q1 := buildShiftRegister(t)
	sim, err := NewSequentialSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []uint64{^uint64(0), 0, 0} {
		if _, err := sim.Step([]uint64{in}); err != nil {
			t.Fatal(err)
		}
	}
	// Value reflects the net as presented during the latest cycle:
	// the first input reaches q1's presentation on the third step.
	if sim.Value(q1) != ^uint64(0) {
		t.Fatalf("Value(q1) = %x", sim.Value(q1))
	}
}
