package netlist

// Differential (cone-restricted) simulation. In a fault campaign every
// batch drives the circuit with the same input record, so the
// fault-free value of every net at every step is the same for all
// batches. A batch therefore only needs to re-evaluate the gates in
// the forward fanout cone of its faulted nets: every other net is
// structurally guaranteed to carry its fault-free (baseline) value in
// all lanes. Capturing the baseline once and replaying each batch
// against it removes the ~80% of gate evaluations that fall outside
// the cone on typical FIR universes.

// Cone is the compiled forward fanout cone of the simulator's injected
// fault set: the instructions that must be re-evaluated, the side nets
// whose baseline values they read, and the primary outputs the cone
// reaches. Build it after InjectFault; it stays valid until the fault
// set changes.
type Cone struct {
	// gates are instruction indices in topological order.
	gates []int32
	// side are nets read by cone gates but driven outside the cone;
	// their values come from the baseline snapshot.
	side []int32
	// forcedIn are faulted nets driven by no gate (primary inputs and
	// flip-flop outputs); their fault masks apply to the baseline value.
	forcedIn []int32
	// outIdx indexes Circuit.Outputs driven inside the cone.
	outIdx []int
}

// Gates returns the number of gates the cone re-evaluates per step.
func (c *Cone) Gates() int { return len(c.gates) }

// OutputIndices returns the indices (into Circuit.Outputs) of the
// primary outputs whose value can differ from the baseline. Outputs
// not listed carry the fault-free value in every lane.
func (c *Cone) OutputIndices() []int { return c.outIdx }

// BuildCone compiles the fanout cone of the currently injected faults.
// It returns nil when the circuit could not be compiled (see
// compileProgram), in which case callers must fall back to full runs.
func (s *Simulator) BuildCone() *Cone {
	p := s.prog
	if p == nil {
		return nil
	}
	nn := s.c.NumNets()
	inCone := make([]bool, nn)
	sideSeen := make([]bool, nn)
	cone := &Cone{}
	for _, n := range s.dirtyNets {
		inCone[n] = true
		if p.gateOf[n] < 0 {
			cone.forcedIn = append(cone.forcedIn, int32(n))
		}
	}
	addSide := func(n int32) {
		if !inCone[n] && !sideSeen[n] {
			sideSeen[n] = true
			cone.side = append(cone.side, n)
		}
	}
	for gi := range p.ins {
		g := &p.ins[gi]
		take := inCone[g.out]
		switch g.code {
		case opConst0, opConst1:
			// no inputs
		case opNot, opBuf:
			take = take || inCone[g.a]
		case opAndN, opNandN, opOrN, opNorN, opXorN, opXnorN:
			for _, in := range p.inIdx[g.a : g.a+g.b] {
				if inCone[in] {
					take = true
					break
				}
			}
		default: // two-input opcodes
			take = take || inCone[g.a] || inCone[g.b]
		}
		if !take {
			continue
		}
		switch g.code {
		case opConst0, opConst1:
		case opNot, opBuf:
			addSide(g.a)
		case opAndN, opNandN, opOrN, opNorN, opXorN, opXnorN:
			for _, in := range p.inIdx[g.a : g.a+g.b] {
				addSide(in)
			}
		default:
			addSide(g.a)
			addSide(g.b)
		}
		inCone[g.out] = true
		cone.gates = append(cone.gates, int32(gi))
	}
	for i, n := range s.c.Outputs {
		if inCone[n] {
			cone.outIdx = append(cone.outIdx, i)
		}
	}
	return cone
}

// BitWords returns the uint64 count of a packed snapshot row for a
// circuit with nn nets (see SnapshotBits).
func BitWords(nn int) int { return (nn + 63) / 64 }

// SnapshotBits packs the current net values (after a Run) into one bit
// per net: dst must have length BitWords(NumNets). It is valid only
// after a broadcast run — identical inputs in every lane and no faults
// injected — where every net word is all-zeros or all-ones, so lane 0
// carries the whole word. A fault-free campaign baseline is exactly
// such a run, and packing it keeps a whole record's worth of snapshots
// cache-resident instead of streaming NumNets×8 bytes per step per
// batch through memory.
func (s *Simulator) SnapshotBits(dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	for n, v := range s.values {
		dst[n>>6] |= (v & 1) << (uint(n) & 63)
	}
}

// baseWord expands net n's packed baseline bit back to the broadcast
// word it was captured from.
func baseWord(base []uint64, n int32) uint64 {
	return -(base[n>>6] >> (uint(n) & 63) & 1)
}

// RunCone evaluates only the cone gates against the packed baseline
// snapshot base (a fault-free SnapshotBits capture for the same input
// step). After the call, Value(n) is correct for every net in the
// cone; outputs outside Cone.OutputIndices carry the baseline value in
// all lanes. The evaluation applies the same fault masks, in the same
// order, as a full Run, so cone-net values are bit-identical to a full
// faulty run driven by the broadcast stimulus the baseline captured.
func (s *Simulator) RunCone(cone *Cone, base []uint64) {
	values := s.values
	for _, n := range cone.side {
		values[n] = baseWord(base, n)
	}
	for _, n := range cone.forcedIn {
		values[n] = (baseWord(base, n) &^ s.forced0[n]) | s.forced1[n]
	}
	p := s.prog
	for _, gi := range cone.gates {
		g := &p.ins[gi]
		var v uint64
		switch g.code {
		case opAnd2:
			v = values[g.a] & values[g.b]
		case opNand2:
			v = ^(values[g.a] & values[g.b])
		case opOr2:
			v = values[g.a] | values[g.b]
		case opNor2:
			v = ^(values[g.a] | values[g.b])
		case opXor2:
			v = values[g.a] ^ values[g.b]
		case opXnor2:
			v = ^(values[g.a] ^ values[g.b])
		case opNot:
			v = ^values[g.a]
		case opBuf:
			v = values[g.a]
		case opConst0:
			v = 0
		case opConst1:
			v = ^uint64(0)
		default:
			v = runWide(g, values, p.inIdx)
		}
		if g.forced != 0 {
			v = (v &^ s.forced0[g.out]) | s.forced1[g.out]
		}
		values[g.out] = v
	}
}
