package netlist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildXor2 builds a 2-input XOR from NANDs for structural tests.
func buildXor2() (*Circuit, NetID, NetID, NetID) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	n1 := c.Nand(a, b)
	n2 := c.Nand(a, n1)
	n3 := c.Nand(b, n1)
	out := c.Nand(n2, n3)
	c.MarkOutput(out, "y")
	return c, a, b, out
}

func TestBuilderTopologyAndValidate(t *testing.T) {
	c, _, _, _ := buildXor2()
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	st := c.Stats()
	if st.Inputs != 2 || st.Outputs != 1 || st.Gates != 4 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.Depth != 3 {
		t.Fatalf("Depth = %d, want 3", st.Depth)
	}
	if !strings.Contains(st.String(), "4 gates") {
		t.Errorf("Stats.String = %q", st.String())
	}
}

func TestGateTruthTables(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	and := c.And(a, b)
	or := c.Or(a, b)
	nand := c.Nand(a, b)
	nor := c.Nor(a, b)
	xor := c.Xor(a, b)
	xnor := c.Xnor(a, b)
	not := c.Not(a)
	buf := c.Buf(a)
	c0 := c.Const(false)
	c1 := c.Const(true)
	for _, n := range []NetID{and, or, nand, nor, xor, xnor, not, buf, c0, c1} {
		c.MarkOutput(n, "")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(c)
	cases := []struct {
		a, b bool
		want []bool // and or nand nor xor xnor not buf c0 c1
	}{
		{false, false, []bool{false, false, true, true, false, true, true, false, false, true}},
		{false, true, []bool{false, true, true, false, true, false, true, false, false, true}},
		{true, false, []bool{false, true, true, false, true, false, false, true, false, true}},
		{true, true, []bool{true, true, false, false, false, true, false, true, false, true}},
	}
	for _, tc := range cases {
		got, err := sim.RunBool([]bool{tc.a, tc.b})
		if err != nil {
			t.Fatal(err)
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("a=%v b=%v output %d = %v, want %v", tc.a, tc.b, i, got[i], tc.want[i])
			}
		}
	}
}

func TestWideGates(t *testing.T) {
	c := New()
	ins := []NetID{c.Input("a"), c.Input("b"), c.Input("c"), c.Input("d")}
	c.MarkOutput(c.And(ins...), "and4")
	c.MarkOutput(c.Or(ins...), "or4")
	c.MarkOutput(c.Xor(ins...), "xor4") // odd parity
	sim := NewSimulator(c)
	for v := 0; v < 16; v++ {
		in := make([]bool, 4)
		ones := 0
		for i := range in {
			in[i] = v>>i&1 == 1
			if in[i] {
				ones++
			}
		}
		got, err := sim.RunBool(in)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != (ones == 4) {
			t.Errorf("AND4(%04b) = %v", v, got[0])
		}
		if got[1] != (ones > 0) {
			t.Errorf("OR4(%04b) = %v", v, got[1])
		}
		if got[2] != (ones%2 == 1) {
			t.Errorf("XOR4(%04b) = %v", v, got[2])
		}
	}
}

func TestMux(t *testing.T) {
	c := New()
	sel := c.Input("sel")
	a := c.Input("a")
	b := c.Input("b")
	c.MarkOutput(c.Mux(sel, a, b), "y")
	sim := NewSimulator(c)
	for _, tc := range []struct{ sel, a, b, want bool }{
		{false, true, false, false},
		{false, false, true, true},
		{true, true, false, true},
		{true, false, true, false},
	} {
		got, err := sim.RunBool([]bool{tc.sel, tc.a, tc.b})
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != tc.want {
			t.Errorf("Mux(%v,%v,%v) = %v, want %v", tc.sel, tc.a, tc.b, got[0], tc.want)
		}
	}
}

func TestAdders(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	cin := c.Input("cin")
	hs, hc := c.HalfAdder(a, b)
	fs, fc := c.FullAdder(a, b, cin)
	for _, n := range []NetID{hs, hc, fs, fc} {
		c.MarkOutput(n, "")
	}
	sim := NewSimulator(c)
	for v := 0; v < 8; v++ {
		ai, bi, ci := v&1, v>>1&1, v>>2&1
		got, err := sim.RunBool([]bool{ai == 1, bi == 1, ci == 1})
		if err != nil {
			t.Fatal(err)
		}
		hsum := ai + bi
		if got[0] != (hsum%2 == 1) || got[1] != (hsum == 2) {
			t.Errorf("half adder a=%d b=%d: sum=%v carry=%v", ai, bi, got[0], got[1])
		}
		fsum := ai + bi + ci
		if got[2] != (fsum%2 == 1) || got[3] != (fsum >= 2) {
			t.Errorf("full adder a=%d b=%d c=%d: sum=%v carry=%v", ai, bi, ci, got[2], got[3])
		}
	}
}

func TestBuilderPanics(t *testing.T) {
	c := New()
	a := c.Input("a")
	for name, f := range map[string]func(){
		"not-2in":      func() { c.addGate(Not, a, a) },
		"and-1in":      func() { c.And(a) },
		"unknown-net":  func() { c.And(a, NetID(999)) },
		"negative-net": func() { c.And(a, NetID(-1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestValidateCatchesHandMadeErrors(t *testing.T) {
	// Multiple drivers.
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	g := c.And(a, b)
	c.Gates = append(c.Gates, Gate{Type: Or, In: []NetID{a, b}, Out: g})
	if err := c.Validate(); err == nil {
		t.Error("multiple drivers accepted")
	}
	// Undriven output.
	c2 := New()
	c2.Input("a")
	c2.Outputs = append(c2.Outputs, NetID(500))
	if err := c2.Validate(); err == nil {
		t.Error("out-of-range output accepted")
	}
	// Non-topological order.
	c3 := New()
	x := c3.Input("x")
	g1 := c3.And(x, x)
	_ = g1
	c3.Gates[0].In[1] = c3.Gates[0].Out // self-loop
	if err := c3.Validate(); err == nil {
		t.Error("self-loop accepted")
	}
	// Duplicate PI.
	c4 := New()
	p := c4.Input("p")
	c4.Inputs = append(c4.Inputs, p)
	if err := c4.Validate(); err == nil {
		t.Error("duplicate PI accepted")
	}
	// Bad arity snuck in by hand.
	c5 := New()
	q := c5.Input("q")
	out := c5.newNet()
	c5.Gates = append(c5.Gates, Gate{Type: And, In: []NetID{q}, Out: out})
	if err := c5.Validate(); err == nil {
		t.Error("1-input AND accepted")
	}
}

func TestNames(t *testing.T) {
	c := New()
	a := c.Input("alpha")
	if c.Name(a) != "alpha" {
		t.Errorf("Name = %q", c.Name(a))
	}
	n := c.Not(a)
	if c.Name(n) != "n1" {
		t.Errorf("unnamed Name = %q", c.Name(n))
	}
	c.SetName(n, "inv")
	if c.Name(n) != "inv" {
		t.Errorf("after SetName = %q", c.Name(n))
	}
}

func TestDriver(t *testing.T) {
	c, a, _, out := buildXor2()
	if _, ok := c.Driver(a); ok {
		t.Error("PI reported as driven")
	}
	gi, ok := c.Driver(out)
	if !ok || c.Gates[gi].Out != out {
		t.Errorf("Driver(out) = %d, %v", gi, ok)
	}
}

func TestLevelsAndFanout(t *testing.T) {
	c, a, b, _ := buildXor2()
	levels := c.Levels()
	if levels[0] != 1 || levels[3] != 3 {
		t.Errorf("levels = %v", levels)
	}
	fo := c.FanoutCounts()
	if fo[a] != 2 || fo[b] != 2 {
		t.Errorf("PI fanout = %d,%d, want 2,2", fo[a], fo[b])
	}
	// n1 (first NAND output) feeds two gates.
	n1 := c.Gates[0].Out
	if fo[n1] != 2 {
		t.Errorf("n1 fanout = %d, want 2", fo[n1])
	}
}

func TestGateTypeString(t *testing.T) {
	for gt, want := range map[GateType]string{
		And: "AND", Or: "OR", Nand: "NAND", Nor: "NOR",
		Xor: "XOR", Xnor: "XNOR", Not: "NOT", Buf: "BUF",
		Const0: "CONST0", Const1: "CONST1", GateType(77): "GateType(77)",
	} {
		if got := gt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(gt), got, want)
		}
	}
}

func TestParallelLanesIndependent(t *testing.T) {
	// Each lane of a parallel run must match an independent RunBool.
	c, _, _, _ := buildXor2()
	sim := NewSimulator(c)
	rng := rand.New(rand.NewSource(11))
	var aw, bw uint64
	want := make([]bool, 64)
	for lane := 0; lane < 64; lane++ {
		av, bv := rng.Intn(2) == 1, rng.Intn(2) == 1
		if av {
			aw |= 1 << lane
		}
		if bv {
			bw |= 1 << lane
		}
		want[lane] = av != bv
	}
	out, err := sim.Run([]uint64{aw, bw})
	if err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < 64; lane++ {
		if (out[0]>>lane&1 == 1) != want[lane] {
			t.Fatalf("lane %d mismatch", lane)
		}
	}
}

func TestRunInputCountMismatch(t *testing.T) {
	c, _, _, _ := buildXor2()
	sim := NewSimulator(c)
	if _, err := sim.Run([]uint64{1}); err == nil {
		t.Fatal("wrong input count accepted")
	}
}

func TestFaultInjection(t *testing.T) {
	c, a, b, out := buildXor2()
	sim := NewSimulator(c)
	// SA1 on output in lane 1 only.
	if err := sim.InjectFault(Fault{Net: out, Stuck: StuckAt1}, 1<<1); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run([]uint64{0, 0}) // a=0,b=0 everywhere -> xor=0
	if err != nil {
		t.Fatal(err)
	}
	if res[0]&1 != 0 {
		t.Error("good lane perturbed")
	}
	if res[0]>>1&1 != 1 {
		t.Error("faulty lane not forced")
	}
	// SA0 on input a in lane 2: with a=1,b=0 output becomes 0 there.
	sim.ClearFaults()
	if err := sim.InjectFault(Fault{Net: a, Stuck: StuckAt0}, 1<<2); err != nil {
		t.Fatal(err)
	}
	res, err = sim.Run([]uint64{^uint64(0), 0})
	if err != nil {
		t.Fatal(err)
	}
	if res[0]&1 != 1 {
		t.Error("good lane wrong")
	}
	if res[0]>>2&1 != 0 {
		t.Error("input fault not observed")
	}
	_ = b
}

func TestInjectFaultUnknownNet(t *testing.T) {
	c, _, _, _ := buildXor2()
	sim := NewSimulator(c)
	if err := sim.InjectFault(Fault{Net: 999}, 1); err == nil {
		t.Fatal("unknown net accepted")
	}
}

func TestClearFaultsRestoresGoodMachine(t *testing.T) {
	c, _, _, out := buildXor2()
	sim := NewSimulator(c)
	if err := sim.InjectFault(Fault{Net: out, Stuck: StuckAt1}, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	res, _ := sim.Run([]uint64{0, 0})
	if res[0] != ^uint64(0) {
		t.Fatal("fault not active")
	}
	sim.ClearFaults()
	res, _ = sim.Run([]uint64{0, 0})
	if res[0] != 0 {
		t.Fatal("fault survived ClearFaults")
	}
}

func TestValueInspection(t *testing.T) {
	c, a, _, _ := buildXor2()
	sim := NewSimulator(c)
	if _, err := sim.Run([]uint64{5, 3}); err != nil {
		t.Fatal(err)
	}
	if sim.Value(a) != 5 {
		t.Errorf("Value(a) = %d", sim.Value(a))
	}
	if sim.Circuit() != c {
		t.Error("Circuit() mismatch")
	}
}

func TestAllFaults(t *testing.T) {
	c, _, _, _ := buildXor2()
	faults := AllFaults(c)
	// 2 PIs + 4 gate outputs = 6 nets, 12 faults.
	if len(faults) != 12 {
		t.Fatalf("len(AllFaults) = %d, want 12", len(faults))
	}
	seen := make(map[Fault]bool)
	for _, f := range faults {
		if seen[f] {
			t.Fatalf("duplicate fault %v", f)
		}
		seen[f] = true
	}
}

func TestCollapseFaultsReduces(t *testing.T) {
	c, _, _, _ := buildXor2()
	all := AllFaults(c)
	collapsed := CollapseFaults(c, all)
	if len(collapsed) >= len(all) {
		t.Fatalf("collapse did not reduce: %d -> %d", len(all), len(collapsed))
	}
	// Collapsed set must be a subset of the universe.
	uni := make(map[Fault]bool)
	for _, f := range all {
		uni[f] = true
	}
	for _, f := range collapsed {
		if !uni[f] {
			t.Fatalf("collapsed fault %v not in universe", f)
		}
	}
}

func TestCollapseEquivalenceIsSound(t *testing.T) {
	// For a chain a -> NOT -> BUF -> out, output SA0 collapses onto the
	// chain; detecting the representative must detect the others.
	c := New()
	a := c.Input("a")
	n := c.Not(a)
	bf := c.Buf(n)
	c.MarkOutput(bf, "y")
	all := AllFaults(c)
	collapsed := CollapseFaults(c, all)
	// Universe is 6; equivalences: bf SA0≡n SA0≡a SA1; bf SA1≡n SA1≡a SA0.
	if len(collapsed) != 2 {
		t.Fatalf("collapsed size = %d, want 2", len(collapsed))
	}
}

func TestFaultString(t *testing.T) {
	f := Fault{Net: 3, Stuck: StuckAt1}
	if f.String() != "n3:SA1" {
		t.Errorf("Fault.String = %q", f.String())
	}
	if StuckAt0.String() != "SA0" {
		t.Errorf("StuckAt0.String = %q", StuckAt0.String())
	}
}

func TestSimulatorMatchesBoolOracleProperty(t *testing.T) {
	// Random circuits: parallel lane 0 must equal RunBool.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New()
		nets := []NetID{c.Input("a"), c.Input("b"), c.Input("c")}
		for i := 0; i < 20; i++ {
			x := nets[rng.Intn(len(nets))]
			y := nets[rng.Intn(len(nets))]
			var n NetID
			switch rng.Intn(7) {
			case 0:
				n = c.And(x, y)
			case 1:
				n = c.Or(x, y)
			case 2:
				n = c.Nand(x, y)
			case 3:
				n = c.Nor(x, y)
			case 4:
				n = c.Xor(x, y)
			case 5:
				n = c.Xnor(x, y)
			default:
				n = c.Not(x)
			}
			nets = append(nets, n)
		}
		c.MarkOutput(nets[len(nets)-1], "y")
		if err := c.Validate(); err != nil {
			return false
		}
		sim := NewSimulator(c)
		for v := 0; v < 8; v++ {
			in := []bool{v&1 == 1, v>>1&1 == 1, v>>2&1 == 1}
			bw, err := sim.RunBool(in)
			if err != nil {
				return false
			}
			words := make([]uint64, 3)
			for i, b := range in {
				if b {
					words[i] = ^uint64(0)
				}
			}
			pw, err := sim.Run(words)
			if err != nil {
				return false
			}
			wantWord := uint64(0)
			if bw[0] {
				wantWord = ^uint64(0)
			}
			if pw[0] != wantWord {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimulatorXorTree(b *testing.B) {
	c := New()
	var nets []NetID
	for i := 0; i < 64; i++ {
		nets = append(nets, c.Input(""))
	}
	for len(nets) > 1 {
		var next []NetID
		for i := 0; i+1 < len(nets); i += 2 {
			next = append(next, c.Xor(nets[i], nets[i+1]))
		}
		if len(nets)%2 == 1 {
			next = append(next, nets[len(nets)-1])
		}
		nets = next
	}
	c.MarkOutput(nets[0], "y")
	sim := NewSimulator(c)
	in := make([]uint64, 64)
	rng := rand.New(rand.NewSource(12))
	for i := range in {
		in[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(in); err != nil {
			b.Fatal(err)
		}
	}
}
