package netlist

// Compiled simulation. NewSimulator lowers the gate list into a flat
// instruction stream: one fixed-size instr per gate, with the inputs of
// one- and two-input gates stored inline and wider gates indexing a
// shared flattened input array. Interpreting this stream instead of the
// Gate slice removes the per-gate slice-header chase (each Gate.In is a
// separately allocated backing array) and the per-gate fault-mask loads
// — the forced0/forced1 words are consulted only for instructions whose
// output net actually carries an active fault, which InjectFault and
// ClearFaults track with a one-byte flag on the instruction itself.

type opCode uint8

const (
	opAnd2 opCode = iota
	opNand2
	opOr2
	opNor2
	opXor2
	opXnor2
	opNot
	opBuf
	opConst0
	opConst1
	// Wide (3+ input) forms: a,b index a span of program.inIdx.
	opAndN
	opNandN
	opOrN
	opNorN
	opXorN
	opXnorN
)

// instr is one compiled gate. For two-input opcodes a and b are the
// input nets; for one-input opcodes only a is used; for wide opcodes a
// is the start and b the length of the input span in program.inIdx.
// forced is nonzero while the output net has an active fault mask.
type instr struct {
	code   opCode
	forced uint8
	out    int32
	a, b   int32
}

// program is the compiled form of a circuit's gate list. ins and the
// forced flags inside it are owned by one Simulator; inIdx and gateOf
// are read-only after compilation.
type program struct {
	ins   []instr
	inIdx []int32
	// gateOf[n] is the instruction index driving net n, or -1 when the
	// net is a primary input or flip-flop output (their fault masks are
	// applied where the value is loaded, not here).
	gateOf []int32
}

// compileProgram lowers c.Gates. It returns nil when the circuit holds
// a gate type the compiler does not know, in which case the simulator
// falls back to interpreting the Gate slice directly.
func compileProgram(c *Circuit) *program {
	p := &program{
		ins:    make([]instr, 0, len(c.Gates)),
		gateOf: make([]int32, c.NumNets()),
	}
	for i := range p.gateOf {
		p.gateOf[i] = -1
	}
	for _, g := range c.Gates {
		in := instr{out: int32(g.Out)}
		switch {
		case g.Type == Const0:
			in.code = opConst0
		case g.Type == Const1:
			in.code = opConst1
		case g.Type == Not || g.Type == Buf:
			if g.Type == Not {
				in.code = opNot
			} else {
				in.code = opBuf
			}
			in.a = int32(g.In[0])
		case len(g.In) == 2:
			switch g.Type {
			case And:
				in.code = opAnd2
			case Nand:
				in.code = opNand2
			case Or:
				in.code = opOr2
			case Nor:
				in.code = opNor2
			case Xor:
				in.code = opXor2
			case Xnor:
				in.code = opXnor2
			default:
				return nil
			}
			in.a, in.b = int32(g.In[0]), int32(g.In[1])
		default:
			switch g.Type {
			case And:
				in.code = opAndN
			case Nand:
				in.code = opNandN
			case Or:
				in.code = opOrN
			case Nor:
				in.code = opNorN
			case Xor:
				in.code = opXorN
			case Xnor:
				in.code = opXnorN
			default:
				return nil
			}
			in.a = int32(len(p.inIdx))
			in.b = int32(len(g.In))
			for _, n := range g.In {
				p.inIdx = append(p.inIdx, int32(n))
			}
		}
		p.gateOf[g.Out] = int32(len(p.ins))
		p.ins = append(p.ins, in)
	}
	return p
}

// setForced flags or unflags the instruction driving net n. Nets not
// driven by a gate (primary inputs, FF outputs) have their masks
// applied at value-load time and need no flag.
func (p *program) setForced(n NetID, forced bool) {
	if gi := p.gateOf[n]; gi >= 0 {
		if forced {
			p.ins[gi].forced = 1
		} else {
			p.ins[gi].forced = 0
		}
	}
}

// runCompiled evaluates the instruction stream in topological order.
func (s *Simulator) runCompiled() {
	values := s.values
	p := s.prog
	for i := range p.ins {
		g := &p.ins[i]
		var v uint64
		switch g.code {
		case opAnd2:
			v = values[g.a] & values[g.b]
		case opNand2:
			v = ^(values[g.a] & values[g.b])
		case opOr2:
			v = values[g.a] | values[g.b]
		case opNor2:
			v = ^(values[g.a] | values[g.b])
		case opXor2:
			v = values[g.a] ^ values[g.b]
		case opXnor2:
			v = ^(values[g.a] ^ values[g.b])
		case opNot:
			v = ^values[g.a]
		case opBuf:
			v = values[g.a]
		case opConst0:
			v = 0
		case opConst1:
			v = ^uint64(0)
		default:
			v = runWide(g, values, p.inIdx)
		}
		if g.forced != 0 {
			v = (v &^ s.forced0[g.out]) | s.forced1[g.out]
		}
		values[g.out] = v
	}
}

// runWide evaluates a 3+-input instruction.
func runWide(g *instr, values []uint64, inIdx []int32) uint64 {
	ins := inIdx[g.a : g.a+g.b]
	var v uint64
	switch g.code {
	case opAndN, opNandN:
		v = ^uint64(0)
		for _, in := range ins {
			v &= values[in]
		}
		if g.code == opNandN {
			v = ^v
		}
	case opOrN, opNorN:
		for _, in := range ins {
			v |= values[in]
		}
		if g.code == opNorN {
			v = ^v
		}
	default: // opXorN, opXnorN
		for _, in := range ins {
			v ^= values[in]
		}
		if g.code == opXnorN {
			v = ^v
		}
	}
	return v
}
