package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseNetlist drives Read with arbitrary text. The contract under
// fuzz: Read never panics; on success the circuit passes Validate and
// survives a Write/Read round trip with identical statistics. The seed
// corpus (here and under testdata/fuzz/FuzzParseNetlist) covers every
// statement kind plus the historically interesting malformed shapes.
func FuzzParseNetlist(f *testing.F) {
	seeds := []string{
		"",
		"# just a comment\n",
		"input a\ninput b\nAND y a b\noutput y\n",
		"input a\nNOT n a\nBUF y n\noutput y\n",
		"input a\ninput b\ninput c\nXOR s a b c\nXNOR t a b\nOR y s t\noutput y\n",
		"CONST0 z\nCONST1 o\nNAND y z o\noutput y\n",
		"input d\ndff q\nbind q d\noutput q\n",
		"dff q\nNOT n q\nbind q n\noutput q\n", // feedback through the FF
		"dff q\noutput q\n",                    // unbound FF survives the round trip
		"input a\nAND y a a\noutput y\noutput y\n",
		"input a\nFROB y a\n",
		"input a\nAND y a missing\n",
		"input a\ninput a\n",
		"input a\nNOT a a\n",
		"input a\nAND y a\n",
		"input\n",
		"output\n",
		"output nowhere\n",
		"bind q\n",
		"bind q d\n",
		"input a\nbind a a\n",
		"dff q\nbind q q\nbind q q\n",
		"InPuT a\nbUf y a\nOUTPUT y\n", // keywords and gates are case-insensitive
		"input a\r\nBUF y a\r\noutput y\r\n",
		"input \x00\nBUF y \x00\noutput y\n",
		"input ﬀ\nBUF ＃ ﬀ\noutput ＃\n",
		strings.Repeat("#"+strings.Repeat("x", 200)+"\n", 5),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		c, err := Read(strings.NewReader(text))
		if err != nil {
			return // rejection is always acceptable; panics are not
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("Read accepted an invalid circuit: %v\ninput:\n%s", err, text)
		}
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			t.Fatalf("Write failed on a parsed circuit: %v", err)
		}
		c2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of serialized circuit failed: %v\nserialized:\n%s", err, buf.String())
		}
		if c.Stats() != c2.Stats() {
			t.Fatalf("round trip changed the circuit: %v -> %v\ninput:\n%s", c.Stats(), c2.Stats(), text)
		}
	})
}
