package soc

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"mstx/internal/resilient"
)

// defaultSOC builds the reference SOC once per test binary; tests
// must not mutate it.
func defaultSOC(t testing.TB) *SOC {
	t.Helper()
	s, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaultSOCShape(t *testing.T) {
	s := defaultSOC(t)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	wantCores := []string{"rx-a", "rx-sd", "fir-c", "fir-d"}
	if len(s.Cores) != len(wantCores) {
		t.Fatalf("got %d cores, want %d", len(s.Cores), len(wantCores))
	}
	for i, id := range wantCores {
		if s.Cores[i].ID != id {
			t.Errorf("core %d = %q, want %q", i, s.Cores[i].ID, id)
		}
	}
	// The analog plans come from the real translate machinery: both
	// receive-path cores must carry the boundary test plus several
	// translated parameter tests, each holding the shared digitizer.
	for _, ci := range []int{0, 1} {
		c := s.Cores[ci]
		if c.Kind != "analog" {
			t.Errorf("core %q kind = %q, want analog", c.ID, c.Kind)
		}
		if len(c.Tests) < 5 {
			t.Errorf("core %q has only %d tests", c.ID, len(c.Tests))
		}
		var sawBoundary, sawAWG bool
		for _, tt := range c.Tests {
			if tt.Name == "boundary" {
				sawBoundary = true
			}
			holdsDig := false
			for _, r := range tt.Resources {
				if r == "digitizer" {
					holdsDig = true
				}
				if r == "awg" {
					sawAWG = true
				}
			}
			if !holdsDig {
				t.Errorf("analog test %s/%s does not hold the digitizer", c.ID, tt.Name)
			}
		}
		if !sawBoundary {
			t.Errorf("core %q has no boundary test", c.ID)
		}
		if !sawAWG {
			t.Errorf("core %q has no propagation test holding the AWG", c.ID)
		}
	}
	// Digital cores are resource-free and structurally derived.
	for _, ci := range []int{2, 3} {
		c := s.Cores[ci]
		if c.Kind != "digital" {
			t.Errorf("core %q kind = %q, want digital", c.ID, c.Kind)
		}
		for _, tt := range c.Tests {
			if len(tt.Resources) != 0 {
				t.Errorf("digital test %s/%s holds resources %v", c.ID, tt.Name, tt.Resources)
			}
		}
	}
	// The sigma-delta interface ships 1-bit samples at OSR 8 vs 12-bit
	// Nyquist words: for the same planned test the volumes must differ
	// by exactly 8/12 when both plans chose the same capture count.
	if s.Cores[0].Tests[0].Name == s.Cores[1].Tests[0].Name {
		a, b := s.Cores[0].Tests[0], s.Cores[1].Tests[0]
		if a.Cycles*8 != b.Cycles*12 {
			t.Errorf("interface volumes: nyquist %d vs sigma-delta %d, want ratio 12:8", a.Cycles, b.Cycles)
		}
	}
}

func TestTestDuration(t *testing.T) {
	tt := Test{Name: "x", Cycles: 100, Settle: 7, MaxWidth: 4}
	cases := []struct {
		w    int
		want int64
	}{
		{-1, 107}, {0, 107}, {1, 107}, {2, 57}, {3, 41}, {4, 32}, {5, 32}, {100, 32},
	}
	for _, c := range cases {
		if got := tt.Duration(c.w); got != c.want {
			t.Errorf("Duration(%d) = %d, want %d", c.w, got, c.want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	good := func() *SOC {
		return &SOC{Name: "x", Cores: []Core{
			{ID: "a", WrapperWidth: 2, Tests: []Test{{Name: "t", Cycles: 1, MaxWidth: 1}}},
		}}
	}
	cases := []struct {
		name string
		mut  func(*SOC)
		want string
	}{
		{"no cores", func(s *SOC) { s.Cores = nil }, "no cores"},
		{"dup core", func(s *SOC) { s.Cores = append(s.Cores, s.Cores[0]) }, "duplicate core ID"},
		{"empty id", func(s *SOC) { s.Cores[0].ID = "" }, "empty ID"},
		{"bad wrapper", func(s *SOC) { s.Cores[0].WrapperWidth = 0 }, "wrapper width"},
		{"no tests", func(s *SOC) { s.Cores[0].Tests = nil }, "no tests"},
		{"dup test", func(s *SOC) { s.Cores[0].Tests = append(s.Cores[0].Tests, s.Cores[0].Tests[0]) }, "duplicate test"},
		{"bad cycles", func(s *SOC) { s.Cores[0].Tests[0].Cycles = 0 }, "cycles"},
		{"bad settle", func(s *SOC) { s.Cores[0].Tests[0].Settle = -1 }, "settle"},
		{"bad width", func(s *SOC) { s.Cores[0].Tests[0].MaxWidth = 0 }, "max width"},
	}
	for _, c := range cases {
		s := good()
		c.mut(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
	if err := good().Validate(); err != nil {
		t.Errorf("good SOC rejected: %v", err)
	}
}

func TestSelect(t *testing.T) {
	s := defaultSOC(t)
	sub, err := Select(s, []string{"rx-a", "fir-d"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Cores) != 2 || sub.Cores[0].ID != "rx-a" || sub.Cores[1].ID != "fir-d" {
		t.Fatalf("selection = %+v", sub.Cores)
	}
	if _, err := Select(s, []string{"rx-a", "nope"}); err == nil || !strings.Contains(err.Error(), "unknown core IDs") {
		t.Errorf("unknown ID: err = %v", err)
	}
	if _, err := Select(s, []string{"rx-a", "rx-a"}); err == nil || !strings.Contains(err.Error(), "duplicate core ID") {
		t.Errorf("duplicate ID: err = %v", err)
	}
	if all, err := Select(s, nil); err != nil || all != s {
		t.Errorf("empty selection: %v %v", all, err)
	}
}

func TestPlanFeasibleAndBounded(t *testing.T) {
	s := defaultSOC(t)
	sch, err := Plan(context.Background(), s, 16, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(s); err != nil {
		t.Fatal(err)
	}
	if len(sch.Assignments) != s.NumTests() {
		t.Fatalf("placed %d of %d tests", len(sch.Assignments), s.NumTests())
	}
	if u := sch.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization %v outside (0,1]", u)
	}
	if sch.EffectiveWidth > sch.TAMWidth {
		t.Errorf("effective width %d exceeds TAM width %d", sch.EffectiveWidth, sch.TAMWidth)
	}
}

func TestPlanSweepMonotone(t *testing.T) {
	s := defaultSOC(t)
	widths := make([]int, 24)
	for i := range widths {
		widths[i] = i + 1
	}
	scheds, err := PlanSweep(context.Background(), s, widths, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(scheds); i++ {
		if scheds[i].Makespan > scheds[i-1].Makespan {
			t.Errorf("makespan rose from %d (W=%d) to %d (W=%d)",
				scheds[i-1].Makespan, widths[i-1], scheds[i].Makespan, widths[i])
		}
	}
	// Widening must actually pay somewhere across this range, or the
	// whole sweep degenerated.
	if scheds[len(scheds)-1].Makespan >= scheds[0].Makespan {
		t.Errorf("no speedup from W=1 (%d) to W=24 (%d)", scheds[0].Makespan, scheds[len(scheds)-1].Makespan)
	}
}

func TestPlanWorkerAndSweepInvariance(t *testing.T) {
	s := defaultSOC(t)
	base, err := Plan(context.Background(), s, 12, Options{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 5} {
		got, err := Plan(context.Background(), s, 12, Options{Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != base.String() {
			t.Fatalf("workers=%d schedule differs:\n%s\nvs\n%s", workers, got.String(), base.String())
		}
	}
	// A width requested inside a larger sweep must return the same
	// schedule as requesting it alone (lanes are width-independent).
	sweep, err := PlanSweep(context.Background(), s, []int{4, 12, 20}, Options{Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sweep[1].String() != base.String() {
		t.Fatalf("W=12 inside sweep differs from solo plan:\n%s\nvs\n%s", sweep[1].String(), base.String())
	}
}

func TestPlanSweepRejects(t *testing.T) {
	s := defaultSOC(t)
	if _, err := PlanSweep(context.Background(), s, nil, Options{}); err == nil {
		t.Error("empty widths accepted")
	}
	if _, err := PlanSweep(context.Background(), s, []int{8, 0}, Options{}); err == nil || !strings.Contains(err.Error(), "must be >= 1") {
		t.Errorf("width 0: err = %v", err)
	}
	bad := &SOC{Name: "bad"}
	if _, err := PlanSweep(context.Background(), bad, []int{4}, Options{}); err == nil {
		t.Error("invalid SOC accepted")
	}
}

func TestPlanCanceled(t *testing.T) {
	s := defaultSOC(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Plan(ctx, s, 8, Options{Seed: 1}); err == nil {
		t.Error("canceled plan returned no error")
	}
}

// TestPlanCheckpointResume kills a sweep mid-run with an injected
// failpoint error, then resumes from the snapshot directory: the
// resumed result must be bit-identical to an uninterrupted baseline.
func TestPlanCheckpointResume(t *testing.T) {
	s := defaultSOC(t)
	opts := Options{Seed: 3, Workers: 2, Iterations: 16}
	widths := []int{5, 10}
	base, err := PlanSweep(context.Background(), s, widths, opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "ckpt")
	interrupted := opts
	interrupted.Checkpoint = &resilient.Checkpointer{Dir: dir, Every: 1}

	fps := resilient.NewFailpoints()
	fps.Set("soc.schedule", resilient.Action{Err: context.DeadlineExceeded, After: 6})
	resilient.Install(fps)
	_, err = PlanSweep(context.Background(), s, widths, interrupted)
	resilient.Install(nil)
	if err == nil {
		t.Fatal("injected failure did not surface")
	}

	resumed := opts
	resumed.Checkpoint = &resilient.Checkpointer{Dir: dir, Every: 1, Resume: true}
	got, err := PlanSweep(context.Background(), s, widths, resumed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if got[i].String() != base[i].String() {
			t.Fatalf("resumed schedule W=%d differs:\n%s\nvs\n%s", widths[i], got[i].String(), base[i].String())
		}
	}
}

func TestLowerBoundDominatedByResource(t *testing.T) {
	// Two single-test cores sharing one exclusive resource: however
	// wide the TAM, the bound must reflect their serialization.
	s := &SOC{Name: "x", Cores: []Core{
		{ID: "a", WrapperWidth: 8, Tests: []Test{{Name: "t", Cycles: 100, MaxWidth: 8, Resources: []string{"r"}}}},
		{ID: "b", WrapperWidth: 8, Tests: []Test{{Name: "t", Cycles: 100, MaxWidth: 8, Resources: []string{"r"}}}},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	lb := LowerBound(s, 64)
	if want := int64(13 + 13); lb != want { // ceil(100/8) each, serialized
		t.Errorf("LowerBound = %d, want %d", lb, want)
	}
	sch, err := Plan(context.Background(), s, 64, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(s); err != nil {
		t.Fatal(err)
	}
	if sch.Makespan != lb {
		t.Errorf("makespan %d, want optimal %d", sch.Makespan, lb)
	}
}
