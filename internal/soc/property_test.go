// The scheduler property wall (ISSUE 8): testing/quick over randomly
// generated SOCs pins the contracts the rest of the system leans on —
// resource feasibility, the certified lower bound and the serial
// upper bound, idle-free-or-justified placement, byte-identical
// output across worker counts, and TAM-width monotonicity.
package soc

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// socCase is one generated scheduling problem.
type socCase struct {
	S     *SOC
	W     int
	Wider int // second width > W for the monotonicity check
	Seed  int64
	Iters int
}

// genCase draws a bounded random SOC: 1-4 cores, 1-4 tests each,
// small volumes, wrapper widths 1-8, test width caps 1-6, and each
// test holding a random subset of the two shared testers.
func genCase(rng *rand.Rand) socCase {
	s := &SOC{Name: "prop"}
	resPool := []string{"awg", "digitizer"}
	nc := 1 + rng.Intn(4)
	for c := 0; c < nc; c++ {
		core := Core{
			ID: fmt.Sprintf("c%d", c), Name: "core", Kind: "x",
			WrapperWidth: 1 + rng.Intn(8),
		}
		nt := 1 + rng.Intn(4)
		for t := 0; t < nt; t++ {
			tt := Test{
				Name:     fmt.Sprintf("t%d", t),
				Cycles:   1 + int64(rng.Intn(5000)),
				Settle:   int64(rng.Intn(200)),
				MaxWidth: 1 + rng.Intn(6),
			}
			for _, r := range resPool {
				if rng.Intn(3) == 0 {
					tt.Resources = append(tt.Resources, r)
				}
			}
			core.Tests = append(core.Tests, tt)
		}
		s.Cores = append(s.Cores, core)
	}
	w := 1 + rng.Intn(10)
	return socCase{
		S: s, W: w, Wider: w + 1 + rng.Intn(6),
		Seed:  rng.Int63(),
		Iters: 4 + rng.Intn(13),
	}
}

// quickCfg builds a deterministic quick.Check configuration whose
// Values hook draws from genCase.
func quickCfg(seed int64, maxCount int) *quick.Config {
	return &quick.Config{
		MaxCount: maxCount,
		Rand:     rand.New(rand.NewSource(seed)),
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(genCase(rng))
		},
	}
}

// TestPropertyFeasibleAndBounded: every schedule places every test
// exactly once with no overlap on a TAM wire, within a core, or on an
// exclusive resource, and its makespan sits between the certified
// lower bound and the serial sum (all enforced by Schedule.Validate).
func TestPropertyFeasibleAndBounded(t *testing.T) {
	prop := func(c socCase) bool {
		sch, err := Plan(context.Background(), c.S, c.W, Options{Seed: c.Seed, Iterations: c.Iters})
		if err != nil {
			t.Logf("plan: %v", err)
			return false
		}
		if err := sch.Validate(c.S); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(11, 40)); err != nil {
		t.Error(err)
	}
}

// TestPropertyWorkerInvariance: the published schedule is
// byte-identical for any worker count (the lane decomposition, not
// the pool, defines the result).
func TestPropertyWorkerInvariance(t *testing.T) {
	prop := func(c socCase) bool {
		var base string
		for _, workers := range []int{1, 2, 5} {
			sch, err := Plan(context.Background(), c.S, c.W, Options{
				Seed: c.Seed, Iterations: c.Iters, Workers: workers,
			})
			if err != nil {
				t.Logf("plan workers=%d: %v", workers, err)
				return false
			}
			if base == "" {
				base = sch.String()
			} else if sch.String() != base {
				t.Logf("workers=%d differs:\n%s\nvs\n%s", workers, sch.String(), base)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(23, 25)); err != nil {
		t.Error(err)
	}
}

// TestPropertyMonotone: a wider TAM never increases the optimal test
// time — guaranteed by construction (the candidate lane set for W+k
// is a superset of the one for W), checked here end to end.
func TestPropertyMonotone(t *testing.T) {
	prop := func(c socCase) bool {
		scheds, err := PlanSweep(context.Background(), c.S, []int{c.W, c.Wider}, Options{
			Seed: c.Seed, Iterations: c.Iters,
		})
		if err != nil {
			t.Logf("sweep: %v", err)
			return false
		}
		if scheds[1].Makespan > scheds[0].Makespan {
			t.Logf("W=%d makespan %d > W=%d makespan %d",
				c.Wider, scheds[1].Makespan, c.W, scheds[0].Makespan)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(37, 40)); err != nil {
		t.Error(err)
	}
}

// TestPropertyJustifiedPlacement: the schedule is idle-free or
// justified — no test can slide to any earlier candidate start (time
// zero or another test's end) at its assigned width without violating
// a wire, core, or resource constraint against the rest of the
// schedule. This is the list-scheduling no-needless-idle contract.
func TestPropertyJustifiedPlacement(t *testing.T) {
	prop := func(c socCase) bool {
		sch, err := Plan(context.Background(), c.S, c.W, Options{Seed: c.Seed, Iterations: c.Iters})
		if err != nil {
			t.Logf("plan: %v", err)
			return false
		}
		if err := justified(sch); err != nil {
			t.Logf("unjustified idle: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(53, 30)); err != nil {
		t.Error(err)
	}
}

// justified reports an error if any assignment could start at an
// earlier candidate time with every other assignment fixed.
func justified(sch *Schedule) error {
	for i := range sch.Assignments {
		a := &sch.Assignments[i]
		cands := []int64{0}
		for j := range sch.Assignments {
			if j != i {
				cands = append(cands, sch.Assignments[j].End())
			}
		}
		sort.Slice(cands, func(x, y int) bool { return cands[x] < cands[y] })
		var prev int64 = -1
		for _, st := range cands {
			if st == prev || st >= a.Start {
				continue
			}
			prev = st
			if fitsAt(sch, i, st) {
				return fmt.Errorf("%s/%s at %d could start at %d", a.Core, a.Test, a.Start, st)
			}
		}
	}
	return nil
}

// fitsAt reports whether assignment i could run at start st (same
// width, any wire of the packing bus) without conflicting with the
// other assignments. The check runs at PackWidth: wires beyond it are
// idle because every wider lane packed worse, which is the lane
// comparison's justification, not the packer's.
func fitsAt(sch *Schedule, i int, st int64) bool {
	a := &sch.Assignments[i]
	occ := make([]bool, sch.PackWidth)
	for j := range sch.Assignments {
		if j == i {
			continue
		}
		b := &sch.Assignments[j]
		if st >= b.End() || b.Start >= st+a.Duration {
			continue
		}
		if b.Core == a.Core {
			return false
		}
		for _, ra := range a.Resources {
			for _, rb := range b.Resources {
				if ra == rb {
					return false
				}
			}
		}
		for k := b.Wire; k < b.Wire+b.Width; k++ {
			occ[k] = true
		}
	}
	run := 0
	for k := 0; k < sch.PackWidth; k++ {
		if occ[k] {
			run = 0
			continue
		}
		if run++; run == a.Width {
			return true
		}
	}
	return false
}

// TestPropertyDurationMonotone: a test's duration never increases
// with more wires and never drops below settle + 1 cycle.
func TestPropertyDurationMonotone(t *testing.T) {
	prop := func(cycles uint16, settle uint8, maxW uint8, w uint8) bool {
		tt := Test{
			Name:   "t",
			Cycles: 1 + int64(cycles), Settle: int64(settle),
			MaxWidth: 1 + int(maxW%12),
		}
		width := int(w % 16)
		d, dNext := tt.Duration(width), tt.Duration(width+1)
		if dNext > d {
			t.Logf("duration rose from %d to %d at width %d", d, dNext, width)
			return false
		}
		if min := tt.Settle + 1; d < min {
			t.Logf("duration %d below floor %d", d, min)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(71))}); err != nil {
		t.Error(err)
	}
}
