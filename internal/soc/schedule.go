// Resource-constrained test scheduling: rectangle packing of
// test x TAM-width after Sehgal/Liu/Ozev/Chakrabarty. Each TAM width
// omega = 1..W is optimized as one mcengine lane (greedy list
// scheduling + hill-climbing local search over test order and per-test
// widths, driven by the lane's deterministic RNG substream), and the
// schedule published for a requested width W is the best over lanes
// omega <= W. Because the lane results do not depend on W, the
// candidate set for W+1 is a superset of the one for W — so a wider
// TAM can never increase the optimal test time, by construction, and
// worker-count invariance, cancellation and round-barrier
// checkpoint/resume all come from the engine.
package soc

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"mstx/internal/mcengine"
	"mstx/internal/obs"
	"mstx/internal/resilient"
)

// fpSchedule is the failpoint evaluated at the head of every width
// lane's kernel; the chaos suite uses it to inject errors, panics and
// delays into the scheduler.
var fpSchedule = resilient.Site("soc.schedule")

// DefaultIterations is the local-search budget per width lane.
const DefaultIterations = 64

// Options configure a scheduling run.
type Options struct {
	// Iterations is the local-search budget per width lane
	// (default DefaultIterations). It is part of the reproducibility
	// contract: the same seed with a different budget is a different
	// optimization.
	Iterations int
	// Seed drives the per-lane RNG substreams.
	Seed int64
	// Workers bounds the lane worker pool (engine default when <= 0).
	Workers int
	// Checkpoint, when enabled, snapshots completed width lanes so a
	// killed run resumes to a bit-identical result.
	Checkpoint *resilient.Checkpointer
	// CheckpointName names the snapshot (default "soc_lanes").
	CheckpointName string
}

// Assignment is one scheduled test: a rectangle of Width wires
// starting at wire Wire, occupying [Start, Start+Duration) cycles.
type Assignment struct {
	// Core and Test identify the wrapped-core test.
	Core string
	Test string
	// Start is the start time in TAM cycles.
	Start int64
	// Duration is the test time at the assigned width.
	Duration int64
	// Wire is the first TAM wire assigned.
	Wire int
	// Width is the number of contiguous wires assigned.
	Width int
	// Resources are the exclusive testers held while running.
	Resources []string
}

// End returns the first cycle after the assignment.
func (a Assignment) End() int64 { return a.Start + a.Duration }

// Schedule is a feasible test plan for one TAM width.
type Schedule struct {
	// TAMWidth is the requested bus width the schedule is valid for.
	TAMWidth int
	// PackWidth is the bus width the rectangles were packed under
	// (<= TAMWidth): the winning width lane. When it is narrower than
	// TAMWidth, the extra wires stay idle because every wider lane
	// produced a longer schedule — the idle is justified by the lane
	// comparison, and the packing is idle-free-or-justified at
	// PackWidth.
	PackWidth int
	// EffectiveWidth is the widest wire actually used plus one; the
	// scheduler may leave wires idle when narrower packing wins.
	EffectiveWidth int
	// Makespan is the total test time in cycles.
	Makespan int64
	// LowerBound is the certified lower bound at TAMWidth.
	LowerBound int64
	// SerialTime is the sum of all assignment durations — the test
	// time of the same program run back-to-back.
	SerialTime int64
	// Assignments are the placed tests, sorted by (Start, Wire).
	Assignments []Assignment
}

// Utilization is the fraction of the TAMWidth x Makespan area covered
// by test rectangles.
func (sch *Schedule) Utilization() float64 {
	if sch.Makespan <= 0 || sch.TAMWidth <= 0 {
		return 0
	}
	var area int64
	for _, a := range sch.Assignments {
		area += int64(a.Width) * a.Duration
	}
	return float64(area) / (float64(sch.TAMWidth) * float64(sch.Makespan))
}

// String renders the schedule compactly (one line per assignment, in
// (Start, Wire) order) — the canonical byte form the determinism
// properties compare.
func (sch *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "W=%d pack=%d eff=%d makespan=%d lb=%d serial=%d\n",
		sch.TAMWidth, sch.PackWidth, sch.EffectiveWidth, sch.Makespan, sch.LowerBound, sch.SerialTime)
	for _, a := range sch.Assignments {
		fmt.Fprintf(&b, "%s/%s start=%d dur=%d wires=%d+%d res=%s\n",
			a.Core, a.Test, a.Start, a.Duration, a.Wire, a.Width, strings.Join(a.Resources, ","))
	}
	return b.String()
}

// Validate checks the schedule against the SOC and the scheduler's
// feasibility contract: every test placed exactly once with its exact
// duration at the assigned width, widths within wrapper/test/TAM
// caps, wires within the bus, and no overlap on any TAM wire, within
// a core, or on an exclusive resource.
func (sch *Schedule) Validate(s *SOC) error {
	if sch.PackWidth < 1 || sch.PackWidth > sch.TAMWidth {
		return fmt.Errorf("schedule: pack width %d outside [1,%d]", sch.PackWidth, sch.TAMWidth)
	}
	type key struct{ core, test string }
	want := map[key]Test{}
	caps := map[key]int{}
	for _, c := range s.Cores {
		for _, t := range c.Tests {
			want[key{c.ID, t.Name}] = t
			w := t.MaxWidth
			if c.WrapperWidth < w {
				w = c.WrapperWidth
			}
			if sch.PackWidth < w {
				w = sch.PackWidth
			}
			caps[key{c.ID, t.Name}] = w
		}
	}
	seen := map[key]bool{}
	for _, a := range sch.Assignments {
		k := key{a.Core, a.Test}
		t, ok := want[k]
		if !ok {
			return fmt.Errorf("schedule: unknown test %s/%s", a.Core, a.Test)
		}
		if seen[k] {
			return fmt.Errorf("schedule: test %s/%s placed twice", a.Core, a.Test)
		}
		seen[k] = true
		if a.Width < 1 || a.Width > caps[k] {
			return fmt.Errorf("schedule: %s/%s width %d outside [1,%d]", a.Core, a.Test, a.Width, caps[k])
		}
		if a.Wire < 0 || a.Wire+a.Width > sch.PackWidth {
			return fmt.Errorf("schedule: %s/%s wires %d+%d outside pack width %d", a.Core, a.Test, a.Wire, a.Width, sch.PackWidth)
		}
		if d := t.Duration(a.Width); a.Duration != d {
			return fmt.Errorf("schedule: %s/%s duration %d, want %d at width %d", a.Core, a.Test, a.Duration, d, a.Width)
		}
		if a.Start < 0 {
			return fmt.Errorf("schedule: %s/%s negative start %d", a.Core, a.Test, a.Start)
		}
	}
	if len(seen) != len(want) {
		return fmt.Errorf("schedule: %d of %d tests placed", len(seen), len(want))
	}
	var makespan, serial int64
	eff := 0
	for i, a := range sch.Assignments {
		serial += a.Duration
		if a.End() > makespan {
			makespan = a.End()
		}
		if a.Wire+a.Width > eff {
			eff = a.Wire + a.Width
		}
		for _, b := range sch.Assignments[i+1:] {
			if a.Start >= b.End() || b.Start >= a.End() {
				continue
			}
			if a.Core == b.Core {
				return fmt.Errorf("schedule: core %q tests %q and %q overlap in time", a.Core, a.Test, b.Test)
			}
			if a.Wire < b.Wire+b.Width && b.Wire < a.Wire+a.Width {
				return fmt.Errorf("schedule: %s/%s and %s/%s overlap on TAM wires", a.Core, a.Test, b.Core, b.Test)
			}
			for _, ra := range a.Resources {
				for _, rb := range b.Resources {
					if ra == rb {
						return fmt.Errorf("schedule: %s/%s and %s/%s both hold %q", a.Core, a.Test, b.Core, b.Test, ra)
					}
				}
			}
		}
	}
	if sch.Makespan != makespan {
		return fmt.Errorf("schedule: makespan %d, assignments end at %d", sch.Makespan, makespan)
	}
	if sch.SerialTime != serial {
		return fmt.Errorf("schedule: serial time %d, assignments sum to %d", sch.SerialTime, serial)
	}
	if sch.EffectiveWidth != eff {
		return fmt.Errorf("schedule: effective width %d, assignments reach %d", sch.EffectiveWidth, eff)
	}
	if sch.Makespan > sch.SerialTime {
		return fmt.Errorf("schedule: makespan %d exceeds serial sum %d", sch.Makespan, sch.SerialTime)
	}
	if sch.LowerBound > sch.Makespan {
		return fmt.Errorf("schedule: lower bound %d exceeds makespan %d", sch.LowerBound, sch.Makespan)
	}
	return nil
}

// LowerBound certifies a makespan floor at TAM width W: the maximum
// of the area bound (every test covers at least Settle+Cycles wire-
// cycles and the bus supplies W per cycle), the per-core bound (a
// wrapper runs one test at a time, each no faster than its widest
// allowed configuration) and the per-resource bound (an exclusive
// tester serializes every test that holds it).
func LowerBound(s *SOC, W int) int64 {
	if W < 1 {
		W = 1
	}
	var area int64
	byRes := map[string]int64{}
	var best int64
	for _, c := range s.Cores {
		var coreSum int64
		for _, t := range c.Tests {
			area += t.Settle + t.Cycles
			w := t.MaxWidth
			if c.WrapperWidth < w {
				w = c.WrapperWidth
			}
			if W < w {
				w = W
			}
			d := t.Duration(w)
			coreSum += d
			for _, r := range t.Resources {
				byRes[r] += d
			}
		}
		if coreSum > best {
			best = coreSum
		}
	}
	if ab := (area + int64(W) - 1) / int64(W); ab > best {
		best = ab
	}
	for _, sum := range byRes {
		if sum > best {
			best = sum
		}
	}
	return best
}

// laneTest is one test flattened for the packer, with the width cap
// already clamped to wrapper and lane TAM width.
type laneTest struct {
	coreIdx        int
	core, name     string
	cycles, settle int64
	maxW           int
	res            []string
}

type placement struct {
	start, dur int64
	wire       int
	width      int
	done       bool
}

// instance is the flattened packing problem for one TAM width.
type instance struct {
	omega int
	tests []laneTest
}

func newInstance(s *SOC, omega int) *instance {
	inst := &instance{omega: omega}
	for ci, c := range s.Cores {
		for _, t := range c.Tests {
			w := t.MaxWidth
			if c.WrapperWidth < w {
				w = c.WrapperWidth
			}
			if omega < w {
				w = omega
			}
			if w < 1 {
				w = 1
			}
			inst.tests = append(inst.tests, laneTest{
				coreIdx: ci, core: c.ID, name: t.Name,
				cycles: t.Cycles, settle: t.Settle,
				maxW: w, res: t.Resources,
			})
		}
	}
	return inst
}

func sharesResource(a, b *laneTest) bool {
	for _, ra := range a.res {
		for _, rb := range b.res {
			if ra == rb {
				return true
			}
		}
	}
	return false
}

func ceilDiv(c int64, w int) int64 { return (c + int64(w) - 1) / int64(w) }

// pack greedily places the tests in the given order at the given
// widths: each test goes to its earliest feasible candidate start
// (time 0 or the end of an already-placed test), on the lowest run of
// contiguous free wires, honoring core- and resource-exclusivity.
// Placement is always possible at the latest end, so pack never
// fails; the result is fully determined by (order, widths).
func pack(inst *instance, order []int, widths []int, placed []placement, occ []bool, ends []int64) int64 {
	for i := range placed {
		placed[i] = placement{}
	}
	var makespan int64
	for _, ti := range order {
		t := &inst.tests[ti]
		w := widths[ti]
		if w < 1 {
			w = 1
		}
		if w > t.maxW {
			w = t.maxW
		}
		d := t.settle + ceilDiv(t.cycles, w)

		ends = ends[:0]
		ends = append(ends, 0)
		for tj := range placed {
			if placed[tj].done {
				ends = append(ends, placed[tj].start+placed[tj].dur)
			}
		}
		sort.Slice(ends, func(a, b int) bool { return ends[a] < ends[b] })

		var prev int64 = -1
	cands:
		for _, st := range ends {
			if st == prev {
				continue
			}
			prev = st
			for k := 0; k < inst.omega; k++ {
				occ[k] = false
			}
			for tj := range placed {
				p := &placed[tj]
				if !p.done || st >= p.start+p.dur || p.start >= st+d {
					continue
				}
				other := &inst.tests[tj]
				if other.coreIdx == t.coreIdx || sharesResource(other, t) {
					continue cands
				}
				for k := p.wire; k < p.wire+p.width; k++ {
					occ[k] = true
				}
			}
			run, wire := 0, -1
			for k := 0; k < inst.omega; k++ {
				if occ[k] {
					run = 0
					continue
				}
				if run++; run == w {
					wire = k - w + 1
					break
				}
			}
			if wire < 0 {
				continue
			}
			placed[ti] = placement{start: st, dur: d, wire: wire, width: w, done: true}
			break
		}
		if !placed[ti].done {
			// Unreachable (the latest end always fits), kept as a
			// guard so a future constraint cannot silently drop tests.
			placed[ti] = placement{start: makespan, dur: d, wire: 0, width: w, done: true}
		}
		if end := placed[ti].start + placed[ti].dur; end > makespan {
			makespan = end
		}
	}
	return makespan
}

// packKey is the canonical byte form of a packing, used to break
// equal-makespan ties deterministically during local search.
func packKey(placed []placement) string {
	var b strings.Builder
	for i := range placed {
		fmt.Fprintf(&b, "%d:%d:%d;", placed[i].start, placed[i].wire, placed[i].width)
	}
	return b.String()
}

// optimize runs one width lane: greedy seed (longest test first at
// the widest allowed width) then hill-climbing local search over test
// order swaps and per-test width changes, accepting a move when it
// shortens the makespan or keeps it while reducing the canonical key.
func optimize(s *SOC, omega, iters int, rng *rand.Rand) *Schedule {
	inst := newInstance(s, omega)
	n := len(inst.tests)
	order := make([]int, n)
	widths := make([]int, n)
	for i := range order {
		order[i] = i
		widths[i] = inst.tests[i].maxW
	}
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := &inst.tests[order[a]], &inst.tests[order[b]]
		da := ta.settle + ceilDiv(ta.cycles, widths[order[a]])
		db := tb.settle + ceilDiv(tb.cycles, widths[order[b]])
		if da != db {
			return da > db
		}
		if ta.core != tb.core {
			return ta.core < tb.core
		}
		return ta.name < tb.name
	})

	placed := make([]placement, n)
	cand := make([]placement, n)
	occ := make([]bool, omega)
	ends := make([]int64, 0, n+1)

	best := pack(inst, order, widths, placed, occ, ends)
	bestKey := packKey(placed)

	for it := 0; it < iters; it++ {
		var undo func()
		if n > 1 && rng.Intn(2) == 0 {
			i, j := rng.Intn(n), rng.Intn(n)
			order[i], order[j] = order[j], order[i]
			undo = func() { order[i], order[j] = order[j], order[i] }
		} else {
			i := rng.Intn(n)
			old := widths[i]
			widths[i] = 1 + rng.Intn(inst.tests[i].maxW)
			undo = func() { widths[i] = old }
		}
		mk := pack(inst, order, widths, cand, occ, ends)
		if mk < best || (mk == best && packKey(cand) < bestKey) {
			best = mk
			copy(placed, cand)
			bestKey = packKey(placed)
		} else {
			undo()
		}
	}

	sch := &Schedule{TAMWidth: omega, PackWidth: omega, Makespan: best, LowerBound: LowerBound(s, omega)}
	for i := range placed {
		t := &inst.tests[i]
		a := Assignment{
			Core: t.core, Test: t.name,
			Start: placed[i].start, Duration: placed[i].dur,
			Wire: placed[i].wire, Width: placed[i].width,
			Resources: append([]string(nil), t.res...),
		}
		sch.SerialTime += a.Duration
		if a.Wire+a.Width > sch.EffectiveWidth {
			sch.EffectiveWidth = a.Wire + a.Width
		}
		sch.Assignments = append(sch.Assignments, a)
	}
	sort.Slice(sch.Assignments, func(a, b int) bool {
		x, y := sch.Assignments[a], sch.Assignments[b]
		if x.Start != y.Start {
			return x.Start < y.Start
		}
		if x.Wire != y.Wire {
			return x.Wire < y.Wire
		}
		if x.Core != y.Core {
			return x.Core < y.Core
		}
		return x.Test < y.Test
	})
	return sch
}

// laneSched is one width lane's result; exported fields for the gob
// checkpoint snapshot.
type laneSched struct {
	Width int
	Sched *Schedule
}

// sweepTotal is the merged lane prefix (the engine checkpoint state).
type sweepTotal struct {
	Lanes []laneSched
}

// Plan schedules the SOC at one TAM width. See PlanSweep.
func Plan(ctx context.Context, s *SOC, width int, opts Options) (*Schedule, error) {
	scheds, err := PlanSweep(ctx, s, []int{width}, opts)
	if err != nil {
		return nil, err
	}
	return scheds[0], nil
}

// PlanSweep schedules the SOC at every requested TAM width and
// returns one schedule per width, in order. All widths share one
// engine run over lanes omega = 1..max(widths); the schedule for a
// requested width W is the best lane with omega <= W, restamped with
// W's lower bound. Results are bit-identical for any worker count and
// across checkpoint/resume, and monotone: a wider TAM never yields a
// longer makespan.
func PlanSweep(ctx context.Context, s *SOC, widths []int, opts Options) ([]*Schedule, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(widths) == 0 {
		return nil, fmt.Errorf("soc: no TAM widths requested")
	}
	maxW := 0
	for _, w := range widths {
		if w < 1 {
			return nil, fmt.Errorf("soc: TAM width %d must be >= 1", w)
		}
		if w > maxW {
			maxW = w
		}
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = DefaultIterations
	}

	reg := obs.For(ctx)
	if reg != nil {
		planCtx, sp := reg.Span(ctx, "soc.plan")
		defer sp.End()
		ctx = planCtx
		defer func() {
			reg.Counter("soc_plans_total").Inc()
			reg.Counter("soc_lanes_total").Add(int64(maxW))
			reg.Counter("soc_tests_total").Add(int64(s.NumTests()))
		}()
	}

	ckName := opts.CheckpointName
	if ckName == "" {
		ckName = "soc_lanes"
	}
	kernel := func(lane, count int, rng *rand.Rand) (laneSched, error) {
		if err := resilient.Fire(fpSchedule); err != nil {
			return laneSched{}, err
		}
		omega := lane + 1
		return laneSched{Width: omega, Sched: optimize(s, omega, iters, rng)}, nil
	}
	merge := func(total sweepTotal, lane int, p laneSched) sweepTotal {
		total.Lanes = append(total.Lanes, p)
		return total
	}
	// No OnQuarantine on purpose: dropping a width lane would silently
	// change the published schedule, so a panicking lane must surface
	// as a run error instead.
	total, _, err := mcengine.Run(ctx, maxW, opts.Seed, mcengine.Options{
		Workers:        opts.Workers,
		BatchSize:      1,
		Checkpoint:     opts.Checkpoint,
		CheckpointName: ckName,
	}, sweepTotal{}, kernel, merge, nil)
	if err != nil {
		return nil, err
	}

	out := make([]*Schedule, len(widths))
	for i, w := range widths {
		var pick *Schedule
		for _, ln := range total.Lanes {
			if ln.Width > w {
				continue
			}
			if pick == nil || ln.Sched.Makespan < pick.Makespan {
				pick = ln.Sched
			}
		}
		if pick == nil {
			return nil, fmt.Errorf("soc: no lane result for width %d", w)
		}
		sch := *pick
		sch.Assignments = append([]Assignment(nil), pick.Assignments...)
		sch.TAMWidth = w
		sch.LowerBound = LowerBound(s, w)
		out[i] = &sch
	}
	return out, nil
}
