// Package soc models a mixed-signal system-on-chip as a set of
// wrapped cores behind a shared test-access mechanism (TAM), after
// Sehgal, Liu, Ozev & Chakrabarty's test-planning formulation: each
// core carries a list of tests whose data volumes come from the real
// translate/tolerance machinery (analog cores) or from the quantized
// FIR netlist geometry (digital cores), the wrapper bounds how many
// TAM wires a core can consume, and exclusive tester resources (the
// shared AWG/DAC source and ADC digitizer) serialize the analog tests
// that need them. The resource-constrained scheduler lives in
// schedule.go.
package soc

import (
	"fmt"
	"sort"

	"mstx/internal/core"
	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/path"
	"mstx/internal/translate"
)

// Capture geometry shared with the experiments (E7 test-time model):
// every analog capture records captureN samples after captureSettle
// warm-up samples, and costs captureSetup TAM-independent cycles of
// source settling / retargeting (100 us at the 8 MS/s ADC rate).
const (
	captureN      = 4096
	captureSettle = 512
	captureSetup  = 800
)

// Test is one wrapped core test: a payload of Cycles TAM cycles at
// width 1 that shrinks with the wires assigned to it, plus Settle
// cycles of width-independent setup, capped at MaxWidth wires, and
// holding zero or more exclusive tester resources while it runs.
type Test struct {
	// Name identifies the test within its core.
	Name string
	// Cycles is the payload data volume in width-1 TAM cycles.
	Cycles int64
	// Settle is the width-independent setup/settling time in cycles.
	Settle int64
	// MaxWidth caps how many TAM wires the test can use in parallel.
	MaxWidth int
	// Resources are exclusive shared testers (e.g. "awg",
	// "digitizer") held for the whole duration.
	Resources []string
}

// Duration returns the test time in cycles at the given wire count,
// clamped to [1, MaxWidth]: Settle + ceil(Cycles/w).
func (t Test) Duration(w int) int64 {
	if w < 1 {
		w = 1
	}
	if t.MaxWidth >= 1 && w > t.MaxWidth {
		w = t.MaxWidth
	}
	return t.Settle + (t.Cycles+int64(w)-1)/int64(w)
}

// Core is one wrapped core: an ID, a human-readable kind, the wrapper
// parallelisation bound, and its tests. Tests of one core always
// serialize (the wrapper is single-session).
type Core struct {
	// ID is the unique core identifier ("rx-a", "fir-c", ...).
	ID string
	// Name describes the core.
	Name string
	// Kind is "analog" or "digital" (documentation only).
	Kind string
	// WrapperWidth caps the TAM wires the core wrapper can connect.
	WrapperWidth int
	// Tests are the core's tests in declaration order.
	Tests []Test
}

// SOC is the system under test: a named set of wrapped cores sharing
// one TAM and the exclusive tester resources.
type SOC struct {
	// Name identifies the SOC configuration.
	Name string
	// Cores are the wrapped cores in declaration order.
	Cores []Core
}

// Validate checks structural sanity: at least one core, unique
// non-empty core IDs, positive wrapper widths, and per-core unique
// tests with positive volumes and width caps.
func (s *SOC) Validate() error {
	if len(s.Cores) == 0 {
		return fmt.Errorf("soc %q: no cores", s.Name)
	}
	ids := make(map[string]bool, len(s.Cores))
	for _, c := range s.Cores {
		if c.ID == "" {
			return fmt.Errorf("soc %q: core with empty ID", s.Name)
		}
		if ids[c.ID] {
			return fmt.Errorf("soc %q: duplicate core ID %q", s.Name, c.ID)
		}
		ids[c.ID] = true
		if c.WrapperWidth < 1 {
			return fmt.Errorf("soc %q: core %q wrapper width %d must be >= 1", s.Name, c.ID, c.WrapperWidth)
		}
		if len(c.Tests) == 0 {
			return fmt.Errorf("soc %q: core %q has no tests", s.Name, c.ID)
		}
		names := make(map[string]bool, len(c.Tests))
		for _, t := range c.Tests {
			if t.Name == "" {
				return fmt.Errorf("soc %q: core %q has a test with empty name", s.Name, c.ID)
			}
			if names[t.Name] {
				return fmt.Errorf("soc %q: core %q duplicate test %q", s.Name, c.ID, t.Name)
			}
			names[t.Name] = true
			if t.Cycles < 1 {
				return fmt.Errorf("soc %q: test %s/%s cycles %d must be >= 1", s.Name, c.ID, t.Name, t.Cycles)
			}
			if t.Settle < 0 {
				return fmt.Errorf("soc %q: test %s/%s settle %d must be >= 0", s.Name, c.ID, t.Name, t.Settle)
			}
			if t.MaxWidth < 1 {
				return fmt.Errorf("soc %q: test %s/%s max width %d must be >= 1", s.Name, c.ID, t.Name, t.MaxWidth)
			}
		}
	}
	return nil
}

// NumTests counts all tests over all cores.
func (s *SOC) NumTests() int {
	n := 0
	for _, c := range s.Cores {
		n += len(c.Tests)
	}
	return n
}

// Volume sums the width-1 payload cycles over every test — the raw
// TAM data volume of the whole test program.
func (s *SOC) Volume() int64 {
	var v int64
	for _, c := range s.Cores {
		for _, t := range c.Tests {
			v += t.Cycles
		}
	}
	return v
}

// Select returns a sub-SOC restricted to the given core IDs (in the
// SOC's declaration order). Unknown or duplicate IDs are errors; an
// empty list selects every core.
func Select(s *SOC, ids []string) (*SOC, error) {
	if len(ids) == 0 {
		return s, nil
	}
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		if want[id] {
			return nil, fmt.Errorf("soc %q: duplicate core ID %q in selection", s.Name, id)
		}
		want[id] = true
	}
	sub := &SOC{Name: s.Name}
	for _, c := range s.Cores {
		if want[c.ID] {
			sub.Cores = append(sub.Cores, c)
			delete(want, c.ID)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for id := range want {
			//mstxvet:ignore determinism unknown IDs are sorted immediately below
			unknown = append(unknown, id)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("soc %q: unknown core IDs %v", s.Name, unknown)
	}
	return sub, nil
}

// analogCore synthesizes the translated test plan for the given path
// specification and turns every translatable planned test into a
// wrapped-core test: Captures × captureN samples cross the TAM at
// bitsPerSample bits each, and every capture pays the
// width-independent settle + setup cycles. Propagation tests drive
// the shared AWG while capturing; composition and boundary tests only
// hold the digitizer.
func analogCore(id, name string, spec path.Spec, bitsPerSample int, maxWidth int) (Core, error) {
	syn, err := core.New(spec)
	if err != nil {
		return Core{}, err
	}
	plan, err := syn.Synthesize(nil)
	if err != nil {
		return Core{}, err
	}
	c := Core{ID: id, Name: name, Kind: "analog", WrapperWidth: maxWidth}
	for _, t := range plan.Tests {
		if t.Kind == translate.Direct {
			continue // DFT-required: no tester time on the TAM
		}
		caps := int64(t.Captures)
		res := []string{"digitizer"}
		if t.Kind == translate.Propagation {
			res = []string{"awg", "digitizer"}
		}
		c.Tests = append(c.Tests, Test{
			Name:      string(t.Request.Param),
			Cycles:    caps * captureN * int64(bitsPerSample),
			Settle:    caps * (captureSettle + captureSetup),
			MaxWidth:  maxWidth,
			Resources: res,
		})
	}
	// The three composition boundary captures (small-signal reference,
	// high- and low-amplitude checks) need the AWG for the amplitude
	// extremes.
	bcaps := int64(3)
	c.Tests = append(c.Tests, Test{
		Name:      "boundary",
		Cycles:    bcaps * captureN * int64(bitsPerSample),
		Settle:    bcaps * (captureSettle + captureSetup),
		MaxWidth:  maxWidth,
		Resources: []string{"awg", "digitizer"},
	})
	return c, nil
}

// digitalCore quantizes the given FIR design with the standard E8
// geometry (8 fractional coefficient bits, 12-bit samples, 8 dropped
// LSBs) and derives two scan-free structural tests from the bus
// geometry of the resulting netlist: a stuck-at campaign streaming
// 4096 patterns in and responses out, and a spectral BIST that only
// streams the stimulus (the signature stays on-chip).
func digitalCore(id, name string, taps int, cutoff float64, wrapperWidth int) (Core, error) {
	coeffs, err := digital.DesignLowPassFIR(taps, cutoff, dsp.Hamming)
	if err != nil {
		return Core{}, err
	}
	ints, _, err := digital.QuantizeCoeffs(coeffs, 8)
	if err != nil {
		return Core{}, err
	}
	fir, err := digital.NewFIRTruncated(ints, 12, 8)
	if err != nil {
		return Core{}, err
	}
	const patterns = 4096
	inW, outW := int64(fir.InWidth), int64(fir.OutWidth())
	return Core{
		ID: id, Name: name, Kind: "digital", WrapperWidth: wrapperWidth,
		Tests: []Test{
			{
				Name:     "stuck-at",
				Cycles:   patterns * (inW + outW),
				Settle:   int64(fir.Taps()), // pipeline flush
				MaxWidth: wrapperWidth,
			},
			{
				Name:     "spectral-bist",
				Cycles:   patterns * inW,
				Settle:   int64(fir.Taps()) + 64, // flush + signature readout
				MaxWidth: wrapperWidth,
			},
		},
	}, nil
}

// Default builds the reference SOC: the paper's Amp->Mixer->LPF->ADC
// receive path as a wrapped analog core, the same path with the
// sigma-delta interface alternative (DESIGN.md) whose 1-bit modulator
// stream crosses the TAM at the oversampled rate, and two digital
// FIR cores (the 13-tap path filter and a smaller 9-tap decimator).
func Default() (*SOC, error) {
	coeffs, err := digital.DesignLowPassFIR(13, 0.18, dsp.Hamming)
	if err != nil {
		return nil, err
	}
	spec := path.DefaultSpec(coeffs)

	// Nyquist interface: every capture ships captureN samples at the
	// ADC word width.
	rxA, err := analogCore("rx-a", "receive path, Nyquist ADC interface", spec, spec.ADC.Bits, spec.ADC.Bits)
	if err != nil {
		return nil, err
	}

	// Sigma-delta interface alternative: the 1-bit modulator stream at
	// OSR x the output rate crosses the TAM instead (decimation
	// happens off-chip on the tester), so each capture is captureN x
	// OSR single-bit cycles behind a narrower wrapper.
	sdSpec := spec
	sdSpec.UseSigmaDelta = true
	osr := int(sdSpec.SimRate / sdSpec.ADCRate)
	if osr < 1 {
		osr = 1
	}
	rxSD, err := analogCore("rx-sd", "receive path, sigma-delta interface", sdSpec, osr, 8)
	if err != nil {
		return nil, err
	}

	firC, err := digitalCore("fir-c", "13-tap channel FIR", 13, 0.18, 16)
	if err != nil {
		return nil, err
	}
	firD, err := digitalCore("fir-d", "9-tap decimation FIR", 9, 0.30, 8)
	if err != nil {
		return nil, err
	}

	s := &SOC{Name: "mstx-soc1", Cores: []Core{rxA, rxSD, firC, firD}}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
