package params

import (
	"math"
	"math/rand"
	"testing"

	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/path"
)

func buildPath(t testing.TB) *path.Path {
	t.Helper()
	coeffs, err := digital.DesignLowPassFIR(13, 0.18, dsp.Hamming)
	if err != nil {
		t.Fatal(err)
	}
	p, err := path.DefaultSpec(coeffs).Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func samplePath(t testing.TB, seed int64) *path.Path {
	t.Helper()
	coeffs, err := digital.DesignLowPassFIR(13, 0.18, dsp.Hamming)
	if err != nil {
		t.Fatal(err)
	}
	p, err := path.DefaultSpec(coeffs).Sample(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	bad := Config{N: 1000, Settle: 0}
	if err := bad.validate(); err == nil {
		t.Error("non-power-of-two N accepted")
	}
	bad = Config{N: 1024, Settle: -1}
	if err := bad.validate(); err == nil {
		t.Error("negative settle accepted")
	}
	if err := DefaultConfig().validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if _, err := MeasurePathGain(buildPath(t), Config{N: 5}, nil); err == nil {
		t.Error("bad config accepted by a procedure")
	}
}

func TestMethodString(t *testing.T) {
	if FullAccess.String() != "full-access" || NominalGains.String() != "nominal-gains" ||
		Adaptive.String() != "adaptive" || Method(7).String() != "Method(7)" {
		t.Error("Method.String wrong")
	}
}

func TestMeasurePathGainNominalDevice(t *testing.T) {
	p := buildPath(t)
	res, err := MeasurePathGain(p, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Delta()) > 0.1 {
		t.Errorf("path gain: %v", res)
	}
	if res.Unit != "dB" || res.Kind != PathGain {
		t.Errorf("metadata: %+v", res)
	}
}

func TestMeasurePathGainTracksDeviation(t *testing.T) {
	// A device with a known gain deviation must be measured at its
	// actual gain, not the nominal.
	p := buildPath(t)
	p.Amp.GainDB += 1.5
	res, err := MeasurePathGain(p, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Measured-res.True) > 0.15 {
		t.Errorf("deviated path gain: %v", res)
	}
	if math.Abs(res.Measured-(p.NominalPathGainDB()+1.5)) > 0.3 {
		t.Errorf("measured %g did not move with the deviation", res.Measured)
	}
}

func TestMeasureDCOffset(t *testing.T) {
	p := buildPath(t)
	res, err := MeasureDCOffset(p, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Quantization limits offset resolution to ~LSB/2.
	if math.Abs(res.Delta()) > p.ADC.LSB() {
		t.Errorf("dc offset: %v (LSB %g)", res, p.ADC.LSB())
	}
}

func TestMeasureMixerIIP3Methods(t *testing.T) {
	p := buildPath(t)
	cfg := DefaultConfig()
	st := DefaultIIP3Stimulus()
	for _, m := range []Method{FullAccess, NominalGains, Adaptive} {
		res, err := MeasureMixerIIP3(p, m, st, cfg, nil)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.True != p.Mixer.IIP3DBm {
			t.Errorf("%v: oracle %g", m, res.True)
		}
		// On a nominal noiseless device every method should land close;
		// allow 1 dB for amp-distortion bias and measurement grid.
		if math.Abs(res.Delta()) > 1.0 {
			t.Errorf("%v: %v", m, res)
		}
	}
	if _, err := MeasureMixerIIP3(p, Method(9), st, cfg, nil); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestAdaptiveIIP3BeatsNominalOnDeviatedDevice(t *testing.T) {
	// Figure 4's point, device-level: when the mixer and LPF gains
	// deviate, the adaptive method (measured path gain + nominal amp
	// gain) is more accurate than nominal gains.
	p := buildPath(t)
	p.Mixer.ConvGainDB += 1.2 // +1.2 dB mixer gain deviation
	p.LPF.GainDB += 0.7       // +0.7 dB filter gain deviation
	cfg := DefaultConfig()
	st := DefaultIIP3Stimulus()
	nom, err := MeasureMixerIIP3(p, NominalGains, st, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ada, err := MeasureMixerIIP3(p, Adaptive, st, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ada.Delta()) >= math.Abs(nom.Delta()) {
		t.Errorf("adaptive |err| %g should beat nominal |err| %g",
			math.Abs(ada.Delta()), math.Abs(nom.Delta()))
	}
	// Nominal method's error should reflect the injected deviations
	// (≈ 1.9 dB here).
	if math.Abs(math.Abs(nom.Delta())-1.9) > 0.8 {
		t.Errorf("nominal error %g, expected ≈1.9 dB", nom.Delta())
	}
}

func TestMeasureMixerP1dB(t *testing.T) {
	p := buildPath(t)
	cfg := DefaultConfig()
	fa, err := MeasureMixerP1dB(p, FullAccess, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fa.Delta()) > 0.01 {
		t.Errorf("full access should equal the oracle: %v", fa)
	}
	nom, err := MeasureMixerP1dB(p, NominalGains, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Path-level compression happens slightly before the isolated
	// mixer's (the amp compresses a little too): allow 1.5 dB.
	if math.Abs(nom.Delta()) > 1.5 {
		t.Errorf("nominal-gains P1dB: %v", nom)
	}
	ada, err := MeasureMixerP1dB(p, Adaptive, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ada.Delta()) > 1.5 {
		t.Errorf("adaptive P1dB: %v", ada)
	}
	if _, err := MeasureMixerP1dB(p, Method(9), cfg, nil); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestMeasureLPFCutoff(t *testing.T) {
	p := buildPath(t)
	res, err := MeasureLPFCutoff(p, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Delta())/res.True > 0.06 {
		t.Errorf("cutoff: %v (%.1f%% error)", res, 100*res.Delta()/res.True)
	}
	// A deviated corner must be tracked.
	p2 := buildPath(t)
	p2.LPF.CutoffHz *= 1.12
	res2, err := MeasureLPFCutoff(p2, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Delta())/res2.True > 0.06 {
		t.Errorf("deviated cutoff: %v", res2)
	}
	if res2.Measured <= res.Measured {
		t.Error("higher corner not reflected in measurement")
	}
}

func TestMeasureLOFreqError(t *testing.T) {
	p := buildPath(t)
	p.LO.FreqHz += 250 // inject +250 Hz LO error
	res, err := MeasureLOFreqError(p, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.True-250) > 1e-9 {
		t.Fatalf("oracle = %g", res.True)
	}
	// Bin width is ~2 kHz; interpolation should get within ~200 Hz.
	if math.Abs(res.Delta()) > 200 {
		t.Errorf("LO freq error: %v", res)
	}
}

func TestMeasureSNRBoundaryBehaviour(t *testing.T) {
	p := buildPath(t)
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(80))
	midSNR, err := MeasureSNRAtAmplitude(p, 0.004, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the path into saturation: SINAD must collapse.
	rng2 := rand.New(rand.NewSource(80))
	bigSNR, err := MeasureSNRAtAmplitude(p, 0.2, cfg, rng2)
	if err != nil {
		t.Fatal(err)
	}
	if bigSNR >= midSNR-10 {
		t.Errorf("saturated SINAD %g should collapse vs mid-scale %g", bigSNR, midSNR)
	}
	// Tiny amplitude: SNR degrades toward the noise floor.
	rng3 := rand.New(rand.NewSource(80))
	smallSNR, err := MeasureSNRAtAmplitude(p, 0.00004, cfg, rng3)
	if err != nil {
		t.Fatal(err)
	}
	if smallSNR >= midSNR-10 {
		t.Errorf("small-signal SINAD %g should degrade vs mid-scale %g", smallSNR, midSNR)
	}
}

func TestMonteCarloErrorSpreadAdaptiveVsNominal(t *testing.T) {
	// Sampled devices: the adaptive IIP3 error spread should be
	// visibly tighter than the nominal-gains spread (Figure 4 / E5).
	if testing.Short() {
		t.Skip("monte carlo spread test skipped in -short")
	}
	cfg := Config{N: 2048, Settle: 256}
	st := DefaultIIP3Stimulus()
	var nomErrs, adaErrs []float64
	for seed := int64(0); seed < 12; seed++ {
		p := samplePath(t, 100+seed)
		nom, err := MeasureMixerIIP3(p, NominalGains, st, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		ada, err := MeasureMixerIIP3(p, Adaptive, st, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		nomErrs = append(nomErrs, nom.Delta())
		adaErrs = append(adaErrs, ada.Delta())
	}
	if rms(adaErrs) >= rms(nomErrs) {
		t.Errorf("adaptive RMS error %g should beat nominal %g", rms(adaErrs), rms(nomErrs))
	}
}

func rms(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v * v
	}
	return math.Sqrt(s / float64(len(xs)))
}

func TestResultString(t *testing.T) {
	r := Result{Kind: MixerIIP3, Target: "mixer", Method: Adaptive,
		Measured: 8.5, True: 8.0, Unit: "dBm"}
	s := r.String()
	for _, want := range []string{"mixer", "adaptive", "8.5", "dBm"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestMeasureGroupDelay(t *testing.T) {
	p := buildPath(t)
	res, err := MeasureGroupDelay(p, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.True <= 0 {
		t.Fatalf("oracle group delay %g", res.True)
	}
	// The digital filter alone contributes (13-1)/2 / 8 MHz = 750 ns;
	// the biquad adds ~100-250 ns. Require 10% agreement.
	if res.True < 0.75e-6 || res.True > 1.2e-6 {
		t.Errorf("oracle %g s implausible", res.True)
	}
	if math.Abs(res.Delta())/res.True > 0.1 {
		t.Errorf("group delay: %v (%.1f%% error)", res, 100*res.Delta()/res.True)
	}
	// A slower filter (lower fc) must show more delay.
	p2 := buildPath(t)
	p2.LPF.CutoffHz *= 0.7
	res2, err := MeasureGroupDelay(p2, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Measured <= res.Measured {
		t.Errorf("lower corner should add delay: %g vs %g", res2.Measured, res.Measured)
	}
	if _, err := MeasureGroupDelay(p, Config{N: 5}, nil); err == nil {
		t.Error("bad config accepted")
	}
}

func TestMeasureLOFreqErrorFitBeatsInterpolation(t *testing.T) {
	p := buildPath(t)
	p.LO.FreqHz += 137 // small injected error
	interp, err := MeasureLOFreqError(p, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := MeasureLOFreqErrorFit(p, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Delta()) > 20 {
		t.Errorf("sine-fit LO error: %v", fit)
	}
	if math.Abs(fit.Delta()) > math.Abs(interp.Delta()) {
		t.Errorf("sine fit |err| %g should beat interpolation %g",
			math.Abs(fit.Delta()), math.Abs(interp.Delta()))
	}
	if _, err := MeasureLOFreqErrorFit(p, Config{N: 5}, nil); err == nil {
		t.Error("bad config accepted")
	}
}

func TestMeasureAmpHD3(t *testing.T) {
	p := buildPath(t)
	// Drive at -20 dBm: HD3 from the cubic model is well above any
	// floor in a noiseless full-access capture.
	inAmp := 0.0316 // ≈ -20 dBm
	res, err := MeasureAmpHD3(p, inAmp, Config{N: 2048, Settle: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Delta()) > 0.5 {
		t.Errorf("HD3: %v", res)
	}
	// A worse (lower) IIP3 must raise HD3.
	p2 := buildPath(t)
	p2.Amp.IIP3DBm -= 6
	res2, err := MeasureAmpHD3(p2, inAmp, Config{N: 2048, Settle: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Measured <= res.Measured {
		t.Errorf("lower IIP3 should raise HD3: %g vs %g", res2.Measured, res.Measured)
	}
	if _, err := MeasureAmpHD3(p, 0, DefaultConfig(), nil); err == nil {
		t.Error("zero amplitude accepted")
	}
	if _, err := MeasureAmpHD3(p, 0.01, Config{N: 5}, nil); err == nil {
		t.Error("bad config accepted")
	}
}

func TestMeasureStopbandGain(t *testing.T) {
	p := buildPath(t)
	res, err := MeasureStopbandGain(p, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// ~-13 dB at 2.2×fc for a 2nd-order Butterworth with +6 dB gain;
	// allow 1.5 dB for bilinear warping and ratio noise.
	if math.Abs(res.Delta()) > 1.5 {
		t.Errorf("stopband gain: %v", res)
	}
	// A higher corner raises (less-negative) stop-band gain at the
	// fixed probe offset... the probe tracks nominal fc, so instead
	// check a deviated instance is still measured near its truth.
	p2 := buildPath(t)
	p2.LPF.CutoffHz *= 1.1
	res2, err := MeasureStopbandGain(p2, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Delta()) > 1.5 {
		t.Errorf("deviated stopband gain: %v", res2)
	}
	if res2.Measured <= res.Measured {
		t.Error("higher corner should raise the stop-band gain at the fixed probe")
	}
}

func TestMeasureDynamicRange(t *testing.T) {
	if testing.Short() {
		t.Skip("amplitude sweeps skipped in -short")
	}
	p := buildPath(t)
	rng := rand.New(rand.NewSource(140))
	res, err := MeasureDynamicRange(p, Config{N: 2048, Settle: 256}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// ~50-70 dB for this path (digital filter processing gain pushes
	// the detectable floor below the raw converter noise).
	if res.Measured < 40 || res.Measured > 85 {
		t.Errorf("dynamic range = %v", res)
	}
	if math.Abs(res.Delta()) > 8 {
		t.Errorf("DR measured %g vs oracle %g", res.Measured, res.True)
	}
	// Extra path noise must shrink the measured DR.
	p2 := buildPath(t)
	p2.LPF.Spec.OutputNoiseRMS *= 30
	rng2 := rand.New(rand.NewSource(140))
	res2, err := MeasureDynamicRange(p2, Config{N: 2048, Settle: 256}, rng2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Measured >= res.Measured-3 {
		t.Errorf("noisy path DR %g should be well below %g", res2.Measured, res.Measured)
	}
	if _, err := MeasureDynamicRange(p, Config{N: 5}, nil); err == nil {
		t.Error("bad config accepted")
	}
}
