// Package params implements the module-parameter measurements of the
// paper's Table 1 as system-level test procedures: stimuli are applied
// at the primary input of a path.Path, the response is observed at the
// digital filter output, and the parameter is extracted with DSP —
// optionally through the paper's two translation methods (nominal-gain
// propagation vs. the adaptive, path-gain-first strategy) so their
// accuracies can be compared (Figure 4, Table 2).
package params

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mstx/internal/analog"
	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/msignal"
	"mstx/internal/path"
)

// ErrUntranslatable marks a measurement that cannot be performed
// through the functional path on this device — the signal of interest
// is buried in noise or masked by another effect. The caller should
// fall back to a DFT test point rather than fail the device.
var ErrUntranslatable = errors.New("untranslatable through the functional path")

// Kind identifies a measured parameter (the Table 1 taxonomy).
type Kind string

// Parameter kinds.
const (
	PathGain     Kind = "path-gain"
	MixerIIP3    Kind = "mixer-iip3"
	MixerP1dB    Kind = "mixer-p1db"
	LPFCutoff    Kind = "lpf-cutoff"
	DCOffset     Kind = "dc-offset"
	PathSNR      Kind = "path-snr"
	LOFreqError  Kind = "lo-freq-error"
	LOIsolation  Kind = "lo-isolation"
	StopbandGain Kind = "stopband-gain"
	NoiseFigure  Kind = "noise-figure"
	DynamicRange Kind = "dynamic-range"
	ADCOffset    Kind = "adc-offset"
	ADCINL       Kind = "adc-inl"
	ADCDNL       Kind = "adc-dnl"
	GroupDelay   Kind = "group-delay"
	AmpHD3       Kind = "amp-hd3"
	PhaseNoise   Kind = "phase-noise"
)

// Method selects how a propagation-translated parameter is computed.
type Method int

const (
	// FullAccess measures at the target block's own ports (the DFT
	// baseline the paper wants to avoid).
	FullAccess Method = iota
	// NominalGains refers primary-output measurements back through the
	// nominal gains of the other blocks (Figure 4a applied at PO).
	NominalGains
	// Adaptive first measures the composite path gain accurately and
	// uses it in place of the unknown block gains (Figure 4b).
	Adaptive
)

// String names the method.
func (m Method) String() string {
	switch m {
	case FullAccess:
		return "full-access"
	case NominalGains:
		return "nominal-gains"
	case Adaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Result is one parameter measurement with its oracle.
type Result struct {
	// Kind identifies the parameter.
	Kind Kind
	// Target is the block the parameter belongs to.
	Target string
	// Method is the translation method used.
	Method Method
	// Measured is the value the system-level test computed.
	Measured float64
	// True is the instance's actual value (the oracle).
	True float64
	// Unit is the value's unit for reports.
	Unit string
}

// Delta returns Measured − True.
func (r Result) Delta() float64 { return r.Measured - r.True }

// String formats the result.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s [%s]: measured %.4g %s, true %.4g %s (err %+.4g)",
		r.Target, r.Kind, r.Method, r.Measured, r.Unit, r.True, r.Unit, r.Delta())
}

// Config sets the capture geometry shared by the procedures.
type Config struct {
	// N is the analysis record length in ADC samples (power of two).
	N int
	// Settle is the number of leading samples discarded for filter
	// settling.
	Settle int
}

// DefaultConfig returns the standard 4096-point capture with 512
// settle samples.
func DefaultConfig() Config { return Config{N: 4096, Settle: 512} }

func (c Config) validate() error {
	if c.N <= 0 || !dsp.IsPowerOfTwo(c.N) {
		return fmt.Errorf("params: N = %d must be a positive power of two", c.N)
	}
	if c.Settle < 0 {
		return fmt.Errorf("params: negative settle")
	}
	return nil
}

// captureSpectrum runs the path and returns the spectrum of the
// settled filter-output window.
func captureSpectrum(p *path.Path, stim msignal.Signal, cfg Config, rng *rand.Rand) (*dsp.Spectrum, []float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	cap, err := p.Run(stim, cfg.N+cfg.Settle, rng)
	if err != nil {
		return nil, nil, err
	}
	rec := cap.FilterOut[cfg.Settle:]
	s, err := dsp.PowerSpectrum(rec, p.Spec.ADCRate, dsp.Rectangular)
	if err != nil {
		return nil, nil, err
	}
	return s, rec, nil
}

// digitalGain returns the exactly-known digital filter amplitude
// response at frequency f.
func digitalGain(p *path.Path, f float64) float64 {
	return digital.FrequencyResponseMag(p.Spec.FilterCoeffs, f/p.Spec.ADCRate)
}

// ifBin returns a coherent IF frequency near wantHz for the capture
// geometry.
func ifBin(p *path.Path, cfg Config, wantHz float64) float64 {
	bin := int(math.Round(wantHz * float64(cfg.N) / p.Spec.ADCRate))
	if bin < 1 {
		bin = 1
	}
	return dsp.CoherentBin(p.Spec.ADCRate, cfg.N, bin)
}

// rfFor converts an IF frequency to the high-side RF stimulus
// frequency using the nominal LO (all the tester knows).
func rfFor(p *path.Path, fIF float64) float64 {
	return p.Spec.LO.FreqHz.Nominal + fIF
}

// MeasurePathGain measures the composite PI→ADC path gain in dB using
// a deep-pass-band tone (translation by composition). The digital
// filter response is divided out exactly.
func MeasurePathGain(p *path.Path, cfg Config, rng *rand.Rand) (Result, error) {
	fIF := ifBin(p, cfg, 200e3)
	amp := 0.004
	stim := msignal.NewTone(rfFor(p, fIF), amp)
	s, _, err := captureSpectrum(p, stim, cfg, rng)
	if err != nil {
		return Result{}, err
	}
	m := dsp.MeasureTone(s, fIF)
	gd := digitalGain(p, fIF)
	measured := dsp.AmplitudeDB(m.Amplitude / gd / amp)
	// Oracle: actual block gains plus the actual LPF response at fIF
	// relative to its pass-band gain.
	rolloff := dsp.AmplitudeDB(p.LPF.ResponseMag(fIF)) - p.LPF.GainDB
	truth := p.ActualPathGainDB() + rolloff
	return Result{
		Kind: PathGain, Target: "path", Method: Adaptive,
		Measured: measured, True: truth, Unit: "dB",
	}, nil
}

// MeasureDCOffset measures the composed baseband DC offset (LPF offset
// plus ADC offset; amplifier offset is rejected by the mixer) at the
// primary output with a zero input.
func MeasureDCOffset(p *path.Path, cfg Config, rng *rand.Rand) (Result, error) {
	_, rec, err := captureSpectrum(p, msignal.Signal{}, cfg, rng)
	if err != nil {
		return Result{}, err
	}
	dcGain := digital.FrequencyResponseMag(p.Spec.FilterCoeffs, 0)
	measured := dsp.Mean(rec) / dcGain
	// The oracle includes the ADC's INL bow, which peaks at mid-scale
	// and acts as an additional offset for a near-zero input.
	truth := p.LPF.OffsetV + (p.ADC.OffsetLSB+p.ADC.INLPeakLSB)*p.ADC.LSB()
	return Result{
		Kind: DCOffset, Target: "lpf+adc", Method: Adaptive,
		Measured: measured, True: truth, Unit: "V",
	}, nil
}

// IIP3Stimulus describes the two-tone geometry used by the IIP3 test.
type IIP3Stimulus struct {
	// F1IF and F2IF are the wanted IF tone frequencies, Hz.
	F1IF, F2IF float64
	// MixerInAmp is the per-tone amplitude wanted at the mixer input,
	// volts.
	MixerInAmp float64
}

// DefaultIIP3Stimulus returns the standard geometry: IF tones near
// 0.9 and 1.0 MHz with 50 mV per tone at the mixer input.
func DefaultIIP3Stimulus() IIP3Stimulus {
	return IIP3Stimulus{F1IF: 0.9e6, F2IF: 1.0e6, MixerInAmp: 0.05}
}

// MeasureMixerIIP3 measures the mixer's input IP3 in dBm through the
// chosen translation method. The PO powers X (fundamental) and Y (IM3
// at 2f1−f2) are corrected for the exactly-known digital filter and
// combined per Figure 4:
//
//	nominal:  IIP3 = (3X−Y)/2 − (G_M,nom + G_B,nom)
//	adaptive: IIP3 = (3X−Y)/2 − G_path,measured + G_A,nom
//
// FullAccess bypasses the path: it drives the mixer input directly and
// observes the mixer output, the DFT-style baseline.
func MeasureMixerIIP3(p *path.Path, method Method, st IIP3Stimulus, cfg Config, rng *rand.Rand) (Result, error) {
	truth := p.Mixer.IIP3DBm
	if method == FullAccess {
		measured, err := fullAccessMixerIIP3(p, st, cfg, rng)
		if err != nil {
			return Result{}, err
		}
		return Result{Kind: MixerIIP3, Target: p.Mixer.Name(), Method: method,
			Measured: measured, True: truth, Unit: "dBm"}, nil
	}
	f1 := ifBin(p, cfg, st.F1IF)
	f2 := ifBin(p, cfg, st.F2IF)
	fim := 2*f1 - f2
	if fim <= 0 {
		return Result{}, fmt.Errorf("params: IM3 frequency %g not observable", fim)
	}
	// Back-propagate the wanted mixer-input amplitude to the PI.
	want := msignal.NewTwoTone(rfFor(p, f1), rfFor(p, f2), st.MixerInAmp)
	stim, err := p.StimulusFor(want, path.StageMixerIn)
	if err != nil {
		return Result{}, err
	}
	// Retag the stimulus tones at RF (StimulusFor keeps frequencies).
	s, _, err := captureSpectrum(p, stim, cfg, rng)
	if err != nil {
		return Result{}, err
	}
	x := dsp.MeasureTone(s, f1)
	y := dsp.MeasureTone(s, fim)
	if y.Amplitude <= 0 {
		return Result{}, fmt.Errorf("params: IM3 product below the noise floor: %w", ErrUntranslatable)
	}
	// Correct each product for the digital filter (known exactly) and
	// for the filter block's *nominal* frequency-dependent roll-off
	// (the tester's model of the LPF); the pass-band gain itself is
	// handled per method below.
	rolloff := func(f float64) float64 {
		r := math.Pow(f/p.Spec.LPF.CutoffHz.Nominal, 4)
		return 1 / math.Sqrt(1+r)
	}
	xDBm := analog.AmpToDBm(x.Amplitude / digitalGain(p, f1) / rolloff(f1))
	yDBm := analog.AmpToDBm(y.Amplitude / digitalGain(p, fim) / rolloff(fim))
	base := (3*xDBm - yDBm) / 2
	var measured float64
	switch method {
	case NominalGains:
		gB := p.Spec.LPF.GainDB.Nominal
		measured = base - (p.Spec.Mixer.ConvGainDB.Nominal + gB)
	case Adaptive:
		gPath, err := MeasurePathGain(p, cfg, rng)
		if err != nil {
			return Result{}, err
		}
		// The pass-band B-gain cancels between the measured path gain
		// and the roll-off-corrected products; only the amp's nominal
		// gain is trusted (Figure 4b).
		measured = base - gPath.Measured + p.Spec.Amp.GainDB.Nominal
	default:
		return Result{}, fmt.Errorf("params: unknown method %v", method)
	}
	return Result{Kind: MixerIIP3, Target: p.Mixer.Name(), Method: method,
		Measured: measured, True: truth, Unit: "dBm"}, nil
}

// fullAccessMixerIIP3 drives the mixer directly (test-point access)
// and measures at the mixer output.
func fullAccessMixerIIP3(p *path.Path, st IIP3Stimulus, cfg Config, rng *rand.Rand) (float64, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	n := (cfg.N + cfg.Settle) * p.Decim()
	fs := p.Spec.SimRate
	f1 := rfFor(p, ifBin(p, cfg, st.F1IF))
	f2 := rfFor(p, ifBin(p, cfg, st.F2IF))
	stim := msignal.NewTwoTone(f1, f2, st.MixerInAmp)
	x := stim.Render(n, fs, rng)
	out := p.Mixer.Process(x, fs, rng)
	// Observe the IF products directly at the mixer output.
	s, err := dsp.PowerSpectrum(out[cfg.Settle*p.Decim():], fs, dsp.Hann)
	if err != nil {
		return 0, err
	}
	fIF1 := f1 - p.Spec.LO.FreqHz.Nominal
	fIF2 := f2 - p.Spec.LO.FreqHz.Nominal
	fIM := 2*fIF1 - fIF2
	xm := dsp.MeasureTone(s, fIF1)
	ym := dsp.MeasureTone(s, fIM)
	if ym.Amplitude <= 0 {
		return 0, fmt.Errorf("params: full-access IM3 not measurable")
	}
	pin := analog.AmpToDBm(st.MixerInAmp)
	return pin + (analog.AmpToDBm(xm.Amplitude)-analog.AmpToDBm(ym.Amplitude))/2, nil
}

// MeasureMixerP1dB measures the mixer's input 1 dB compression point
// in dBm by sweeping the PI amplitude and locating the 1 dB gain
// compression, referring the input level back through the amplifier's
// nominal gain (NominalGains) or through the measured small-signal
// path gain minus nominal downstream gains (Adaptive).
func MeasureMixerP1dB(p *path.Path, method Method, cfg Config, rng *rand.Rand) (Result, error) {
	truth := trueMixerP1dB(p)
	if method == FullAccess {
		m, err := fullAccessMixerP1dB(p)
		if err != nil {
			return Result{}, err
		}
		return Result{Kind: MixerP1dB, Target: p.Mixer.Name(), Method: method,
			Measured: m, True: truth, Unit: "dBm"}, nil
	}
	fIF := ifBin(p, cfg, 900e3)
	fRF := rfFor(p, fIF)
	gd := digitalGain(p, fIF)
	gainAt := func(amp float64) (float64, error) {
		s, _, err := captureSpectrum(p, msignal.NewTone(fRF, amp), cfg, rng)
		if err != nil {
			return 0, err
		}
		m := dsp.MeasureTone(s, fIF)
		return dsp.AmplitudeDB(m.Amplitude / gd / amp), nil
	}
	small, err := gainAt(0.002)
	if err != nil {
		return Result{}, err
	}
	// Sweep PI amplitude geometrically until compression exceeds 1 dB,
	// then bisect.
	lo, hi := 0.002, 0.0
	for a := 0.004; a < 1.0; a *= 1.3 {
		g, err := gainAt(a)
		if err != nil {
			return Result{}, err
		}
		if small-g >= 1 {
			hi = a
			break
		}
		lo = a
	}
	if hi == 0 {
		return Result{}, fmt.Errorf("params: no compression found up to full scale")
	}
	for i := 0; i < 12; i++ {
		mid := math.Sqrt(lo * hi)
		g, err := gainAt(mid)
		if err != nil {
			return Result{}, err
		}
		if small-g >= 1 {
			hi = mid
		} else {
			lo = mid
		}
	}
	aPI := math.Sqrt(lo * hi)
	// Refer the PI level to the mixer input.
	var gAdB float64
	switch method {
	case NominalGains:
		gAdB = p.Spec.Amp.GainDB.Nominal
	case Adaptive:
		gPath, err := MeasurePathGain(p, cfg, rng)
		if err != nil {
			return Result{}, err
		}
		gAdB = gPath.Measured - p.Spec.Mixer.ConvGainDB.Nominal - p.Spec.LPF.GainDB.Nominal
	default:
		return Result{}, fmt.Errorf("params: unknown method %v", method)
	}
	measured := analog.AmpToDBm(aPI) + gAdB
	return Result{Kind: MixerP1dB, Target: p.Mixer.Name(), Method: method,
		Measured: measured, True: truth, Unit: "dBm"}, nil
}

// trueMixerP1dB numerically finds the instance mixer's true input
// 1 dB compression amplitude from its own nonlinearity (cubic + clip).
func trueMixerP1dB(p *path.Path) float64 {
	nl := analog.NewNonlinearity(1, p.Mixer.IIP3DBm, p.Mixer.P1dBDBm)
	gain := func(a float64) float64 {
		// Fundamental amplitude of NL(a·cos) via 1024-point projection.
		const n = 1024
		var acc float64
		for i := 0; i < n; i++ {
			th := 2 * math.Pi * float64(i) / n
			acc += nl.Apply(a*math.Cos(th)) * math.Cos(th)
		}
		return 2 * acc / n / a
	}
	small := gain(1e-4)
	lo, hi := 1e-4, 0.0
	for a := 2e-4; a < 10; a *= 1.2 {
		if dsp.AmplitudeDB(small)-dsp.AmplitudeDB(gain(a)) >= 1 {
			hi = a
			break
		}
		lo = a
	}
	if hi == 0 {
		return math.Inf(1)
	}
	for i := 0; i < 40; i++ {
		mid := math.Sqrt(lo * hi)
		if dsp.AmplitudeDB(small)-dsp.AmplitudeDB(gain(mid)) >= 1 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return analog.AmpToDBm(math.Sqrt(lo * hi))
}

// fullAccessMixerP1dB is trueMixerP1dB exposed as the full-access
// measurement (the tester with a test point sees the same thing).
func fullAccessMixerP1dB(p *path.Path) (float64, error) {
	v := trueMixerP1dB(p)
	if math.IsInf(v, 1) {
		return 0, fmt.Errorf("params: mixer does not compress")
	}
	return v, nil
}

// MeasureLPFCutoff measures the filter's −3 dB corner in Hz by a
// ratiometric IF sweep: each point is normalized to a deep-pass-band
// reference, so block gains cancel and only the corner remains. The
// digital filter response is divided out exactly.
func MeasureLPFCutoff(p *path.Path, cfg Config, rng *rand.Rand) (Result, error) {
	amp := 0.004
	ref := ifBin(p, cfg, 200e3)
	measure := func(fIF float64) (float64, error) {
		s, _, err := captureSpectrum(p, msignal.NewTone(rfFor(p, fIF), amp), cfg, rng)
		if err != nil {
			return 0, err
		}
		m := dsp.MeasureTone(s, fIF)
		return m.Amplitude / digitalGain(p, fIF), nil
	}
	refAmp, err := measure(ref)
	if err != nil {
		return Result{}, err
	}
	if refAmp <= 0 {
		return Result{}, fmt.Errorf("params: reference tone lost")
	}
	// The reference point itself sits on the Butterworth curve; the
	// −3 dB point relative to DC corresponds to |H(f)|/|H(ref)| =
	// (1/√2)/|Hn(ref)| with |Hn| the unit-gain response. Solve by
	// bisection on the measured ratio against that target.
	target := math.Sqrt(0.5)
	ratioAt := func(fIF float64) (float64, error) {
		a, err := measure(fIF)
		if err != nil {
			return 0, err
		}
		// Undo the reference point's own (nominal) roll-off so the
		// ratio estimates |H(f)|/gain.
		refRolloff := 1 / math.Sqrt(1+math.Pow(ref/p.Spec.LPF.CutoffHz.Nominal, 4))
		return a / (refAmp / refRolloff), nil
	}
	lo := ifBin(p, cfg, 600e3)
	hi := ifBin(p, cfg, 2.6e6)
	rLo, err := ratioAt(lo)
	if err != nil {
		return Result{}, err
	}
	rHi, err := ratioAt(hi)
	if err != nil {
		return Result{}, err
	}
	if rLo < target || rHi > target {
		return Result{}, fmt.Errorf("params: corner outside sweep window [%g, %g]", lo, hi)
	}
	for i := 0; i < 10; i++ {
		mid := ifBin(p, cfg, math.Sqrt(lo*hi))
		r, err := ratioAt(mid)
		if err != nil {
			return Result{}, err
		}
		if r > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	measured := math.Sqrt(lo * hi)
	return Result{Kind: LPFCutoff, Target: p.LPF.Name(), Method: Adaptive,
		Measured: measured, True: p.LPF.CutoffHz, Unit: "Hz"}, nil
}

// MeasureLOFreqError measures the LO frequency error in Hz by applying
// an RF tone derived from the nominal LO and interpolating the exact
// IF peak position at the output (three-point parabolic interpolation
// on log power). A positive error means the LO runs fast.
func MeasureLOFreqError(p *path.Path, cfg Config, rng *rand.Rand) (Result, error) {
	fIF := ifBin(p, cfg, 1.0e6)
	stim := msignal.NewTone(rfFor(p, fIF), 0.004)
	s, _, err := captureSpectrum(p, stim, cfg, rng)
	if err != nil {
		return Result{}, err
	}
	k := s.PeakBin(s.Bin(fIF)-20, s.Bin(fIF)+20)
	if k <= 0 || k >= len(s.Power)-1 {
		return Result{}, fmt.Errorf("params: IF peak at spectrum edge")
	}
	// Parabolic interpolation on dB magnitudes.
	la := dsp.DB(s.Power[k-1])
	lb := dsp.DB(s.Power[k])
	lc := dsp.DB(s.Power[k+1])
	den := la - 2*lb + lc
	delta := 0.0
	if den != 0 {
		delta = 0.5 * (la - lc) / den
	}
	fMeas := (float64(k) + delta) * p.Spec.ADCRate / float64(s.NFFT)
	// The RF was nominal-LO + fIF; a fast LO lowers the IF.
	measured := fIF - fMeas
	return Result{Kind: LOFreqError, Target: p.LO.Name(), Method: Adaptive,
		Measured: measured, True: p.LO.FrequencyError(), Unit: "Hz"}, nil
}

// MeasureStopbandGain measures the analog filter's stop-band gain in
// dB at ~2.2×fc, ratiometrically against a deep-pass-band reference so
// the path gain cancels; the digital channel filter's (exactly known)
// response at both frequencies is divided out. Whether the probe tone
// survives the digital filter at all is the planner's observability
// call.
func MeasureStopbandGain(p *path.Path, cfg Config, rng *rand.Rand) (Result, error) {
	fRef := ifBin(p, cfg, 200e3)
	fStop := ifBin(p, cfg, 2.2*p.Spec.LPF.CutoffHz.Nominal)
	if fStop >= p.Spec.ADCRate/2 {
		return Result{}, fmt.Errorf("params: stop-band probe %g beyond Nyquist: %w", fStop, ErrUntranslatable)
	}
	const amp = 0.02
	measure := func(f float64) (float64, error) {
		s, _, err := captureSpectrum(p, msignal.NewTone(rfFor(p, f), amp), cfg, rng)
		if err != nil {
			return 0, err
		}
		return dsp.MeasureTone(s, f).Amplitude / digitalGain(p, f), nil
	}
	aRef, err := measure(fRef)
	if err != nil {
		return Result{}, err
	}
	aStop, err := measure(fStop)
	if err != nil {
		return Result{}, err
	}
	if aStop <= 0 || aRef <= 0 {
		return Result{}, fmt.Errorf("params: stop-band probe below the floor: %w", ErrUntranslatable)
	}
	// The reference point sits on the filter curve too; undo its
	// (nominal) roll-off to refer the ratio to the pass-band gain.
	refRolloff := 1 / math.Sqrt(1+math.Pow(fRef/p.Spec.LPF.CutoffHz.Nominal, 4))
	measured := dsp.AmplitudeDB(aStop/aRef*refRolloff) + p.Spec.LPF.GainDB.Nominal
	truth := p.LPF.StopbandGainDB(fStop)
	return Result{Kind: StopbandGain, Target: p.LPF.Name(), Method: Adaptive,
		Measured: measured, True: truth, Unit: "dB"}, nil
}

// MeasureAmpHD3 measures the amplifier's third-harmonic distortion in
// dBc with full access to its ports (Table 1's "3rd Order Harmonic").
// Through the path, the amp's RF harmonics fall far out of the IF band
// and are filtered, so this is inherently a full-access test; the
// amp's cubic nonlinearity is still covered at system level via the
// IM3/IIP3 product family.
func MeasureAmpHD3(p *path.Path, inAmp float64, cfg Config, rng *rand.Rand) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if inAmp <= 0 {
		return Result{}, fmt.Errorf("params: HD3 stimulus amplitude must be positive")
	}
	fs := p.Spec.SimRate
	n := cfg.N * p.Decim()
	f := dsp.CoherentBin(fs, n, n/37)
	x := msignal.NewTone(f, inAmp).Render(n, fs, rng)
	out := p.Amp.Process(x, fs, rng)
	s, err := dsp.PowerSpectrum(out, fs, dsp.Rectangular)
	if err != nil {
		return Result{}, err
	}
	fund := dsp.MeasureTone(s, f)
	h3 := dsp.MeasureTone(s, 3*f)
	if h3.Amplitude <= 0 {
		return Result{}, fmt.Errorf("params: third harmonic below the floor: %w", ErrUntranslatable)
	}
	measured := dsp.AmplitudeDB(h3.Amplitude / fund.Amplitude)
	// Oracle from the instance's cubic model.
	nl := analog.NewNonlinearity(p.Amp.Gain(), p.Amp.IIP3DBm, p.Amp.P1dBDBm)
	truth := dsp.AmplitudeDB(nl.HD3Amplitude(inAmp) / (p.Amp.Gain() * inAmp))
	return Result{Kind: AmpHD3, Target: p.Amp.Name(), Method: FullAccess,
		Measured: measured, True: truth, Unit: "dBc"}, nil
}

// MeasureGroupDelay measures the path's baseband group delay in
// seconds — one of the paper's phase-requiring tests ("offset and
// group delay measurements") that the attribute model must carry phase
// for. Two nearby IF tones are applied; the group delay follows from
// their output phase difference, with the unknown (but common) LO
// phase cancelling in the difference:
//
//	τ = t0 − Δφ / (2π·Δf)
//
// where t0 is the known capture offset. The oracle is the realized
// filter's phase slope plus the digital filter's linear-phase delay.
func MeasureGroupDelay(p *path.Path, cfg Config, rng *rand.Rand) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	k1 := int(math.Round(0.9e6 * float64(cfg.N) / p.Spec.ADCRate))
	k2 := k1 + 8
	f1 := dsp.CoherentBin(p.Spec.ADCRate, cfg.N, k1)
	f2 := dsp.CoherentBin(p.Spec.ADCRate, cfg.N, k2)
	stim := msignal.NewTwoTone(rfFor(p, f1), rfFor(p, f2), 0.004)
	cap, err := p.Run(stim, cfg.N+cfg.Settle, rng)
	if err != nil {
		return Result{}, err
	}
	rec := cap.FilterOut[cfg.Settle:]
	phi1 := dsp.PhaseAt(rec, k1)
	phi2 := dsp.PhaseAt(rec, k2)
	dphi := phi2 - phi1
	// Predict the phase difference for a rough delay guess (the
	// digital filter's linear phase dominates) and unwrap toward it.
	t0 := float64(cfg.Settle) / p.Spec.ADCRate
	df := f2 - f1
	tauGuess := float64(len(p.Spec.FilterCoeffs)-1) / 2 / p.Spec.ADCRate
	pred := 2 * math.Pi * df * (t0 - tauGuess)
	for dphi-pred > math.Pi {
		dphi -= 2 * math.Pi
	}
	for dphi-pred < -math.Pi {
		dphi += 2 * math.Pi
	}
	measured := t0 - dphi/(2*math.Pi*df)
	truth := p.LPF.GroupDelayAt((f1+f2)/2, p.Spec.SimRate) +
		float64(len(p.Spec.FilterCoeffs)-1)/2/p.Spec.ADCRate
	return Result{Kind: GroupDelay, Target: "path", Method: Adaptive,
		Measured: measured, True: truth, Unit: "s"}, nil
}

// MeasureDynamicRange measures the path's usable dynamic range in dB:
// the span from the minimum detectable input (SINAD = 6 dB) up to the
// 1 dB gain-compression input, both found by bisection on the PI
// amplitude. This is the composed DR of Table 1 — the per-block DRs
// partition it, which is exactly why the paper measures it as one
// composite parameter.
func MeasureDynamicRange(p *path.Path, cfg Config, rng *rand.Rand) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	small, err := MeasureGainAtAmplitude(p, 0.002, cfg, rng)
	if err != nil {
		return Result{}, err
	}
	// Upper edge: 1 dB compression via geometric bisection.
	lo, hi := 0.002, 0.0
	for a := 0.004; a < 1.0; a *= 1.4 {
		g, err := MeasureGainAtAmplitude(p, a, cfg, rng)
		if err != nil {
			return Result{}, err
		}
		if small-g >= 1 {
			hi = a
			break
		}
		lo = a
	}
	if hi == 0 {
		return Result{}, fmt.Errorf("params: no compression up to full scale: %w", ErrUntranslatable)
	}
	for i := 0; i < 8; i++ {
		mid := math.Sqrt(lo * hi)
		g, err := MeasureGainAtAmplitude(p, mid, cfg, rng)
		if err != nil {
			return Result{}, err
		}
		if small-g >= 1 {
			hi = mid
		} else {
			lo = mid
		}
	}
	top := math.Sqrt(lo * hi)
	// Lower edge: SINAD = 6 dB.
	lo, hi = 0.0, 0.002
	for a := 0.001; a > 1e-7; a /= 2 {
		s, err := MeasureSNRAtAmplitude(p, a, cfg, rng)
		if err != nil {
			return Result{}, err
		}
		if s < 6 {
			lo = a
			break
		}
		hi = a
	}
	if lo == 0 {
		return Result{}, fmt.Errorf("params: noise floor unreachable above 0.1 µV")
	}
	for i := 0; i < 6; i++ {
		mid := math.Sqrt(lo * hi)
		s, err := MeasureSNRAtAmplitude(p, mid, cfg, rng)
		if err != nil {
			return Result{}, err
		}
		if s < 6 {
			lo = mid
		} else {
			hi = mid
		}
	}
	bottom := math.Sqrt(lo * hi)
	measured := dsp.AmplitudeDB(top / bottom)
	// Oracle: the mixer's true 1 dB compression referred to the PI
	// over the noise-implied minimum detectable input.
	aTop := analog.DBmToAmp(trueMixerP1dB(p)) / math.Pow(10, p.Amp.GainDB/20)
	attr := p.Propagate(msignal.NewTone(p.Spec.LO.FreqHz.Nominal+900e3, 1), path.StageADCIn)
	lsb := p.ADC.LSB()
	noise := math.Sqrt(attr.NoiseRMS*attr.NoiseRMS + lsb*lsb/12 +
		p.Spec.ADC.NoiseRMSLSB*p.Spec.ADC.NoiseRMSLSB*lsb*lsb)
	aBot := noise * math.Sqrt2 * math.Pow(10, 6.0/20) / attr.Tones[0].Amp
	truth := dsp.AmplitudeDB(aTop / aBot)
	return Result{Kind: DynamicRange, Target: "path", Method: Adaptive,
		Measured: measured, True: truth, Unit: "dB",
	}, nil
}

// MeasureLOIsolation measures the mixer's LO-to-output isolation in
// dB with a zero input: the LO leakage aliases from f_LO into the
// first Nyquist zone at the converter, and its amplitude is referred
// back to the mixer output through the nominal LPF roll-off and the
// exactly-known digital filter. Whether this test is translatable at
// all depends on the leak clearing the converter noise — the planner
// checks that before scheduling it.
func MeasureLOIsolation(p *path.Path, cfg Config, rng *rand.Rand) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	cap, err := p.Run(msignal.Signal{}, cfg.N+cfg.Settle, rng)
	if err != nil {
		return Result{}, err
	}
	rec := cap.FilterOut[cfg.Settle:]
	// The aliased LO generally lands off-bin; use a Hann window.
	s, err := dsp.PowerSpectrum(rec, p.Spec.ADCRate, dsp.Hann)
	if err != nil {
		return Result{}, err
	}
	fAlias := dsp.AliasFrequency(p.Spec.LO.FreqHz.Nominal, p.Spec.ADCRate)
	m := dsp.MeasureTone(s, fAlias)
	if m.Amplitude <= 0 {
		return Result{}, fmt.Errorf("params: LO leakage below the noise floor: %w", ErrUntranslatable)
	}
	// Refer back through the known responses.
	gd := digitalGain(p, fAlias)
	r := math.Pow(p.Spec.LO.FreqHz.Nominal/p.Spec.LPF.CutoffHz.Nominal, 4)
	hB := math.Pow(10, p.Spec.LPF.GainDB.Nominal/20) / math.Sqrt(1+r)
	atMixer := m.Amplitude / gd / hB
	// The amplifier's DC offset self-mixes and lands exactly at f_LO,
	// coherent with the feed-through; subtract its nominal
	// contribution (2·G_M·V_off). The offset tolerance is part of
	// this test's error budget.
	upconvOffset := 2 * math.Pow(10, p.Spec.Mixer.ConvGainDB.Nominal/20) *
		math.Abs(p.Spec.Amp.OffsetV.Nominal)
	leakAtMixer := atMixer - upconvOffset
	if leakAtMixer <= 0 {
		return Result{}, fmt.Errorf("params: LO leakage masked by upconverted offset: %w", ErrUntranslatable)
	}
	measured := dsp.AmplitudeDB(p.Spec.Mixer.LODriveAmpV / leakAtMixer)
	return Result{Kind: LOIsolation, Target: p.Mixer.Name(), Method: Adaptive,
		Measured: measured, True: p.Mixer.LOIsolationDB, Unit: "dB"}, nil
}

// MeasureGainAtAmplitude returns the path gain in dB measured with a
// 900 kHz-IF tone at the given PI amplitude. Comparing this against
// the small-signal gain exposes compression (the Figure 3 saturation
// boundary check); the LPF roll-off at the IF cancels in the
// difference.
func MeasureGainAtAmplitude(p *path.Path, piAmp float64, cfg Config, rng *rand.Rand) (float64, error) {
	fIF := ifBin(p, cfg, 900e3)
	s, _, err := captureSpectrum(p, msignal.NewTone(rfFor(p, fIF), piAmp), cfg, rng)
	if err != nil {
		return 0, err
	}
	m := dsp.MeasureTone(s, fIF)
	return dsp.AmplitudeDB(m.Amplitude / digitalGain(p, fIF) / piAmp), nil
}

// MeasureLOFreqErrorFit measures the LO frequency error with a four-
// parameter IEEE-1057 sine fit instead of spectral peak interpolation
// — typically an order of magnitude tighter, at the cost of a
// nonlinear solve. Same conventions as MeasureLOFreqError.
func MeasureLOFreqErrorFit(p *path.Path, cfg Config, rng *rand.Rand) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	fIF := ifBin(p, cfg, 1.0e6)
	stim := msignal.NewTone(rfFor(p, fIF), 0.004)
	cap, err := p.Run(stim, cfg.N+cfg.Settle, rng)
	if err != nil {
		return Result{}, err
	}
	rec := cap.FilterOut[cfg.Settle:]
	fit, err := dsp.SineFit4(rec, p.Spec.ADCRate, fIF, 16)
	if err != nil {
		return Result{}, err
	}
	measured := fIF - fit.Frequency
	return Result{Kind: LOFreqError, Target: p.LO.Name(), Method: Adaptive,
		Measured: measured, True: p.LO.FrequencyError(), Unit: "Hz"}, nil
}

// MeasureSNRAtAmplitude captures a tone at the given PI amplitude and
// returns the output SNR in dB — the boundary check used by
// translation-by-composition (Figure 3): at minimum amplitude a
// negative gain error shows up as SNR loss, at maximum amplitude a
// positive gain error shows up as saturation distortion.
func MeasureSNRAtAmplitude(p *path.Path, piAmp float64, cfg Config, rng *rand.Rand) (float64, error) {
	fIF := ifBin(p, cfg, 900e3)
	s, _, err := captureSpectrum(p, msignal.NewTone(rfFor(p, fIF), piAmp), cfg, rng)
	if err != nil {
		return 0, err
	}
	an, err := dsp.AnalyzeSpectrum(s, []float64{fIF}, dsp.AnalyzeOptions{})
	if err != nil {
		return 0, err
	}
	return an.SINAD, nil
}
