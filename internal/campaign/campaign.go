// Package campaign is the pooled spectral fault-campaign engine: it
// pipelines 63-lane gate-level record generation into a bounded pool
// of spectral-detection workers, each owning a reusable FFT scratch
// (window table, complex work buffer, float conversion buffer) keyed
// off the shared dsp plan cache, so the per-fault hot path allocates
// nothing.
//
// The engine also applies a zero-diff screen: a faulty record that is
// identical to the good record has an identical spectrum, so its
// spectral verdict equals the good record's own — computed once — and
// the per-fault FFT is skipped entirely. On high-coverage stimuli a
// large fraction of the residual faults never toggle the output, so
// the screen removes a matching fraction of the transform work while
// leaving the campaign Report bit-identical to the serial reference
// path (fault.SerialSimulate with the same detector).
//
// The per-record steady state is a zero-allocation contract, pinned by
// testing.AllocsPerRun regression tests in dsp and spectest and by the
// BENCH_dsp.json / BENCH_campaign.json perf trajectories recorded by
// scripts/check.sh: once a worker's scratch is warm, the record →
// window → FFT → power spectrum → screen path allocates nothing. The
// same contract is available outside this engine — spectest.Detector
// satisfies fault.WorkerDetector, so fault.Simulate and
// fault.SerialSimulate bind one scratch per pool worker, and
// dsp.SpectrumScratch carries scratch-backed Welch, Analyze,
// NoiseFloor and CoherentAverage variants for streaming callers.
//
// Two further campaign-level reuses exploit that every batch drives
// the same stimulus. Record generation is differential: the fault-free
// machine's net values are captured once per step (digital.Baseline)
// and each batch re-evaluates only the fanout cone of its 63 faults —
// a small fraction of the circuit — instead of the whole netlist.
// And detection is memoized: structurally inequivalent faults often
// produce byte-identical output records, whose spectra and verdicts
// are necessarily identical too, so each distinct record pays for at
// most one transform. Both reuses are exact (no verdict can change)
// and both can be disabled in Options for A/B measurement.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mstx/internal/digital"
	"mstx/internal/fault"
	"mstx/internal/obs"
	"mstx/internal/resilient"
	"mstx/internal/spectest"
)

// Failpoint sites for the deterministic fault-injection harness: one
// per pipeline stage, fired once per batch. Disabled (nil registry)
// they cost one atomic load.
var (
	fpSimBatch = resilient.Site("campaign.sim_batch")
	fpDetBatch = resilient.Site("campaign.detect_batch")
)

// lanesPerBatch is the simulator's fault-lane capacity: 64 bit-lanes
// with lane 0 reserved for the good machine.
const lanesPerBatch = 63

// Options configures the engine's pipeline shape.
type Options struct {
	// SimWorkers bounds the concurrent 63-lane simulator passes.
	// Defaults to GOMAXPROCS.
	SimWorkers int
	// DetectWorkers bounds the spectral-detection pool (one FFT
	// scratch per worker). Defaults to GOMAXPROCS.
	DetectWorkers int
	// Queue is the number of simulated batches allowed in flight
	// between the two stages; it bounds the records held in memory.
	// Defaults to DetectWorkers.
	Queue int
	// DisableScreen turns the zero-diff screen off (every lane pays
	// its FFT); the screen is on by default and changes no verdict.
	DisableScreen bool
	// DisableDifferential turns cone-differential record generation
	// off (every batch re-evaluates the full netlist per step). The
	// differential path is on by default whenever the circuit compiles
	// and the baseline snapshot fits the memory budget; it changes no
	// record bit.
	DisableDifferential bool
	// DisableMemo turns record-verdict memoization off (byte-identical
	// faulty records each pay their own transform); memoization is on
	// by default and changes no verdict.
	DisableMemo bool
	// Quarantine recovers a panicking batch (either stage), marks its
	// faults Quarantined in the Report, and continues the campaign.
	// Without it the recovered panic aborts the run as an ordinary
	// error — the process never crashes either way.
	Quarantine bool
	// Checkpoint, when enabled, snapshots the batch ledger every
	// Checkpoint.Every batch completions so a killed campaign resumes
	// instead of restarting. The resumed Report is bit-identical; the
	// Memoized/Spectra split in Stats may shift (the memo table is
	// rebuilt on resume).
	Checkpoint *resilient.Checkpointer
	// CheckpointName names this campaign's snapshot inside
	// Checkpoint.Dir. Default "campaign".
	CheckpointName string
}

// maxBaselineBytes caps the differential baseline snapshot (one bit
// per net per record step); campaigns exceeding it fall back to full
// per-batch simulation rather than ballooning memory.
const maxBaselineBytes = 256 << 20

// Stats reports what the engine actually did.
type Stats struct {
	// Faults is the universe size.
	Faults int
	// Batches is the number of 63-lane simulator passes.
	Batches int
	// Screened counts lanes resolved by the zero-diff screen.
	Screened int
	// Memoized counts lanes resolved by record-verdict memoization (a
	// byte-identical record was already transformed).
	Memoized int
	// Spectra counts spectral evaluations actually performed,
	// including the one good-record evaluation backing the screen.
	Spectra int
	// Differential reports whether record generation replayed fault
	// cones against a shared baseline (false: full per-batch runs).
	Differential bool
	// Quarantined counts faults whose batch panicked and was isolated
	// under Options.Quarantine (their Results carry no verdict).
	Quarantined int
}

// campCkptVersion guards the campCkpt layout.
const campCkptVersion = 1

// campCkpt is the batch-ledger snapshot of a campaign run: which
// batches completed, every completed batch's results, the engine
// counters those batches contributed, and the campaign identity the
// ledger is only valid for. Spectra excludes the good-record verdict
// (recomputed on every run, including resumes).
type campCkpt struct {
	NF          int
	Patterns    int
	StimHash    uint64
	Done        []bool
	Results     []fault.Result
	Screened    int64
	Memoized    int64
	Spectra     int64
	Quarantined int64
}

// Engine runs spectral stuck-at campaigns for one universe/detector
// pair. It is cheap to construct; all heavy state is per-Run.
type Engine struct {
	U    *fault.Universe
	Det  *spectest.Detector
	Opts Options
}

// New builds an engine. The detector must already be calibrated;
// construction validates nothing about the stimulus, which is supplied
// per Run.
func New(u *fault.Universe, det *spectest.Detector, opts Options) (*Engine, error) {
	if u == nil {
		return nil, fmt.Errorf("campaign: nil universe")
	}
	if det == nil {
		return nil, fmt.Errorf("campaign: nil detector")
	}
	if opts.SimWorkers <= 0 {
		opts.SimWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.DetectWorkers <= 0 {
		opts.DetectWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.Queue <= 0 {
		opts.Queue = opts.DetectWorkers
	}
	return &Engine{U: u, Det: det, Opts: opts}, nil
}

// job is one simulated batch handed from the record-generation stage
// to the detection pool.
type job struct {
	batch int
	lo    int
	good  []int64
	lanes [][]int64
}

// Run executes the spectral campaign over one period of the (coherent)
// stimulus xs and returns the per-fault Report — identical to
// fault.SerialSimulate(u, xs, det) — together with engine statistics.
// Detector errors abort the run and surface as campaign errors; the
// first error in batch order is returned.
//
// Cancellation and deadlines on ctx are honored at batch granularity:
// an interrupted run drains its pipeline, returns the partial Report
// (completed batches carry verdicts; the rest keep the fault identity
// with FirstDiff -1) and an error satisfying errors.Is against
// resilient.ErrCanceled or resilient.ErrDeadline.
func (e *Engine) Run(ctx context.Context, xs []int64) (*fault.Report, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(xs) == 0 {
		return nil, nil, fmt.Errorf("campaign: empty input record")
	}
	nf := len(e.U.Faults)
	results := make([]fault.Result, nf)
	// Prefill the fault identity so partial (canceled) and quarantined
	// entries still say which fault they cover.
	for i, f := range e.U.Faults {
		results[i] = fault.Result{Fault: f, Tap: e.U.FIR.TapOfNet(f.Net), FirstDiff: -1}
	}
	nBatches := (nf + lanesPerBatch - 1) / lanesPerBatch
	stats := &Stats{Faults: nf, Batches: nBatches}

	// cctx is the internal drain signal: the first stage error (or the
	// caller's own cancellation) stops sim workers from claiming new
	// batches and unblocks any worker parked on the bounded jobs send,
	// so the pipeline never leaks goroutines on early error.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Observability: resolve every handle once per run, preferring a
	// registry carried by ctx (a job server records each job into its
	// own span ring) over the process default. With neither installed
	// all handles are nil, every use below is a nil-receiver no-op, and
	// none of the timing branches take a clock reading — the disabled
	// path is benchmarked to stay within noise of the uninstrumented
	// engine.
	reg := obs.For(ctx)
	var (
		runCtx      context.Context
		runSp       *obs.SpanHandle
		verdictHist *obs.Histogram
		genCounter  *obs.Counter
		busyNanos   int64
	)
	if reg != nil {
		runCtx, runSp = reg.Span(ctx, "campaign.run")
		defer runSp.End()
		verdictHist = reg.Histogram("campaign_verdict_seconds", 0, 0.1, 64)
		genCounter = reg.Counter("campaign_records_generated_total")
	}

	// The screen's shared verdict: a zero-diff lane's spectrum is the
	// good record's spectrum, so its verdict is the good record's. The
	// good record is the same for every batch (lane 0 of each pass),
	// so compute it — and its verdict — once up front. This also
	// surfaces stimulus/detector length mismatches before any batch
	// spins up. When the differential path is viable the same pass
	// captures the per-step baseline snapshots every batch replays its
	// fault cones against.
	goodSim := digital.NewFIRSim(e.U.FIR)
	var (
		good   []int64
		base   *digital.Baseline
		err    error
		baseSp *obs.SpanHandle
	)
	if reg != nil {
		_, baseSp = reg.Span(runCtx, "campaign.baseline")
	}
	useDiff := !e.Opts.DisableDifferential && goodSim.Compiled() &&
		digital.BaselineBytes(e.U.FIR, len(xs)) <= maxBaselineBytes
	if useDiff {
		base, err = goodSim.CaptureBaseline(xs)
		if err != nil {
			return nil, nil, err
		}
		good = base.Good
	} else {
		good, err = goodSim.RunPeriodic(xs)
		if err != nil {
			return nil, nil, err
		}
	}
	stats.Differential = useDiff
	goodDetected, err := e.Det.DetectRecord(good, nil)
	baseSp.End()
	if err != nil {
		return nil, nil, err
	}
	stats.Spectra++

	var (
		screened    int64
		memoized    int64
		spectra     int64
		quarantined int64
		failed      int32 // fast-fail flag; completion still drains cleanly
	)
	simErrs := make([]error, nBatches)
	detErrs := make([]error, nBatches)
	jobs := make(chan job, e.Opts.Queue)

	// Checkpoint ledger: completed batches' results and counter
	// contributions are copied into mutex-guarded shadow state at
	// completion, so a snapshot never reads lanes another worker is
	// still writing.
	ckName := e.Opts.CheckpointName
	if ckName == "" {
		ckName = "campaign"
	}
	stimHash := HashRecord(xs)
	var (
		ledgerMu   sync.Mutex
		done       []bool
		ledger     []fault.Result
		sinceSave  int
		doneAtLoad []bool
		ckptErr    error
	)
	if e.Opts.Checkpoint.Enabled() {
		done = make([]bool, nBatches)
		ledger = make([]fault.Result, nf)
		copy(ledger, results)
		var st campCkpt
		loaded, err := e.Opts.Checkpoint.Load(ckName, campCkptVersion, &st)
		if err != nil {
			return nil, nil, err
		}
		if loaded {
			if st.NF != nf || st.Patterns != len(xs) || st.StimHash != stimHash {
				return nil, nil, fmt.Errorf(
					"campaign: checkpoint %q is from a different campaign (nf=%d patterns=%d, want nf=%d patterns=%d)",
					ckName, st.NF, st.Patterns, nf, len(xs))
			}
			copy(results, st.Results)
			copy(ledger, st.Results)
			copy(done, st.Done)
			doneAtLoad = append([]bool(nil), st.Done...)
			screened, memoized = st.Screened, st.Memoized
			spectra, quarantined = st.Spectra, st.Quarantined
		}
	}
	saveLedgerLocked := func() error {
		return e.Opts.Checkpoint.Save(ckName, campCkptVersion, campCkpt{
			NF: nf, Patterns: len(xs), StimHash: stimHash,
			Done:        append([]bool(nil), done...),
			Results:     append([]fault.Result(nil), ledger...),
			Screened:    atomic.LoadInt64(&screened),
			Memoized:    atomic.LoadInt64(&memoized),
			Spectra:     atomic.LoadInt64(&spectra),
			Quarantined: atomic.LoadInt64(&quarantined),
		})
	}
	// commitBatch publishes one completed batch: its counter deltas go
	// into the run totals and — when checkpointing — its lanes go into
	// the ledger under the same lock that snapshots, so a saved state
	// never counts a batch it doesn't mark done.
	commitBatch := func(b, lo, hi int, scr, mem, spec, quar int64) {
		if !e.Opts.Checkpoint.Enabled() {
			atomic.AddInt64(&screened, scr)
			atomic.AddInt64(&memoized, mem)
			atomic.AddInt64(&spectra, spec)
			atomic.AddInt64(&quarantined, quar)
			return
		}
		ledgerMu.Lock()
		defer ledgerMu.Unlock()
		atomic.AddInt64(&screened, scr)
		atomic.AddInt64(&memoized, mem)
		atomic.AddInt64(&spectra, spec)
		atomic.AddInt64(&quarantined, quar)
		copy(ledger[lo:hi], results[lo:hi])
		done[b] = true
		sinceSave++
		if sinceSave >= e.Opts.Checkpoint.Interval() {
			sinceSave = 0
			//mstxvet:ignore lockorder deliberate snapshot under the ledger lock: the save must serialize with batch commits
			if err := saveLedgerLocked(); err != nil && ckptErr == nil {
				ckptErr = err
				atomic.StoreInt32(&failed, 1)
				cancel()
			}
		}
	}
	// quarantineBatch isolates a panicked batch: its lanes revert to
	// the bare fault identity (the panic may have left them
	// half-written) and the campaign continues.
	quarantineBatch := func(b, lo, hi int) {
		for i := lo; i < hi; i++ {
			f := e.U.Faults[i]
			results[i] = fault.Result{Fault: f, Tap: e.U.FIR.TapOfNet(f.Net), FirstDiff: -1, Quarantined: true}
		}
		commitBatch(b, lo, hi, 0, 0, 0, int64(hi-lo))
	}
	// Panic safety net for the pool goroutines themselves: a panic
	// outside the per-batch resilient.Call (engine bookkeeping, not
	// batch work) is recovered, recorded, and aborts the run instead
	// of crashing the process.
	var (
		poolOnce sync.Once
		poolErr  error
	)
	onPool := func(err error) {
		poolOnce.Do(func() { poolErr = err })
		atomic.StoreInt32(&failed, 1)
		cancel()
	}

	var (
		pipeSp    *obs.SpanHandle
		pipeStart time.Time
	)
	if reg != nil {
		_, pipeSp = reg.Span(runCtx, "campaign.pipeline")
		pipeStart = time.Now()
	}

	// Stage 1: bounded record-generation pool. Batches are claimed
	// from an atomic counter so at most SimWorkers goroutines exist.
	var simWG sync.WaitGroup
	simWorkers := e.Opts.SimWorkers
	if simWorkers > nBatches {
		simWorkers = nBatches
	}
	nextBatch := int64(-1)
	for w := 0; w < simWorkers; w++ {
		resilient.Go(&simWG, "campaign.sim_worker", func() error {
			for {
				b := int(atomic.AddInt64(&nextBatch, 1))
				if b >= nBatches {
					return nil
				}
				if atomic.LoadInt32(&failed) != 0 || cctx.Err() != nil {
					return nil
				}
				if doneAtLoad != nil && doneAtLoad[b] {
					continue // restored from the checkpoint ledger
				}
				lo := b * lanesPerBatch
				hi := lo + lanesPerBatch
				if hi > nf {
					hi = nf
				}
				var lanes [][]int64
				genErr := resilient.Call(fpSimBatch, func() error {
					if err := resilient.Fire(fpSimBatch); err != nil {
						return err
					}
					var err error
					if useDiff {
						lanes, err = fault.RecordsFromBaseline(e.U, base, e.U.Faults[lo:hi])
					} else {
						_, lanes, err = fault.Records(e.U, xs, e.U.Faults[lo:hi])
					}
					return err
				})
				if genErr != nil {
					var pe *resilient.PanicError
					if e.Opts.Quarantine && errors.As(genErr, &pe) {
						quarantineBatch(b, lo, hi)
						continue
					}
					simErrs[b] = genErr
					atomic.StoreInt32(&failed, 1)
					cancel()
					continue
				}
				genCounter.Add(int64(len(lanes)))
				// The bounded send must also watch the drain signal, or
				// a full queue would park this worker forever once the
				// detection pool stops consuming after an error.
				select {
				case jobs <- job{batch: b, lo: lo, good: good, lanes: lanes}:
				case <-cctx.Done():
					return nil
				}
			}
		}, onPool)
	}
	// The closer must run unconditionally — even after cancellation —
	// or the detection pool would park forever on a never-closed jobs
	// channel; it is the one goroutine here that ignores ctx on purpose.
	var closerWG sync.WaitGroup
	//mstxvet:ignore ctxflow closer must outlive cancellation to close the jobs channel
	resilient.Go(&closerWG, "campaign.jobs_closer", func() error {
		simWG.Wait()
		close(jobs)
		return nil
	}, nil)

	// Stage 2: detection pool. Each worker owns one scratch; lanes
	// whose record matches the good record take the screened verdict
	// without transforming, and byte-identical records share one
	// memoized verdict.
	var memo *memoTable
	if !e.Opts.DisableMemo {
		memo = newMemoTable()
	}
	var detWG sync.WaitGroup
	for w := 0; w < e.Opts.DetectWorkers; w++ {
		resilient.Go(&detWG, "campaign.detect_worker", func() error {
			var sc *spectest.Scratch
			process := func(j job) {
				if atomic.LoadInt32(&failed) != 0 || cctx.Err() != nil {
					return
				}
				if sc == nil {
					var err error
					if sc, err = e.Det.NewScratch(); err != nil {
						detErrs[j.batch] = err
						atomic.StoreInt32(&failed, 1)
						cancel()
						return
					}
				}
				var bScreened, bMemoized, bSpectra int64
				detErr := resilient.Call(fpDetBatch, func() error {
					if err := resilient.Fire(fpDetBatch); err != nil {
						return err
					}
					for i, rec := range j.lanes {
						f := e.U.Faults[j.lo+i]
						res := fault.Result{Fault: f, Tap: e.U.FIR.TapOfNet(f.Net)}
						res.FirstDiff, res.MaxAbsDiff = fault.DiffStats(j.good, rec)
						if !e.Opts.DisableScreen && res.MaxAbsDiff == 0 {
							res.Detected = goodDetected
							bScreened++
							results[j.lo+i] = res
							continue
						}
						var h uint64
						if memo != nil {
							h = HashRecord(rec)
							if d, ok := memo.lookup(h, rec); ok {
								res.Detected = d
								bMemoized++
								results[j.lo+i] = res
								continue
							}
						}
						var t0 time.Time
						if verdictHist != nil {
							t0 = time.Now()
						}
						det, err := e.Det.DetectRecord(rec, sc)
						if verdictHist != nil {
							verdictHist.Observe(time.Since(t0).Seconds())
						}
						if err != nil {
							return err
						}
						if memo != nil {
							memo.insert(h, rec, det)
						}
						res.Detected = det
						bSpectra++
						results[j.lo+i] = res
					}
					return nil
				})
				if detErr != nil {
					var pe *resilient.PanicError
					if e.Opts.Quarantine && errors.As(detErr, &pe) {
						quarantineBatch(j.batch, j.lo, j.lo+len(j.lanes))
						return
					}
					detErrs[j.batch] = detErr
					atomic.StoreInt32(&failed, 1)
					cancel()
					return
				}
				commitBatch(j.batch, j.lo, j.lo+len(j.lanes), bScreened, bMemoized, bSpectra, 0)
			}
			for j := range jobs {
				if reg != nil {
					t := time.Now()
					process(j)
					atomic.AddInt64(&busyNanos, int64(time.Since(t)))
				} else {
					process(j)
				}
			}
			return nil
		}, onPool)
	}
	detWG.Wait()
	// The detection pool only exits once jobs is closed, so the closer
	// (and transitively every sim worker) is already past its final
	// send; this join is what lets a caller prove quiescence.
	closerWG.Wait()
	pipeSp.End()

	if ckptErr != nil {
		return nil, nil, ckptErr
	}
	for b := 0; b < nBatches; b++ {
		if simErrs[b] != nil {
			return nil, nil, simErrs[b]
		}
		if detErrs[b] != nil {
			return nil, nil, detErrs[b]
		}
	}
	if poolErr != nil {
		return nil, nil, fmt.Errorf("campaign: worker pool: %w", poolErr)
	}
	stats.Screened = int(screened)
	stats.Memoized = int(memoized)
	stats.Spectra += int(spectra)
	stats.Quarantined = int(quarantined)
	if err := resilient.CtxErr(ctx); err != nil {
		// Interrupted: persist the ledger so a later resume continues
		// from here, then hand back the partial report.
		if e.Opts.Checkpoint.Enabled() {
			ledgerMu.Lock()
			saveErr := saveLedgerLocked()
			ledgerMu.Unlock()
			if saveErr != nil {
				return nil, nil, saveErr
			}
		}
		return &fault.Report{Results: results, Patterns: len(xs)}, stats, err
	}
	if e.Opts.Checkpoint.Enabled() {
		ledgerMu.Lock()
		err := saveLedgerLocked()
		ledgerMu.Unlock()
		if err != nil {
			return nil, nil, err
		}
	}
	if reg != nil {
		reg.Counter("campaign_runs_total").Inc()
		reg.Counter("campaign_faults_total").Add(int64(nf))
		reg.Counter("campaign_batches_total").Add(int64(nBatches))
		reg.Counter("campaign_screened_total").Add(screened)
		if quarantined > 0 {
			reg.Counter("campaign_quarantined_total").Add(quarantined)
		}
		reg.Counter("campaign_memo_hits_total").Add(memoized)
		if memo != nil {
			// A miss is a lane that paid its own transform while the
			// memo was on — exactly the spectra computed in the pool.
			reg.Counter("campaign_memo_misses_total").Add(spectra)
		}
		reg.Counter("campaign_spectra_total").Add(int64(stats.Spectra))
		if wall := time.Since(pipeStart).Seconds(); wall > 0 {
			busy := float64(atomic.LoadInt64(&busyNanos)) / 1e9
			reg.Gauge("campaign_fft_worker_utilization").
				Set(busy / (wall * float64(e.Opts.DetectWorkers)))
		}
	}
	return &fault.Report{Results: results, Patterns: len(xs)}, stats, nil
}

// memoTable memoizes detection verdicts by record content. Hash
// collisions are resolved by full record comparison, so a hit is an
// exact byte-identical match and reusing its verdict cannot change any
// result (the detector is a pure function of the record). Two workers
// racing on the same record may both compute it — the table then keeps
// one entry and the campaign merely loses one skip, never correctness.
type memoTable struct {
	mu      sync.Mutex
	buckets map[uint64][]memoEntry
	bytes   int
}

type memoEntry struct {
	rec      []int64
	detected bool
}

// maxMemoBytes caps the records the table keeps alive; beyond it,
// lookups continue but new records are no longer retained.
const maxMemoBytes = 256 << 20

func newMemoTable() *memoTable {
	return &memoTable{buckets: make(map[uint64][]memoEntry)}
}

// HashRecord is FNV-1a over the record words. It doubles as the
// engine-facing stimulus identity: checkpoint validation and the
// service layer's content-addressed result cache key off it. For the
// in-memory memo table collisions are fine (lookup compares records in
// full), so word granularity suffices.
func HashRecord(rec []int64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range rec {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

func recordsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (m *memoTable) lookup(h uint64, rec []int64) (detected, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.buckets[h] {
		if recordsEqual(e.rec, rec) {
			return e.detected, true
		}
	}
	return false, false
}

func (m *memoTable) insert(h uint64, rec []int64, detected bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.bytes+8*len(rec) > maxMemoBytes {
		return
	}
	for _, e := range m.buckets[h] {
		if recordsEqual(e.rec, rec) {
			return
		}
	}
	m.buckets[h] = append(m.buckets[h], memoEntry{rec: rec, detected: detected})
	m.bytes += 8 * len(rec)
}
