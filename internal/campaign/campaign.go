// Package campaign is the pooled spectral fault-campaign engine: it
// pipelines 63-lane gate-level record generation into a bounded pool
// of spectral-detection workers, each owning a reusable FFT scratch
// (window table, complex work buffer, float conversion buffer) keyed
// off the shared dsp plan cache, so the per-fault hot path allocates
// nothing.
//
// The engine also applies a zero-diff screen: a faulty record that is
// identical to the good record has an identical spectrum, so its
// spectral verdict equals the good record's own — computed once — and
// the per-fault FFT is skipped entirely. On high-coverage stimuli a
// large fraction of the residual faults never toggle the output, so
// the screen removes a matching fraction of the transform work while
// leaving the campaign Report bit-identical to the serial reference
// path (fault.SerialSimulate with the same detector).
//
// Two further campaign-level reuses exploit that every batch drives
// the same stimulus. Record generation is differential: the fault-free
// machine's net values are captured once per step (digital.Baseline)
// and each batch re-evaluates only the fanout cone of its 63 faults —
// a small fraction of the circuit — instead of the whole netlist.
// And detection is memoized: structurally inequivalent faults often
// produce byte-identical output records, whose spectra and verdicts
// are necessarily identical too, so each distinct record pays for at
// most one transform. Both reuses are exact (no verdict can change)
// and both can be disabled in Options for A/B measurement.
package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mstx/internal/digital"
	"mstx/internal/fault"
	"mstx/internal/obs"
	"mstx/internal/spectest"
)

// lanesPerBatch is the simulator's fault-lane capacity: 64 bit-lanes
// with lane 0 reserved for the good machine.
const lanesPerBatch = 63

// Options configures the engine's pipeline shape.
type Options struct {
	// SimWorkers bounds the concurrent 63-lane simulator passes.
	// Defaults to GOMAXPROCS.
	SimWorkers int
	// DetectWorkers bounds the spectral-detection pool (one FFT
	// scratch per worker). Defaults to GOMAXPROCS.
	DetectWorkers int
	// Queue is the number of simulated batches allowed in flight
	// between the two stages; it bounds the records held in memory.
	// Defaults to DetectWorkers.
	Queue int
	// DisableScreen turns the zero-diff screen off (every lane pays
	// its FFT); the screen is on by default and changes no verdict.
	DisableScreen bool
	// DisableDifferential turns cone-differential record generation
	// off (every batch re-evaluates the full netlist per step). The
	// differential path is on by default whenever the circuit compiles
	// and the baseline snapshot fits the memory budget; it changes no
	// record bit.
	DisableDifferential bool
	// DisableMemo turns record-verdict memoization off (byte-identical
	// faulty records each pay their own transform); memoization is on
	// by default and changes no verdict.
	DisableMemo bool
}

// maxBaselineBytes caps the differential baseline snapshot (one bit
// per net per record step); campaigns exceeding it fall back to full
// per-batch simulation rather than ballooning memory.
const maxBaselineBytes = 256 << 20

// Stats reports what the engine actually did.
type Stats struct {
	// Faults is the universe size.
	Faults int
	// Batches is the number of 63-lane simulator passes.
	Batches int
	// Screened counts lanes resolved by the zero-diff screen.
	Screened int
	// Memoized counts lanes resolved by record-verdict memoization (a
	// byte-identical record was already transformed).
	Memoized int
	// Spectra counts spectral evaluations actually performed,
	// including the one good-record evaluation backing the screen.
	Spectra int
	// Differential reports whether record generation replayed fault
	// cones against a shared baseline (false: full per-batch runs).
	Differential bool
}

// Engine runs spectral stuck-at campaigns for one universe/detector
// pair. It is cheap to construct; all heavy state is per-Run.
type Engine struct {
	U    *fault.Universe
	Det  *spectest.Detector
	Opts Options
}

// New builds an engine. The detector must already be calibrated;
// construction validates nothing about the stimulus, which is supplied
// per Run.
func New(u *fault.Universe, det *spectest.Detector, opts Options) (*Engine, error) {
	if u == nil {
		return nil, fmt.Errorf("campaign: nil universe")
	}
	if det == nil {
		return nil, fmt.Errorf("campaign: nil detector")
	}
	if opts.SimWorkers <= 0 {
		opts.SimWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.DetectWorkers <= 0 {
		opts.DetectWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.Queue <= 0 {
		opts.Queue = opts.DetectWorkers
	}
	return &Engine{U: u, Det: det, Opts: opts}, nil
}

// job is one simulated batch handed from the record-generation stage
// to the detection pool.
type job struct {
	batch int
	lo    int
	good  []int64
	lanes [][]int64
}

// Run executes the spectral campaign over one period of the (coherent)
// stimulus xs and returns the per-fault Report — identical to
// fault.SerialSimulate(u, xs, det) — together with engine statistics.
// Detector errors abort the run and surface as campaign errors; the
// first error in batch order is returned.
func (e *Engine) Run(xs []int64) (*fault.Report, *Stats, error) {
	if len(xs) == 0 {
		return nil, nil, fmt.Errorf("campaign: empty input record")
	}
	nf := len(e.U.Faults)
	results := make([]fault.Result, nf)
	nBatches := (nf + lanesPerBatch - 1) / lanesPerBatch
	stats := &Stats{Faults: nf, Batches: nBatches}

	// Observability: resolve every handle once per run. With no
	// registry installed (the default) all handles are nil, every use
	// below is a nil-receiver no-op, and none of the timing branches
	// take a clock reading — the disabled path is benchmarked to stay
	// within noise of the uninstrumented engine.
	reg := obs.Default()
	var (
		runCtx      context.Context
		runSp       *obs.SpanHandle
		verdictHist *obs.Histogram
		genCounter  *obs.Counter
		busyNanos   int64
	)
	if reg != nil {
		runCtx, runSp = reg.Span(context.Background(), "campaign.run")
		defer runSp.End()
		verdictHist = reg.Histogram("campaign_verdict_seconds", 0, 0.1, 64)
		genCounter = reg.Counter("campaign_records_generated_total")
	}

	// The screen's shared verdict: a zero-diff lane's spectrum is the
	// good record's spectrum, so its verdict is the good record's. The
	// good record is the same for every batch (lane 0 of each pass),
	// so compute it — and its verdict — once up front. This also
	// surfaces stimulus/detector length mismatches before any batch
	// spins up. When the differential path is viable the same pass
	// captures the per-step baseline snapshots every batch replays its
	// fault cones against.
	goodSim := digital.NewFIRSim(e.U.FIR)
	var (
		good   []int64
		base   *digital.Baseline
		err    error
		baseSp *obs.SpanHandle
	)
	if reg != nil {
		_, baseSp = reg.Span(runCtx, "campaign.baseline")
	}
	useDiff := !e.Opts.DisableDifferential && goodSim.Compiled() &&
		digital.BaselineBytes(e.U.FIR, len(xs)) <= maxBaselineBytes
	if useDiff {
		base, err = goodSim.CaptureBaseline(xs)
		if err != nil {
			return nil, nil, err
		}
		good = base.Good
	} else {
		good, err = goodSim.RunPeriodic(xs)
		if err != nil {
			return nil, nil, err
		}
	}
	stats.Differential = useDiff
	goodDetected, err := e.Det.DetectRecord(good, nil)
	baseSp.End()
	if err != nil {
		return nil, nil, err
	}
	stats.Spectra++

	var (
		screened int64
		memoized int64
		spectra  int64
		failed   int32 // fast-fail flag; completion still drains cleanly
	)
	simErrs := make([]error, nBatches)
	detErrs := make([]error, nBatches)
	jobs := make(chan job, e.Opts.Queue)

	var (
		pipeSp    *obs.SpanHandle
		pipeStart time.Time
	)
	if reg != nil {
		_, pipeSp = reg.Span(runCtx, "campaign.pipeline")
		pipeStart = time.Now()
	}

	// Stage 1: bounded record-generation pool. Batches are claimed
	// from an atomic counter so at most SimWorkers goroutines exist.
	var simWG sync.WaitGroup
	simWorkers := e.Opts.SimWorkers
	if simWorkers > nBatches {
		simWorkers = nBatches
	}
	nextBatch := int64(-1)
	for w := 0; w < simWorkers; w++ {
		simWG.Add(1)
		go func() {
			defer simWG.Done()
			for {
				b := int(atomic.AddInt64(&nextBatch, 1))
				if b >= nBatches {
					return
				}
				if atomic.LoadInt32(&failed) != 0 {
					continue
				}
				lo := b * lanesPerBatch
				hi := lo + lanesPerBatch
				if hi > nf {
					hi = nf
				}
				var lanes [][]int64
				var err error
				if useDiff {
					lanes, err = fault.RecordsFromBaseline(e.U, base, e.U.Faults[lo:hi])
				} else {
					_, lanes, err = fault.Records(e.U, xs, e.U.Faults[lo:hi])
				}
				if err != nil {
					simErrs[b] = err
					atomic.StoreInt32(&failed, 1)
					continue
				}
				genCounter.Add(int64(len(lanes)))
				jobs <- job{batch: b, lo: lo, good: good, lanes: lanes}
			}
		}()
	}
	go func() {
		simWG.Wait()
		close(jobs)
	}()

	// Stage 2: detection pool. Each worker owns one scratch; lanes
	// whose record matches the good record take the screened verdict
	// without transforming, and byte-identical records share one
	// memoized verdict.
	var memo *memoTable
	if !e.Opts.DisableMemo {
		memo = newMemoTable()
	}
	var detWG sync.WaitGroup
	for w := 0; w < e.Opts.DetectWorkers; w++ {
		detWG.Add(1)
		go func() {
			defer detWG.Done()
			var sc *spectest.Scratch
			process := func(j job) {
				if detErrs[j.batch] != nil || atomic.LoadInt32(&failed) != 0 {
					return
				}
				if sc == nil {
					var err error
					if sc, err = e.Det.NewScratch(); err != nil {
						detErrs[j.batch] = err
						atomic.StoreInt32(&failed, 1)
						return
					}
				}
				for i, rec := range j.lanes {
					f := e.U.Faults[j.lo+i]
					res := fault.Result{Fault: f, Tap: e.U.FIR.TapOfNet(f.Net)}
					res.FirstDiff, res.MaxAbsDiff = fault.DiffStats(j.good, rec)
					if !e.Opts.DisableScreen && res.MaxAbsDiff == 0 {
						res.Detected = goodDetected
						atomic.AddInt64(&screened, 1)
						results[j.lo+i] = res
						continue
					}
					var h uint64
					if memo != nil {
						h = hashRecord(rec)
						if d, ok := memo.lookup(h, rec); ok {
							res.Detected = d
							atomic.AddInt64(&memoized, 1)
							results[j.lo+i] = res
							continue
						}
					}
					var t0 time.Time
					if verdictHist != nil {
						t0 = time.Now()
					}
					det, err := e.Det.DetectRecord(rec, sc)
					if verdictHist != nil {
						verdictHist.Observe(time.Since(t0).Seconds())
					}
					if err != nil {
						detErrs[j.batch] = err
						atomic.StoreInt32(&failed, 1)
						break
					}
					if memo != nil {
						memo.insert(h, rec, det)
					}
					res.Detected = det
					atomic.AddInt64(&spectra, 1)
					results[j.lo+i] = res
				}
			}
			for j := range jobs {
				if reg != nil {
					t := time.Now()
					process(j)
					atomic.AddInt64(&busyNanos, int64(time.Since(t)))
				} else {
					process(j)
				}
			}
		}()
	}
	detWG.Wait()
	pipeSp.End()

	for b := 0; b < nBatches; b++ {
		if simErrs[b] != nil {
			return nil, nil, simErrs[b]
		}
		if detErrs[b] != nil {
			return nil, nil, detErrs[b]
		}
	}
	stats.Screened = int(screened)
	stats.Memoized = int(memoized)
	stats.Spectra += int(spectra)
	if reg != nil {
		reg.Counter("campaign_runs_total").Inc()
		reg.Counter("campaign_faults_total").Add(int64(nf))
		reg.Counter("campaign_batches_total").Add(int64(nBatches))
		reg.Counter("campaign_screened_total").Add(screened)
		reg.Counter("campaign_memo_hits_total").Add(memoized)
		if memo != nil {
			// A miss is a lane that paid its own transform while the
			// memo was on — exactly the spectra computed in the pool.
			reg.Counter("campaign_memo_misses_total").Add(spectra)
		}
		reg.Counter("campaign_spectra_total").Add(int64(stats.Spectra))
		if wall := time.Since(pipeStart).Seconds(); wall > 0 {
			busy := float64(atomic.LoadInt64(&busyNanos)) / 1e9
			reg.Gauge("campaign_fft_worker_utilization").
				Set(busy / (wall * float64(e.Opts.DetectWorkers)))
		}
	}
	return &fault.Report{Results: results, Patterns: len(xs)}, stats, nil
}

// memoTable memoizes detection verdicts by record content. Hash
// collisions are resolved by full record comparison, so a hit is an
// exact byte-identical match and reusing its verdict cannot change any
// result (the detector is a pure function of the record). Two workers
// racing on the same record may both compute it — the table then keeps
// one entry and the campaign merely loses one skip, never correctness.
type memoTable struct {
	mu      sync.Mutex
	buckets map[uint64][]memoEntry
	bytes   int
}

type memoEntry struct {
	rec      []int64
	detected bool
}

// maxMemoBytes caps the records the table keeps alive; beyond it,
// lookups continue but new records are no longer retained.
const maxMemoBytes = 256 << 20

func newMemoTable() *memoTable {
	return &memoTable{buckets: make(map[uint64][]memoEntry)}
}

// hashRecord is FNV-1a over the record words; collisions are fine
// (lookup compares records in full) so word granularity suffices.
func hashRecord(rec []int64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range rec {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

func recordsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (m *memoTable) lookup(h uint64, rec []int64) (detected, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.buckets[h] {
		if recordsEqual(e.rec, rec) {
			return e.detected, true
		}
	}
	return false, false
}

func (m *memoTable) insert(h uint64, rec []int64, detected bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.bytes+8*len(rec) > maxMemoBytes {
		return
	}
	for _, e := range m.buckets[h] {
		if recordsEqual(e.rec, rec) {
			return
		}
	}
	m.buckets[h] = append(m.buckets[h], memoEntry{rec: rec, detected: detected})
	m.bytes += 8 * len(rec)
}
