package campaign

import (
	"math/rand"
	"sync"
	"testing"
)

// memoVerdict is the pure "detector" of the race test: the verdict a
// record must always carry, no matter which goroutine computed it.
func memoVerdict(rec []int64) bool {
	return rec[0]%2 == 0
}

// TestMemoTableConcurrentConsistency hammers the verdict memo table
// from many goroutines sharing a small key space (run under -race in
// scripts/check.sh). The contract: a hit always returns the verdict
// the record's detector would compute, duplicate inserts keep exactly
// one entry, and racing workers can at worst lose a skip — never
// corrupt a verdict.
func TestMemoTableConcurrentConsistency(t *testing.T) {
	const (
		workers = 16
		keys    = 64
		rounds  = 400
	)
	recs := make([][]int64, keys)
	for i := range recs {
		rng := rand.New(rand.NewSource(int64(i)))
		rec := make([]int64, 32)
		rec[0] = int64(i)
		for j := 1; j < len(rec); j++ {
			rec[j] = rng.Int63()
		}
		recs[i] = rec
	}
	m := newMemoTable()
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for r := 0; r < rounds; r++ {
				rec := recs[rng.Intn(keys)]
				h := HashRecord(rec)
				if detected, ok := m.lookup(h, rec); ok {
					if detected != memoVerdict(rec) {
						errs <- "hit returned a foreign verdict"
						return
					}
					continue
				}
				m.insert(h, rec, memoVerdict(rec))
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// Every record must now be present with its own verdict, exactly
	// once (racing duplicate inserts collapse to one entry).
	for i, rec := range recs {
		h := HashRecord(rec)
		detected, ok := m.lookup(h, rec)
		if !ok {
			t.Fatalf("record %d lost", i)
		}
		if detected != memoVerdict(rec) {
			t.Fatalf("record %d verdict corrupted", i)
		}
		n := 0
		for _, e := range m.buckets[h] {
			if recordsEqual(e.rec, rec) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("record %d stored %d times", i, n)
		}
	}
	wantBytes := 0
	for _, b := range m.buckets {
		for _, e := range b {
			wantBytes += 8 * len(e.rec)
		}
	}
	if m.bytes != wantBytes {
		t.Errorf("accounted bytes %d != stored %d", m.bytes, wantBytes)
	}
}

// TestMemoTableByteCap: past the budget, lookups keep working but new
// records are dropped instead of growing without bound.
func TestMemoTableByteCap(t *testing.T) {
	m := newMemoTable()
	m.bytes = maxMemoBytes // simulate a full table
	rec := []int64{1, 2, 3}
	h := HashRecord(rec)
	m.insert(h, rec, true)
	if _, ok := m.lookup(h, rec); ok {
		t.Fatal("record retained past the byte cap")
	}
}
