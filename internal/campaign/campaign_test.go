package campaign

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/fault"
	"mstx/internal/spectest"
)

// buildCampaign builds a small gate-level FIR, a coherent two-tone
// stimulus of amplitude amp, and a detector calibrated on a noisy
// fault-free capture — a miniature of the E8 setup.
func buildCampaign(t testing.TB, n int, amp float64) (*fault.Universe, *spectest.Detector, []int64) {
	t.Helper()
	fir, err := digital.NewFIR([]int64{7, 15, 22, 15, 7}, 8)
	if err != nil {
		t.Fatal(err)
	}
	fs := 1e6
	f1 := dsp.CoherentBin(fs, n, 37)
	f2 := dsp.CoherentBin(fs, n, 53)
	ideal := make([]int64, n)
	noisy := make([]int64, n)
	rng := rand.New(rand.NewSource(90))
	for i := range ideal {
		ti := float64(i) / fs
		v := amp*math.Cos(2*math.Pi*f1*ti) + amp*math.Cos(2*math.Pi*f2*ti)
		ideal[i] = int64(math.Round(v))
		noisy[i] = int64(math.Round(v + rng.NormFloat64()*1.5))
	}
	sim := digital.NewFIRSim(fir)
	goodIdeal, err := sim.RunPeriodic(ideal)
	if err != nil {
		t.Fatal(err)
	}
	sim2 := digital.NewFIRSim(fir)
	goodNoisy, err := sim2.RunPeriodic(noisy)
	if err != nil {
		t.Fatal(err)
	}
	det, err := spectest.NewDetector(goodIdeal, fs, []float64{f1, f2}, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.CalibrateFloor(goodNoisy, 1.5); err != nil {
		t.Fatal(err)
	}
	return fault.NewUniverse(fir, true), det, ideal
}

func TestEngineMatchesSerialSimulate(t *testing.T) {
	u, det, xs := buildCampaign(t, 512, 45)
	// SerialSimulate pays one full gate-level pass per fault, so cap
	// the universe at a few batches to keep the oracle affordable;
	// TestEngineMatchesBatchSimulate covers the full universe.
	u.Faults = u.Faults[:200]
	eng, err := New(u, det, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, stats, err := eng.Run(context.Background(), xs)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := fault.SerialSimulate(u, xs, det)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, ser) {
		t.Fatalf("pooled report differs from SerialSimulate:\npooled %v\nserial %v", rep, ser)
	}
	if stats.Faults != u.Size() {
		t.Errorf("stats.Faults = %d, want %d", stats.Faults, u.Size())
	}
	// Every lane is either screened, memoized, or transformed, plus the
	// one good-record spectrum backing the screen.
	if stats.Screened+stats.Memoized+stats.Spectra != stats.Faults+1 {
		t.Errorf("screened %d + memoized %d + spectra %d != faults %d + 1",
			stats.Screened, stats.Memoized, stats.Spectra, stats.Faults)
	}
}

func TestEngineReusePathsChangeNothing(t *testing.T) {
	// The three campaign-level reuses — differential cone replay,
	// zero-diff screening, and record-verdict memoization — must be
	// invisible in the report: run the engine with everything disabled
	// (full per-batch simulation, one FFT per lane) and with everything
	// on, and require byte-identical reports.
	u, det, xs := buildCampaign(t, 512, 45)
	plain, err := New(u, det, Options{
		DisableScreen: true, DisableDifferential: true, DisableMemo: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := New(u, det, Options{})
	if err != nil {
		t.Fatal(err)
	}
	repP, statsP, err := plain.Run(context.Background(), xs)
	if err != nil {
		t.Fatal(err)
	}
	repT, statsT, err := tuned.Run(context.Background(), xs)
	if err != nil {
		t.Fatal(err)
	}
	if statsP.Differential {
		t.Error("DisableDifferential ignored")
	}
	if statsP.Memoized != 0 {
		t.Errorf("disabled memo still memoized %d lanes", statsP.Memoized)
	}
	if !statsT.Differential {
		t.Error("differential path not taken on a compiled circuit")
	}
	if !reflect.DeepEqual(repP, repT) {
		t.Fatal("campaign reuses changed the report")
	}
}

func TestEngineMatchesBatchSimulate(t *testing.T) {
	// Full-universe equivalence against the 63-lane batch path (which
	// fault's own tests prove equal to SerialSimulate).
	u, det, xs := buildCampaign(t, 512, 45)
	eng, err := New(u, det, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := eng.Run(context.Background(), xs)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := fault.SimulateRecords(context.Background(), u, xs, det)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, batch) {
		t.Fatal("pooled report differs from the batch simulation path")
	}
}

func TestZeroDiffScreenSkipsFFTsAndChangesNothing(t *testing.T) {
	// A low-amplitude stimulus leaves the high-order input bits
	// untoggled, so faults confined to their cones never perturb the
	// output: prime zero-diff screen territory.
	u, det, xs := buildCampaign(t, 512, 4)
	screened, err := New(u, det, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unscreened, err := New(u, det, Options{DisableScreen: true})
	if err != nil {
		t.Fatal(err)
	}
	repS, statsS, err := screened.Run(context.Background(), xs)
	if err != nil {
		t.Fatal(err)
	}
	repU, statsU, err := unscreened.Run(context.Background(), xs)
	if err != nil {
		t.Fatal(err)
	}
	if statsS.Screened == 0 {
		t.Fatal("low-amplitude stimulus produced no zero-diff lanes; screen untested")
	}
	if statsU.Screened != 0 {
		t.Errorf("disabled screen still screened %d lanes", statsU.Screened)
	}
	if statsS.Spectra >= statsU.Spectra {
		t.Errorf("screen saved no spectra: %d vs %d", statsS.Spectra, statsU.Spectra)
	}
	if !reflect.DeepEqual(repS, repU) {
		t.Fatal("zero-diff screen changed the report")
	}
	batch, err := fault.SimulateRecords(context.Background(), u, xs, det)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repS, batch) {
		t.Fatal("screened report differs from the batch simulation path")
	}
}

func TestEngineSurfacesDetectorErrors(t *testing.T) {
	u, det, xs := buildCampaign(t, 512, 45)
	eng, err := New(u, det, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A stimulus whose length disagrees with the detector's reference
	// must abort the campaign, not report phantom non-detections.
	if _, _, err := eng.Run(context.Background(), xs[:256]); err == nil {
		t.Error("record/reference length mismatch did not abort the campaign")
	}
	if _, _, err := eng.Run(context.Background(), nil); err == nil {
		t.Error("empty stimulus accepted")
	}
}

func TestNewValidation(t *testing.T) {
	u, det, _ := buildCampaign(t, 256, 45)
	if _, err := New(nil, det, Options{}); err == nil {
		t.Error("nil universe accepted")
	}
	if _, err := New(u, nil, Options{}); err == nil {
		t.Error("nil detector accepted")
	}
	eng, err := New(u, det, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Opts.SimWorkers <= 0 || eng.Opts.DetectWorkers <= 0 || eng.Opts.Queue <= 0 {
		t.Errorf("defaults not applied: %+v", eng.Opts)
	}
}

func TestEngineSingleWorkerPipeline(t *testing.T) {
	// Degenerate pool sizes must still drain the pipeline and agree
	// with the default configuration.
	u, det, xs := buildCampaign(t, 256, 45)
	one, err := New(u, det, Options{SimWorkers: 1, DetectWorkers: 1, Queue: 1})
	if err != nil {
		t.Fatal(err)
	}
	repOne, _, err := one.Run(context.Background(), xs)
	if err != nil {
		t.Fatal(err)
	}
	def, err := New(u, det, Options{})
	if err != nil {
		t.Fatal(err)
	}
	repDef, _, err := def.Run(context.Background(), xs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repOne, repDef) {
		t.Fatal("single-worker pipeline disagrees with default pools")
	}
}
