package campaign

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"mstx/internal/fault"
	"mstx/internal/resilient"
	"mstx/internal/spectest"
)

// TestRunEarlyErrorNoGoroutineLeak is the satellite regression: a
// detection error on the first batch must cancel the in-flight
// record-generation stage — including workers parked on the bounded
// jobs queue — and the goroutine count must settle back to baseline.
func TestRunEarlyErrorNoGoroutineLeak(t *testing.T) {
	u, det, xs := buildCampaign(t, 512, 45)
	baseline := runtime.NumGoroutine() + 2
	for trial := 0; trial < 10; trial++ {
		// Queue 1 and one detect worker maximizes the chance sim
		// workers are blocked on the send when the error lands.
		eng, err := New(u, det, Options{DetectWorkers: 1, Queue: 1})
		if err != nil {
			t.Fatal(err)
		}
		fp := resilient.NewFailpoints()
		boom := errors.New("detect rejected")
		fp.Set("campaign.detect_batch", resilient.Action{Err: boom})
		resilient.Install(fp)
		_, _, err = eng.Run(context.Background(), xs)
		resilient.Install(nil)
		if !errors.Is(err, boom) {
			t.Fatalf("trial %d: got %v, want the injected error", trial, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d live, baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunCancelReturnsTypedPartial(t *testing.T) {
	u, det, xs := buildCampaign(t, 512, 45)
	eng, err := New(u, det, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	rep, stats, err := eng.Run(ctx, xs)
	if !errors.Is(err, resilient.ErrDeadline) {
		t.Fatalf("expired deadline returned %v, want ErrDeadline", err)
	}
	if rep == nil || len(rep.Results) != u.Size() {
		t.Fatal("partial report missing or wrong length")
	}
	if stats == nil {
		t.Fatal("partial stats missing")
	}
	for _, r := range rep.Results {
		if r.Detected {
			t.Fatalf("no batch ran, but fault %v is marked detected", r.Fault)
		}
		if r.FirstDiff != -1 {
			t.Fatalf("unprocessed fault %v has FirstDiff %d, want -1", r.Fault, r.FirstDiff)
		}
	}

	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if _, _, err := eng.Run(cctx, xs); !errors.Is(err, resilient.ErrCanceled) {
		t.Fatalf("canceled ctx returned %v, want ErrCanceled", err)
	}
}

func TestRunQuarantineBothStages(t *testing.T) {
	u, det, xs := buildCampaign(t, 512, 45)
	ref, err := mustRun(t, u, det, Options{}, xs)
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range []string{"campaign.sim_batch", "campaign.detect_batch"} {
		fp := resilient.NewFailpoints()
		fp.Set(site, resilient.Action{PanicValue: site + " corrupted", Times: 1})
		resilient.Install(fp)
		eng, err := New(u, det, Options{Quarantine: true})
		if err != nil {
			t.Fatal(err)
		}
		rep, stats, err := eng.Run(context.Background(), xs)
		resilient.Install(nil)
		if err != nil {
			t.Fatalf("%s: quarantined campaign failed: %v", site, err)
		}
		if stats.Quarantined == 0 || stats.Quarantined > 63 {
			t.Fatalf("%s: quarantined %d faults, want one batch's worth", site, stats.Quarantined)
		}
		if rep.Quarantined() != stats.Quarantined {
			t.Fatalf("%s: report says %d quarantined, stats say %d",
				site, rep.Quarantined(), stats.Quarantined)
		}
		for i, r := range rep.Results {
			if r.Quarantined {
				if r.Detected {
					t.Fatalf("%s: quarantined fault %v carries a verdict", site, r.Fault)
				}
				continue
			}
			if r != ref.Results[i] {
				t.Fatalf("%s: lane %d diverged: %+v vs %+v", site, i, r, ref.Results[i])
			}
		}
		// Without Quarantine the panic surfaces as *PanicError.
		fp2 := resilient.NewFailpoints()
		fp2.Set(site, resilient.Action{PanicValue: "boom", Times: 1})
		resilient.Install(fp2)
		eng2, err := New(u, det, Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = eng2.Run(context.Background(), xs)
		resilient.Install(nil)
		var pe *resilient.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: panic without quarantine returned %v, want *PanicError", site, err)
		}
	}
}

func TestRunCheckpointResumeBitIdentical(t *testing.T) {
	u, det, xs := buildCampaign(t, 512, 45)
	ref, err := mustRun(t, u, det, Options{}, xs)
	if err != nil {
		t.Fatal(err)
	}
	nBatches := (u.Size() + lanesPerBatch - 1) / lanesPerBatch
	if nBatches < 3 {
		t.Fatalf("universe too small for a mid-run kill: %d batches", nBatches)
	}
	dir := t.TempDir()

	// First attempt dies after two detect batches.
	fp := resilient.NewFailpoints()
	boom := errors.New("injected crash")
	fp.Set("campaign.detect_batch", resilient.Action{Err: boom, After: 2})
	resilient.Install(fp)
	eng, err := New(u, det, Options{
		SimWorkers: 1, DetectWorkers: 1,
		Checkpoint: &resilient.Checkpointer{Dir: dir, Every: 1}, CheckpointName: "t",
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = eng.Run(context.Background(), xs)
	resilient.Install(nil)
	if !errors.Is(err, boom) {
		t.Fatalf("injected crash returned %v", err)
	}

	// Resume: the report must be bit-identical to the uninterrupted
	// reference, and fewer spectra than a fresh run must be computed.
	eng2, err := New(u, det, Options{
		Checkpoint: &resilient.Checkpointer{Dir: dir, Every: 1, Resume: true}, CheckpointName: "t",
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, stats, err := eng2.Run(context.Background(), xs)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if len(rep.Results) != len(ref.Results) {
		t.Fatal("result count mismatch")
	}
	for i := range rep.Results {
		if rep.Results[i] != ref.Results[i] {
			t.Fatalf("lane %d: resumed %+v != reference %+v", i, rep.Results[i], ref.Results[i])
		}
	}
	// Counter restoration: screened + memoized + spectra - 1 (good
	// record) + quarantined must still account for every fault.
	accounted := stats.Screened + stats.Memoized + (stats.Spectra - 1) + stats.Quarantined
	if accounted != u.Size() {
		t.Fatalf("resumed stats account for %d faults, want %d (%+v)", accounted, u.Size(), stats)
	}

	// A second resume finds everything done and recomputes nothing
	// beyond the good-record verdict.
	eng3, err := New(u, det, Options{
		Checkpoint: &resilient.Checkpointer{Dir: dir, Every: 1, Resume: true}, CheckpointName: "t",
	})
	if err != nil {
		t.Fatal(err)
	}
	rep3, stats3, err := eng3.Run(context.Background(), xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep3.Results {
		if rep3.Results[i] != ref.Results[i] {
			t.Fatalf("second resume diverged at lane %d", i)
		}
	}
	if stats3.Spectra != stats.Spectra {
		t.Fatalf("second resume recomputed spectra: %d vs %d", stats3.Spectra, stats.Spectra)
	}

	// A different stimulus must be rejected loudly.
	other := append([]int64(nil), xs...)
	other[0]++
	eng4, err := New(u, det, Options{
		Checkpoint: &resilient.Checkpointer{Dir: dir, Every: 1, Resume: true}, CheckpointName: "t",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng4.Run(context.Background(), other); err == nil {
		t.Fatal("checkpoint accepted for a different stimulus")
	}
}

// mustRun runs a fresh engine with opts and returns the report.
func mustRun(t *testing.T, u *fault.Universe, det *spectest.Detector, opts Options, xs []int64) (*fault.Report, error) {
	t.Helper()
	eng, err := New(u, det, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := eng.Run(context.Background(), xs)
	return rep, err
}
