package analog

import (
	"math"
	"math/rand"

	"mstx/internal/msignal"
	"mstx/internal/tolerance"
)

// OscillatorSpec specifies a local oscillator: frequency (with the
// synthesizer's relative error as tolerance), amplitude, and phase
// noise as a per-sample random-walk variance.
type OscillatorSpec struct {
	// Name identifies the block.
	Name string
	// FreqHz is the LO frequency; its Sigma models frequency error.
	FreqHz tolerance.Value
	// PhaseNoiseRadPerSample is the standard deviation of the random-
	// walk phase increment per sample, radians (0 = noiseless LO).
	PhaseNoiseRadPerSample float64
}

// Build returns the nominal oscillator instance.
func (s OscillatorSpec) Build() *Oscillator {
	return &Oscillator{Spec: s, FreqHz: s.FreqHz.Nominal}
}

// Sample returns a process-varied oscillator instance.
func (s OscillatorSpec) Sample(rng *rand.Rand) *Oscillator {
	return &Oscillator{Spec: s, FreqHz: s.FreqHz.Sample(rng)}
}

// Oscillator is an LO device instance.
type Oscillator struct {
	// Spec is the specification the device was built from.
	Spec OscillatorSpec
	// FreqHz is the actual LO frequency of this instance.
	FreqHz float64
}

// Name returns the instance name.
func (o *Oscillator) Name() string { return o.Spec.Name }

// Phases returns the LO phase trajectory θ[i] for n samples at rate
// fs, including random-walk phase noise drawn from rng.
func (o *Oscillator) Phases(n int, fs float64, rng *rand.Rand) []float64 {
	th := make([]float64, n)
	var jitter float64
	w := 2 * math.Pi * o.FreqHz / fs
	for i := range th {
		if rng != nil && o.Spec.PhaseNoiseRadPerSample > 0 {
			jitter += rng.NormFloat64() * o.Spec.PhaseNoiseRadPerSample
		}
		th[i] = w*float64(i) + jitter
	}
	return th
}

// FrequencyError returns the actual-minus-nominal LO frequency, Hz —
// the "frequency error" parameter of Table 1.
func (o *Oscillator) FrequencyError() float64 {
	return o.FreqHz - o.Spec.FreqHz.Nominal
}

// MixerSpec specifies a down-conversion mixer, matching Table 1's
// mixer parameters: conversion gain, IIP3, LO isolation, NF, P1dB.
type MixerSpec struct {
	// Name identifies the block.
	Name string
	// ConvGainDB is the conversion (voltage) gain in dB with spread.
	ConvGainDB tolerance.Value
	// IIP3DBm is the input IP3 with spread.
	IIP3DBm tolerance.Value
	// P1dBDBm is the input 1 dB compression point with spread.
	P1dBDBm tolerance.Value
	// NFDB is the mixer noise figure, dB.
	NFDB float64
	// LOIsolationDB is the LO-to-output isolation in dB (how far the
	// LO leakage sits below the LO drive), with spread.
	LOIsolationDB tolerance.Value
	// LODriveAmpV is the LO amplitude at the mixer port, volts; the
	// leakage amplitude is LODriveAmpV / 10^(iso/20).
	LODriveAmpV float64
}

// Build returns the nominal mixer driven by lo.
func (s MixerSpec) Build(lo *Oscillator) *Mixer {
	return &Mixer{
		Spec:          s,
		LO:            lo,
		ConvGainDB:    s.ConvGainDB.Nominal,
		IIP3DBm:       s.IIP3DBm.Nominal,
		P1dBDBm:       s.P1dBDBm.Nominal,
		NFDB:          s.NFDB,
		LOIsolationDB: s.LOIsolationDB.Nominal,
	}
}

// Sample returns a process-varied mixer driven by lo.
func (s MixerSpec) Sample(lo *Oscillator, rng *rand.Rand) *Mixer {
	return &Mixer{
		Spec:          s,
		LO:            lo,
		ConvGainDB:    s.ConvGainDB.Sample(rng),
		IIP3DBm:       s.IIP3DBm.Sample(rng),
		P1dBDBm:       s.P1dBDBm.Sample(rng),
		NFDB:          s.NFDB,
		LOIsolationDB: s.LOIsolationDB.Sample(rng),
	}
}

// Mixer is a device instance of a down-converting mixer.
type Mixer struct {
	// Spec is the specification the device was built from.
	Spec MixerSpec
	// LO is the oscillator driving the mixer.
	LO *Oscillator
	// ConvGainDB is the actual conversion gain, dB.
	ConvGainDB float64
	// IIP3DBm is the actual input IP3, dBm.
	IIP3DBm float64
	// P1dBDBm is the actual input 1 dB compression, dBm.
	P1dBDBm float64
	// NFDB is the actual noise figure, dB.
	NFDB float64
	// LOIsolationDB is the actual LO-to-output isolation, dB.
	LOIsolationDB float64
}

// Name implements Block.
func (m *Mixer) Name() string { return m.Spec.Name }

// ConvGain returns the actual linear conversion gain.
func (m *Mixer) ConvGain() float64 {
	return math.Pow(10, m.ConvGainDB/20)
}

// loLeakAmp returns the LO leakage amplitude at the output.
func (m *Mixer) loLeakAmp() float64 {
	return m.Spec.LODriveAmpV / math.Pow(10, m.LOIsolationDB/20)
}

// Process implements Block: the RF input passes the cubic
// nonlinearity, is multiplied by 2cos(θ_LO) scaled so a tone at
// f_RF produces conversion-gain·A at |f_RF − f_LO|, and LO leakage
// plus NF noise are added.
func (m *Mixer) Process(x []float64, fs float64, rng *rand.Rand) []float64 {
	nl := NewNonlinearity(1, m.IIP3DBm, m.P1dBDBm) // unit-gain front nonlinearity
	g := m.ConvGain()
	nIn := NoiseRMSFromNF(m.NFDB, fs/2)
	leak := m.loLeakAmp()
	th := m.LO.Phases(len(x), fs, rng)
	out := make([]float64, len(x))
	for i, v := range x {
		if rng != nil && nIn > 0 {
			v += rng.NormFloat64() * nIn
		}
		rf := nl.Apply(v)
		out[i] = 2*g*rf*math.Cos(th[i]) + leak*math.Cos(th[i])
	}
	return out
}

// Propagate implements Block: tones translate to |f − f_LO| with the
// conversion gain, the LO's relative frequency error enters the
// frequency accuracy, the gain tolerance enters the amplitude
// accuracy, LO leakage appears as a spur at f_LO, cubic spurs are
// added, and NF noise accumulates. The sum products (f + f_LO) are
// assumed removed by the following low-pass filter and are not
// tracked.
func (m *Mixer) Propagate(in msignal.Signal) msignal.Signal {
	gNom := math.Pow(10, m.Spec.ConvGainDB.Nominal/20)
	relTol := lnGainRelTol(m.Spec.ConvGainDB)
	// Cubic spurs are generated at RF before translation; compute them
	// on the input, then translate everything together.
	nl := NewNonlinearity(1, m.Spec.IIP3DBm.Nominal, m.Spec.P1dBDBm.Nominal)
	rf := addCubicSpurs(in, in, nl)
	freqRelTol := m.LO.Spec.FreqHz.RelSigma()
	out := rf.Translate(-m.LO.Spec.FreqHz.Nominal, freqRelTol)
	out = out.ScaleWithTolerance(gNom, relTol)
	out = out.AddNoise(gNom * NoiseRMSFromNF(m.NFDB, NominalNoiseBandwidth))
	// LO leakage appears at the output at f_LO (which after the ideal
	// translation bookkeeping sits at f_LO itself — it is not mixed).
	isoNom := m.Spec.LOIsolationDB.Nominal
	leak := m.Spec.LODriveAmpV / math.Pow(10, isoNom/20)
	if leak > 0 {
		out = out.AddSpur(m.LO.Spec.FreqHz.Nominal, leak)
	}
	return out
}
