package analog

import (
	"math"
	"math/rand"

	"mstx/internal/msignal"
	"mstx/internal/tolerance"
)

// LowPassSpec specifies the switched-capacitor low-pass filter,
// matching Table 1's LPF parameters: pass-band gain, stop-band gain
// (set by the filter order), cut-off frequency, dynamic range. The SC
// realization adds clock feed-through spurs at the switching
// frequency.
type LowPassSpec struct {
	// Name identifies the block.
	Name string
	// CutoffHz is the −3 dB corner with process spread (capacitor
	// ratio / clock dependent).
	CutoffHz tolerance.Value
	// GainDB is the pass-band voltage gain with spread.
	GainDB tolerance.Value
	// ClockHz is the SC switching clock frequency.
	ClockHz float64
	// ClockSpurV is the amplitude of the clock feed-through at the
	// output, volts (0 disables).
	ClockSpurV float64
	// OutputNoiseRMS is the filter's own output noise, volts RMS over
	// the channel bandwidth.
	OutputNoiseRMS float64
	// OffsetV is the output DC offset with spread.
	OffsetV tolerance.Value
}

// Build returns the nominal filter instance.
func (s LowPassSpec) Build() *LowPass {
	return &LowPass{
		Spec:     s,
		CutoffHz: s.CutoffHz.Nominal,
		GainDB:   s.GainDB.Nominal,
		OffsetV:  s.OffsetV.Nominal,
	}
}

// Sample returns a process-varied filter instance.
func (s LowPassSpec) Sample(rng *rand.Rand) *LowPass {
	return &LowPass{
		Spec:     s,
		CutoffHz: s.CutoffHz.Sample(rng),
		GainDB:   s.GainDB.Sample(rng),
		OffsetV:  s.OffsetV.Sample(rng),
	}
}

// LowPass is a second-order Butterworth low-pass device instance
// realized as a switched-capacitor biquad.
type LowPass struct {
	// Spec is the specification the device was built from.
	Spec LowPassSpec
	// CutoffHz is the actual −3 dB corner of this instance.
	CutoffHz float64
	// GainDB is the actual pass-band gain, dB.
	GainDB float64
	// OffsetV is the actual output DC offset, volts.
	OffsetV float64
}

// Name implements Block.
func (l *LowPass) Name() string { return l.Spec.Name }

// Gain returns the actual linear pass-band gain.
func (l *LowPass) Gain() float64 { return math.Pow(10, l.GainDB/20) }

// biquad computes bilinear-transform Butterworth biquad coefficients
// for the instance cutoff at sample rate fs.
func (l *LowPass) biquad(fs float64) (b0, b1, b2, a1, a2 float64) {
	fc := l.CutoffHz
	// Clamp the corner below Nyquist for numerical sanity.
	if fc >= 0.49*fs {
		fc = 0.49 * fs
	}
	k := math.Tan(math.Pi * fc / fs)
	norm := 1 / (1 + math.Sqrt2*k + k*k)
	b0 = k * k * norm
	b1 = 2 * b0
	b2 = b0
	a1 = 2 * (k*k - 1) * norm
	a2 = (1 - math.Sqrt2*k + k*k) * norm
	return
}

// Process implements Block: biquad filtering from zero state, scaled
// by the pass-band gain, plus clock feed-through, output noise, and
// DC offset.
func (l *LowPass) Process(x []float64, fs float64, rng *rand.Rand) []float64 {
	b0, b1, b2, a1, a2 := l.biquad(fs)
	g := l.Gain()
	out := make([]float64, len(x))
	var x1, x2, y1, y2 float64
	wClk := 2 * math.Pi * l.Spec.ClockHz / fs
	for i, v := range x {
		y := b0*v + b1*x1 + b2*x2 - a1*y1 - a2*y2
		x2, x1 = x1, v
		y2, y1 = y1, y
		o := g*y + l.OffsetV
		if l.Spec.ClockSpurV > 0 {
			o += l.Spec.ClockSpurV * math.Cos(wClk*float64(i))
		}
		if rng != nil && l.Spec.OutputNoiseRMS > 0 {
			o += rng.NormFloat64() * l.Spec.OutputNoiseRMS
		}
		out[i] = o
	}
	return out
}

// ResponseMag returns the instance's analog-prototype magnitude
// response at frequency f: gain / sqrt(1 + (f/fc)^4) — the 2nd-order
// Butterworth roll-off used for attribute propagation.
func (l *LowPass) ResponseMag(f float64) float64 {
	r := f / l.CutoffHz
	return l.Gain() / math.Sqrt(1+r*r*r*r)
}

// nominalResponseMag is ResponseMag with nominal parameters — the
// tester's model of the filter.
func (l *LowPass) nominalResponseMag(f float64) float64 {
	g := math.Pow(10, l.Spec.GainDB.Nominal/20)
	r := f / l.Spec.CutoffHz.Nominal
	return g / math.Sqrt(1+r*r*r*r)
}

// Propagate implements Block: each tone and spur is scaled by the
// nominal frequency response (so out-of-band spurs attenuate), the
// gain tolerance enters amplitude accuracy, and near the corner the
// cut-off tolerance adds additional amplitude uncertainty via the
// slope of |H|.
func (l *LowPass) Propagate(in msignal.Signal) msignal.Signal {
	out := in.Clone()
	fcNom := l.Spec.CutoffHz.Nominal
	for i := range out.Tones {
		f := out.Tones[i].Freq
		out.Tones[i].Amp = in.Tones[i].Amp * l.nominalResponseMag(f)
		// The paper's attribute model carries phase for group-delay
		// style tests: apply the nominal 2nd-order Butterworth phase.
		out.Tones[i].Phase += nominalPrototypePhase(f, fcNom)
	}
	for i := range out.Spurs {
		out.Spurs[i].Amp = in.Spurs[i].Amp * l.nominalResponseMag(out.Spurs[i].Freq)
	}
	// Gain tolerance contributes everywhere; cut-off tolerance
	// contributes d|H|/dfc · σfc / |H| ≈ 2(f/fc)^4/(1+(f/fc)^4) · σfc/fc
	// relative error — negligible deep in band, dominant near corner.
	relG := lnGainRelTol(l.Spec.GainDB)
	var worstFc float64
	for _, t := range in.Tones {
		r := math.Pow(t.Freq/fcNom, 4)
		rel := 2 * r / (1 + r) * l.Spec.CutoffHz.RelSigma()
		if rel > worstFc {
			worstFc = rel
		}
	}
	out.AmpAccuracy = tolerance.RSS(out.AmpAccuracy, relG, worstFc)
	// Cut-off spread also perturbs the phase: dφ/dfc·σfc, evaluated
	// at the worst tone by finite difference on the prototype phase.
	var worstPh float64
	for _, t := range in.Tones {
		d := math.Abs(nominalPrototypePhase(t.Freq, fcNom*(1+l.Spec.CutoffHz.RelSigma())) -
			nominalPrototypePhase(t.Freq, fcNom))
		if d > worstPh {
			worstPh = d
		}
	}
	out.PhaseAccuracy = tolerance.RSS(out.PhaseAccuracy, worstPh)
	out = out.AddDC(l.Spec.OffsetV.Nominal, l.Spec.OffsetV.Sigma)
	// The filter attenuates incoming noise too; in-band noise passes.
	out = out.AddNoise(l.Spec.OutputNoiseRMS)
	if l.Spec.ClockSpurV > 0 {
		out = out.AddSpur(l.Spec.ClockHz, l.Spec.ClockSpurV)
	}
	return out
}

// StopbandGainDB returns the instance gain at frequency f in dB —
// the Table 1 "stop-band gain" measurement target.
func (l *LowPass) StopbandGainDB(f float64) float64 {
	return 20 * math.Log10(l.ResponseMag(f))
}

// nominalPrototypePhase is the 2nd-order Butterworth phase at f for
// corner fc: −atan2(√2·(f/fc), 1−(f/fc)²), continuous through the
// corner.
func nominalPrototypePhase(f, fc float64) float64 {
	r := f / fc
	return -math.Atan2(math.Sqrt2*r, 1-r*r)
}

// transferPhase returns the phase of the realized biquad at frequency
// f when clocked at fs.
func (l *LowPass) transferPhase(f, fs float64) float64 {
	b0, b1, b2, a1, a2 := l.biquad(fs)
	w := 2 * math.Pi * f / fs
	z1re, z1im := math.Cos(-w), math.Sin(-w)
	z2re, z2im := math.Cos(-2*w), math.Sin(-2*w)
	numRe := b0 + b1*z1re + b2*z2re
	numIm := b1*z1im + b2*z2im
	denRe := 1 + a1*z1re + a2*z2re
	denIm := a1*z1im + a2*z2im
	return math.Atan2(numIm, numRe) - math.Atan2(denIm, denRe)
}

// GroupDelayAt returns the instance's group delay in seconds at
// frequency f when simulated at rate fs, computed numerically from
// the realized biquad's phase slope. Memoryless blocks (amp, mixer)
// contribute no group delay, so this is the analog path's total.
func (l *LowPass) GroupDelayAt(f, fs float64) float64 {
	df := fs * 1e-7
	p1 := l.transferPhase(f-df, fs)
	p2 := l.transferPhase(f+df, fs)
	d := p2 - p1
	// Unwrap a potential branch cut.
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d < -math.Pi {
		d += 2 * math.Pi
	}
	return -d / (2 * math.Pi * 2 * df)
}
