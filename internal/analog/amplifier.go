package analog

import (
	"math"
	"math/rand"

	"mstx/internal/msignal"
	"mstx/internal/tolerance"
)

// AmplifierSpec is the designer-facing specification of an amplifier:
// nominal parameters with tolerances, matching the Table 1 parameter
// set for the Amp block (gain, IIP3, DC offset, 3rd-order harmonic /
// nonlinearity, noise figure).
type AmplifierSpec struct {
	// Name identifies the block.
	Name string
	// GainDB is the voltage gain in dB with its process spread.
	GainDB tolerance.Value
	// IIP3DBm is the input third-order intercept with spread.
	IIP3DBm tolerance.Value
	// P1dBDBm is the input 1 dB compression point with spread.
	P1dBDBm tolerance.Value
	// NFDB is the noise figure in dB (nominal; noise is not a per-
	// device Monte-Carlo parameter in this model).
	NFDB float64
	// OffsetV is the output DC offset with spread.
	OffsetV tolerance.Value
}

// Build returns the nominal device instance.
func (s AmplifierSpec) Build() *Amplifier {
	return &Amplifier{
		Spec:    s,
		GainDB:  s.GainDB.Nominal,
		IIP3DBm: s.IIP3DBm.Nominal,
		P1dBDBm: s.P1dBDBm.Nominal,
		NFDB:    s.NFDB,
		OffsetV: s.OffsetV.Nominal,
	}
}

// Sample returns a process-varied device instance drawn from the
// spec's tolerances.
func (s AmplifierSpec) Sample(rng *rand.Rand) *Amplifier {
	return &Amplifier{
		Spec:    s,
		GainDB:  s.GainDB.Sample(rng),
		IIP3DBm: s.IIP3DBm.Sample(rng),
		P1dBDBm: s.P1dBDBm.Sample(rng),
		NFDB:    s.NFDB,
		OffsetV: s.OffsetV.Sample(rng),
	}
}

// Amplifier is a device instance. The exported fields are the actual
// parameter values of this instance; experiments mutate them to model
// parametric (soft) faults.
type Amplifier struct {
	// Spec is the specification the device was built from.
	Spec AmplifierSpec
	// GainDB is the actual voltage gain, dB.
	GainDB float64
	// IIP3DBm is the actual input IP3, dBm.
	IIP3DBm float64
	// P1dBDBm is the actual input 1 dB compression point, dBm.
	P1dBDBm float64
	// NFDB is the actual noise figure, dB.
	NFDB float64
	// OffsetV is the actual output DC offset, volts.
	OffsetV float64
}

// Name implements Block.
func (a *Amplifier) Name() string { return a.Spec.Name }

// Gain returns the actual linear voltage gain.
func (a *Amplifier) Gain() float64 {
	return math.Pow(10, a.GainDB/20)
}

// nonlinearity builds the instance's memoryless model.
func (a *Amplifier) nonlinearity() Nonlinearity {
	return NewNonlinearity(a.Gain(), a.IIP3DBm, a.P1dBDBm)
}

// Process implements Block: y = NL(x + n_in) + offset, with the
// input-referred noise drawn over the simulation Nyquist bandwidth.
func (a *Amplifier) Process(x []float64, fs float64, rng *rand.Rand) []float64 {
	nl := a.nonlinearity()
	nIn := NoiseRMSFromNF(a.NFDB, fs/2)
	out := make([]float64, len(x))
	for i, v := range x {
		if rng != nil && nIn > 0 {
			v += rng.NormFloat64() * nIn
		}
		out[i] = nl.Apply(v) + a.OffsetV
	}
	return out
}

// Propagate implements Block: scales tones by the *nominal* gain
// (that is all the tester knows), accumulates the gain tolerance into
// the amplitude accuracy, adds the offset uncertainty, the
// NF-implied noise, and the worst-case IM3/HD3 spurs predicted from
// the nominal nonlinearity.
func (a *Amplifier) Propagate(in msignal.Signal) msignal.Signal {
	gNom := math.Pow(10, a.Spec.GainDB.Nominal/20)
	relTol := lnGainRelTol(a.Spec.GainDB)
	out := in.ScaleWithTolerance(gNom, relTol)
	out = out.AddDC(a.Spec.OffsetV.Nominal, a.Spec.OffsetV.Sigma)
	// Input-referred NF noise over the signal band appears at the
	// output scaled by gain. The propagation model tracks total noise
	// assuming the path's working bandwidth; using the Nyquist band of
	// the eventual ADC is the path package's job — here we accumulate
	// the spectral density as an RMS over a 1 Hz reference and let the
	// caller scale. To stay self-contained we use the paper's
	// convention of tracking in-band noise for a nominal 1 MHz band.
	out = out.AddNoise(gNom * NoiseRMSFromNF(a.NFDB, NominalNoiseBandwidth))
	// Distortion spurs from the nominal nonlinearity.
	nl := NewNonlinearity(gNom, a.Spec.IIP3DBm.Nominal, a.Spec.P1dBDBm.Nominal)
	out = addCubicSpurs(out, in, nl)
	return out
}

// NominalNoiseBandwidth is the bandwidth over which Propagate
// integrates noise densities, Hz. The paper's path ends in an ADC
// sampling at a few MHz; 1 MHz is the working channel bandwidth of
// the experimental set-up.
const NominalNoiseBandwidth = 1e6

// lnGainRelTol converts a dB-domain 1σ spread to the relative 1σ of
// the linear gain (exact for small spreads: σ_rel = σ_dB·ln10/20).
func lnGainRelTol(v tolerance.Value) float64 {
	return v.Sigma * math.Ln10 / 20
}

// addCubicSpurs appends the dominant third-order products of the
// input tones to the output spur list: HD3 of each tone and, for two
// or more tones, the IM3 pairs of the first two tones.
func addCubicSpurs(out, in msignal.Signal, nl Nonlinearity) msignal.Signal {
	if nl.A3 == 0 {
		return out
	}
	for _, t := range in.Tones {
		if hd3 := nl.HD3Amplitude(t.Amp); hd3 > 0 {
			out = out.AddSpur(3*t.Freq, hd3)
		}
	}
	if len(in.Tones) >= 2 {
		t1, t2 := in.Tones[0], in.Tones[1]
		a := math.Min(t1.Amp, t2.Amp)
		if im3 := nl.IM3Amplitude(a); im3 > 0 {
			out = out.AddSpur(math.Abs(2*t1.Freq-t2.Freq), im3)
			out = out.AddSpur(math.Abs(2*t2.Freq-t1.Freq), im3)
		}
	}
	return out
}
