package analog

import (
	"math"
	"math/rand"
	"testing"

	"mstx/internal/dsp"
	"mstx/internal/msignal"
	"mstx/internal/tolerance"
)

func TestDBmAmpRoundTrip(t *testing.T) {
	for _, dbm := range []float64{-30, -10, 0, 10, 20} {
		a := DBmToAmp(dbm)
		if got := AmpToDBm(a); math.Abs(got-dbm) > 1e-9 {
			t.Errorf("round trip %g dBm -> %g", dbm, got)
		}
	}
	if !math.IsInf(AmpToDBm(0), -1) {
		t.Error("AmpToDBm(0) should be -inf")
	}
	// 0 dBm across 50Ω is ~316 mV.
	if a := DBmToAmp(0); math.Abs(a-0.316227) > 1e-4 {
		t.Errorf("DBmToAmp(0) = %g", a)
	}
}

func TestNonlinearityIP3Math(t *testing.T) {
	nl := NewNonlinearity(10, 0, math.Inf(1)) // gain 10, IIP3 = 0 dBm
	aip3 := DBmToAmp(0)
	wantA3 := -4.0 / 3.0 * 10 / (aip3 * aip3)
	if math.Abs(nl.A3-wantA3) > 1e-9 {
		t.Fatalf("A3 = %g, want %g", nl.A3, wantA3)
	}
	// At the intercept amplitude, IM3 equals the fundamental (by
	// definition of the intercept of the small-signal asymptotes).
	if got, want := nl.IM3Amplitude(aip3), math.Abs(nl.Gain)*aip3; math.Abs(got-want)/want > 1e-9 {
		t.Errorf("IM3 at intercept = %g, want %g", got, want)
	}
	// HD3 is one third of IM3.
	if got := nl.HD3Amplitude(0.1) * 3; math.Abs(got-nl.IM3Amplitude(0.1)) > 1e-12 {
		t.Error("HD3 != IM3/3")
	}
	// Linear model: no compression.
	lin := NewNonlinearity(10, math.Inf(1), math.Inf(1))
	if lin.A3 != 0 || !math.IsInf(lin.CompressionInputAmp(1), 1) {
		t.Error("linear model should not compress")
	}
}

func TestCompressionPointRelation(t *testing.T) {
	// With a3 from IIP3, the 1 dB compression input sits ~9.64 dB
	// below IIP3 (the classic cubic-model relation).
	nl := NewNonlinearity(4, 10, math.Inf(1))
	a1db := nl.CompressionInputAmp(1)
	gap := 10 - AmpToDBm(a1db)
	if math.Abs(gap-9.636) > 0.05 {
		t.Errorf("IIP3 - P1dB = %g dB, want ~9.64", gap)
	}
}

func TestNonlinearityClip(t *testing.T) {
	nl := Nonlinearity{Gain: 2, Clip: 1}
	if got := nl.Apply(10); got != 1 {
		t.Errorf("positive clip = %g", got)
	}
	if got := nl.Apply(-10); got != -1 {
		t.Errorf("negative clip = %g", got)
	}
	if got := nl.Apply(0.1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("linear region = %g", got)
	}
}

func TestNoiseRMSFromNF(t *testing.T) {
	// NF = 3 dB over 1 MHz: v = sqrt((10^0.3-1)·kT·1e6·50) ≈ 14.1 nV·316...
	v := NoiseRMSFromNF(3, 1e6)
	want := math.Sqrt((math.Pow(10, 0.3) - 1) * KT * 1e6 * RefImpedance)
	if math.Abs(v-want) > 1e-15 {
		t.Errorf("noise = %g, want %g", v, want)
	}
	if NoiseRMSFromNF(3, 0) != 0 {
		t.Error("zero bandwidth should be zero noise")
	}
	if NoiseRMSFromNF(-1, 1e6) != 0 {
		t.Error("NF < 0 dB should clamp to noiseless")
	}
}

func TestFriisCascade(t *testing.T) {
	// Classic: first stage dominates when its gain is high.
	nf := FriisCascadeNF([]float64{2, 10}, []float64{30, 10})
	if math.Abs(nf-2.04) > 0.05 {
		t.Errorf("cascade NF = %g, want ~2.04", nf)
	}
	if FriisCascadeNF(nil, nil) != 0 {
		t.Error("empty cascade should be 0")
	}
	// Single stage passes through.
	if got := FriisCascadeNF([]float64{5}, []float64{20}); math.Abs(got-5) > 1e-9 {
		t.Errorf("single stage = %g", got)
	}
}

func ampSpec() AmplifierSpec {
	return AmplifierSpec{
		Name:    "amp",
		GainDB:  tolerance.Abs(20, 0.5),
		IIP3DBm: tolerance.Abs(5, 0.5),
		P1dBDBm: tolerance.Abs(-5, 0.5),
		NFDB:    3,
		OffsetV: tolerance.Abs(0.002, 0.001),
	}
}

func TestAmplifierGainMeasuredBySpectrum(t *testing.T) {
	amp := ampSpec().Build()
	fs := 10e6
	n := 4096
	f := dsp.CoherentBin(fs, n, 101)
	in := msignal.NewTone(f, 0.001).Render(n, fs, nil)
	out := amp.Process(in, fs, nil)
	spec, err := dsp.PowerSpectrum(out, fs, dsp.Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	m := dsp.MeasureTone(spec, f)
	gainDB := dsp.AmplitudeDB(m.Amplitude / 0.001)
	if math.Abs(gainDB-20) > 0.05 {
		t.Errorf("measured gain = %g dB, want 20", gainDB)
	}
}

func TestAmplifierIIP3MeasuredByTwoTone(t *testing.T) {
	spec := ampSpec()
	spec.P1dBDBm = tolerance.Abs(100, 0) // effectively no clipping
	amp := spec.Build()
	fs := 10e6
	n := 8192
	f1 := dsp.CoherentBin(fs, n, 401)
	f2 := dsp.CoherentBin(fs, n, 431)
	ain := DBmToAmp(-30) // well below compression
	in := msignal.NewTwoTone(f1, f2, ain).Render(n, fs, nil)
	out := amp.Process(in, fs, nil)
	s, err := dsp.PowerSpectrum(out, fs, dsp.Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	fund := dsp.MeasureTone(s, f1)
	im3 := dsp.MeasureTone(s, 2*f1-f2)
	// IIP3 = Pin + (Pfund − Pim3)/2, all dB.
	pin := AmpToDBm(ain)
	iip3 := pin + (dsp.AmplitudeDB(fund.Amplitude)-dsp.AmplitudeDB(im3.Amplitude))/2
	if math.Abs(iip3-5) > 0.3 {
		t.Errorf("measured IIP3 = %g dBm, want 5", iip3)
	}
}

func TestAmplifierOffsetAndNoise(t *testing.T) {
	amp := ampSpec().Build()
	fs := 10e6
	in := make([]float64, 20000)
	rng := rand.New(rand.NewSource(50))
	out := amp.Process(in, fs, rng)
	if math.Abs(dsp.Mean(out)-0.002) > 1e-4 {
		t.Errorf("offset = %g, want 0.002", dsp.Mean(out))
	}
	// Output noise ≈ gain × input-referred NF noise over fs/2.
	var acrms float64
	mean := dsp.Mean(out)
	for _, v := range out {
		acrms += (v - mean) * (v - mean)
	}
	acrms = math.Sqrt(acrms / float64(len(out)))
	want := amp.Gain() * NoiseRMSFromNF(3, fs/2)
	if acrms < want*0.9 || acrms > want*1.1 {
		t.Errorf("output noise = %g, want ~%g", acrms, want)
	}
	// Noiseless without RNG.
	clean := amp.Process(in, fs, nil)
	for _, v := range clean {
		if v != 0.002 {
			t.Fatal("nil-RNG output should be pure offset")
		}
	}
}

func TestAmplifierSampleSpread(t *testing.T) {
	spec := ampSpec()
	rng := rand.New(rand.NewSource(51))
	var sum, sum2 float64
	n := 3000
	for i := 0; i < n; i++ {
		d := spec.Sample(rng)
		sum += d.GainDB
		sum2 += d.GainDB * d.GainDB
	}
	mean := sum / float64(n)
	std := math.Sqrt(sum2/float64(n) - mean*mean)
	if math.Abs(mean-20) > 0.05 || math.Abs(std-0.5) > 0.05 {
		t.Errorf("sampled gain stats: mean %g std %g", mean, std)
	}
}

func TestAmplifierPropagate(t *testing.T) {
	amp := ampSpec().Build()
	in := msignal.NewTwoTone(1e6, 1.1e6, 0.01)
	out := amp.Propagate(in)
	// Tones scaled by nominal gain 10×.
	if math.Abs(out.Tones[0].Amp-0.1) > 1e-9 {
		t.Errorf("propagated amp = %g", out.Tones[0].Amp)
	}
	if out.AmpAccuracy <= 0 {
		t.Error("gain tolerance not accumulated")
	}
	if out.DC != 0.002 || out.DCAccuracy != 0.001 {
		t.Errorf("DC propagation: %g ± %g", out.DC, out.DCAccuracy)
	}
	if out.NoiseRMS <= 0 {
		t.Error("noise not accumulated")
	}
	// Cubic spurs present: HD3 ×2 tones + IM3 ×2.
	if len(out.Spurs) != 4 {
		t.Errorf("spurs = %d, want 4", len(out.Spurs))
	}
	if amp.Name() != "amp" {
		t.Errorf("Name = %q", amp.Name())
	}
}

func loSpec() OscillatorSpec {
	return OscillatorSpec{
		Name:                   "lo",
		FreqHz:                 tolerance.Rel(9e6, 1e-5),
		PhaseNoiseRadPerSample: 0,
	}
}

func mixSpec() MixerSpec {
	return MixerSpec{
		Name:          "mix",
		ConvGainDB:    tolerance.Abs(6, 0.5),
		IIP3DBm:       tolerance.Abs(10, 0.5),
		P1dBDBm:       tolerance.Abs(100, 0), // no clip in unit tests
		NFDB:          8,
		LOIsolationDB: tolerance.Abs(40, 1),
		LODriveAmpV:   0.3,
	}
}

func TestMixerDownconversion(t *testing.T) {
	lo := loSpec().Build()
	mx := mixSpec().Build(lo)
	fs := 40e6
	n := 8192
	fRF := dsp.CoherentBin(fs, n, 2048+205) // 9e6 needs care; use bins
	// Choose LO on a bin too so products are coherent.
	loBin := 1843 // ~9 MHz at fs=40 MHz, n=8192 -> 9.0e6/(40e6/8192)=1843.2; use exact bin
	lo.FreqHz = dsp.CoherentBin(fs, n, loBin)
	lo.Spec.FreqHz = tolerance.Abs(lo.FreqHz, 0)
	fRF = dsp.CoherentBin(fs, n, loBin+210)
	ain := 0.01
	in := msignal.NewTone(fRF, ain).Render(n, fs, nil)
	out := mx.Process(in, fs, nil)
	s, err := dsp.PowerSpectrum(out, fs, dsp.Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	fIF := fRF - lo.FreqHz
	m := dsp.MeasureTone(s, fIF)
	wantAmp := mx.ConvGain() * ain
	if math.Abs(m.Amplitude-wantAmp)/wantAmp > 0.01 {
		t.Errorf("IF amplitude = %g, want %g", m.Amplitude, wantAmp)
	}
	// LO leakage at f_LO, 40 dB below the 0.3 V drive.
	leak := dsp.MeasureTone(s, lo.FreqHz)
	wantLeak := 0.3 / 100
	if math.Abs(leak.Amplitude-wantLeak)/wantLeak > 0.05 {
		t.Errorf("LO leakage = %g, want %g", leak.Amplitude, wantLeak)
	}
}

func TestMixerPropagate(t *testing.T) {
	lo := loSpec().Build()
	mx := mixSpec().Build(lo)
	in := msignal.NewTwoTone(10e6, 10.1e6, 0.01)
	out := mx.Propagate(in)
	if math.Abs(out.Tones[0].Freq-1e6) > 1 {
		t.Errorf("IF freq = %g", out.Tones[0].Freq)
	}
	wantAmp := 0.01 * math.Pow(10, 6.0/20)
	if math.Abs(out.Tones[0].Amp-wantAmp) > 1e-9 {
		t.Errorf("IF amp = %g, want %g", out.Tones[0].Amp, wantAmp)
	}
	if out.FreqAccuracy <= 0 {
		t.Error("LO frequency error not accumulated")
	}
	// LO leakage spur tracked at the LO frequency.
	found := false
	for _, sp := range out.Spurs {
		if math.Abs(sp.Freq-9e6) < 1 {
			found = true
		}
	}
	if !found {
		t.Error("no LO leakage spur tracked")
	}
	if mx.Name() != "mix" || lo.Name() != "lo" {
		t.Error("names wrong")
	}
}

func TestOscillatorPhaseNoiseAndError(t *testing.T) {
	spec := loSpec()
	spec.PhaseNoiseRadPerSample = 0.01
	lo := spec.Build()
	rng := rand.New(rand.NewSource(52))
	th := lo.Phases(1000, 40e6, rng)
	// With phase noise, the trajectory deviates from the ideal ramp.
	w := 2 * math.Pi * lo.FreqHz / 40e6
	var dev float64
	for i, p := range th {
		dev += math.Abs(p - w*float64(i))
	}
	if dev == 0 {
		t.Error("phase noise had no effect")
	}
	// Without RNG it is exact.
	th = lo.Phases(100, 40e6, nil)
	for i, p := range th {
		if math.Abs(p-w*float64(i)) > 1e-9 {
			t.Fatal("nil-RNG phases should be ideal")
		}
	}
	// Frequency error of a sampled instance.
	rng2 := rand.New(rand.NewSource(53))
	inst := spec.Sample(rng2)
	if inst.FrequencyError() == 0 {
		t.Error("sampled LO has exactly zero frequency error (unlikely)")
	}
}

func lpfSpec() LowPassSpec {
	return LowPassSpec{
		Name:           "lpf",
		CutoffHz:       tolerance.Rel(1.5e6, 0.05),
		GainDB:         tolerance.Abs(0, 0.3),
		ClockHz:        16e6,
		ClockSpurV:     0.0005,
		OutputNoiseRMS: 1e-4,
		OffsetV:        tolerance.Abs(0.001, 0.0005),
	}
}

func TestLowPassFrequencyResponse(t *testing.T) {
	lpf := lpfSpec().Build()
	fs := 40e6
	n := 8192
	// In-band tone passes at ~unity; tone at 3×fc attenuated ~19 dB
	// (2nd-order Butterworth: 20log10 sqrt(1+81) ≈ 19.1 dB).
	fIn := dsp.CoherentBin(fs, n, 60)   // ~293 kHz
	fOut := dsp.CoherentBin(fs, n, 922) // ~4.5 MHz = 3×fc
	for _, tc := range []struct {
		f       float64
		wantMag float64
		tol     float64
	}{
		{fIn, 1.0, 0.02},
		// The discrete biquad deviates from the analog prototype by
		// bilinear frequency warping out of band; allow 10%.
		{fOut, lpf.ResponseMag(fOut), 0.10},
	} {
		in := msignal.NewTone(tc.f, 0.01).Render(n, fs, nil)
		out := lpf.Process(in, fs, nil)
		s, err := dsp.PowerSpectrum(out[n/2:], fs, dsp.Rectangular) // skip transient
		if err != nil {
			t.Fatal(err)
		}
		m := dsp.MeasureTone(s, tc.f)
		got := m.Amplitude / 0.01
		if math.Abs(got-tc.wantMag)/tc.wantMag > tc.tol {
			t.Errorf("|H(%g)| = %g, want %g ± %g%%", tc.f, got, tc.wantMag, tc.tol*100)
		}
	}
}

func TestLowPassCutoffIs3dB(t *testing.T) {
	lpf := lpfSpec().Build()
	mag := lpf.ResponseMag(lpf.CutoffHz)
	if math.Abs(dsp.AmplitudeDB(mag)-(-3.0103)) > 0.01 {
		t.Errorf("|H(fc)| = %g dB, want -3.01", dsp.AmplitudeDB(mag))
	}
	if got := lpf.StopbandGainDB(15e6); got > -35 {
		t.Errorf("stopband gain at 10×fc = %g dB, want < -35", got)
	}
}

func TestLowPassClockSpurAndOffset(t *testing.T) {
	lpf := lpfSpec().Build()
	fs := 64e6
	n := 8192
	lpfClock := dsp.CoherentBin(fs, n, 2048) // 16 MHz on-bin
	lpf.Spec.ClockHz = lpfClock
	in := make([]float64, n)
	out := lpf.Process(in, fs, nil)
	s, err := dsp.PowerSpectrum(out, fs, dsp.Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	spur := dsp.MeasureTone(s, lpfClock)
	if math.Abs(spur.Amplitude-0.0005)/0.0005 > 0.05 {
		t.Errorf("clock spur = %g, want 0.0005", spur.Amplitude)
	}
	if math.Abs(dsp.Mean(out)-0.001) > 1e-5 {
		t.Errorf("offset = %g", dsp.Mean(out))
	}
}

func TestLowPassPropagate(t *testing.T) {
	lpf := lpfSpec().Build()
	in := msignal.NewTone(300e3, 0.1)
	in = in.AddSpur(27e6, 0.01) // LO leakage from upstream
	out := lpf.Propagate(in)
	if math.Abs(out.Tones[0].Amp-0.1*lpf.ResponseMag(300e3)) > 1e-3 {
		t.Errorf("in-band tone = %g", out.Tones[0].Amp)
	}
	// The far-out spur must be strongly attenuated.
	var spurAmp float64
	for _, sp := range out.Spurs {
		if math.Abs(sp.Freq-27e6) < 1 {
			spurAmp = sp.Amp
		}
	}
	if spurAmp == 0 || spurAmp > 0.01*0.01 {
		t.Errorf("spur after filter = %g, want heavily attenuated", spurAmp)
	}
	// Near the corner, cut-off tolerance must grow amplitude accuracy
	// beyond the gain-only contribution.
	inBand := lpf.Propagate(msignal.NewTone(100e3, 0.1))
	nearCorner := lpf.Propagate(msignal.NewTone(1.4e6, 0.1))
	if nearCorner.AmpAccuracy <= inBand.AmpAccuracy {
		t.Errorf("corner accuracy %g should exceed in-band %g",
			nearCorner.AmpAccuracy, inBand.AmpAccuracy)
	}
	if lpf.Name() != "lpf" {
		t.Error("name wrong")
	}
}

func TestLowPassSampleSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	inst := lpfSpec().Sample(rng)
	if inst.CutoffHz == 1.5e6 {
		t.Error("sampled cutoff exactly nominal (unlikely)")
	}
}

func TestMixerSampleSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	lo := loSpec().Sample(rng)
	mx := mixSpec().Sample(lo, rng)
	if mx.ConvGainDB == 6 {
		t.Error("sampled conversion gain exactly nominal (unlikely)")
	}
}

func TestLowPassGroupDelay(t *testing.T) {
	lpf := lpfSpec().Build()
	fs := 64e6
	// Deep in band the 2nd-order Butterworth group delay approaches
	// sqrt(2)/(2π·fc) ≈ 150 ns for fc = 1.5 MHz.
	tau := lpf.GroupDelayAt(100e3, fs)
	want := math.Sqrt2 / (2 * math.Pi * lpf.CutoffHz)
	if math.Abs(tau-want)/want > 0.1 {
		t.Errorf("group delay at DC-ish = %g, want ~%g", tau, want)
	}
	// Delay grows toward the corner for a Butterworth.
	if lpf.GroupDelayAt(1.4e6, fs) <= tau {
		t.Error("group delay should rise toward the corner")
	}
}

func TestLowPassPhasePropagation(t *testing.T) {
	lpf := lpfSpec().Build()
	// Two nearby tones: the propagated phase difference over Δω must
	// equal the prototype group delay at their midpoint.
	f1, f2 := 0.9e6, 0.95e6
	in := msignal.NewTwoTone(f1, f2, 0.1)
	out := lpf.Propagate(in)
	dphi := out.Tones[1].Phase - out.Tones[0].Phase
	tau := -dphi / (2 * math.Pi * (f2 - f1))
	// Prototype group delay (use the realized helper at a high rate,
	// where warping vanishes).
	want := lpf.GroupDelayAt((f1+f2)/2, 1e9)
	if math.Abs(tau-want)/want > 0.05 {
		t.Errorf("attribute group delay %g vs prototype %g", tau, want)
	}
	// Phase accuracy grows with the cut-off tolerance, more near the
	// corner than deep in band.
	nearCorner := lpf.Propagate(msignal.NewTone(1.4e6, 0.1))
	deep := lpf.Propagate(msignal.NewTone(100e3, 0.1))
	if nearCorner.PhaseAccuracy <= deep.PhaseAccuracy {
		t.Errorf("corner phase accuracy %g should exceed deep-band %g",
			nearCorner.PhaseAccuracy, deep.PhaseAccuracy)
	}
	if deep.PhaseAccuracy <= 0 {
		t.Error("phase accuracy not accumulated")
	}
}
