// Package analog provides behavioural time-domain models of the
// analog blocks in the paper's communication signal path — amplifier,
// local oscillator, mixer, and switched-capacitor low-pass filter —
// together with the non-idealities the test-translation scheme must
// reason about: third-order nonlinearity derived from IIP3, gain
// compression from P1dB, thermal noise from noise figure, DC offset,
// LO feed-through, clock spurs, and phase noise.
//
// Every block implements two views of itself:
//
//   - Process: sample-accurate waveform transformation, used by the
//     simulation substrate standing in for silicon/SPICE;
//   - Propagate: the paper's attribute-level signal propagation, used
//     by the test-translation engine.
//
// Blocks are *device instances*: their exported parameter fields hold
// the actual (possibly process-varied or faulty) values. Specs hold
// nominal values plus tolerances and can Build nominal devices or
// Sample process-varied ones.
package analog

import (
	"math"
	"math/rand"

	"mstx/internal/msignal"
)

// Reference conditions shared by the dBm-referred specifications.
const (
	// RefImpedance is the reference impedance for dBm conversions, Ω.
	RefImpedance = 50.0
	// KT is Boltzmann's constant times the 290 K reference
	// temperature, in W/Hz.
	KT = 4.0038821e-21
)

// Block is one module of an analog signal path.
type Block interface {
	// Name identifies the block instance in reports.
	Name() string
	// Process transforms a waveform sampled at fs Hz. Noise and other
	// random imperfections draw from rng; a nil rng yields the
	// deterministic (noise-free) response. Process starts from cleared
	// internal state: each call models an independent capture.
	Process(x []float64, fs float64, rng *rand.Rand) []float64
	// Propagate transforms the attribute model of the input signal
	// into the attribute model at the block output, accumulating
	// uncertainty from the block's tolerances.
	Propagate(in msignal.Signal) msignal.Signal
}

// DBmToAmp converts a dBm power (into RefImpedance) to sine amplitude
// in volts.
func DBmToAmp(dbm float64) float64 {
	p := math.Pow(10, (dbm-30)/10)
	return math.Sqrt(2 * RefImpedance * p)
}

// AmpToDBm converts a sine amplitude in volts to dBm into
// RefImpedance.
func AmpToDBm(amp float64) float64 {
	if amp <= 0 {
		return math.Inf(-1)
	}
	return 10*math.Log10(amp*amp/(2*RefImpedance)) + 30
}

// Nonlinearity is the memoryless weak-nonlinearity model used by the
// RF blocks: y = G·x + A3·x³, hard-clipped at ±Clip when Clip > 0.
type Nonlinearity struct {
	// Gain is the small-signal linear voltage gain.
	Gain float64
	// A3 is the third-order coefficient (negative for compressive
	// devices).
	A3 float64
	// Clip is the output hard-clip level in volts (0 disables).
	Clip float64
}

// NewNonlinearity derives the model from RF-style specifications:
// linear voltage gain, input IP3 in dBm, and input P1dB in dBm
// (math.Inf(1) for either disables that effect). The classic cubic
// relation A3 = -(4/3)·G/A_IIP3² is used; the clip level is placed at
// the output amplitude corresponding to the specified input P1dB.
func NewNonlinearity(gain, iip3DBm, p1dBDBm float64) Nonlinearity {
	nl := Nonlinearity{Gain: gain}
	if !math.IsInf(iip3DBm, 1) {
		a := DBmToAmp(iip3DBm)
		nl.A3 = -4.0 / 3.0 * gain / (a * a)
	}
	if !math.IsInf(p1dBDBm, 1) {
		ain := DBmToAmp(p1dBDBm)
		nl.Clip = math.Abs(gain) * ain
	}
	return nl
}

// Apply evaluates the nonlinearity for one sample.
func (nl Nonlinearity) Apply(x float64) float64 {
	y := nl.Gain*x + nl.A3*x*x*x
	if nl.Clip > 0 {
		if y > nl.Clip {
			y = nl.Clip
		} else if y < -nl.Clip {
			y = -nl.Clip
		}
	}
	return y
}

// IM3Amplitude predicts the amplitude of each third-order intermod
// product (2f1−f2, 2f2−f1) at the output for a two-tone input with
// per-tone amplitude a: (3/4)·|A3|·a³.
func (nl Nonlinearity) IM3Amplitude(a float64) float64 {
	return 0.75 * math.Abs(nl.A3) * a * a * a
}

// HD3Amplitude predicts the amplitude of the third harmonic at the
// output for a single tone of amplitude a: (1/4)·|A3|·a³.
func (nl Nonlinearity) HD3Amplitude(a float64) float64 {
	return 0.25 * math.Abs(nl.A3) * a * a * a
}

// CompressionInputAmp returns the input amplitude at which the cubic
// model's gain has dropped by dB decibels (the 1 dB compression point
// for dB = 1). Returns +Inf for a linear model.
func (nl Nonlinearity) CompressionInputAmp(dB float64) float64 {
	if nl.A3 == 0 {
		return math.Inf(1)
	}
	drop := 1 - math.Pow(10, -dB/20)
	return math.Sqrt(drop * 4.0 / 3.0 * math.Abs(nl.Gain) / math.Abs(nl.A3))
}

// NoiseRMSFromNF converts a noise figure in dB to the RMS of the
// *input-referred added* noise voltage over bandwidth bw Hz at the
// reference impedance: v² = (F−1)·kT·bw·R. The simulation adds this
// at the block input (scaled by gain at the output).
func NoiseRMSFromNF(nfDB, bw float64) float64 {
	if bw <= 0 {
		return 0
	}
	f := math.Pow(10, nfDB/10)
	if f < 1 {
		f = 1
	}
	return math.Sqrt((f - 1) * KT * bw * RefImpedance)
}

// FriisCascadeNF combines stage noise figures (dB) and gains (dB)
// into the cascade noise figure in dB — the composition rule the
// translation-by-composition method uses for NF.
func FriisCascadeNF(nfDB, gainDB []float64) float64 {
	if len(nfDB) == 0 {
		return 0
	}
	f := math.Pow(10, nfDB[0]/10)
	g := 1.0
	for i := 1; i < len(nfDB); i++ {
		g *= math.Pow(10, gainDB[i-1]/10)
		if g <= 0 {
			break
		}
		f += (math.Pow(10, nfDB[i]/10) - 1) / g
	}
	return 10 * math.Log10(f)
}
