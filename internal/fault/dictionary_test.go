package fault

import (
	"math/rand"
	"testing"

	"mstx/internal/digital"
)

func TestBuildDictionaryValidation(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, true)
	if _, err := BuildDictionary(u, nil); err == nil {
		t.Error("empty record accepted")
	}
}

func TestDiagnoseLocatesInjectedFault(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, true)
	xs := sineRecord(96, 28, 5)
	dict, err := BuildDictionary(u, xs)
	if err != nil {
		t.Fatal(err)
	}
	good := fir.ReferencePeriodic(xs)

	rng := rand.New(rand.NewSource(120))
	trials, located := 0, 0
	for i := 0; i < 12; i++ {
		f := u.Faults[rng.Intn(len(u.Faults))]
		sim := digital.NewFIRSim(fir)
		if err := sim.InjectFault(f, ^uint64(0)); err != nil {
			t.Fatal(err)
		}
		observed, err := sim.RunPeriodic(xs)
		if err != nil {
			t.Fatal(err)
		}
		cands, err := dict.Diagnose(good, observed, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) == 0 {
			// Undetectable fault on this stimulus — skip.
			continue
		}
		trials++
		// The injected fault (or a signature-equivalent one) must top
		// the ranking with an exact match.
		if !cands[0].Exact {
			t.Errorf("fault %v: best candidate %v score %.3f not exact",
				f, cands[0].Fault, cands[0].Score)
			continue
		}
		// The true fault must appear among the exact matches.
		found := false
		for _, c := range cands {
			if c.Fault == f && c.Exact {
				found = true
			}
		}
		// Equivalent faults share signatures; accept any exact match
		// but count how often the literal site is in the top-3.
		if found {
			located++
		}
	}
	if trials == 0 {
		t.Fatal("no diagnosable trials")
	}
	if located < trials/2 {
		t.Errorf("literal site located in only %d of %d trials", located, trials)
	}
}

func TestDiagnoseValidation(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, true)
	xs := sineRecord(32, 20, 3)
	dict, err := BuildDictionary(u, xs)
	if err != nil {
		t.Fatal(err)
	}
	good := fir.ReferencePeriodic(xs)
	if _, err := dict.Diagnose(good, good[:10], 3); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := dict.Diagnose(good, good, 0); err == nil {
		t.Error("k=0 accepted")
	}
	// Healthy observation: no candidates.
	cands, err := dict.Diagnose(good, good, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Exact {
			t.Errorf("healthy record exactly matched fault %v", c.Fault)
		}
	}
}

func TestDiagnoseRejectsUnrelatedPerturbation(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, true)
	xs := sineRecord(64, 25, 3)
	dict, err := BuildDictionary(u, xs)
	if err != nil {
		t.Fatal(err)
	}
	good := fir.ReferencePeriodic(xs)
	// A single-sample glitch matches poorly against real signatures.
	observed := append([]int64(nil), good...)
	observed[7] += 1
	cands, err := dict.Diagnose(good, observed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) > 0 && cands[0].Score > 0.6 {
		t.Errorf("glitch matched %v at %.2f", cands[0].Fault, cands[0].Score)
	}
}
