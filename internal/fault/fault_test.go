package fault

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mstx/internal/digital"
	"mstx/internal/netlist"
)

func smallFIR(t testing.TB) *digital.FIR {
	t.Helper()
	fir, err := digital.NewFIR([]int64{3, -5, 7}, 6)
	if err != nil {
		t.Fatal(err)
	}
	return fir
}

func sineRecord(n int, amp float64, cycles int) []int64 {
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(math.Round(amp * math.Sin(2*math.Pi*float64(cycles)*float64(i)/float64(n))))
	}
	return xs
}

func TestUniverseSizes(t *testing.T) {
	fir := smallFIR(t)
	full := NewUniverse(fir, false)
	collapsed := NewUniverse(fir, true)
	if full.Size() == 0 {
		t.Fatal("empty universe")
	}
	if collapsed.Size() >= full.Size() {
		t.Fatalf("collapsing did not shrink: %d vs %d", collapsed.Size(), full.Size())
	}
	if !collapsed.Collapsed || full.Collapsed {
		t.Error("Collapsed flags wrong")
	}
}

func TestSimulateDetectsInjectedFaults(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, true)
	xs := sineRecord(64, 28, 5)
	rep, err := Simulate(context.Background(), u, xs, ExactDetector{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Patterns != 64 {
		t.Errorf("Patterns = %d", rep.Patterns)
	}
	cov := rep.Coverage()
	if cov < 60 || cov > 100 {
		t.Errorf("implausible coverage %.1f%%", cov)
	}
	if rep.Detected() != len(rep.Results)-len(rep.Undetected()) {
		t.Error("Detected/Undetected inconsistent")
	}
	if !strings.Contains(rep.String(), "faults detected") {
		t.Errorf("String() = %q", rep.String())
	}
	// Every detected fault must have a first-diff index.
	for _, r := range rep.Results {
		if r.Detected && r.FirstDiff < 0 {
			t.Errorf("fault %v detected but FirstDiff = -1", r.Fault)
		}
		if !r.Detected && r.MaxAbsDiff != 0 {
			t.Errorf("fault %v undetected but MaxAbsDiff = %d with threshold 0", r.Fault, r.MaxAbsDiff)
		}
	}
}

func TestSerialMatchesParallel(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, true)
	xs := sineRecord(48, 25, 3)
	par, err := Simulate(context.Background(), u, xs, ExactDetector{})
	if err != nil {
		t.Fatal(err)
	}
	ser, err := SerialSimulate(u, xs, ExactDetector{})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Results) != len(ser.Results) {
		t.Fatal("result count mismatch")
	}
	for i := range par.Results {
		p, s := par.Results[i], ser.Results[i]
		if p.Detected != s.Detected || p.FirstDiff != s.FirstDiff || p.MaxAbsDiff != s.MaxAbsDiff {
			t.Fatalf("fault %v: parallel %+v != serial %+v", p.Fault, p, s)
		}
	}
}

func TestExactDetectorThreshold(t *testing.T) {
	good := []int64{0, 10, 20}
	faulty := []int64{0, 12, 20}
	mustDetect := func(d ExactDetector, g, f []int64) bool {
		t.Helper()
		det, err := d.Detect(g, f)
		if err != nil {
			t.Fatal(err)
		}
		return det
	}
	if !mustDetect(ExactDetector{}, good, faulty) {
		t.Error("threshold 0 missed a 2-LSB diff")
	}
	if mustDetect(ExactDetector{Threshold: 2}, good, faulty) {
		t.Error("threshold 2 detected a 2-LSB diff (must require >)")
	}
	if !mustDetect(ExactDetector{Threshold: 1}, good, faulty) {
		t.Error("threshold 1 missed a 2-LSB diff")
	}
	if mustDetect(ExactDetector{}, good, good) {
		t.Error("identical records detected")
	}
}

// errDetector fails on every record pair; campaigns must surface the
// failure instead of counting phantom undetected faults.
type errDetector struct{}

func (errDetector) Detect(good, faulty []int64) (bool, error) {
	return false, errors.New("detector exploded")
}

func TestSimulateSurfacesDetectorErrors(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, true)
	xs := sineRecord(64, 20, 3)
	if _, err := Simulate(context.Background(), u, xs, errDetector{}); err == nil || !strings.Contains(err.Error(), "detector exploded") {
		t.Errorf("Simulate swallowed the detector error: %v", err)
	}
	if _, err := SerialSimulate(u, xs, errDetector{}); err == nil || !strings.Contains(err.Error(), "detector exploded") {
		t.Errorf("SerialSimulate swallowed the detector error: %v", err)
	}
}

func TestRunBatchesFirstErrorByBatchOrder(t *testing.T) {
	// Several batches fail; the returned error must deterministically
	// be the lowest-numbered one, regardless of completion order.
	for trial := 0; trial < 25; trial++ {
		var live int32
		var peak int32
		err := runBatches(context.Background(), 16, 4, func(_, b int) error {
			n := atomic.AddInt32(&live, 1)
			for {
				p := atomic.LoadInt32(&peak)
				if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
					break
				}
			}
			defer atomic.AddInt32(&live, -1)
			switch b {
			case 3:
				// Delay the earliest failure so a later one tends to
				// land first.
				time.Sleep(2 * time.Millisecond)
				return fmt.Errorf("batch 3 failed")
			case 11:
				return fmt.Errorf("batch 11 failed")
			}
			return nil
		})
		if err == nil || err.Error() != "batch 3 failed" {
			t.Fatalf("trial %d: got %v, want the batch-3 error", trial, err)
		}
		if p := atomic.LoadInt32(&peak); p > 4 {
			t.Fatalf("trial %d: %d batch goroutines live at once; pool must be bounded at 4", trial, p)
		}
	}
	if err := runBatches(context.Background(), 0, 4, func(int, int) error { return errors.New("never") }); err != nil {
		t.Errorf("zero batches returned %v", err)
	}
	// More workers than batches must not deadlock or skip work.
	var ran int32
	if err := runBatches(context.Background(), 3, 64, func(int, int) error { atomic.AddInt32(&ran, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Errorf("ran %d batches, want 3", ran)
	}
}

// countingWorkerDetector wraps ExactDetector with WorkerDetector
// bookkeeping so tests can prove the campaign detects through the
// per-worker bound functions rather than the shared Detect.
type countingWorkerDetector struct {
	base        ExactDetector
	newErr      error
	newCalls    atomic.Int64
	boundCalls  atomic.Int64
	directCalls atomic.Int64
}

func (d *countingWorkerDetector) Detect(good, faulty []int64) (bool, error) {
	d.directCalls.Add(1)
	return d.base.Detect(good, faulty)
}

func (d *countingWorkerDetector) NewWorkerDetect() (func(good, faulty []int64) (bool, error), error) {
	if d.newErr != nil {
		return nil, d.newErr
	}
	d.newCalls.Add(1)
	return func(good, faulty []int64) (bool, error) {
		d.boundCalls.Add(1)
		return d.base.Detect(good, faulty)
	}, nil
}

func TestSimulateUsesWorkerDetectors(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, true)
	xs := sineRecord(64, 28, 5)
	want, err := Simulate(context.Background(), u, xs, ExactDetector{})
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string, cd *countingWorkerDetector, rep *Report, wantNew int64) {
		t.Helper()
		if len(rep.Results) != len(want.Results) {
			t.Fatalf("%s: result count mismatch", label)
		}
		for i := range want.Results {
			if rep.Results[i].Detected != want.Results[i].Detected {
				t.Fatalf("%s: fault %v verdict differs from plain ExactDetector",
					label, rep.Results[i].Fault)
			}
		}
		if cd.newCalls.Load() != wantNew {
			t.Errorf("%s: NewWorkerDetect called %d times, want %d", label, cd.newCalls.Load(), wantNew)
		}
		if cd.boundCalls.Load() == 0 {
			t.Errorf("%s: no detection went through the bound worker function", label)
		}
		if cd.directCalls.Load() != 0 {
			t.Errorf("%s: %d detections bypassed the worker scratch path", label, cd.directCalls.Load())
		}
	}

	cd := &countingWorkerDetector{}
	rep, err := SimulateOpts(context.Background(), u, xs, cd, SimOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// One bound detector per pool worker, clamped to the batch count.
	wantDets := int64((len(u.Faults) + 62) / 63)
	if wantDets > 2 {
		wantDets = 2
	}
	check("parallel", cd, rep, wantDets)

	cd = &countingWorkerDetector{}
	ser, err := SerialSimulate(u, xs, cd)
	if err != nil {
		t.Fatal(err)
	}
	check("serial", cd, ser, 1)
}

func TestWorkerDetectorSetupErrorPropagates(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, true)
	xs := sineRecord(64, 28, 5)
	cd := &countingWorkerDetector{newErr: errors.New("scratch build failed")}
	if _, err := Simulate(context.Background(), u, xs, cd); err == nil || !strings.Contains(err.Error(), "scratch build failed") {
		t.Errorf("Simulate swallowed the setup error: %v", err)
	}
	if _, err := SerialSimulate(u, xs, cd); err == nil || !strings.Contains(err.Error(), "scratch build failed") {
		t.Errorf("SerialSimulate swallowed the setup error: %v", err)
	}
	if cd.boundCalls.Load() != 0 || cd.directCalls.Load() != 0 {
		t.Error("detection ran despite the setup failure")
	}
}

func TestSimulateValidation(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, true)
	if _, err := Simulate(context.Background(), u, nil, ExactDetector{}); err == nil {
		t.Error("empty record accepted")
	}
	if _, err := Simulate(context.Background(), u, []int64{1}, nil); err == nil {
		t.Error("nil detector accepted")
	}
	if _, err := SerialSimulate(u, nil, ExactDetector{}); err == nil {
		t.Error("serial empty record accepted")
	}
	if _, err := SerialSimulate(u, []int64{1}, nil); err == nil {
		t.Error("serial nil detector accepted")
	}
}

func TestRecordsCapturesFaultyOutputs(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, false)
	xs := sineRecord(32, 20, 3)
	// Pick an output-bus LSB SA1 fault — easy to predict.
	f := netlist.Fault{Net: fir.OutBus[0], Stuck: netlist.StuckAt1}
	good, faulty, err := Records(u, xs, []netlist.Fault{f})
	if err != nil {
		t.Fatal(err)
	}
	if len(faulty) != 1 {
		t.Fatalf("faulty records = %d", len(faulty))
	}
	ref := fir.ReferencePeriodic(xs)
	for i := range good {
		if good[i] != ref[i] {
			t.Fatalf("good record wrong at %d", i)
		}
		if faulty[0][i] != ref[i]|1 {
			t.Fatalf("faulty record at %d: %d, want %d", i, faulty[0][i], ref[i]|1)
		}
	}
}

func TestRecordsLimit(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, false)
	many := make([]netlist.Fault, 64)
	if _, _, err := Records(u, []int64{1}, many); err == nil {
		t.Error("64 faults accepted in one Records pass")
	}
}

func TestTapAttribution(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, false)
	xs := sineRecord(32, 25, 3)
	rep, err := Simulate(context.Background(), u, xs, ExactDetector{})
	if err != nil {
		t.Fatal(err)
	}
	tapSeen := map[int]bool{}
	for _, r := range rep.Results {
		tapSeen[r.Tap] = true
	}
	for tap := 0; tap < fir.Taps(); tap++ {
		if !tapSeen[tap] {
			t.Errorf("no fault attributed to tap %d", tap)
		}
	}
	if !tapSeen[-1] {
		t.Error("no fault attributed to the sum tree")
	}
}

func TestLSBConfinement(t *testing.T) {
	results := []Result{
		{MaxAbsDiff: 0},
		{MaxAbsDiff: 3}, // < 2^2
		{MaxAbsDiff: 4}, // not < 2^2
		{MaxAbsDiff: 100},
	}
	if got := LSBConfinement(results, 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("LSBConfinement = %g, want 0.5", got)
	}
	if got := LSBConfinement(nil, 2); got != 1 {
		t.Errorf("empty confinement = %g", got)
	}
}

func TestTwoToneBeatsSingleToneCoverage(t *testing.T) {
	// The paper's headline qualitative result at small scale: a
	// two-tone stimulus detects at least as many faults as one tone of
	// the same composite amplitude.
	fir, err := digital.NewFIR([]int64{5, -9, 13, -9, 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	u := NewUniverse(fir, true)
	n := 128
	one := make([]int64, n)
	two := make([]int64, n)
	for i := range one {
		ph := 2 * math.Pi * float64(i) / float64(n)
		one[i] = int64(math.Round(100 * math.Sin(7*ph)))
		two[i] = int64(math.Round(50*math.Sin(7*ph) + 50*math.Sin(11*ph)))
	}
	rep1, err := Simulate(context.Background(), u, one, ExactDetector{})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Simulate(context.Background(), u, two, ExactDetector{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Coverage()+5 < rep1.Coverage() {
		t.Errorf("two-tone coverage %.1f%% much worse than single %.1f%%",
			rep2.Coverage(), rep1.Coverage())
	}
}

func TestUndetectedResults(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, true)
	// All-zero input: nothing toggles, SA0 faults everywhere are
	// undetectable, so there must be a healthy undetected set.
	xs := make([]int64, 16)
	rep, err := Simulate(context.Background(), u, xs, ExactDetector{})
	if err != nil {
		t.Fatal(err)
	}
	und := rep.UndetectedResults()
	if len(und) == 0 {
		t.Fatal("zero input detected faults?")
	}
	for _, r := range und {
		if r.Detected {
			t.Fatal("UndetectedResults returned a detected fault")
		}
	}
}

func BenchmarkSimulateParallel(b *testing.B) {
	fir, err := digital.NewFIR([]int64{5, -9, 13, -9, 5}, 8)
	if err != nil {
		b.Fatal(err)
	}
	u := NewUniverse(fir, true)
	xs := sineRecord(128, 100, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(context.Background(), u, xs, ExactDetector{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateSerial(b *testing.B) {
	fir, err := digital.NewFIR([]int64{5, -9, 13, -9, 5}, 8)
	if err != nil {
		b.Fatal(err)
	}
	u := NewUniverse(fir, true)
	xs := sineRecord(128, 100, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SerialSimulate(u, xs, ExactDetector{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDetectOnlyMatchesSimulate(t *testing.T) {
	fir, err := digital.NewFIR([]int64{5, -9, 13, -9, 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	u := NewUniverse(fir, true)
	xs := sineRecord(96, 100, 7)
	rep, err := Simulate(context.Background(), u, xs, ExactDetector{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := DetectOnly(u, xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(rep.Results) {
		t.Fatal("length mismatch")
	}
	for i := range fast {
		if fast[i] != rep.Results[i].Detected {
			t.Fatalf("fault %v: fast %v vs full %v", rep.Results[i].Fault, fast[i], rep.Results[i].Detected)
		}
	}
}

func TestDetectOnlyValidation(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, true)
	if _, err := DetectOnly(u, nil); err == nil {
		t.Error("empty record accepted")
	}
}
