// Package fault provides the stuck-at fault-simulation engine for
// gate-level FIR filters: fault-universe management, 63-fault-per-pass
// parallel simulation over sample records, exact (output-compare)
// detection with fault dropping, full per-fault output-record capture
// for spectral testing, and coverage accounting.
package fault

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mstx/internal/digital"
	"mstx/internal/netlist"
	"mstx/internal/obs"
	"mstx/internal/resilient"
)

// fpBatch is the failpoint evaluated before every simulation batch;
// the chaos suite arms it to inject batch errors, panics and delays.
var fpBatch = resilient.Site("fault.batch")

// Universe holds a fault list for a FIR circuit together with the
// bookkeeping needed for reports.
type Universe struct {
	// FIR is the circuit under test.
	FIR *digital.FIR
	// Faults is the fault list being simulated.
	Faults []netlist.Fault
	// Collapsed records whether structural equivalence collapsing was
	// applied.
	Collapsed bool
}

// NewUniverse enumerates the single-stuck-at universe of the FIR,
// optionally collapsed by structural equivalence.
func NewUniverse(f *digital.FIR, collapse bool) *Universe {
	all := netlist.AllFaults(f.Circuit)
	if collapse {
		all = netlist.CollapseFaults(f.Circuit, all)
	}
	return &Universe{FIR: f, Faults: all, Collapsed: collapse}
}

// Size returns the number of faults in the universe.
func (u *Universe) Size() int { return len(u.Faults) }

// Result is the outcome of simulating one fault.
type Result struct {
	// Fault is the simulated fault.
	Fault netlist.Fault
	// Detected reports whether the detection predicate fired.
	Detected bool
	// FirstDiff is the sample index of the first output difference, or
	// -1 when the faulty record equals the good record.
	FirstDiff int
	// MaxAbsDiff is the largest |faulty - good| output difference.
	MaxAbsDiff int64
	// Tap is the index of the tap whose cone contains the fault site,
	// or -1 for the shared sum tree.
	Tap int
	// Quarantined marks a fault whose simulation batch panicked while
	// quarantine was enabled: the panic was recovered, the batch was
	// excluded, and the campaign continued. A quarantined fault is
	// never counted as detected — its verdict is unknown, not clean.
	Quarantined bool
}

// Report aggregates a fault-simulation campaign.
type Report struct {
	// Results holds one entry per fault, in universe order.
	Results []Result
	// Patterns is the record length simulated.
	Patterns int
}

// Detected returns the number of detected faults.
func (r *Report) Detected() int {
	n := 0
	for _, res := range r.Results {
		if res.Detected {
			n++
		}
	}
	return n
}

// Quarantined returns the number of quarantined faults — batches whose
// worker panicked and was isolated rather than crashing the campaign.
func (r *Report) Quarantined() int {
	n := 0
	for _, res := range r.Results {
		if res.Quarantined {
			n++
		}
	}
	return n
}

// Coverage returns the fault coverage in percent.
func (r *Report) Coverage() float64 {
	if len(r.Results) == 0 {
		return 0
	}
	return 100 * float64(r.Detected()) / float64(len(r.Results))
}

// Undetected returns the undetected faults.
func (r *Report) Undetected() []netlist.Fault {
	var out []netlist.Fault
	for _, res := range r.Results {
		if !res.Detected {
			out = append(out, res.Fault)
		}
	}
	return out
}

// UndetectedResults returns the Result entries for undetected faults.
func (r *Report) UndetectedResults() []Result {
	var out []Result
	for _, res := range r.Results {
		if !res.Detected {
			out = append(out, res)
		}
	}
	return out
}

// String summarizes the report.
func (r *Report) String() string {
	return fmt.Sprintf("%d/%d faults detected (%.1f%%) with %d patterns",
		r.Detected(), len(r.Results), r.Coverage(), r.Patterns)
}

// Detector decides, given the good and faulty output records, whether
// the fault is considered detected. ExactDetector is the ideal-input
// case; package spectest provides the spectral detector used when the
// stimulus arrives through a noisy analog front end. A detector error
// aborts the campaign: a verdict the detector could not actually reach
// must fail loudly rather than be counted as an undetected fault and
// silently skew coverage.
type Detector interface {
	// Detect reports whether the faulty record is distinguishable from
	// the good record.
	Detect(good, faulty []int64) (bool, error)
}

// WorkerDetector is implemented by detectors that keep reusable
// per-goroutine scratch state (spectest.Detector is the one in-tree):
// NewWorkerDetect returns a Detect-shaped function bound to a fresh
// scratch for exclusive use by one worker goroutine, with verdicts
// bit-identical to Detect's. Simulate and SerialSimulate detect
// through it when available, so the per-record spectral path allocates
// nothing in steady state instead of rebuilding window tables and FFT
// buffers per fault.
type WorkerDetector interface {
	Detector
	NewWorkerDetect() (func(good, faulty []int64) (bool, error), error)
}

// detectFunc adapts a bound worker-detect function back into the
// Detector interface the batch code consumes.
type detectFunc func(good, faulty []int64) (bool, error)

// Detect implements Detector.
func (f detectFunc) Detect(good, faulty []int64) (bool, error) { return f(good, faulty) }

// workerDetector returns a detector for one worker goroutine: a
// scratch-bound instance when det supports it, det itself otherwise.
func workerDetector(det Detector) (Detector, error) {
	wd, ok := det.(WorkerDetector)
	if !ok {
		return det, nil
	}
	fn, err := wd.NewWorkerDetect()
	if err != nil {
		return nil, err
	}
	return detectFunc(fn), nil
}

// ExactDetector declares a fault detected when any output sample
// differs by more than Threshold LSBs (0 = any difference). This is
// the classical known-input, known-output digital test assumption.
type ExactDetector struct {
	// Threshold is the per-sample absolute difference that must be
	// exceeded. Zero detects any difference.
	Threshold int64
}

// Detect implements Detector.
func (d ExactDetector) Detect(good, faulty []int64) (bool, error) {
	for i := range good {
		diff := faulty[i] - good[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > d.Threshold {
			return true, nil
		}
	}
	return false, nil
}

// DiffStats returns the sample index of the first difference between
// the good and faulty records (-1 when identical) and the largest
// absolute difference. It is the shared diff accounting of the batch,
// serial, and campaign engines — the campaign zero-diff screen keys
// off maxAbs == 0.
func DiffStats(good, faulty []int64) (firstDiff int, maxAbs int64) {
	firstDiff = -1
	for n := range good {
		d := faulty[n] - good[n]
		if d < 0 {
			d = -d
		}
		if d > 0 && firstDiff < 0 {
			firstDiff = n
		}
		if d > maxAbs {
			maxAbs = d
		}
	}
	return firstDiff, maxAbs
}

// runBatches runs fn(worker, batch) for every batch in [0, nBatches)
// on a bounded pool of at most `workers` goroutines and returns the
// first error in batch order. The worker index (0 ≤ worker < workers)
// identifies the claiming goroutine so callers can hand each worker
// exclusive scratch state. Unlike the seed implementation — which spawned
// every batch goroutine up front and only then gated them on a
// semaphore, and whose error channel surfaced whichever failing batch
// lost the race — the pool never holds more than `workers` goroutines
// alive and its error choice is deterministic.
//
// The pool fast-fails: after the first error no further batches start
// (in-flight batches finish), so an erroring campaign settles its
// goroutines promptly instead of grinding through the remaining work.
// Cancellation is honored at batch granularity — when ctx is
// interrupted workers stop claiming and the typed
// resilient.ErrCanceled/ErrDeadline is returned (batch errors win).
// Worker goroutines run under resilient.Go, so a panic escaping fn's
// own guards degrades to a returned error, never a process crash.
func runBatches(ctx context.Context, nBatches, workers int, fn func(worker, batch int) error) error {
	if nBatches <= 0 {
		return nil
	}
	if workers > nBatches {
		workers = nBatches
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, nBatches)
	next := int64(-1)
	var (
		failed   int32
		wg       sync.WaitGroup
		poolOnce sync.Once
		poolErr  error
	)
	onPool := func(err error) {
		poolOnce.Do(func() { poolErr = err })
		atomic.StoreInt32(&failed, 1)
	}
	for w := 0; w < workers; w++ {
		worker := w
		resilient.Go(&wg, "fault.worker", func() error {
			for {
				b := int(atomic.AddInt64(&next, 1))
				if b >= nBatches {
					return nil
				}
				if atomic.LoadInt32(&failed) != 0 {
					continue
				}
				if ctx.Err() != nil {
					return nil
				}
				if err := fn(worker, b); err != nil {
					errs[b] = err
					atomic.StoreInt32(&failed, 1)
				}
			}
		}, onPool)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if poolErr != nil {
		return fmt.Errorf("fault: worker pool: %w", poolErr)
	}
	return resilient.CtxErr(ctx)
}

// SimOptions configures a resilient Simulate run. The zero value is
// the plain campaign: no checkpointing, no quarantine, GOMAXPROCS
// workers.
type SimOptions struct {
	// Workers bounds the batch pool. Defaults to GOMAXPROCS.
	Workers int
	// Checkpoint, when enabled, snapshots the batch ledger (which
	// batches completed and their results) every Checkpoint.Every
	// completions, so a killed campaign resumes instead of restarting.
	Checkpoint *resilient.Checkpointer
	// CheckpointName names this campaign's snapshot inside
	// Checkpoint.Dir. Default "fault".
	CheckpointName string
	// Quarantine recovers a panicking simulation batch, marks its
	// faults Quarantined in the Report, and continues the campaign.
	// Without it the recovered panic aborts the run as an ordinary
	// error — the process never crashes either way.
	Quarantine bool
}

// simCkptVersion guards the simCkpt layout.
const simCkptVersion = 1

// simCkpt is the batch-ledger snapshot of a Simulate run: which
// batches completed and every completed batch's results, plus the
// campaign identity (fault count, record length, stimulus hash) the
// ledger is only valid for.
type simCkpt struct {
	NF       int
	Patterns int
	StimHash uint64
	Done     []bool
	Results  []Result
}

// recordHash is FNV-1a over the record words — the cheap identity
// check that guards checkpoint resume against a different stimulus.
func recordHash(xs []int64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range xs {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

// Simulate runs every fault in the universe against the input record
// xs — treated as one period of a periodic (coherent) stimulus, so the
// delay line is warmed and records are steady-state — and applies the
// detector to each (good, faulty) record pair.
// Faults are packed 63 per simulator pass (lane 0 is the good
// machine); batches run concurrently on all CPUs. The good and faulty
// records are exact gate-level outputs.
//
// Cancellation and deadlines on ctx are honored at batch granularity:
// an interrupted run returns the partial Report (completed batches
// carry their verdicts; the rest keep the fault identity with
// FirstDiff -1 and no verdict) together with a typed error satisfying
// errors.Is(err, resilient.ErrCanceled) or resilient.ErrDeadline.
func Simulate(ctx context.Context, u *Universe, xs []int64, det Detector) (*Report, error) {
	return SimulateOpts(ctx, u, xs, det, SimOptions{})
}

// SimulateOpts is Simulate with the resilience knobs exposed:
// checkpoint/resume over the batch ledger and panic quarantine. The
// Report is bit-identical to Simulate's for any worker count and any
// kill/resume split — batch b's results depend only on (universe, xs,
// b), never on scheduling.
func SimulateOpts(ctx context.Context, u *Universe, xs []int64, det Detector, opts SimOptions) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("fault: empty input record")
	}
	if det == nil {
		return nil, fmt.Errorf("fault: nil detector")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nf := len(u.Faults)
	nWorkerDets := (nf + 62) / 63 // batches; runBatches clamps workers the same way
	if nWorkerDets > workers {
		nWorkerDets = workers
	}
	// One detector per pool worker: scratch-backed when the detector
	// supports it (the spectral record → spectrum → screen path is then
	// allocation-free in steady state), det itself otherwise.
	workerDets := make([]Detector, nWorkerDets)
	for w := range workerDets {
		d, err := workerDetector(det)
		if err != nil {
			return nil, err
		}
		workerDets[w] = d
	}
	results := make([]Result, nf)
	// Prefill the fault identity so partial (canceled) and quarantined
	// entries still say WHICH fault they cover.
	for i, f := range u.Faults {
		results[i] = Result{Fault: f, Tap: u.FIR.TapOfNet(f.Net), FirstDiff: -1}
	}
	const lanesPerBatch = 63
	nBatches := (nf + lanesPerBatch - 1) / lanesPerBatch
	batchBounds := func(b int) (int, int) {
		lo := b * lanesPerBatch
		hi := lo + lanesPerBatch
		if hi > nf {
			hi = nf
		}
		return lo, hi
	}

	// Checkpoint ledger: results of completed batches are copied into
	// a mutex-guarded shadow slice at completion, so a snapshot never
	// reads lanes another worker is still writing.
	ckName := opts.CheckpointName
	if ckName == "" {
		ckName = "fault"
	}
	stimHash := recordHash(xs)
	var (
		ledgerMu   sync.Mutex
		done       []bool
		ledger     []Result
		sinceSave  int
		doneAtLoad []bool
	)
	if opts.Checkpoint.Enabled() {
		done = make([]bool, nBatches)
		ledger = make([]Result, nf)
		copy(ledger, results)
		var st simCkpt
		loaded, err := opts.Checkpoint.Load(ckName, simCkptVersion, &st)
		if err != nil {
			return nil, err
		}
		if loaded {
			if st.NF != nf || st.Patterns != len(xs) || st.StimHash != stimHash {
				return nil, fmt.Errorf(
					"fault: checkpoint %q is from a different campaign (nf=%d patterns=%d, want nf=%d patterns=%d)",
					ckName, st.NF, st.Patterns, nf, len(xs))
			}
			copy(results, st.Results)
			copy(ledger, st.Results)
			copy(done, st.Done)
			doneAtLoad = append([]bool(nil), st.Done...)
		}
	}
	saveLedgerLocked := func() error {
		return opts.Checkpoint.Save(ckName, simCkptVersion, simCkpt{
			NF: nf, Patterns: len(xs), StimHash: stimHash,
			Done:    append([]bool(nil), done...),
			Results: append([]Result(nil), ledger...),
		})
	}
	completeBatch := func(b int) error {
		if !opts.Checkpoint.Enabled() {
			return nil
		}
		lo, hi := batchBounds(b)
		ledgerMu.Lock()
		defer ledgerMu.Unlock()
		copy(ledger[lo:hi], results[lo:hi])
		done[b] = true
		sinceSave++
		if sinceSave >= opts.Checkpoint.Interval() {
			sinceSave = 0
			//mstxvet:ignore lockorder deliberate snapshot under the ledger lock: the save must serialize with batch commits
			return saveLedgerLocked()
		}
		return nil
	}

	// Observability: one span and three counter bumps per campaign —
	// all no-ops when no registry is installed.
	reg := obs.For(ctx)
	var sp *obs.SpanHandle
	if reg != nil {
		_, sp = reg.Span(ctx, "fault.simulate")
		defer sp.End()
	}
	var quarantined int64
	err := runBatches(ctx, nBatches, workers, func(worker, batch int) error {
		if doneAtLoad != nil && doneAtLoad[batch] {
			return nil // restored from the checkpoint ledger
		}
		lo, hi := batchBounds(batch)
		err := resilient.Call(fpBatch, func() error {
			if err := resilient.Fire(fpBatch); err != nil {
				return err
			}
			return simulateBatch(u, xs, workerDets[worker], results[lo:hi], u.Faults[lo:hi])
		})
		if err != nil {
			var pe *resilient.PanicError
			if !opts.Quarantine || !errors.As(err, &pe) {
				return err
			}
			// Quarantine: reset the batch's lanes to the bare fault
			// identity (the panic may have left them half-written) and
			// mark them; the campaign continues.
			for i := lo; i < hi; i++ {
				f := u.Faults[i]
				results[i] = Result{Fault: f, Tap: u.FIR.TapOfNet(f.Net), FirstDiff: -1, Quarantined: true}
			}
			atomic.AddInt64(&quarantined, int64(hi-lo))
		}
		return completeBatch(batch)
	})
	rep := &Report{Results: results, Patterns: len(xs)}
	if err != nil {
		if resilient.Interrupted(err) {
			// Persist the ledger so a later -resume continues from here.
			if opts.Checkpoint.Enabled() {
				ledgerMu.Lock()
				saveErr := saveLedgerLocked()
				ledgerMu.Unlock()
				if saveErr != nil {
					return rep, saveErr
				}
			}
			return rep, err
		}
		return nil, err
	}
	if opts.Checkpoint.Enabled() {
		ledgerMu.Lock()
		err = saveLedgerLocked()
		ledgerMu.Unlock()
		if err != nil {
			return rep, err
		}
	}
	if reg != nil {
		reg.Counter("fault_sim_runs_total").Inc()
		reg.Counter("fault_sim_faults_total").Add(int64(nf))
		reg.Counter("fault_sim_batches_total").Add(int64(nBatches))
		if q := atomic.LoadInt64(&quarantined); q > 0 {
			reg.Counter("fault_sim_quarantined_total").Add(q)
		}
	}
	return rep, nil
}

// simulateBatch simulates up to 63 faults in one pass and fills out.
func simulateBatch(u *Universe, xs []int64, det Detector, out []Result, faults []netlist.Fault) error {
	sim := digital.NewFIRSim(u.FIR)
	for i, f := range faults {
		if err := sim.InjectFault(f, 1<<uint(i+1)); err != nil {
			return err
		}
	}
	lanes, err := sim.RunLanesPeriodic(xs, len(faults)+1)
	if err != nil {
		return err
	}
	good := lanes[0]
	for i, f := range faults {
		faulty := lanes[i+1]
		res := Result{
			Fault: f,
			Tap:   u.FIR.TapOfNet(f.Net),
		}
		res.FirstDiff, res.MaxAbsDiff = DiffStats(good, faulty)
		res.Detected, err = det.Detect(good, faulty)
		if err != nil {
			return err
		}
		out[i] = res
	}
	return nil
}

// Records captures the full good and per-fault output records for the
// given faults (at most 63) in a single pass. Spectral detection needs
// whole records to transform; callers batch larger universes
// themselves or use SimulateRecords.
func Records(u *Universe, xs []int64, faults []netlist.Fault) (good []int64, faulty [][]int64, err error) {
	if len(faults) > 63 {
		return nil, nil, fmt.Errorf("fault: Records limited to 63 faults per pass, got %d", len(faults))
	}
	sim := digital.NewFIRSim(u.FIR)
	for i, f := range faults {
		if err := sim.InjectFault(f, 1<<uint(i+1)); err != nil {
			return nil, nil, err
		}
	}
	lanes, err := sim.RunLanesPeriodic(xs, len(faults)+1)
	if err != nil {
		return nil, nil, err
	}
	return lanes[0], lanes[1:], nil
}

// RecordsFromBaseline is Records replayed differentially against a
// fault-free baseline captured from the same periodic stimulus (see
// digital.CaptureBaseline): per step only the fanout cone of the
// batch's faults is re-evaluated, which on typical FIR universes is a
// small fraction of the circuit. The returned faulty records are
// bit-identical to Records' (the good record is base.Good).
func RecordsFromBaseline(u *Universe, base *digital.Baseline, faults []netlist.Fault) ([][]int64, error) {
	if len(faults) > 63 {
		return nil, fmt.Errorf("fault: RecordsFromBaseline limited to 63 faults per pass, got %d", len(faults))
	}
	sim := digital.NewFIRSim(u.FIR)
	for i, f := range faults {
		if err := sim.InjectFault(f, 1<<uint(i+1)); err != nil {
			return nil, err
		}
	}
	lanes, err := sim.RunLanesCone(base, len(faults)+1)
	if err != nil {
		return nil, err
	}
	return lanes[1:], nil
}

// RecordDetector is a Detector that additionally wants the record pair
// for bookkeeping; SimulateRecords streams record pairs to it. (The
// plain Detector interface is already record-based; this alias keeps
// the call sites explicit.)
type RecordDetector = Detector

// SimulateRecords is Simulate, but guarantees the detector sees exact
// full-length records (it always does; this entry point exists so
// spectral detection campaigns read naturally at call sites).
func SimulateRecords(ctx context.Context, u *Universe, xs []int64, det RecordDetector) (*Report, error) {
	return Simulate(ctx, u, xs, det)
}

// SerialSimulate runs faults one at a time (one fault in all lanes per
// pass). It produces identical results to Simulate and exists as the
// baseline for the parallel-vs-serial ablation benchmark.
func SerialSimulate(u *Universe, xs []int64, det Detector) (*Report, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("fault: empty input record")
	}
	if det == nil {
		return nil, fmt.Errorf("fault: nil detector")
	}
	// The serial reference path detects through the same scratch-bound
	// function the pool workers use, so its verdicts — bit-identical by
	// the WorkerDetector contract — are also allocation-free per fault.
	det, err := workerDetector(det)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(u.Faults))
	sim := digital.NewFIRSim(u.FIR)
	goodRec, err := sim.RunPeriodic(xs)
	if err != nil {
		return nil, err
	}
	for i, f := range u.Faults {
		fsim := digital.NewFIRSim(u.FIR)
		if err := fsim.InjectFault(f, ^uint64(0)); err != nil {
			return nil, err
		}
		faulty, err := fsim.RunPeriodic(xs)
		if err != nil {
			return nil, err
		}
		res := Result{Fault: f, Tap: u.FIR.TapOfNet(f.Net)}
		res.FirstDiff, res.MaxAbsDiff = DiffStats(goodRec, faulty)
		res.Detected, err = det.Detect(goodRec, faulty)
		if err != nil {
			return nil, err
		}
		results[i] = res
	}
	return &Report{Results: results, Patterns: len(xs)}, nil
}

// DetectOnly runs the exact-compare (any-difference) campaign and
// returns only the per-fault detection flags, with per-batch early
// abort: a batch stops clocking as soon as every one of its fault
// lanes has diverged from the good lane. For high-coverage stimuli
// most faults fall within the first few samples, making this several
// times faster than Simulate at the cost of the diagnostic fields.
func DetectOnly(u *Universe, xs []int64) ([]bool, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("fault: empty input record")
	}
	// Two-pass screening: most faults fall within a short prefix (any
	// difference there implies detection on the full record), so the
	// expensive full-record batches only run for the survivors.
	const prefix = 64
	if len(xs) > 4*prefix {
		// The prefix pass is warmed from the FULL record's tail, so it
		// simulates exactly the first steps of the periodic run and a
		// prefix detection strictly implies full-record detection.
		early, err := detectOnlyOnePass(u, xs[:prefix], xs)
		if err != nil {
			return nil, err
		}
		var hardIdx []int
		var hard []netlist.Fault
		for i, d := range early {
			if !d {
				hardIdx = append(hardIdx, i)
				hard = append(hard, u.Faults[i])
			}
		}
		if len(hard) > 0 {
			sub := &Universe{FIR: u.FIR, Faults: hard, Collapsed: u.Collapsed}
			rest, err := detectOnlyOnePass(sub, xs, xs)
			if err != nil {
				return nil, err
			}
			for j, idx := range hardIdx {
				early[idx] = rest[j]
			}
		}
		return early, nil
	}
	return detectOnlyOnePass(u, xs, xs)
}

// detectOnlyOnePass is DetectOnly without the prefix screen; warmSrc
// supplies the periodic warm-up tail (the full record).
func detectOnlyOnePass(u *Universe, xs, warmSrc []int64) ([]bool, error) {
	nf := len(u.Faults)
	detected := make([]bool, nf)
	const lanesPerBatch = 63
	nBatches := (nf + lanesPerBatch - 1) / lanesPerBatch
	err := runBatches(context.Background(), nBatches, runtime.GOMAXPROCS(0), func(_, batch int) error {
		lo := batch * lanesPerBatch
		hi := lo + lanesPerBatch
		if hi > nf {
			hi = nf
		}
		return detectBatch(u, xs, warmSrc, detected[lo:hi], u.Faults[lo:hi])
	})
	if err != nil {
		return nil, err
	}
	return detected, nil
}

// detectBatch clocks one 63-fault batch with early abort.
func detectBatch(u *Universe, xs, warmSrc []int64, out []bool, faults []netlist.Fault) error {
	sim := digital.NewFIRSim(u.FIR)
	for i, f := range faults {
		if err := sim.InjectFault(f, 1<<uint(i+1)); err != nil {
			return err
		}
	}
	// Periodic warm-up from the full record's tail, as in Simulate.
	warm := u.FIR.Taps() - 1
	if warm > len(warmSrc) {
		warm = len(warmSrc)
	}
	if err := sim.Warm(warmSrc[len(warmSrc)-warm:]); err != nil {
		return err
	}
	allLanes := uint64(0)
	for i := range faults {
		allLanes |= 1 << uint(i+1)
	}
	var diverged uint64
	for _, x := range xs {
		words, err := sim.Step(x)
		if err != nil {
			return err
		}
		// A lane differs from the good machine when any output bit
		// word disagrees with the broadcast of its lane-0 bit.
		for _, w := range words {
			ref := uint64(0)
			if w&1 == 1 {
				ref = ^uint64(0)
			}
			diverged |= w ^ ref
			if diverged&allLanes == allLanes {
				break
			}
		}
		if diverged&allLanes == allLanes {
			break
		}
	}
	for i := range faults {
		out[i] = diverged>>uint(i+1)&1 == 1
	}
	return nil
}

// LSBConfinement checks the paper's observation about residual faults:
// it returns the fraction of the given undetected faults whose maximum
// output perturbation is confined to the lowest `lsbs` output bits
// (|diff| < 2^lsbs). Faults that never perturb the output count as
// confined.
func LSBConfinement(results []Result, lsbs int) float64 {
	if len(results) == 0 {
		return 1
	}
	bound := int64(1) << uint(lsbs)
	n := 0
	for _, r := range results {
		if r.MaxAbsDiff < bound {
			n++
		}
	}
	return float64(n) / float64(len(results))
}
