package fault

import (
	"fmt"
	"math/bits"

	"mstx/internal/netlist"
)

// Dictionary is a fault dictionary for one stimulus record: for every
// fault it stores the *signature* — the set of output sample positions
// the fault perturbs. Diagnosis ranks faults by signature similarity
// to an observed failing response, the classic dictionary-based
// fault-location step that follows a failing production test.
type Dictionary struct {
	// Faults lists the dictionary entries.
	Faults []netlist.Fault
	// Patterns is the record length the signatures cover.
	Patterns int

	sigs  [][]uint64 // per fault: bitset over sample positions
	words int
}

// Candidate is one ranked diagnosis.
type Candidate struct {
	// Fault is the candidate fault site.
	Fault netlist.Fault
	// Score is the Jaccard similarity of the candidate's signature to
	// the observed one (1 = identical).
	Score float64
	// Exact reports a bit-identical signature.
	Exact bool
}

// BuildDictionary simulates every fault of the universe on xs and
// stores its perturbation signature.
func BuildDictionary(u *Universe, xs []int64) (*Dictionary, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("fault: empty record")
	}
	words := (len(xs) + 63) / 64
	d := &Dictionary{
		Faults:   append([]netlist.Fault(nil), u.Faults...),
		Patterns: len(xs),
		words:    words,
	}
	const batch = 63
	for lo := 0; lo < len(u.Faults); lo += batch {
		hi := lo + batch
		if hi > len(u.Faults) {
			hi = len(u.Faults)
		}
		good, faulty, err := Records(u, xs, u.Faults[lo:hi])
		if err != nil {
			return nil, err
		}
		for fi, rec := range faulty {
			sig := make([]uint64, words)
			for i := range rec {
				if rec[i] != good[i] {
					sig[i/64] |= 1 << uint(i%64)
				}
			}
			d.sigs = append(d.sigs, sig)
			_ = fi
		}
	}
	return d, nil
}

// signatureOf converts an observed (good, observed) record pair to a
// perturbation bitset.
func (d *Dictionary) signatureOf(good, observed []int64) ([]uint64, error) {
	if len(good) != d.Patterns || len(observed) != d.Patterns {
		return nil, fmt.Errorf("fault: record length %d/%d != dictionary %d",
			len(good), len(observed), d.Patterns)
	}
	sig := make([]uint64, d.words)
	for i := range good {
		if good[i] != observed[i] {
			sig[i/64] |= 1 << uint(i%64)
		}
	}
	return sig, nil
}

// Diagnose ranks dictionary faults by signature similarity to the
// observed failing response and returns the top k candidates
// (fewer when the dictionary is smaller). Faults with empty
// signatures (undetectable on this stimulus) never match a non-empty
// observation.
func (d *Dictionary) Diagnose(good, observed []int64, k int) ([]Candidate, error) {
	if k <= 0 {
		return nil, fmt.Errorf("fault: k = %d must be positive", k)
	}
	obs, err := d.signatureOf(good, observed)
	if err != nil {
		return nil, err
	}
	obsPop := popcount(obs)
	var cands []Candidate
	for i, sig := range d.sigs {
		inter, union := 0, 0
		for w := range sig {
			inter += bits.OnesCount64(sig[w] & obs[w])
			union += bits.OnesCount64(sig[w] | obs[w])
		}
		if union == 0 {
			continue // both empty: nothing to say
		}
		score := float64(inter) / float64(union)
		if score == 0 {
			continue
		}
		cands = append(cands, Candidate{
			Fault: d.Faults[i],
			Score: score,
			Exact: inter == union && obsPop > 0,
		})
	}
	// Partial selection sort for the top k (k is small).
	if k > len(cands) {
		k = len(cands)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].Score > cands[best].Score {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	return cands[:k], nil
}

func popcount(sig []uint64) int {
	n := 0
	for _, w := range sig {
		n += bits.OnesCount64(w)
	}
	return n
}
