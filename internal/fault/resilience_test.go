package fault

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"mstx/internal/resilient"
)

// settleGoroutines waits for the goroutine count to come back down to
// (at most) the baseline, tolerating runtime background goroutines.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d live, baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// firstRecordErrDetector errors on the very first record pair it sees —
// the regression shape for the early-error drain path.
type firstRecordErrDetector struct{}

func (firstRecordErrDetector) Detect(good, faulty []int64) (bool, error) {
	return false, errors.New("first record rejected")
}

// TestSimulateEarlyErrorNoGoroutineLeak is the satellite regression:
// a detector that errors on the first record must not leave pool
// goroutines behind, and repeated failing campaigns must not
// accumulate any.
func TestSimulateEarlyErrorNoGoroutineLeak(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, false) // uncollapsed: plenty of batches
	xs := sineRecord(128, 28, 5)
	baseline := runtime.NumGoroutine() + 2 // tolerate runtime jitter
	for trial := 0; trial < 20; trial++ {
		_, err := Simulate(context.Background(), u, xs, firstRecordErrDetector{})
		if err == nil {
			t.Fatal("erroring detector did not surface")
		}
	}
	settleGoroutines(t, baseline)
}

func TestSimulateCancelReturnsTypedPartial(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, false)
	xs := sineRecord(128, 28, 5)

	// Already-expired deadline: nothing may run, but the report still
	// carries every fault's identity.
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	rep, err := Simulate(ctx, u, xs, ExactDetector{})
	if !errors.Is(err, resilient.ErrDeadline) {
		t.Fatalf("expired deadline returned %v, want ErrDeadline", err)
	}
	if !resilient.Interrupted(err) {
		t.Fatalf("Interrupted(%v) = false", err)
	}
	if rep == nil || len(rep.Results) != u.Size() {
		t.Fatal("partial report missing or wrong length")
	}
	for _, r := range rep.Results {
		if r.Detected || r.Quarantined {
			t.Fatalf("no batch ran, but fault %v carries a verdict", r.Fault)
		}
		if r.FirstDiff != -1 {
			t.Fatalf("unprocessed fault %v has FirstDiff %d, want -1", r.Fault, r.FirstDiff)
		}
	}

	// Mid-run cancel via a detector that pulls the trigger: later
	// batches must be skipped, and the error must be ErrCanceled.
	cctx, ccancel := context.WithCancel(context.Background())
	defer ccancel()
	trip := cancelingDetector{cancel: ccancel}
	rep, err = Simulate(cctx, u, xs, trip)
	if !errors.Is(err, resilient.ErrCanceled) {
		t.Fatalf("mid-run cancel returned %v, want ErrCanceled", err)
	}
	if errors.Is(err, resilient.ErrDeadline) {
		t.Fatal("cancel misclassified as deadline")
	}
	if rep == nil || len(rep.Results) != u.Size() {
		t.Fatal("partial report missing")
	}
}

// cancelingDetector cancels its context on the first record, then
// keeps detecting normally (exact compare).
type cancelingDetector struct{ cancel context.CancelFunc }

func (d cancelingDetector) Detect(good, faulty []int64) (bool, error) {
	d.cancel()
	return ExactDetector{}.Detect(good, faulty)
}

func TestSimulateQuarantineIsolatesPanickingBatch(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, false)
	xs := sineRecord(64, 28, 5)

	fp := resilient.NewFailpoints()
	fp.Set("fault.batch", resilient.Action{PanicValue: "batch corrupted", Times: 1})
	resilient.Install(fp)
	defer resilient.Install(nil)

	rep, err := SimulateOpts(context.Background(), u, xs, ExactDetector{},
		SimOptions{Quarantine: true})
	if err != nil {
		t.Fatalf("quarantined campaign failed: %v", err)
	}
	q := rep.Quarantined()
	if q == 0 || q > 63 {
		t.Fatalf("quarantined %d faults, want one batch's worth (1..63)", q)
	}
	// Quarantined lanes keep their identity and no verdict; all other
	// lanes must match an uninjected reference run exactly.
	resilient.Install(nil)
	ref, err := Simulate(context.Background(), u, xs, ExactDetector{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rep.Results {
		if r.Quarantined {
			if r.Detected || r.FirstDiff != -1 {
				t.Fatalf("quarantined fault %v carries a verdict", r.Fault)
			}
			continue
		}
		if r != ref.Results[i] {
			t.Fatalf("lane %d diverged from reference: %+v vs %+v", i, r, ref.Results[i])
		}
	}

	// Without Quarantine the same panic surfaces as a *PanicError and
	// the process survives.
	fp2 := resilient.NewFailpoints()
	fp2.Set("fault.batch", resilient.Action{PanicValue: "batch corrupted", Times: 1})
	resilient.Install(fp2)
	_, err = Simulate(context.Background(), u, xs, ExactDetector{})
	var pe *resilient.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic without quarantine returned %v, want *PanicError", err)
	}
	if pe.Value != "batch corrupted" {
		t.Fatalf("PanicError.Value = %v", pe.Value)
	}
}

func TestSimulateCheckpointResumeBitIdentical(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, false)
	xs := sineRecord(64, 28, 5)

	ref, err := Simulate(context.Background(), u, xs, ExactDetector{})
	if err != nil {
		t.Fatal(err)
	}
	nBatches := (u.Size() + 62) / 63
	if nBatches < 3 {
		t.Fatalf("universe too small for a mid-run kill: %d batches", nBatches)
	}

	dir := t.TempDir()
	ck := &resilient.Checkpointer{Dir: dir, Every: 1}

	// First attempt dies after two batches (failpoint error on the
	// third firing); the checkpoint must survive.
	fp := resilient.NewFailpoints()
	boom := errors.New("injected crash")
	fp.Set("fault.batch", resilient.Action{Err: boom, After: 2})
	resilient.Install(fp)
	_, err = SimulateOpts(context.Background(), u, xs, ExactDetector{},
		SimOptions{Workers: 1, Checkpoint: ck, CheckpointName: "t"})
	resilient.Install(nil)
	if !errors.Is(err, boom) {
		t.Fatalf("injected crash returned %v", err)
	}

	// Resume must re-run only the missing batches and land exactly on
	// the reference report.
	ck2 := &resilient.Checkpointer{Dir: dir, Every: 1, Resume: true}
	var reran int
	cd := countingDetector{n: &reran}
	rep, err := SimulateOpts(context.Background(), u, xs, cd,
		SimOptions{Workers: 1, Checkpoint: ck2, CheckpointName: "t"})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if len(rep.Results) != len(ref.Results) {
		t.Fatal("result count mismatch")
	}
	for i := range rep.Results {
		if rep.Results[i] != ref.Results[i] {
			t.Fatalf("lane %d: resumed %+v != reference %+v", i, rep.Results[i], ref.Results[i])
		}
	}
	if reran == 0 || reran >= u.Size() {
		t.Fatalf("resume re-detected %d faults, want a strict subset (>0, <%d)", reran, u.Size())
	}

	// A checkpoint from a different stimulus must be rejected loudly.
	other := sineRecord(64, 25, 3)
	if _, err := SimulateOpts(context.Background(), u, other, ExactDetector{},
		SimOptions{Checkpoint: ck2, CheckpointName: "t"}); err == nil {
		t.Fatal("checkpoint accepted for a different stimulus")
	}
}

// countingDetector is an exact detector that counts invocations.
type countingDetector struct{ n *int }

func (d countingDetector) Detect(good, faulty []int64) (bool, error) {
	*d.n++
	return ExactDetector{}.Detect(good, faulty)
}

func TestSimulateRecordsCtxPassthrough(t *testing.T) {
	fir := smallFIR(t)
	u := NewUniverse(fir, true)
	xs := sineRecord(48, 25, 3)
	rep, err := SimulateRecords(context.Background(), u, xs, ExactDetector{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rep) == "" {
		t.Fatal("empty report")
	}
}
