package resilient

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// fpCheckpointSave lets the chaos suite inject snapshot-write failures.
var fpCheckpointSave = Site("resilient.checkpoint.save")

// snapshotMagic identifies (and versions) the container format itself;
// the payload carries its own per-engine Name and Version.
const snapshotMagic = "mstx-ckpt-1"

// envelope is the on-disk snapshot container. The payload is the
// gob-encoded engine state, CRC-checked so a torn or bit-rotted file
// is detected before any of it is trusted.
type envelope struct {
	Magic   string
	Name    string
	Version int
	Payload []byte
	CRC     uint32
}

// Checkpointer periodically snapshots the merged state of a long run
// so a killed process can resume instead of restarting from zero. One
// Checkpointer serves a whole command invocation: each engine run
// saves under its own name as <Dir>/<name>.ckpt, written atomically
// (temp file + rename), so a SIGKILL at any instant leaves either the
// previous complete snapshot or the new one — never a torn file.
//
// The nil *Checkpointer, and one with an empty Dir, are inert: Save
// and Load are no-ops, which keeps engine call sites unconditional.
type Checkpointer struct {
	// Dir is the snapshot directory (created on first save). Empty
	// disables checkpointing.
	Dir string
	// Every is the save cadence in engine units — round barriers for
	// the MC engine, completed batches for the fault campaigns. <= 1
	// saves at every unit.
	Every int
	// Resume makes Load return existing snapshots; without it Load is
	// a no-op and runs start fresh (overwriting old snapshots as they
	// go).
	Resume bool
}

// Enabled reports whether snapshots are actually read/written.
func (c *Checkpointer) Enabled() bool { return c != nil && c.Dir != "" }

// Interval returns the save cadence, at least 1.
func (c *Checkpointer) Interval() int {
	if c == nil || c.Every <= 1 {
		return 1
	}
	return c.Every
}

func (c *Checkpointer) path(name string) string {
	return filepath.Join(c.Dir, name+".ckpt")
}

// Save snapshots state under name. The engine's version guards its
// state layout: a later binary with a different layout bumps the
// version and old snapshots are rejected on load instead of being
// misdecoded. A save failure is returned to the engine, which aborts
// the run — silently losing checkpoints would turn a later resume
// into data corruption.
func (c *Checkpointer) Save(name string, version int, state any) error {
	if !c.Enabled() {
		return nil
	}
	if err := Fire(fpCheckpointSave); err != nil {
		return fmt.Errorf("resilient: checkpoint %s: %w", name, err)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(state); err != nil {
		return fmt.Errorf("resilient: checkpoint %s: %w", name, err)
	}
	env := envelope{
		Magic:   snapshotMagic,
		Name:    name,
		Version: version,
		Payload: payload.Bytes(),
		CRC:     crc32.ChecksumIEEE(payload.Bytes()),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return fmt.Errorf("resilient: checkpoint %s: %w", name, err)
	}
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return fmt.Errorf("resilient: checkpoint %s: %w", name, err)
	}
	tmp, err := os.CreateTemp(c.Dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("resilient: checkpoint %s: %w", name, err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resilient: checkpoint %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resilient: checkpoint %s: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), c.path(name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resilient: checkpoint %s: %w", name, err)
	}
	return nil
}

// Load restores the snapshot saved under name into state, returning
// whether one was loaded. It returns (false, nil) when resuming is
// disabled or no snapshot exists, and an error when a snapshot exists
// but cannot be trusted: wrong container magic, wrong name, wrong
// engine version, CRC mismatch, or a decode failure. Engines verify
// their own run parameters after decode — resuming a checkpoint from
// a different experiment must fail loudly, not silently merge streams.
func (c *Checkpointer) Load(name string, version int, state any) (bool, error) {
	if !c.Enabled() || !c.Resume {
		return false, nil
	}
	raw, err := os.ReadFile(c.path(name))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("resilient: checkpoint %s: %w", name, err)
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&env); err != nil {
		return false, fmt.Errorf("resilient: checkpoint %s: corrupt container: %w", name, err)
	}
	switch {
	case env.Magic != snapshotMagic:
		return false, fmt.Errorf("resilient: checkpoint %s: bad magic %q", name, env.Magic)
	case env.Name != name:
		return false, fmt.Errorf("resilient: checkpoint %s: file holds %q", name, env.Name)
	case env.Version != version:
		return false, fmt.Errorf("resilient: checkpoint %s: version %d, want %d", name, env.Version, version)
	case env.CRC != crc32.ChecksumIEEE(env.Payload):
		return false, fmt.Errorf("resilient: checkpoint %s: CRC mismatch (torn or corrupted snapshot)", name)
	}
	if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(state); err != nil {
		return false, fmt.Errorf("resilient: checkpoint %s: corrupt payload: %w", name, err)
	}
	return true, nil
}
