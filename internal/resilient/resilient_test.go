package resilient

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mstx/internal/obs"
)

func TestCtxErrTaxonomy(t *testing.T) {
	if err := CtxErr(context.Background()); err != nil {
		t.Fatalf("live context produced %v", err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	err := CtxErr(canceled)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled context not ErrCanceled: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("original context.Canceled lost: %v", err)
	}
	if errors.Is(err, ErrDeadline) {
		t.Errorf("cancel classified as deadline: %v", err)
	}
	if !Interrupted(err) {
		t.Errorf("Interrupted(%v) = false", err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	err = CtxErr(expired)
	if !errors.Is(err, ErrDeadline) {
		t.Errorf("expired context not ErrDeadline: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("original DeadlineExceeded lost: %v", err)
	}
	if !Interrupted(err) {
		t.Errorf("Interrupted(%v) = false", err)
	}

	if Interrupted(errors.New("boom")) {
		t.Error("ordinary error classified as interruption")
	}
}

func TestCallRecoversPanics(t *testing.T) {
	err := Call("test.site", func() error { panic("worker died") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic not converted: %v", err)
	}
	if pe.Site != "test.site" || pe.Value != "worker died" {
		t.Errorf("PanicError = %+v", pe)
	}
	if !strings.Contains(string(pe.Stack), "resilient") {
		t.Errorf("stack not captured: %q", pe.Stack)
	}
	if !strings.Contains(pe.Error(), "test.site") {
		t.Errorf("Error() = %q", pe.Error())
	}

	// Plain errors and success pass through untouched.
	want := errors.New("plain")
	if err := Call("s", func() error { return want }); err != want {
		t.Errorf("error rewritten: %v", err)
	}
	if err := Call("s", func() error { return nil }); err != nil {
		t.Errorf("success rewritten: %v", err)
	}
}

func TestCallRecordsToObs(t *testing.T) {
	reg := obs.New()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)
	_ = Call("obs.site", func() error { panic(1) })
	if got := reg.Counter("resilient_panics_total").Value(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}
	found := false
	for _, sp := range reg.Spans() {
		if sp.Name == "panic:obs.site" {
			found = true
		}
	}
	if !found {
		t.Error("no panic span recorded")
	}
}

func TestGoDeliversPanicsAndErrors(t *testing.T) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var got []error
	onErr := func(err error) {
		mu.Lock()
		got = append(got, err)
		mu.Unlock()
	}
	Go(&wg, "go.site", func() error { panic("dead") }, onErr)
	Go(&wg, "go.site", func() error { return errors.New("failed") }, onErr)
	Go(&wg, "go.site", func() error { return nil }, onErr)
	wg.Wait()
	if len(got) != 2 {
		t.Fatalf("onErr called %d times, want 2: %v", len(got), got)
	}
}

func TestFailpointDisabledIsInert(t *testing.T) {
	Install(nil)
	if err := Fire("any.site"); err != nil {
		t.Fatalf("disabled Fire returned %v", err)
	}
}

func TestFailpointActions(t *testing.T) {
	fp := NewFailpoints()
	Install(fp)
	defer Install(nil)

	// Unarmed sites count hits and do nothing.
	if err := Fire("site.a"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	if fp.Hits("site.a") != 1 {
		t.Errorf("hits = %d, want 1", fp.Hits("site.a"))
	}

	// Error action with After: skips the first N firings.
	boom := errors.New("injected")
	fp.Set("site.err", Action{Err: boom, After: 2})
	for i := 0; i < 2; i++ {
		if err := Fire("site.err"); err != nil {
			t.Fatalf("fired before After: %v", err)
		}
	}
	if err := Fire("site.err"); !errors.Is(err, boom) {
		t.Fatalf("armed error not returned: %v", err)
	}
	if fp.Applied("site.err") != 1 {
		t.Errorf("applied = %d, want 1", fp.Applied("site.err"))
	}

	// Times bounds repeated application.
	fp.Set("site.once", Action{Err: boom, Times: 1})
	if err := Fire("site.once"); !errors.Is(err, boom) {
		t.Fatal("Times=1 action did not apply")
	}
	if err := Fire("site.once"); err != nil {
		t.Fatalf("Times=1 action applied twice: %v", err)
	}

	// Panic action.
	fp.Set("site.panic", Action{PanicValue: "kaboom"})
	err := Call("site.panic", func() error { return Fire("site.panic") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "kaboom" {
		t.Fatalf("panic action not raised: %v", err)
	}

	// Delay action (pure delay returns nil).
	fp.Set("site.delay", Action{Delay: 10 * time.Millisecond})
	t0 := time.Now()
	if err := Fire("site.delay"); err != nil {
		t.Fatalf("delay returned %v", err)
	}
	if time.Since(t0) < 10*time.Millisecond {
		t.Error("delay not applied")
	}

	// Clear disarms but keeps counting.
	fp.Clear("site.err")
	if err := Fire("site.err"); err != nil {
		t.Fatalf("cleared site still armed: %v", err)
	}
}

func TestSiteRegistry(t *testing.T) {
	name := Site("test.registry.site")
	if name != "test.registry.site" {
		t.Fatalf("Site returned %q", name)
	}
	found := false
	for _, s := range Sites() {
		if s == "test.registry.site" {
			found = true
		}
	}
	if !found {
		t.Errorf("registered site missing from Sites(): %v", Sites())
	}
}

type ckptState struct {
	Cursor int
	Values []float64
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := &Checkpointer{Dir: t.TempDir(), Resume: true}
	want := ckptState{Cursor: 7, Values: []float64{1.5, -2.25, 3}}
	if err := c.Save("unit", 3, want); err != nil {
		t.Fatal(err)
	}
	var got ckptState
	ok, err := c.Load("unit", 3, &got)
	if err != nil || !ok {
		t.Fatalf("Load = %v, %v", ok, err)
	}
	if got.Cursor != want.Cursor || len(got.Values) != len(want.Values) {
		t.Fatalf("round trip lost state: %+v", got)
	}
	for i := range want.Values {
		if got.Values[i] != want.Values[i] {
			t.Fatalf("value %d: %v != %v", i, got.Values[i], want.Values[i])
		}
	}
}

func TestCheckpointDisabledAndMissing(t *testing.T) {
	// Nil and empty checkpointers are inert.
	var nilC *Checkpointer
	if err := nilC.Save("x", 1, ckptState{}); err != nil {
		t.Fatalf("nil Save: %v", err)
	}
	if ok, err := nilC.Load("x", 1, &ckptState{}); ok || err != nil {
		t.Fatalf("nil Load = %v, %v", ok, err)
	}
	if nilC.Enabled() || nilC.Interval() != 1 {
		t.Error("nil checkpointer not inert")
	}

	// Missing snapshot is (false, nil), not an error.
	c := &Checkpointer{Dir: t.TempDir(), Resume: true}
	if ok, err := c.Load("absent", 1, &ckptState{}); ok || err != nil {
		t.Fatalf("missing snapshot Load = %v, %v", ok, err)
	}

	// Resume off ignores an existing snapshot.
	if err := c.Save("fresh", 1, ckptState{Cursor: 1}); err != nil {
		t.Fatal(err)
	}
	noResume := &Checkpointer{Dir: c.Dir}
	if ok, err := noResume.Load("fresh", 1, &ckptState{}); ok || err != nil {
		t.Fatalf("Resume=false Load = %v, %v", ok, err)
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	c := &Checkpointer{Dir: dir, Resume: true}
	if err := c.Save("guard", 2, ckptState{Cursor: 5}); err != nil {
		t.Fatal(err)
	}

	// Version mismatch.
	if _, err := c.Load("guard", 3, &ckptState{}); err == nil {
		t.Error("version mismatch accepted")
	}

	// Name mismatch: copy the file under another name.
	raw, err := os.ReadFile(filepath.Join(dir, "guard.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "other.ckpt"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load("other", 2, &ckptState{}); err == nil {
		t.Error("name mismatch accepted")
	}

	// Bit flip in the payload region must trip the CRC (or the
	// container decode) — never load silently.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-10] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, "guard.ckpt"), flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load("guard", 2, &ckptState{}); err == nil {
		t.Error("corrupted snapshot accepted")
	}

	// Truncation.
	if err := os.WriteFile(filepath.Join(dir, "guard.ckpt"), raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load("guard", 2, &ckptState{}); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestCheckpointSaveFailpoint(t *testing.T) {
	fp := NewFailpoints()
	boom := errors.New("disk gone")
	fp.Set("resilient.checkpoint.save", Action{Err: boom})
	Install(fp)
	defer Install(nil)
	c := &Checkpointer{Dir: t.TempDir()}
	if err := c.Save("x", 1, ckptState{}); !errors.Is(err, boom) {
		t.Fatalf("save failpoint not surfaced: %v", err)
	}
}

func TestCheckpointSaveOverwritesAtomically(t *testing.T) {
	c := &Checkpointer{Dir: t.TempDir(), Resume: true}
	for i := 0; i < 5; i++ {
		if err := c.Save("seq", 1, ckptState{Cursor: i}); err != nil {
			t.Fatal(err)
		}
	}
	var got ckptState
	if ok, err := c.Load("seq", 1, &got); !ok || err != nil {
		t.Fatal(ok, err)
	}
	if got.Cursor != 4 {
		t.Fatalf("latest snapshot lost: %+v", got)
	}
	// No temp litter.
	ents, err := os.ReadDir(c.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
	if len(ents) != 1 {
		t.Errorf("dir holds %d entries, want 1", len(ents))
	}
}

func BenchmarkFireDisabled(b *testing.B) {
	Install(nil)
	site := fmt.Sprint("bench.site") // defeat constant folding of the arg
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Fire(site); err != nil {
			b.Fatal(err)
		}
	}
}
