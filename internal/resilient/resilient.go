// Package resilient is the dependency-free robustness layer of the
// mstx engines: a typed cancellation-error taxonomy for context-aware
// runs, panic isolation for worker pools (a panicking lane is
// quarantined and reported, never allowed to kill the process),
// versioned CRC-checked checkpoint snapshots for kill-and-resume of
// long campaigns, and a deterministic failpoint registry that lets
// tests inject errors, panics and delays at named engine sites.
//
// Like internal/obs, every feature is off by default and free when
// off: Fire is one atomic load when no failpoint set is installed, a
// nil *Checkpointer is a no-op, and Call adds only a deferred recover
// to the guarded function.
package resilient

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled is the typed cancellation error: every engine that
// returns early because its context was canceled wraps this, so
// callers can classify interruptions with errors.Is(err, ErrCanceled)
// regardless of which engine or depth the cancel surfaced from.
var ErrCanceled = errors.New("resilient: run canceled")

// ErrDeadline is the typed deadline error, wrapped by engines whose
// context deadline expired mid-run.
var ErrDeadline = errors.New("resilient: deadline exceeded")

// CtxErr translates ctx.Err() into the typed taxonomy. It returns nil
// for a live context; otherwise the result wraps both the taxonomy
// error (ErrCanceled or ErrDeadline) and the original context error,
// so errors.Is holds for context.Canceled/DeadlineExceeded too.
func CtxErr(ctx context.Context) error {
	err := ctx.Err()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadline, err)
	default:
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
}

// Interrupted reports whether err represents a context interruption
// (cancel or deadline) rather than a genuine failure. Engines that
// return partial results do so exactly when Interrupted(err) is true.
func Interrupted(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline)
}
