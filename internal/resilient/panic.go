package resilient

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"

	"mstx/internal/obs"
)

// PanicError is a worker panic converted into an error by Call: the
// recovered value plus the goroutine stack at the panic site. Engines
// treat it as a quarantine signal — the offending lane/batch is marked
// in the report and the run continues — so a corrupt unit of work can
// never take down the whole campaign.
type PanicError struct {
	// Site names the guarded call site (a failpoint site name by
	// convention).
	Site string
	// Value is the recovered panic value.
	Value any
	// Stack is the formatted goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("resilient: panic at %s: %v", e.Site, e.Value)
}

// Call invokes fn and converts a panic into a *PanicError. The stack
// is captured at recovery, the obs panic counter is bumped and a
// zero-length "panic:<site>" span is recorded into the trace ring so
// an operator can see where and when workers died. A nil registry
// (observability off) skips both — the recovery itself never depends
// on obs.
func Call(site string, fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			pe := &PanicError{Site: site, Value: v, Stack: debug.Stack()}
			if reg := obs.Default(); reg != nil {
				reg.Counter("resilient_panics_total").Inc()
				_, sp := reg.Span(context.Background(), "panic:"+site)
				sp.End()
			}
			err = pe
		}
	}()
	return fn()
}

// Go runs fn on a new goroutine under Call, tracked by wg. A non-nil
// result — error or recovered panic — is delivered to onErr (which may
// be nil to discard). Worker pools spawn their goroutines through Go
// so that even a panic escaping the per-unit guard (claim logic, pool
// bookkeeping) degrades to an error instead of crashing the process.
func Go(wg *sync.WaitGroup, site string, fn func() error, onErr func(error)) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := Call(site, fn); err != nil && onErr != nil {
			onErr(err)
		}
	}()
}
