package resilient

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// siteRegistry records every failpoint site name declared by the
// engines (via Site at package init), so the chaos suite can
// enumerate them and assert each one actually fires.
var (
	sitesMu sync.Mutex
	sites   = map[string]struct{}{}
)

// Site registers a failpoint site name and returns it. Engines declare
// their sites as package-level variables:
//
//	var fpLane = resilient.Site("mcengine.lane")
//
// so the set of sites is complete after package initialization.
func Site(name string) string {
	sitesMu.Lock()
	defer sitesMu.Unlock()
	sites[name] = struct{}{}
	return name
}

// Sites returns every registered failpoint site name, sorted.
func Sites() []string {
	sitesMu.Lock()
	defer sitesMu.Unlock()
	out := make([]string, 0, len(sites))
	for s := range sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Action is what an armed failpoint does when reached. Zero fields are
// inert, so {Delay: d} is a pure delay and {Err: e} a pure error; a
// non-nil PanicValue wins over Err.
type Action struct {
	// Err is returned from Fire (after any delay).
	Err error
	// PanicValue, when non-nil, is raised with panic() — the way tests
	// exercise the quarantine path.
	PanicValue any
	// Delay is slept before the error/panic (or alone).
	Delay time.Duration
	// After skips the first After firings of the site, so a test can
	// land the action mid-run ("fail on the 21st lane").
	After int
	// Times bounds how often the action applies once reached; <= 0
	// means every firing.
	Times int
}

// Failpoints is an installable set of armed failpoints plus per-site
// hit accounting. The zero value is not usable; construct with
// NewFailpoints.
type Failpoints struct {
	mu      sync.Mutex
	armed   map[string]*armedAction
	hits    map[string]int
	applied map[string]int
}

type armedAction struct {
	a    Action
	seen int
	done int
}

// NewFailpoints builds an empty failpoint set.
func NewFailpoints() *Failpoints {
	return &Failpoints{
		armed:   map[string]*armedAction{},
		hits:    map[string]int{},
		applied: map[string]int{},
	}
}

// Set arms (or re-arms) the action at a site.
func (f *Failpoints) Set(site string, a Action) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed[site] = &armedAction{a: a}
}

// Clear disarms a site; hit counts are retained.
func (f *Failpoints) Clear(site string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.armed, site)
}

// Hits returns how many times Fire evaluated the site while this set
// was installed — armed or not — so tests can assert a site is
// actually reached by the engines.
func (f *Failpoints) Hits(site string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits[site]
}

// Applied returns how many times the armed action actually triggered.
func (f *Failpoints) Applied(site string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied[site]
}

// active is the installed failpoint set; nil (the default, and the
// only production state) makes Fire a single atomic load.
var active atomic.Pointer[Failpoints]

// Install makes f the process-wide failpoint set; nil disarms
// everything again. Tests must Install(nil) when done (defer it).
func Install(f *Failpoints) { active.Store(f) }

// Fire evaluates the failpoint at site: with no set installed it
// returns nil immediately; otherwise it counts the hit and applies the
// armed action, if any — sleeping Delay, then panicking with
// PanicValue or returning Err.
func Fire(site string) error {
	f := active.Load()
	if f == nil {
		return nil
	}
	return f.fire(site)
}

func (f *Failpoints) fire(site string) error {
	f.mu.Lock()
	f.hits[site]++
	var act *Action
	if ar := f.armed[site]; ar != nil {
		ar.seen++
		if ar.seen > ar.a.After && (ar.a.Times <= 0 || ar.done < ar.a.Times) {
			ar.done++
			f.applied[site]++
			a := ar.a
			act = &a
		}
	}
	f.mu.Unlock()
	if act == nil {
		return nil
	}
	if act.Delay > 0 {
		time.Sleep(act.Delay)
	}
	if act.PanicValue != nil {
		panic(act.PanicValue)
	}
	return act.Err
}
