// Chaos suite: every registered failpoint site is driven through the
// engine that owns it with each action class — error, panic, delay —
// and the engines must degrade exactly as specified: typed errors
// surface, panics quarantine or convert to *PanicError, delays change
// nothing, no goroutine leaks, and every sample/fault stays accounted
// for. Run under -race (scripts/check.sh does).
package resilient_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"mstx/internal/analysis"
	"mstx/internal/campaign"
	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/fault"
	"mstx/internal/mcengine"
	"mstx/internal/resilient"
	"mstx/internal/soc"
	"mstx/internal/spectest"
)

// TestChaosSiteRegistryComplete pins the engine failpoint surface
// against the statically extracted site list (the failpointreg
// analyzer's extraction, exported as analysis.FailpointSites): the
// runtime registry linked into this test binary must register exactly
// the sites the source tree declares. Registering a site in a package
// this suite does not import — i.e. does not give chaos coverage —
// fails here, as does renaming one side without the other.
func TestChaosSiteRegistryComplete(t *testing.T) {
	want, err := analysis.FailpointSites("../..")
	if err != nil {
		t.Fatalf("static site extraction: %v", err)
	}
	if len(want) == 0 {
		t.Fatal("static site extraction found no failpoint sites")
	}
	// Unit tests in this package register their own scratch sites
	// (prefix "test."); the engine surface is everything else.
	var got []string
	for _, s := range resilient.Sites() {
		if !strings.HasPrefix(s, "test.") {
			got = append(got, s)
		}
	}
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("registered sites %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered sites %v, want %v", got, want)
		}
	}
}

// chaosFIR builds the small gate-level campaign shared by the fault
// and spectral chaos cases.
func chaosFIR(t testing.TB) (*fault.Universe, []int64) {
	t.Helper()
	fir, err := digital.NewFIR([]int64{3, -5, 7, 4}, 6)
	if err != nil {
		t.Fatal(err)
	}
	n := 128
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(math.Round(24 * math.Sin(2*math.Pi*5*float64(i)/float64(n))))
	}
	return fault.NewUniverse(fir, false), xs
}

// chaosSpectral builds a calibrated spectral campaign engine.
func chaosSpectral(t testing.TB, opts campaign.Options) (*campaign.Engine, []int64) {
	t.Helper()
	fir, err := digital.NewFIR([]int64{7, 15, 22, 15, 7}, 8)
	if err != nil {
		t.Fatal(err)
	}
	n, amp, fs := 256, 45.0, 1e6
	f1 := dsp.CoherentBin(fs, n, 19)
	f2 := dsp.CoherentBin(fs, n, 31)
	ideal := make([]int64, n)
	noisy := make([]int64, n)
	rng := rand.New(rand.NewSource(7))
	for i := range ideal {
		ti := float64(i) / fs
		v := amp*math.Cos(2*math.Pi*f1*ti) + amp*math.Cos(2*math.Pi*f2*ti)
		ideal[i] = int64(math.Round(v))
		noisy[i] = int64(math.Round(v + rng.NormFloat64()*1.5))
	}
	sim := digital.NewFIRSim(fir)
	goodIdeal, err := sim.RunPeriodic(ideal)
	if err != nil {
		t.Fatal(err)
	}
	sim2 := digital.NewFIRSim(fir)
	goodNoisy, err := sim2.RunPeriodic(noisy)
	if err != nil {
		t.Fatal(err)
	}
	det, err := spectest.NewDetector(goodIdeal, fs, []float64{f1, f2}, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.CalibrateFloor(goodNoisy, 1.5); err != nil {
		t.Fatal(err)
	}
	eng, err := campaign.New(fault.NewUniverse(fir, true), det, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng, ideal
}

// mcRun drives the MC engine with a counting kernel; the returned
// total is the number of samples the merge actually folded.
func mcRun(ctx context.Context, n int, opts mcengine.Options) (int, int, error) {
	kernel := func(lane, count int, rng *rand.Rand) (int, error) { return count, nil }
	merge := func(total, _, part int) int { return total + part }
	return mcengine.Run(ctx, n, 5, opts, 0, kernel, merge, nil)
}

func settle(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d live, baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosMCEngineLane drives mcengine.lane through all three action
// classes.
func TestChaosMCEngineLane(t *testing.T) {
	defer resilient.Install(nil)
	baseline := runtime.NumGoroutine() + 2
	const n = 64

	// Error: surfaces as the first failing lane, in lane order.
	fp := resilient.NewFailpoints()
	boom := errors.New("chaos err")
	fp.Set("mcengine.lane", resilient.Action{Err: boom, After: 5})
	resilient.Install(fp)
	if _, _, err := mcRun(context.Background(), n, mcengine.Options{BatchSize: 4}); !errors.Is(err, boom) {
		t.Fatalf("err action surfaced as %v", err)
	}
	if fp.Hits("mcengine.lane") == 0 {
		t.Fatal("site never fired")
	}

	// Panic without quarantine: a *PanicError, never a crash.
	fp = resilient.NewFailpoints()
	fp.Set("mcengine.lane", resilient.Action{PanicValue: "chaos panic", Times: 1})
	resilient.Install(fp)
	_, _, err := mcRun(context.Background(), n, mcengine.Options{BatchSize: 4})
	var pe *resilient.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic action surfaced as %v", err)
	}

	// Panic with quarantine: the run completes, and every sample is
	// accounted for as merged or quarantined.
	fp = resilient.NewFailpoints()
	fp.Set("mcengine.lane", resilient.Action{PanicValue: "chaos panic", Times: 1})
	resilient.Install(fp)
	var qSamples int
	total, done, err := mcengine.Run(context.Background(), n, 5,
		mcengine.Options{BatchSize: 4, OnQuarantine: func(lane, samples int, err error) { qSamples += samples }},
		0,
		func(lane, count int, rng *rand.Rand) (int, error) { return count, nil },
		func(total, _, part int) int { return total + part }, nil)
	if err != nil {
		t.Fatalf("quarantined run failed: %v", err)
	}
	if total != done || done+qSamples != n || qSamples == 0 {
		t.Fatalf("lost samples: total %d done %d quarantined %d of %d", total, done, qSamples, n)
	}

	// Delay: the result must be completely unaffected.
	fp = resilient.NewFailpoints()
	fp.Set("mcengine.lane", resilient.Action{Delay: time.Millisecond})
	resilient.Install(fp)
	total, done, err = mcRun(context.Background(), n, mcengine.Options{BatchSize: 4})
	if err != nil || total != n || done != n {
		t.Fatalf("delay action changed the run: total %d done %d err %v", total, done, err)
	}
	resilient.Install(nil)
	settle(t, baseline)
}

// TestChaosFaultBatch drives fault.batch through all three classes.
func TestChaosFaultBatch(t *testing.T) {
	defer resilient.Install(nil)
	baseline := runtime.NumGoroutine() + 2
	u, xs := chaosFIR(t)
	ref, err := fault.Simulate(context.Background(), u, xs, fault.ExactDetector{})
	if err != nil {
		t.Fatal(err)
	}

	fp := resilient.NewFailpoints()
	boom := errors.New("chaos err")
	fp.Set("fault.batch", resilient.Action{Err: boom, Times: 1})
	resilient.Install(fp)
	if _, err := fault.Simulate(context.Background(), u, xs, fault.ExactDetector{}); !errors.Is(err, boom) {
		t.Fatalf("err action surfaced as %v", err)
	}
	if fp.Hits("fault.batch") == 0 {
		t.Fatal("site never fired")
	}

	fp = resilient.NewFailpoints()
	fp.Set("fault.batch", resilient.Action{PanicValue: "chaos panic", Times: 1})
	resilient.Install(fp)
	rep, err := fault.SimulateOpts(context.Background(), u, xs, fault.ExactDetector{},
		fault.SimOptions{Quarantine: true})
	if err != nil {
		t.Fatalf("quarantined campaign failed: %v", err)
	}
	// Full accounting: every fault either quarantined or identical to
	// the reference verdict.
	q := 0
	for i, r := range rep.Results {
		if r.Quarantined {
			q++
			continue
		}
		if r != ref.Results[i] {
			t.Fatalf("lane %d diverged under quarantine", i)
		}
	}
	if q != rep.Quarantined() || q == 0 {
		t.Fatalf("quarantine accounting wrong: %d vs %d", q, rep.Quarantined())
	}

	fp = resilient.NewFailpoints()
	fp.Set("fault.batch", resilient.Action{Delay: time.Millisecond})
	resilient.Install(fp)
	rep, err = fault.Simulate(context.Background(), u, xs, fault.ExactDetector{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Results {
		if rep.Results[i] != ref.Results[i] {
			t.Fatalf("delay action changed lane %d", i)
		}
	}
	resilient.Install(nil)
	settle(t, baseline)
}

// TestChaosCampaignStages drives campaign.sim_batch and
// campaign.detect_batch through all three classes.
func TestChaosCampaignStages(t *testing.T) {
	defer resilient.Install(nil)
	baseline := runtime.NumGoroutine() + 2
	eng, xs := chaosSpectral(t, campaign.Options{})
	ref, _, err := eng.Run(context.Background(), xs)
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range []string{"campaign.sim_batch", "campaign.detect_batch"} {
		fp := resilient.NewFailpoints()
		boom := errors.New("chaos err")
		fp.Set(site, resilient.Action{Err: boom, Times: 1})
		resilient.Install(fp)
		if _, _, err := eng.Run(context.Background(), xs); !errors.Is(err, boom) {
			t.Fatalf("%s err action surfaced as %v", site, err)
		}
		if fp.Hits(site) == 0 {
			t.Fatalf("%s never fired", site)
		}

		fp = resilient.NewFailpoints()
		fp.Set(site, resilient.Action{PanicValue: "chaos panic", Times: 1})
		resilient.Install(fp)
		qeng, xs2 := chaosSpectral(t, campaign.Options{Quarantine: true})
		rep, stats, err := qeng.Run(context.Background(), xs2)
		if err != nil {
			t.Fatalf("%s quarantined campaign failed: %v", site, err)
		}
		q := 0
		for i, r := range rep.Results {
			if r.Quarantined {
				q++
				continue
			}
			if r != ref.Results[i] {
				t.Fatalf("%s: lane %d diverged under quarantine", site, i)
			}
		}
		if q != stats.Quarantined || q == 0 {
			t.Fatalf("%s quarantine accounting wrong: %d vs %d", site, q, stats.Quarantined)
		}

		fp = resilient.NewFailpoints()
		fp.Set(site, resilient.Action{Delay: time.Millisecond})
		resilient.Install(fp)
		rep, _, err = eng.Run(context.Background(), xs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rep.Results {
			if rep.Results[i] != ref.Results[i] {
				t.Fatalf("%s delay action changed lane %d", site, i)
			}
		}
		resilient.Install(nil)
	}
	settle(t, baseline)
}

// chaosSOC is a small two-core SOC for the scheduler chaos cases.
func chaosSOC() *soc.SOC {
	return &soc.SOC{Name: "chaos", Cores: []soc.Core{
		{ID: "a", Name: "a", Kind: "analog", WrapperWidth: 4, Tests: []soc.Test{
			{Name: "t0", Cycles: 4000, Settle: 100, MaxWidth: 4, Resources: []string{"dig"}},
			{Name: "t1", Cycles: 2000, Settle: 50, MaxWidth: 2},
		}},
		{ID: "b", Name: "b", Kind: "digital", WrapperWidth: 3, Tests: []soc.Test{
			{Name: "t0", Cycles: 3000, MaxWidth: 3},
			{Name: "t1", Cycles: 1000, MaxWidth: 3, Resources: []string{"dig"}},
		}},
	}}
}

// TestChaosSOCSchedule drives soc.schedule through the three action
// classes. The scheduler deliberately runs its width lanes without
// quarantine — dropping a lane would silently publish a different
// schedule — so both the error and the panic must surface as run
// errors, and a delay must not move the schedule by a byte.
func TestChaosSOCSchedule(t *testing.T) {
	defer resilient.Install(nil)
	baseline := runtime.NumGoroutine() + 2
	s := chaosSOC()
	widths := []int{2, 4}
	opts := soc.Options{Iterations: 8, Seed: 3}
	ref, err := soc.PlanSweep(context.Background(), s, widths, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Error: surfaces as the sweep's error, in lane order.
	fp := resilient.NewFailpoints()
	boom := errors.New("chaos err")
	fp.Set("soc.schedule", resilient.Action{Err: boom, After: 1})
	resilient.Install(fp)
	if _, err := soc.PlanSweep(context.Background(), s, widths, opts); !errors.Is(err, boom) {
		t.Fatalf("err action surfaced as %v", err)
	}
	if fp.Hits("soc.schedule") == 0 {
		t.Fatal("site never fired")
	}

	// Panic: converts to a *PanicError — never a dropped lane.
	fp = resilient.NewFailpoints()
	fp.Set("soc.schedule", resilient.Action{PanicValue: "chaos panic", Times: 1})
	resilient.Install(fp)
	_, err = soc.PlanSweep(context.Background(), s, widths, opts)
	var pe *resilient.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic action surfaced as %v", err)
	}

	// Delay: the published schedules must be unaffected.
	fp = resilient.NewFailpoints()
	fp.Set("soc.schedule", resilient.Action{Delay: time.Millisecond})
	resilient.Install(fp)
	got, err := soc.PlanSweep(context.Background(), s, widths, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if got[i].String() != ref[i].String() {
			t.Fatalf("delay action changed the W=%d schedule:\n%s\nvs\n%s",
				widths[i], got[i].String(), ref[i].String())
		}
	}
	resilient.Install(nil)
	settle(t, baseline)
}

// TestChaosCheckpointSave drives resilient.checkpoint.save: a failing
// snapshot write must abort the run with the injected error rather
// than silently losing the checkpoint.
func TestChaosCheckpointSave(t *testing.T) {
	defer resilient.Install(nil)
	fp := resilient.NewFailpoints()
	boom := errors.New("disk full")
	fp.Set("resilient.checkpoint.save", resilient.Action{Err: boom})
	resilient.Install(fp)
	ck := &resilient.Checkpointer{Dir: t.TempDir(), Every: 1}
	if _, _, err := mcRun(context.Background(), 16, mcengine.Options{BatchSize: 4, Checkpoint: ck}); !errors.Is(err, boom) {
		t.Fatalf("checkpoint-save failure surfaced as %v", err)
	}
	if fp.Applied("resilient.checkpoint.save") == 0 {
		t.Fatal("save failpoint never applied")
	}

	// The fault campaign must abort on save failure too.
	u, xs := chaosFIR(t)
	if _, err := fault.SimulateOpts(context.Background(), u, xs, fault.ExactDetector{},
		fault.SimOptions{Checkpoint: ck, CheckpointName: "f"}); !errors.Is(err, boom) {
		t.Fatalf("fault checkpoint-save failure surfaced as %v", err)
	}
}
