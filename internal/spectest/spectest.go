// Package spectest implements the paper's spectral signature test for
// digital filters embedded behind an analog front end: the output
// spectrum of the (possibly faulty) gate-level filter is compared
// against the good-circuit reference spectrum within a tolerance
// derived from the analog uncertainty floor, excluding the bins near
// the applied sine frequencies where the uncertainty is not uniform.
// Faults whose spectral deviation stays below the floor escape —
// which is exactly the coverage loss the paper quantifies — and longer
// records raise periodic fault effects above the floor.
package spectest

import (
	"fmt"
	"math"

	"mstx/internal/dsp"
)

// Detector is a fault.Detector that compares output spectra. It is
// built once from the ideal-stimulus good-circuit record and reused
// for every fault. After construction and calibration (NewDetector,
// ExcludeFrequency, CalibrateFloor) the detector is immutable and safe
// for concurrent detection from many goroutines; workers that want the
// allocation-free hot path pair it with a per-goroutine Scratch.
type Detector struct {
	// SampleRate labels spectrum bins, Hz.
	SampleRate float64
	// ToneFreqs are the stimulus tone frequencies, Hz.
	ToneFreqs []float64
	// GuardBins is how many bins on each side of a stimulus tone (and
	// DC) are excluded from comparison — the paper's "frequencies
	// where the uncertainty level is uniform" rule.
	GuardBins int
	// FloorPower is the per-bin uncertainty power (same units as the
	// record squared) below which deviations are indistinguishable
	// from analog noise.
	FloorPower float64
	// MarginDB is how far above the floor a deviation must rise to be
	// called a fault effect.
	MarginDB float64

	ref      *dsp.Spectrum
	excluded map[int]bool
	n        int
}

// NewDetector builds a detector from the good-circuit record produced
// with the ideal stimulus. floorPower may be zero initially and set
// later with CalibrateFloor.
func NewDetector(goodIdeal []int64, fs float64, toneFreqs []float64, guardBins int, floorPower, marginDB float64) (*Detector, error) {
	if len(goodIdeal) == 0 {
		return nil, fmt.Errorf("spectest: empty reference record")
	}
	if fs <= 0 {
		return nil, fmt.Errorf("spectest: sample rate %g must be positive", fs)
	}
	if guardBins < 0 {
		return nil, fmt.Errorf("spectest: negative guard bins")
	}
	ref, err := spectrumOf(goodIdeal, fs)
	if err != nil {
		return nil, err
	}
	d := &Detector{
		SampleRate: fs,
		ToneFreqs:  append([]float64(nil), toneFreqs...),
		GuardBins:  guardBins,
		FloorPower: floorPower,
		MarginDB:   marginDB,
		ref:        ref,
		n:          len(goodIdeal),
	}
	d.buildExclusions()
	return d, nil
}

// spectrumOf computes the comparison spectrum. A Blackman-Harris
// window keeps the floor robust against small stimulus/LO frequency
// errors of the device under test: leakage tails from a slightly
// off-bin tone would otherwise grow with record length and swamp the
// uncertainty floor. Its −92 dB sidelobes push tone-skirt residue
// below the analog noise everywhere past the guard band.
func spectrumOf(rec []int64, fs float64) (*dsp.Spectrum, error) {
	f := make([]float64, len(rec))
	for i, v := range rec {
		f[i] = float64(v)
	}
	return dsp.PowerSpectrum(f, fs, dsp.BlackmanHarris)
}

func (d *Detector) buildExclusions() {
	d.excluded = make(map[int]bool)
	mark := func(k int) {
		for i := k - d.GuardBins; i <= k+d.GuardBins; i++ {
			if i >= 0 && i < len(d.ref.Power) {
				d.excluded[i] = true
			}
		}
	}
	mark(0)
	for _, f := range d.ToneFreqs {
		mark(d.ref.Bin(f))
		// Harmonics of the stimulus also ride on elevated uncertainty
		// (analog distortion varies device to device); exclude 2nd and
		// 3rd.
		mark(d.ref.Bin(2 * f))
		mark(d.ref.Bin(3 * f))
	}
	// Intermodulation products of tone pairs carry the analog front
	// end's (device-dependent) distortion — their uncertainty is not
	// uniform either, so they are excluded from comparison.
	for i, f1 := range d.ToneFreqs {
		for j, f2 := range d.ToneFreqs {
			if i == j {
				continue
			}
			mark(d.ref.Bin(math.Abs(2*f1 - f2)))
			mark(d.ref.Bin(math.Abs(f2 - f1)))
			mark(d.ref.Bin(f1 + f2))
			mark(d.ref.Bin(2*f1 + f2))
		}
	}
}

// ExcludeFrequency removes the bins around frequency f (with the
// usual guard) from comparison. Callers exclude the known
// deterministic features of their analog front end — clock feed-
// through and LO leakage aliases — whose levels vary device to device.
// Call before CalibrateFloor.
func (d *Detector) ExcludeFrequency(f float64) {
	k := d.ref.Bin(f)
	for i := k - d.GuardBins; i <= k+d.GuardBins; i++ {
		if i >= 0 && i < len(d.ref.Power) {
			d.excluded[i] = true
		}
	}
}

// CalibrateFloor sets FloorPower from a realistic fault-free capture:
// the worst per-bin deviation between that record's spectrum and the
// ideal reference over the compared bins, scaled by safety (>= 1).
// This is the paper's "level of total noise at the inputs of the
// digital filter is estimated through spectral analysis".
func (d *Detector) CalibrateFloor(noisyGood []int64, safety float64) error {
	if safety < 1 {
		return fmt.Errorf("spectest: safety factor %g must be >= 1", safety)
	}
	s, err := spectrumOf(noisyGood, d.SampleRate)
	if err != nil {
		return err
	}
	if len(s.Power) != len(d.ref.Power) {
		return fmt.Errorf("spectest: calibration record length %d != reference %d",
			len(noisyGood), d.n)
	}
	d.normalize(s)
	devs := make([]float64, 0, len(s.Power))
	for k := range s.Power {
		if d.excluded[k] {
			continue
		}
		devs = append(devs, math.Abs(s.Power[k]-d.ref.Power[k]))
	}
	if len(devs) == 0 {
		return fmt.Errorf("spectest: every bin excluded")
	}
	// Use the largest observed deviation as the floor so a healthy
	// noisy device can never flag on its own noise, then apply the
	// safety factor for device-to-device spread.
	worst := 0.0
	for _, v := range devs {
		if v > worst {
			worst = v
		}
	}
	d.FloorPower = worst * safety
	return nil
}

// threshold returns the per-bin detection threshold power.
func (d *Detector) threshold() float64 {
	return d.FloorPower * math.Pow(10, d.MarginDB/10)
}

// normalize scales a record's spectrum so its total stimulus-tone
// power matches the reference — the paper's elimination of analog
// gain variance through spectral analysis. Without this, a healthy
// device's slightly different path gain leaves a residual on the tone
// skirts that masquerades as an uncertainty floor.
func (d *Detector) normalize(s *dsp.Spectrum) {
	var ref, got float64
	for _, f := range d.ToneFreqs {
		ref += d.ref.Power[d.ref.Bin(f)]
		got += s.Power[s.Bin(f)]
	}
	if got <= 0 || ref <= 0 {
		return
	}
	g := ref / got
	for k := range s.Power {
		s.Power[k] *= g
	}
}

// Scratch holds the per-worker reusable buffers for allocation-free
// detection: the float conversion buffer and the windowed-FFT scratch
// (window table, complex work buffer, power buffer) keyed off the
// shared dsp plan cache. A Scratch is not safe for concurrent use;
// create one per goroutine with NewScratch.
type Scratch struct {
	f  []float64
	ss *dsp.SpectrumScratch
}

// NewScratch builds a scratch sized for this detector's record length.
func (d *Detector) NewScratch() (*Scratch, error) {
	ss, err := dsp.NewSpectrumScratch(d.n, dsp.BlackmanHarris)
	if err != nil {
		return nil, err
	}
	return &Scratch{f: make([]float64, d.n), ss: ss}, nil
}

// spectrumFor computes the comparison spectrum of rec, through the
// scratch when one is supplied (allocation-free, bit-identical) or the
// allocating spectrumOf path when sc is nil.
func (d *Detector) spectrumFor(rec []int64, sc *Scratch) (*dsp.Spectrum, error) {
	if sc == nil {
		return spectrumOf(rec, d.SampleRate)
	}
	if len(sc.f) != len(rec) {
		return nil, fmt.Errorf("spectest: scratch length %d != record %d", len(sc.f), len(rec))
	}
	for i, v := range rec {
		sc.f[i] = float64(v)
	}
	return sc.ss.PowerSpectrum(sc.f, d.SampleRate)
}

// deviationOf normalizes s in place and returns the largest per-bin
// deviation from the reference over the compared bins and its bin.
func (d *Detector) deviationOf(s *dsp.Spectrum) (float64, int) {
	d.normalize(s)
	worst, worstBin := 0.0, -1
	for k := range s.Power {
		if d.excluded[k] {
			continue
		}
		dev := math.Abs(s.Power[k] - d.ref.Power[k])
		if dev > worst {
			worst, worstBin = dev, k
		}
	}
	return worst, worstBin
}

// Deviation returns the largest per-bin spectral deviation of the
// record from the reference over the compared bins, and the bin it
// occurred at.
func (d *Detector) Deviation(rec []int64) (float64, int, error) {
	return d.DeviationScratch(rec, nil)
}

// DeviationScratch is Deviation through a worker's reusable scratch
// buffers; sc may be nil, in which case temporaries are allocated.
func (d *Detector) DeviationScratch(rec []int64, sc *Scratch) (float64, int, error) {
	if len(rec) != d.n {
		return 0, 0, fmt.Errorf("spectest: record length %d != reference %d", len(rec), d.n)
	}
	s, err := d.spectrumFor(rec, sc)
	if err != nil {
		return 0, 0, err
	}
	worst, worstBin := d.deviationOf(s)
	return worst, worstBin, nil
}

// DetectRecord reports whether the record's spectrum deviates from the
// ideal-good reference by more than the floor-derived threshold in at
// least one compared bin. Unlike the legacy bool-only path, detector
// failures (record-length mismatch, spectrum errors) surface as errors
// instead of masquerading as undetected faults. sc may be nil.
func (d *Detector) DetectRecord(rec []int64, sc *Scratch) (bool, error) {
	dev, _, err := d.DeviationScratch(rec, sc)
	if err != nil {
		return false, err
	}
	return dev > d.threshold(), nil
}

// Detect implements fault.Detector: the faulty record's spectrum must
// deviate from the ideal-good reference by more than the floor-derived
// threshold in at least one compared bin. The good record passed by
// the fault simulator is ignored — the reference is the ideal-input
// good circuit, as in the paper's methodology.
//
// This entry point allocates its spectrum temporaries per call; engines
// that detect in a loop use NewWorkerDetect (fault.Simulate and the
// campaign engine pick it up automatically) for the allocation-free
// path.
func (d *Detector) Detect(good, faulty []int64) (bool, error) {
	return d.DetectRecord(faulty, nil)
}

// NewWorkerDetect returns a Detect-shaped function bound to a fresh
// per-worker Scratch, satisfying fault.WorkerDetector: verdicts are
// bit-identical to Detect's, but the record → window → FFT → power-
// spectrum → screen path reuses one buffer set and allocates nothing
// in steady state. The returned function is not safe for concurrent
// use — it owns its scratch; call NewWorkerDetect once per goroutine.
func (d *Detector) NewWorkerDetect() (func(good, faulty []int64) (bool, error), error) {
	sc, err := d.NewScratch()
	if err != nil {
		return nil, err
	}
	return func(good, faulty []int64) (bool, error) {
		return d.DetectRecord(faulty, sc)
	}, nil
}

// ComparedBins returns how many spectrum bins participate in the
// comparison.
func (d *Detector) ComparedBins() int {
	return len(d.ref.Power) - len(d.excluded)
}

// FloorDBFS returns the calibrated floor power in dB relative to the
// reference's total stimulus power — a readable summary of how much
// analog uncertainty the test must tolerate.
func (d *Detector) FloorDBFS() float64 {
	var sig float64
	for _, f := range d.ToneFreqs {
		sig += d.ref.Power[d.ref.Bin(f)]
	}
	if sig <= 0 {
		return math.Inf(1)
	}
	return dsp.DB(d.FloorPower / sig)
}
