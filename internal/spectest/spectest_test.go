package spectest

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"mstx/internal/digital"
	"mstx/internal/dsp"
	"mstx/internal/fault"
	"mstx/internal/netlist"
)

// buildFilterAndRecords builds a small gate-level FIR, an ideal
// stimulus record, the good output, and a noisy-input good output.
func buildFilterAndRecords(t testing.TB, n int) (*digital.FIR, []int64, []int64, []int64, []float64, float64) {
	t.Helper()
	fir, err := digital.NewFIR([]int64{7, 15, 22, 15, 7}, 8)
	if err != nil {
		t.Fatal(err)
	}
	fs := 1e6
	f1 := dsp.CoherentBin(fs, n, 37)
	f2 := dsp.CoherentBin(fs, n, 53)
	ideal := make([]int64, n)
	noisy := make([]int64, n)
	rng := rand.New(rand.NewSource(90))
	for i := range ideal {
		ti := float64(i) / fs
		v := 45*math.Cos(2*math.Pi*f1*ti) + 45*math.Cos(2*math.Pi*f2*ti)
		ideal[i] = int64(math.Round(v))
		noisy[i] = int64(math.Round(v + rng.NormFloat64()*1.5))
	}
	sim := digital.NewFIRSim(fir)
	goodIdeal, err := sim.RunPeriodic(ideal)
	if err != nil {
		t.Fatal(err)
	}
	sim2 := digital.NewFIRSim(fir)
	goodNoisy, err := sim2.RunPeriodic(noisy)
	if err != nil {
		t.Fatal(err)
	}
	return fir, ideal, goodIdeal, goodNoisy, []float64{f1, f2}, fs
}

func TestNewDetectorValidation(t *testing.T) {
	if _, err := NewDetector(nil, 1e6, nil, 1, 0, 0); err == nil {
		t.Error("empty reference accepted")
	}
	if _, err := NewDetector([]int64{1}, 0, nil, 1, 0, 0); err == nil {
		t.Error("zero sample rate accepted")
	}
	if _, err := NewDetector([]int64{1}, 1e6, nil, -1, 0, 0); err == nil {
		t.Error("negative guard accepted")
	}
}

func TestHealthyNoisyDevicePasses(t *testing.T) {
	_, _, goodIdeal, goodNoisy, tones, fs := buildFilterAndRecords(t, 1024)
	det, err := NewDetector(goodIdeal, fs, tones, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.CalibrateFloor(goodNoisy, 1.5); err != nil {
		t.Fatal(err)
	}
	if det.FloorPower <= 0 {
		t.Fatal("floor not calibrated")
	}
	// The noisy-but-healthy record must not be flagged: yield.
	if flagged, err := det.Detect(goodIdeal, goodNoisy); err != nil {
		t.Fatal(err)
	} else if flagged {
		t.Error("healthy noisy device flagged as faulty")
	}
	if det.ComparedBins() <= 0 {
		t.Error("no compared bins")
	}
	if db := det.FloorDBFS(); db > -20 {
		t.Errorf("floor at %g dBFS — implausibly high", db)
	}
}

func TestGrossFaultDetected(t *testing.T) {
	fir, ideal, goodIdeal, goodNoisy, tones, fs := buildFilterAndRecords(t, 1024)
	det, err := NewDetector(goodIdeal, fs, tones, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.CalibrateFloor(goodNoisy, 1.5); err != nil {
		t.Fatal(err)
	}
	// Stuck-at on a high output bit: gross periodic distortion.
	sim := digital.NewFIRSim(fir)
	hiBit := fir.OutBus[len(fir.OutBus)-3]
	if err := sim.InjectFault(netlist.Fault{Net: hiBit, Stuck: netlist.StuckAt1}, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	faulty, err := sim.RunPeriodic(ideal)
	if err != nil {
		t.Fatal(err)
	}
	if detected, err := det.Detect(goodIdeal, faulty); err != nil {
		t.Fatal(err)
	} else if !detected {
		t.Error("gross fault escaped the spectral test")
	}
}

func TestTinyFaultBelowFloorEscapes(t *testing.T) {
	fir, ideal, goodIdeal, _, tones, fs := buildFilterAndRecords(t, 1024)
	det, err := NewDetector(goodIdeal, fs, tones, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Artificially high floor: even an LSB fault must escape.
	det.FloorPower = 1e6
	sim := digital.NewFIRSim(fir)
	if err := sim.InjectFault(netlist.Fault{Net: fir.OutBus[0], Stuck: netlist.StuckAt1}, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	faulty, err := sim.RunPeriodic(ideal)
	if err != nil {
		t.Fatal(err)
	}
	if detected, err := det.Detect(goodIdeal, faulty); err != nil {
		t.Fatal(err)
	} else if detected {
		t.Error("LSB fault detected despite a floor far above it")
	}
}

func TestCoverageDropsWithNoiseFloorAndRecoversWithPatterns(t *testing.T) {
	// The paper's E8 shape at miniature scale: exact detection >
	// spectral with floor; and a longer record recovers some faults.
	if testing.Short() {
		t.Skip("coverage sweep skipped in -short")
	}
	runCampaign := func(n int, floorScale float64) float64 {
		fir, ideal, goodIdeal, goodNoisy, tones, fs := buildFilterAndRecords(t, n)
		u := fault.NewUniverse(fir, true)
		det, err := NewDetector(goodIdeal, fs, tones, 2, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := det.CalibrateFloor(goodNoisy, floorScale); err != nil {
			t.Fatal(err)
		}
		rep, err := fault.Simulate(context.Background(), u, ideal, det)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Coverage()
	}
	exactCoverage := func(n int) float64 {
		fir, ideal, _, _, _, _ := buildFilterAndRecords(t, n)
		u := fault.NewUniverse(fir, true)
		rep, err := fault.Simulate(context.Background(), u, ideal, fault.ExactDetector{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Coverage()
	}
	exact := exactCoverage(1024)
	spectral := runCampaign(1024, 40) // generous floor: faults escape
	longer := runCampaign(4096, 40)
	if spectral >= exact {
		t.Errorf("spectral coverage %.1f%% should drop below exact %.1f%%", spectral, exact)
	}
	if longer < spectral {
		t.Errorf("more patterns lowered coverage: %.1f%% -> %.1f%%", spectral, longer)
	}
}

func TestDeviationLengthMismatch(t *testing.T) {
	_, _, goodIdeal, _, tones, fs := buildFilterAndRecords(t, 512)
	det, err := NewDetector(goodIdeal, fs, tones, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := det.Deviation(make([]int64, 100)); err == nil {
		t.Error("length mismatch accepted")
	}
	// A mismatched record must fail loudly, not read as undetected.
	if _, err := det.Detect(nil, make([]int64, 100)); err == nil {
		t.Error("mismatched record did not surface an error")
	}
	if _, err := det.DetectRecord(make([]int64, 100), nil); err == nil {
		t.Error("DetectRecord length mismatch did not surface an error")
	}
}

func TestCalibrateFloorValidation(t *testing.T) {
	_, _, goodIdeal, goodNoisy, tones, fs := buildFilterAndRecords(t, 512)
	det, err := NewDetector(goodIdeal, fs, tones, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.CalibrateFloor(goodNoisy, 0.5); err == nil {
		t.Error("safety < 1 accepted")
	}
	if err := det.CalibrateFloor(make([]int64, 100), 2); err == nil {
		t.Error("length mismatch accepted")
	}
	// A guard band wide enough to swallow the whole spectrum leaves
	// nothing to compare: calibration must refuse, not return a zero
	// floor.
	wide, err := NewDetector(goodIdeal, fs, tones, len(goodIdeal), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := wide.CalibrateFloor(goodNoisy, 1.5); err == nil {
		t.Error("every-bin-excluded calibration accepted")
	}
}

func TestScratchPathBitIdentical(t *testing.T) {
	fir, ideal, goodIdeal, goodNoisy, tones, fs := buildFilterAndRecords(t, 512)
	det, err := NewDetector(goodIdeal, fs, tones, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.CalibrateFloor(goodNoisy, 1.5); err != nil {
		t.Fatal(err)
	}
	sc, err := det.NewScratch()
	if err != nil {
		t.Fatal(err)
	}
	sim := digital.NewFIRSim(fir)
	if err := sim.InjectFault(netlist.Fault{Net: fir.OutBus[2], Stuck: netlist.StuckAt1}, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	faulty, err := sim.RunPeriodic(ideal)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range [][]int64{goodNoisy, faulty, goodIdeal} {
		devPlain, binPlain, err := det.Deviation(rec)
		if err != nil {
			t.Fatal(err)
		}
		devScr, binScr, err := det.DeviationScratch(rec, sc)
		if err != nil {
			t.Fatal(err)
		}
		if devPlain != devScr || binPlain != binScr {
			t.Fatalf("scratch deviation (%g, %d) != plain (%g, %d) — paths must be bit-identical",
				devScr, binScr, devPlain, binPlain)
		}
		dPlain, err := det.DetectRecord(rec, nil)
		if err != nil {
			t.Fatal(err)
		}
		dScr, err := det.DetectRecord(rec, sc)
		if err != nil {
			t.Fatal(err)
		}
		if dPlain != dScr {
			t.Fatalf("scratch verdict %v != plain verdict %v", dScr, dPlain)
		}
	}
}

// The spectral detector must satisfy fault.WorkerDetector so campaigns
// bind one scratch per pool worker — structurally, without spectest
// importing fault.
var _ fault.WorkerDetector = (*Detector)(nil)

func TestNewWorkerDetectBitIdentical(t *testing.T) {
	fir, ideal, goodIdeal, goodNoisy, tones, fs := buildFilterAndRecords(t, 512)
	det, err := NewDetector(goodIdeal, fs, tones, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.CalibrateFloor(goodNoisy, 1.5); err != nil {
		t.Fatal(err)
	}
	detect, err := det.NewWorkerDetect()
	if err != nil {
		t.Fatal(err)
	}
	records := [][]int64{goodNoisy, goodIdeal}
	for bit := 0; bit < 3; bit++ {
		sim := digital.NewFIRSim(fir)
		if err := sim.InjectFault(netlist.Fault{Net: fir.OutBus[bit], Stuck: netlist.StuckAt1}, ^uint64(0)); err != nil {
			t.Fatal(err)
		}
		rec, err := sim.RunPeriodic(ideal)
		if err != nil {
			t.Fatal(err)
		}
		records = append(records, rec)
	}
	for i, rec := range records {
		want, err := det.Detect(goodIdeal, rec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := detect(goodIdeal, rec)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("record %d: worker verdict %v != Detect verdict %v", i, got, want)
		}
	}
}

// TestDetectRecordAllocFree pins the campaign's per-record steady
// state: with a worker scratch bound, the record → spectrum → screen
// path performs zero allocations per fault.
func TestDetectRecordAllocFree(t *testing.T) {
	_, _, goodIdeal, goodNoisy, tones, fs := buildFilterAndRecords(t, 512)
	det, err := NewDetector(goodIdeal, fs, tones, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.CalibrateFloor(goodNoisy, 1.5); err != nil {
		t.Fatal(err)
	}
	sc, err := det.NewScratch()
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := det.DetectRecord(goodNoisy, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("scratch DetectRecord allocates %.1f objects per call, want 0", allocs)
	}
	detect, err := det.NewWorkerDetect()
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(20, func() {
		if _, err := detect(goodIdeal, goodNoisy); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("bound worker detect allocates %.1f objects per call, want 0", allocs)
	}
}

func TestDetectorConcurrentDetection(t *testing.T) {
	// A calibrated detector is shared read-only by the campaign pool;
	// this must be race-free (run under -race) and verdict-stable.
	fir, ideal, goodIdeal, goodNoisy, tones, fs := buildFilterAndRecords(t, 512)
	det, err := NewDetector(goodIdeal, fs, tones, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.CalibrateFloor(goodNoisy, 1.5); err != nil {
		t.Fatal(err)
	}
	var records [][]int64
	var want []bool
	for bit := 0; bit < 4; bit++ {
		sim := digital.NewFIRSim(fir)
		if err := sim.InjectFault(netlist.Fault{Net: fir.OutBus[bit], Stuck: netlist.StuckAt1}, ^uint64(0)); err != nil {
			t.Fatal(err)
		}
		rec, err := sim.RunPeriodic(ideal)
		if err != nil {
			t.Fatal(err)
		}
		records = append(records, rec)
	}
	records = append(records, goodNoisy, goodIdeal)
	for _, rec := range records {
		v, err := det.DetectRecord(rec, nil)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, v)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			sc, err := det.NewScratch()
			if err != nil {
				t.Error(err)
				return
			}
			for iter := 0; iter < 20; iter++ {
				for i, rec := range records {
					// Odd workers exercise the allocating path so the
					// two hot paths race against each other too.
					use := sc
					if worker%2 == 1 {
						use = nil
					}
					got, err := det.DetectRecord(rec, use)
					if err != nil {
						t.Error(err)
						return
					}
					if got != want[i] {
						t.Errorf("worker %d: record %d verdict %v, want %v", worker, i, got, want[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestGuardBinsExcludeTones(t *testing.T) {
	_, _, goodIdeal, _, tones, fs := buildFilterAndRecords(t, 512)
	det, err := NewDetector(goodIdeal, fs, tones, 3, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range tones {
		k := det.ref.Bin(f)
		for i := k - 3; i <= k+3; i++ {
			if !det.excluded[i] {
				t.Errorf("bin %d near tone %g not excluded", i, f)
			}
		}
	}
	if !det.excluded[0] {
		t.Error("DC not excluded")
	}
}
