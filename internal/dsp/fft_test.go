package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func complexSlicesClose(t *testing.T, got, want []complex128, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length mismatch: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > tol {
			t.Fatalf("bin %d: got %v want %v (tol %g)", i, got[i], want[i], tol)
		}
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024, 1 << 20} {
		if !IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = false, want true", n)
		}
	}
	for _, n := range []int{0, -1, -4, 3, 5, 6, 7, 12, 1000} {
		if IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = true, want false", n)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, c := range cases {
		if got := NextPowerOfTwo(c.in); got != c.want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestNextPowerOfTwoPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	NextPowerOfTwo(0)
}

func TestFFTMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := DFT(x)
		got := append([]complex128(nil), x...)
		if err := FFT(got); err != nil {
			t.Fatalf("FFT(n=%d): %v", n, err)
		}
		complexSlicesClose(t, got, want, 1e-9*float64(n))
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	x := make([]complex128, 3)
	if err := FFT(x); err == nil {
		t.Fatal("FFT accepted length 3")
	}
	if err := IFFT(x); err == nil {
		t.Fatal("IFFT accepted length 3")
	}
}

func TestFFTEmptyIsNoop(t *testing.T) {
	if err := FFT(nil); err != nil {
		t.Fatalf("FFT(nil): %v", err)
	}
	if err := IFFT(nil); err != nil {
		t.Fatalf("IFFT(nil): %v", err)
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 8, 128, 1024} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := append([]complex128(nil), x...)
		if err := FFT(y); err != nil {
			t.Fatal(err)
		}
		if err := IFFT(y); err != nil {
			t.Fatal(err)
		}
		complexSlicesClose(t, y, x, 1e-9*float64(n))
	}
}

func TestFFTKnownValues(t *testing.T) {
	// Impulse transforms to all-ones.
	x := []complex128{1, 0, 0, 0}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	complexSlicesClose(t, x, []complex128{1, 1, 1, 1}, 1e-12)

	// A single-cycle cosine puts N/2 in bins 1 and N-1.
	n := 8
	y := make([]complex128, n)
	for i := range y {
		y[i] = complex(math.Cos(2*math.Pi*float64(i)/float64(n)), 0)
	}
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, n)
	want[1] = complex(float64(n)/2, 0)
	want[n-1] = complex(float64(n)/2, 0)
	complexSlicesClose(t, y, want, 1e-9)
}

func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 64
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		x := make([]complex128, n)
		y := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			y[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		// FFT(a·x + y) == a·FFT(x) + FFT(y)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a*x[i] + y[i]
		}
		if err := FFT(sum); err != nil {
			return false
		}
		if err := FFT(x); err != nil {
			return false
		}
		if err := FFT(y); err != nil {
			return false
		}
		for i := range sum {
			if cmplx.Abs(sum[i]-(a*x[i]+y[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 128
		x := make([]complex128, n)
		var timePower float64
		for i := range x {
			x[i] = complex(r.NormFloat64(), 0)
			timePower += real(x[i]) * real(x[i])
		}
		if err := FFT(x); err != nil {
			return false
		}
		var freqPower float64
		for _, v := range x {
			freqPower += real(v)*real(v) + imag(v)*imag(v)
		}
		freqPower /= float64(n)
		return math.Abs(timePower-freqPower) < 1e-6*math.Max(1, timePower)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTRealZeroPads(t *testing.T) {
	x := []float64{1, 2, 3}
	spec, err := FFTReal(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) != 4 {
		t.Fatalf("FFTReal length = %d, want 4", len(spec))
	}
	// DC bin is the plain sum.
	if math.Abs(real(spec[0])-6) > 1e-12 || math.Abs(imag(spec[0])) > 1e-12 {
		t.Errorf("DC bin = %v, want 6", spec[0])
	}
}

func TestFFTRealEmpty(t *testing.T) {
	spec, err := FFTReal(nil)
	if err != nil || spec != nil {
		t.Fatalf("FFTReal(nil) = %v, %v; want nil, nil", spec, err)
	}
}

func TestGoertzelMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{4, 16, 100, 256} {
		x := make([]float64, n)
		cx := make([]complex128, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			cx[i] = complex(x[i], 0)
		}
		want := DFT(cx)
		for k := 0; k < n; k += 1 + n/8 {
			got := Goertzel(x, k)
			if cmplx.Abs(got-want[k]) > 1e-7*float64(n) {
				t.Fatalf("Goertzel(n=%d, k=%d) = %v, want %v", n, k, got, want[k])
			}
		}
	}
}

func TestGoertzelPhase(t *testing.T) {
	// sin at exactly bin 1 of N=4 must give X[1] = -2j.
	x := []float64{0, 1, 0, -1}
	got := Goertzel(x, 1)
	if cmplx.Abs(got-complex(0, -2)) > 1e-12 {
		t.Fatalf("Goertzel sine bin = %v, want (0,-2i)", got)
	}
}

func TestGoertzelEmpty(t *testing.T) {
	if Goertzel(nil, 0) != 0 {
		t.Fatal("Goertzel(nil) != 0")
	}
	if GoertzelPower(nil, 0) != 0 {
		t.Fatal("GoertzelPower(nil) != 0")
	}
}

func TestGoertzelPowerOnBinTone(t *testing.T) {
	n := 256
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.5 * math.Cos(2*math.Pi*10*float64(i)/float64(n))
	}
	// |X[k]|²/N² for amplitude A on-bin tone is (A/2)².
	got := GoertzelPower(x, 10)
	want := 0.25 * 0.25 * 0.25 // (A/2)² with A=0.5 -> 0.0625... (0.25)^2
	want = (0.5 / 2) * (0.5 / 2)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("GoertzelPower = %g, want %g", got, want)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	buf := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := FFT(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGoertzelSingleBin1024(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := make([]float64, 1024)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Goertzel(x, 100)
	}
}

func TestPlanMatchesFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for _, n := range []int{1, 2, 8, 64, 1024} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := append([]complex128(nil), x...)
		if err := FFT(want); err != nil {
			t.Fatal(err)
		}
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Len() != n {
			t.Fatalf("Len = %d", p.Len())
		}
		got := append([]complex128(nil), x...)
		if err := p.Transform(got); err != nil {
			t.Fatal(err)
		}
		complexSlicesClose(t, got, want, 1e-9*float64(n))
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := NewPlan(3); err == nil {
		t.Error("non-power-of-two plan accepted")
	}
	p, err := NewPlan(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Transform(make([]complex128, 4)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestCachedPlanShared(t *testing.T) {
	a, err := cachedPlan(256)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cachedPlan(256)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache returned distinct plans")
	}
	if _, err := cachedPlan(7); err == nil {
		t.Error("bad length accepted by cache")
	}
}

func BenchmarkFFTPlanned4096(b *testing.B) {
	rng := rand.New(rand.NewSource(201))
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	p, err := NewPlan(4096)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := p.Transform(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFTUnplanned4096(b *testing.B) {
	rng := rand.New(rand.NewSource(201))
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	buf := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := FFT(buf); err != nil {
			b.Fatal(err)
		}
	}
}
