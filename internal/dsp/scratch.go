package dsp

import "fmt"

// SpectrumScratch holds the reusable state for repeated power-spectrum
// estimation over records of one fixed length: the window table, the
// complex FFT work buffer, the output power buffer, and the shared
// transform plan. Spectral fault campaigns compute one spectrum per
// fault over thousands of faults; with a scratch the per-record hot
// path allocates nothing and never re-evaluates the window's cosine
// terms.
//
// Beyond the single-record PowerSpectrum, the scratch carries the full
// streaming-analysis state: Welch averaging (Welch), figure-of-merit
// extraction (Analyze, AnalyzeSpectrum), noise-floor estimation
// (NoiseFloor) and coherent record averaging (CoherentAverage) all
// have scratch-backed variants here, so a campaign worker reuses one
// buffer set per goroutine instead of re-allocating per segment or
// call. The streaming buffers are grown lazily on first use; after
// that every variant is allocation-free in steady state.
//
// A SpectrumScratch is not safe for concurrent use — create one per
// worker goroutine. Distinct scratches of the same length share the
// immutable plan from SharedPlan and the immutable window table from
// the shared window cache, so per-worker setup is cheap.
//
// Each scratch method is bit-identical to its package-level
// counterpart for the scratch's length and window: it performs the
// same arithmetic in the same order on cached tables.
type SpectrumScratch struct {
	n     int
	wtype WindowType
	win   []float64
	cg    float64
	enbw  float64
	plan  *Plan
	buf   []complex128
	spec  Spectrum

	// Streaming-analysis state, grown lazily so a plain
	// power-spectrum scratch stays small.
	welch   Spectrum     // Welch accumulator with its own Power buffer
	sortBuf []float64    // NoiseFloor sort buffer
	avgBuf  []float64    // CoherentAverage output record
	ana     analyzeState // Analyze/AnalyzeSpectrum working set
}

// NewSpectrumScratch builds a scratch for signals of length n windowed
// by w. The FFT length is NextPowerOfTwo(n), as in PowerSpectrum.
func NewSpectrumScratch(n int, w WindowType) (*SpectrumScratch, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dsp: SpectrumScratch length %d must be positive", n)
	}
	nfft := NextPowerOfTwo(n)
	plan, err := SharedPlan(nfft)
	if err != nil {
		return nil, err
	}
	win := sharedWindow(w, n)
	cg := CoherentGain(win)
	if cg == 0 {
		return nil, fmt.Errorf("dsp: window %v has zero coherent gain", w)
	}
	s := &SpectrumScratch{
		n:     n,
		wtype: w,
		win:   win,
		cg:    cg,
		enbw:  NoiseBandwidth(win),
		plan:  plan,
		buf:   make([]complex128, nfft),
	}
	s.spec = Spectrum{
		Power:          make([]float64, nfft/2+1),
		NFFT:           nfft,
		Window:         w,
		ProcessingGain: cg,
		ENBW:           s.enbw,
	}
	return s, nil
}

// Len returns the signal length the scratch was built for.
func (s *SpectrumScratch) Len() int { return s.n }

// PowerSpectrum computes the single-sided power spectrum of x exactly
// as the package-level PowerSpectrum would, reusing the scratch
// buffers. len(x) must equal the scratch length. The returned Spectrum
// aliases scratch memory and is only valid until the next call.
func (s *SpectrumScratch) PowerSpectrum(x []float64, sampleRate float64) (*Spectrum, error) {
	if len(x) != s.n {
		return nil, fmt.Errorf("dsp: scratch length %d, input %d", s.n, len(x))
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("dsp: PowerSpectrum sample rate %g must be positive", sampleRate)
	}
	for i, v := range x {
		s.buf[i] = complex(v*s.win[i], 0)
	}
	for i := s.n; i < len(s.buf); i++ {
		s.buf[i] = 0
	}
	if err := s.plan.Transform(s.buf); err != nil {
		return nil, err
	}
	n := len(s.buf)
	scale := 1 / (s.cg * float64(s.n))
	half := n/2 + 1
	p := s.spec.Power[:half]
	for k := 0; k < half; k++ {
		re, im := real(s.buf[k]), imag(s.buf[k])
		mag2 := (re*re + im*im) * scale * scale
		if k == 0 || k == n/2 {
			p[k] = mag2
		} else {
			p[k] = 2 * mag2
		}
	}
	s.spec.SampleRate = sampleRate
	return &s.spec, nil
}

// Welch computes the averaged power spectrum exactly as the
// package-level Welch would, reusing the scratch's FFT state per
// segment and a dedicated accumulator buffer for the average.
// opts.SegmentLength must equal the scratch length and opts.Window the
// scratch window. The returned Spectrum aliases scratch memory
// (distinct from PowerSpectrum's, so a caller may hold both) and is
// valid until the next Welch call.
func (s *SpectrumScratch) Welch(x []float64, sampleRate float64, opts WelchOptions) (*Spectrum, error) {
	n := opts.SegmentLength
	if n != s.n {
		return nil, fmt.Errorf("dsp: scratch segment length %d, got %d", s.n, n)
	}
	if opts.Window != s.wtype {
		return nil, fmt.Errorf("dsp: scratch window %v, got %v", s.wtype, opts.Window)
	}
	if err := checkWelchOptions(n, len(x), opts.Overlap); err != nil {
		return nil, err
	}
	if s.welch.Power == nil {
		s.welch.Power = make([]float64, len(s.spec.Power))
	}
	step := welchStep(n, opts.Overlap)
	segments := 0
	for start := 0; start+n <= len(x); start += step {
		sp, err := s.PowerSpectrum(x[start:start+n], sampleRate)
		if err != nil {
			return nil, err
		}
		if segments == 0 {
			copy(s.welch.Power, sp.Power)
		} else {
			for k := range s.welch.Power {
				s.welch.Power[k] += sp.Power[k]
			}
		}
		segments++
	}
	inv := 1 / float64(segments)
	for k := range s.welch.Power {
		s.welch.Power[k] *= inv
	}
	s.welch.SampleRate = sampleRate
	s.welch.NFFT = s.spec.NFFT
	s.welch.Window = s.wtype
	s.welch.ProcessingGain = s.cg
	s.welch.ENBW = s.enbw
	return &s.welch, nil
}

// CoherentAverage averages the len(x)/Len() consecutive length-Len()
// records of x sample by sample, exactly as the package-level
// CoherentAverage(x, Len()) would. The returned slice aliases scratch
// memory and is valid until the next CoherentAverage call — feed it
// straight into PowerSpectrum or Analyze for the allocation-free
// average-then-transform loop.
func (s *SpectrumScratch) CoherentAverage(x []float64) ([]float64, error) {
	k := len(x) / s.n
	if k < 1 {
		return nil, fmt.Errorf("dsp: record %d shorter than one period %d", len(x), s.n)
	}
	if s.avgBuf == nil {
		s.avgBuf = make([]float64, s.n)
	}
	out := s.avgBuf
	for i := range out {
		out[i] = 0
	}
	for rep := 0; rep < k; rep++ {
		base := rep * s.n
		for i := 0; i < s.n; i++ {
			out[i] += x[base+i]
		}
	}
	inv := 1 / float64(k)
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// NoiseFloor estimates the median non-excluded bin power of sp exactly
// as sp.NoiseFloor(exclude) would, reusing the scratch's sort buffer.
// sp is typically the spectrum last computed by this scratch, but any
// spectrum works — the buffer is grown once to the largest spectrum
// seen.
func (s *SpectrumScratch) NoiseFloor(sp *Spectrum, exclude map[int]bool) float64 {
	if cap(s.sortBuf) < len(sp.Power) {
		s.sortBuf = make([]float64, 0, len(sp.Power))
	}
	var v float64
	v, s.sortBuf = noiseFloorMedian(sp.Power, exclude, s.sortBuf)
	return v
}

// AnalyzeSpectrum computes the spectral figures of merit exactly as
// the package-level AnalyzeSpectrum would, reusing the scratch's
// analysis buffers. The returned SpectralAnalysis (including its
// Fundamentals and Harmonics slices) aliases scratch memory and is
// valid until the next AnalyzeSpectrum or Analyze call.
func (s *SpectrumScratch) AnalyzeSpectrum(sp *Spectrum, toneFreqs []float64, opts AnalyzeOptions) (*SpectralAnalysis, error) {
	return s.ana.analyze(sp, toneFreqs, opts)
}

// Analyze computes the power spectrum of x with the scratch's window
// and extracts the spectral figures of merit, exactly as the
// package-level Analyze(x, sampleRate, toneFreqs, w, opts) would for
// the scratch's window. len(x) must equal the scratch length. The
// returned SpectralAnalysis aliases scratch memory and is valid until
// the next AnalyzeSpectrum or Analyze call.
func (s *SpectrumScratch) Analyze(x []float64, sampleRate float64, toneFreqs []float64, opts AnalyzeOptions) (*SpectralAnalysis, error) {
	if len(toneFreqs) == 0 {
		return nil, fmt.Errorf("dsp: Analyze requires at least one stimulus tone")
	}
	sp, err := s.PowerSpectrum(x, sampleRate)
	if err != nil {
		return nil, err
	}
	return s.ana.analyze(sp, toneFreqs, opts)
}
