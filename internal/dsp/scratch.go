package dsp

import "fmt"

// SpectrumScratch holds the reusable state for repeated power-spectrum
// estimation over records of one fixed length: the window table, the
// complex FFT work buffer, the output power buffer, and the shared
// transform plan. Spectral fault campaigns compute one spectrum per
// fault over thousands of faults; with a scratch the per-record hot
// path allocates nothing and never re-evaluates the window's cosine
// terms.
//
// A SpectrumScratch is not safe for concurrent use — create one per
// worker goroutine. Distinct scratches of the same length share the
// immutable plan from SharedPlan, so per-worker setup is cheap.
//
// PowerSpectrum (the method) is bit-identical to PowerSpectrum (the
// package function) for the scratch's length and window: it performs
// the same arithmetic in the same order on cached tables.
type SpectrumScratch struct {
	n     int
	wtype WindowType
	win   []float64
	cg    float64
	enbw  float64
	plan  *Plan
	buf   []complex128
	spec  Spectrum
}

// NewSpectrumScratch builds a scratch for signals of length n windowed
// by w. The FFT length is NextPowerOfTwo(n), as in PowerSpectrum.
func NewSpectrumScratch(n int, w WindowType) (*SpectrumScratch, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dsp: SpectrumScratch length %d must be positive", n)
	}
	nfft := NextPowerOfTwo(n)
	plan, err := SharedPlan(nfft)
	if err != nil {
		return nil, err
	}
	win := Window(w, n)
	cg := CoherentGain(win)
	if cg == 0 {
		return nil, fmt.Errorf("dsp: window %v has zero coherent gain", w)
	}
	s := &SpectrumScratch{
		n:     n,
		wtype: w,
		win:   win,
		cg:    cg,
		enbw:  NoiseBandwidth(win),
		plan:  plan,
		buf:   make([]complex128, nfft),
	}
	s.spec = Spectrum{
		Power:          make([]float64, nfft/2+1),
		NFFT:           nfft,
		Window:         w,
		ProcessingGain: cg,
		ENBW:           s.enbw,
	}
	return s, nil
}

// Len returns the signal length the scratch was built for.
func (s *SpectrumScratch) Len() int { return s.n }

// PowerSpectrum computes the single-sided power spectrum of x exactly
// as the package-level PowerSpectrum would, reusing the scratch
// buffers. len(x) must equal the scratch length. The returned Spectrum
// aliases scratch memory and is only valid until the next call.
func (s *SpectrumScratch) PowerSpectrum(x []float64, sampleRate float64) (*Spectrum, error) {
	if len(x) != s.n {
		return nil, fmt.Errorf("dsp: scratch length %d, input %d", s.n, len(x))
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("dsp: PowerSpectrum sample rate %g must be positive", sampleRate)
	}
	for i, v := range x {
		s.buf[i] = complex(v*s.win[i], 0)
	}
	for i := s.n; i < len(s.buf); i++ {
		s.buf[i] = 0
	}
	if err := s.plan.Transform(s.buf); err != nil {
		return nil, err
	}
	n := len(s.buf)
	scale := 1 / (s.cg * float64(s.n))
	half := n/2 + 1
	p := s.spec.Power[:half]
	for k := 0; k < half; k++ {
		re, im := real(s.buf[k]), imag(s.buf[k])
		mag2 := (re*re + im*im) * scale * scale
		if k == 0 || k == n/2 {
			p[k] = mag2
		} else {
			p[k] = 2 * mag2
		}
	}
	s.spec.SampleRate = sampleRate
	return &s.spec, nil
}
