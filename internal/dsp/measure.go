package dsp

import (
	"fmt"
	"math"
)

// ToneMeasurement holds the result of measuring one expected tone in a
// spectrum: where it was looked for, the power found, and the power
// expressed as amplitude assuming a sine (A = sqrt(2·P)).
type ToneMeasurement struct {
	// Frequency is the requested tone frequency in Hz (pre-aliasing).
	Frequency float64
	// Bin is the spectrum bin the tone was measured at.
	Bin int
	// Power is the measured tone power (mean-square units).
	Power float64
	// Amplitude is the equivalent sine amplitude sqrt(2·Power).
	Amplitude float64
}

// defaultToneSpread is the leakage-skirt half-width, in bins, used for
// tone measurement under a non-rectangular window when the caller does
// not choose one. Three bins cover the main lobe of the four-term
// Blackman-Harris window, the widest in the catalog.
const defaultToneSpread = 3

// MeasureTone measures the tone nearest frequency f and returns the
// measurement. Under a rectangular window (coherent sampling) the tone
// is the single nearest bin; under any other window the measurement
// sums a ±3 bin leakage skirt and divides by the window's ENBW to
// undo the skirt's overcount. Callers that need a different spread use
// AnalyzeSpectrum with an explicit ToneSpread.
func MeasureTone(s *Spectrum, f float64) ToneMeasurement {
	spread := 0
	if s.Window != Rectangular {
		spread = defaultToneSpread
	}
	return measureToneSpread(s, f, spread)
}

// measureToneSpread is MeasureTone with an explicit skirt half-width.
func measureToneSpread(s *Spectrum, f float64, spread int) ToneMeasurement {
	p := s.TonePower(f, spread)
	// Summing a leakage skirt overcounts the tone power by the
	// window's equivalent noise bandwidth.
	if spread > 0 && s.ENBW > 0 {
		p /= s.ENBW
	}
	return ToneMeasurement{
		Frequency: f,
		Bin:       s.Bin(f),
		Power:     p,
		Amplitude: math.Sqrt(2 * p),
	}
}

// SpectralAnalysis is the full set of figures of merit a mixed-signal
// tester extracts from one captured record: fundamental power, noise,
// distortion, and the derived ratios. All ratios are in dB.
type SpectralAnalysis struct {
	// Fundamentals are the measurements of the requested stimulus
	// tones, in the order requested.
	Fundamentals []ToneMeasurement
	// Harmonics are measurements of harmonics 2..H of the first
	// fundamental (aliased into the first Nyquist zone).
	Harmonics []ToneMeasurement
	// SignalPower is the summed power of all fundamentals.
	SignalPower float64
	// NoisePower is the total non-signal, non-harmonic, non-DC power.
	NoisePower float64
	// DistortionPower is the total harmonic power.
	DistortionPower float64
	// SNR is signal-to-noise ratio, dB.
	SNR float64
	// THD is total harmonic distortion relative to the signal, dB
	// (negative when distortion is below the signal).
	THD float64
	// SINAD is signal to noise-and-distortion, dB.
	SINAD float64
	// SFDR is the spurious-free dynamic range: signal power over the
	// largest non-signal bin, dB.
	SFDR float64
	// ENOB is the effective number of bits implied by SINAD.
	ENOB float64
	// NoiseFloorDB is the median per-bin noise power relative to the
	// signal power, dB. A fault effect below this level hides in noise.
	NoiseFloorDB float64
	// WorstSpur is the measurement of the largest non-signal bin.
	WorstSpur ToneMeasurement
}

// ToneSpreadNone requests a zero-bin leakage spread regardless of the
// window: each tone is exactly its nearest bin, with no ENBW
// correction. The plain zero value of ToneSpread means "unset" (the
// window-dependent default applies), so without this sentinel a caller
// with a non-rectangular window could not express a zero-spread
// measurement.
const ToneSpreadNone = -1

// AnalyzeOptions configures Analyze.
type AnalyzeOptions struct {
	// Harmonics is how many harmonics of the first fundamental to
	// classify as distortion (2..Harmonics). Default 5 when zero.
	Harmonics int
	// ToneSpread is how many bins on each side of a tone bin belong to
	// the tone (leakage skirt). Zero means unset: 0 for Rectangular, 3
	// otherwise. Pass ToneSpreadNone to force a zero-bin spread under
	// any window.
	ToneSpread int
	// ExcludeDC controls whether bin 0 (and the spread around it) is
	// excluded from noise. Offset errors otherwise masquerade as noise.
	// Default true (set SkipDCExclusion to include DC in noise).
	SkipDCExclusion bool
}

// resolveSpread maps the ToneSpread option onto the effective skirt
// half-width for a spectrum's window.
func (o AnalyzeOptions) resolveSpread(w WindowType) int {
	switch {
	case o.ToneSpread < 0:
		return 0
	case o.ToneSpread == 0 && w != Rectangular:
		return defaultToneSpread
	default:
		return o.ToneSpread
	}
}

// Analyze computes the standard spectral figures of merit for a real
// record x sampled at sampleRate, given the stimulus tone frequencies.
// Intermodulation products are counted as noise unless they coincide
// with harmonic bins; callers interested in specific intermods can
// measure them directly with MeasureTone.
func Analyze(x []float64, sampleRate float64, toneFreqs []float64, w WindowType, opts AnalyzeOptions) (*SpectralAnalysis, error) {
	if len(toneFreqs) == 0 {
		return nil, fmt.Errorf("dsp: Analyze requires at least one stimulus tone")
	}
	s, err := PowerSpectrum(x, sampleRate, w)
	if err != nil {
		return nil, err
	}
	return AnalyzeSpectrum(s, toneFreqs, opts)
}

// AnalyzeSpectrum is Analyze for a precomputed spectrum.
func AnalyzeSpectrum(s *Spectrum, toneFreqs []float64, opts AnalyzeOptions) (*SpectralAnalysis, error) {
	var st analyzeState
	return st.analyze(s, toneFreqs, opts)
}

// analyzeState holds the working buffers of one spectral analysis: the
// result struct with its measurement slices and the per-bin exclusion
// masks. The package-level AnalyzeSpectrum runs on a fresh state;
// SpectrumScratch keeps one and reuses it, so both paths execute the
// same arithmetic in the same order and are bit-identical by
// construction.
type analyzeState struct {
	res  SpectralAnalysis
	excl []bool
	fund []bool
}

// reset sizes the masks for bins bins and clears all reused state.
func (st *analyzeState) reset(bins int) {
	if cap(st.excl) < bins {
		st.excl = make([]bool, bins)
		st.fund = make([]bool, bins)
	}
	st.excl = st.excl[:bins]
	st.fund = st.fund[:bins]
	for i := range st.excl {
		st.excl[i] = false
		st.fund[i] = false
	}
	st.res = SpectralAnalysis{
		Fundamentals: st.res.Fundamentals[:0],
		Harmonics:    st.res.Harmonics[:0],
	}
}

// analyze computes the figures of merit into the state's buffers. The
// returned pointer aliases the state and is valid until its next use.
func (st *analyzeState) analyze(s *Spectrum, toneFreqs []float64, opts AnalyzeOptions) (*SpectralAnalysis, error) {
	if len(toneFreqs) == 0 {
		return nil, fmt.Errorf("dsp: AnalyzeSpectrum requires at least one stimulus tone")
	}
	nHarm := opts.Harmonics
	if nHarm <= 0 {
		nHarm = 5
	}
	spread := opts.resolveSpread(s.Window)

	st.reset(len(s.Power))
	res := &st.res
	markBins := func(k int) {
		for i := k - spread; i <= k+spread; i++ {
			if i >= 0 && i < len(s.Power) {
				st.excl[i] = true
			}
		}
	}
	if !opts.SkipDCExclusion {
		markBins(0)
	}

	for _, f := range toneFreqs {
		m := measureToneSpread(s, f, spread)
		res.Fundamentals = append(res.Fundamentals, m)
		res.SignalPower += m.Power
		markBins(m.Bin)
	}

	// Harmonics of the first fundamental, aliased into [0, fs/2].
	f1 := toneFreqs[0]
	for h := 2; h <= nHarm; h++ {
		fh := AliasFrequency(float64(h)*f1, s.SampleRate)
		k := s.Bin(fh)
		if k < len(st.excl) && st.excl[k] {
			continue
		}
		m := measureToneSpread(s, fh, spread)
		res.Harmonics = append(res.Harmonics, m)
		res.DistortionPower += m.Power
		markBins(k)
	}

	// Everything else is noise; also find the worst spur among
	// non-fundamental bins (harmonics count as spurs for SFDR).
	worstSpurPower := 0.0
	worstSpurBin := -1
	for _, m := range res.Fundamentals {
		for i := m.Bin - spread; i <= m.Bin+spread; i++ {
			if i >= 0 && i < len(st.fund) {
				st.fund[i] = true
			}
		}
	}
	for k, p := range s.Power {
		if !st.excl[k] {
			res.NoisePower += p
		}
		if !st.fund[k] && k != 0 && p > worstSpurPower {
			worstSpurPower = p
			worstSpurBin = k
		}
	}
	if worstSpurBin >= 0 {
		res.WorstSpur = ToneMeasurement{
			Frequency: s.BinFrequency(worstSpurBin),
			Bin:       worstSpurBin,
			Power:     worstSpurPower,
			Amplitude: math.Sqrt(2 * worstSpurPower),
		}
	}

	res.SNR = DB(safeRatio(res.SignalPower, res.NoisePower))
	res.THD = DB(safeRatio(res.DistortionPower, res.SignalPower))
	res.SINAD = DB(safeRatio(res.SignalPower, res.NoisePower+res.DistortionPower))
	res.SFDR = DB(safeRatio(res.SignalPower, worstSpurPower))
	res.ENOB = (res.SINAD - 1.76) / 6.02
	nBins := 0
	for _, e := range st.excl {
		if !e {
			nBins++
		}
	}
	if nBins > 0 && res.NoisePower > 0 {
		res.NoiseFloorDB = DB(res.NoisePower / float64(nBins) / res.SignalPower)
	} else {
		res.NoiseFloorDB = math.Inf(-1)
	}
	return res, nil
}

func safeRatio(num, den float64) float64 {
	if den <= 0 {
		if num <= 0 {
			return 1
		}
		return math.Inf(1)
	}
	return num / den
}

// RMS returns the root-mean-square value of x.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(x)))
}

// Mean returns the arithmetic mean of x (the DC level of a record).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// PeakAbs returns the largest absolute sample value in x.
func PeakAbs(x []float64) float64 {
	var peak float64
	for _, v := range x {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	return peak
}

// CoherentBin returns a stimulus frequency that places exactly `cycles`
// periods in a record of n samples at sampleRate — the coherent-sampling
// condition that makes tones land on FFT bins. Choosing cycles odd (and
// ideally mutually prime with n) exercises all quantizer codes.
func CoherentBin(sampleRate float64, n, cycles int) float64 {
	return float64(cycles) * sampleRate / float64(n)
}

// PhaseAt returns the phase in radians of the spectrum of real record x
// at bin k, computed via Goertzel. Useful for group-delay and offset
// tests that need phase as well as magnitude.
func PhaseAt(x []float64, k int) float64 {
	c := Goertzel(x, k)
	return math.Atan2(imag(c), real(c))
}
