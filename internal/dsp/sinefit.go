package dsp

import (
	"fmt"
	"math"
)

// SineFitResult is an IEEE-1057-style sine-wave fit: the record is
// modelled as Amplitude·cos(2π·Frequency·t + Phase) + Offset.
type SineFitResult struct {
	// Amplitude is the fitted sine amplitude (>= 0).
	Amplitude float64
	// Phase is the fitted phase in radians.
	Phase float64
	// Offset is the fitted DC level.
	Offset float64
	// Frequency is the fitted (or given) frequency in Hz.
	Frequency float64
	// RMSResidual is the RMS of the fit residual — the record's total
	// noise-plus-distortion under the sine model.
	RMSResidual float64
}

// SineFit3 performs the three-parameter (known-frequency) sine fit of
// IEEE Std 1057: a closed-form least-squares solve for the in-phase,
// quadrature and DC components.
func SineFit3(x []float64, sampleRate, freq float64) (SineFitResult, error) {
	if len(x) < 4 {
		return SineFitResult{}, fmt.Errorf("dsp: sine fit needs at least 4 samples")
	}
	if sampleRate <= 0 || freq <= 0 {
		return SineFitResult{}, fmt.Errorf("dsp: sine fit needs positive rates")
	}
	w := 2 * math.Pi * freq / sampleRate
	// Normal equations for [a·cos + b·sin + c].
	var scc, sss, scs, sc, ss float64
	var sxc, sxs, sx float64
	for i, v := range x {
		cth := math.Cos(w * float64(i))
		sth := math.Sin(w * float64(i))
		scc += cth * cth
		sss += sth * sth
		scs += cth * sth
		sc += cth
		ss += sth
		sxc += v * cth
		sxs += v * sth
		sx += v
	}
	m := [][]float64{
		{scc, scs, sc, sxc},
		{scs, sss, ss, sxs},
		{sc, ss, float64(len(x)), sx},
	}
	sol, err := solveLinear(m)
	if err != nil {
		return SineFitResult{}, err
	}
	return finishFit(x, sampleRate, freq, sol[0], sol[1], sol[2]), nil
}

// SineFit4 performs the four-parameter fit: frequency is refined by
// Gauss-Newton iterations starting from freqGuess, re-solving the
// linearized system each round (IEEE Std 1057 §4.1.4.3).
func SineFit4(x []float64, sampleRate, freqGuess float64, iters int) (SineFitResult, error) {
	if iters <= 0 {
		iters = 8
	}
	res, err := SineFit3(x, sampleRate, freqGuess)
	if err != nil {
		return SineFitResult{}, err
	}
	// Gauss-Newton only converges from within about one FFT bin of
	// the true frequency. If the initial fit explains little of the
	// record's energy, re-seed from the interpolated spectrum peak.
	if res.RMSResidual > 0.7*RMS(x) {
		if f0, ok := peakFrequency(x, sampleRate); ok {
			if r2, err := SineFit3(x, sampleRate, f0); err == nil && r2.RMSResidual < res.RMSResidual {
				res = r2
				freqGuess = f0
			}
		}
	}
	w := 2 * math.Pi * freqGuess / sampleRate
	a := res.Amplitude * math.Cos(res.Phase)
	b := -res.Amplitude * math.Sin(res.Phase)
	c := res.Offset
	for it := 0; it < iters; it++ {
		// Design matrix columns: cos, sin, 1, t·(-a·sin + b·cos).
		var m [4][5]float64
		for i, v := range x {
			ti := float64(i)
			cth := math.Cos(w * ti)
			sth := math.Sin(w * ti)
			cols := [4]float64{cth, sth, 1, ti * (-a*sth + b*cth)}
			for r := 0; r < 4; r++ {
				for q := 0; q < 4; q++ {
					m[r][q] += cols[r] * cols[q]
				}
				m[r][4] += cols[r] * v
			}
		}
		rows := make([][]float64, 4)
		for r := range rows {
			rows[r] = m[r][:]
		}
		sol, err := solveLinear(rows)
		if err != nil {
			return SineFitResult{}, err
		}
		a, b, c = sol[0], sol[1], sol[2]
		w += sol[3]
		if w <= 0 {
			return SineFitResult{}, fmt.Errorf("dsp: sine fit diverged to non-positive frequency")
		}
		if math.Abs(sol[3]) < 1e-14*w {
			break
		}
	}
	freq := w * sampleRate / (2 * math.Pi)
	return finishFit(x, sampleRate, freq, a, b, c), nil
}

// peakFrequency estimates the dominant tone frequency by parabolic
// interpolation of the windowed spectrum peak.
func peakFrequency(x []float64, sampleRate float64) (float64, bool) {
	s, err := PowerSpectrum(x, sampleRate, Hann)
	if err != nil {
		return 0, false
	}
	k := s.PeakBin(1, len(s.Power)-2)
	if k <= 0 || k >= len(s.Power)-1 || s.Power[k] <= 0 {
		return 0, false
	}
	la := DB(s.Power[k-1])
	lb := DB(s.Power[k])
	lc := DB(s.Power[k+1])
	den := la - 2*lb + lc
	delta := 0.0
	if den != 0 {
		delta = 0.5 * (la - lc) / den
	}
	return (float64(k) + delta) * sampleRate / float64(s.NFFT), true
}

// finishFit converts (a, b, c) to amplitude/phase form and computes
// the residual.
func finishFit(x []float64, sampleRate, freq, a, b, c float64) SineFitResult {
	w := 2 * math.Pi * freq / sampleRate
	amp := math.Hypot(a, b)
	// a·cos(wt) + b·sin(wt) = amp·cos(wt + φ), φ = atan2(−b, a).
	phase := math.Atan2(-b, a)
	var ss float64
	for i, v := range x {
		fit := a*math.Cos(w*float64(i)) + b*math.Sin(w*float64(i)) + c
		d := v - fit
		ss += d * d
	}
	return SineFitResult{
		Amplitude:   amp,
		Phase:       phase,
		Offset:      c,
		Frequency:   freq,
		RMSResidual: math.Sqrt(ss / float64(len(x))),
	}
}

// solveLinear solves the augmented system rows·[x|rhs] by Gaussian
// elimination with partial pivoting. Each row has n+1 entries.
func solveLinear(rows [][]float64) ([]float64, error) {
	n := len(rows)
	for col := 0; col < n; col++ {
		// Pivot.
		best := col
		for r := col + 1; r < n; r++ {
			if math.Abs(rows[r][col]) > math.Abs(rows[best][col]) {
				best = r
			}
		}
		rows[col], rows[best] = rows[best], rows[col]
		p := rows[col][col]
		if math.Abs(p) < 1e-300 {
			return nil, fmt.Errorf("dsp: singular system in sine fit")
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := rows[r][col] / p
			for q := col; q <= n; q++ {
				rows[r][q] -= f * rows[col][q]
			}
		}
	}
	sol := make([]float64, n)
	for r := 0; r < n; r++ {
		sol[r] = rows[r][n] / rows[r][r]
	}
	return sol, nil
}
