package dsp

import (
	"math"
	"testing"
)

func TestWindowLengths(t *testing.T) {
	for _, wt := range []WindowType{Rectangular, Hann, Hamming, Blackman, BlackmanHarris, FlatTop} {
		for _, n := range []int{1, 2, 7, 64} {
			w := Window(wt, n)
			if len(w) != n {
				t.Errorf("%v: len = %d, want %d", wt, len(w), n)
			}
		}
	}
}

func TestWindowPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	Window(Hann, 0)
}

func TestWindowPanicsOnUnknownType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown type")
		}
	}()
	Window(WindowType(99), 8)
}

func TestWindowSymmetry(t *testing.T) {
	for _, wt := range []WindowType{Hann, Hamming, Blackman, BlackmanHarris, FlatTop} {
		w := Window(wt, 65)
		for i := 0; i < len(w)/2; i++ {
			if math.Abs(w[i]-w[len(w)-1-i]) > 1e-12 {
				t.Errorf("%v: asymmetric at %d: %g vs %g", wt, i, w[i], w[len(w)-1-i])
			}
		}
	}
}

func TestHannEndpointsAndPeak(t *testing.T) {
	w := Window(Hann, 33)
	if math.Abs(w[0]) > 1e-12 || math.Abs(w[32]) > 1e-12 {
		t.Errorf("Hann endpoints not zero: %g, %g", w[0], w[32])
	}
	if math.Abs(w[16]-1) > 1e-12 {
		t.Errorf("Hann center = %g, want 1", w[16])
	}
}

func TestRectangularIsAllOnes(t *testing.T) {
	w := Window(Rectangular, 16)
	for i, v := range w {
		if v != 1 {
			t.Fatalf("Rectangular[%d] = %g", i, v)
		}
	}
	if g := CoherentGain(w); g != 1 {
		t.Errorf("CoherentGain(rect) = %g, want 1", g)
	}
	if nb := NoiseBandwidth(w); math.Abs(nb-1) > 1e-12 {
		t.Errorf("NoiseBandwidth(rect) = %g, want 1", nb)
	}
}

func TestCoherentGainKnownValues(t *testing.T) {
	// Hann coherent gain tends to 0.5 for large N.
	w := Window(Hann, 4096)
	if g := CoherentGain(w); math.Abs(g-0.5) > 1e-3 {
		t.Errorf("Hann coherent gain = %g, want ~0.5", g)
	}
	// Hamming tends to 0.54.
	w = Window(Hamming, 4096)
	if g := CoherentGain(w); math.Abs(g-0.54) > 1e-3 {
		t.Errorf("Hamming coherent gain = %g, want ~0.54", g)
	}
}

func TestNoiseBandwidthKnownValues(t *testing.T) {
	// Hann ENBW = 1.5 bins.
	w := Window(Hann, 8192)
	if nb := NoiseBandwidth(w); math.Abs(nb-1.5) > 1e-2 {
		t.Errorf("Hann ENBW = %g, want ~1.5", nb)
	}
	// Blackman-Harris 4-term ENBW ≈ 2.0044.
	w = Window(BlackmanHarris, 8192)
	if nb := NoiseBandwidth(w); math.Abs(nb-2.0044) > 1e-2 {
		t.Errorf("Blackman-Harris ENBW = %g, want ~2.0044", nb)
	}
}

func TestCoherentGainEmpty(t *testing.T) {
	if CoherentGain(nil) != 0 {
		t.Error("CoherentGain(nil) != 0")
	}
	if NoiseBandwidth(nil) != 0 {
		t.Error("NoiseBandwidth(nil) != 0")
	}
}

func TestNoiseBandwidthZeroSumWindow(t *testing.T) {
	if nb := NoiseBandwidth([]float64{1, -1}); !math.IsInf(nb, 1) {
		t.Errorf("NoiseBandwidth of zero-sum window = %g, want +inf", nb)
	}
}

func TestApplyWindow(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	w := []float64{0.5, 0.5, 0.5, 0.5}
	out, err := ApplyWindow(x, w)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1, 1.5, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %g, want %g", i, out[i], want[i])
		}
	}
	// Original untouched.
	if x[0] != 1 {
		t.Fatal("ApplyWindow modified its input")
	}
}

func TestApplyWindowLengthMismatch(t *testing.T) {
	if _, err := ApplyWindow([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestWindowTypeString(t *testing.T) {
	cases := map[WindowType]string{
		Rectangular:    "rectangular",
		Hann:           "hann",
		Hamming:        "hamming",
		Blackman:       "blackman",
		BlackmanHarris: "blackman-harris",
		FlatTop:        "flat-top",
		WindowType(42): "WindowType(42)",
	}
	for wt, want := range cases {
		if got := wt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(wt), got, want)
		}
	}
}
