package dsp

import (
	"fmt"
	"math"
	"sort"
)

// Spectrum is a single-sided power spectrum of a real signal. Bin k
// covers frequency k·SampleRate/NFFT. Power[k] holds the total signal
// power attributed to bin k (both the +f and -f halves folded), so a
// full-scale sine of amplitude A contributes A²/2 at its bin under
// coherent sampling with a rectangular window.
type Spectrum struct {
	// Power holds per-bin power, length NFFT/2+1.
	Power []float64
	// SampleRate is the sampling frequency in Hz used to label bins.
	SampleRate float64
	// NFFT is the transform length the spectrum was computed with.
	NFFT int
	// Window records the window applied before transforming.
	Window WindowType
	// ProcessingGain corrects measured powers for the window's
	// coherent gain so on-bin tone powers are window-independent.
	ProcessingGain float64
	// ENBW is the window's equivalent noise bandwidth in bins; the
	// power of a tone summed over its leakage skirt is overcounted by
	// exactly this factor.
	ENBW float64
}

// PowerSpectrum estimates the single-sided power spectrum of x using
// window w. The input is zero-padded to a power of two. Tone powers
// are corrected for the window's coherent gain; noise powers remain
// scaled by the window's noise bandwidth (callers that need calibrated
// noise divide by NoiseBandwidth).
func PowerSpectrum(x []float64, sampleRate float64, w WindowType) (*Spectrum, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("dsp: PowerSpectrum of empty signal")
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("dsp: PowerSpectrum sample rate %g must be positive", sampleRate)
	}
	win := Window(w, len(x))
	xw, err := ApplyWindow(x, win)
	if err != nil {
		return nil, err
	}
	spec, err := FFTReal(xw)
	if err != nil {
		return nil, err
	}
	n := len(spec)
	cg := CoherentGain(win)
	if cg == 0 {
		return nil, fmt.Errorf("dsp: window %v has zero coherent gain", w)
	}
	// The zero padding dilutes the coherent gain by len(x)/n.
	scale := 1 / (cg * float64(len(x)))
	half := n/2 + 1
	p := make([]float64, half)
	for k := 0; k < half; k++ {
		re, im := real(spec[k]), imag(spec[k])
		mag2 := (re*re + im*im) * scale * scale
		if k == 0 || k == n/2 {
			p[k] = mag2
		} else {
			p[k] = 2 * mag2
		}
	}
	return &Spectrum{
		Power:          p,
		SampleRate:     sampleRate,
		NFFT:           n,
		Window:         w,
		ProcessingGain: cg,
		ENBW:           NoiseBandwidth(win),
	}, nil
}

// BinFrequency returns the center frequency of bin k in Hz.
func (s *Spectrum) BinFrequency(k int) float64 {
	return float64(k) * s.SampleRate / float64(s.NFFT)
}

// Bin returns the bin index whose center frequency is closest to f.
// Frequencies above Nyquist are aliased into the first Nyquist zone,
// mirroring how a sampled system observes them.
func (s *Spectrum) Bin(f float64) int {
	f = AliasFrequency(f, s.SampleRate)
	k := int(math.Round(f * float64(s.NFFT) / s.SampleRate))
	if k < 0 {
		k = 0
	}
	if k > len(s.Power)-1 {
		k = len(s.Power) - 1
	}
	return k
}

// AliasFrequency folds frequency f (Hz) into the first Nyquist zone
// [0, fs/2] of a system sampling at fs.
func AliasFrequency(f, fs float64) float64 {
	if fs <= 0 {
		return f
	}
	f = math.Abs(f)
	f = math.Mod(f, fs)
	if f > fs/2 {
		f = fs - f
	}
	return f
}

// TotalPower returns the sum of all bin powers — by Parseval's theorem
// the mean-square value of the (windowed, gain-corrected) signal.
func (s *Spectrum) TotalPower() float64 {
	var sum float64
	for _, p := range s.Power {
		sum += p
	}
	return sum
}

// BandPower sums bin powers for frequencies in [fLo, fHi] inclusive.
func (s *Spectrum) BandPower(fLo, fHi float64) float64 {
	if fLo > fHi {
		fLo, fHi = fHi, fLo
	}
	kLo := s.Bin(fLo)
	kHi := s.Bin(fHi)
	var sum float64
	for k := kLo; k <= kHi && k < len(s.Power); k++ {
		sum += s.Power[k]
	}
	return sum
}

// TonePower measures the power of a tone near frequency f by summing
// a small neighborhood of ±spread bins around the nearest bin,
// capturing leakage skirts for windowed, slightly off-bin tones.
func (s *Spectrum) TonePower(f float64, spread int) float64 {
	k := s.Bin(f)
	lo, hi := k-spread, k+spread
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.Power)-1 {
		hi = len(s.Power) - 1
	}
	var sum float64
	for i := lo; i <= hi; i++ {
		sum += s.Power[i]
	}
	return sum
}

// PeakBin returns the index of the largest-power bin in [kLo, kHi],
// excluding DC when kLo == 0 and the range has other bins.
func (s *Spectrum) PeakBin(kLo, kHi int) int {
	if kLo < 0 {
		kLo = 0
	}
	if kHi > len(s.Power)-1 {
		kHi = len(s.Power) - 1
	}
	if kLo == 0 && kHi > 0 {
		kLo = 1
	}
	best := kLo
	for k := kLo; k <= kHi; k++ {
		if s.Power[k] > s.Power[best] {
			best = k
		}
	}
	return best
}

// NoiseFloor estimates the median bin power over the spectrum with the
// given bins excluded (stimulus tones, harmonics, DC). The median is
// robust to the excluded set missing a few spurs. Callers estimating
// floors per record in a streaming loop use SpectrumScratch.NoiseFloor,
// which reuses one sort buffer instead of allocating per call.
func (s *Spectrum) NoiseFloor(exclude map[int]bool) float64 {
	v, _ := noiseFloorMedian(s.Power, exclude, make([]float64, 0, len(s.Power)))
	return v
}

// noiseFloorMedian is the shared implementation of the allocating and
// scratch-backed noise-floor estimators: it gathers the non-excluded
// bin powers into buf (resliced to empty, grown if needed), sorts them,
// and returns the median together with the possibly-grown buffer.
func noiseFloorMedian(power []float64, exclude map[int]bool, buf []float64) (float64, []float64) {
	vals := buf[:0]
	for k, p := range power {
		if exclude[k] {
			continue
		}
		vals = append(vals, p)
	}
	if len(vals) == 0 {
		return 0, vals
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid], vals
	}
	return 0.5 * (vals[mid-1] + vals[mid]), vals
}

// DB converts a power ratio to decibels; zero or negative ratios map to
// -inf, which keeps comparisons well-defined.
func DB(powerRatio float64) float64 {
	if powerRatio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(powerRatio)
}

// FromDB converts decibels to a power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// AmplitudeDB converts an amplitude (voltage) ratio to decibels.
func AmplitudeDB(ampRatio float64) float64 {
	if ampRatio <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(ampRatio)
}

// FromAmplitudeDB converts decibels to an amplitude (voltage) ratio.
func FromAmplitudeDB(db float64) float64 {
	return math.Pow(10, db/20)
}

// DBm converts a power in watts to dBm.
func DBm(watts float64) float64 {
	if watts <= 0 {
		return math.Inf(-1)
	}
	return 10*math.Log10(watts) + 30
}

// FromDBm converts dBm to watts.
func FromDBm(dbm float64) float64 {
	return math.Pow(10, (dbm-30)/10)
}

// VoltsToDBm converts a sine amplitude in volts across impedance r to
// dBm (power = A²/(2r)).
func VoltsToDBm(amp, r float64) float64 {
	if r <= 0 {
		return math.Inf(-1)
	}
	return DBm(amp * amp / (2 * r))
}

// DBmToVolts converts dBm across impedance r to sine amplitude volts.
func DBmToVolts(dbm, r float64) float64 {
	return math.Sqrt(2 * r * FromDBm(dbm))
}
