package dsp

import (
	"math/rand"
	"testing"
)

// The Allocating/Scratch benchmark pairs below are the dsp half of the
// recorded perf trajectory (BENCH_dsp.json, written by scripts/check.sh
// via cmd/benchrecord). Each pair runs the same measurement through the
// package-level function and its scratch-backed variant; the scratch
// side must report 0 allocs/op, and the regression gate fails the
// check run if ns/op drifts >15% or any allocs/op grows against the
// recorded baseline.

func benchRecord(n int) []float64 {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func benchScratch(b *testing.B, n int, w WindowType) *SpectrumScratch {
	b.Helper()
	sc, err := NewSpectrumScratch(n, w)
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

func BenchmarkPowerSpectrumAllocating1024(b *testing.B) {
	x := benchRecord(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PowerSpectrum(x, 1e6, BlackmanHarris); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPowerSpectrumScratch1024(b *testing.B) {
	x := benchRecord(1024)
	sc := benchScratch(b, 1024, BlackmanHarris)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.PowerSpectrum(x, 1e6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWelchAllocating(b *testing.B) {
	x := benchRecord(8192)
	opts := WelchOptions{SegmentLength: 1024, Overlap: 0.5, Window: Hann}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Welch(x, 1e6, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWelchScratch(b *testing.B) {
	x := benchRecord(8192)
	opts := WelchOptions{SegmentLength: 1024, Overlap: 0.5, Window: Hann}
	sc := benchScratch(b, 1024, Hann)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Welch(x, 1e6, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeAllocating4096(b *testing.B) {
	n := 4096
	fs := 1e6
	f1 := CoherentBin(fs, n, 401)
	f2 := CoherentBin(fs, n, 431)
	x := makeTwoTone(n, fs, f1, f2, 1, 1, 0.001, 3)
	tones := []float64{f1, f2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(x, fs, tones, Hann, AnalyzeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeScratch4096(b *testing.B) {
	n := 4096
	fs := 1e6
	f1 := CoherentBin(fs, n, 401)
	f2 := CoherentBin(fs, n, 431)
	x := makeTwoTone(n, fs, f1, f2, 1, 1, 0.001, 3)
	tones := []float64{f1, f2}
	sc := benchScratch(b, n, Hann)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Analyze(x, fs, tones, AnalyzeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNoiseFloorAllocating(b *testing.B) {
	x := benchRecord(4096)
	s, err := PowerSpectrum(x, 1e6, Hann)
	if err != nil {
		b.Fatal(err)
	}
	exclude := map[int]bool{0: true, 401: true, 431: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.NoiseFloor(exclude)
	}
}

func BenchmarkNoiseFloorScratch(b *testing.B) {
	x := benchRecord(4096)
	s, err := PowerSpectrum(x, 1e6, Hann)
	if err != nil {
		b.Fatal(err)
	}
	sc := benchScratch(b, 4096, Hann)
	exclude := map[int]bool{0: true, 401: true, 431: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.NoiseFloor(s, exclude)
	}
}

func BenchmarkCoherentAverageAllocating(b *testing.B) {
	x := benchRecord(64 * 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CoherentAverage(x, 256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoherentAverageScratch(b *testing.B) {
	x := benchRecord(64 * 256)
	sc := benchScratch(b, 256, Rectangular)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.CoherentAverage(x); err != nil {
			b.Fatal(err)
		}
	}
}
