package dsp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestSpectrumScratchMatchesPowerSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 64, 100, 1024} {
		for _, w := range []WindowType{Rectangular, Hann, BlackmanHarris} {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			want, err := PowerSpectrum(x, 1e6, w)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := NewSpectrumScratch(n, w)
			if err != nil {
				t.Fatal(err)
			}
			// Run twice: the second pass exercises buffer reuse.
			for pass := 0; pass < 2; pass++ {
				got, err := sc.PowerSpectrum(x, 1e6)
				if err != nil {
					t.Fatal(err)
				}
				if got.NFFT != want.NFFT || got.SampleRate != want.SampleRate ||
					got.Window != want.Window ||
					got.ProcessingGain != want.ProcessingGain || got.ENBW != want.ENBW {
					t.Fatalf("n=%d w=%v pass %d: header mismatch %+v vs %+v",
						n, w, pass, got, want)
				}
				if len(got.Power) != len(want.Power) {
					t.Fatalf("n=%d w=%v: %d bins, want %d", n, w, len(got.Power), len(want.Power))
				}
				for k := range want.Power {
					if got.Power[k] != want.Power[k] {
						t.Fatalf("n=%d w=%v pass %d bin %d: %g != %g (must be bit-identical)",
							n, w, pass, k, got.Power[k], want.Power[k])
					}
				}
			}
		}
	}
}

func TestSpectrumScratchValidation(t *testing.T) {
	if _, err := NewSpectrumScratch(0, Hann); err == nil {
		t.Error("zero length accepted")
	}
	sc, err := NewSpectrumScratch(64, Hann)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Len() != 64 {
		t.Errorf("Len = %d, want 64", sc.Len())
	}
	if _, err := sc.PowerSpectrum(make([]float64, 65), 1e6); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := sc.PowerSpectrum(make([]float64, 64), 0); err == nil {
		t.Error("zero sample rate accepted")
	}
}

func TestSpectrumScratchAllocFree(t *testing.T) {
	sc, err := NewSpectrumScratch(1024, BlackmanHarris)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 1024)
	for i := range x {
		x[i] = float64(i % 17)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := sc.PowerSpectrum(x, 1e6); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("scratch PowerSpectrum allocates %.1f objects per call, want 0", allocs)
	}
}

// sameFloat demands bitwise equality including the sign of zero, the
// contract every scratch variant carries against its allocating
// counterpart.
func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func compareSpectra(t *testing.T, label string, got, want *Spectrum) {
	t.Helper()
	if got.NFFT != want.NFFT || got.SampleRate != want.SampleRate ||
		got.Window != want.Window ||
		got.ProcessingGain != want.ProcessingGain || got.ENBW != want.ENBW {
		t.Fatalf("%s: header mismatch %+v vs %+v", label, got, want)
	}
	if len(got.Power) != len(want.Power) {
		t.Fatalf("%s: %d bins, want %d", label, len(got.Power), len(want.Power))
	}
	for k := range want.Power {
		if !sameFloat(got.Power[k], want.Power[k]) {
			t.Fatalf("%s bin %d: %g != %g (must be bit-identical)",
				label, k, got.Power[k], want.Power[k])
		}
	}
}

func TestScratchWelchMatchesWelch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for _, w := range []WindowType{Rectangular, Hann, BlackmanHarris} {
		for _, overlap := range []float64{0, 0.5, 0.6, 0.9} {
			opts := WelchOptions{SegmentLength: 512, Overlap: overlap, Window: w}
			want, err := Welch(x, 1e6, opts)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := NewSpectrumScratch(512, w)
			if err != nil {
				t.Fatal(err)
			}
			// Run twice: the second pass exercises accumulator reuse.
			for pass := 0; pass < 2; pass++ {
				got, err := sc.Welch(x, 1e6, opts)
				if err != nil {
					t.Fatal(err)
				}
				compareSpectra(t, fmt.Sprintf("w=%v overlap=%g pass=%d", w, overlap, pass), got, want)
			}
		}
	}
}

func TestScratchWelchValidation(t *testing.T) {
	sc, err := NewSpectrumScratch(256, Hann)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 1024)
	if _, err := sc.Welch(x, 1e6, WelchOptions{SegmentLength: 512, Window: Hann}); err == nil {
		t.Error("segment/scratch length mismatch accepted")
	}
	if _, err := sc.Welch(x, 1e6, WelchOptions{SegmentLength: 256, Window: Blackman}); err == nil {
		t.Error("window mismatch accepted")
	}
	if _, err := sc.Welch(x, 1e6, WelchOptions{SegmentLength: 256, Window: Hann, Overlap: 0.95}); err == nil {
		t.Error("out-of-range overlap accepted")
	}
	if _, err := sc.Welch(x[:100], 1e6, WelchOptions{SegmentLength: 256, Window: Hann}); err == nil {
		t.Error("record shorter than segment accepted")
	}
	// A non-power-of-two scratch cannot Welch (the package function
	// rejects such segment lengths too).
	odd, err := NewSpectrumScratch(100, Hann)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := odd.Welch(x, 1e6, WelchOptions{SegmentLength: 100, Window: Hann}); err == nil {
		t.Error("non-power-of-two segment accepted")
	}
}

func TestScratchCoherentAverageMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 4*256+33) // trailing partial period is dropped
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, err := CoherentAverage(x, 256)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewSpectrumScratch(256, Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		got, err := sc.CoherentAverage(x)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("pass %d: length %d, want %d", pass, len(got), len(want))
		}
		for i := range want {
			if !sameFloat(got[i], want[i]) {
				t.Fatalf("pass %d sample %d: %g != %g (must be bit-identical)",
					pass, i, got[i], want[i])
			}
		}
	}
	if _, err := sc.CoherentAverage(x[:100]); err == nil {
		t.Error("record shorter than one period accepted")
	}
}

func TestScratchNoiseFloorMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 1024)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	s, err := PowerSpectrum(x, 1e6, Hann)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewSpectrumScratch(1024, Hann)
	if err != nil {
		t.Fatal(err)
	}
	excludes := []map[int]bool{
		nil,
		{0: true, 50: true, 51: true},
		allBins(len(s.Power)),
	}
	for i, excl := range excludes {
		want := s.NoiseFloor(excl)
		for pass := 0; pass < 2; pass++ {
			if got := sc.NoiseFloor(s, excl); !sameFloat(got, want) {
				t.Fatalf("exclude set %d pass %d: %g != %g (must be bit-identical)",
					i, pass, got, want)
			}
		}
	}
}

func allBins(n int) map[int]bool {
	m := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		m[i] = true
	}
	return m
}

// compareAnalyses checks every figure of merit bitwise; it compares
// slices elementwise so the scratch's reused backing arrays (extra
// capacity, non-nil empties) still count as equal.
func compareAnalyses(t *testing.T, label string, got, want *SpectralAnalysis) {
	t.Helper()
	compareTones := func(part string, g, w []ToneMeasurement) {
		t.Helper()
		if len(g) != len(w) {
			t.Fatalf("%s: %d %s, want %d", label, len(g), part, len(w))
		}
		for i := range w {
			if g[i].Bin != w[i].Bin || !sameFloat(g[i].Frequency, w[i].Frequency) ||
				!sameFloat(g[i].Power, w[i].Power) || !sameFloat(g[i].Amplitude, w[i].Amplitude) {
				t.Fatalf("%s %s[%d]: %+v != %+v (must be bit-identical)", label, part, i, g[i], w[i])
			}
		}
	}
	compareTones("fundamentals", got.Fundamentals, want.Fundamentals)
	compareTones("harmonics", got.Harmonics, want.Harmonics)
	scalars := []struct {
		name string
		g, w float64
	}{
		{"SignalPower", got.SignalPower, want.SignalPower},
		{"NoisePower", got.NoisePower, want.NoisePower},
		{"DistortionPower", got.DistortionPower, want.DistortionPower},
		{"SNR", got.SNR, want.SNR},
		{"THD", got.THD, want.THD},
		{"SINAD", got.SINAD, want.SINAD},
		{"SFDR", got.SFDR, want.SFDR},
		{"ENOB", got.ENOB, want.ENOB},
		{"NoiseFloorDB", got.NoiseFloorDB, want.NoiseFloorDB},
		{"WorstSpur.Power", got.WorstSpur.Power, want.WorstSpur.Power},
	}
	for _, sc := range scalars {
		if !sameFloat(sc.g, sc.w) {
			t.Fatalf("%s %s: %g != %g (must be bit-identical)", label, sc.name, sc.g, sc.w)
		}
	}
	if got.WorstSpur.Bin != want.WorstSpur.Bin {
		t.Fatalf("%s WorstSpur.Bin: %d != %d", label, got.WorstSpur.Bin, want.WorstSpur.Bin)
	}
}

func TestScratchAnalyzeMatchesAnalyze(t *testing.T) {
	n := 1024
	fs := 1e6
	f1 := CoherentBin(fs, n, 33)
	f2 := CoherentBin(fs, n, 47)
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		x[i] = math.Sin(2*math.Pi*f1*ti) + 0.5*math.Sin(2*math.Pi*f2*ti) + 0.01*rng.NormFloat64()
	}
	optsList := []AnalyzeOptions{
		{},
		{Harmonics: 7},
		{ToneSpread: ToneSpreadNone},
		{ToneSpread: 2},
		{SkipDCExclusion: true},
	}
	for _, w := range []WindowType{Rectangular, Hann, BlackmanHarris} {
		sc, err := NewSpectrumScratch(n, w)
		if err != nil {
			t.Fatal(err)
		}
		for oi, opts := range optsList {
			want, err := Analyze(x, fs, []float64{f1, f2}, w, opts)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("w=%v opts=%d", w, oi)
			// Run twice: the second pass exercises buffer reuse, and an
			// AnalyzeSpectrum pass covers the precomputed-spectrum entry.
			for pass := 0; pass < 2; pass++ {
				got, err := sc.Analyze(x, fs, []float64{f1, f2}, opts)
				if err != nil {
					t.Fatal(err)
				}
				compareAnalyses(t, label, got, want)
			}
			sp, err := sc.PowerSpectrum(x, fs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sc.AnalyzeSpectrum(sp, []float64{f1, f2}, opts)
			if err != nil {
				t.Fatal(err)
			}
			compareAnalyses(t, label+" (AnalyzeSpectrum)", got, want)
		}
	}
}

func TestScratchAnalyzeValidation(t *testing.T) {
	sc, err := NewSpectrumScratch(64, Hann)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Analyze(make([]float64, 64), 1e6, nil, AnalyzeOptions{}); err == nil {
		t.Error("empty tone list accepted")
	}
	if _, err := sc.Analyze(make([]float64, 32), 1e6, []float64{10}, AnalyzeOptions{}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestStreamingScratchAllocFree pins the tentpole contract: every
// scratch-backed stage of the record → window → FFT → power spectrum →
// figures-of-merit path performs zero allocations per call in steady
// state (the warm-up call inside AllocsPerRun absorbs the lazy buffer
// growth).
func TestStreamingScratchAllocFree(t *testing.T) {
	n := 1024
	fs := 1e6
	f1 := CoherentBin(fs, n, 33)
	tones := []float64{f1}
	x := make([]float64, 4*n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * f1 * float64(i) / fs)
	}
	sc, err := NewSpectrumScratch(n, Hann)
	if err != nil {
		t.Fatal(err)
	}
	exclude := map[int]bool{0: true, 33: true}
	welchOpts := WelchOptions{SegmentLength: n, Overlap: 0.5, Window: Hann}
	steps := []struct {
		name string
		fn   func() error
	}{
		{"CoherentAverage", func() error { _, err := sc.CoherentAverage(x); return err }},
		{"PowerSpectrum", func() error { _, err := sc.PowerSpectrum(x[:n], fs); return err }},
		{"Welch", func() error { _, err := sc.Welch(x, fs, welchOpts); return err }},
		{"Analyze", func() error { _, err := sc.Analyze(x[:n], fs, tones, AnalyzeOptions{}); return err }},
		{"NoiseFloor", func() error { sc.NoiseFloor(&sc.spec, exclude); return nil }},
	}
	for _, step := range steps {
		allocs := testing.AllocsPerRun(50, func() {
			if err := step.fn(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("scratch %s allocates %.1f objects per call, want 0", step.name, allocs)
		}
	}
}
