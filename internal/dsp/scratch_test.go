package dsp

import (
	"math/rand"
	"testing"
)

func TestSpectrumScratchMatchesPowerSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 64, 100, 1024} {
		for _, w := range []WindowType{Rectangular, Hann, BlackmanHarris} {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			want, err := PowerSpectrum(x, 1e6, w)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := NewSpectrumScratch(n, w)
			if err != nil {
				t.Fatal(err)
			}
			// Run twice: the second pass exercises buffer reuse.
			for pass := 0; pass < 2; pass++ {
				got, err := sc.PowerSpectrum(x, 1e6)
				if err != nil {
					t.Fatal(err)
				}
				if got.NFFT != want.NFFT || got.SampleRate != want.SampleRate ||
					got.Window != want.Window ||
					got.ProcessingGain != want.ProcessingGain || got.ENBW != want.ENBW {
					t.Fatalf("n=%d w=%v pass %d: header mismatch %+v vs %+v",
						n, w, pass, got, want)
				}
				if len(got.Power) != len(want.Power) {
					t.Fatalf("n=%d w=%v: %d bins, want %d", n, w, len(got.Power), len(want.Power))
				}
				for k := range want.Power {
					if got.Power[k] != want.Power[k] {
						t.Fatalf("n=%d w=%v pass %d bin %d: %g != %g (must be bit-identical)",
							n, w, pass, k, got.Power[k], want.Power[k])
					}
				}
			}
		}
	}
}

func TestSpectrumScratchValidation(t *testing.T) {
	if _, err := NewSpectrumScratch(0, Hann); err == nil {
		t.Error("zero length accepted")
	}
	sc, err := NewSpectrumScratch(64, Hann)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Len() != 64 {
		t.Errorf("Len = %d, want 64", sc.Len())
	}
	if _, err := sc.PowerSpectrum(make([]float64, 65), 1e6); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := sc.PowerSpectrum(make([]float64, 64), 0); err == nil {
		t.Error("zero sample rate accepted")
	}
}

func TestSpectrumScratchAllocFree(t *testing.T) {
	sc, err := NewSpectrumScratch(1024, BlackmanHarris)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 1024)
	for i := range x {
		x[i] = float64(i % 17)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := sc.PowerSpectrum(x, 1e6); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("scratch PowerSpectrum allocates %.1f objects per call, want 0", allocs)
	}
}
