package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Plan caches the bit-reversal permutation and twiddle factors for a
// fixed power-of-two FFT length. A Plan is immutable after creation
// and safe for concurrent use; Transform allocates nothing.
type Plan struct {
	n   int
	rev []int32
	// tw holds per-stage twiddle tables back to back: stage s (size
	// 2^(s+1)) occupies tw[2^s-1 : 2^(s+1)-1].
	tw []complex128
}

// NewPlan builds a plan for length n (a power of two).
func NewPlan(n int) (*Plan, error) {
	if !IsPowerOfTwo(n) {
		return nil, fmt.Errorf("dsp: plan length %d is not a power of two", n)
	}
	p := &Plan{n: n}
	p.rev = make([]int32, n)
	if n > 1 {
		shift := 64 - uint(bits.Len(uint(n-1)))
		for i := range p.rev {
			p.rev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
		}
	}
	p.tw = make([]complex128, n-1)
	idx := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		for k := 0; k < half; k++ {
			ang := step * float64(k)
			p.tw[idx] = complex(math.Cos(ang), math.Sin(ang))
			idx++
		}
	}
	return p, nil
}

// Len returns the plan's transform length.
func (p *Plan) Len() int { return p.n }

// Transform computes the in-place forward FFT of x using the cached
// tables. len(x) must equal the plan length.
func (p *Plan) Transform(x []complex128) error {
	if len(x) != p.n {
		return fmt.Errorf("dsp: plan length %d, input %d", p.n, len(x))
	}
	for i, j := range p.rev {
		if int(j) > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	idx := 0
	for size := 2; size <= p.n; size <<= 1 {
		half := size >> 1
		tw := p.tw[idx : idx+half]
		idx += half
		for start := 0; start < p.n; start += size {
			for k := 0; k < half; k++ {
				even := x[start+k]
				odd := x[start+k+half] * tw[k]
				x[start+k] = even + odd
				x[start+k+half] = even - odd
			}
		}
	}
	return nil
}

// planCache shares plans between callers; plans are immutable.
var planCache sync.Map // int -> *Plan

// SharedPlan returns the process-wide cached plan for length n (a
// power of two). Plans are immutable and safe to share between
// goroutines, so campaign workers key their scratch buffers off this
// cache instead of rebuilding twiddle tables per worker.
func SharedPlan(n int) (*Plan, error) {
	return cachedPlan(n)
}

// cachedPlan returns the shared plan for length n.
func cachedPlan(n int) (*Plan, error) {
	if v, ok := planCache.Load(n); ok {
		return v.(*Plan), nil
	}
	p, err := NewPlan(n)
	if err != nil {
		return nil, err
	}
	actual, _ := planCache.LoadOrStore(n, p)
	return actual.(*Plan), nil
}
