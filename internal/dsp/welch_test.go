package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestWelchValidation(t *testing.T) {
	x := make([]float64, 256)
	if _, err := Welch(x, 1e6, WelchOptions{SegmentLength: 100}); err == nil {
		t.Error("non-power-of-two segment accepted")
	}
	if _, err := Welch(x, 1e6, WelchOptions{SegmentLength: 512}); err == nil {
		t.Error("record shorter than segment accepted")
	}
	if _, err := Welch(x, 1e6, WelchOptions{SegmentLength: 64, Overlap: 0.95}); err == nil {
		t.Error("overlap 0.95 accepted")
	}
}

// TestWelchStepRounding pins the hop size (and the segment count it
// implies) for representative (n, overlap) pairs. Before the
// round-to-nearest fix the step was truncated, so n=512 Overlap=0.6
// hopped 204 samples (512·0.4 = 204.8000…01 in float64) and realized
// a higher overlap than requested.
func TestWelchStepRounding(t *testing.T) {
	cases := []struct {
		n       int
		overlap float64
		step    int
		xlen    int // record length for the pinned segment count
		segs    int
	}{
		{512, 0.6, 205, 2552, 10},  // truncation gave step 204 → 11 segments
		{512, 0.45, 282, 3332, 11}, // truncation gave step 281
		{512, 0.5, 256, 4096, 15},  // exact: must hop n/2
		{512, 0, 512, 4096, 8},     // no overlap: disjoint segments
		{1024, 0.75, 256, 4096, 13},
		{64, 0.9, 6, 256, 33},
		{2, 0.9, 1, 8, 7}, // rounds to 0, clamped to 1
	}
	for _, c := range cases {
		if got := welchStep(c.n, c.overlap); got != c.step {
			t.Errorf("welchStep(%d, %g) = %d, want %d", c.n, c.overlap, got, c.step)
		}
		segs := 0
		for start := 0; start+c.n <= c.xlen; start += welchStep(c.n, c.overlap) {
			segs++
		}
		if segs != c.segs {
			t.Errorf("n=%d overlap=%g xlen=%d: %d segments, want %d",
				c.n, c.overlap, c.xlen, segs, c.segs)
		}
	}
}

func TestWelchReducesNoiseVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	n := 1 << 15
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// Single-record estimate.
	single, err := PowerSpectrum(x[:512], 1e6, Hann)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := Welch(x, 1e6, WelchOptions{SegmentLength: 512, Overlap: 0.5, Window: Hann})
	if err != nil {
		t.Fatal(err)
	}
	varOf := func(s *Spectrum) float64 {
		// Relative variance of per-bin powers over the middle band.
		var mean, m2 float64
		nBins := 0
		for k := 10; k < len(s.Power)-10; k++ {
			mean += s.Power[k]
			nBins++
		}
		mean /= float64(nBins)
		for k := 10; k < len(s.Power)-10; k++ {
			d := s.Power[k] - mean
			m2 += d * d
		}
		return m2 / float64(nBins) / (mean * mean)
	}
	vs, va := varOf(single), varOf(avg)
	if va >= vs/10 {
		t.Errorf("Welch variance %g not much below single-record %g", va, vs)
	}
	// The mean level must agree (both estimate the same density).
	mean := func(s *Spectrum) float64 {
		var m float64
		for k := 10; k < len(s.Power)-10; k++ {
			m += s.Power[k]
		}
		return m / float64(len(s.Power)-20)
	}
	if r := mean(avg) / mean(single); r < 0.7 || r > 1.4 {
		t.Errorf("mean level ratio %g", r)
	}
}

func TestWelchPreservesTone(t *testing.T) {
	n := 1 << 14
	fs := 1e6
	seg := 1024
	f := CoherentBin(fs, seg, 101)
	x := makeTone(n, fs, f, 0.5, 0, 0)
	s, err := Welch(x, fs, WelchOptions{SegmentLength: seg, Overlap: 0.5, Window: Hann})
	if err != nil {
		t.Fatal(err)
	}
	m := MeasureTone(s, f)
	if math.Abs(m.Amplitude-0.5) > 0.02 {
		t.Errorf("Welch tone amplitude = %g", m.Amplitude)
	}
}

func TestCoherentAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	period := 128
	reps := 64
	fs := 1e6
	f := CoherentBin(fs, period, 7)
	x := make([]float64, period*reps)
	for i := range x {
		ti := float64(i) / fs
		x[i] = 0.01*math.Cos(2*math.Pi*f*ti) + rng.NormFloat64()*0.1
	}
	avg, err := CoherentAverage(x, period)
	if err != nil {
		t.Fatal(err)
	}
	if len(avg) != period {
		t.Fatalf("len = %d", len(avg))
	}
	// Tone survives, noise drops ~1/sqrt(64) = 8x in amplitude.
	s, err := PowerSpectrum(avg, fs, Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	m := MeasureTone(s, f)
	if math.Abs(m.Amplitude-0.01)/0.01 > 0.25 {
		t.Errorf("averaged tone amplitude = %g, want ~0.01", m.Amplitude)
	}
	var noise float64
	cnt := 0
	for k := 1; k < len(s.Power); k++ {
		if k != s.Bin(f) {
			noise += s.Power[k]
			cnt++
		}
	}
	noiseRMS := math.Sqrt(noise)
	// Raw noise RMS is 0.1; averaged should be ~0.0125.
	if noiseRMS > 0.03 {
		t.Errorf("averaged noise RMS = %g, want ~0.0125", noiseRMS)
	}
}

func TestCoherentAverageValidation(t *testing.T) {
	if _, err := CoherentAverage(make([]float64, 10), 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := CoherentAverage(make([]float64, 10), 20); err == nil {
		t.Error("record shorter than period accepted")
	}
}
