package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// makeTwoTone builds a two-tone signal plus Gaussian noise.
func makeTwoTone(n int, fs, f1, f2, a1, a2, noiseSigma float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		x[i] = a1*math.Cos(2*math.Pi*f1*ti) + a2*math.Cos(2*math.Pi*f2*ti)
		if noiseSigma > 0 {
			x[i] += rng.NormFloat64() * noiseSigma
		}
	}
	return x
}

func TestAnalyzeCleanTone(t *testing.T) {
	n := 4096
	fs := 1e6
	f := CoherentBin(fs, n, 129)
	x := makeTone(n, fs, f, 1.0, 0, 0)
	a, err := Analyze(x, fs, []float64{f}, Rectangular, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.SignalPower-0.5) > 1e-9 {
		t.Errorf("signal power = %g, want 0.5", a.SignalPower)
	}
	if a.SNR < 250 {
		t.Errorf("clean tone SNR = %g dB, want essentially infinite (>250)", a.SNR)
	}
	if len(a.Fundamentals) != 1 || a.Fundamentals[0].Bin != 129 {
		t.Errorf("fundamental mismeasured: %+v", a.Fundamentals)
	}
}

func TestAnalyzeSNRAccuracy(t *testing.T) {
	n := 8192
	fs := 1e6
	f := CoherentBin(fs, n, 517)
	amp := 1.0
	sigma := 0.01 // SNR = 10log10((A²/2)/σ²) = 10log10(5000) ≈ 37 dB
	x := makeTwoTone(n, fs, f, 0, amp, 0, sigma, 42)
	a, err := Analyze(x, fs, []float64{f}, Rectangular, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := DB(amp * amp / 2 / (sigma * sigma))
	if math.Abs(a.SNR-want) > 1.0 {
		t.Errorf("SNR = %g dB, want %g ± 1 dB", a.SNR, want)
	}
}

func TestAnalyzeTHD(t *testing.T) {
	n := 4096
	fs := 1e6
	f := CoherentBin(fs, n, 101)
	x := make([]float64, n)
	// Fundamental plus -40 dB 2nd and -46 dB 3rd harmonics.
	h2 := FromAmplitudeDB(-40)
	h3 := FromAmplitudeDB(-46)
	for i := range x {
		ti := float64(i) / fs
		x[i] = math.Cos(2*math.Pi*f*ti) + h2*math.Cos(2*math.Pi*2*f*ti) + h3*math.Cos(2*math.Pi*3*f*ti)
	}
	a, err := Analyze(x, fs, []float64{f}, Rectangular, AnalyzeOptions{Harmonics: 5})
	if err != nil {
		t.Fatal(err)
	}
	wantTHD := DB(h2*h2 + h3*h3) // relative to unit fundamental power ratio
	if math.Abs(a.THD-wantTHD) > 0.2 {
		t.Errorf("THD = %g dB, want %g", a.THD, wantTHD)
	}
	if len(a.Harmonics) == 0 {
		t.Fatal("no harmonics measured")
	}
	if a.SFDR < 39 || a.SFDR > 41 {
		t.Errorf("SFDR = %g dB, want ~40", a.SFDR)
	}
}

func TestAnalyzeENOB(t *testing.T) {
	// Quantize an on-bin tone to 8 bits; ENOB should be close to 8.
	n := 8192
	fs := 1e6
	f := CoherentBin(fs, n, 1021)
	bitsN := 8
	q := 2.0 / float64(int(1)<<bitsN)
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		v := math.Cos(2 * math.Pi * f * ti)
		x[i] = math.Round(v/q) * q
	}
	a, err := Analyze(x, fs, []float64{f}, Rectangular, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.ENOB-float64(bitsN)) > 0.7 {
		t.Errorf("ENOB = %g, want ~%d", a.ENOB, bitsN)
	}
}

func TestAnalyzeTwoToneKeepsIntermodsAsNoise(t *testing.T) {
	n := 4096
	fs := 1e6
	f1 := CoherentBin(fs, n, 401)
	f2 := CoherentBin(fs, n, 431)
	x := makeTwoTone(n, fs, f1, f2, 1, 1, 0, 1)
	// Add an IM3 product at 2f1-f2.
	im := FromAmplitudeDB(-50)
	fim := 2*f1 - f2
	for i := range x {
		ti := float64(i) / fs
		x[i] += im * math.Cos(2*math.Pi*fim*ti)
	}
	a, err := Analyze(x, fs, []float64{f1, f2}, Rectangular, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.SignalPower < 0.99 || a.SignalPower > 1.01 {
		t.Errorf("two-tone signal power = %g, want ~1.0", a.SignalPower)
	}
	// The IM3 product must show up as the worst spur.
	if a.WorstSpur.Bin != 371 { // 2·401-431
		t.Errorf("worst spur bin = %d, want 371", a.WorstSpur.Bin)
	}
	imMeasured := MeasureTone(mustSpectrum(t, x, fs), fim)
	if math.Abs(AmplitudeDB(imMeasured.Amplitude)-(-50)) > 0.5 {
		t.Errorf("IM3 measured at %g dB, want -50", AmplitudeDB(imMeasured.Amplitude))
	}
}

func mustSpectrum(t *testing.T, x []float64, fs float64) *Spectrum {
	t.Helper()
	s, err := PowerSpectrum(x, fs, Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAnalyzeRequiresTones(t *testing.T) {
	if _, err := Analyze([]float64{1, 2}, 10, nil, Rectangular, AnalyzeOptions{}); err == nil {
		t.Fatal("Analyze accepted empty tone list")
	}
	if _, err := AnalyzeSpectrum(&Spectrum{}, nil, AnalyzeOptions{}); err == nil {
		t.Fatal("AnalyzeSpectrum accepted empty tone list")
	}
}

func TestAnalyzeDCExclusion(t *testing.T) {
	n := 2048
	fs := 1e6
	f := CoherentBin(fs, n, 333)
	x := makeTone(n, fs, f, 1, 0, 0.5) // big DC offset
	withExcl, err := Analyze(x, fs, []float64{f}, Rectangular, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	withoutExcl, err := Analyze(x, fs, []float64{f}, Rectangular, AnalyzeOptions{SkipDCExclusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if withExcl.SNR <= withoutExcl.SNR {
		t.Errorf("DC exclusion should raise SNR: %g vs %g", withExcl.SNR, withoutExcl.SNR)
	}
}

func TestRMSAndMeanAndPeak(t *testing.T) {
	x := []float64{3, -4, 3, -4}
	if got := RMS(x); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMS = %g", got)
	}
	if got := Mean(x); math.Abs(got-(-0.5)) > 1e-12 {
		t.Errorf("Mean = %g", got)
	}
	if got := PeakAbs(x); got != 4 {
		t.Errorf("PeakAbs = %g", got)
	}
	if RMS(nil) != 0 || Mean(nil) != 0 || PeakAbs(nil) != 0 {
		t.Error("empty-slice stats should be 0")
	}
}

func TestCoherentBin(t *testing.T) {
	fs := 44100.0
	f := CoherentBin(fs, 4096, 127)
	cyc := f * 4096 / fs
	if math.Abs(cyc-127) > 1e-9 {
		t.Errorf("CoherentBin gives %g cycles, want 127", cyc)
	}
}

func TestPhaseAt(t *testing.T) {
	n := 256
	phase := 0.7
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2*math.Pi*8*float64(i)/float64(n) + phase)
	}
	// X[k] of cos(wn+φ) is (N/2)e^{jφ} at k=8.
	got := PhaseAt(x, 8)
	if math.Abs(got-phase) > 1e-9 {
		t.Errorf("PhaseAt = %g, want %g", got, phase)
	}
}

func TestMeasureToneWindowedSpread(t *testing.T) {
	n := 1024
	fs := 1e6
	f := CoherentBin(fs, n, 100)
	x := makeTone(n, fs, f, 1, 0, 0)
	s, err := PowerSpectrum(x, fs, Hann)
	if err != nil {
		t.Fatal(err)
	}
	m := MeasureTone(s, f)
	if math.Abs(m.Amplitude-1) > 0.02 {
		t.Errorf("windowed tone amplitude = %g, want ~1", m.Amplitude)
	}
}

// TestMeasureToneENBWCorrection cross-checks the skirt overcount
// correction on a synthetic on-bin tone: summing the ±3-bin leakage
// skirt overcounts a unit tone's power by the window's equivalent
// noise bandwidth, and dividing by ENBW must recover A²/2.
func TestMeasureToneENBWCorrection(t *testing.T) {
	n := 1024
	fs := 1e6
	f := CoherentBin(fs, n, 100)
	x := makeTone(n, fs, f, 1, 0, 0)
	for _, w := range []WindowType{Hann, Hamming, Blackman, BlackmanHarris} {
		s, err := PowerSpectrum(x, fs, w)
		if err != nil {
			t.Fatal(err)
		}
		raw := s.TonePower(f, defaultToneSpread)
		if r := raw / 0.5; math.Abs(r-s.ENBW)/s.ENBW > 0.01 {
			t.Errorf("%v: skirt sum overcounts by %g, want ENBW %g", w, r, s.ENBW)
		}
		m := MeasureTone(s, f)
		if math.Abs(m.Power-0.5) > 0.005 {
			t.Errorf("%v: corrected tone power = %g, want 0.5", w, m.Power)
		}
		if math.Abs(m.Amplitude-1) > 0.005 {
			t.Errorf("%v: corrected amplitude = %g, want 1", w, m.Amplitude)
		}
	}
}

func TestResolveSpread(t *testing.T) {
	cases := []struct {
		spread int
		w      WindowType
		want   int
	}{
		{0, Rectangular, 0},
		{0, Hann, defaultToneSpread},
		{0, BlackmanHarris, defaultToneSpread},
		{ToneSpreadNone, Hann, 0},
		{ToneSpreadNone, Rectangular, 0},
		{2, Hann, 2},
		{2, Rectangular, 2},
	}
	for _, c := range cases {
		opts := AnalyzeOptions{ToneSpread: c.spread}
		if got := opts.resolveSpread(c.w); got != c.want {
			t.Errorf("resolveSpread(ToneSpread=%d, %v) = %d, want %d", c.spread, c.w, got, c.want)
		}
	}
}

// TestToneSpreadSentinelCompat pins that introducing ToneSpreadNone
// changed no existing caller's results: the zero value still means
// "window default", so opts{} is bit-identical to an explicit
// ToneSpread of 3 under a windowed spectrum and to ToneSpreadNone
// under a rectangular one.
func TestToneSpreadSentinelCompat(t *testing.T) {
	n := 2048
	fs := 1e6
	f1 := CoherentBin(fs, n, 101)
	f2 := CoherentBin(fs, n, 257)
	x := makeTwoTone(n, fs, f1, f2, 1, 0.3, 0.01, 17)
	tones := []float64{f1, f2}

	analyze := func(w WindowType, opts AnalyzeOptions) *SpectralAnalysis {
		a, err := Analyze(x, fs, tones, w, opts)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	// Windowed: unset == explicit default spread.
	def := analyze(Hann, AnalyzeOptions{})
	compareAnalyses(t, "hann unset vs explicit 3",
		analyze(Hann, AnalyzeOptions{ToneSpread: defaultToneSpread}), def)

	// Rectangular: unset == sentinel (both are zero-spread).
	rectDef := analyze(Rectangular, AnalyzeOptions{})
	compareAnalyses(t, "rect unset vs ToneSpreadNone",
		analyze(Rectangular, AnalyzeOptions{ToneSpread: ToneSpreadNone}), rectDef)

	// The sentinel under a window means exactly "nearest bin, no ENBW
	// correction" — something the zero value could not express before.
	s, err := PowerSpectrum(x, fs, Hann)
	if err != nil {
		t.Fatal(err)
	}
	none, err := AnalyzeSpectrum(s, tones, AnalyzeOptions{ToneSpread: ToneSpreadNone})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := none.Fundamentals[0].Power, s.Power[s.Bin(f1)]; got != want {
		t.Errorf("sentinel fundamental power = %g, want single bin %g", got, want)
	}
	if none.Fundamentals[0].Power >= def.Fundamentals[0].Power {
		t.Error("zero-spread windowed measurement should undercount the skirted one")
	}
}

func BenchmarkAnalyze8192(b *testing.B) {
	n := 8192
	fs := 1e6
	f1 := CoherentBin(fs, n, 401)
	f2 := CoherentBin(fs, n, 431)
	x := makeTwoTone(n, fs, f1, f2, 1, 1, 0.001, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(x, fs, []float64{f1, f2}, Rectangular, AnalyzeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
