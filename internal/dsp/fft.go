// Package dsp provides the signal-processing substrate used throughout
// mstx: fast Fourier transforms, window functions, power-spectrum
// estimation, and the spectral measurements (SNR, SFDR, THD, SINAD,
// ENOB, tone and harmonic power) that a mixed-signal tester's DSP
// pipeline would compute.
//
// All routines are pure functions over float64/complex128 slices and
// are deterministic; they use no global state and are safe for
// concurrent use.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n. It panics if
// n <= 0 or if the result would overflow an int.
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic("dsp: NextPowerOfTwo requires n > 0")
	}
	if IsPowerOfTwo(n) {
		return n
	}
	p := 1 << bits.Len(uint(n))
	if p <= 0 {
		panic("dsp: NextPowerOfTwo overflow")
	}
	return p
}

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two. The transform follows
// the engineering convention X[k] = sum_n x[n]·exp(-j2πkn/N) with no
// normalization on the forward pass.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if !IsPowerOfTwo(n) {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	bitReverse(x)
	// Iterative Cooley–Tukey butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		// Twiddle for this stage computed incrementally to avoid a
		// sin/cos per butterfly.
		wStep := complex(math.Cos(step), math.Sin(step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				even := x[start+k]
				odd := x[start+k+half] * w
				x[start+k] = even + odd
				x[start+k+half] = even - odd
				w *= wStep
			}
		}
	}
	return nil
}

// IFFT computes the in-place inverse FFT of x, including the 1/N
// normalization, so that IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if !IsPowerOfTwo(n) {
		return fmt.Errorf("dsp: IFFT length %d is not a power of two", n)
	}
	for i := range x {
		x[i] = complex(real(x[i]), -imag(x[i]))
	}
	if err := FFT(x); err != nil {
		return err
	}
	inv := 1 / float64(n)
	for i := range x {
		x[i] = complex(real(x[i])*inv, -imag(x[i])*inv)
	}
	return nil
}

// bitReverse permutes x into bit-reversed index order.
func bitReverse(x []complex128) {
	n := len(x)
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n < 2 {
		return
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// FFTReal transforms a real-valued sequence and returns the full
// complex spectrum of length NextPowerOfTwo(len(x)). The input is
// zero-padded to a power of two if necessary. Transforms use shared
// cached plans (bit-reversal tables and twiddles), so repeated
// same-length calls — the spectral fault campaigns — pay no setup.
func FFTReal(x []float64) ([]complex128, error) {
	if len(x) == 0 {
		return nil, nil
	}
	n := NextPowerOfTwo(len(x))
	buf := make([]complex128, n)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	p, err := cachedPlan(n)
	if err != nil {
		return nil, err
	}
	if err := p.Transform(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// DFT computes the discrete Fourier transform by direct summation.
// It is O(N²) and exists as an oracle for testing the FFT and for
// lengths that are not powers of two.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for i := 0; i < n; i++ {
			ang := -2 * math.Pi * float64(k) * float64(i) / float64(n)
			sum += x[i] * complex(math.Cos(ang), math.Sin(ang))
		}
		out[k] = sum
	}
	return out
}

// Goertzel evaluates the DFT of real input x at a single bin k using
// the Goertzel recurrence. It returns the same value FFT would place
// in bin k. Useful when only a handful of tone bins are needed.
func Goertzel(x []float64, k int) complex128 {
	n := len(x)
	if n == 0 {
		return 0
	}
	w := 2 * math.Pi * float64(k) / float64(n)
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	// With v[m] = x[m] + 2cos(w)·v[m-1] - v[m-2], the DFT bin under the
	// engineering convention X[k] = Σ x[n]·e^{-j2πkn/N} (the same one
	// FFT uses) is X[k] = e^{jw}·s1 - s2.
	re := s1*math.Cos(w) - s2
	im := s1 * math.Sin(w)
	return complex(re, im)
}

// GoertzelPower returns |X[k]|² / N² — the normalized power of bin k of
// real input x, matching PowerSpectrum's scaling for a one-sided view
// before the factor-of-two single-sided correction.
func GoertzelPower(x []float64, k int) float64 {
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	c := Goertzel(x, k)
	re, im := real(c), imag(c)
	return (re*re + im*im) / (n * n)
}
