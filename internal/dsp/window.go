package dsp

import (
	"fmt"
	"math"
	"sync"
)

// WindowType selects a tapering window applied before spectral
// estimation. Windows trade main-lobe width (frequency resolution)
// against side-lobe level (spectral leakage); coherent multi-tone test
// signals that land exactly on FFT bins need no window at all, which is
// why mixed-signal ATE prefers coherent sampling with Rectangular.
type WindowType int

const (
	// Rectangular applies no tapering (boxcar). Best for coherent
	// sampling where every stimulus tone lands exactly on a bin.
	Rectangular WindowType = iota
	// Hann is the raised-cosine window, -31.5 dB first side lobe.
	Hann
	// Hamming is the optimized raised cosine, -42.7 dB first side lobe.
	Hamming
	// Blackman is the three-term cosine window, -58 dB first side lobe.
	Blackman
	// BlackmanHarris is the four-term window, -92 dB side lobes; the
	// usual choice for non-coherent ADC spectral testing.
	BlackmanHarris
	// FlatTop has near-zero scalloping loss, used for accurate
	// amplitude measurement of off-bin tones.
	FlatTop
)

// String returns the conventional window name.
func (w WindowType) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	case BlackmanHarris:
		return "blackman-harris"
	case FlatTop:
		return "flat-top"
	default:
		return fmt.Sprintf("WindowType(%d)", int(w))
	}
}

// Window returns the n coefficients of the window. It panics if n <= 0
// or the window type is unknown.
func Window(t WindowType, n int) []float64 {
	if n <= 0 {
		panic("dsp: Window requires n > 0")
	}
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	den := float64(n - 1)
	cosTerms := func(a []float64) {
		for i := range w {
			x := float64(i) / den
			v := 0.0
			for k, c := range a {
				if k%2 == 0 {
					v += c * math.Cos(2*math.Pi*float64(k)*x)
				} else {
					v -= c * math.Cos(2*math.Pi*float64(k)*x)
				}
			}
			w[i] = v
		}
	}
	switch t {
	case Rectangular:
		for i := range w {
			w[i] = 1
		}
	case Hann:
		cosTerms([]float64{0.5, 0.5})
	case Hamming:
		cosTerms([]float64{0.54, 0.46})
	case Blackman:
		cosTerms([]float64{0.42, 0.5, 0.08})
	case BlackmanHarris:
		cosTerms([]float64{0.35875, 0.48829, 0.14128, 0.01168})
	case FlatTop:
		cosTerms([]float64{0.21557895, 0.41663158, 0.277263158, 0.083578947, 0.006947368})
	default:
		panic(fmt.Sprintf("dsp: unknown window type %d", int(t)))
	}
	return w
}

// windowCache shares computed window tables between scratches, keyed
// by (type, length). Cached tables are treated as immutable — they are
// only ever read — so many worker scratches of the same shape pay for
// one cosine-series evaluation between them. Window() still returns a
// fresh slice; only internal scratch construction uses the cache.
var windowCache sync.Map // windowKey -> []float64

type windowKey struct {
	t WindowType
	n int
}

// sharedWindow returns the process-wide cached window table for
// (t, n). The returned slice must not be modified.
func sharedWindow(t WindowType, n int) []float64 {
	if v, ok := windowCache.Load(windowKey{t, n}); ok {
		return v.([]float64)
	}
	w := Window(t, n)
	actual, _ := windowCache.LoadOrStore(windowKey{t, n}, w)
	return actual.([]float64)
}

// ApplyWindow multiplies x element-wise by the window coefficients and
// returns a new slice; x is not modified. len(w) must equal len(x).
func ApplyWindow(x, w []float64) ([]float64, error) {
	if len(x) != len(w) {
		return nil, fmt.Errorf("dsp: window length %d != signal length %d", len(w), len(x))
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] * w[i]
	}
	return out, nil
}

// CoherentGain returns the mean of the window coefficients — the factor
// by which a windowed on-bin tone's spectral amplitude is reduced.
func CoherentGain(w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	var sum float64
	for _, v := range w {
		sum += v
	}
	return sum / float64(len(w))
}

// NoiseBandwidth returns the equivalent noise bandwidth of the window
// in bins: N·Σw²/(Σw)². Rectangular gives exactly 1.
func NoiseBandwidth(w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	var s1, s2 float64
	for _, v := range w {
		s1 += v
		s2 += v * v
	}
	if s1 == 0 {
		return math.Inf(1)
	}
	return float64(len(w)) * s2 / (s1 * s1)
}
