package dsp

import (
	"fmt"
	"math"
)

// WelchOptions configures averaged power-spectrum estimation.
type WelchOptions struct {
	// SegmentLength is the per-segment FFT size (power of two).
	SegmentLength int
	// Overlap is the fraction of segment overlap in [0, 0.9]
	// (0.5 is the classic choice).
	Overlap float64
	// Window tapers each segment (Hann by default when zero value is
	// Rectangular and UseDefaultWindow is set by callers; pass
	// explicitly for clarity).
	Window WindowType
}

// Welch estimates the power spectrum by averaging windowed,
// overlapping segments — the standard way a tester measures a *noise*
// floor with low variance (the single-record spectrum has 100%
// variance per bin; K averages reduce it by 1/K).
func Welch(x []float64, sampleRate float64, opts WelchOptions) (*Spectrum, error) {
	n := opts.SegmentLength
	if err := checkWelchOptions(n, len(x), opts.Overlap); err != nil {
		return nil, err
	}
	step := welchStep(n, opts.Overlap)
	var acc *Spectrum
	segments := 0
	for start := 0; start+n <= len(x); start += step {
		s, err := PowerSpectrum(x[start:start+n], sampleRate, opts.Window)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = s
		} else {
			for k := range acc.Power {
				acc.Power[k] += s.Power[k]
			}
		}
		segments++
	}
	inv := 1 / float64(segments)
	for k := range acc.Power {
		acc.Power[k] *= inv
	}
	return acc, nil
}

// checkWelchOptions validates the segmentation parameters shared by
// the allocating and scratch-backed Welch estimators.
func checkWelchOptions(n, xlen int, overlap float64) error {
	if n <= 0 || !IsPowerOfTwo(n) {
		return fmt.Errorf("dsp: Welch segment length %d must be a power of two", n)
	}
	if xlen < n {
		return fmt.Errorf("dsp: record %d shorter than segment %d", xlen, n)
	}
	if overlap < 0 || overlap > 0.9 {
		return fmt.Errorf("dsp: overlap %g out of [0, 0.9]", overlap)
	}
	return nil
}

// welchStep is the hop size between segment starts. Rounding to
// nearest keeps the realized overlap as close as possible to the
// requested one: truncation would bias it high (n=512, Overlap=0.6
// gives step 205, not 204) and lets float error under-step even the
// exact cases (0.5 overlap must hop exactly n/2).
func welchStep(n int, overlap float64) int {
	step := int(math.Round(float64(n) * (1 - overlap)))
	if step < 1 {
		step = 1
	}
	return step
}

// CoherentAverage averages K consecutive length-n records sample by
// sample. For a stimulus that is periodic in n, signal adds coherently
// while noise averages down by 1/K in power — the tester trick for
// pulling small deterministic fault effects out of noise without
// longer FFTs.
func CoherentAverage(x []float64, n int) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dsp: CoherentAverage length %d must be positive", n)
	}
	k := len(x) / n
	if k < 1 {
		return nil, fmt.Errorf("dsp: record %d shorter than one period %d", len(x), n)
	}
	out := make([]float64, n)
	for rep := 0; rep < k; rep++ {
		base := rep * n
		for i := 0; i < n; i++ {
			out[i] += x[base+i]
		}
	}
	inv := 1 / float64(k)
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}
