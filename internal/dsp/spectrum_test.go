package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// makeTone builds n samples of amplitude·cos(2πf·t + phase) + dc at fs.
func makeTone(n int, fs, f, amplitude, phase, dc float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		x[i] = amplitude*math.Cos(2*math.Pi*f*ti+phase) + dc
	}
	return x
}

func TestPowerSpectrumCoherentTone(t *testing.T) {
	n := 1024
	fs := 1e6
	f := CoherentBin(fs, n, 37)
	amp := 0.8
	x := makeTone(n, fs, f, amp, 0.3, 0)
	s, err := PowerSpectrum(x, fs, Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	k := s.Bin(f)
	if k != 37 {
		t.Fatalf("tone bin = %d, want 37", k)
	}
	want := amp * amp / 2
	if math.Abs(s.Power[k]-want) > 1e-9 {
		t.Fatalf("tone power = %g, want %g", s.Power[k], want)
	}
	// Other bins must be essentially empty.
	for i, p := range s.Power {
		if i != k && p > 1e-18 {
			t.Fatalf("leakage at bin %d: %g", i, p)
		}
	}
}

func TestPowerSpectrumDC(t *testing.T) {
	n := 256
	fs := 1000.0
	x := makeTone(n, fs, CoherentBin(fs, n, 5), 0.1, 0, 0.25)
	s, err := PowerSpectrum(x, fs, Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	// DC bin carries dc² (single copy, no folding factor).
	if math.Abs(s.Power[0]-0.0625) > 1e-12 {
		t.Fatalf("DC power = %g, want 0.0625", s.Power[0])
	}
}

func TestPowerSpectrumWindowedToneAmplitude(t *testing.T) {
	// With a non-rectangular window and coherent gain correction, the
	// summed tone power over the leakage skirt must still recover the
	// tone amplitude within a few percent.
	n := 1024
	fs := 48000.0
	f := CoherentBin(fs, n, 101)
	amp := 1.3
	x := makeTone(n, fs, f, amp, 1.1, 0)
	for _, w := range []WindowType{Hann, Hamming, Blackman, BlackmanHarris} {
		s, err := PowerSpectrum(x, fs, w)
		if err != nil {
			t.Fatal(err)
		}
		m := MeasureTone(s, f)
		if math.Abs(m.Amplitude-amp)/amp > 0.02 {
			t.Errorf("%v: measured amplitude %g, want %g", w, m.Amplitude, amp)
		}
	}
}

func TestPowerSpectrumErrors(t *testing.T) {
	if _, err := PowerSpectrum(nil, 1e6, Rectangular); err == nil {
		t.Error("empty signal accepted")
	}
	if _, err := PowerSpectrum([]float64{1}, 0, Rectangular); err == nil {
		t.Error("zero sample rate accepted")
	}
	if _, err := PowerSpectrum([]float64{1}, -5, Rectangular); err == nil {
		t.Error("negative sample rate accepted")
	}
}

func TestParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 512
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		s, err := PowerSpectrum(x, 1e6, Rectangular)
		if err != nil {
			return false
		}
		var ms float64
		for _, v := range x {
			ms += v * v
		}
		ms /= float64(n)
		return math.Abs(s.TotalPower()-ms) < 1e-9*math.Max(1, ms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAliasFrequency(t *testing.T) {
	fs := 100.0
	cases := []struct{ in, want float64 }{
		{10, 10}, {50, 50}, {60, 40}, {90, 10}, {100, 0}, {110, 10}, {160, 40}, {-10, 10},
	}
	for _, c := range cases {
		if got := AliasFrequency(c.in, fs); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("AliasFrequency(%g) = %g, want %g", c.in, got, c.want)
		}
	}
	if got := AliasFrequency(42, 0); got != 42 {
		t.Errorf("AliasFrequency with fs=0 = %g, want passthrough", got)
	}
}

func TestBinClampsAndAliases(t *testing.T) {
	n := 64
	fs := 6400.0
	x := make([]float64, n)
	x[0] = 1
	s, err := PowerSpectrum(x, fs, Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	if k := s.Bin(0); k != 0 {
		t.Errorf("Bin(0) = %d", k)
	}
	if k := s.Bin(fs / 2); k != n/2 {
		t.Errorf("Bin(Nyquist) = %d, want %d", k, n/2)
	}
	// Above Nyquist aliases down.
	if k := s.Bin(fs/2 + 100); k != s.Bin(fs/2-100) {
		t.Errorf("aliasing mismatch: %d vs %d", k, s.Bin(fs/2-100))
	}
}

func TestBandPower(t *testing.T) {
	n := 1024
	fs := 1024.0 // 1 Hz per bin
	f1 := CoherentBin(fs, n, 100)
	f2 := CoherentBin(fs, n, 300)
	x1 := makeTone(n, fs, f1, 1.0, 0, 0)
	x2 := makeTone(n, fs, f2, 0.5, 0, 0)
	x := make([]float64, n)
	for i := range x {
		x[i] = x1[i] + x2[i]
	}
	s, err := PowerSpectrum(x, fs, Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	if p := s.BandPower(90, 110); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("band around f1 = %g, want 0.5", p)
	}
	if p := s.BandPower(290, 310); math.Abs(p-0.125) > 1e-9 {
		t.Errorf("band around f2 = %g, want 0.125", p)
	}
	// Swapped bounds are normalized.
	if p := s.BandPower(110, 90); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("swapped band = %g, want 0.5", p)
	}
}

func TestPeakBin(t *testing.T) {
	n := 256
	fs := 256.0
	x := makeTone(n, fs, CoherentBin(fs, n, 40), 1, 0, 10) // huge DC
	s, err := PowerSpectrum(x, fs, Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	if k := s.PeakBin(0, len(s.Power)-1); k != 40 {
		t.Errorf("PeakBin skipping DC = %d, want 40", k)
	}
	if k := s.PeakBin(-5, 10000); k != 40 {
		t.Errorf("PeakBin with clamped range = %d, want 40", k)
	}
}

func TestNoiseFloorMedian(t *testing.T) {
	n := 512
	fs := 512.0
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, n)
	sigma := 0.01
	for i := range x {
		x[i] = rng.NormFloat64() * sigma
	}
	tone := makeTone(n, fs, CoherentBin(fs, n, 50), 1, 0, 0)
	for i := range x {
		x[i] += tone[i]
	}
	s, err := PowerSpectrum(x, fs, Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	floorWithTone := s.NoiseFloor(nil)
	floorExcl := s.NoiseFloor(map[int]bool{50: true})
	if floorExcl > floorWithTone+1e-15 {
		t.Errorf("excluding the tone raised the floor: %g > %g", floorExcl, floorWithTone)
	}
	// The median floor should be near sigma²/N per bin (single-sided
	// doubling only redistributes; total noise power is sigma²).
	perBin := sigma * sigma / float64(n/2)
	if floorExcl <= 0 || floorExcl > perBin*20 || floorExcl < perBin/20 {
		t.Errorf("noise floor %g implausible vs per-bin %g", floorExcl, perBin)
	}
}

func TestNoiseFloorAllExcluded(t *testing.T) {
	s := &Spectrum{Power: []float64{1, 2}, SampleRate: 10, NFFT: 2}
	if f := s.NoiseFloor(map[int]bool{0: true, 1: true}); f != 0 {
		t.Errorf("NoiseFloor all-excluded = %g, want 0", f)
	}
}

func TestDBConversions(t *testing.T) {
	if got := DB(100); math.Abs(got-20) > 1e-12 {
		t.Errorf("DB(100) = %g", got)
	}
	if !math.IsInf(DB(0), -1) || !math.IsInf(DB(-1), -1) {
		t.Error("DB of non-positive should be -inf")
	}
	if got := FromDB(30); math.Abs(got-1000) > 1e-9 {
		t.Errorf("FromDB(30) = %g", got)
	}
	if got := AmplitudeDB(10); math.Abs(got-20) > 1e-12 {
		t.Errorf("AmplitudeDB(10) = %g", got)
	}
	if !math.IsInf(AmplitudeDB(0), -1) {
		t.Error("AmplitudeDB(0) should be -inf")
	}
	if got := FromAmplitudeDB(40); math.Abs(got-100) > 1e-9 {
		t.Errorf("FromAmplitudeDB(40) = %g", got)
	}
}

func TestDBRoundTripProperty(t *testing.T) {
	f := func(v float64) bool {
		p := math.Abs(v) + 1e-12
		return math.Abs(FromDB(DB(p))-p) < 1e-9*p &&
			math.Abs(FromAmplitudeDB(AmplitudeDB(p))-p) < 1e-9*p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDBmConversions(t *testing.T) {
	if got := DBm(1); math.Abs(got-30) > 1e-12 {
		t.Errorf("DBm(1W) = %g, want 30", got)
	}
	if got := DBm(0.001); math.Abs(got) > 1e-9 {
		t.Errorf("DBm(1mW) = %g, want 0", got)
	}
	if !math.IsInf(DBm(0), -1) {
		t.Error("DBm(0) should be -inf")
	}
	if got := FromDBm(0); math.Abs(got-0.001) > 1e-12 {
		t.Errorf("FromDBm(0) = %g, want 1mW", got)
	}
	// 0 dBm into 50Ω is ~316 mV amplitude.
	amp := DBmToVolts(0, 50)
	if math.Abs(amp-0.31623) > 1e-3 {
		t.Errorf("DBmToVolts(0dBm,50) = %g, want ~0.316", amp)
	}
	if got := VoltsToDBm(amp, 50); math.Abs(got) > 1e-9 {
		t.Errorf("VoltsToDBm round trip = %g, want 0", got)
	}
	if !math.IsInf(VoltsToDBm(1, 0), -1) {
		t.Error("VoltsToDBm with r<=0 should be -inf")
	}
}

func TestBinFrequency(t *testing.T) {
	s := &Spectrum{Power: make([]float64, 513), SampleRate: 1024, NFFT: 1024}
	if f := s.BinFrequency(1); f != 1 {
		t.Errorf("BinFrequency(1) = %g", f)
	}
	if f := s.BinFrequency(512); f != 512 {
		t.Errorf("BinFrequency(512) = %g", f)
	}
}

func BenchmarkPowerSpectrum4096(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PowerSpectrum(x, 1e6, BlackmanHarris); err != nil {
			b.Fatal(err)
		}
	}
}
