package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSineFit3Exact(t *testing.T) {
	fs := 1e6
	n := 1000
	f := 12345.0
	amp, phase, dc := 0.73, 1.1, -0.25
	x := make([]float64, n)
	for i := range x {
		x[i] = amp*math.Cos(2*math.Pi*f*float64(i)/fs+phase) + dc
	}
	res, err := SineFit3(x, fs, f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Amplitude-amp) > 1e-9 {
		t.Errorf("amplitude = %g", res.Amplitude)
	}
	if math.Abs(res.Phase-phase) > 1e-9 {
		t.Errorf("phase = %g", res.Phase)
	}
	if math.Abs(res.Offset-dc) > 1e-9 {
		t.Errorf("offset = %g", res.Offset)
	}
	if res.RMSResidual > 1e-9 {
		t.Errorf("residual = %g", res.RMSResidual)
	}
}

func TestSineFit3Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := 1e6
		n := 300 + rng.Intn(300)
		freq := 1e3 + rng.Float64()*4e5
		amp := 0.1 + rng.Float64()
		phase := rng.Float64()*2*math.Pi - math.Pi
		dc := rng.NormFloat64() * 0.3
		x := make([]float64, n)
		for i := range x {
			x[i] = amp*math.Cos(2*math.Pi*freq*float64(i)/fs+phase) + dc
		}
		res, err := SineFit3(x, fs, freq)
		if err != nil {
			return false
		}
		return math.Abs(res.Amplitude-amp) < 1e-6 &&
			math.Abs(res.Offset-dc) < 1e-6 &&
			res.RMSResidual < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSineFit3Validation(t *testing.T) {
	if _, err := SineFit3([]float64{1, 2}, 1e6, 100); err == nil {
		t.Error("short record accepted")
	}
	x := make([]float64, 100)
	if _, err := SineFit3(x, 0, 100); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := SineFit3(x, 1e6, 0); err == nil {
		t.Error("zero frequency accepted")
	}
}

func TestSineFit4RecoversFrequencyError(t *testing.T) {
	fs := 1e6
	n := 4096
	trueF := 98765.4321
	guess := 98000.0 // ~0.8% off
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.5 * math.Cos(2*math.Pi*trueF*float64(i)/fs+0.4)
	}
	res, err := SineFit4(x, fs, guess, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Frequency-trueF) > 0.01 {
		t.Errorf("frequency = %.6f, want %.6f", res.Frequency, trueF)
	}
	if math.Abs(res.Amplitude-0.5) > 1e-6 {
		t.Errorf("amplitude = %g", res.Amplitude)
	}
	if res.RMSResidual > 1e-6 {
		t.Errorf("residual = %g", res.RMSResidual)
	}
}

func TestSineFit4WithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	fs := 1e6
	n := 8192
	trueF := 123456.0
	sigma := 0.05
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2*math.Pi*trueF*float64(i)/fs) + rng.NormFloat64()*sigma
	}
	res, err := SineFit4(x, fs, 123000, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Frequency resolution of the fit beats the FFT bin (122 Hz here)
	// by orders of magnitude even in noise.
	if math.Abs(res.Frequency-trueF) > 5 {
		t.Errorf("frequency = %.3f, want %.0f ± 5", res.Frequency, trueF)
	}
	// Residual estimates the noise.
	if math.Abs(res.RMSResidual-sigma)/sigma > 0.1 {
		t.Errorf("residual = %g, want ~%g", res.RMSResidual, sigma)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	rows := [][]float64{
		{1, 2, 3},
		{2, 4, 6},
	}
	if _, err := solveLinear(rows); err == nil {
		t.Error("singular system accepted")
	}
}

func TestSineFitPhaseConvention(t *testing.T) {
	// The fitted model must reproduce the generator's convention
	// amp·cos(wt + phase).
	fs := 1e5
	f := 7000.0
	for _, phase := range []float64{-2.5, -1, 0, 0.5, 2.9} {
		x := make([]float64, 500)
		for i := range x {
			x[i] = 0.3 * math.Cos(2*math.Pi*f*float64(i)/fs+phase)
		}
		res, err := SineFit3(x, fs, f)
		if err != nil {
			t.Fatal(err)
		}
		d := math.Mod(res.Phase-phase+3*math.Pi, 2*math.Pi) - math.Pi
		if math.Abs(d) > 1e-9 {
			t.Errorf("phase %g fitted as %g", phase, res.Phase)
		}
	}
}
