package digital

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mstx/internal/netlist"
)

// evalBus builds a simulator, drives the input buses with the given
// signed values (broadcast to all lanes), and decodes the output bus.
func evalBus(t *testing.T, b *Builder, inputs []Bus, vals []int64, out Bus) int64 {
	t.Helper()
	b.MarkOutputBus(out, "t")
	if err := b.C.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	sim := netlist.NewSimulator(b.C)
	words := make([]uint64, len(b.C.Inputs))
	pos := 0
	for i, bus := range inputs {
		enc := EncodeSigned(vals[i], bus.Width())
		copy(words[pos:], enc)
		pos += bus.Width()
	}
	res, err := sim.Run(words)
	if err != nil {
		t.Fatal(err)
	}
	// Output words correspond to all MarkOutput calls in order; take
	// the last len(out).
	return DecodeSignedLane(res[len(res)-len(out):], 0)
}

func TestFitsSigned(t *testing.T) {
	cases := []struct {
		v    int64
		w    int
		want bool
	}{
		{0, 1, true}, {1, 1, false}, {-1, 1, true},
		{127, 8, true}, {128, 8, false}, {-128, 8, true}, {-129, 8, false},
		{1 << 40, 64, true}, {5, 0, false},
	}
	for _, c := range cases {
		if got := FitsSigned(c.v, c.w); got != c.want {
			t.Errorf("FitsSigned(%d, %d) = %v, want %v", c.v, c.w, got, c.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(v int64, lane uint8) bool {
		l := int(lane % 64)
		w := 16
		v = Saturate(v, w)
		words := EncodeSigned(v, w)
		return DecodeSignedLane(words, l) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddExact(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 50; trial++ {
		b := NewBuilder()
		x := b.InputBus("x", 10)
		y := b.InputBus("y", 10)
		sum := b.AddExpand(x, y)
		xv := int64(rng.Intn(1024) - 512)
		yv := int64(rng.Intn(1024) - 512)
		xv, yv = Saturate(xv, 10), Saturate(yv, 10)
		got := evalBus(t, b, []Bus{x, y}, []int64{xv, yv}, sum)
		if got != xv+yv {
			t.Fatalf("Add(%d,%d) = %d", xv, yv, got)
		}
	}
}

func TestNegate(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 127, -128, 42, -42} {
		b := NewBuilder()
		x := b.InputBus("x", 8)
		n := b.Negate(x)
		got := evalBus(t, b, []Bus{x}, []int64{v}, n)
		if got != -v {
			t.Fatalf("Negate(%d) = %d", v, got)
		}
	}
}

func TestMulConst(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, k := range []int64{0, 1, -1, 2, 3, -3, 5, 7, -7, 100, 255, -255, 1023} {
		b := NewBuilder()
		x := b.InputBus("x", 9)
		p := b.MulConst(x, k)
		v := int64(rng.Intn(512) - 256)
		got := evalBus(t, b, []Bus{x}, []int64{v}, p)
		if got != k*v {
			t.Fatalf("MulConst(%d)·%d = %d, want %d", k, v, got, k*v)
		}
	}
}

func TestMulConstProperty(t *testing.T) {
	f := func(kv int16, vv int8) bool {
		k := int64(kv)
		v := int64(vv)
		b := NewBuilder()
		x := b.InputBus("x", 8)
		p := b.MulConst(x, k)
		b.MarkOutputBus(p, "p")
		sim := netlist.NewSimulator(b.C)
		res, err := sim.Run(EncodeSigned(v, 8))
		if err != nil {
			return false
		}
		return DecodeSignedLane(res, 0) == k*v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSumTree(t *testing.T) {
	b := NewBuilder()
	var buses []Bus
	vals := []int64{5, -3, 100, -120, 7}
	for range vals {
		buses = append(buses, b.InputBus("x", 8))
	}
	sum := b.SumTree(buses)
	got := evalBus(t, b, buses, vals, sum)
	want := int64(0)
	for _, v := range vals {
		want += v
	}
	if got != want {
		t.Fatalf("SumTree = %d, want %d", got, want)
	}
}

func TestShiftLeft(t *testing.T) {
	b := NewBuilder()
	x := b.InputBus("x", 6)
	s := b.ShiftLeft(x, 3)
	got := evalBus(t, b, []Bus{x}, []int64{-5}, s)
	if got != -40 {
		t.Fatalf("ShiftLeft(-5,3) = %d, want -40", got)
	}
}

func TestTruncate(t *testing.T) {
	b := NewBuilder()
	x := b.InputBus("x", 8)
	tr := b.Truncate(x, 4)
	// 0b0101_0110 (86) truncated to 4 bits -> 0b0110 = 6.
	got := evalBus(t, b, []Bus{x}, []int64{86}, tr)
	if got != 6 {
		t.Fatalf("Truncate = %d, want 6", got)
	}
}

func TestConstBus(t *testing.T) {
	b := NewBuilder()
	cb := b.ConstBus(-7, 5)
	got := evalBusNoInput(t, b, cb)
	if got != -7 {
		t.Fatalf("ConstBus(-7) = %d", got)
	}
}

func evalBusNoInput(t *testing.T, b *Builder, out Bus) int64 {
	t.Helper()
	b.MarkOutputBus(out, "t")
	if err := b.C.Validate(); err != nil {
		t.Fatal(err)
	}
	sim := netlist.NewSimulator(b.C)
	res, err := sim.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	return DecodeSignedLane(res[len(res)-len(out):], 0)
}

func TestBuilderPanics(t *testing.T) {
	checks := map[string]func(){
		"input-width-0":  func() { NewBuilder().InputBus("x", 0) },
		"const-overflow": func() { NewBuilder().ConstBus(128, 8) },
		"signextend-narrow": func() {
			b := NewBuilder()
			b.SignExtend(b.InputBus("x", 8), 4)
		},
		"signextend-empty": func() { NewBuilder().SignExtend(Bus{}, 4) },
		"shift-negative": func() {
			b := NewBuilder()
			b.ShiftLeft(b.InputBus("x", 4), -1)
		},
		"add-mismatch": func() {
			b := NewBuilder()
			b.Add(b.InputBus("x", 4), b.InputBus("y", 5))
		},
		"add-empty":    func() { NewBuilder().Add(Bus{}, Bus{}) },
		"sumtree-none": func() { NewBuilder().SumTree(nil) },
		"truncate-bad": func() {
			b := NewBuilder()
			b.Truncate(b.InputBus("x", 4), 9)
		},
	}
	for name, f := range checks {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSharedConstants(t *testing.T) {
	b := NewBuilder()
	z1, z2 := b.Zero(), b.Zero()
	o1, o2 := b.One(), b.One()
	if z1 != z2 || o1 != o2 {
		t.Error("constant nets not shared")
	}
	if z1 == o1 {
		t.Error("zero and one share a net")
	}
}

func TestSaturate(t *testing.T) {
	cases := []struct {
		v    int64
		w    int
		want int64
	}{
		{200, 8, 127}, {-200, 8, -128}, {100, 8, 100}, {-128, 8, -128}, {127, 8, 127},
	}
	for _, c := range cases {
		if got := Saturate(c.v, c.w); got != c.want {
			t.Errorf("Saturate(%d,%d) = %d, want %d", c.v, c.w, got, c.want)
		}
	}
}
