package digital

import (
	"fmt"
	"math"

	"mstx/internal/dsp"
)

// DesignLowPassFIR designs a linear-phase low-pass FIR by the
// windowed-sinc method: taps coefficients, cutoff expressed as a
// fraction of the sample rate (0 < cutoff < 0.5), tapered by the given
// window. Coefficients are normalized to unity DC gain.
func DesignLowPassFIR(taps int, cutoff float64, w dsp.WindowType) ([]float64, error) {
	if taps < 1 {
		return nil, fmt.Errorf("digital: need at least one tap, got %d", taps)
	}
	if cutoff <= 0 || cutoff >= 0.5 {
		return nil, fmt.Errorf("digital: cutoff %g must be in (0, 0.5) of fs", cutoff)
	}
	win := dsp.Window(w, taps)
	h := make([]float64, taps)
	mid := float64(taps-1) / 2
	for i := range h {
		x := float64(i) - mid
		var sinc float64
		if x == 0 {
			sinc = 2 * cutoff
		} else {
			sinc = math.Sin(2*math.Pi*cutoff*x) / (math.Pi * x)
		}
		h[i] = sinc * win[i]
	}
	// Normalize DC gain to 1.
	var sum float64
	for _, v := range h {
		sum += v
	}
	if sum == 0 {
		return nil, fmt.Errorf("digital: degenerate design (zero DC gain)")
	}
	for i := range h {
		h[i] /= sum
	}
	return h, nil
}

// QuantizeCoeffs converts float coefficients to integers with the
// given number of fractional bits: c_int = round(c · 2^fracBits).
// It returns the integers and the actual scale factor 2^fracBits.
func QuantizeCoeffs(coeffs []float64, fracBits int) ([]int64, float64, error) {
	if fracBits < 1 || fracBits > 30 {
		return nil, 0, fmt.Errorf("digital: fracBits %d out of range [1,30]", fracBits)
	}
	scale := math.Ldexp(1, fracBits)
	out := make([]int64, len(coeffs))
	allZero := true
	for i, c := range coeffs {
		out[i] = int64(math.Round(c * scale))
		if out[i] != 0 {
			allZero = false
		}
	}
	if allZero && len(coeffs) > 0 {
		return nil, 0, fmt.Errorf("digital: all coefficients quantized to zero; increase fracBits")
	}
	return out, scale, nil
}

// FrequencyResponseMag returns |H(f)| of a float FIR at normalized
// frequency f (fraction of fs).
func FrequencyResponseMag(coeffs []float64, f float64) float64 {
	var re, im float64
	for n, c := range coeffs {
		ang := -2 * math.Pi * f * float64(n)
		re += c * math.Cos(ang)
		im += c * math.Sin(ang)
	}
	return math.Hypot(re, im)
}

// FilterFloat applies a float FIR to a record (zero initial state).
// This is the behavioural digital-filter model used by the path
// simulator when gate-level detail is not needed.
func FilterFloat(coeffs []float64, xs []float64) []float64 {
	out := make([]float64, len(xs))
	for n := range xs {
		var acc float64
		for i, c := range coeffs {
			if n-i < 0 {
				break
			}
			acc += c * xs[n-i]
		}
		out[n] = acc
	}
	return out
}

// QuantizeRecord converts a float record in [-1, 1) to width-bit
// signed integers at full scale, saturating out-of-range samples.
// It is the glue between the behavioural analog front end and the
// gate-level filter.
func QuantizeRecord(xs []float64, width int) []int64 {
	fs := math.Ldexp(1, width-1)
	out := make([]int64, len(xs))
	for i, v := range xs {
		out[i] = Saturate(int64(math.Round(v*fs)), width)
	}
	return out
}

// DequantizeRecord converts width-bit integers back to floats in
// [-1, 1), inverse of QuantizeRecord up to quantization error.
func DequantizeRecord(xs []int64, width int) []float64 {
	fs := math.Ldexp(1, width-1)
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v) / fs
	}
	return out
}
