package digital

import (
	"fmt"

	"mstx/internal/netlist"
)

// FIR is a gate-level direct-form FIR filter: y[n] = Σ c_i·x[n-i],
// built as a purely combinational netlist. Each delayed sample x[n-i]
// appears on its own primary-input bus (the delay line lives outside
// the netlist, in FIRSim), so register-output stuck-at faults are
// stuck-at faults on those input nets.
type FIR struct {
	// Coeffs are the integer tap coefficients c_0..c_{T-1}.
	Coeffs []int64
	// InWidth is the sample word width in bits (two's complement).
	InWidth int
	// DropLSBs is how many low bits of the convolution sum are
	// discarded at the output (fixed-point truncation).
	DropLSBs int
	// Circuit is the combinational netlist computing the full-precision
	// convolution sum.
	Circuit *netlist.Circuit
	// TapBuses[i] is the input bus carrying x[n-i].
	TapBuses []Bus
	// OutBus is the output bus, wide enough that the sum is exact.
	OutBus Bus
	// TapNets[i] lists the nets belonging to tap i's cone (the
	// multiplier and its adder into the sum tree), used to map detected
	// faults back to "a fault in tap i" as in the paper's Figure 1.
	TapNets [][]netlist.NetID
}

// FIROptions selects implementation variants of the gate-level FIR.
type FIROptions struct {
	// DropLSBs truncates the output (see NewFIRTruncated).
	DropLSBs int
	// UseCSD builds the constant multipliers from canonical signed-
	// digit recodings (adds and subtracts) instead of plain binary
	// shift-add — fewer gates for dense coefficients.
	UseCSD bool
}

// NewFIR builds the gate-level filter with a full-precision output.
// Coefficients must be nonzero somewhere; inWidth must be in [2, 32].
func NewFIR(coeffs []int64, inWidth int) (*FIR, error) {
	return NewFIRWithOptions(coeffs, inWidth, FIROptions{})
}

// NewFIRTruncated builds the gate-level filter with the low dropLSBs
// bits of the convolution sum discarded — the usual fixed-point
// practice of rounding off the coefficient fraction. The logic of the
// dropped bits remains in the netlist (it still drives carries into
// the retained bits), so low-bit faults stay in the universe but are
// observable only through carry propagation.
func NewFIRTruncated(coeffs []int64, inWidth, dropLSBs int) (*FIR, error) {
	return NewFIRWithOptions(coeffs, inWidth, FIROptions{DropLSBs: dropLSBs})
}

// NewFIRWithOptions builds the gate-level filter with the given
// implementation options.
func NewFIRWithOptions(coeffs []int64, inWidth int, opts FIROptions) (*FIR, error) {
	dropLSBs := opts.DropLSBs
	if len(coeffs) == 0 {
		return nil, fmt.Errorf("digital: FIR needs at least one coefficient")
	}
	if inWidth < 2 || inWidth > 32 {
		return nil, fmt.Errorf("digital: FIR input width %d out of range [2,32]", inWidth)
	}
	if dropLSBs < 0 {
		return nil, fmt.Errorf("digital: negative dropLSBs")
	}
	b := NewBuilder()
	fir := &FIR{
		Coeffs:   append([]int64(nil), coeffs...),
		InWidth:  inWidth,
		DropLSBs: dropLSBs,
	}
	var products []Bus
	for i, c := range coeffs {
		bus := b.InputBus(fmt.Sprintf("x%d", i), inWidth)
		fir.TapBuses = append(fir.TapBuses, bus)
		start := b.C.NumNets()
		var prod Bus
		if opts.UseCSD {
			prod = b.MulConstCSD(bus, c)
		} else {
			prod = b.MulConst(bus, c)
		}
		products = append(products, prod)
		var cone []netlist.NetID
		for n := start; n < b.C.NumNets(); n++ {
			cone = append(cone, netlist.NetID(n))
		}
		// The tap's own input nets belong to its cone as well.
		cone = append(cone, bus...)
		fir.TapNets = append(fir.TapNets, cone)
	}
	sum := b.SumTree(products)
	if dropLSBs >= len(sum) {
		return nil, fmt.Errorf("digital: dropLSBs %d >= sum width %d", dropLSBs, len(sum))
	}
	sum = sum[dropLSBs:]
	b.MarkOutputBus(sum, "y")
	fir.OutBus = sum
	fir.Circuit = b.C
	if err := fir.Circuit.Validate(); err != nil {
		return nil, fmt.Errorf("digital: built FIR fails validation: %w", err)
	}
	return fir, nil
}

// Taps returns the number of taps.
func (f *FIR) Taps() int { return len(f.Coeffs) }

// OutWidth returns the output bus width in bits.
func (f *FIR) OutWidth() int { return len(f.OutBus) }

// TapOfNet returns the index of the tap whose cone contains net n, or
// -1 when the net belongs to the shared sum tree.
func (f *FIR) TapOfNet(n netlist.NetID) int {
	for i, cone := range f.TapNets {
		for _, m := range cone {
			if m == n {
				return i
			}
		}
	}
	return -1
}

// Reference computes the exact behavioural response y[n] = Σ c_i·x[n-i]
// for the input record xs (samples before the record are zero). It is
// the oracle the gate-level machine is checked against.
func (f *FIR) Reference(xs []int64) []int64 {
	out := make([]int64, len(xs))
	for n := range xs {
		var acc int64
		for i, c := range f.Coeffs {
			if n-i < 0 {
				break
			}
			acc += c * xs[n-i]
		}
		out[n] = acc >> uint(f.DropLSBs)
	}
	return out
}

// FIRSim runs a gate-level FIR over a sample stream, maintaining the
// delay line and supporting 64-lane fault-parallel evaluation: lane 0
// is the fault-free machine, lanes 1..63 may each carry one injected
// fault. Inputs are broadcast to all lanes.
type FIRSim struct {
	fir   *FIR
	sim   *netlist.Simulator
	delay []int64
	// scratch buffers reused across steps
	inWords []uint64
}

// NewFIRSim returns a simulator for f with a cleared delay line.
func NewFIRSim(f *FIR) *FIRSim {
	return &FIRSim{
		fir:     f,
		sim:     netlist.NewSimulator(f.Circuit),
		delay:   make([]int64, f.Taps()),
		inWords: make([]uint64, f.Taps()*f.InWidth),
	}
}

// Reset clears the delay line (fault injections are preserved).
func (s *FIRSim) Reset() {
	for i := range s.delay {
		s.delay[i] = 0
	}
}

// ClearFaults removes all injected faults.
func (s *FIRSim) ClearFaults() { s.sim.ClearFaults() }

// Compiled reports whether the underlying simulator supports
// cone-differential replay (RunLanesCone).
func (s *FIRSim) Compiled() bool { return s.sim.Compiled() }

// InjectFault injects a stuck-at fault into the given lanes.
func (s *FIRSim) InjectFault(f netlist.Fault, laneMask uint64) error {
	return s.sim.InjectFault(f, laneMask)
}

// Saturate clamps v into the two's-complement range of width bits,
// mirroring what a fixed-point input register does to an over-range
// sample.
func Saturate(v int64, width int) int64 {
	max := int64(1)<<uint(width-1) - 1
	min := -max - 1
	if v > max {
		return max
	}
	if v < min {
		return min
	}
	return v
}

// Step shifts x into the delay line, evaluates the netlist, and
// returns the per-lane outputs. The returned slice is reused by the
// next Step; callers keeping results must copy. x is saturated to the
// input width.
func (s *FIRSim) Step(x int64) ([]uint64, error) {
	copy(s.delay[1:], s.delay[:len(s.delay)-1])
	s.delay[0] = Saturate(x, s.fir.InWidth)
	w := s.fir.InWidth
	for tap, v := range s.delay {
		for bit := 0; bit < w; bit++ {
			if v>>uint(bit)&1 == 1 {
				s.inWords[tap*w+bit] = ^uint64(0)
			} else {
				s.inWords[tap*w+bit] = 0
			}
		}
	}
	return s.sim.Run(s.inWords)
}

// StepValue is Step returning only the fault-free (lane 0) output as a
// signed integer.
func (s *FIRSim) StepValue(x int64) (int64, error) {
	out, err := s.Step(x)
	if err != nil {
		return 0, err
	}
	return DecodeSignedLane(out, 0), nil
}

// Run processes a whole record and returns the lane-0 output record.
func (s *FIRSim) Run(xs []int64) ([]int64, error) {
	out := make([]int64, len(xs))
	for i, x := range xs {
		y, err := s.StepValue(x)
		if err != nil {
			return nil, err
		}
		out[i] = y
	}
	return out, nil
}

// Warm preloads the delay line by feeding the samples of xs without
// collecting outputs. Feeding the last Taps−1 samples of a record
// before running it yields the exact steady-state periodic response
// for a coherent (record-periodic) stimulus.
func (s *FIRSim) Warm(xs []int64) error {
	for _, x := range xs {
		if _, err := s.Step(x); err != nil {
			return err
		}
	}
	return nil
}

// RunPeriodic treats xs as one period of a periodic stimulus: the
// delay line is warmed with the record tail, so the output record is
// the steady-state response with no start-up transient. This is the
// evaluation mode for spectral (coherent-test) campaigns.
func (s *FIRSim) RunPeriodic(xs []int64) ([]int64, error) {
	if err := s.warmTail(xs); err != nil {
		return nil, err
	}
	return s.Run(xs)
}

// RunLanesPeriodic is RunLanes with the periodic warm-up of
// RunPeriodic.
func (s *FIRSim) RunLanesPeriodic(xs []int64, lanes int) ([][]int64, error) {
	if err := s.warmTail(xs); err != nil {
		return nil, err
	}
	return s.RunLanes(xs, lanes)
}

func (s *FIRSim) warmTail(xs []int64) error {
	warm := s.fir.Taps() - 1
	if warm > len(xs) {
		warm = len(xs)
	}
	return s.Warm(xs[len(xs)-warm:])
}

// ReferencePeriodic is Reference with periodic boundary conditions:
// samples before the record wrap around from its end.
func (f *FIR) ReferencePeriodic(xs []int64) []int64 {
	n := len(xs)
	out := make([]int64, n)
	if n == 0 {
		return out
	}
	for i := range xs {
		var acc int64
		for t, c := range f.Coeffs {
			acc += c * xs[((i-t)%n+n)%n]
		}
		out[i] = acc >> uint(f.DropLSBs)
	}
	return out
}

// Baseline is a fault-free periodic run captured for differential
// replay: a bit-packed net-value snapshot of every record step plus
// the decoded good output record. One capture serves every fault batch
// of a campaign over the same stimulus (see RunLanesCone). The
// fault-free machine broadcasts its inputs to all lanes, so every net
// word is all-zeros or all-ones and one bit per net loses nothing —
// and a whole record's snapshots stay cache-resident while dozens of
// batches replay against them.
type Baseline struct {
	// Snaps[t] holds the packed net values at record step t
	// (netlist.SnapshotBits layout).
	Snaps [][]uint64
	// Good is the decoded fault-free output record.
	Good []int64
}

// BaselineBytes returns the snapshot storage size of a steps-long
// capture, for callers budgeting memory beforehand.
func BaselineBytes(f *FIR, steps int) int {
	return steps * netlist.BitWords(f.Circuit.NumNets()) * 8
}

// CaptureBaseline runs xs as one period of a periodic stimulus on the
// fault-free machine (faults must not be injected on this simulator)
// and records the per-step net-value snapshots and the good output
// record.
func (s *FIRSim) CaptureBaseline(xs []int64) (*Baseline, error) {
	if err := s.warmTail(xs); err != nil {
		return nil, err
	}
	bw := netlist.BitWords(s.fir.Circuit.NumNets())
	backing := make([]uint64, len(xs)*bw)
	base := &Baseline{
		Snaps: make([][]uint64, len(xs)),
		Good:  make([]int64, len(xs)),
	}
	for i, x := range xs {
		words, err := s.Step(x)
		if err != nil {
			return nil, err
		}
		snap := backing[i*bw : (i+1)*bw]
		s.sim.SnapshotBits(snap)
		base.Snaps[i] = snap
		base.Good[i] = DecodeSignedLane(words, 0)
	}
	return base, nil
}

// RunLanesCone is RunLanesPeriodic replayed differentially against a
// baseline captured from the same stimulus: per step only the fanout
// cone of the injected faults is re-evaluated, and only cone outputs
// are decoded per lane (the rest carry the good value). The returned
// records are bit-identical to RunLanesPeriodic's. Inject faults
// before calling.
func (s *FIRSim) RunLanesCone(base *Baseline, lanes int) ([][]int64, error) {
	if lanes <= 0 || lanes > 64 {
		return nil, fmt.Errorf("digital: lanes %d out of range [1,64]", lanes)
	}
	cone := s.sim.BuildCone()
	if cone == nil {
		return nil, fmt.Errorf("digital: circuit not compiled for cone replay")
	}
	steps := len(base.Snaps)
	out := make([][]int64, lanes)
	out[0] = append([]int64(nil), base.Good...)
	for l := 1; l < lanes; l++ {
		out[l] = make([]int64, steps)
	}
	outNets := s.fir.Circuit.Outputs
	width := len(outNets)
	coneOuts := cone.OutputIndices()
	coneWords := make([]uint64, len(coneOuts))
	var coneMask uint64
	for _, i := range coneOuts {
		coneMask |= 1 << uint(i)
	}
	widthMask := ^uint64(0)
	if width < 64 {
		widthMask = 1<<uint(width) - 1
	}
	for t := 0; t < steps; t++ {
		s.sim.RunCone(cone, base.Snaps[t])
		for k, i := range coneOuts {
			coneWords[k] = s.sim.Value(outNets[i])
		}
		v0 := uint64(base.Good[t]) & widthMask &^ coneMask
		for l := 1; l < lanes; l++ {
			v := v0
			for k, i := range coneOuts {
				v |= (coneWords[k] >> uint(l) & 1) << uint(i)
			}
			if width < 64 && v>>(uint(width)-1)&1 == 1 {
				v |= ^uint64(0) << uint(width)
			}
			out[l][t] = int64(v)
		}
	}
	return out, nil
}

// RunLanes processes a whole record and returns one output record per
// requested lane (lanes must be < 64).
func (s *FIRSim) RunLanes(xs []int64, lanes int) ([][]int64, error) {
	if lanes <= 0 || lanes > 64 {
		return nil, fmt.Errorf("digital: lanes %d out of range [1,64]", lanes)
	}
	out := make([][]int64, lanes)
	for l := range out {
		out[l] = make([]int64, len(xs))
	}
	for i, x := range xs {
		words, err := s.Step(x)
		if err != nil {
			return nil, err
		}
		for l := 0; l < lanes; l++ {
			out[l][i] = DecodeSignedLane(words, l)
		}
	}
	return out, nil
}
