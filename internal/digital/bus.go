// Package digital builds word-level arithmetic hardware — two's-
// complement buses, ripple-carry adders, constant-coefficient
// shift-add multipliers — on the netlist substrate, and uses them to
// construct the gate-level FIR filters whose stuck-at fault behaviour
// the paper studies. It also provides behavioural (float64 and int64)
// reference models and windowed-sinc filter design.
package digital

import (
	"fmt"

	"mstx/internal/netlist"
)

// Bus is a two's-complement word: a slice of nets, least-significant
// bit first. The top net is the sign bit.
type Bus []netlist.NetID

// Width returns the bus width in bits.
func (b Bus) Width() int { return len(b) }

// Builder wraps a netlist circuit with word-level construction
// helpers. All operations append gates to C.
type Builder struct {
	// C is the circuit under construction.
	C *netlist.Circuit
	// zero/one cache constant nets so repeated constants share drivers.
	zero, one netlist.NetID
	hasZero   bool
	hasOne    bool
}

// NewBuilder returns a Builder over a fresh circuit.
func NewBuilder() *Builder {
	return &Builder{C: netlist.New()}
}

// Zero returns the shared constant-0 net.
func (b *Builder) Zero() netlist.NetID {
	if !b.hasZero {
		b.zero = b.C.Const(false)
		b.hasZero = true
	}
	return b.zero
}

// One returns the shared constant-1 net.
func (b *Builder) One() netlist.NetID {
	if !b.hasOne {
		b.one = b.C.Const(true)
		b.hasOne = true
	}
	return b.one
}

// InputBus declares a width-bit primary-input bus named name, bit i
// becoming "name[i]".
func (b *Builder) InputBus(name string, width int) Bus {
	if width <= 0 {
		panic("digital: InputBus width must be positive")
	}
	bus := make(Bus, width)
	for i := range bus {
		bus[i] = b.C.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	return bus
}

// ConstBus returns a width-bit bus carrying the two's-complement value
// v. It panics if v does not fit in width bits.
func (b *Builder) ConstBus(v int64, width int) Bus {
	if !FitsSigned(v, width) {
		panic(fmt.Sprintf("digital: constant %d does not fit in %d bits", v, width))
	}
	bus := make(Bus, width)
	for i := range bus {
		if v>>uint(i)&1 == 1 {
			bus[i] = b.One()
		} else {
			bus[i] = b.Zero()
		}
	}
	return bus
}

// MarkOutputBus declares every bit of the bus a primary output named
// "name[i]".
func (b *Builder) MarkOutputBus(bus Bus, name string) {
	for i, n := range bus {
		b.C.MarkOutput(n, fmt.Sprintf("%s[%d]", name, i))
	}
}

// SignExtend widens the bus to width bits by replicating the sign net.
// It panics when width is smaller than the current width.
func (b *Builder) SignExtend(bus Bus, width int) Bus {
	if width < len(bus) {
		panic("digital: SignExtend cannot narrow a bus")
	}
	if len(bus) == 0 {
		panic("digital: SignExtend of empty bus")
	}
	out := make(Bus, width)
	copy(out, bus)
	sign := bus[len(bus)-1]
	for i := len(bus); i < width; i++ {
		out[i] = sign
	}
	return out
}

// ShiftLeft returns the bus shifted left by k bits (zero fill),
// widening by k so no value bits are lost.
func (b *Builder) ShiftLeft(bus Bus, k int) Bus {
	if k < 0 {
		panic("digital: negative shift")
	}
	out := make(Bus, 0, len(bus)+k)
	for i := 0; i < k; i++ {
		out = append(out, b.Zero())
	}
	return append(out, bus...)
}

// Add builds a ripple-carry adder over equal-width buses and returns a
// same-width sum plus the carry-out net. Callers adding sign-extended
// operands one bit wider than needed can ignore the carry.
func (b *Builder) Add(x, y Bus) (Bus, netlist.NetID) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("digital: Add width mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) == 0 {
		panic("digital: Add of empty buses")
	}
	sum := make(Bus, len(x))
	var carry netlist.NetID
	for i := range x {
		if i == 0 {
			sum[i], carry = b.C.HalfAdder(x[i], y[i])
		} else {
			sum[i], carry = b.C.FullAdder(x[i], y[i], carry)
		}
	}
	return sum, carry
}

// AddExpand sign-extends both operands to max(width)+1 bits and adds,
// so the result can never overflow.
func (b *Builder) AddExpand(x, y Bus) Bus {
	w := len(x)
	if len(y) > w {
		w = len(y)
	}
	w++
	xe := b.SignExtend(x, w)
	ye := b.SignExtend(y, w)
	sum, _ := b.Add(xe, ye)
	return sum
}

// Negate returns the two's-complement negation, widened by one bit so
// that negating the most negative value cannot overflow.
func (b *Builder) Negate(bus Bus) Bus {
	w := len(bus) + 1
	ext := b.SignExtend(bus, w)
	inv := make(Bus, w)
	for i, n := range ext {
		inv[i] = b.C.Not(n)
	}
	one := b.ConstBus(1, w)
	sum, _ := b.Add(inv, one)
	return sum
}

// MulConst multiplies the bus by integer constant k using shift-add
// over the set bits of |k|, negating for k < 0. The result width is
// len(bus) + bitlen(|k|) (+1 when k < 0), wide enough to be exact.
// k == 0 yields a one-bit zero bus.
func (b *Builder) MulConst(bus Bus, k int64) Bus {
	if k == 0 {
		return Bus{b.Zero()}
	}
	neg := k < 0
	if neg {
		k = -k
	}
	var acc Bus
	for i := 0; i < 64; i++ {
		if k>>uint(i)&1 == 0 {
			continue
		}
		term := b.ShiftLeft(bus, i)
		if acc == nil {
			acc = term
		} else {
			acc = b.AddExpand(acc, term)
		}
	}
	if neg {
		acc = b.Negate(acc)
	}
	return acc
}

// SumTree adds the buses in a balanced tree, minimizing depth. It
// panics on an empty list.
func (b *Builder) SumTree(buses []Bus) Bus {
	if len(buses) == 0 {
		panic("digital: SumTree of nothing")
	}
	work := append([]Bus(nil), buses...)
	for len(work) > 1 {
		var next []Bus
		for i := 0; i+1 < len(work); i += 2 {
			next = append(next, b.AddExpand(work[i], work[i+1]))
		}
		if len(work)%2 == 1 {
			next = append(next, work[len(work)-1])
		}
		work = next
	}
	return work[0]
}

// Truncate drops high bits down to width, keeping the low bits.
// This models a datapath that carries fewer guard bits than exact.
func (b *Builder) Truncate(bus Bus, width int) Bus {
	if width <= 0 || width > len(bus) {
		panic("digital: bad Truncate width")
	}
	out := make(Bus, width)
	copy(out, bus[:width])
	return out
}

// FitsSigned reports whether v is representable in width bits two's
// complement.
func FitsSigned(v int64, width int) bool {
	if width <= 0 {
		return false
	}
	if width >= 64 {
		return true
	}
	min := -(int64(1) << uint(width-1))
	max := int64(1)<<uint(width-1) - 1
	return v >= min && v <= max
}

// EncodeSigned packs the low width bits of v into per-bit boolean
// words for the simulator: bit i of the returned slice is ~0 when bit
// i of v is 1, else 0 — broadcasting the value to all 64 lanes.
func EncodeSigned(v int64, width int) []uint64 {
	out := make([]uint64, width)
	for i := 0; i < width; i++ {
		if v>>uint(i)&1 == 1 {
			out[i] = ^uint64(0)
		}
	}
	return out
}

// DecodeSignedLane reconstructs the signed value of a bus from per-bit
// output words, taking bit `lane` of each word and sign-extending.
func DecodeSignedLane(words []uint64, lane int) int64 {
	var v uint64
	for i, w := range words {
		v |= (w >> uint(lane) & 1) << uint(i)
	}
	width := len(words)
	if width < 64 && v>>(uint(width)-1)&1 == 1 {
		v |= ^uint64(0) << uint(width)
	}
	return int64(v)
}
