package digital

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mstx/internal/netlist"
)

func TestCSDDigitsProperties(t *testing.T) {
	f := func(k int32) bool {
		digits := CSDDigits(int64(k))
		// Value round trip.
		var v int64
		for i := len(digits) - 1; i >= 0; i-- {
			v = v*2 + int64(digits[i])
		}
		// Recompute: digits are LSB-first.
		v = 0
		for i, d := range digits {
			v += int64(d) << uint(i)
		}
		if v != int64(k) {
			return false
		}
		// No two adjacent nonzero digits.
		for i := 1; i < len(digits); i++ {
			if digits[i] != 0 && digits[i-1] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCSDSparserThanBinary(t *testing.T) {
	// For dense constants like 0b0111_0111, CSD uses fewer nonzero
	// digits than binary.
	k := int64(0x77)
	binOnes := 0
	for v := k; v != 0; v >>= 1 {
		if v&1 == 1 {
			binOnes++
		}
	}
	csdOnes := 0
	for _, d := range CSDDigits(k) {
		if d != 0 {
			csdOnes++
		}
	}
	if csdOnes >= binOnes {
		t.Fatalf("CSD %d nonzero vs binary %d for 0x77", csdOnes, binOnes)
	}
}

func TestSubExpand(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		b := NewBuilder()
		x := b.InputBus("x", 9)
		y := b.InputBus("y", 9)
		d := b.SubExpand(x, y)
		xv := int64(rng.Intn(512) - 256)
		yv := int64(rng.Intn(512) - 256)
		got := evalBus(t, b, []Bus{x, y}, []int64{xv, yv}, d)
		if got != xv-yv {
			t.Fatalf("Sub(%d,%d) = %d", xv, yv, got)
		}
	}
}

func TestMulConstCSDEqualsMulConst(t *testing.T) {
	f := func(kv int16, vv int8) bool {
		k := int64(kv)
		v := int64(vv)
		b := NewBuilder()
		x := b.InputBus("x", 8)
		p := b.MulConstCSD(x, k)
		b.MarkOutputBus(p, "p")
		sim := netlist.NewSimulator(b.C)
		res, err := sim.Run(EncodeSigned(v, 8))
		if err != nil {
			return false
		}
		return DecodeSignedLane(res, 0) == k*v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMulConstCSDFewerGatesForDenseConstants(t *testing.T) {
	build := func(mul func(b *Builder, x Bus) Bus) int {
		b := NewBuilder()
		x := b.InputBus("x", 12)
		p := mul(b, x)
		b.MarkOutputBus(p, "p")
		return b.C.NumGates()
	}
	k := int64(0x6FF) // dense bit pattern
	bin := build(func(b *Builder, x Bus) Bus { return b.MulConst(x, k) })
	csd := build(func(b *Builder, x Bus) Bus { return b.MulConstCSD(x, k) })
	if csd >= bin {
		t.Fatalf("CSD %d gates vs binary %d for dense constant", csd, bin)
	}
}

func TestMulVar(t *testing.T) {
	b := NewBuilder()
	x := b.InputBus("x", 6)
	y := b.InputBus("y", 6)
	p := b.MulVar(x, y)
	b.MarkOutputBus(p, "p")
	if err := b.C.Validate(); err != nil {
		t.Fatal(err)
	}
	sim := netlist.NewSimulator(b.C)
	for _, tc := range [][2]int64{{0, 0}, {1, 1}, {-1, 1}, {-1, -1}, {31, -32}, {-32, -32}, {17, 13}, {-25, 20}} {
		words := append(EncodeSigned(tc[0], 6), EncodeSigned(tc[1], 6)...)
		res, err := sim.Run(words)
		if err != nil {
			t.Fatal(err)
		}
		got := DecodeSignedLane(res, 0)
		if got != tc[0]*tc[1] {
			t.Fatalf("MulVar(%d,%d) = %d", tc[0], tc[1], got)
		}
	}
}

func TestMulVarProperty(t *testing.T) {
	b := NewBuilder()
	x := b.InputBus("x", 7)
	y := b.InputBus("y", 7)
	p := b.MulVar(x, y)
	b.MarkOutputBus(p, "p")
	sim := netlist.NewSimulator(b.C)
	f := func(a, c int8) bool {
		av, cv := int64(a)/2, int64(c)/2 // fit 7 bits
		words := append(EncodeSigned(av, 7), EncodeSigned(cv, 7)...)
		res, err := sim.Run(words)
		if err != nil {
			return false
		}
		return DecodeSignedLane(res, 0) == av*cv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVarPanics(t *testing.T) {
	b := NewBuilder()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty bus")
		}
	}()
	b.MulVar(Bus{}, b.InputBus("y", 4))
}

func TestMulConstCSDZero(t *testing.T) {
	b := NewBuilder()
	x := b.InputBus("x", 4)
	p := b.MulConstCSD(x, 0)
	got := evalBus(t, b, []Bus{x}, []int64{5}, p)
	if got != 0 {
		t.Fatalf("CSD×0 = %d", got)
	}
}
