package digital

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mstx/internal/netlist"
)

func TestNewSeqFIRValidation(t *testing.T) {
	if _, err := NewSeqFIR(nil, 8, 0); err == nil {
		t.Error("empty coefficients accepted")
	}
	if _, err := NewSeqFIR([]int64{1}, 1, 0); err == nil {
		t.Error("width 1 accepted")
	}
	if _, err := NewSeqFIR([]int64{1}, 8, -1); err == nil {
		t.Error("negative drop accepted")
	}
	if _, err := NewSeqFIR([]int64{1}, 8, 99); err == nil {
		t.Error("huge drop accepted")
	}
}

func TestSeqFIRMatchesCombinational(t *testing.T) {
	coeffs := []int64{3, -5, 7, 11, -2}
	seq, err := NewSeqFIR(coeffs, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	comb, err := NewFIR(coeffs, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(40))
	xs := make([]int64, 80)
	for i := range xs {
		xs[i] = int64(rng.Intn(256) - 128)
	}
	ssim, err := NewSeqFIRSim(seq)
	if err != nil {
		t.Fatal(err)
	}
	sGot, err := ssim.Run(xs)
	if err != nil {
		t.Fatal(err)
	}
	cGot, err := NewFIRSim(comb).Run(xs)
	if err != nil {
		t.Fatal(err)
	}
	ref := comb.Reference(xs)
	for i := range xs {
		if sGot[i] != cGot[i] || sGot[i] != ref[i] {
			t.Fatalf("sample %d: seq %d comb %d ref %d", i, sGot[i], cGot[i], ref[i])
		}
	}
	if seq.Circuit.NumFFs() != (len(coeffs)-1)*8 {
		t.Errorf("FF count = %d", seq.Circuit.NumFFs())
	}
}

func TestSeqFIRMatchesCombinationalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		taps := 1 + rng.Intn(4)
		coeffs := make([]int64, taps)
		for i := range coeffs {
			coeffs[i] = int64(rng.Intn(15) - 7)
		}
		// Guarantee a nonzero coefficient so the sum bus is wide
		// enough for any drop value below.
		coeffs[0] = coeffs[0]*2 + 1
		drop := rng.Intn(3)
		seq, err := NewSeqFIR(coeffs, 6, drop)
		if err != nil {
			return false
		}
		comb, err := NewFIRTruncated(coeffs, 6, drop)
		if err != nil {
			return false
		}
		xs := make([]int64, 24)
		for i := range xs {
			xs[i] = int64(rng.Intn(64) - 32)
		}
		ssim, err := NewSeqFIRSim(seq)
		if err != nil {
			return false
		}
		sGot, err := ssim.Run(xs)
		if err != nil {
			return false
		}
		cGot, err := NewFIRSim(comb).Run(xs)
		if err != nil {
			return false
		}
		for i := range xs {
			if sGot[i] != cGot[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqFIRRegisterFaultEquivalence(t *testing.T) {
	// A stuck-at on the LAST delay register equals a stuck-at on the
	// corresponding combinational tap-input net (no downstream register
	// consumes it). Earlier registers differ — see the shift-through
	// test below.
	coeffs := []int64{2, -3, 4}
	seq, err := NewSeqFIR(coeffs, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	comb, err := NewFIR(coeffs, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	xs := make([]int64, 40)
	for i := range xs {
		xs[i] = int64(rng.Intn(64) - 32)
	}
	for tap := len(coeffs) - 1; tap < len(coeffs); tap++ {
		for bit := 0; bit < 6; bit += 2 {
			for _, stuck := range []netlist.StuckValue{netlist.StuckAt0, netlist.StuckAt1} {
				ssim, err := NewSeqFIRSim(seq)
				if err != nil {
					t.Fatal(err)
				}
				if err := ssim.InjectFault(netlist.Fault{
					Net: seq.DelayBuses[tap-1][bit], Stuck: stuck,
				}, ^uint64(0)); err != nil {
					t.Fatal(err)
				}
				sGot, err := ssim.Run(xs)
				if err != nil {
					t.Fatal(err)
				}
				csim := NewFIRSim(comb)
				if err := csim.InjectFault(netlist.Fault{
					Net: comb.TapBuses[tap][bit], Stuck: stuck,
				}, ^uint64(0)); err != nil {
					t.Fatal(err)
				}
				cGot, err := csim.Run(xs)
				if err != nil {
					t.Fatal(err)
				}
				for i := range xs {
					if sGot[i] != cGot[i] {
						t.Fatalf("tap %d bit %d %v: sample %d seq %d comb %d",
							tap, bit, stuck, i, sGot[i], cGot[i])
					}
				}
			}
		}
	}
}

func TestSeqFIRShiftThroughCorruption(t *testing.T) {
	// A stuck register output also corrupts what the NEXT register
	// captures — physics the combinational input-fault approximation
	// misses. The two models must differ for a mid-line register.
	coeffs := []int64{2, -3, 4}
	seq, err := NewSeqFIR(coeffs, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	comb, err := NewFIR(coeffs, 6)
	if err != nil {
		t.Fatal(err)
	}
	xs := []int64{20, -20, 20, -20, 20, -20, 20, -20}
	ssim, err := NewSeqFIRSim(seq)
	if err != nil {
		t.Fatal(err)
	}
	if err := ssim.InjectFault(netlist.Fault{Net: seq.DelayBuses[0][0], Stuck: netlist.StuckAt1}, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	sGot, err := ssim.Run(xs)
	if err != nil {
		t.Fatal(err)
	}
	csim := NewFIRSim(comb)
	if err := csim.InjectFault(netlist.Fault{Net: comb.TapBuses[1][0], Stuck: netlist.StuckAt1}, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	cGot, err := csim.Run(xs)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range xs {
		if sGot[i] != cGot[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("mid-line register fault should shift corruption downstream")
	}
}

func TestSeqFIRReset(t *testing.T) {
	seq, err := NewSeqFIR([]int64{1, 1}, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSeqFIRSim(seq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run([]int64{20, 20}); err != nil {
		t.Fatal(err)
	}
	sim.Reset()
	words, err := sim.Step(0)
	if err != nil {
		t.Fatal(err)
	}
	if DecodeSignedLane(words, 0) != 0 {
		t.Fatal("registers survived Reset")
	}
}
