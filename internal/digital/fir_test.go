package digital

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mstx/internal/dsp"
	"mstx/internal/netlist"
)

func TestNewFIRValidation(t *testing.T) {
	if _, err := NewFIR(nil, 8); err == nil {
		t.Error("empty coefficients accepted")
	}
	if _, err := NewFIR([]int64{1}, 1); err == nil {
		t.Error("width 1 accepted")
	}
	if _, err := NewFIR([]int64{1}, 40); err == nil {
		t.Error("width 40 accepted")
	}
}

func TestFIRMatchesReference(t *testing.T) {
	coeffs := []int64{3, -5, 7, 11, -2}
	fir, err := NewFIR(coeffs, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(30))
	xs := make([]int64, 100)
	for i := range xs {
		xs[i] = int64(rng.Intn(256) - 128)
	}
	sim := NewFIRSim(fir)
	got, err := sim.Run(xs)
	if err != nil {
		t.Fatal(err)
	}
	want := fir.Reference(xs)
	for i := range xs {
		if got[i] != want[i] {
			t.Fatalf("sample %d: gate-level %d != reference %d", i, got[i], want[i])
		}
	}
}

func TestFIRGateLevelEqualsReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		taps := 1 + rng.Intn(6)
		coeffs := make([]int64, taps)
		for i := range coeffs {
			coeffs[i] = int64(rng.Intn(31) - 15)
		}
		fir, err := NewFIR(coeffs, 6)
		if err != nil {
			return false
		}
		sim := NewFIRSim(fir)
		xs := make([]int64, 30)
		for i := range xs {
			xs[i] = int64(rng.Intn(64) - 32)
		}
		got, err := sim.Run(xs)
		if err != nil {
			return false
		}
		want := fir.Reference(xs)
		for i := range xs {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFIRZeroCoefficient(t *testing.T) {
	fir, err := NewFIR([]int64{0, 5, 0}, 6)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewFIRSim(fir)
	got, err := sim.Run([]int64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	want := fir.Reference([]int64{10, 20, 30})
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestFIRInputSaturation(t *testing.T) {
	fir, err := NewFIR([]int64{1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewFIRSim(fir)
	y, err := sim.StepValue(1000) // saturates to 127
	if err != nil {
		t.Fatal(err)
	}
	if y != 127 {
		t.Fatalf("saturated output = %d, want 127", y)
	}
}

func TestFIRReset(t *testing.T) {
	fir, err := NewFIR([]int64{1, 1, 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewFIRSim(fir)
	if _, err := sim.Run([]int64{100, 100, 100}); err != nil {
		t.Fatal(err)
	}
	sim.Reset()
	y, err := sim.StepValue(0)
	if err != nil {
		t.Fatal(err)
	}
	if y != 0 {
		t.Fatalf("output after Reset = %d, want 0", y)
	}
}

func TestFIRFaultPerturbsOnlyItsLane(t *testing.T) {
	coeffs := []int64{2, -3, 4}
	fir, err := NewFIR(coeffs, 6)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewFIRSim(fir)
	// Stuck-at-1 on the LSB of the output in lane 5.
	if err := sim.InjectFault(netlist.Fault{Net: fir.OutBus[0], Stuck: netlist.StuckAt1}, 1<<5); err != nil {
		t.Fatal(err)
	}
	xs := []int64{8, -4, 2, 6, -6}
	lanes, err := sim.RunLanes(xs, 8)
	if err != nil {
		t.Fatal(err)
	}
	ref := fir.Reference(xs)
	for i := range xs {
		if lanes[0][i] != ref[i] {
			t.Fatalf("good lane wrong at %d", i)
		}
		if lanes[5][i] != ref[i]|1 {
			t.Fatalf("fault lane %d: got %d, want %d", i, lanes[5][i], ref[i]|1)
		}
		if lanes[3][i] != ref[i] {
			t.Fatalf("unrelated lane perturbed at %d", i)
		}
	}
}

func TestFIRRunLanesValidation(t *testing.T) {
	fir, _ := NewFIR([]int64{1}, 4)
	sim := NewFIRSim(fir)
	if _, err := sim.RunLanes([]int64{1}, 0); err == nil {
		t.Error("lanes=0 accepted")
	}
	if _, err := sim.RunLanes([]int64{1}, 65); err == nil {
		t.Error("lanes=65 accepted")
	}
}

func TestTapOfNet(t *testing.T) {
	fir, err := NewFIR([]int64{1, 2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, bus := range fir.TapBuses {
		if got := fir.TapOfNet(bus[0]); got != i {
			t.Errorf("TapOfNet(tap %d input) = %d", i, got)
		}
	}
	// The final output bus sign bit lives in the shared sum tree.
	if got := fir.TapOfNet(fir.OutBus[len(fir.OutBus)-1]); got != -1 {
		t.Errorf("sum-tree net attributed to tap %d", got)
	}
}

func TestClearFaultsOnFIRSim(t *testing.T) {
	fir, _ := NewFIR([]int64{1}, 4)
	sim := NewFIRSim(fir)
	if err := sim.InjectFault(netlist.Fault{Net: fir.OutBus[0], Stuck: netlist.StuckAt1}, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	sim.ClearFaults()
	sim.Reset()
	y, err := sim.StepValue(0)
	if err != nil {
		t.Fatal(err)
	}
	if y != 0 {
		t.Fatalf("fault survived ClearFaults: %d", y)
	}
}

func TestDesignLowPassFIR(t *testing.T) {
	h, err := DesignLowPassFIR(31, 0.2, dsp.Hamming)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 31 {
		t.Fatalf("len = %d", len(h))
	}
	// Unity DC gain.
	if g := FrequencyResponseMag(h, 0); math.Abs(g-1) > 1e-12 {
		t.Errorf("DC gain = %g", g)
	}
	// Passband (0.1·fs) near unity, stopband (0.35·fs) well attenuated.
	if g := FrequencyResponseMag(h, 0.1); math.Abs(g-1) > 0.05 {
		t.Errorf("passband gain = %g", g)
	}
	if g := FrequencyResponseMag(h, 0.35); g > 0.01 {
		t.Errorf("stopband gain = %g, want < 0.01", g)
	}
	// Linear phase -> symmetric taps.
	for i := 0; i < len(h)/2; i++ {
		if math.Abs(h[i]-h[len(h)-1-i]) > 1e-12 {
			t.Errorf("asymmetric taps at %d", i)
		}
	}
}

func TestDesignLowPassFIRValidation(t *testing.T) {
	if _, err := DesignLowPassFIR(0, 0.2, dsp.Hamming); err == nil {
		t.Error("0 taps accepted")
	}
	if _, err := DesignLowPassFIR(5, 0, dsp.Hamming); err == nil {
		t.Error("cutoff 0 accepted")
	}
	if _, err := DesignLowPassFIR(5, 0.5, dsp.Hamming); err == nil {
		t.Error("cutoff 0.5 accepted")
	}
}

func TestQuantizeCoeffs(t *testing.T) {
	ints, scale, err := QuantizeCoeffs([]float64{0.5, -0.25, 0.125}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if scale != 256 {
		t.Errorf("scale = %g", scale)
	}
	want := []int64{128, -64, 32}
	for i := range want {
		if ints[i] != want[i] {
			t.Errorf("ints[%d] = %d, want %d", i, ints[i], want[i])
		}
	}
	if _, _, err := QuantizeCoeffs([]float64{1}, 0); err == nil {
		t.Error("fracBits 0 accepted")
	}
	if _, _, err := QuantizeCoeffs([]float64{1e-9}, 8); err == nil {
		t.Error("all-zero quantization accepted")
	}
}

func TestFilterFloatMatchesIntReference(t *testing.T) {
	coeffs := []float64{1, 2, -1}
	xs := []float64{1, 0, 0, 2, -1}
	got := FilterFloat(coeffs, xs)
	want := []float64{1, 2, -1, 2, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("FilterFloat[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestQuantizeDequantizeRecord(t *testing.T) {
	xs := []float64{0, 0.5, -0.5, 0.999, -1, 2, -2}
	q := QuantizeRecord(xs, 8)
	if q[0] != 0 || q[1] != 64 || q[2] != -64 {
		t.Fatalf("quantized: %v", q)
	}
	if q[5] != 127 || q[6] != -128 {
		t.Fatalf("saturation: %v", q)
	}
	d := DequantizeRecord(q, 8)
	for i := 0; i < 3; i++ {
		if math.Abs(d[i]-xs[i]) > 1.0/128 {
			t.Errorf("round trip %d: %g vs %g", i, d[i], xs[i])
		}
	}
}

func TestPaper13TapFilterBuilds(t *testing.T) {
	h, err := DesignLowPassFIR(13, 0.15, dsp.Hamming)
	if err != nil {
		t.Fatal(err)
	}
	ints, _, err := QuantizeCoeffs(h, 9)
	if err != nil {
		t.Fatal(err)
	}
	fir, err := NewFIR(ints, 10)
	if err != nil {
		t.Fatal(err)
	}
	st := fir.Circuit.Stats()
	if st.Gates < 500 {
		t.Errorf("13-tap filter suspiciously small: %v", st)
	}
	// Gate level must still match the reference on a sine record.
	sim := NewFIRSim(fir)
	xs := make([]int64, 64)
	for i := range xs {
		xs[i] = int64(math.Round(400 * math.Sin(2*math.Pi*float64(i)/16)))
	}
	got, err := sim.Run(xs)
	if err != nil {
		t.Fatal(err)
	}
	want := fir.Reference(xs)
	for i := range xs {
		if got[i] != want[i] {
			t.Fatalf("sample %d: %d != %d", i, got[i], want[i])
		}
	}
}

func BenchmarkFIRSimStep13Tap(b *testing.B) {
	h, err := DesignLowPassFIR(13, 0.15, dsp.Hamming)
	if err != nil {
		b.Fatal(err)
	}
	ints, _, err := QuantizeCoeffs(h, 9)
	if err != nil {
		b.Fatal(err)
	}
	fir, err := NewFIR(ints, 10)
	if err != nil {
		b.Fatal(err)
	}
	sim := NewFIRSim(fir)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Step(int64(i % 512)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRunLanesConeMatchesRunLanesPeriodic(t *testing.T) {
	// The differential replay path must reproduce the full periodic
	// 63-lane run bit for bit, for fault batches covering primary-input
	// nets (forced side values) as well as gate outputs (cone gates).
	fir, err := NewFIR([]int64{5, -11, 23, -11, 5}, 9)
	if err != nil {
		t.Fatal(err)
	}
	all := netlist.AllFaults(fir.Circuit)
	rng := rand.New(rand.NewSource(31))
	xs := make([]int64, 160)
	for i := range xs {
		xs[i] = int64(rng.Intn(400) - 200)
	}
	for trial := 0; trial < 4; trial++ {
		var faults []netlist.Fault
		for i := 0; i < 63 && i < len(all); i++ {
			faults = append(faults, all[rng.Intn(len(all))])
		}
		ref := NewFIRSim(fir)
		diff := NewFIRSim(fir)
		for i, f := range faults {
			mask := uint64(1) << uint(i+1)
			if err := ref.InjectFault(f, mask); err != nil {
				t.Fatal(err)
			}
			if err := diff.InjectFault(f, mask); err != nil {
				t.Fatal(err)
			}
		}
		want, err := ref.RunLanesPeriodic(xs, len(faults)+1)
		if err != nil {
			t.Fatal(err)
		}
		base, err := NewFIRSim(fir).CaptureBaseline(xs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := diff.RunLanesCone(base, len(faults)+1)
		if err != nil {
			t.Fatal(err)
		}
		for l := range want {
			for n := range want[l] {
				if got[l][n] != want[l][n] {
					t.Fatalf("trial %d lane %d sample %d: cone %d full %d",
						trial, l, n, got[l][n], want[l][n])
				}
			}
		}
	}
}

func TestCaptureBaselineGoodRecord(t *testing.T) {
	// The baseline's Good record is the ordinary periodic response.
	fir, err := NewFIR([]int64{3, 7, 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]int64, 64)
	for i := range xs {
		xs[i] = int64(40 * math.Sin(2*math.Pi*5*float64(i)/64))
	}
	base, err := NewFIRSim(fir).CaptureBaseline(xs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewFIRSim(fir).RunPeriodic(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if base.Good[i] != want[i] {
			t.Fatalf("sample %d: baseline good %d, RunPeriodic %d", i, base.Good[i], want[i])
		}
	}
	want8 := len(xs) * netlist.BitWords(fir.Circuit.NumNets()) * 8
	if BaselineBytes(fir, len(xs)) != want8 {
		t.Errorf("BaselineBytes = %d, want %d", BaselineBytes(fir, len(xs)), want8)
	}
}
