package digital

import (
	"fmt"

	"mstx/internal/netlist"
)

// SeqFIR is the fully-sequential realization of the gate-level FIR:
// the delay line is built from in-netlist D flip-flops, so register
// faults are first-class fault sites simulated by the sequential
// engine. Fault-free, it is cycle-exact to the combinational FIR. For
// register faults the combinational wrapper's input-net approximation
// is exact only for the last delay stage: a stuck mid-line register
// also corrupts the value the next register captures (shift-through),
// which only the sequential model reproduces.
type SeqFIR struct {
	// Coeffs, InWidth, DropLSBs mirror FIR.
	Coeffs   []int64
	InWidth  int
	DropLSBs int
	// Circuit is the sequential netlist.
	Circuit *netlist.Circuit
	// InBus is the single sample input bus x[n].
	InBus Bus
	// DelayBuses[i] holds the flip-flop outputs carrying x[n−1−i].
	DelayBuses []Bus
	// OutBus is the (possibly truncated) output bus.
	OutBus Bus
}

// NewSeqFIR builds the sequential filter.
func NewSeqFIR(coeffs []int64, inWidth, dropLSBs int) (*SeqFIR, error) {
	if len(coeffs) == 0 {
		return nil, fmt.Errorf("digital: FIR needs at least one coefficient")
	}
	if inWidth < 2 || inWidth > 32 {
		return nil, fmt.Errorf("digital: FIR input width %d out of range [2,32]", inWidth)
	}
	if dropLSBs < 0 {
		return nil, fmt.Errorf("digital: negative dropLSBs")
	}
	b := NewBuilder()
	f := &SeqFIR{
		Coeffs:   append([]int64(nil), coeffs...),
		InWidth:  inWidth,
		DropLSBs: dropLSBs,
	}
	f.InBus = b.InputBus("x", inWidth)
	// Delay line: taps-1 registered word stages.
	prev := f.InBus
	for d := 1; d < len(coeffs); d++ {
		stage := make(Bus, inWidth)
		for bit := 0; bit < inWidth; bit++ {
			q := b.C.DFF()
			b.C.SetName(q, fmt.Sprintf("d%d[%d]", d, bit))
			stage[bit] = q
		}
		f.DelayBuses = append(f.DelayBuses, stage)
		// Bind each register to the previous stage (done after use is
		// fine; SetD accepts already-allocated nets).
		for bit := 0; bit < inWidth; bit++ {
			if err := b.C.SetD(stage[bit], prev[bit]); err != nil {
				return nil, err
			}
		}
		prev = stage
	}
	// Products: tap 0 uses the live input, tap i>0 its delay stage.
	var products []Bus
	for i, c := range coeffs {
		src := f.InBus
		if i > 0 {
			src = f.DelayBuses[i-1]
		}
		products = append(products, b.MulConst(src, c))
	}
	sum := b.SumTree(products)
	if dropLSBs >= len(sum) {
		return nil, fmt.Errorf("digital: dropLSBs %d >= sum width %d", dropLSBs, len(sum))
	}
	sum = sum[dropLSBs:]
	b.MarkOutputBus(sum, "y")
	f.OutBus = sum
	f.Circuit = b.C
	if err := f.Circuit.Validate(); err != nil {
		return nil, fmt.Errorf("digital: built sequential FIR fails validation: %w", err)
	}
	return f, nil
}

// SeqFIRSim clocks a sequential FIR sample by sample.
type SeqFIRSim struct {
	fir *SeqFIR
	sim *netlist.SequentialSimulator
}

// NewSeqFIRSim returns a simulator with cleared registers.
func NewSeqFIRSim(f *SeqFIR) (*SeqFIRSim, error) {
	sim, err := netlist.NewSequentialSimulator(f.Circuit)
	if err != nil {
		return nil, err
	}
	return &SeqFIRSim{fir: f, sim: sim}, nil
}

// Reset clears the delay registers.
func (s *SeqFIRSim) Reset() { s.sim.Reset() }

// InjectFault injects a stuck-at fault (register outputs included).
func (s *SeqFIRSim) InjectFault(f netlist.Fault, laneMask uint64) error {
	return s.sim.InjectFault(f, laneMask)
}

// Step clocks one sample through and returns the per-lane output
// words.
func (s *SeqFIRSim) Step(x int64) ([]uint64, error) {
	return s.sim.Step(EncodeSigned(Saturate(x, s.fir.InWidth), s.fir.InWidth))
}

// Run processes a record and returns the lane-0 outputs.
func (s *SeqFIRSim) Run(xs []int64) ([]int64, error) {
	out := make([]int64, len(xs))
	for i, x := range xs {
		words, err := s.Step(x)
		if err != nil {
			return nil, err
		}
		out[i] = DecodeSignedLane(words, 0)
	}
	return out, nil
}
