package digital

import "fmt"

// SubExpand computes x − y, sign-extending both operands one bit so
// the result cannot overflow: a ripple chain of full adders over x and
// ~y with carry-in 1.
func (b *Builder) SubExpand(x, y Bus) Bus {
	w := len(x)
	if len(y) > w {
		w = len(y)
	}
	w++
	xe := b.SignExtend(x, w)
	ye := b.SignExtend(y, w)
	sum := make(Bus, w)
	carry := b.One()
	for i := 0; i < w; i++ {
		ny := b.C.Not(ye[i])
		sum[i], carry = b.C.FullAdder(xe[i], ny, carry)
	}
	return sum
}

// CSDDigits returns the canonical signed-digit recoding of k: digits
// in {−1, 0, +1}, least significant first, with no two adjacent
// nonzero digits. CSD minimizes the number of add/subtract terms in a
// constant multiplier.
func CSDDigits(k int64) []int8 {
	if k == 0 {
		return []int8{0}
	}
	neg := k < 0
	u := uint64(k)
	if neg {
		u = uint64(-k)
	}
	var digits []int8
	for u != 0 {
		if u&1 == 0 {
			digits = append(digits, 0)
			u >>= 1
			continue
		}
		// Odd: choose +1 when u ≡ 1 (mod 4), −1 when u ≡ 3 (mod 4).
		if u&3 == 1 {
			digits = append(digits, 1)
			u--
		} else {
			digits = append(digits, -1)
			u++
		}
		u >>= 1
	}
	if neg {
		for i := range digits {
			digits[i] = -digits[i]
		}
	}
	return digits
}

// MulConstCSD multiplies the bus by constant k using the canonical
// signed-digit recoding: one add or subtract per nonzero digit —
// typically ~33% fewer operations than plain binary shift-add for
// dense constants. The result is numerically identical to MulConst.
func (b *Builder) MulConstCSD(bus Bus, k int64) Bus {
	if k == 0 {
		return Bus{b.Zero()}
	}
	digits := CSDDigits(k)
	var acc Bus
	for i, d := range digits {
		if d == 0 {
			continue
		}
		term := b.ShiftLeft(bus, i)
		switch {
		case acc == nil && d > 0:
			acc = term
		case acc == nil:
			acc = b.Negate(term)
		case d > 0:
			acc = b.AddExpand(acc, term)
		default:
			acc = b.SubExpand(acc, term)
		}
	}
	return acc
}

// MulVar builds a variable×variable two's-complement array multiplier.
// Both operands are sign-extended to the full product width W =
// len(x)+len(y); the product is accumulated modulo 2^W, which is exact
// for two's complement. The cost is O(W²) gates — use MulConst/
// MulConstCSD when one operand is constant.
func (b *Builder) MulVar(x, y Bus) Bus {
	if len(x) == 0 || len(y) == 0 {
		panic("digital: MulVar of empty bus")
	}
	w := len(x) + len(y)
	if w > 62 {
		panic(fmt.Sprintf("digital: MulVar product width %d too large", w))
	}
	xe := b.SignExtend(x, w)
	ye := b.SignExtend(y, w)
	var acc Bus
	for i := 0; i < w; i++ {
		// Partial product: (x << i) AND y_i, truncated to w bits.
		pp := make(Bus, w)
		for j := 0; j < w; j++ {
			if j < i {
				pp[j] = b.Zero()
			} else {
				pp[j] = b.C.And(xe[j-i], ye[i])
			}
		}
		if acc == nil {
			acc = pp
		} else {
			sum, _ := b.Add(acc, pp) // modulo-2^w accumulation is exact
			acc = sum
		}
	}
	return acc
}
