package server

import (
	"time"
)

// Supervision policy: which terminal states exist, which failures are
// worth retrying, how long a retry backs off, and what Retry-After
// hint an overloaded queue hands back. Everything here is pure
// computation over scheduler state — the clocks and timers live in
// server.go, the policy lives here so it is unit-testable without a
// running server.

// terminal reports whether state is a terminal job state. Every
// enumeration of "is this job finished" in the package (scheduler,
// HTTP result/SSE handlers, ledger resume) goes through this, so a new
// terminal state like deadline_exceeded cannot be half-plumbed.
func terminal(state string) bool {
	switch state {
	case StateDone, StatePartial, StateFailed, StateCanceled, StateDeadline:
		return true
	}
	return false
}

// retryable reports whether a failure classification is worth an
// automatic retry. Only engine-side failures qualify: an engine error
// or a panic quarantine exhaustion can be transient (an injected
// fault, a wedged batch), and the job's own checkpoint makes the retry
// a resume rather than a recompute. Client cancels, deadline expiry
// and bad requests are not the engine's fault and never retry.
func retryable(errType string) bool {
	return errType == ErrTypeEngine || errType == ErrTypePanic
}

// splitmix64 is the same mixer the MC engine uses for substream
// derivation: a full-period 64-bit scrambler, here driving backoff
// jitter so two servers with the same RetrySeed schedule identical
// retry timelines.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// retryDelay computes the backoff before retry number attempt (1 = the
// first retry): capped exponential base·2^(attempt-1) plus a
// deterministic jitter in [0, delay/2) derived from (seed, jobID,
// attempt). The jitter de-synchronizes a herd of failed jobs without
// introducing a wall-clock or math/rand dependency — the whole retry
// timeline is a function of the configuration.
func retryDelay(base, cap time.Duration, seed int64, jobID string, attempt int) time.Duration {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if cap < base {
		cap = base
	}
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	h := fnv1a(fnvOffset, jobID)
	r := splitmix64(uint64(seed) ^ h ^ uint64(attempt)<<32)
	if half := uint64(d) / 2; half > 0 {
		d += time.Duration(r % half)
	}
	if d > cap {
		d = cap
	}
	return d
}

// jobDeadline resolves a job's wall-clock budget from its spec and the
// server policy: the spec's own deadline if set, else the server
// default (0 = unlimited), both clamped to the server cap. The budget
// covers the job's whole supervised life — queue wait, every attempt,
// every backoff — so a retry loop can never outlive what the client
// asked for.
func jobDeadline(sp *Spec, def, max time.Duration) time.Duration {
	d := time.Duration(sp.DeadlineMS) * time.Millisecond
	if d <= 0 {
		d = def
	}
	if max > 0 && (d <= 0 || d > max) {
		d = max
	}
	return d
}

// retryAfterHint turns the scheduler's live state into a 429
// Retry-After value: with queued jobs draining at avg each across
// workers slots, the backlog clears in about queued·avg/workers.
// The configured floor keeps the hint sane before any attempt has
// completed (avg 0), and the cap keeps a pathological backlog from
// telling clients to go away for an hour.
func retryAfterHint(queued int, avg time.Duration, workers int, floor time.Duration) time.Duration {
	if floor <= 0 {
		floor = time.Second
	}
	if workers < 1 {
		workers = 1
	}
	est := time.Duration(queued) * avg / time.Duration(workers)
	if est < floor {
		est = floor
	}
	const cap = 5 * time.Minute
	if est > cap {
		est = cap
	}
	return est
}

// ceilSeconds renders a duration as the integral seconds value an HTTP
// Retry-After header wants, rounding up so clients never come back
// early.
func ceilSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
