package server

import "sync"

// resultCache is the content-addressed result store with single-flight
// compute. Keys are the job identity hash (FNV-1a over the canonical
// spec, mixed with the engine's stimulus record hash for campaigns) —
// the same identity family the checkpoint layer uses to validate
// snapshots. Only successful results are cached: a failed or canceled
// job must not poison identical resubmissions.
//
// begin/succeed/fail implement single-flight: the first job to present
// an identity becomes the leader and computes; concurrent identical
// submissions become followers and block on the leader's outcome
// instead of re-running the engine. A leader that fails wakes its
// followers without publishing; each re-runs begin, so exactly one
// claims the vacated leadership and retries while the rest wait again.
type resultCache struct {
	mu       sync.Mutex
	results  map[uint64]*Result
	inflight map[uint64]*flight
}

type flight struct {
	done chan struct{} // closed on completion (success or failure)
}

func newResultCache() *resultCache {
	return &resultCache{
		results:  make(map[uint64]*Result),
		inflight: make(map[uint64]*flight),
	}
}

// lookup returns a previously cached successful result.
func (c *resultCache) lookup(id uint64) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.results[id]
	return r, ok
}

// begin claims id. leader=true means the caller must compute and then
// call succeed or fail; otherwise wait is a channel that closes when
// the current leader finishes (re-check with lookup / begin after).
func (c *resultCache) begin(id uint64) (leader bool, cached *Result, wait <-chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.results[id]; ok {
		return false, r, nil
	}
	if f, ok := c.inflight[id]; ok {
		return false, nil, f.done
	}
	c.inflight[id] = &flight{done: make(chan struct{})}
	return true, nil, nil
}

// succeed publishes the leader's result and releases all followers.
func (c *resultCache) succeed(id uint64, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.results[id] = res
	if f, ok := c.inflight[id]; ok {
		close(f.done)
		delete(c.inflight, id)
	}
}

// fail releases the leader's claim without publishing, waking
// followers so one of them can claim leadership and retry.
func (c *resultCache) fail(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.inflight[id]; ok {
		close(f.done)
		delete(c.inflight, id)
	}
}
