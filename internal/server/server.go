// Package server turns the mstx engines into a multi-tenant job
// service: a bounded scheduler with per-tenant weighted fair queueing
// and admission control, a content-addressed single-flight result
// cache keyed by the engines' FNV-1a stimulus identity, per-job
// observability registries streamed as server-sent events, and a
// checkpointed job ledger so a killed server resumes in-flight work
// bit-identically on restart. cmd/mstxd wraps it in an HTTP binary.
//
// The package is deliberately not an engine package (no //mstxvet:engine
// tag): a service legitimately reads wall clocks for timeouts, SSE
// cadence and Retry-After hints. Everything deterministic stays in the
// engines it dispatches to.
package server

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"mstx/internal/obs"
	"mstx/internal/resilient"
)

// Job states. queued and running are live; the rest are terminal.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StatePartial  = "partial" // finished with quarantined work
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Error types carried in typed error bodies and job views.
const (
	ErrTypeBadRequest = "bad_request"
	ErrTypeNotFound   = "not_found"
	ErrTypeQueueFull  = "queue_full"
	ErrTypeCanceled   = "canceled"
	ErrTypeDeadline   = "deadline"
	ErrTypePanic      = "panic"
	ErrTypeEngine     = "engine"
	ErrTypeShutdown   = "shutdown"
)

// ErrQueueFull is returned by Submit when admission control rejects
// the job; the HTTP layer maps it to 429 with Retry-After.
var ErrQueueFull = errors.New("server: queue full")

// ErrStopped is returned by Submit after Close/Kill.
var ErrStopped = errors.New("server: stopped")

// Config parameterizes a Server. Zero values take the stated defaults.
type Config struct {
	// Workers is the number of concurrent jobs (scheduler slots).
	// Default 2.
	Workers int
	// EngineWorkers is the per-job engine fan-out passed to the
	// campaign/MC engines (0 = each engine's own default).
	EngineWorkers int

	// MaxQueuedPerTenant and MaxQueuedTotal bound the backlog; a
	// submission over either bound is rejected with ErrQueueFull.
	// Defaults 16 and 64.
	MaxQueuedPerTenant int
	MaxQueuedTotal     int
	// Weights sets per-tenant scheduling weights (jobs started per
	// fair-queue cycle). Unlisted tenants get weight 1.
	Weights map[string]int
	// RetryAfter is the backoff hint attached to queue-full
	// rejections. Default 1s.
	RetryAfter time.Duration

	// CheckpointDir enables durability: the job ledger and each job's
	// engine snapshots live under it. Empty = in-memory only.
	CheckpointDir string
	// CheckpointEvery is the engine snapshot cadence in engine units
	// (round barriers / batches). <= 1 saves at every unit.
	CheckpointEvery int
	// Resume replays the ledger found in CheckpointDir on startup:
	// terminal jobs are served from the ledger, live ones re-enqueued
	// against their saved engine checkpoints.
	Resume bool

	// Registry is the server's own ops registry (/metrics, /trace).
	// nil = a fresh obs.New().
	Registry *obs.Registry
	// JobRing is each job's span-ring capacity (SSE event source).
	// Default 256.
	JobRing int
	// EventPoll is the SSE poll cadence. Default 200ms.
	EventPoll time.Duration
}

func (c *Config) withDefaults() Config {
	o := *c
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.MaxQueuedPerTenant <= 0 {
		o.MaxQueuedPerTenant = 16
	}
	if o.MaxQueuedTotal <= 0 {
		o.MaxQueuedTotal = 64
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Registry == nil {
		o.Registry = obs.New()
	}
	if o.JobRing <= 0 {
		o.JobRing = 256
	}
	if o.EventPoll <= 0 {
		o.EventPoll = 200 * time.Millisecond
	}
	return o
}

// Job is one submitted unit of work. Mutable fields are guarded by the
// owning Server's mutex; done closes exactly once on reaching a
// terminal state (or never, if the server is killed first).
type Job struct {
	ID     string
	Tenant string
	Spec   Spec

	state    string
	errType  string
	errMsg   string
	result   *Result
	identity uint64
	hasIdent bool
	cacheHit bool

	task   task
	reg    *obs.Registry
	cancel context.CancelFunc
	// cancelRequested distinguishes a client DELETE from other
	// interruptions when classifying the run error.
	cancelRequested bool
	done            chan struct{}
}

// Server is the job scheduler. New starts its workers immediately;
// Close (graceful) or Kill (abrupt, for crash tests) stops them.
type Server struct {
	cfg Config
	reg *obs.Registry

	mu       sync.Mutex
	cond     *sync.Cond
	q        *fairQueue
	jobs     map[string]*Job
	order    []string // job IDs in submission order, for the ledger
	nextID   int64
	stopping bool
	killed   bool

	cache  *resultCache
	ledger *resilient.Checkpointer

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	// Metrics (registered once; obsnil: server_* names are owned here).
	mSubmitted *obs.Counter
	mCompleted *obs.Counter
	mFailed    *obs.Counter
	mCanceled  *obs.Counter
	mCacheHit  *obs.Counter
	mCacheMiss *obs.Counter
	mRejected  *obs.Counter
	gQueued    *obs.Gauge
	gRunning   *obs.Gauge
}

const ledgerName = "mstxd_jobs"
const ledgerVersion = 1

// ledgerRecord is one job's durable state; Result rides along for
// terminal jobs so a restarted server can still serve them.
type ledgerRecord struct {
	ID       string
	Tenant   string
	Spec     Spec
	State    string
	ErrType  string
	ErrMsg   string
	Identity string
	CacheHit bool
	Result   *Result
}

type ledgerState struct {
	NextID int64
	Jobs   []ledgerRecord
}

// New builds and starts a server. With Resume set it replays the
// ledger first, so previously queued/running jobs are dispatched again
// (their engine checkpoints make the replay bit-identical) before any
// new submissions.
func New(cfg Config) (*Server, error) {
	c := cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     c,
		reg:     c.Registry,
		q:       newFairQueue(c.MaxQueuedPerTenant, c.MaxQueuedTotal, c.Weights),
		jobs:    make(map[string]*Job),
		cache:   newResultCache(),
		baseCtx: ctx,
		stop:    cancel,
	}
	s.cond = sync.NewCond(&s.mu)
	if c.CheckpointDir != "" {
		s.ledger = &resilient.Checkpointer{Dir: c.CheckpointDir, Resume: c.Resume}
	}
	s.mSubmitted = s.reg.Counter("server_jobs_submitted_total")
	s.mCompleted = s.reg.Counter("server_jobs_completed_total")
	s.mFailed = s.reg.Counter("server_jobs_failed_total")
	s.mCanceled = s.reg.Counter("server_jobs_canceled_total")
	s.mCacheHit = s.reg.Counter("server_cache_hits_total")
	s.mCacheMiss = s.reg.Counter("server_cache_misses_total")
	s.mRejected = s.reg.Counter("server_queue_rejections_total")
	s.gQueued = s.reg.Gauge("server_jobs_queued")
	s.gRunning = s.reg.Gauge("server_jobs_running")
	if err := s.resume(); err != nil {
		cancel()
		return nil, err
	}
	for i := 0; i < c.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// resume replays the ledger: terminal records become servable jobs,
// live ones are validated and re-enqueued in submission order.
func (s *Server) resume() error {
	if s.ledger == nil || !s.cfg.Resume {
		return nil
	}
	var st ledgerState
	ok, err := s.ledger.Load(ledgerName, ledgerVersion, &st)
	if err != nil {
		return fmt.Errorf("server: resume: %w", err)
	}
	if !ok {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID = st.NextID
	for i := range st.Jobs {
		rec := &st.Jobs[i]
		j := &Job{
			ID:       rec.ID,
			Tenant:   rec.Tenant,
			Spec:     rec.Spec,
			state:    rec.State,
			errType:  rec.ErrType,
			errMsg:   rec.ErrMsg,
			result:   rec.Result,
			cacheHit: rec.CacheHit,
			reg:      obs.NewWithRing(s.cfg.JobRing),
			done:     make(chan struct{}),
		}
		if id, err := strconv.ParseUint(rec.Identity, 16, 64); err == nil && rec.Identity != "" {
			j.identity, j.hasIdent = id, true
			if rec.Result != nil && !rec.Result.Partial && rec.State == StateDone {
				s.cache.succeed(id, rec.Result)
			}
		}
		switch rec.State {
		case StateQueued, StateRunning:
			// A job caught mid-flight by the crash: rebuild its task
			// and run it again. Its engine checkpoints under
			// job_<id>/ make the re-run a resume, not a restart.
			t, err := newTask(&j.Spec)
			if err != nil {
				j.state = StateFailed
				j.errType, j.errMsg = ErrTypeEngine, fmt.Sprintf("resume: %v", err)
				close(j.done)
				break
			}
			j.task = t
			j.state = StateQueued
			if !s.q.push(j) {
				j.state = StateFailed
				j.errType, j.errMsg = ErrTypeQueueFull, "resume: queue full"
				close(j.done)
			}
		default:
			close(j.done)
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
	}
	s.gQueued.Set(float64(s.q.queued))
	s.saveLedgerLocked()
	return nil
}

// Submit validates spec, admits the job for tenant and wakes a worker.
// The returned Job is live; poll it via Get or stream via SSE.
func (s *Server) Submit(tenant string, spec Spec) (*Job, error) {
	if tenant == "" {
		tenant = "default"
	}
	t, err := newTask(&spec) // normalizes spec in place
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopping {
		return nil, ErrStopped
	}
	s.nextID++
	j := &Job{
		ID:     "j" + strconv.FormatInt(s.nextID, 10),
		Tenant: tenant,
		Spec:   spec,
		state:  StateQueued,
		task:   t,
		reg:    obs.NewWithRing(s.cfg.JobRing),
		done:   make(chan struct{}),
	}
	if !s.q.push(j) {
		s.mRejected.Inc()
		return nil, ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mSubmitted.Inc()
	s.gQueued.Set(float64(s.q.queued))
	s.saveLedgerLocked()
	s.cond.Signal()
	return j, nil
}

// Get returns the job by ID.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation: a queued job terminates immediately, a
// running one has its context canceled and terminates when the engine
// unwinds. Terminal jobs are left alone. Reports whether the job
// exists.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return false
	}
	switch j.state {
	case StateQueued:
		s.q.remove(j)
		s.gQueued.Set(float64(s.q.queued))
		s.finishLocked(j, StateCanceled, ErrTypeCanceled, "canceled before start")
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return true
}

// Close stops the server gracefully: no new admissions, running jobs
// are interrupted, workers drained. Interrupted jobs keep their last
// persisted ledger state (queued/running), so a Resume restart picks
// them back up.
func (s *Server) Close() { s.shutdown() }

// Kill is the crash-test stop: identical interruption semantics to
// Close (the ledger is already saved transition-by-transition, like a
// process that lost power), kept separate so tests read as intended.
func (s *Server) Kill() { s.shutdown() }

func (s *Server) shutdown() {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.stopping = true
	s.killed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
}

// Registry returns the server's ops registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// worker is one scheduler slot: pop by weighted round-robin, run,
// repeat.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.q.queued == 0 && !s.stopping {
			s.cond.Wait()
		}
		if s.stopping {
			s.mu.Unlock()
			return
		}
		j := s.q.pop()
		if j == nil {
			s.mu.Unlock()
			continue
		}
		j.state = StateRunning
		var ctx context.Context
		var cancel context.CancelFunc
		if j.Spec.TimeoutSec > 0 {
			ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(j.Spec.TimeoutSec*float64(time.Second)))
		} else {
			ctx, cancel = context.WithCancel(s.baseCtx)
		}
		j.cancel = cancel
		s.gQueued.Set(float64(s.q.queued))
		s.gRunning.Add(1)
		s.saveLedgerLocked()
		s.mu.Unlock()

		s.runJob(ctx, j)
		cancel()

		s.mu.Lock()
		s.gRunning.Add(-1)
		s.mu.Unlock()
	}
}

// runJob computes j: content identity, single-flight claim, engine
// run under the job's own obs registry, terminal classification.
func (s *Server) runJob(ctx context.Context, j *Job) {
	jctx := obs.WithRegistry(ctx, j.reg)
	id, err := j.task.prepare(jctx)
	if err != nil {
		s.finish(j, StateFailed, ErrTypeEngine, err.Error())
		return
	}
	s.mu.Lock()
	j.identity, j.hasIdent = id, true
	s.mu.Unlock()

	for {
		leader, cached, wait := s.cache.begin(id)
		if cached != nil {
			s.mCacheHit.Inc()
			s.mu.Lock()
			j.cacheHit = true
			s.mu.Unlock()
			s.finishResult(j, cached)
			return
		}
		if leader {
			break
		}
		select {
		case <-wait:
			// Leader finished (or failed); re-check the cache, or
			// claim the vacated leadership.
		case <-jctx.Done():
			s.finishInterrupted(j, jctx, resilient.CtxErr(jctx))
			return
		}
	}
	s.mCacheMiss.Inc()

	env := taskEnv{workers: s.cfg.EngineWorkers}
	if s.cfg.CheckpointDir != "" {
		env.ckpt = &resilient.Checkpointer{
			Dir:    filepath.Join(s.cfg.CheckpointDir, "job_"+j.ID),
			Every:  s.cfg.CheckpointEvery,
			Resume: true,
		}
	}
	res, err := j.task.run(jctx, env)
	if res != nil {
		res.Identity = fmt.Sprintf("%016x", id)
	}
	if err != nil {
		s.cache.fail(id)
		var pe *resilient.PanicError
		switch {
		case errors.As(err, &pe):
			s.finish(j, StateFailed, ErrTypePanic, pe.Error())
		case resilient.Interrupted(err):
			s.finishInterrupted(j, jctx, err)
		default:
			s.finish(j, StateFailed, ErrTypeEngine, err.Error())
		}
		return
	}
	if res.Partial {
		// A degraded result is real but not canonical: serve it to
		// this job, release followers to recompute their own.
		s.cache.fail(id)
	} else {
		s.cache.succeed(id, res)
	}
	s.finishResult(j, res)
}

// finishInterrupted classifies an interruption: client cancel, job
// deadline, or server shutdown (which leaves the job resumable).
func (s *Server) finishInterrupted(j *Job, ctx context.Context, err error) {
	s.mu.Lock()
	stopping := s.stopping
	requested := j.cancelRequested
	s.mu.Unlock()
	switch {
	case requested:
		s.finish(j, StateCanceled, ErrTypeCanceled, "canceled by request")
	case errors.Is(err, resilient.ErrDeadline) || errors.Is(ctx.Err(), context.DeadlineExceeded):
		s.finish(j, StateFailed, ErrTypeDeadline, "job deadline exceeded")
	case stopping:
		// Server going down: no transition. The ledger still says
		// queued/running, which is exactly what resume needs.
	default:
		s.finish(j, StateCanceled, ErrTypeCanceled, err.Error())
	}
}

func (s *Server) finishResult(j *Job, res *Result) {
	state := StateDone
	if res.Partial {
		state = StatePartial
	}
	s.mu.Lock()
	j.result = res
	s.finishLocked(j, state, "", "")
	s.mu.Unlock()
}

func (s *Server) finish(j *Job, state, errType, errMsg string) {
	s.mu.Lock()
	s.finishLocked(j, state, errType, errMsg)
	s.mu.Unlock()
}

// finishLocked moves j to a terminal state, bumps metrics, folds the
// job's counters into the server registry (so /metrics aggregates
// engine work across jobs), persists the ledger and releases waiters.
func (s *Server) finishLocked(j *Job, state, errType, errMsg string) {
	if j.state == StateDone || j.state == StatePartial ||
		j.state == StateFailed || j.state == StateCanceled {
		return
	}
	j.state = state
	j.errType, j.errMsg = errType, errMsg
	switch state {
	case StateDone, StatePartial:
		s.mCompleted.Inc()
	case StateFailed:
		s.mFailed.Inc()
	case StateCanceled:
		s.mCanceled.Inc()
	}
	for name, v := range j.reg.Counters() {
		if v != 0 {
			s.reg.Counter(name).Add(v)
		}
	}
	s.saveLedgerLocked()
	close(j.done)
}

// saveLedgerLocked snapshots all jobs. Called with s.mu held on every
// transition; a save failure is non-fatal for the live server (jobs
// keep running) but loses resumability, so it is surfaced as a
// server_ledger_errors_total bump rather than silently dropped.
func (s *Server) saveLedgerLocked() {
	if s.ledger == nil || s.killed {
		return
	}
	st := ledgerState{NextID: s.nextID}
	for _, id := range s.order {
		j := s.jobs[id]
		rec := ledgerRecord{
			ID:      j.ID,
			Tenant:  j.Tenant,
			Spec:    j.Spec,
			State:   j.state,
			ErrType: j.errType,
			ErrMsg:  j.errMsg,
		}
		if j.hasIdent {
			rec.Identity = fmt.Sprintf("%016x", j.identity)
		}
		rec.CacheHit = j.cacheHit
		rec.Result = j.result
		st.Jobs = append(st.Jobs, rec)
	}
	if err := s.ledger.Save(ledgerName, ledgerVersion, &st); err != nil {
		s.reg.Counter("server_ledger_errors_total").Inc()
	}
}

// Snapshot is a point-in-time public view of a job.
type Snapshot struct {
	ID       string     `json:"id"`
	Tenant   string     `json:"tenant"`
	Kind     string     `json:"kind"`
	State    string     `json:"state"`
	Identity string     `json:"identity,omitempty"`
	CacheHit bool       `json:"cache_hit,omitempty"`
	Error    *ErrorBody `json:"error,omitempty"`
	Result   *Result    `json:"result,omitempty"`
}

// ErrorBody is the typed error payload used in job views and HTTP
// error responses.
type ErrorBody struct {
	Type    string `json:"type"`
	Message string `json:"message"`
}

// Snapshot returns j's current public view.
func (s *Server) Snapshot(j *Job) Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := Snapshot{
		ID:       j.ID,
		Tenant:   j.Tenant,
		Kind:     j.Spec.Kind,
		State:    j.state,
		CacheHit: j.cacheHit,
		Result:   j.result,
	}
	if j.hasIdent {
		v.Identity = fmt.Sprintf("%016x", j.identity)
	}
	if j.errType != "" {
		v.Error = &ErrorBody{Type: j.errType, Message: j.errMsg}
	}
	return v
}

// Done exposes the job's terminal-notification channel (closed when
// the job reaches a terminal state).
func (j *Job) Done() <-chan struct{} { return j.done }

// Events exposes the job's private obs registry, the SSE event
// source.
func (j *Job) Events() *obs.Registry { return j.reg }
