// Package server turns the mstx engines into a multi-tenant job
// service: a bounded scheduler with per-tenant weighted fair queueing
// and admission control, a content-addressed single-flight result
// cache keyed by the engines' FNV-1a stimulus identity, per-job
// observability registries streamed as server-sent events, and a
// checkpointed job ledger so a killed server resumes in-flight work
// bit-identically on restart. cmd/mstxd wraps it in an HTTP binary.
//
// The package is deliberately not an engine package (no //mstxvet:engine
// tag): a service legitimately reads wall clocks for timeouts, SSE
// cadence and Retry-After hints. Everything deterministic stays in the
// engines it dispatches to.
package server

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"mstx/internal/obs"
	"mstx/internal/resilient"
)

// Job states. queued and running are live (a queued job may be
// waiting in the fair queue or backing off before a retry); the rest
// are terminal — see terminal() in supervise.go, the one place that
// enumerates them.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StatePartial  = "partial" // finished with quarantined work
	StateFailed   = "failed"
	StateCanceled = "canceled"
	StateDeadline = "deadline_exceeded" // wall budget expired (partial result salvaged when the engine had one)
)

// Error types carried in typed error bodies and job views.
const (
	ErrTypeBadRequest  = "bad_request"
	ErrTypeNotFound    = "not_found"
	ErrTypeQueueFull   = "queue_full"
	ErrTypeCanceled    = "canceled"
	ErrTypeDeadline    = "deadline"
	ErrTypePanic       = "panic"
	ErrTypeEngine      = "engine"
	ErrTypeShutdown    = "shutdown"
	ErrTypeBreakerOpen = "breaker_open"
)

// ErrQueueFull is returned by Submit when admission control rejects
// the job; the HTTP layer maps it to 429 with Retry-After.
var ErrQueueFull = errors.New("server: queue full")

// ErrStopped is returned by Submit after Close/Kill.
var ErrStopped = errors.New("server: stopped")

// BreakerOpenError is returned by Submit while the job kind's circuit
// breaker is shedding load; the HTTP layer maps it to 503 with
// Retry-After = the remaining open interval.
type BreakerOpenError struct {
	Kind       string
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("server: %s breaker open (retry in %s)", e.Kind, e.RetryAfter.Round(time.Millisecond))
}

// Config parameterizes a Server. Zero values take the stated defaults.
type Config struct {
	// Workers is the number of concurrent jobs (scheduler slots).
	// Default 2.
	Workers int
	// EngineWorkers is the per-job engine fan-out passed to the
	// campaign/MC engines (0 = each engine's own default).
	EngineWorkers int

	// MaxQueuedPerTenant and MaxQueuedTotal bound the backlog; a
	// submission over either bound is rejected with ErrQueueFull.
	// Defaults 16 and 64.
	MaxQueuedPerTenant int
	MaxQueuedTotal     int
	// Weights sets per-tenant scheduling weights (jobs started per
	// fair-queue cycle). Unlisted tenants get weight 1.
	Weights map[string]int
	// RetryAfter is the backoff hint attached to queue-full
	// rejections. Default 1s.
	RetryAfter time.Duration

	// CheckpointDir enables durability: the job ledger and each job's
	// engine snapshots live under it. Empty = in-memory only.
	CheckpointDir string
	// CheckpointEvery is the engine snapshot cadence in engine units
	// (round barriers / batches). <= 1 saves at every unit.
	CheckpointEvery int
	// Resume replays the ledger found in CheckpointDir on startup:
	// terminal jobs are served from the ledger, live ones re-enqueued
	// against their saved engine checkpoints.
	Resume bool

	// Registry is the server's own ops registry (/metrics, /trace).
	// nil = a fresh obs.New().
	Registry *obs.Registry
	// JobRing is each job's span-ring capacity (SSE event source).
	// Default 256.
	JobRing int
	// EventPoll is the SSE poll cadence. Default 200ms.
	EventPoll time.Duration
	// Heartbeat is the SSE comment-ping cadence keeping idle streams
	// alive through proxies. Default 15s.
	Heartbeat time.Duration

	// DefaultDeadline is applied to jobs that submit no deadline_ms
	// (0 = unlimited); MaxDeadline caps every job's budget, including
	// unlimited ones (0 = no cap). The budget is a wall clock over the
	// job's whole supervised run: every attempt and every retry
	// backoff, measured from first dispatch.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration

	// RetryMax is how many automatic retries a retryable failure
	// (engine error, panic quarantine) gets before the job lands in
	// failed. Default 0: retries are opt-in, a failure is a failure.
	RetryMax int
	// RetryBase/RetryCap shape the capped exponential backoff between
	// attempts (defaults 100ms / 5s); RetrySeed (default 1) drives the
	// deterministic jitter, so a fixed configuration has a fixed retry
	// timeline.
	RetryBase time.Duration
	RetryCap  time.Duration
	RetrySeed int64

	// Per-kind circuit breaker policy: a sliding window of
	// BreakerWindow engine-attempt outcomes (default 16) opens the
	// kind's breaker when at least BreakerMinSamples outcomes (default
	// 8) show a failure rate ≥ BreakerThreshold (default 0.5). An open
	// breaker sheds submissions of that kind for BreakerOpenFor
	// (default 5s), then admits BreakerProbes probe jobs (default 1)
	// whose outcome closes or re-opens it.
	BreakerWindow     int
	BreakerMinSamples int
	BreakerThreshold  float64
	BreakerOpenFor    time.Duration
	BreakerProbes     int
}

func (c *Config) withDefaults() Config {
	o := *c
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.MaxQueuedPerTenant <= 0 {
		o.MaxQueuedPerTenant = 16
	}
	if o.MaxQueuedTotal <= 0 {
		o.MaxQueuedTotal = 64
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Registry == nil {
		o.Registry = obs.New()
	}
	if o.JobRing <= 0 {
		o.JobRing = 256
	}
	if o.EventPoll <= 0 {
		o.EventPoll = 200 * time.Millisecond
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 15 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 100 * time.Millisecond
	}
	if o.RetryCap <= 0 {
		o.RetryCap = 5 * time.Second
	}
	if o.RetrySeed == 0 {
		o.RetrySeed = 1
	}
	if o.BreakerWindow <= 0 {
		o.BreakerWindow = 16
	}
	if o.BreakerMinSamples <= 0 {
		o.BreakerMinSamples = 8
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 0.5
	}
	if o.BreakerOpenFor <= 0 {
		o.BreakerOpenFor = 5 * time.Second
	}
	if o.BreakerProbes <= 0 {
		o.BreakerProbes = 1
	}
	return o
}

// Job is one submitted unit of work. Mutable fields are guarded by the
// owning Server's mutex; done closes exactly once on reaching a
// terminal state (or never, if the server is killed first).
type Job struct {
	ID     string
	Tenant string
	Spec   Spec

	state    string
	errType  string
	errMsg   string
	result   *Result
	identity uint64
	hasIdent bool
	cacheHit bool

	task   task
	reg    *obs.Registry
	cancel context.CancelFunc
	// cancelRequested distinguishes a client DELETE from other
	// interruptions when classifying the run error.
	cancelRequested bool
	done            chan struct{}

	// attempts counts completed engine attempts that ended in a
	// retryable failure (i.e. retries scheduled so far); deadlineAt is
	// the job's wall budget, fixed at first dispatch so retries and
	// backoffs spend from the same allowance. deadlineSet marks jobs
	// with no budget so the resolution runs once.
	attempts    int
	deadlineAt  time.Time
	deadlineSet bool
}

// Server is the job scheduler. New starts its workers immediately;
// Close (graceful) or Kill (abrupt, for crash tests) stops them.
type Server struct {
	cfg Config
	reg *obs.Registry

	mu       sync.Mutex
	cond     *sync.Cond
	q        *fairQueue
	jobs     map[string]*Job
	order    []string // job IDs in submission order, for the ledger
	nextID   int64
	stopping bool
	killed   bool

	cache  *resultCache
	ledger *resilient.Checkpointer

	// breakers is one circuit breaker per job kind (fixed at New).
	breakers map[string]*breaker
	// retryTimers holds the pending backoff timer of every job waiting
	// to be re-queued; guarded by mu, drained on shutdown and cancel.
	retryTimers map[string]*time.Timer
	// avgAttempt is an EWMA of recent attempt wall times, the drain
	// rate behind the 429 Retry-After hint. Guarded by mu.
	avgAttempt time.Duration

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	// Metrics (registered once; obsnil: server_* names are owned here).
	mSubmitted *obs.Counter
	mCompleted *obs.Counter
	mFailed    *obs.Counter
	mCanceled  *obs.Counter
	mDeadline  *obs.Counter
	mRetries   *obs.Counter
	mCacheHit  *obs.Counter
	mCacheMiss *obs.Counter
	mRejected  *obs.Counter
	gQueued    *obs.Gauge
	gRunning   *obs.Gauge
}

const ledgerName = "mstxd_jobs"
const ledgerVersion = 1

// ledgerRecord is one job's durable state; Result rides along for
// terminal jobs so a restarted server can still serve them.
type ledgerRecord struct {
	ID       string
	Tenant   string
	Spec     Spec
	State    string
	ErrType  string
	ErrMsg   string
	Identity string
	CacheHit bool
	Attempts int
	Result   *Result
}

type ledgerState struct {
	NextID int64
	Jobs   []ledgerRecord
}

// New builds and starts a server. With Resume set it replays the
// ledger first, so previously queued/running jobs are dispatched again
// (their engine checkpoints make the replay bit-identical) before any
// new submissions.
func New(cfg Config) (*Server, error) {
	c := cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         c,
		reg:         c.Registry,
		q:           newFairQueue(c.MaxQueuedPerTenant, c.MaxQueuedTotal, c.Weights),
		jobs:        make(map[string]*Job),
		cache:       newResultCache(),
		breakers:    make(map[string]*breaker),
		retryTimers: make(map[string]*time.Timer),
		baseCtx:     ctx,
		stop:        cancel,
	}
	s.cond = sync.NewCond(&s.mu)
	if c.CheckpointDir != "" {
		s.ledger = &resilient.Checkpointer{Dir: c.CheckpointDir, Resume: c.Resume}
	}
	bcfg := breakerConfig{
		window:     c.BreakerWindow,
		minSamples: c.BreakerMinSamples,
		threshold:  c.BreakerThreshold,
		openFor:    c.BreakerOpenFor,
		probes:     c.BreakerProbes,
	}
	for _, kind := range jobKinds {
		s.breakers[kind] = newBreaker(kind, bcfg, s.reg, time.Now)
	}
	s.mSubmitted = s.reg.Counter("server_jobs_submitted_total")
	s.mCompleted = s.reg.Counter("server_jobs_completed_total")
	s.mFailed = s.reg.Counter("server_jobs_failed_total")
	s.mCanceled = s.reg.Counter("server_jobs_canceled_total")
	s.mDeadline = s.reg.Counter("server_jobs_deadline_total")
	s.mRetries = s.reg.Counter("server_retries_total")
	s.mCacheHit = s.reg.Counter("server_cache_hits_total")
	s.mCacheMiss = s.reg.Counter("server_cache_misses_total")
	s.mRejected = s.reg.Counter("server_queue_rejections_total")
	s.gQueued = s.reg.Gauge("server_jobs_queued")
	s.gRunning = s.reg.Gauge("server_jobs_running")
	if err := s.resume(); err != nil {
		cancel()
		return nil, err
	}
	for i := 0; i < c.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// resume replays the ledger: terminal records become servable jobs,
// live ones are validated and re-enqueued in submission order.
func (s *Server) resume() error {
	if s.ledger == nil || !s.cfg.Resume {
		return nil
	}
	var st ledgerState
	ok, err := s.ledger.Load(ledgerName, ledgerVersion, &st)
	if err != nil {
		return fmt.Errorf("server: resume: %w", err)
	}
	if !ok {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID = st.NextID
	for i := range st.Jobs {
		rec := &st.Jobs[i]
		j := &Job{
			ID:       rec.ID,
			Tenant:   rec.Tenant,
			Spec:     rec.Spec,
			state:    rec.State, //mstxvet:ignore errclass ledger round-trip: values were classified before persisting (trust boundary)
			errType:  rec.ErrType,
			errMsg:   rec.ErrMsg,
			result:   rec.Result,
			cacheHit: rec.CacheHit,
			attempts: rec.Attempts,
			reg:      obs.NewWithRing(s.cfg.JobRing),
			done:     make(chan struct{}),
		}
		if id, err := strconv.ParseUint(rec.Identity, 16, 64); err == nil && rec.Identity != "" {
			j.identity, j.hasIdent = id, true
			if rec.Result != nil && !rec.Result.Partial && rec.State == StateDone {
				s.cache.succeed(id, rec.Result)
			}
		}
		switch rec.State {
		case StateQueued, StateRunning:
			// A job caught mid-flight by the crash: rebuild its task
			// and run it again. Its engine checkpoints under
			// job_<id>/ make the re-run a resume, not a restart.
			t, err := newTask(&j.Spec)
			if err != nil {
				j.state = StateFailed
				j.errType, j.errMsg = ErrTypeEngine, fmt.Sprintf("resume: %v", err)
				close(j.done)
				break
			}
			j.task = t
			j.state = StateQueued
			if !s.q.push(j) {
				j.state = StateFailed
				j.errType, j.errMsg = ErrTypeQueueFull, "resume: queue full"
				close(j.done)
			}
		default:
			close(j.done)
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
	}
	s.gQueued.Set(float64(s.q.queued))
	//mstxvet:ignore lockorder resume snapshot is saved under s.mu by design so no transition can interleave
	s.saveLedgerLocked()
	return nil
}

// Submit validates spec, admits the job for tenant and wakes a worker.
// The returned Job is live; poll it via Get or stream via SSE.
func (s *Server) Submit(tenant string, spec Spec) (*Job, error) {
	if tenant == "" {
		tenant = "default"
	}
	t, err := newTask(&spec) // normalizes spec in place
	if err != nil {
		return nil, err
	}
	if b := s.breakers[spec.Kind]; b != nil {
		if ok, retryIn := b.admit(); !ok {
			return nil, &BreakerOpenError{Kind: spec.Kind, RetryAfter: retryIn}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopping {
		return nil, ErrStopped
	}
	s.nextID++
	j := &Job{
		ID:     "j" + strconv.FormatInt(s.nextID, 10),
		Tenant: tenant,
		Spec:   spec,
		state:  StateQueued,
		task:   t,
		reg:    obs.NewWithRing(s.cfg.JobRing),
		done:   make(chan struct{}),
	}
	if !s.q.push(j) {
		s.mRejected.Inc()
		return nil, ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mSubmitted.Inc()
	s.gQueued.Set(float64(s.q.queued))
	s.saveLedgerLocked()
	s.cond.Signal()
	return j, nil
}

// Get returns the job by ID.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation: a queued job terminates immediately, a
// running one has its context canceled and terminates when the engine
// unwinds. Terminal jobs are left alone. Reports whether the job
// exists.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return false
	}
	switch j.state {
	case StateQueued:
		// Either waiting in the fair queue or backing off before a
		// retry; stop whichever is holding it.
		s.q.remove(j)
		if t := s.retryTimers[j.ID]; t != nil {
			t.Stop()
			delete(s.retryTimers, j.ID)
		}
		s.gQueued.Set(float64(s.q.queued))
		//mstxvet:ignore lockorder terminal transitions persist their own ledger snapshot under s.mu by design
		s.finishLocked(j, StateCanceled, ErrTypeCanceled, "canceled before start")
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return true
}

// Close stops the server gracefully: no new admissions, running jobs
// are interrupted, workers drained. Interrupted jobs keep their last
// persisted ledger state (queued/running), so a Resume restart picks
// them back up.
func (s *Server) Close() { s.shutdown() }

// Kill is the crash-test stop: identical interruption semantics to
// Close (the ledger is already saved transition-by-transition, like a
// process that lost power), kept separate so tests read as intended.
func (s *Server) Kill() { s.shutdown() }

func (s *Server) shutdown() {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.stopping = true
	s.killed = true
	// Backoff jobs stay StateQueued in the ledger: a Resume restart
	// re-dispatches them against their checkpoints, no timer needed.
	for id, t := range s.retryTimers {
		t.Stop()
		delete(s.retryTimers, id)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
}

// Registry returns the server's ops registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// worker is one scheduler slot: pop by weighted round-robin, run,
// repeat.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.q.queued == 0 && !s.stopping {
			s.cond.Wait()
		}
		if s.stopping {
			s.mu.Unlock()
			return
		}
		j := s.q.pop()
		if j == nil {
			s.mu.Unlock()
			continue
		}
		j.state = StateRunning
		if !j.deadlineSet {
			// The wall budget starts at first dispatch and is shared
			// by every subsequent attempt and backoff.
			if d := jobDeadline(&j.Spec, s.cfg.DefaultDeadline, s.cfg.MaxDeadline); d > 0 {
				j.deadlineAt = time.Now().Add(d)
			}
			j.deadlineSet = true
		}
		var ctx context.Context
		var cancel context.CancelFunc
		if !j.deadlineAt.IsZero() {
			ctx, cancel = context.WithDeadline(s.baseCtx, j.deadlineAt)
		} else {
			ctx, cancel = context.WithCancel(s.baseCtx)
		}
		j.cancel = cancel
		s.gQueued.Set(float64(s.q.queued))
		s.gRunning.Add(1)
		s.saveLedgerLocked()
		s.mu.Unlock()

		start := time.Now()
		s.runJob(ctx, j)
		cancel()
		dur := time.Since(start)

		s.mu.Lock()
		if s.avgAttempt == 0 {
			s.avgAttempt = dur
		} else {
			s.avgAttempt = (3*s.avgAttempt + dur) / 4
		}
		s.gRunning.Add(-1)
		s.mu.Unlock()
	}
}

// runJob computes j: content identity, single-flight claim, engine
// run under the job's own obs registry, terminal classification.
func (s *Server) runJob(ctx context.Context, j *Job) {
	jctx := obs.WithRegistry(ctx, j.reg)
	id, err := j.task.prepare(jctx)
	if err != nil {
		s.finish(j, StateFailed, ErrTypeEngine, err.Error())
		return
	}
	s.mu.Lock()
	j.identity, j.hasIdent = id, true
	s.mu.Unlock()

	for {
		leader, cached, wait := s.cache.begin(id)
		if cached != nil {
			s.mCacheHit.Inc()
			s.mu.Lock()
			j.cacheHit = true
			s.mu.Unlock()
			s.finishResult(j, cached)
			return
		}
		if leader {
			break
		}
		select {
		case <-wait:
			// Leader finished (or failed); re-check the cache, or
			// claim the vacated leadership.
		case <-jctx.Done():
			s.finishInterrupted(j, jctx, resilient.CtxErr(jctx), nil)
			return
		}
	}
	s.mCacheMiss.Inc()

	env := taskEnv{workers: s.cfg.EngineWorkers}
	if s.cfg.CheckpointDir != "" {
		env.ckpt = &resilient.Checkpointer{
			Dir:    filepath.Join(s.cfg.CheckpointDir, "job_"+j.ID),
			Every:  s.cfg.CheckpointEvery,
			Resume: true,
		}
	}
	res, err := j.task.run(jctx, env)
	if res != nil {
		res.Identity = fmt.Sprintf("%016x", id)
	}
	b := s.breakers[j.Spec.Kind]
	if err != nil {
		s.cache.fail(id)
		var pe *resilient.PanicError
		switch {
		case errors.As(err, &pe):
			b.record(true)
			s.failOrRetry(j, ErrTypePanic, pe.Error())
		case resilient.Interrupted(err):
			// Cancel/deadline/shutdown say nothing about engine
			// health; no breaker outcome.
			s.finishInterrupted(j, jctx, err, res)
		default:
			b.record(true)
			s.failOrRetry(j, ErrTypeEngine, err.Error())
		}
		return
	}
	b.record(false)
	if res.Partial {
		// A degraded result is real but not canonical: serve it to
		// this job, release followers to recompute their own.
		s.cache.fail(id)
	} else {
		s.cache.succeed(id, res)
	}
	s.finishResult(j, res)
}

// finishInterrupted classifies an interruption: client cancel, job
// deadline, or server shutdown (which leaves the job resumable). An
// expired deadline is a first-class terminal state, and whatever
// partial result the engine salvaged on the way out (res may be nil)
// is served with it.
func (s *Server) finishInterrupted(j *Job, ctx context.Context, err error, res *Result) {
	s.mu.Lock()
	stopping := s.stopping
	requested := j.cancelRequested
	s.mu.Unlock()
	switch {
	case requested:
		s.finish(j, StateCanceled, ErrTypeCanceled, "canceled by request")
	case errors.Is(err, resilient.ErrDeadline) || errors.Is(ctx.Err(), context.DeadlineExceeded):
		s.mu.Lock()
		if res != nil {
			j.result = res
		}
		s.finishLocked(j, StateDeadline, ErrTypeDeadline, "job deadline exceeded")
		s.mu.Unlock()
	case stopping:
		// Server going down: no transition. The ledger still says
		// queued/running, which is exactly what resume needs.
	default:
		s.finish(j, StateCanceled, ErrTypeCanceled, err.Error())
	}
}

// failOrRetry handles a retryable engine failure: schedule another
// attempt under the retry policy, or land the job in failed when the
// policy (or the job's deadline budget) is exhausted. The retry keeps
// the job's StateQueued outside the fair queue while its backoff timer
// runs; requeueRetry puts it back when the timer fires.
func (s *Server) failOrRetry(j *Job, errType, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if terminal(j.state) {
		return
	}
	// No retry scheduling while stopping — the shutdown path already
	// drained the timers; the failure lands as-is.
	if !s.stopping && s.cfg.RetryMax > 0 && j.attempts < s.cfg.RetryMax && retryable(errType) {
		delay := retryDelay(s.cfg.RetryBase, s.cfg.RetryCap, s.cfg.RetrySeed, j.ID, j.attempts+1)
		if j.deadlineAt.IsZero() || time.Now().Add(delay).Before(j.deadlineAt) {
			j.attempts++
			j.state = StateQueued
			j.errType, j.errMsg = errType, errMsg // last error, visible while backing off
			j.cancel = nil
			s.mRetries.Inc()
			s.saveLedgerLocked()
			id := j.ID
			s.retryTimers[id] = time.AfterFunc(delay, func() { s.requeueRetry(id) })
			return
		}
		errMsg += "; retry budget exhausted"
	}
	s.finishLocked(j, StateFailed, errType, errMsg)
}

// requeueRetry moves a backed-off job back into the fair queue. The
// push bypasses admission bounds: the job was admitted once and never
// left the server's accounting.
func (s *Server) requeueRetry(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.retryTimers, id)
	j := s.jobs[id]
	if j == nil || s.stopping || j.state != StateQueued {
		return
	}
	s.q.forcePush(j)
	s.gQueued.Set(float64(s.q.queued))
	s.cond.Signal()
}

// retryAfterSeconds is the live 429 Retry-After hint: the estimated
// backlog drain time, floored by the configured static value.
func (s *Server) retryAfterSeconds() int {
	s.mu.Lock()
	queued := s.q.queued
	avg := s.avgAttempt
	s.mu.Unlock()
	return ceilSeconds(retryAfterHint(queued, avg, s.cfg.Workers, s.cfg.RetryAfter))
}

func (s *Server) finishResult(j *Job, res *Result) {
	state := StateDone
	if res.Partial {
		state = StatePartial
	}
	s.mu.Lock()
	j.result = res
	s.finishLocked(j, state, "", "")
	s.mu.Unlock()
}

func (s *Server) finish(j *Job, state, errType, errMsg string) {
	s.mu.Lock()
	s.finishLocked(j, state, errType, errMsg)
	s.mu.Unlock()
}

// finishLocked moves j to a terminal state, bumps metrics, folds the
// job's counters into the server registry (so /metrics aggregates
// engine work across jobs), persists the ledger and releases waiters.
func (s *Server) finishLocked(j *Job, state, errType, errMsg string) {
	if terminal(j.state) {
		return
	}
	j.state = state
	j.errType, j.errMsg = errType, errMsg
	switch state {
	case StateDone, StatePartial:
		s.mCompleted.Inc()
	case StateFailed:
		s.mFailed.Inc()
	case StateCanceled:
		s.mCanceled.Inc()
	case StateDeadline:
		s.mDeadline.Inc()
	}
	for name, v := range j.reg.Counters() {
		if v != 0 {
			s.reg.Counter(name).Add(v)
		}
	}
	s.saveLedgerLocked()
	close(j.done)
}

// saveLedgerLocked snapshots all jobs. Called with s.mu held on every
// transition; a save failure is non-fatal for the live server (jobs
// keep running) but loses resumability, so it is surfaced as a
// server_ledger_errors_total bump rather than silently dropped.
func (s *Server) saveLedgerLocked() {
	if s.ledger == nil || s.killed {
		return
	}
	st := ledgerState{NextID: s.nextID}
	for _, id := range s.order {
		j := s.jobs[id]
		rec := ledgerRecord{
			ID:       j.ID,
			Tenant:   j.Tenant,
			Spec:     j.Spec,
			State:    j.state,
			ErrType:  j.errType,
			ErrMsg:   j.errMsg,
			Attempts: j.attempts,
		}
		if j.hasIdent {
			rec.Identity = fmt.Sprintf("%016x", j.identity)
		}
		rec.CacheHit = j.cacheHit
		rec.Result = j.result
		st.Jobs = append(st.Jobs, rec)
	}
	if err := s.ledger.Save(ledgerName, ledgerVersion, &st); err != nil {
		s.reg.Counter("server_ledger_errors_total").Inc()
	}
}

// Snapshot is a point-in-time public view of a job.
type Snapshot struct {
	ID       string     `json:"id"`
	Tenant   string     `json:"tenant"`
	Kind     string     `json:"kind"`
	State    string     `json:"state"`
	Identity string     `json:"identity,omitempty"`
	CacheHit bool       `json:"cache_hit,omitempty"`
	Attempts int        `json:"attempts,omitempty"`
	Error    *ErrorBody `json:"error,omitempty"`
	Result   *Result    `json:"result,omitempty"`
}

// ErrorBody is the typed error payload used in job views and HTTP
// error responses.
type ErrorBody struct {
	Type    string `json:"type"`
	Message string `json:"message"`
}

// Snapshot returns j's current public view.
func (s *Server) Snapshot(j *Job) Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := Snapshot{
		ID:       j.ID,
		Tenant:   j.Tenant,
		Kind:     j.Spec.Kind,
		State:    j.state,
		CacheHit: j.cacheHit,
		Attempts: j.attempts,
		Result:   j.result,
	}
	if j.hasIdent {
		v.Identity = fmt.Sprintf("%016x", j.identity)
	}
	if j.errType != "" {
		v.Error = &ErrorBody{Type: j.errType, Message: j.errMsg}
	}
	return v
}

// Done exposes the job's terminal-notification channel (closed when
// the job reaches a terminal state).
func (j *Job) Done() <-chan struct{} { return j.done }

// Events exposes the job's private obs registry, the SSE event
// source.
func (j *Job) Events() *obs.Registry { return j.reg }
