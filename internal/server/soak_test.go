package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"
	"time"

	"mstx/internal/analysis"
	"mstx/internal/digital"
	"mstx/internal/fault"
	"mstx/internal/resilient"
)

// The chaos soak: a multi-tenant workload over every job kind while
// failpoints fire at every registered engine site, then a directed
// degradation pass. The invariant wall at the end is the service's
// self-healing contract:
//
//   - no job ever hangs — every admitted job reaches a terminal state;
//   - terminal classification is correct — done/partial/failed only,
//     and failed jobs carry an engine or panic typed error;
//   - recovery is exact — every job that ends done, including the ones
//     that were retried from a checkpoint mid-fault, returns bytes
//     identical to a clean run of the same spec (for the mc and soc
//     specs used here, that clean run is the E6/E9 golden
//     configuration);
//   - breakers open under persistent faults, shed with 503 +
//     Retry-After, report per-kind degradation on /readyz without
//     taking the whole service not-ready, and close again through the
//     half-open probe;
//   - nothing leaks — goroutines return to baseline after Close.
//
// The fault schedule is deterministic: MSTX_SOAK_SEED (default 1)
// seeds the PRNG that picks fault flavors and offsets, so a failing
// CI run replays bit-for-bit locally.

// soakSeed reads the chaos schedule seed from the environment.
func soakSeed(t *testing.T) int64 {
	if v := os.Getenv("MSTX_SOAK_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("MSTX_SOAK_SEED %q: %v", v, err)
		}
		return n
	}
	return 1
}

// soakActions is the chaos action table. It must cover every site
// FailpointSites enumerates — TestChaosSoak fails on any gap, so a new
// engine site cannot land without extending the soak.
func soakActions(rng *rand.Rand) map[string]resilient.Action {
	simBatch := resilient.Action{Err: errors.New("soak: sim batch fault"), After: rng.Intn(2), Times: 1}
	if rng.Intn(2) == 0 {
		// The panic flavor exercises the quarantine path instead of the
		// retry path: the job degrades to partial rather than failing.
		simBatch = resilient.Action{PanicValue: "soak: sim batch panic", After: rng.Intn(2), Times: 1}
	}
	return map[string]resilient.Action{
		// Transient lane faults drive the retry-from-checkpoint path on
		// the translate/mc kinds; bounded below RetryMax so retried
		// jobs eventually succeed and their bytes can be checked.
		"mcengine.lane":         {Err: errors.New("soak: transient lane fault"), After: rng.Intn(4), Times: 2},
		"campaign.sim_batch":    simBatch,
		"campaign.detect_batch": {Err: errors.New("soak: detect batch fault"), After: rng.Intn(2), Times: 1},
		"soc.schedule":          {Err: errors.New("soak: schedule fault"), After: rng.Intn(3), Times: 1},
		// The logic-level fault campaign is driven as side traffic (the
		// service's spectral path does not traverse fault.batch).
		"fault.batch": {Err: errors.New("soak: batch fault"), Times: 1},
		// Every ledger and engine snapshot save is slowed, widening the
		// windows where cancels, retries and finishes race the
		// checkpointer.
		"resilient.checkpoint.save": {Delay: time.Millisecond},
	}
}

func TestChaosSoak(t *testing.T) {
	defer resilient.Install(nil)
	baseline := runtime.NumGoroutine()
	seed := soakSeed(t)
	rng := rand.New(rand.NewSource(seed))
	t.Logf("chaos soak seed %d (replay with MSTX_SOAK_SEED=%d)", seed, seed)

	// Coverage wall: the action table and the statically enumerated
	// site registry must agree in both directions.
	sites, err := analysis.FailpointSites(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	actions := soakActions(rng)
	siteSet := map[string]bool{}
	for _, s := range sites {
		siteSet[s] = true
		if _, ok := actions[s]; !ok {
			t.Fatalf("no chaos action for failpoint site %s — extend soakActions", s)
		}
	}
	for s := range actions {
		if !siteSet[s] {
			t.Fatalf("stale chaos action for unregistered site %s", s)
		}
	}

	// The workload: four tenants, all four kinds. The mc spec is the E6
	// Table 2 golden configuration and the default soc spec is the E9
	// golden, so "bit-identical to a clean run" here means identical to
	// the checked-in experiment tables too.
	type soakJob struct {
		tenant string
		spec   Spec
		ref    string
	}
	tenants := []string{"ares", "boreas", "chronos", "daphne"}
	var jobs []soakJob
	for i, tn := range tenants {
		tr := quickTranslate()
		tr.Seed = int64(200 + i)
		jobs = append(jobs,
			soakJob{tenant: tn, spec: tr},
			soakJob{tenant: tn, spec: Spec{Kind: "campaign", Patterns: 64}},
			soakJob{tenant: tn, spec: Spec{Kind: "mc", Devices: 6, CaptureN: 1024}},
		)
	}
	jobs = append(jobs, soakJob{tenant: "ares", spec: Spec{Kind: "soc"}})

	// Clean references, computed straight through the task adapters
	// before any chaos is armed.
	refs := map[string]string{}
	for i := range jobs {
		key := fmt.Sprintf("%+v", jobs[i].spec)
		if txt, ok := refs[key]; ok {
			jobs[i].ref = txt
			continue
		}
		sp := jobs[i].spec
		if err := sp.normalize(); err != nil {
			t.Fatal(err)
		}
		tk, err := newTask(&sp)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.prepare(context.Background()); err != nil {
			t.Fatal(err)
		}
		res, err := tk.run(context.Background(), taskEnv{})
		if err != nil {
			t.Fatal(err)
		}
		refs[key] = res.Text
		jobs[i].ref = res.Text
	}

	// Chaos phase: arm every site, then pour the workload in.
	srv, ts := newTestService(t, Config{
		Workers:           4,
		RetryMax:          2,
		RetryBase:         5 * time.Millisecond,
		CheckpointDir:     t.TempDir(),
		RetryAfter:        time.Second,
		BreakerWindow:     8,
		BreakerMinSamples: 4,
		BreakerThreshold:  0.5,
		BreakerOpenFor:    250 * time.Millisecond,
	})
	fp := resilient.NewFailpoints()
	for site, a := range actions {
		fp.Set(site, a)
	}
	resilient.Install(fp)

	// Side traffic for the one site the service does not reach: a tiny
	// logic-level fault campaign. The injected batch fault is expected.
	fir, err := digital.NewFIR([]int64{3, -5, 7}, 6)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]int64, 64)
	for i := range xs {
		xs[i] = int64(i%7) - 3
	}
	if _, err := fault.Simulate(context.Background(), fault.NewUniverse(fir, false), xs, fault.ExactDetector{}); err == nil {
		t.Log("side-traffic fault campaign completed before its failpoint applied")
	}

	type tracked struct {
		id  string
		job soakJob
	}
	var admitted []tracked
	shedOnSubmit := 0
	for _, jb := range jobs {
		placed := false
		for try := 0; try < 5 && !placed; try++ {
			resp, snap := postJob(t, ts, jb.tenant, jb.spec)
			switch resp.StatusCode {
			case http.StatusCreated:
				admitted = append(admitted, tracked{id: snap.ID, job: jb})
				placed = true
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				// Backpressure and shedding are correct behavior under
				// chaos; honor the hint (scaled down) and retry.
				time.Sleep(time.Duration(20*(try+1)) * time.Millisecond)
			default:
				t.Fatalf("submit %s/%s: %s", jb.tenant, jb.spec.Kind, resp.Status)
			}
		}
		if !placed {
			shedOnSubmit++
		}
		time.Sleep(time.Duration(rng.Intn(8)) * time.Millisecond)
	}
	if shedOnSubmit > 0 {
		t.Logf("%d submissions stayed shed after retries (tolerated)", shedOnSubmit)
	}
	if len(admitted) == 0 {
		t.Fatal("chaos shed the entire workload")
	}

	// Invariant wall: every admitted job terminal, correctly
	// classified, and — when it ended done — bit-identical to the
	// clean reference.
	retriedDone := 0
	for _, tr := range admitted {
		final := waitTerminal(t, ts, tr.id)
		switch final.State {
		case StateDone:
			if final.Result == nil || final.Result.Text == "" {
				t.Fatalf("job %s (%s): done without a result", tr.id, tr.job.spec.Kind)
			}
			if final.Result.Text != tr.job.ref {
				t.Fatalf("job %s (%s): done result diverged from the clean run\n--- chaos\n%s--- clean\n%s",
					tr.id, tr.job.spec.Kind, final.Result.Text, tr.job.ref)
			}
			if final.Attempts > 0 {
				retriedDone++
			}
		case StatePartial:
			if final.Result == nil || !final.Result.Partial {
				t.Fatalf("job %s (%s): partial without partial accounting: %+v",
					tr.id, tr.job.spec.Kind, final.Result)
			}
		case StateFailed:
			if final.Error == nil || (final.Error.Type != ErrTypeEngine && final.Error.Type != ErrTypePanic) {
				t.Fatalf("job %s (%s): failed with %+v — misclassified terminal error",
					tr.id, tr.job.spec.Kind, final.Error)
			}
		default:
			t.Fatalf("job %s (%s): unexpected terminal state %s",
				tr.id, tr.job.spec.Kind, final.State)
		}
	}
	if c := srv.Registry().Counters()["server_retries_total"]; c == 0 {
		t.Fatal("the soak never exercised a retry")
	}
	if retriedDone == 0 {
		t.Fatal("no retried job reached done; retry bit-identity went unexercised")
	}
	for _, site := range sites {
		if fp.Hits(site) == 0 {
			t.Fatalf("failpoint site %s never fired during the soak", site)
		}
	}

	// Directed degradation: persistent lane faults must open the
	// translate breaker. RetryMax 2 means each failing job records
	// three failed attempts, so the window trips within a few jobs.
	fp2 := resilient.NewFailpoints()
	fp2.Set("mcengine.lane", resilient.Action{Err: errors.New("soak: persistent lane fault")})
	resilient.Install(fp2)
	var shed *http.Response
	for i := 0; i < 20 && shed == nil; i++ {
		sp := quickTranslate()
		sp.Seed = int64(700 + i)
		resp, snap := postJob(t, ts, "ares", sp)
		switch resp.StatusCode {
		case http.StatusCreated:
			waitTerminal(t, ts, snap.ID)
		case http.StatusServiceUnavailable:
			shed = resp
		default:
			t.Fatalf("degradation submit: %s", resp.Status)
		}
	}
	if shed == nil {
		t.Fatal("translate breaker never opened under persistent faults")
	}
	if ra := shed.Header.Get("Retry-After"); ra == "" {
		t.Fatal("breaker shed without a Retry-After hint")
	}
	ready := getReadyz(t, ts)
	if ready.status != http.StatusOK || !ready.body.Ready {
		t.Fatalf("one open breaker took the whole service not-ready: %d %+v", ready.status, ready.body)
	}
	if k := ready.body.Kinds["translate"]; k.Ready || k.State != "open" {
		t.Fatalf("readyz does not report the open translate breaker: %+v", k)
	}

	// Recovery: heal the engine, wait out the open interval, and the
	// half-open probe closes the breaker again.
	resilient.Install(nil)
	time.Sleep(300 * time.Millisecond)
	probe := quickTranslate()
	probe.Seed = 999
	resp, snap := postJob(t, ts, "ares", probe)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("probe submit after recovery: %s", resp.Status)
	}
	if final := waitTerminal(t, ts, snap.ID); final.State != StateDone {
		t.Fatalf("probe job after recovery: %s %+v", final.State, final.Error)
	}
	ready = getReadyz(t, ts)
	if k := ready.body.Kinds["translate"]; !k.Ready || k.State != "closed" {
		t.Fatalf("translate breaker did not recover: %+v", k)
	}

	// Leak wall.
	ts.Close()
	srv.Close()
	settle(t, baseline)
}
