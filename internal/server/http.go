package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"mstx/internal/obs"
)

// Handler builds the service mux: the job API under /v1, health, and
// the obs debug surface (/metrics, /trace, pprof) off the server's own
// registry — one listener serves both the API and ops planes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Liveness only: the process is up and serving. Degradation
		// lives on /readyz.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	obs.RegisterDebug(mux, s.reg)
	return mux
}

// readyKind is one job kind's entry in the /readyz body.
type readyKind struct {
	// State is the kind's breaker state: closed, open or half_open.
	State string `json:"state"`
	// Ready reports whether submissions of this kind are admitted
	// (closed or probing).
	Ready bool `json:"ready"`
}

// readyResponse is the /readyz body: per-kind degradation, not a
// binary bit. The HTTP status goes 503 only when nothing can be
// served — shutdown, or every kind's breaker open.
type readyResponse struct {
	Ready    bool                 `json:"ready"`
	Stopping bool                 `json:"stopping,omitempty"`
	Queued   int                  `json:"queued"`
	Kinds    map[string]readyKind `json:"kinds"`
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	stopping := s.stopping
	queued := s.q.queued
	s.mu.Unlock()
	resp := readyResponse{Stopping: stopping, Queued: queued, Kinds: make(map[string]readyKind, len(s.breakers))}
	allOpen := len(s.breakers) > 0
	for kind, b := range s.breakers {
		st, ready := b.snapshot()
		resp.Kinds[kind] = readyKind{State: st, Ready: ready}
		if ready {
			allOpen = false
		}
	}
	resp.Ready = !stopping && !allOpen
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// submitRequest is the POST /v1/jobs body: a job spec plus an optional
// tenant (the X-Mstx-Tenant header is the fallback).
type submitRequest struct {
	Tenant string `json:"tenant,omitempty"`
	Spec
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, errType, msg string) {
	writeJSON(w, status, map[string]*ErrorBody{
		"error": {Type: errType, Message: msg},
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, ErrTypeBadRequest, "decode body: "+err.Error())
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = r.Header.Get("X-Mstx-Tenant")
	}
	j, err := s.Submit(tenant, req.Spec)
	var boe *BreakerOpenError
	switch {
	case errors.Is(err, ErrQueueFull):
		// The hint is computed from the live backlog and drain rate
		// (configured RetryAfter as the floor), so a saturated queue
		// tells clients how long it actually needs.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, ErrTypeQueueFull, err.Error())
		return
	case errors.As(err, &boe):
		w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(boe.RetryAfter)))
		writeError(w, http.StatusServiceUnavailable, ErrTypeBreakerOpen, err.Error())
		return
	case errors.Is(err, ErrStopped):
		writeError(w, http.StatusServiceUnavailable, ErrTypeShutdown, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, ErrTypeBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, s.Snapshot(j))
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrTypeNotFound, "no such job "+r.PathValue("id"))
	}
	return j, ok
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, s.Snapshot(j))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	s.Cancel(j.ID)
	writeJSON(w, http.StatusAccepted, s.Snapshot(j))
}

// handleResult serves the terminal result text (the CLI-diffable
// table). Non-terminal jobs get 404 with a typed body; failed and
// canceled jobs get 409 carrying the job's own error type.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	v := s.Snapshot(j)
	switch {
	case v.State == StateDone || v.State == StatePartial:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, v.Result.Text)
	case v.State == StateDeadline && v.Result != nil:
		// Deadline expiry with a salvaged partial: serve what the
		// engine finished before the budget ran out.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, v.Result.Text)
	case terminal(v.State):
		writeError(w, http.StatusConflict, v.Error.Type, v.Error.Message)
	default:
		writeError(w, http.StatusNotFound, ErrTypeNotFound,
			"job "+j.ID+" is "+v.State+"; no result yet")
	}
}

// spanEvent is one completed engine span on the SSE stream.
type spanEvent struct {
	Name    string  `json:"name"`
	Parent  string  `json:"parent,omitempty"`
	Depth   int     `json:"depth"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
}

// handleEvents streams job progress as server-sent events off the
// job's private obs registry: `state` on transitions, `span` for each
// engine span completing in the job's ring, `counters` whenever the
// job's counter snapshot changes, and a final `done` carrying the
// terminal snapshot. The poll cadence is Config.EventPoll; if more
// spans complete between polls than the ring holds, the overflow is
// dropped (the ring is a window, not a log).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, ErrTypeEngine, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, v any) {
		data, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
	}

	var lastState string
	var lastSpans []obs.SpanRecord
	var lastCounters map[string]int64
	poll := func() bool {
		v := s.Snapshot(j)
		if v.State != lastState {
			lastState = v.State
			emit("state", map[string]string{"id": j.ID, "state": v.State})
		}
		spans := j.Events().Spans()
		for _, rec := range newSpans(lastSpans, spans) {
			emit("span", spanEvent{
				Name:    rec.Name,
				Parent:  rec.Parent,
				Depth:   rec.Depth,
				StartMS: float64(rec.Start) / float64(time.Millisecond),
				DurMS:   float64(rec.Duration) / float64(time.Millisecond),
			})
		}
		lastSpans = spans
		if c := j.Events().Counters(); countersChanged(lastCounters, c) {
			lastCounters = c
			emit("counters", c)
		}
		if terminal(v.State) {
			emit("done", v)
			return false
		}
		return true
	}

	if !poll() {
		return
	}
	tick := time.NewTicker(s.cfg.EventPoll)
	defer tick.Stop()
	// Heartbeat comments keep idle streams alive through proxies and
	// LB idle timeouts; SSE clients ignore `:`-prefixed lines by spec.
	hb := time.NewTicker(s.cfg.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			// Server going down mid-stream; the client reconnects
			// against the resumed job.
			return
		case <-j.Done():
			poll()
			return
		case <-hb.C:
			fmt.Fprint(w, ": ping\n\n")
			fl.Flush()
		case <-tick.C:
			if !poll() {
				return
			}
		}
	}
}

// newSpans returns the suffix of cur not yet emitted given the prev
// snapshot: it finds prev's newest record in cur and returns what
// follows; if the ring rotated it away, all of cur is new (minus
// whatever the rotation dropped).
func newSpans(prev, cur []obs.SpanRecord) []obs.SpanRecord {
	if len(prev) == 0 {
		return cur
	}
	last := prev[len(prev)-1]
	for i := len(cur) - 1; i >= 0; i-- {
		if cur[i] == last {
			return cur[i+1:]
		}
	}
	return cur
}

func countersChanged(prev, cur map[string]int64) bool {
	if len(prev) != len(cur) {
		return len(cur) != 0
	}
	for k, v := range cur {
		if prev[k] != v {
			return true
		}
	}
	return false
}
