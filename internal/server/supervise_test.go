package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"mstx/internal/obs"
	"mstx/internal/resilient"
)

// TestRetryDelay pins the backoff policy: exponential growth from the
// base, hard cap, and deterministic jitter — same (seed, job, attempt)
// always the same delay, different jobs de-synchronized.
func TestRetryDelay(t *testing.T) {
	base, cap := 100*time.Millisecond, 2*time.Second
	prev := time.Duration(0)
	for attempt := 1; attempt <= 8; attempt++ {
		d := retryDelay(base, cap, 1, "j1", attempt)
		if d < base || d > cap {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, base, cap)
		}
		if d < prev && d != cap {
			t.Fatalf("attempt %d: delay %v shrank below %v before the cap", attempt, d, prev)
		}
		if got := retryDelay(base, cap, 1, "j1", attempt); got != d {
			t.Fatalf("attempt %d: not deterministic (%v vs %v)", attempt, d, got)
		}
		prev = d
	}
	// The exponential part dominates: attempt 3 ≥ 4×base even before
	// jitter, attempt 1 < 2×base even after jitter.
	if d := retryDelay(base, cap, 1, "j1", 1); d >= 2*base {
		t.Fatalf("attempt 1 delay %v ≥ 2×base", d)
	}
	if d := retryDelay(base, cap, 1, "j1", 3); d < 4*base {
		t.Fatalf("attempt 3 delay %v < 4×base", d)
	}
	// Jitter separates jobs (with overwhelming probability for these
	// specific IDs; pinned here so a jitter regression is loud).
	if retryDelay(base, cap, 1, "j1", 2) == retryDelay(base, cap, 1, "j2", 2) {
		t.Fatal("distinct jobs got identical jittered delays")
	}
	// And the whole timeline is a function of the seed.
	if retryDelay(base, cap, 1, "j1", 2) == retryDelay(base, cap, 2, "j1", 2) {
		t.Fatal("distinct seeds got identical jittered delays")
	}
}

// TestRetryAfterHint pins the 429 hint: configured floor with an empty
// drain history, backlog-proportional once attempts have completed,
// capped at five minutes.
func TestRetryAfterHint(t *testing.T) {
	floor := 3 * time.Second
	if got := retryAfterHint(2, 0, 1, floor); got != floor {
		t.Fatalf("no-history hint %v, want floor %v", got, floor)
	}
	if got := retryAfterHint(10, 2*time.Second, 2, floor); got != 10*time.Second {
		t.Fatalf("drain hint %v, want 10s (10 jobs × 2s / 2 workers)", got)
	}
	if got := retryAfterHint(1, time.Second, 4, floor); got != floor {
		t.Fatalf("sub-floor hint %v, want floor %v", got, floor)
	}
	if got := retryAfterHint(100000, time.Minute, 1, floor); got != 5*time.Minute {
		t.Fatalf("pathological hint %v, want 5m cap", got)
	}
	if got := ceilSeconds(1200 * time.Millisecond); got != 2 {
		t.Fatalf("ceilSeconds(1.2s) = %d, want 2", got)
	}
}

// TestJobDeadlineResolution pins the deadline policy: spec wins, then
// the server default, and the cap clamps both (including "unlimited").
func TestJobDeadlineResolution(t *testing.T) {
	sp := func(ms int64) *Spec { return &Spec{DeadlineMS: ms} }
	if d := jobDeadline(sp(0), 0, 0); d != 0 {
		t.Fatalf("unlimited: %v", d)
	}
	if d := jobDeadline(sp(1500), 0, 0); d != 1500*time.Millisecond {
		t.Fatalf("spec deadline: %v", d)
	}
	if d := jobDeadline(sp(0), 2*time.Second, 0); d != 2*time.Second {
		t.Fatalf("default deadline: %v", d)
	}
	if d := jobDeadline(sp(10_000), 0, 3*time.Second); d != 3*time.Second {
		t.Fatalf("cap over spec: %v", d)
	}
	if d := jobDeadline(sp(0), 0, 3*time.Second); d != 3*time.Second {
		t.Fatalf("cap over unlimited: %v", d)
	}
	// The legacy timeout_sec spelling folds into deadline_ms.
	legacy := &Spec{Kind: "translate", Param: "IIP3", TimeoutSec: 1.5}
	if err := legacy.normalize(); err != nil {
		t.Fatal(err)
	}
	if legacy.DeadlineMS != 1500 {
		t.Fatalf("timeout_sec fold: deadline_ms %d, want 1500", legacy.DeadlineMS)
	}
}

// TestBreakerStateMachine drives one breaker through
// closed→open→half-open→closed (and the reopen edge) on a fake clock.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := newBreaker("x", breakerConfig{
		window: 8, minSamples: 4, threshold: 0.5, openFor: time.Second, probes: 1,
	}, obs.New(), clock)

	if ok, _ := b.admit(); !ok {
		t.Fatal("closed breaker refused admission")
	}
	// Below minSamples nothing trips, however bad the rate.
	b.record(true)
	b.record(true)
	b.record(true)
	if st, _ := b.snapshot(); st != "closed" {
		t.Fatalf("tripped below minSamples: %s", st)
	}
	b.record(true) // 4 of 4 failed ≥ 0.5 → open
	if st, ready := b.snapshot(); st != "open" || ready {
		t.Fatalf("want open/not-ready, got %s/%v", st, ready)
	}
	ok, retryIn := b.admit()
	if ok || retryIn <= 0 || retryIn > time.Second {
		t.Fatalf("open breaker: ok=%v retryIn=%v", ok, retryIn)
	}

	// After openFor the next admit is a half-open probe; the second
	// concurrent probe is still shed.
	now = now.Add(1100 * time.Millisecond)
	if ok, _ := b.admit(); !ok {
		t.Fatal("half-open breaker refused the probe")
	}
	if st, ready := b.snapshot(); st != "half_open" || !ready {
		t.Fatalf("want half_open/ready, got %s/%v", st, ready)
	}
	if ok, _ := b.admit(); ok {
		t.Fatal("second probe admitted beyond the probe budget")
	}

	// A failed probe reopens; a successful one closes and resets.
	b.record(true)
	if st, _ := b.snapshot(); st != "open" {
		t.Fatalf("failed probe: want open, got %s", st)
	}
	now = now.Add(1100 * time.Millisecond)
	if ok, _ := b.admit(); !ok {
		t.Fatal("second probe window refused")
	}
	b.record(false)
	if st, ready := b.snapshot(); st != "closed" || !ready {
		t.Fatalf("successful probe: want closed/ready, got %s/%v", st, ready)
	}
	// The window was reset: old failures don't count toward the next
	// trip decision.
	b.record(true)
	b.record(true)
	b.record(true)
	if st, _ := b.snapshot(); st != "closed" {
		t.Fatalf("window not reset after close: %s", st)
	}
}

// TestRetryResumesAndMatchesCleanRun is the end-to-end retry contract:
// an injected engine fault fails the first attempt, the supervision
// layer retries from the job's checkpoint, and the final result is
// bit-identical to an uninterrupted run of the same spec.
func TestRetryResumesAndMatchesCleanRun(t *testing.T) {
	defer resilient.Install(nil)
	baseline := runtime.NumGoroutine()

	// Clean reference from a pristine server.
	cleanSrv, cleanTS := newTestService(t, Config{Workers: 1})
	spec := quickTranslate()
	spec.Seed = 21
	_, snap := postJob(t, cleanTS, "", spec)
	clean := waitTerminal(t, cleanTS, snap.ID)
	if clean.State != StateDone {
		t.Fatalf("clean run: %s %+v", clean.State, clean.Error)
	}
	cleanTS.Close()
	cleanSrv.Close()

	// Now the same spec against a retrying server with the first
	// attempt sabotaged.
	srv, ts := newTestService(t, Config{
		Workers:       1,
		RetryMax:      2,
		RetryBase:     10 * time.Millisecond,
		CheckpointDir: t.TempDir(),
	})
	fp := resilient.NewFailpoints()
	fp.Set("mcengine.lane", resilient.Action{Err: errors.New("injected transient fault"), Times: 1})
	resilient.Install(fp)

	_, snap = postJob(t, ts, "", spec)
	final := waitTerminal(t, ts, snap.ID)
	if final.State != StateDone {
		t.Fatalf("retried run: %s %+v", final.State, final.Error)
	}
	if final.Attempts != 1 {
		t.Fatalf("attempts %d, want 1", final.Attempts)
	}
	if final.Error != nil {
		t.Fatalf("terminal success kept an error: %+v", final.Error)
	}
	if final.Result.Text != clean.Result.Text {
		t.Fatalf("retried result differs from clean run:\n%q\nvs\n%q",
			final.Result.Text, clean.Result.Text)
	}
	if got := srv.Registry().Counters()["server_retries_total"]; got != 1 {
		t.Fatalf("server_retries_total %d, want 1", got)
	}

	// Retries are bounded: a persistent fault exhausts RetryMax and
	// lands in failed/engine with the attempt count visible.
	fp = resilient.NewFailpoints()
	fp.Set("mcengine.lane", resilient.Action{Err: errors.New("injected persistent fault")})
	resilient.Install(fp)
	spec.Seed = 22
	_, snap = postJob(t, ts, "", spec)
	final = waitTerminal(t, ts, snap.ID)
	if final.State != StateFailed || final.Error == nil || final.Error.Type != ErrTypeEngine {
		t.Fatalf("persistent fault: %s %+v", final.State, final.Error)
	}
	if final.Attempts != 2 {
		t.Fatalf("persistent fault attempts %d, want 2", final.Attempts)
	}

	resilient.Install(nil)
	ts.Close()
	srv.Close()
	settle(t, baseline)
}

// TestDeadlineSalvagesPartial: a campaign job whose wall budget expires
// mid-run lands in deadline_exceeded — not failed — and carries the
// partial result the engine salvaged, served by /result.
func TestDeadlineSalvagesPartial(t *testing.T) {
	defer resilient.Install(nil)
	baseline := runtime.NumGoroutine()
	srv, ts := newTestService(t, Config{Workers: 1, EngineWorkers: 1})

	// Serialize the batches and slow each one so the deadline lands
	// after the first batch but before the last.
	fp := resilient.NewFailpoints()
	fp.Set("campaign.sim_batch", resilient.Action{Delay: 60 * time.Millisecond})
	resilient.Install(fp)

	_, snap := postJob(t, ts, "", map[string]any{
		"kind": "campaign", "patterns": 64, "deadline_ms": 150,
	})
	final := waitTerminal(t, ts, snap.ID)
	if final.State != StateDeadline {
		t.Fatalf("state %s (%+v), want %s", final.State, final.Error, StateDeadline)
	}
	if final.Error == nil || final.Error.Type != ErrTypeDeadline {
		t.Fatalf("deadline error body %+v", final.Error)
	}
	if final.Result == nil || !final.Result.Partial || final.Result.Campaign == nil {
		t.Fatalf("no salvaged partial result: %+v", final.Result)
	}
	rr, err := ts.Client().Get(ts.URL + "/v1/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK || !strings.Contains(string(text), "PARTIAL") {
		t.Fatalf("salvaged result endpoint: %s %q", rr.Status, text)
	}

	// A deadline job that salvaged nothing (translate returns no
	// partials) still classifies as deadline_exceeded and /result is a
	// typed 409.
	fp = resilient.NewFailpoints()
	fp.Set("mcengine.lane", resilient.Action{Delay: 40 * time.Millisecond})
	resilient.Install(fp)
	sp := quickTranslate()
	sp.Seed = 31
	sp.DeadlineMS = 100
	_, snap = postJob(t, ts, "", sp)
	final = waitTerminal(t, ts, snap.ID)
	if final.State != StateDeadline || final.Result != nil {
		t.Fatalf("translate deadline: %s result=%+v", final.State, final.Result)
	}
	rr, err = ts.Client().Get(ts.URL + "/v1/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if rr.StatusCode != http.StatusConflict {
		t.Fatalf("no-salvage result status %s, want 409", rr.Status)
	}
	if eb := errorBody(t, rr); eb.Type != ErrTypeDeadline {
		t.Fatalf("no-salvage result error type %q", eb.Type)
	}

	resilient.Install(nil)
	ts.Close()
	srv.Close()
	settle(t, baseline)
}

// TestBreakerShedsAndReadyz trips one kind's breaker and checks the
// full degradation surface: 503 + Retry-After + breaker_open on
// submit, per-kind /readyz (degraded kind visible, overall still
// ready), recovery through the half-open probe, and the exported
// breaker metrics.
func TestBreakerShedsAndReadyz(t *testing.T) {
	defer resilient.Install(nil)
	baseline := runtime.NumGoroutine()
	srv, ts := newTestService(t, Config{
		Workers:           1,
		BreakerWindow:     8,
		BreakerMinSamples: 4,
		BreakerThreshold:  0.5,
		BreakerOpenFor:    300 * time.Millisecond,
	})

	// Persistent engine fault on the translate path; retries are off,
	// so each failing job records one breaker outcome.
	fp := resilient.NewFailpoints()
	fp.Set("mcengine.lane", resilient.Action{Err: errors.New("injected persistent fault")})
	resilient.Install(fp)

	var shedResp *http.Response
	for seed := int64(50); seed < 70; seed++ {
		sp := quickTranslate()
		sp.Seed = seed
		resp, snap := postJob(t, ts, "", sp)
		if resp.StatusCode == http.StatusServiceUnavailable {
			shedResp = resp
			break
		}
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("seed %d: %s", seed, resp.Status)
		}
		waitTerminal(t, ts, snap.ID)
	}
	if shedResp == nil {
		t.Fatal("breaker never opened after 20 failing jobs")
	}
	if ra := shedResp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 without Retry-After")
	} else if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Fatalf("Retry-After %q", ra)
	}

	// /readyz: translate degraded, service overall still ready (the
	// other kinds are untouched).
	ready := getReadyz(t, ts)
	if ready.status != http.StatusOK || !ready.body.Ready {
		t.Fatalf("readyz with one kind open: %d %+v", ready.status, ready.body)
	}
	if k := ready.body.Kinds["translate"]; k.Ready || k.State != "open" {
		t.Fatalf("translate kind %+v, want open/not-ready", k)
	}
	if k := ready.body.Kinds["mc"]; !k.Ready {
		t.Fatalf("mc kind degraded too: %+v", k)
	}

	// Heal the engine, wait out the open interval: the probe job is
	// admitted, succeeds, and closes the breaker.
	resilient.Install(nil)
	time.Sleep(350 * time.Millisecond)
	sp := quickTranslate()
	sp.Seed = 99
	resp, snap := postJob(t, ts, "", sp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("probe submit: %s", resp.Status)
	}
	if final := waitTerminal(t, ts, snap.ID); final.State != StateDone {
		t.Fatalf("probe job: %s %+v", final.State, final.Error)
	}
	ready = getReadyz(t, ts)
	if k := ready.body.Kinds["translate"]; !k.Ready || k.State != "closed" {
		t.Fatalf("translate after recovery %+v, want closed/ready", k)
	}

	c := srv.Registry().Counters()
	if c["server_breaker_translate_opened_total"] == 0 {
		t.Fatal("no breaker open recorded")
	}
	if c["server_breaker_translate_closed_total"] == 0 {
		t.Fatal("no breaker close recorded")
	}
	if c["server_breaker_translate_shed_total"] == 0 {
		t.Fatal("no shed recorded")
	}

	ts.Close()
	srv.Close()
	settle(t, baseline)
}

type readyzResult struct {
	status int
	body   readyResponse
}

func getReadyz(t *testing.T, ts *httptest.Server) readyzResult {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body readyResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return readyzResult{status: resp.StatusCode, body: body}
}

// TestSSEHeartbeat: a slow job's event stream carries ": ping" comment
// lines at the configured interval, so idle proxies never see a silent
// connection, and the stream still terminates with the done event.
func TestSSEHeartbeat(t *testing.T) {
	defer resilient.Install(nil)
	baseline := runtime.NumGoroutine()
	srv, ts := newTestService(t, Config{
		Workers:   1,
		EventPoll: 50 * time.Millisecond,
		Heartbeat: 15 * time.Millisecond,
	})

	fp := resilient.NewFailpoints()
	fp.Set("mcengine.lane", resilient.Action{Delay: 20 * time.Millisecond})
	resilient.Install(fp)

	sp := quickTranslate()
	sp.Seed = 41
	_, snap := postJob(t, ts, "", sp)
	sseResp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var pings int
	var last string
	sc := bufio.NewScanner(sseResp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == ": ping" {
			pings++
		}
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			last = name
		}
	}
	sseResp.Body.Close()
	if pings == 0 {
		t.Fatal("no heartbeat comments on a multi-interval stream")
	}
	if last != "done" {
		t.Fatalf("stream ended on %q, want done", last)
	}

	resilient.Install(nil)
	waitTerminal(t, ts, snap.ID)
	ts.Close()
	srv.Close()
	settle(t, baseline)
}

// TestCancelRacesCheckpointSave widens every ledger save with a
// failpoint delay and fires DELETE at a sweep of instants across the
// job's lifetime — including right around the terminal save. Each job
// must settle in exactly one coherent terminal state (done with a
// result and no error, or canceled with a typed error and no result),
// and the ledger must replay cleanly on a Resume restart.
func TestCancelRacesCheckpointSave(t *testing.T) {
	defer resilient.Install(nil)
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()
	srv, ts := newTestService(t, Config{Workers: 1, CheckpointDir: dir})

	fp := resilient.NewFailpoints()
	fp.Set("resilient.checkpoint.save", resilient.Action{Delay: 2 * time.Millisecond})
	fp.Set("mcengine.lane", resilient.Action{Delay: time.Millisecond})
	resilient.Install(fp)

	var ids []string
	for i := 0; i < 8; i++ {
		sp := quickTranslate()
		sp.Seed = int64(60 + i)
		_, snap := postJob(t, ts, "", sp)
		ids = append(ids, snap.ID)
		time.Sleep(time.Duration(i) * 3 * time.Millisecond)
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+snap.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()

		final := waitTerminal(t, ts, snap.ID)
		switch final.State {
		case StateCanceled:
			if final.Error == nil || final.Error.Type != ErrTypeCanceled || final.Result != nil {
				t.Fatalf("job %s: incoherent canceled snapshot %+v", snap.ID, final)
			}
		case StateDone:
			if final.Error != nil || final.Result == nil {
				t.Fatalf("job %s: incoherent done snapshot %+v", snap.ID, final)
			}
		default:
			t.Fatalf("job %s: unexpected terminal state %s (%+v)", snap.ID, final.State, final.Error)
		}
		// Exactly one terminal transition: the state must never change
		// again, whatever the cancel/save interleaving was.
		time.Sleep(10 * time.Millisecond)
		if again := getJob(t, ts, snap.ID); again.State != final.State {
			t.Fatalf("job %s flipped %s -> %s after finishing", snap.ID, final.State, again.State)
		}
	}

	resilient.Install(nil)
	ts.Close()
	srv.Close()
	settle(t, baseline)

	// The races never corrupted the ledger: a Resume restart replays
	// every job, each still in a coherent terminal state.
	srv2, ts2 := newTestService(t, Config{Workers: 1, CheckpointDir: dir, Resume: true})
	for _, id := range ids {
		snap := waitTerminal(t, ts2, id)
		if snap.State != StateDone && snap.State != StateCanceled {
			t.Fatalf("resumed job %s in %s", id, snap.State)
		}
	}
	ts2.Close()
	srv2.Close()
}
