package server

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestConcurrentIdenticalSubmits is the single-flight race test: N
// tenants submit M copies of the same job concurrently; the engine
// must run exactly once, every job must finish with the identical
// result, and every tenant must make full progress. Run under -race
// this also exercises the scheduler, cache and ledger locking.
func TestConcurrentIdenticalSubmits(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const tenants = 4
	const perTenant = 6
	srv, err := New(Config{
		Workers:            4,
		MaxQueuedTotal:     tenants * perTenant,
		MaxQueuedPerTenant: perTenant,
	})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	jobs := make(map[string][]*Job) // tenant → jobs
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		tenant := string(rune('a' + i))
		for k := 0; k < perTenant; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				j, err := srv.Submit(tenant, quickTranslate())
				if err != nil {
					t.Errorf("submit %s: %v", tenant, err)
					return
				}
				mu.Lock()
				jobs[tenant] = append(jobs[tenant], j)
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	var refText string
	for tenant, js := range jobs {
		if len(js) != perTenant {
			t.Fatalf("tenant %s: %d jobs admitted, want %d", tenant, len(js), perTenant)
		}
		for _, j := range js {
			select {
			case <-j.Done():
			case <-time.After(30 * time.Second):
				t.Fatalf("tenant %s job %s never finished", tenant, j.ID)
			}
			snap := srv.Snapshot(j)
			if snap.State != StateDone {
				t.Fatalf("tenant %s job %s ended %s %+v", tenant, j.ID, snap.State, snap.Error)
			}
			if refText == "" {
				refText = snap.Result.Text
			}
			if snap.Result.Text != refText {
				t.Fatalf("divergent result for job %s", j.ID)
			}
		}
	}

	// Single-flight: one engine run, everyone else a cache hit.
	c := srv.Registry().Counters()
	total := int64(tenants * perTenant)
	if c["server_cache_misses_total"] != 1 {
		t.Fatalf("engine ran %d times for one identity", c["server_cache_misses_total"])
	}
	if c["server_cache_hits_total"] != total-1 {
		t.Fatalf("cache hits %d, want %d", c["server_cache_hits_total"], total-1)
	}
	if c["server_jobs_completed_total"] != total {
		t.Fatalf("completed %d, want %d", c["server_jobs_completed_total"], total)
	}

	srv.Close()
	settle(t, baseline)
}

// TestConcurrentDistinctSubmits races distinct identities across
// tenants: no sharing is possible, so every job must compute, and the
// weighted queue must not lose or duplicate any.
func TestConcurrentDistinctSubmits(t *testing.T) {
	srv, err := New(Config{
		Workers:        4,
		Weights:        map[string]int{"heavy": 3},
		MaxQueuedTotal: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var all []*Job
	for i := 0; i < 12; i++ {
		tenant := "light"
		if i%2 == 0 {
			tenant = "heavy"
		}
		seed := int64(1000 + i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := quickTranslate()
			sp.Seed = seed
			j, err := srv.Submit(tenant, sp)
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			mu.Lock()
			all = append(all, j)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for _, j := range all {
		select {
		case <-j.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("job %s never finished", j.ID)
		}
		if snap := srv.Snapshot(j); snap.State != StateDone {
			t.Fatalf("job %s ended %s %+v", j.ID, snap.State, snap.Error)
		}
	}
	c := srv.Registry().Counters()
	if c["server_cache_misses_total"] != 12 || c["server_cache_hits_total"] != 0 {
		t.Fatalf("distinct identities shared compute: misses %d hits %d",
			c["server_cache_misses_total"], c["server_cache_hits_total"])
	}
}
